package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathMarker annotates a function whose transitive same-package callees
// must stay allocation-disciplined. It lives in the function's doc comment:
//
//	// anneal runs the SA move loop.
//	//
//	//lisa:hotpath one call per /v1/map request; BENCH_mapper.json gates allocs/op
//	func (st *state) anneal(...) { ... }
const hotpathMarker = "lisa:hotpath"

// HotAlloc enforces the source-level form of the BENCH_*.json allocation
// ceilings: every function reachable (same-package, static or interface
// over-approximated edges) from a //lisa:hotpath root must be free of
//
//   - map allocations (map literals and make(map...));
//   - slice/array composite literals outside failure paths;
//   - un-preallocated append growth in loops: appending to a local slice
//     declared without a capacity hint;
//   - function literals that capture enclosing variables and escape
//     (passed as a call argument, returned, or stored in a field) — each
//     such closure heap-allocates its captures;
//   - fmt calls outside failure paths.
//
// Failure paths are exempt: anything inside a panic(...) argument or a
// return statement (e.g. `return nil, fmt.Errorf(...)`) allocates only
// when the hot path is already failing. Recognized hot idioms that are
// deliberately NOT flagged: grow-on-demand makes guarded by a len/cap/nil
// check, scratch and arena slices stored on struct fields (append to a
// field amortizes), truncate-reuse scratch buffers (a local initialized
// from a slice expression like buf[:0], or reset with x = x[:0], inherits
// its backing's amortization), array literals (fixed size, stack unless
// escaping), make([]T, n[, c]) preallocation, non-capturing sort closures,
// and immediately-invoked or deferred function literals.
//
// Cross-package calls are opaque by design: each package annotates its own
// hot entry points (tensor.Infer methods are roots in internal/tensor, not
// discovered through gnn).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation, closure-capture, and fmt discipline in //lisa:hotpath functions",
	Run:  runHotAlloc,
}

// hotpathRoots returns the package's annotated root functions in file
// order. analysis.Stats counts these so CI can assert the annotation set
// never silently becomes empty.
func hotpathRoots(pkg *Package) []*cgNode {
	g := pkg.CallGraph()
	var out []*cgNode
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Doc == nil {
				continue
			}
			marked := false
			for _, c := range decl.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if _, ok := markerRest(text, hotpathMarker); ok {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
				if n := g.node(fn); n != nil {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

func runHotAlloc(pass *Pass) {
	roots := hotpathRoots(pass.Pkg)
	if len(roots) == 0 {
		return
	}
	// BFS over the call graph, remembering how each function was reached so
	// diagnostics can name the chain.
	chain := map[*cgNode]string{}
	var queue []*cgNode
	for _, r := range roots {
		if _, seen := chain[r]; !seen {
			chain[r] = r.fn.Name()
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		edges := append([]cgEdge(nil), n.out...)
		sort.Slice(edges, func(i, j int) bool { return edges[i].call.Pos() < edges[j].call.Pos() })
		for _, e := range edges {
			if _, seen := chain[e.callee]; !seen {
				chain[e.callee] = chain[n] + " → " + e.callee.fn.Name()
				queue = append(queue, e.callee)
			}
		}
	}
	var nodes []*cgNode
	for n := range chain {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].decl.Pos() < nodes[j].decl.Pos() })
	for _, n := range nodes {
		checkHotFunc(pass, n, chain[n])
	}
}

// checkHotFunc walks one hot function's body, including nested function
// literals, with enough ancestry to recognize the exempt idioms.
func checkHotFunc(pass *Pass, n *cgNode, via string) {
	locals := localSliceDecls(pass, n.decl)
	var stack []ast.Node
	where := func() string {
		if via == n.fn.Name() {
			return "hot path " + via
		}
		return "hot path (" + via + ")"
	}

	report := func(node ast.Node, format string, args ...any) {
		args = append(args, where())
		pass.Reportf(node.Pos(), format+" in %s", args...)
	}

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, node)

		onFailurePath := hotOnFailurePath(stack)
		switch v := node.(type) {
		case *ast.CompositeLit:
			t := pass.TypeOf(v)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(v, "map literal allocates")
			case *types.Slice:
				if !onFailurePath && !insideCompositeLit(stack) {
					report(v, "slice literal allocates per execution")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, v, stack, locals, onFailurePath, report)
		case *ast.FuncLit:
			checkHotClosure(pass, n.decl, v, stack, report)
		}
		return true
	})
}

// localSliceDecls maps each local slice variable of decl to whether its
// growth is amortized: declared with a capacity hint (3-arg make), or
// carved from / reset to an existing backing via a slice expression
// (out := buf[:0], scratch = scratch[:0]) — truncate-reuse scratch grows
// to its high-water mark once and then stops allocating.
func localSliceDecls(pass *Pass, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(name *ast.Ident, rhs ast.Expr, defining bool) {
		obj := pass.ObjectOf(name)
		if obj == nil {
			return
		}
		if t := obj.Type(); t == nil {
			return
		} else if _, ok := t.Underlying().(*types.Slice); !ok {
			return
		}
		amortized := false
		switch r := ast.Unparen(rhs).(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "make" && len(r.Args) == 3 {
				amortized = true
			}
		case *ast.SliceExpr:
			amortized = true // shares an existing backing; growth amortizes across calls
		}
		if defining {
			out[obj] = out[obj] || amortized
		} else if amortized {
			// Plain assignment only upgrades (scratch = scratch[:0] proves
			// reuse; a later scratch = nil does not un-prove it).
			out[obj] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(s.Rhs) {
					record(id, s.Rhs[i], s.Tok == token.DEFINE)
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				var rhs ast.Expr
				if i < len(s.Values) {
					rhs = s.Values[i]
				}
				record(name, rhs, true)
			}
		}
		return true
	})
	return out
}

// checkHotCall flags map makes, fmt calls outside failure paths, and
// un-preallocated append growth in loops.
func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node,
	locals map[types.Object]bool, onFailurePath bool, report func(ast.Node, string, ...any)) {

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if t := pass.TypeOf(call); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(call, "make(map) allocates")
				}
			}
			return
		case "append":
			if !inLoop(stack) || len(call.Args) == 0 {
				return
			}
			target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return // appends to fields (scratch/arena slices) amortize
			}
			hasCap, isLocal := locals[pass.ObjectOf(target)]
			if isLocal && !hasCap {
				report(call, "append to %s grows an un-preallocated local slice inside a loop; size it with make(len, cap) outside the loop", target.Name)
			}
			return
		}
	}
	if fn := pass.Pkg.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if !onFailurePath {
			report(call, "fmt.%s allocates (formatting + interface boxing)", fn.Name())
		}
	}
}

// checkHotClosure flags function literals that capture enclosing variables
// and escape the frame.
func checkHotClosure(pass *Pass, decl *ast.FuncDecl, lit *ast.FuncLit, stack []ast.Node, report func(ast.Node, string, ...any)) {
	if len(stack) < 2 {
		return
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.CallExpr:
		if ast.Unparen(parent.Fun) == lit {
			return // immediately invoked: runs inline, nothing escapes
		}
		// lit is an argument: escapes into the callee
	case *ast.DeferStmt, *ast.GoStmt:
		return // once per call, not per iteration; goleak owns go-stmt hygiene
	case *ast.AssignStmt:
		escapes := false
		for _, lhs := range parent.Lhs {
			if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); isSel {
				escapes = true // stored in a field: outlives the frame
			}
		}
		if !escapes {
			return // local variable, invoked locally
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		// returned or stored in a structure: escapes
	default:
		return
	}
	captured := capturedVars(pass, decl, lit)
	if len(captured) == 0 {
		return // non-capturing closures (sort comparators) do not heap-allocate captures
	}
	report(lit, "closure captures %s and escapes; each execution heap-allocates the captures", strings.Join(captured, ", "))
}

// capturedVars lists (sorted, deduplicated) the enclosing function's
// variables referenced inside lit.
func capturedVars(pass *Pass, decl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Pkg.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside lit.
		if v.Pos() < decl.Pos() || v.Pos() > decl.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			out = append(out, v.Name())
		}
		return true
	})
	sort.Strings(out)
	return out
}

// hotOnFailurePath reports whether the innermost frame's ancestry (cut at
// the nearest enclosing function literal) passes through a return statement
// or a panic argument list.
func hotOnFailurePath(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit:
			if i != len(stack)-1 {
				return false
			}
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// inLoop reports whether the innermost frame (cut at the nearest enclosing
// function literal) is inside a for/range statement.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			if i != len(stack)-1 {
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// insideCompositeLit reports whether the node is an element of an enclosing
// composite literal (the outermost literal is the one reported).
func insideCompositeLit(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.CompositeLit:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}
