package service

import (
	"sort"
	"sync"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

// latencyBuckets are the upper bounds (inclusive, milliseconds) of the
// per-engine latency histogram; the final +Inf bucket is implicit.
var latencyBuckets = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

// Metrics aggregates request-level counters for /metrics. All methods are
// safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	start     time.Time
	requests  map[string]int64 // per route
	status    map[int]int64    // per HTTP status
	inflight  int64            // /v1/map requests currently admitted
	rejected  int64            // 429s from admission control
	hits      int64            // cache hits
	misses    int64            // cache misses (mapper actually ran)
	coalesced int64            // followers served by a singleflight leader
	panics    int64            // recovered panics (handlers and pool tasks)
	engines   map[string]*engineStats
}

type engineStats struct {
	count    int64
	failures int64 // mapper returned OK=false
	degraded int64 // responses produced by a fallback rung, not the engine itself
	totalNS  int64
	buckets  []int64 // len(latencyBuckets)+1, last = +Inf
}

// NewMetrics creates an empty metrics set anchored at now.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start:    now,
		requests: make(map[string]int64),
		status:   make(map[int]int64),
		engines:  make(map[string]*engineStats),
	}
}

// Request counts one request to a route with its response status.
func (m *Metrics) Request(route string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[route]++
	m.status[status]++
}

// InflightAdd moves the in-flight gauge by delta.
func (m *Metrics) InflightAdd(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight += delta
}

// Rejected counts one admission-control refusal.
func (m *Metrics) Rejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// CacheHit / CacheMiss / Coalesced classify how a /v1/map request was
// answered: from the cache, by running the mapper, or by joining another
// request's run.
func (m *Metrics) CacheHit() { m.mu.Lock(); m.hits++; m.mu.Unlock() }

func (m *Metrics) CacheMiss() { m.mu.Lock(); m.misses++; m.mu.Unlock() }

func (m *Metrics) Coalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

// Panic counts one recovered panic (a handler or a pool task).
func (m *Metrics) Panic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// DegradedRun counts one response for the *requested* engine that was
// produced by a degradation-ladder fallback rather than the engine itself.
func (m *Metrics) DegradedRun(eng string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.engine(eng).degraded++
}

// engine returns the stats slot for eng, creating it. m.mu must be held.
func (m *Metrics) engine(eng string) *engineStats {
	e := m.engines[eng]
	if e == nil {
		e = &engineStats{buckets: make([]int64, len(latencyBuckets)+1)}
		m.engines[eng] = e
	}
	return e
}

// Mapped records one completed mapper invocation for an engine.
func (m *Metrics) Mapped(eng string, ok bool, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.engine(eng)
	e.count++
	if !ok {
		e.failures++
	}
	e.totalNS += int64(elapsed)
	ms := elapsed.Milliseconds()
	slot := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if ms <= ub {
			slot = i
			break
		}
	}
	e.buckets[slot]++
}

// Snapshot types mirror the /metrics JSON document.
type (
	// MetricsSnapshot is the full /metrics payload.
	MetricsSnapshot struct {
		UptimeSeconds float64                   `json:"uptimeSeconds"`
		Requests      map[string]int64          `json:"requests"`
		Status        map[string]int64          `json:"status"`
		Inflight      int64                     `json:"inflight"`
		Rejected      int64                     `json:"rejected"`
		Panics        int64                     `json:"panics"`
		Cache         CacheSnapshot             `json:"cache"`
		Engines       map[string]EngineSnapshot `json:"engines"`
		// Faults reports per-site injection counts; present only while a
		// fault plan is armed (the /metrics handler fills it in).
		Faults map[fault.Site]int64 `json:"faults,omitempty"`
	}
	// CacheSnapshot reports hit/miss/coalesced counts and the hit ratio.
	CacheSnapshot struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Coalesced int64   `json:"coalesced"`
		HitRatio  float64 `json:"hitRatio"`
		Entries   int     `json:"entries"`
	}
	// EngineSnapshot reports one engine's invocation stats and latency
	// histogram.
	EngineSnapshot struct {
		Count     int64            `json:"count"`
		Failures  int64            `json:"failures"`
		Degraded  int64            `json:"degraded"`
		AvgMillis float64          `json:"avgMillis"`
		Histogram []HistogramEntry `json:"histogram"`
	}
	// HistogramEntry is one latency bucket; Le is the inclusive upper
	// bound in milliseconds, -1 for the +Inf bucket.
	HistogramEntry struct {
		Le    int64 `json:"leMillis"`
		Count int64 `json:"count"`
	}
)

// Snapshot captures the current counters. cacheEntries is supplied by the
// caller (the cache owns its size); now supplies the uptime reference.
func (m *Metrics) Snapshot(now time.Time, cacheEntries int) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		UptimeSeconds: now.Sub(m.start).Seconds(),
		Requests:      make(map[string]int64, len(m.requests)),
		Status:        make(map[string]int64, len(m.status)),
		Inflight:      m.inflight,
		Rejected:      m.rejected,
		Panics:        m.panics,
		Cache: CacheSnapshot{
			Hits:      m.hits,
			Misses:    m.misses,
			Coalesced: m.coalesced,
			Entries:   cacheEntries,
		},
		Engines: make(map[string]EngineSnapshot, len(m.engines)),
	}
	if total := m.hits + m.misses + m.coalesced; total > 0 {
		// Coalesced followers count as hits: the mapper did not run for them.
		s.Cache.HitRatio = float64(m.hits+m.coalesced) / float64(total)
	}
	//lisa:nondet-ok map-to-map snapshot copies; encoding/json sorts map keys when the snapshot is served
	for route, n := range m.requests {
		s.Requests[route] = n
	}
	//lisa:nondet-ok same: per-key copy into a map that json marshals with sorted keys
	for code, n := range m.status {
		s.Status[statusKey(code)] = n
	}
	names := make([]string, 0, len(m.engines))
	for name := range m.engines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := m.engines[name]
		es := EngineSnapshot{Count: e.count, Failures: e.failures, Degraded: e.degraded}
		if e.count > 0 {
			es.AvgMillis = float64(e.totalNS) / float64(e.count) / 1e6
		}
		for i, n := range e.buckets {
			le := int64(-1)
			if i < len(latencyBuckets) {
				le = latencyBuckets[i]
			}
			es.Histogram = append(es.Histogram, HistogramEntry{Le: le, Count: n})
		}
		s.Engines[name] = es
	}
	return s
}

// statusKey renders an HTTP status as a JSON map key.
func statusKey(code int) string {
	const digits = "0123456789"
	if code < 100 || code > 999 {
		return "unknown"
	}
	return string([]byte{digits[code/100], digits[code/10%10], digits[code%10]})
}
