package fix

import "time"

// Map shares its name with the allowlisted internal/mapper deadline site:
// not flagged.
func Map() int64 {
	return time.Now().UnixNano()
}

// notAllowlisted reads the clock outside the allowlist: both calls flagged.
func notAllowlisted() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// suppressedClock carries an annotation: not flagged.
func suppressedClock() time.Time {
	return time.Now() //lisa:nondet-ok debug-only timestamp, never serialized
}

// sleeper delays outside the allowlist: flagged — a sleep shifts every
// deadline-relative outcome without appearing in any Result.
func sleeper() {
	time.Sleep(time.Millisecond)
}
