// Package fault (the fixture, posing as an internal/fault package) seeds
// the faultsite violation classes: a site injected at two call sites, a
// registered site with no call site at all, a site missing from the Sites()
// listing, and an Inject call whose argument is not a registered constant.
// AlphaRPC's single Inject call and the Sites() entries for it are the
// clean baseline.
package fault

// Site names one fault-injection point.
type Site string

const (
	// AlphaRPC is the clean site: listed, injected exactly once.
	AlphaRPC Site = "alpha.rpc"
	// BetaWrite is injected twice (see useBeta and useBetaAgain).
	BetaWrite Site = "beta.write"
	// GammaRead is registered but missing from Sites().
	GammaRead Site = "gamma.read"
	// DeadSite has no Inject call anywhere.
	DeadSite Site = "dead.site"
)

// Sites lists the sites the chaos suite arms; GammaRead is missing.
func Sites() []Site {
	return []Site{AlphaRPC, BetaWrite, DeadSite}
}

// Inject is the fixture injection hook.
func Inject(site Site, token string) error {
	_ = site
	_ = token
	return nil
}

func useAlpha() error { return Inject(AlphaRPC, "a") }

func useBeta() error { return Inject(BetaWrite, "b1") }

// useBetaAgain is the duplicate call site.
func useBetaAgain() error { return Inject(BetaWrite, "b2") }

func useGamma() error { return Inject(GammaRead, "g") }

// useRaw bypasses the registry with an ad-hoc conversion.
func useRaw() error { return Inject(Site("raw.string"), "r") }
