package visual

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

// wellFormed checks the output parses as XML (catches unescaped text and
// unclosed tags).
func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, data)
		}
	}
}

func TestWriteDFG(t *testing.T) {
	g := kernels.MustByName("gemm")
	var buf bytes.Buffer
	if err := WriteDFG(&buf, g); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	s := buf.String()
	for _, n := range g.Nodes {
		if !strings.Contains(s, n.Name) {
			t.Errorf("node %q missing from drawing", n.Name)
		}
	}
	// One line per edge at minimum.
	if strings.Count(s, "<line") < g.NumEdges() {
		t.Error("edge lines missing")
	}
}

func TestWriteMapping(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	res, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: 1, MaxMoves: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("map failed")
	}
	var buf bytes.Buffer
	if err := WriteMapping(&buf, ar, g, &res); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if !strings.Contains(buf.String(), "II=") {
		t.Error("caption missing")
	}
	// Failed results are rejected.
	bad := mapper.Result{}
	if err := WriteMapping(&buf, ar, g, &bad); err == nil {
		t.Error("failed result must be rejected")
	}
}

func TestWriteBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := WriteBarChart(&buf, "Fig9x", "II", []string{"gemm", "atax", "bicg"},
		[]Series{
			{Name: "ILP", Values: map[string]float64{"gemm": 4, "atax": 0}},
			{Name: "SA", Values: map[string]float64{"gemm": 5, "atax": 5, "bicg": 3}},
			{Name: "LISA", Values: map[string]float64{"gemm": 2, "atax": 2, "bicg": 3}},
		})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	s := buf.String()
	for _, want := range []string{"Fig9x", "ILP", "SA", "LISA", "gemm"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// The unmappable combination renders as an x marker, not a bar.
	if !strings.Contains(s, ">x</text>") {
		t.Error("missing cannot-map marker")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape wrong: %q", escape(`a<b>&"c"`))
	}
}

func TestSortedCategories(t *testing.T) {
	got := SortedCategories(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}
