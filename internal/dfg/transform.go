package dfg

import (
	"fmt"
	"sort"
)

// This file implements the compiler-style clean-up passes a front end runs
// before mapping: common-subexpression elimination and dead-code
// elimination. The kernels in internal/kernels are already clean, but DFGs
// imported from DOT/JSON files (or produced by unrolling with a smarter
// sharing policy) benefit, and smaller DFGs mean lower resource-minimal II.

// CSE returns a new graph with structurally identical operations merged: two
// nodes merge when they have the same op kind and the same ordered operand
// list (after merging their operands). Stores and loads never merge — loads
// may alias different memory traffic, stores are effects. The second return
// value maps old node IDs to new ones.
func CSE(g *Graph) (*Graph, []int) {
	topo, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	out := New(g.Name + "_cse")
	remap := make([]int, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	type key struct {
		op   OpKind
		args string
	}
	seen := map[key]int{}

	argsKey := func(v int) string {
		ins := g.InEdges(v)
		ids := make([]int, len(ins))
		for i, e := range ins {
			ids[i] = remap[g.Edges[e].From]
		}
		return fmt.Sprint(ids)
	}

	for _, v := range topo {
		op := g.Nodes[v].Op
		mergeable := op != OpLoad && op != OpStore
		k := key{op: op, args: argsKey(v)}
		if mergeable {
			if op == OpConst {
				// Constants merge by name: distinct names are distinct
				// loop-invariant values.
				k.args = g.Nodes[v].Name
			}
			if prev, ok := seen[k]; ok {
				remap[v] = prev
				continue
			}
		}
		id := out.AddNode(uniqueName(out, g.Nodes[v].Name), op)
		remap[v] = id
		if mergeable {
			seen[k] = id
		}
		for _, e := range g.InEdges(v) {
			out.AddEdge(remap[g.Edges[e].From], id)
		}
	}
	return out, remap
}

// DCE returns a new graph with every node removed that cannot reach a store
// (dead computation). Graphs without stores are returned unchanged — there
// is no effect to anchor liveness on.
func DCE(g *Graph) (*Graph, []int) {
	hasStore := false
	for _, n := range g.Nodes {
		if n.Op == OpStore {
			hasStore = true
			break
		}
	}
	remap := make([]int, g.NumNodes())
	if !hasStore {
		out := g.Clone()
		for i := range remap {
			remap[i] = i
		}
		return out, remap
	}
	an := Analyze(g)
	live := make([]bool, g.NumNodes())
	for v, n := range g.Nodes {
		if n.Op == OpStore {
			live[v] = true
			continue
		}
		for w, m := range g.Nodes {
			if m.Op == OpStore && an.IsAncestor(v, w) {
				live[v] = true
				break
			}
		}
	}
	out := New(g.Name + "_dce")
	for i := range remap {
		remap[i] = -1
	}
	// Preserve ID order for determinism.
	for v := range g.Nodes {
		if live[v] {
			remap[v] = out.AddNode(g.Nodes[v].Name, g.Nodes[v].Op)
		}
	}
	for _, e := range g.Edges {
		if remap[e.From] >= 0 && remap[e.To] >= 0 {
			out.AddEdge(remap[e.From], remap[e.To])
		}
	}
	return out, remap
}

// Optimize applies DCE then CSE and returns the composed remap.
func Optimize(g *Graph) (*Graph, []int) {
	d, r1 := DCE(g)
	c, r2 := CSE(d)
	out := make([]int, g.NumNodes())
	for v := range out {
		if r1[v] < 0 {
			out[v] = -1
		} else {
			out[v] = r2[r1[v]]
		}
	}
	return c, out
}

// uniqueName suffixes a name until it is free in g.
func uniqueName(g *Graph, base string) string {
	if _, taken := g.NodeByName(base); !taken {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s_%d", base, i)
		if _, taken := g.NodeByName(cand); !taken {
			return cand
		}
	}
}

// OpHistogram counts nodes per operation kind (compiler statistics; the
// systolic feasibility discussion in DESIGN.md is driven by these numbers).
func OpHistogram(g *Graph) map[OpKind]int {
	h := map[OpKind]int{}
	for _, n := range g.Nodes {
		h[n.Op]++
	}
	return h
}

// SortedOps returns the histogram keys sorted by kind for rendering.
func SortedOps(h map[OpKind]int) []OpKind {
	out := make([]OpKind, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
