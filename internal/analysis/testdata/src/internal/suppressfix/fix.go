// Package suppressfix seeds a reason-less suppression: the comment still
// silences the maprange diagnostic on the next line, but is itself
// reported, so the build fails until a reason is written.
package suppressfix

func bad(m map[int]int) int {
	n := 0
	//lisa:nondet-ok
	for range m {
		n++
	}
	return n
}
