package mapper

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
)

func TestResultJSONRoundTrip(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgSA, nil, Options{Seed: 5, MaxMoves: 1600})
	if !res.OK {
		t.Fatal("gemm failed to map")
	}

	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("round trip changed the result:\n got %+v\nwant %+v", back, res)
	}

	// Marshalling must be byte-stable: same result, same bytes.
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-marshalling a decoded result produced different bytes")
	}
}

func TestResultJSONFailedRunRoundTrip(t *testing.T) {
	res := Result{TriedIIs: []int{1, 2, 3}, Moves: 42, Duration: 1234}
	b, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("round trip changed the failed result: got %+v want %+v", back, res)
	}
}

func TestResultJSONRejectsInconsistentPayloads(t *testing.T) {
	cases := []string{
		`{"ok":true,"ii":0}`,
		`{"ok":true,"ii":2,"pe":[1,2],"time":[0]}`,
		`{"ok":true,"ii":2,"edgeHops":[1],"routes":[]}`,
		`not json`,
	}
	for _, c := range cases {
		var r Result
		if err := json.Unmarshal([]byte(c), &r); err == nil {
			t.Errorf("decoded inconsistent payload %s", c)
		}
	}
}

func TestOptionsNormalized(t *testing.T) {
	n := Options{Seed: 7}.Normalized()
	d := DefaultOptions()
	d.Seed = 7
	if n != d {
		t.Fatalf("Normalized() = %+v, want defaults with seed: %+v", n, d)
	}
	// Explicit knobs survive normalization.
	o := Options{MaxMoves: 9, Cool: 0.5}.Normalized()
	if o.MaxMoves != 9 || o.Cool != 0.5 {
		t.Fatalf("Normalized clobbered explicit knobs: %+v", o)
	}
}
