// Command lisa-train runs the one-off per-accelerator tuning pass of the
// LISA framework: generate random DFGs, derive labels by iterative mapping
// (§V), train the four GNN models (§IV), and save the model to disk.
//
// Usage:
//
//	lisa-train -arch cgra-4x4 -out cgra-4x4.json              (quick profile)
//	lisa-train -arch cgra-8x8 -dfgs 1000 -epochs 500 -out m.json  (paper scale)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/traingen"
)

func main() {
	archName := flag.String("arch", "cgra-4x4", "target: "+strings.Join(arch.Names(), ", "))
	archFile := flag.String("arch-file", "", "load the target from a JSON architecture spec instead of -arch")
	out := flag.String("out", "", "output model file (default <arch>.model.json)")
	numDFGs := flag.Int("dfgs", 60, "random DFGs to generate (paper: 1000)")
	iters := flag.Int("iters", 3, "label-update iterations per DFG")
	epochs := flag.Int("epochs", 60, "training epochs (paper: 500)")
	moves := flag.Int("moves", 900, "SA movement budget while labelling")
	workers := flag.Int("workers", 0, "parallel workers for DFG generation+labelling (0 = all CPUs, 1 = serial); the dataset is identical at any setting")
	seed := flag.Int64("seed", 1, "pipeline seed")
	testFrac := flag.Float64("test", 0.25, "held-out fraction for accuracy report")
	datasetOut := flag.String("dataset", "", "also save the labelled dataset to this JSON file")
	flag.Parse()

	var ar arch.Arch
	if *archFile != "" {
		f, err := os.Open(*archFile)
		if err != nil {
			fatal(err)
		}
		ar, err = arch.LoadArch(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var ok bool
		ar, ok = arch.ByName(*archName)
		if !ok {
			fatal(fmt.Errorf("unknown arch %q (have %v)", *archName, arch.Names()))
		}
	}
	if *out == "" {
		*out = ar.Name() + ".model.json"
	}

	cfg := traingen.DefaultConfig()
	cfg.NumDFGs = *numDFGs
	cfg.Iterations = *iters
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.MapOpts = mapper.Options{MaxMoves: *moves}

	fmt.Printf("generating %d DFGs and labelling them on %s ...\n", cfg.NumDFGs, ar.Name())
	start := time.Now()
	ds := traingen.Generate(ar, cfg)
	fmt.Printf("  generated %d, mapped %d, admitted %d (%.1fs)\n",
		ds.Stats.Generated, ds.Stats.Mapped, ds.Stats.Admitted,
		time.Since(start).Seconds())
	if len(ds.Samples) == 0 {
		fatal(fmt.Errorf("no training samples survived the filter; raise -dfgs or -moves"))
	}

	if *datasetOut != "" {
		df, err := os.Create(*datasetOut)
		if err != nil {
			fatal(err)
		}
		err = ds.Save(df)
		df.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dataset written to %s\n", *datasetOut)
	}

	train, test := traingen.Split(ds, 1-*testFrac, *seed+1)
	model := gnn.NewModel(rand.New(rand.NewSource(*seed)), ar.Name())
	tc := gnn.DefaultTrainConfig()
	tc.Epochs = *epochs
	fmt.Printf("training 4 label networks for %d epochs on %d samples ...\n",
		tc.Epochs, len(train))
	start = time.Now()
	stats := model.Train(train, tc)
	fmt.Printf("  final losses: order=%.4f same=%.4f spatial=%.4f temporal=%.4f (%.1fs)\n",
		stats.FinalLoss[0], stats.FinalLoss[1], stats.FinalLoss[2], stats.FinalLoss[3],
		time.Since(start).Seconds())

	evalSet := test
	if len(evalSet) == 0 {
		evalSet = train
	}
	acc := model.Accuracy(evalSet)
	fmt.Printf("accuracy (Table II metric, %d held-out samples): "+
		"label1=%.3f label2=%.3f label3=%.3f label4=%.3f\n",
		len(evalSet), acc[0], acc[1], acc[2], acc[3])

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("model written to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisa-train:", err)
	os.Exit(1)
}
