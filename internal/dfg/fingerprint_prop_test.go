package dfg

import (
	"fmt"
	"math/rand"
	"testing"
)

// rebuildWith reconstructs g node-for-node and edge-for-edge, substituting
// the given node names and edge endpoints.
func rebuildWith(g *Graph, name string, nodeNames []string, edges []Edge) *Graph {
	out := New(name)
	for i, n := range g.Nodes {
		out.AddNode(nodeNames[i], n.Op)
	}
	for _, e := range edges {
		out.AddEdge(e.From, e.To)
	}
	return out
}

// Fingerprint hashes structure only: permuting node names (and renaming the
// graph) must not change it. This is what lets the lisa-serve cache hit on
// the same kernel submitted with different identifier spellings.
func TestFingerprintStableUnderNodeRenaming(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := Random(rng, DefaultRandomConfig(), "orig")

			names := make([]string, len(g.Nodes))
			for i, n := range g.Nodes {
				names[i] = n.Name
			}
			rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
			renamed := rebuildWith(g, "renamed", names, g.Edges)

			if got, want := renamed.Fingerprint(), g.Fingerprint(); got != want {
				t.Fatalf("renaming nodes changed the fingerprint:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// Rewiring any single edge must change the fingerprint: results are
// index-addressed, so a different dependency structure is a different
// content address.
func TestFingerprintChangesOnEdgeRewire(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := Random(rng, DefaultRandomConfig(), "orig")
			if len(g.Edges) == 0 || len(g.Nodes) < 3 {
				t.Skip("degenerate random graph")
			}
			names := make([]string, len(g.Nodes))
			for i, n := range g.Nodes {
				names[i] = n.Name
			}

			ei := rng.Intn(len(g.Edges))
			edges := append([]Edge(nil), g.Edges...)
			// Retarget the consumer to a different node that is not the
			// producer (keeps the edge well-formed).
			for delta := 1; delta < len(g.Nodes); delta++ {
				to := (edges[ei].To + delta) % len(g.Nodes)
				if to != edges[ei].To && to != edges[ei].From {
					edges[ei].To = to
					break
				}
			}
			rewired := rebuildWith(g, "orig", names, edges)

			if rewired.Fingerprint() == g.Fingerprint() {
				t.Fatalf("rewiring edge %d did not change the fingerprint", ei)
			}
		})
	}
}
