package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements in internal/ packages that silently
// discard an error return — a plain `f()` statement, `defer f()`, or
// `go f()` where f returns an error. A swallowed error is how the other
// three invariants fail silently: a Save that half-wrote a model, a cache
// entry that never serialized, a fixture that never loaded.
//
// An explicit `_ = f()` is a deliberate, reviewable discard and is not
// flagged. Callees that are documented to never return a non-nil error
// (bytes.Buffer, strings.Builder writes, fmt printing to stdout) are
// excluded.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded error return in an internal package",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path, "internal") {
		return
	}
	check := func(call *ast.CallExpr, how string) {
		if call == nil {
			return
		}
		t := pass.TypeOf(call)
		if t == nil || !hasError(t) || errDropExcluded(pass, call) {
			return
		}
		pass.Reportf(call.Pos(),
			"%s discards an error returned by %s; handle it or assign it to _ explicitly",
			how, calleeName(pass, call))
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "call statement")
				}
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go statement")
			}
			return true
		})
	}
}

var errorType = types.Universe.Lookup("error").Type()

// hasError reports whether a call result type includes an error component.
func hasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// errDropExcluded reports whether the callee is documented to never return
// a non-nil error.
func errDropExcluded(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println": // stdout; an error here is unactionable
			return true
		case "Fprint", "Fprintf", "Fprintln":
			// Fprint* only fails if the writer fails; writing to an
			// in-memory buffer or a hash state cannot.
			return len(call.Args) > 0 && infallibleWriter(pass.TypeOf(call.Args[0]))
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder": // Write* never returns an error
		return true
	}
	return false
}

// infallibleWriter reports whether t is a writer type documented to never
// return a write error: bytes.Buffer and strings.Builder grow in memory,
// and hash.Hash's Write is specified to never error.
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder", "hash.Hash":
		return true
	}
	return false
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders the callee for a diagnostic message.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}

// pathHasSegment reports whether pkgPath contains seg as a whole path
// segment (e.g. "internal" matches a/internal/b and internal/b).
func pathHasSegment(pkgPath, seg string) bool {
	for _, s := range strings.Split(pkgPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
