package engine

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
)

func TestParseAcceptsEveryName(t *testing.T) {
	for _, s := range Names() {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if string(n) != s {
			t.Fatalf("Parse(%q) = %q", s, n)
		}
	}
	if _, err := Parse("annealer-9000"); err == nil {
		t.Fatal("Parse accepted an unknown engine")
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("Parse accepted the empty string")
	}
}

func TestUsesLabels(t *testing.T) {
	want := map[Name]bool{
		LISA: true, SARP: true, Partial: true,
		SA: false, SAM: false, Greedy: false, ILP: false,
	}
	for n, w := range want {
		if n.UsesLabels() != w {
			t.Errorf("%s.UsesLabels() = %v, want %v", n, !w, w)
		}
	}
}

// Every engine must produce a verifiable mapping for gemm on the baseline
// CGRA through the shared dispatch, and the SA-family results must be
// identical to calling the mapper directly — the no-drift guarantee.
func TestMapDispatchMatchesDirectCalls(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{
		Map: mapper.Options{Seed: 3, MaxMoves: 1600},
		ILP: ilp.Options{TimeLimitPerII: 2 * time.Second, MaxCutRounds: 12, MaxVars: 9000, MaxII: 8},
	}
	for _, eng := range Names() {
		n, err := Parse(eng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(ar, g, n, nil, opts)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !res.OK {
			t.Fatalf("%s: failed to map gemm on cgra-4x4", eng)
		}
		if err := mapper.Verify(ar, g, &res); err != nil {
			t.Fatalf("%s: invalid mapping: %v", eng, err)
		}
		if n == ILP || n == Greedy {
			continue
		}
		direct, err := mapper.Map(ar, g, mapper.Algorithm(n), nil, opts.Map)
		if err != nil {
			t.Fatalf("%s: direct mapper.Map: %v", eng, err)
		}
		res.Duration, direct.Duration = 0, 0
		if !reflect.DeepEqual(res, direct) {
			t.Fatalf("%s: dispatch result differs from direct mapper.Map", eng)
		}
	}
}

func TestMapRejectsUnknownEngine(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	if _, err := Map(ar, g, Name("nope"), nil, Options{}); err == nil {
		t.Fatal("Map accepted an unknown engine instead of returning an error")
	}
}

// errLabels is a LabelSource whose model is unavailable.
type errLabels struct{}

func (errLabels) LabelsFor(arch.Arch, *dfg.Graph) (*labels.Labels, error) {
	return nil, errors.New("model not trained")
}

func TestRunHealthyPathIsNotDegraded(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{Map: mapper.Options{Seed: 3, MaxMoves: 1600}}
	rr, err := Run(ar, g, Request{Engine: LISA, Labels: StaticLabels{}, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine != LISA || rr.DegradedRun() {
		t.Fatalf("healthy run degraded: engine=%s chain=%v", rr.Engine, rr.Degraded)
	}
	direct, err := mapper.Map(ar, g, mapper.AlgLISA, nil, opts.Map)
	if err != nil {
		t.Fatal(err)
	}
	rr.Duration, direct.Duration = 0, 0
	if !reflect.DeepEqual(rr.Result, direct) {
		t.Fatal("Run result differs from direct mapper.Map on the healthy path")
	}
}

func TestRunLabelFailureFallsBackToSA(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{Map: mapper.Options{Seed: 3, MaxMoves: 1600}}
	rr, err := Run(ar, g, Request{Engine: LISA, Labels: errLabels{}, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine != SA {
		t.Fatalf("engine = %s, want sa", rr.Engine)
	}
	if len(rr.Degraded) != 1 || !strings.Contains(rr.Degraded[0], "lisa→sa: labels unavailable") {
		t.Fatalf("degradation chain = %v", rr.Degraded)
	}
	direct, err := mapper.Map(ar, g, mapper.AlgSA, nil, opts.Map)
	if err != nil {
		t.Fatal(err)
	}
	rr.Duration, direct.Duration = 0, 0
	rr.Result.Degraded = nil
	if !reflect.DeepEqual(rr.Result, direct) {
		t.Fatal("label fallback result differs from a direct sa run")
	}
}

func TestRunLabelFailureNoFallbackReturnsError(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	req := Request{Engine: LISA, Labels: errLabels{}, NoFallback: true}
	if _, err := Run(ar, g, req); err == nil {
		t.Fatal("NoFallback run succeeded despite unavailable labels")
	}
}

// With the mapper.anneal fault firing on every invocation, lisa and the sa
// retry both error and the ladder must land on greedy — the full chain.
func TestRunEngineFaultWalksLadderToGreedy(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		plan, err := fault.ParsePlan("mapper.anneal="+mode+":1", 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := fault.Activate(plan); err != nil {
			t.Fatal(err)
		}
		ar := arch.NewBaseline4x4()
		g := kernels.MustByName("gemm")
		opts := Options{Map: mapper.Options{Seed: 3, MaxMoves: 1600}}
		rr, err := Run(ar, g, Request{Engine: LISA, Labels: StaticLabels{}, Opts: opts})
		fault.Deactivate()
		if err != nil {
			t.Fatalf("mode %s: ladder leaked the injected fault: %v", mode, err)
		}
		if rr.Engine != Greedy || !rr.OK {
			t.Fatalf("mode %s: engine=%s ok=%v, want a valid greedy mapping", mode, rr.Engine, rr.OK)
		}
		if len(rr.Degraded) != 2 ||
			!strings.HasPrefix(rr.Degraded[0], "lisa→sa:") ||
			!strings.HasPrefix(rr.Degraded[1], "sa→greedy:") {
			t.Fatalf("mode %s: degradation chain = %v", mode, rr.Degraded)
		}
		if mode == "panic" && !strings.Contains(rr.Degraded[0], "panicked") {
			t.Fatalf("panic rung not recorded as a panic: %v", rr.Degraded)
		}
	}
}

func TestRunEngineFaultNoFallbackReturnsError(t *testing.T) {
	plan, err := fault.ParsePlan("mapper.anneal=error:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	req := Request{Engine: LISA, Labels: StaticLabels{}, NoFallback: true,
		Opts: Options{Map: mapper.Options{Seed: 3, MaxMoves: 1600}}}
	if _, err := Run(ar, g, req); err == nil {
		t.Fatal("NoFallback run swallowed the injected fault")
	}
}

// An SA sweep whose deadline expires before any valid mapping is replaced
// by the greedy mapper, and the substitution is labeled.
func TestRunDeadlineExhaustionFallsBackToGreedy(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{Map: mapper.Options{Seed: 3, MaxMoves: 1 << 20, TimeLimit: time.Nanosecond}}
	rr, err := Run(ar, g, Request{Engine: SA, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Engine != Greedy || !rr.OK {
		t.Fatalf("engine=%s ok=%v, want a valid greedy mapping", rr.Engine, rr.OK)
	}
	if len(rr.Degraded) != 1 || !strings.Contains(rr.Degraded[0], "deadline exceeded") {
		t.Fatalf("degradation chain = %v", rr.Degraded)
	}
	if rr.DeadlineExceeded {
		t.Fatal("greedy substitute still carries DeadlineExceeded")
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	if _, err := Run(ar, g, Request{Engine: Name("annealer-9000")}); err == nil {
		t.Fatal("Run accepted an unknown engine")
	}
}

// Restarts flows through engine.Run into the mapper: a K-chain request
// produces a portfolio-labeled result on the healthy path, and a race whose
// every chain is poisoned walks the degradation ladder (the sa rung derives
// the same chain seeds, so it is equally poisoned) down to greedy, which
// ignores Restarts.
func TestRunPortfolioRestartsFlowAndAllPoisonedLadder(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{Map: mapper.Options{Seed: 3, MaxMoves: 800, Restarts: 4}}

	rr, err := Run(ar, g, Request{Engine: SA, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.OK || rr.Engine != SA {
		t.Fatalf("engine=%s ok=%v, want a healthy sa portfolio result", rr.Engine, rr.OK)
	}
	if rr.Portfolio == nil || rr.Portfolio.Restarts != 4 {
		t.Fatalf("portfolio info did not survive the engine layer: %+v", rr.Portfolio)
	}

	plan, err := fault.ParsePlan("mapper.portfolio=error:1", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()
	rr, err = Run(ar, g, Request{Engine: LISA, Labels: StaticLabels{}, Opts: opts})
	if err != nil {
		t.Fatalf("ladder leaked the all-chains-poisoned fault: %v", err)
	}
	if rr.Engine != Greedy || !rr.OK {
		t.Fatalf("engine=%s ok=%v, want a valid greedy mapping", rr.Engine, rr.OK)
	}
	if len(rr.Degraded) != 2 {
		t.Fatalf("degradation chain = %v", rr.Degraded)
	}
}
