package dfg

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseDOT reads a DFG in Graphviz DOT syntax. It accepts the subset this
// package's WriteDOT emits as well as CGRA-ME-style DFG files: one node or
// edge statement per line inside a digraph block,
//
//	digraph gemm {
//	    n0 [opcode=load];
//	    a  [label="lA\nload"];
//	    n0 -> a;
//	}
//
// The operation kind comes from an `opcode` or `op` attribute, or from the
// second line of a `label` attribute; nodes without either default to add.
// Multi-statement lines separated by ';' are supported; subgraphs are not.
func ParseDOT(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	g := New("dfg")
	ids := map[string]int{}
	lineNo := 0
	opened := false

	type pendingEdge struct {
		from, to string
		line     int
	}
	var edges []pendingEdge

	ensure := func(name string, op OpKind, explicit bool) {
		if id, ok := ids[name]; ok {
			if explicit {
				g.Nodes[id].Op = op
			}
			return
		}
		ids[name] = g.AddNode(name, op)
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		for _, stmt := range splitStatements(line) {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			switch {
			case strings.HasPrefix(stmt, "digraph"):
				opened = true
				rest := strings.TrimSpace(strings.TrimPrefix(stmt, "digraph"))
				rest = strings.TrimSuffix(rest, "{")
				if name := strings.Trim(strings.TrimSpace(rest), `"`); name != "" {
					g.Name = name
				}
			case stmt == "{":
				opened = true
			case stmt == "}":
				// end of graph
			case strings.HasPrefix(stmt, "rankdir") || strings.HasPrefix(stmt, "node ") ||
				strings.HasPrefix(stmt, "node[") || strings.HasPrefix(stmt, "edge ") ||
				strings.HasPrefix(stmt, "graph "):
				// layout directives
			case strings.Contains(stmt, "->"):
				parts := strings.SplitN(stmt, "->", 2)
				from := strings.Trim(strings.TrimSpace(parts[0]), `"`)
				toPart := strings.TrimSpace(parts[1])
				if i := strings.IndexAny(toPart, " \t["); i >= 0 {
					toPart = toPart[:i]
				}
				to := strings.Trim(toPart, `";`)
				if from == "" || to == "" {
					return nil, fmt.Errorf("dfg: line %d: malformed edge %q", lineNo, stmt)
				}
				edges = append(edges, pendingEdge{from: from, to: to, line: lineNo})
			default:
				name, attrs := splitNodeStmt(stmt)
				if name == "" {
					return nil, fmt.Errorf("dfg: line %d: cannot parse %q", lineNo, stmt)
				}
				op, explicit, err := opFromAttrs(attrs)
				if err != nil {
					return nil, fmt.Errorf("dfg: line %d: %v", lineNo, err)
				}
				ensure(name, op, explicit)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !opened {
		return nil, fmt.Errorf("dfg: no digraph block found")
	}
	for _, e := range edges {
		ensure(e.from, OpAdd, false)
		ensure(e.to, OpAdd, false)
		g.AddEdge(ids[e.from], ids[e.to])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// splitStatements splits on ';' outside quotes and attribute brackets.
// Braces also terminate statements so that single-line graphs like
// "digraph d { a -> b; }" parse correctly.
func splitStatements(line string) []string {
	var out []string
	depth := 0
	inQuote := false
	start := 0
	emit := func(end int) {
		out = append(out, line[start:end])
	}
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case '[':
			if !inQuote {
				depth++
			}
		case ']':
			if !inQuote {
				depth--
			}
		case ';':
			if !inQuote && depth == 0 {
				emit(i)
				start = i + 1
			}
		case '{':
			if !inQuote && depth == 0 {
				emit(i + 1) // keep the brace with the header statement
				start = i + 1
			}
		case '}':
			if !inQuote && depth == 0 {
				emit(i)
				start = i // the brace becomes its own statement
			}
		}
	}
	emit(len(line))
	return out
}

// splitNodeStmt separates "name [attrs]" into its parts.
func splitNodeStmt(stmt string) (name, attrs string) {
	if i := strings.Index(stmt, "["); i >= 0 {
		j := strings.LastIndex(stmt, "]")
		if j < i {
			return "", ""
		}
		return strings.Trim(strings.TrimSpace(stmt[:i]), `"`), stmt[i+1 : j]
	}
	return strings.Trim(strings.TrimSpace(stmt), `"`), ""
}

// opFromAttrs extracts the operation kind from a DOT attribute list.
func opFromAttrs(attrs string) (op OpKind, explicit bool, err error) {
	op = OpAdd
	for _, kv := range splitAttrs(attrs) {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			continue
		}
		key := strings.TrimSpace(parts[0])
		val := strings.Trim(strings.TrimSpace(parts[1]), `"`)
		switch key {
		case "op", "opcode":
			k, perr := ParseOpKind(strings.ToLower(val))
			if perr != nil {
				return op, false, perr
			}
			return k, true, nil
		case "label":
			// WriteDOT emits "name\nop"; take the last line.
			fields := strings.Split(val, `\n`)
			if len(fields) >= 2 {
				if k, perr := ParseOpKind(strings.ToLower(fields[len(fields)-1])); perr == nil {
					op, explicit = k, true
				}
			}
		}
	}
	return op, explicit, nil
}

// splitAttrs splits "a=b, c=d" on commas outside quotes.
func splitAttrs(attrs string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(attrs); i++ {
		switch attrs[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, attrs[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, attrs[start:])
	return out
}
