package lisa_test

import (
	"bytes"
	"strings"
	"testing"

	lisa "github.com/lisa-go/lisa"
)

// fwMap maps g, failing the test on an (injected-fault-only) error.
func fwMap(t *testing.T, fw *lisa.Framework, g *lisa.Graph) lisa.Result {
	t.Helper()
	res, err := fw.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicPipelineQuickstart(t *testing.T) {
	fw := lisa.New(lisa.CGRA4x4())
	fw.MapOpts.MaxMoves = 1200
	fw.MapOpts.Seed = 1
	g, err := lisa.Kernel("gemm")
	if err != nil {
		t.Fatal(err)
	}
	res := fwMap(t, fw, g)
	if !res.OK {
		t.Fatal("untrained framework failed to map gemm")
	}
	if err := fw.Verify(g, &res); err != nil {
		t.Fatal(err)
	}
	desc := lisa.Describe(fw.Arch, g, &res)
	if !strings.Contains(desc, "II=") || !strings.Contains(desc, "PE(") {
		t.Errorf("describe output malformed:\n%s", desc)
	}
}

func TestTrainThenMap(t *testing.T) {
	fw := lisa.New(lisa.CGRA3x3())
	fw.MapOpts.MaxMoves = 1200
	opt := lisa.QuickTraining()
	opt.NumDFGs = 10
	opt.Epochs = 10
	opt.MapBudget = 400
	rep := fw.Train(opt)
	if rep.Generated != 10 || rep.Admitted == 0 {
		t.Fatalf("training report %+v", rep)
	}
	if fw.Model == nil {
		t.Fatal("model missing after training")
	}
	g, _ := lisa.Kernel("doitgen")
	lbl, err := fw.DeriveLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(lbl.Order) != g.NumNodes() {
		t.Fatal("labels not shaped for DFG")
	}
	res := fwMap(t, fw, g)
	if !res.OK {
		t.Fatal("trained framework failed to map doitgen on 3x3")
	}
	if err := fw.Verify(g, &res); err != nil {
		t.Fatal(err)
	}
}

func TestCustomKernelViaBuilder(t *testing.T) {
	b := lisa.NewGraphBuilder("dot4")
	px, py, i := b.Const("px"), b.Const("py"), b.Const("i")
	x := b.Load("x", b.Addr("ax", px, i))
	y := b.Load("y", b.Addr("ay", py, i))
	m := b.Mul("xy", x, y)
	acc := b.Load("acc", px)
	s := b.Add("sum", acc, m)
	b.Store("out", px, s)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	fw := lisa.New(lisa.CGRA4x4())
	fw.MapOpts.MaxMoves = 800
	res := fwMap(t, fw, g)
	if !res.OK {
		t.Fatal("failed to map custom kernel")
	}
}

func TestPortabilityAcrossTargets(t *testing.T) {
	g, _ := lisa.Kernel("syrk")
	mapped := 0
	for _, ar := range lisa.Targets() {
		fw := lisa.New(ar)
		fw.MapOpts.MaxMoves = 1200
		res := fwMap(t, fw, g)
		if res.OK {
			mapped++
			if err := fw.Verify(g, &res); err != nil {
				t.Errorf("%s: %v", ar.Name(), err)
			}
		}
	}
	if mapped < 5 {
		t.Errorf("syrk mapped on only %d/6 targets", mapped)
	}
}

func TestDescribeFailure(t *testing.T) {
	fw := lisa.New(lisa.Systolic5x5())
	g, _ := lisa.Kernel("trmm")
	res := fwMap(t, fw, g)
	if res.OK {
		t.Fatal("trmm on systolic must fail")
	}
	desc := lisa.Describe(fw.Arch, g, &res)
	if !strings.Contains(desc, "no mapping") {
		t.Errorf("failure description malformed: %s", desc)
	}
}

func TestUnrollExported(t *testing.T) {
	g, _ := lisa.Kernel("gemm")
	u := lisa.Unroll(g, 2)
	if u.NumNodes() <= g.NumNodes() {
		t.Fatal("unroll did not grow the DFG")
	}
	u2, err := lisa.KernelUnrolled("gemm")
	if err != nil || u2.NumNodes() != u.NumNodes() {
		t.Fatal("KernelUnrolled inconsistent with Unroll")
	}
}

func TestPublicSimulateAndReports(t *testing.T) {
	fw := lisa.New(lisa.CGRA4x4())
	fw.MapOpts.MaxMoves = 1500
	fw.MapOpts.Seed = 2
	g, _ := lisa.Kernel("syrk")
	res := fwMap(t, fw, g)
	if !res.OK {
		t.Fatal("map failed")
	}
	tr, err := fw.Simulate(g, &res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalCycles <= 0 || len(tr.Stores) == 0 {
		t.Fatal("trace empty")
	}
	u, err := fw.Utilization(g, &res)
	if err != nil || u.FUCompute <= 0 {
		t.Fatalf("utilization: %v %+v", err, u)
	}
	table := fw.ScheduleTable(g, &res)
	if !strings.Contains(table, "cycle") {
		t.Fatal("schedule table malformed")
	}
}

func TestPublicLoadArch(t *testing.T) {
	spec := `{"name":"tiny-2x3","rows":2,"cols":3,
	          "defaults":{"registers":2,"ops":"all"}}`
	ar, err := lisa.LoadArch(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	fw := lisa.New(ar)
	fw.MapOpts.MaxMoves = 1500
	g, _ := lisa.Kernel("doitgen")
	res := fwMap(t, fw, g)
	if !res.OK {
		t.Fatal("custom arch mapping failed")
	}
	if err := fw.Verify(g, &res); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExtendedTargets(t *testing.T) {
	if len(lisa.ExtendedTargets()) != 8 {
		t.Fatal("extended targets must include torus and hetero variants")
	}
	if lisa.Torus4x4().Name() == "" || lisa.Hetero4x4().Name() == "" {
		t.Fatal("variant constructors broken")
	}
}

func TestPublicDFGLoaders(t *testing.T) {
	g, _ := lisa.Kernel("gemm")
	var dot bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	back, err := lisa.ParseDOT(&dot)
	if err != nil || back.NumNodes() != g.NumNodes() {
		t.Fatalf("DOT round trip: %v", err)
	}
	var js bytes.Buffer
	if err := g.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back2, err := lisa.ReadDFG(&js)
	if err != nil || back2.NumEdges() != g.NumEdges() {
		t.Fatalf("JSON round trip: %v", err)
	}
}
