// Simulate: map a kernel, then *execute* the mapping cycle-accurately for a
// few pipelined loop iterations. The simulator pushes every value hop-by-hop
// along its committed route, enforces per-cycle resource capacities under
// full iteration overlap, and checks the store output stream against a
// direct evaluation of the DFG — an end-to-end proof that the schedule
// computes the right thing, not just that it "fits".
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	lisa "github.com/lisa-go/lisa"
)

func main() {
	fw := lisa.New(lisa.CGRA4x4())
	fw.MapOpts.Seed = 5

	g, err := lisa.Kernel("atax")
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.Map(g)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatal("mapping failed")
	}

	u, err := fw.Utilization(g, &res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping:", u)
	fmt.Println("\nschedule (one iteration):")
	fmt.Println(fw.ScheduleTable(g, &res))

	const iterations = 6
	trace, err := fw.Simulate(g, &res, iterations)
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	fmt.Printf("simulated %d pipelined iterations in %d cycles (II=%d)\n",
		trace.Iterations, trace.TotalCycles, trace.II)
	fmt.Printf("output stream (%d store events, values verified against the DFG):\n",
		len(trace.Stores))
	for _, e := range trace.Stores {
		fmt.Printf("  cycle %3d  iter %d  node %-8s  mem[%d] <- %d\n",
			e.Cycle, e.Iteration, g.Nodes[e.Node].Name, e.Addr, e.Value)
	}

	serial := iterations * u.ScheduleLength
	fmt.Printf("\npipelining: %d cycles total vs %d if iterations ran back-to-back (%.1fx)\n",
		trace.TotalCycles, serial, float64(serial)/float64(trace.TotalCycles))
}
