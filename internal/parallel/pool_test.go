package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryAcceptedTask(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 100; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			accepted++
		} else {
			// Full queue: drain a moment and keep going.
			time.Sleep(time.Millisecond)
			i--
		}
	}
	p.Close()
	if int(ran.Load()) != accepted {
		t.Fatalf("accepted %d tasks but ran %d", accepted, ran.Load())
	}
	if accepted != 100 {
		t.Fatalf("only %d of 100 tasks were eventually accepted", accepted)
	}
}

func TestPoolRefusesWhenQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first task refused")
	}
	<-started // worker is now busy; the queue slot is free
	if !p.TrySubmit(func() {}) {
		t.Fatal("queued task refused with an empty queue")
	}
	if p.TrySubmit(func() { t.Error("over-admitted task ran") }) {
		t.Fatal("task accepted beyond the queue bound")
	}
	close(block)
}

func TestPoolCloseStopsAdmissionAndDrains(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.TrySubmit(func() { time.Sleep(time.Millisecond); ran.Add(1) })
	}
	p.Close()
	if p.TrySubmit(func() { t.Error("task ran after Close") }) {
		t.Fatal("TrySubmit accepted work after Close")
	}
	if ran.Load() == 0 {
		t.Fatal("Close did not drain queued tasks")
	}
	p.Close() // idempotent
}

// Hammer TrySubmit against Close under the race detector: submissions must
// either run or be refused, never panic on the closed channel.
func TestPoolSubmitCloseRace(t *testing.T) {
	p := NewPool(2, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.TrySubmit(func() {})
			}
		}()
	}
	time.Sleep(500 * time.Microsecond)
	p.Close()
	wg.Wait()
}

// A panicking task must not kill its worker: every other task still runs,
// and the installed handler observes the panic value and a stack trace.
func TestPoolSurvivesPanickingTasks(t *testing.T) {
	p := NewPool(2, 64)
	defer p.Close()

	var panics atomic.Int32
	var sawStack atomic.Bool
	p.OnPanic(func(recovered any, stack []byte) {
		panics.Add(1)
		if recovered == "boom" && len(stack) > 0 {
			sawStack.Store(true)
		}
	})

	const tasks = 40
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		i := i
		wg.Add(1)
		ok := p.TrySubmit(func() {
			defer wg.Done()
			if i%4 == 0 {
				panic("boom")
			}
			ran.Add(1)
		})
		if !ok {
			wg.Done()
			t.Fatalf("task %d refused by an idle pool", i)
		}
	}
	wg.Wait()
	if got := ran.Load(); got != tasks-tasks/4 {
		t.Fatalf("ran %d non-panicking tasks, want %d", got, tasks-tasks/4)
	}
	if got := panics.Load(); got != tasks/4 {
		t.Fatalf("handler saw %d panics, want %d", got, tasks/4)
	}
	if !sawStack.Load() {
		t.Fatal("handler never saw the panic value with a stack trace")
	}
}

func TestPoolPanicWithoutHandlerIsSwallowed(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	done := make(chan struct{})
	if !p.TrySubmit(func() { defer close(done); panic("quiet") }) {
		t.Fatal("submit refused")
	}
	<-done
	// The worker must still be alive to run this.
	ok := make(chan struct{})
	if !p.TrySubmit(func() { close(ok) }) {
		t.Fatal("submit after panic refused")
	}
	<-ok
}
