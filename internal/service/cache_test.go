package service

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/engine"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2, 0)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	c.Add("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheFirstBytesWin(t *testing.T) {
	c := NewCache(4, 0)
	c.Add("k", []byte("original"))
	c.Add("k", []byte("imposter"))
	got, _ := c.Get("k")
	if !bytes.Equal(got, []byte("original")) {
		t.Fatalf("re-Add replaced content-addressed bytes: %q", got)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	const followers = 7
	results := make([][]byte, followers+1)
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		res, shared := g.do("k", nil, func() flightResult {
			close(started)
			runs.Add(1)
			<-release
			return flightResult{body: []byte("payload"), status: 200}
		})
		if shared {
			t.Error("leader reported shared")
		}
		results[followers] = res.body
	}()
	<-started
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, shared := g.do("k", nil, func() flightResult {
				runs.Add(1)
				return flightResult{body: []byte("wrong"), status: 200}
			})
			if res.err != nil || !shared {
				t.Errorf("follower %d: err=%v shared=%v", i, res.err, shared)
			}
			results[i] = res.body
		}(i)
	}
	// Release the leader only after every follower has joined the in-flight
	// call; otherwise a late follower legitimately becomes a fresh leader.
	for g.waiting("k") != followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	<-leaderDone

	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("payload")) {
			t.Fatalf("caller %d saw %q", i, r)
		}
	}
	// The entry must be gone so the next request goes through the cache.
	_, shared := g.do("k", nil, func() flightResult { return flightResult{status: 200} })
	if shared {
		t.Fatal("completed flight entry not removed")
	}
}

func TestFlightGroupFollowerCancel(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	go g.do("k", nil, func() flightResult {
		close(started)
		<-release
		return flightResult{status: 200}
	})
	<-started
	cancel := make(chan struct{})
	close(cancel)
	res, _ := g.do("k", cancel, func() flightResult { return flightResult{status: 200} })
	if res.err != errCanceled {
		t.Fatalf("canceled follower got err=%v, want errCanceled", res.err)
	}
	close(release)
}

func TestCacheKeyDiscriminates(t *testing.T) {
	gemm := kernels.MustByName("gemm")
	atax := kernels.MustByName("atax")
	base := cacheKey(gemm, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 0)

	variants := map[string]string{
		"arch":     cacheKey(gemm, "cgra-8x8", engine.SA, mapper.Options{Seed: 1}, 0),
		"engine":   cacheKey(gemm, "cgra-4x4", engine.LISA, mapper.Options{Seed: 1}, 0),
		"seed":     cacheKey(gemm, "cgra-4x4", engine.SA, mapper.Options{Seed: 2}, 0),
		"moves":    cacheKey(gemm, "cgra-4x4", engine.SA, mapper.Options{Seed: 1, MaxMoves: 9}, 0),
		"deadline": cacheKey(gemm, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 5000),
		"dfg":      cacheKey(atax, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 0),
	}
	for what, key := range variants {
		if key == base {
			t.Errorf("cache key ignores %s", what)
		}
	}

	// Normalization: zero knobs and explicit defaults share an entry.
	def := mapper.DefaultOptions()
	def.Seed = 1
	if cacheKey(gemm, "cgra-4x4", engine.SA, def, 0) != base {
		t.Error("explicit default options hash differently from zero options")
	}
	// Names never reach the key.
	renamed := kernels.MustByName("gemm")
	renamed.Name = "whatever"
	if cacheKey(renamed, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 0) != base {
		t.Error("cache key depends on the graph name")
	}
}

// The cache key must agree for a built-in kernel and the same DFG uploaded
// as JSON — the content-addressing property.
func TestCacheKeyContentAddressed(t *testing.T) {
	g := kernels.MustByName("gemm")
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := dfg.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := cacheKey(g, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 0)
	b := cacheKey(back, "cgra-4x4", engine.SA, mapper.Options{Seed: 1}, 0)
	if a != b {
		t.Fatalf("kernel and round-tripped DFG hash differently:\n%s\n%s",
			fmt.Sprintf("%.16s", a), fmt.Sprintf("%.16s", b))
	}
}
