package experiments

import (
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
)

// The portfolio sweep is deterministic across worker counts, never maps
// worse at a larger width (chain 0 IS the smaller-width run), and renders
// the quality-vs-wallclock table EXPERIMENTS.md embeds.
func TestPortfolioSweepShapeAndMonotonicity(t *testing.T) {
	ar := arch.NewBaseline4x4()
	names := []string{"gemm", "atax", "bicg"}

	c := NewContext(testProfile())
	sw := c.Portfolio(ar, names, []int{1, 2, 4})
	if len(sw.Rows) != len(names) {
		t.Fatalf("rows = %d, want %d", len(sw.Rows), len(names))
	}
	mapped := 0
	for _, r := range sw.Rows {
		for _, k := range sw.Ks {
			cell, ok := r.Cells[k]
			if !ok {
				t.Fatalf("%s: missing K=%d cell", r.Kernel, k)
			}
			if cell.OK {
				mapped++
			}
		}
		c1, c4 := r.Cells[1], r.Cells[4]
		if c1.OK && (!c4.OK || c4.II > c1.II) {
			t.Errorf("%s: K=4 II=%d (ok=%v) worse than K=1 II=%d",
				r.Kernel, c4.II, c4.OK, c1.II)
		}
		if c1.Winner != 0 || c1.Variant != "" {
			t.Errorf("%s: K=1 cell carries portfolio metadata: winner=%d variant=%q",
				r.Kernel, c1.Winner, c1.Variant)
		}
	}
	if mapped < 6 {
		t.Errorf("only %d/9 cells mapped", mapped)
	}

	// Identical results (timing aside) on the exact serial path.
	serial := testProfile()
	serial.Workers = 1
	sw2 := NewContext(serial).Portfolio(ar, names, []int{1, 2, 4})
	for i, r := range sw.Rows {
		for _, k := range sw.Ks {
			a, b := r.Cells[k], sw2.Rows[i].Cells[k]
			a.Duration, b.Duration = 0, 0
			if a != b {
				t.Errorf("%s K=%d differs across worker counts: %+v vs %+v", r.Kernel, k, a, b)
			}
		}
	}

	var sb strings.Builder
	if err := sw.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Portfolio annealing", "gemm", "K=4", "wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
