// Package fault is a deterministic, seeded fault-injection registry for the
// mapping pipeline. Production placement stacks pair the learned path with a
// deterministic fallback; exercising that fallback requires a failure model,
// and this package is it: a small set of named sites (model load, lazy
// training, the annealer, the router, the result cache, pool admission) that
// can be armed with a per-site probability and failure mode.
//
// Three properties drive the design:
//
//   - Deterministic: whether a site fires is a pure function of
//     (plan seed, site name, caller token) — a splitmix64 hash of the
//     triple, compared against the site's probability. The token is
//     request-scoped (the mapping seed for request-path sites, a name hash
//     for startup-path sites), so a fixed fault seed reproduces the exact
//     same faults for the same request stream, in any order, under any
//     scheduler. There is no shared RNG stream to race on.
//
//   - Zero-overhead when disabled: Inject with no active plan is one atomic
//     pointer load and a return. No locks, no allocation, no map lookup.
//
//   - Contained: error-mode faults surface as *fault.Error so recovery
//     layers can tell injected failures from organic ones; panic-mode
//     faults panic with *fault.PanicValue for the same reason.
package fault

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one instrumented failure point. The set is closed: arming an
// unknown site is a configuration error, caught at Activate time rather
// than silently never firing.
type Site string

// The instrumented sites of the mapping pipeline.
const (
	RegistryLoad   Site = "registry.load"   // model-file load (corrupt/unreadable model)
	GNNTrain       Site = "gnn.train"       // lazy on-demand training run
	MapperAnneal   Site = "mapper.anneal"   // SA-family engine invocation
	RouterDijkstra Site = "router.dijkstra" // exact-length route search
	CacheGet       Site = "cache.get"       // result-cache lookup
	PoolSubmit     Site = "pool.submit"     // worker-pool admission
	StoreRead      Site = "store.read"      // persistent result-store lookup
	StoreWrite     Site = "store.write"     // persistent result-store write (fires as a torn write)
	PeerRPC        Site = "peer.rpc"        // cluster peer proxy call / health probe
	ModelFetch     Site = "model.fetch"     // trained-model fetch from a ring peer
	// MapperPortfolio fires per portfolio chain, streamed by the chain's
	// derived seed: a sub-1 probability poisons a deterministic strict
	// subset of a restart race, which must degrade to the surviving
	// chains' winner rather than fail the request.
	MapperPortfolio Site = "mapper.portfolio"
)

// Sites lists every instrumented site in stable order.
func Sites() []Site {
	return []Site{RegistryLoad, GNNTrain, MapperAnneal, RouterDijkstra, CacheGet, PoolSubmit,
		StoreRead, StoreWrite, PeerRPC, ModelFetch, MapperPortfolio}
}

// Mode selects what an armed site does when it fires.
type Mode uint8

// The failure modes.
const (
	ModeError   Mode = iota // return a *fault.Error
	ModePanic               // panic with a *fault.PanicValue
	ModeLatency             // sleep for the configured latency, then proceed
)

// String returns the spec-syntax name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

func parseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "panic":
		return ModePanic, nil
	case "latency":
		return ModeLatency, nil
	}
	return 0, fmt.Errorf("fault: unknown mode %q (error|panic|latency)", s)
}

// SiteConfig arms one site.
type SiteConfig struct {
	Prob    float64       // firing probability in [0, 1]
	Mode    Mode          // what firing does
	Latency time.Duration // sleep length for ModeLatency
}

// Plan is a full fault configuration: a seed and the armed sites.
type Plan struct {
	Seed  int64
	Sites map[Site]SiteConfig
}

// Error is the error returned by an error-mode fault.
type Error struct{ Site Site }

func (e *Error) Error() string { return "fault: injected error at " + string(e.Site) }

// PanicValue is the value a panic-mode fault panics with.
type PanicValue struct{ Site Site }

func (p *PanicValue) String() string { return "fault: injected panic at " + string(p.Site) }

// ParsePlan parses a fault spec of the form
//
//	site=mode:prob[:latency][,site=mode:prob[:latency]...]
//
// e.g. "mapper.anneal=error:1,cache.get=latency:0.5:50ms". An empty spec
// returns a nil plan (faults disabled).
func ParsePlan(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: seed, Sites: make(map[Site]SiteConfig)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad site spec %q (want site=mode:prob[:latency])", part)
		}
		site := Site(strings.TrimSpace(name))
		if !knownSite(site) {
			return nil, fmt.Errorf("fault: unknown site %q (have %v)", site, Sites())
		}
		fields := strings.Split(rest, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("fault: bad site spec %q (want site=mode:prob[:latency])", part)
		}
		mode, err := parseMode(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability %q for %s (want [0,1])", fields[1], site)
		}
		cfg := SiteConfig{Prob: prob, Mode: mode}
		if mode == ModeLatency {
			if len(fields) != 3 {
				return nil, fmt.Errorf("fault: latency mode for %s needs a duration (e.g. %s=latency:1:50ms)", site, site)
			}
			d, err := time.ParseDuration(strings.TrimSpace(fields[2]))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad latency %q for %s", fields[2], site)
			}
			cfg.Latency = d
		} else if len(fields) == 3 {
			return nil, fmt.Errorf("fault: mode %s for %s takes no latency field", mode, site)
		}
		if _, dup := p.Sites[site]; dup {
			return nil, fmt.Errorf("fault: site %s armed twice", site)
		}
		p.Sites[site] = cfg
	}
	return p, nil
}

// FromEnv builds a plan from the LISA_FAULTS spec and LISA_FAULT_SEED
// environment variables. Unset or empty LISA_FAULTS returns a nil plan.
func FromEnv() (*Plan, error) {
	spec := os.Getenv("LISA_FAULTS")
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	seed := int64(1)
	if s := os.Getenv("LISA_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad LISA_FAULT_SEED %q: %v", s, err)
		}
		seed = v
	}
	return ParsePlan(spec, seed)
}

func knownSite(s Site) bool {
	for _, k := range Sites() {
		if s == k {
			return true
		}
	}
	return false
}

// String renders the plan back in spec syntax (sites in stable order), for
// startup logs.
func (p *Plan) String() string {
	if p == nil || len(p.Sites) == 0 {
		return "faults disabled"
	}
	var parts []string
	for _, site := range Sites() {
		cfg, ok := p.Sites[site]
		if !ok {
			continue
		}
		s := fmt.Sprintf("%s=%s:%g", site, cfg.Mode, cfg.Prob)
		if cfg.Mode == ModeLatency {
			s += ":" + cfg.Latency.String()
		}
		parts = append(parts, s)
	}
	return fmt.Sprintf("faults[seed=%d] %s", p.Seed, strings.Join(parts, ","))
}

// active is the armed plan; nil means disabled. Swapped atomically so the
// disabled-path cost in hot loops is a single pointer load.
var active atomic.Pointer[Plan]

// injected counts fires per site; slot order matches Sites().
var injected [11]atomic.Int64

func siteIndex(s Site) int {
	for i, k := range Sites() {
		if s == k {
			return i
		}
	}
	return -1
}

// Activate arms the plan process-wide (nil disables, like Deactivate) and
// resets the injection counters. It validates site names and probabilities
// so a typo fails loudly instead of never firing.
func Activate(p *Plan) error {
	if p != nil {
		// Validate in sorted site order so a plan with several bad entries
		// always reports the same one first.
		sites := make([]Site, 0, len(p.Sites))
		for site := range p.Sites {
			sites = append(sites, site)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, site := range sites {
			cfg := p.Sites[site]
			if !knownSite(site) {
				return fmt.Errorf("fault: unknown site %q (have %v)", site, Sites())
			}
			if cfg.Prob < 0 || cfg.Prob > 1 {
				return fmt.Errorf("fault: site %s probability %g outside [0,1]", site, cfg.Prob)
			}
			if cfg.Mode == ModeLatency && cfg.Latency < 0 {
				return fmt.Errorf("fault: site %s negative latency", site)
			}
		}
	}
	for i := range injected {
		injected[i].Store(0)
	}
	active.Store(p)
	return nil
}

// Deactivate disarms all sites.
func Deactivate() { active.Store(nil) }

// Enabled reports whether any plan is armed.
func Enabled() bool { return active.Load() != nil }

// Counts reports how many times each site has fired since Activate.
// Only sites with a nonzero count appear; iteration of the result must be
// sorted by the caller (it is a map).
func Counts() map[Site]int64 {
	out := make(map[Site]int64)
	for i, site := range Sites() {
		if n := injected[i].Load(); n > 0 {
			out[site] = n
		}
	}
	return out
}

// CountsString renders the fire counts in stable order, for logs and tests.
func CountsString() string {
	c := Counts()
	var parts []string
	for _, site := range Sites() {
		if n, ok := c[site]; ok {
			parts = append(parts, fmt.Sprintf("%s:%d", site, n))
		}
	}
	sort.Strings(parts) // Sites() order is already stable; sort keeps callers honest
	return strings.Join(parts, ",")
}

// Token hashes a string (an arch name, a model path) into a stream token
// for sites that have no request seed in scope. FNV-1a, 64-bit.
func Token(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Inject consults the armed plan for site under the caller's stream token.
// With no plan armed it returns nil immediately. When the site fires:
// ModeError returns a *fault.Error, ModePanic panics with a *fault.PanicValue,
// ModeLatency sleeps the configured duration and returns nil.
func Inject(site Site, token uint64) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	cfg, ok := p.Sites[site]
	if !ok || !decide(uint64(p.Seed), site, token, cfg.Prob) {
		return nil
	}
	if i := siteIndex(site); i >= 0 {
		injected[i].Add(1)
	}
	switch cfg.Mode {
	case ModeLatency:
		if cfg.Latency > 0 {
			time.Sleep(cfg.Latency)
		}
		return nil
	case ModePanic:
		panic(&PanicValue{Site: site})
	default:
		return &Error{Site: site}
	}
}

// decide is the per-request decision stream: a splitmix64 hash of
// (seed, site, token) compared against prob. Pure function — the same
// triple always decides the same way, so faults reproduce under a fixed
// seed regardless of goroutine scheduling or call order.
func decide(seed uint64, site Site, token uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	z := seed ^ Token(string(site)) ^ (token * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	// Top 53 bits → uniform in [0,1).
	return float64(z>>11)/(1<<53) < prob
}
