package arch

import (
	"io"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Custom is the generic accelerator compiled from a Spec: per-PE op masks
// and register files, configurable interconnect (mesh / torus / diagonals).
// The built-in targets could all be expressed as Specs; Custom exists so a
// user can bring a *description* of their accelerator and get the whole LISA
// pipeline (training, labels, mapping, simulation) with no code changes.
type Custom struct {
	spec   Spec
	opMask []uint32 // per PE
	regs   []int    // per PE
	memPE  []bool   // per PE: may execute loads/stores
}

// Build compiles a validated Spec into an Arch.
func (s *Spec) Build() (*Custom, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := s.Rows * s.Cols
	c := &Custom{
		spec:   *s,
		opMask: make([]uint32, n),
		regs:   make([]int, n),
		memPE:  make([]bool, n),
	}
	defMask, _ := parseOpsField(s.Defaults.Ops)
	if defMask == 0 {
		defMask = allOpsMask()
	}
	defRegs := 4
	if s.Defaults.Registers != nil {
		defRegs = *s.Defaults.Registers
	}
	for pe := 0; pe < n; pe++ {
		c.opMask[pe] = defMask
		c.regs[pe] = defRegs
	}
	for _, ps := range s.PEs {
		pe := ps.At[0]*s.Cols + ps.At[1]
		if mask, _ := parseOpsField(ps.Ops); mask != 0 {
			c.opMask[pe] = mask
		}
		if ps.Registers != nil {
			c.regs[pe] = *ps.Registers
		}
	}
	// The memory policy alone governs load/store: memory PEs gain the
	// memory ops regardless of their ALU op list, every other PE loses
	// them. Spec op lists therefore only need to describe the ALU.
	memMask := maskOf(dfg.OpLoad, dfg.OpStore)
	for pe := 0; pe < n; pe++ {
		_, col := c.Coord(pe)
		switch s.Memory.Policy {
		case "", "all":
			c.memPE[pe] = true
		case "leftColumn":
			c.memPE[pe] = col == 0
		case "custom":
			for _, at := range s.Memory.PEs {
				if at[0]*s.Cols+at[1] == pe {
					c.memPE[pe] = true
				}
			}
		}
		if c.memPE[pe] {
			c.opMask[pe] |= memMask
		} else {
			c.opMask[pe] &^= memMask
		}
	}
	return c, nil
}

// LoadArch parses a Spec from r and builds it.
func LoadArch(r io.Reader) (*Custom, error) {
	s, err := ParseSpec(r)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// Name implements Arch.
func (c *Custom) Name() string { return c.spec.Name }

// NumPEs implements Arch.
func (c *Custom) NumPEs() int { return c.spec.Rows * c.spec.Cols }

// Coord implements Arch.
func (c *Custom) Coord(pe int) (row, col int) { return pe / c.spec.Cols, pe % c.spec.Cols }

// PEAt returns the PE index at (row, col).
func (c *Custom) PEAt(row, col int) int { return row*c.spec.Cols + col }

// SpatialDistance implements Arch: Chebyshev when diagonals exist, wrapped
// when the fabric is a torus, Manhattan otherwise.
func (c *Custom) SpatialDistance(a, b int) int {
	r1, c1 := c.Coord(a)
	r2, c2 := c.Coord(b)
	dr := absInt(r1 - r2)
	dc := absInt(c1 - c2)
	if c.spec.Links.Torus {
		if w := c.spec.Rows - dr; w < dr {
			dr = w
		}
		if w := c.spec.Cols - dc; w < dc {
			dc = w
		}
	}
	if c.spec.Links.Diagonal {
		if dr > dc {
			return dr
		}
		return dc
	}
	return dr + dc
}

// SupportsOp implements Arch.
func (c *Custom) SupportsOp(pe int, op dfg.OpKind) bool {
	return c.opMask[pe]&(1<<uint(op)) != 0
}

// MaxII implements Arch.
func (c *Custom) MaxII() int { return c.spec.MaxII }

// MinII implements Arch: compute bound, memory bound, and per-op-class
// bounds for heterogeneous fabrics.
func (c *Custom) MinII(g *dfg.Graph) int {
	ii := ceilDiv(g.NumNodes(), c.NumPEs())
	memPEs := 0
	for _, ok := range c.memPE {
		if ok {
			memPEs++
		}
	}
	if m := ceilDiv(g.MemOpCount(), memPEs); m > ii {
		ii = m
	}
	// Per-op-kind bound: ops of a kind only run on PEs supporting it.
	counts := dfg.OpHistogram(g)
	for op, cnt := range counts {
		supp := 0
		for pe := 0; pe < c.NumPEs(); pe++ {
			if c.SupportsOp(pe, op) {
				supp++
			}
		}
		if supp == 0 {
			continue // unmappable; the mapper reports failure
		}
		if m := ceilDiv(cnt, supp); m > ii {
			ii = m
		}
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// neighbors returns the out-neighborhood per the link spec.
func (c *Custom) neighbors(pe int) []int {
	r, cc := c.Coord(pe)
	var out []int
	add := func(nr, nc int) {
		if c.spec.Links.Torus {
			nr = (nr + c.spec.Rows) % c.spec.Rows
			nc = (nc + c.spec.Cols) % c.spec.Cols
		} else if nr < 0 || nr >= c.spec.Rows || nc < 0 || nc >= c.spec.Cols {
			return
		}
		n := c.PEAt(nr, nc)
		if n == pe {
			return
		}
		for _, seen := range out {
			if seen == n {
				return
			}
		}
		out = append(out, n)
	}
	// Mesh defaults on unless some other pattern is selected explicitly.
	mesh := c.spec.Links.Mesh || (!c.spec.Links.Diagonal && !c.spec.Links.Mesh)
	if mesh || c.spec.Links.Torus {
		add(r-1, cc)
		add(r+1, cc)
		add(r, cc-1)
		add(r, cc+1)
	}
	if c.spec.Links.Diagonal {
		add(r-1, cc-1)
		add(r-1, cc+1)
		add(r+1, cc-1)
		add(r+1, cc+1)
	}
	return out
}

// BuildRGraph implements Arch with the same per-cycle compute-or-route FU +
// register-file structure as the built-in CGRA.
func (c *Custom) BuildRGraph(ii int) *rgraph.Graph {
	if ii < 1 || ii > c.MaxII() {
		panic("arch: II out of range for " + c.Name())
	}
	g := rgraph.NewGraph(ii)
	n := c.NumPEs()
	fuID := make([][]int, n)
	regID := make([][]int, n)
	for pe := 0; pe < n; pe++ {
		fuID[pe] = make([]int, ii)
		regID[pe] = make([]int, ii)
		for t := 0; t < ii; t++ {
			fuID[pe][t] = g.AddNode(rgraph.Node{
				Kind: rgraph.KindFU, PE: pe, Cycle: t, Cap: 1,
				ComputeOK: true, RouteOK: true, OpsMask: c.opMask[pe],
			})
			if c.regs[pe] > 0 {
				regID[pe][t] = g.AddNode(rgraph.Node{
					Kind: rgraph.KindReg, PE: pe, Cycle: t, Cap: c.regs[pe],
					RouteOK: true,
				})
			} else {
				regID[pe][t] = -1
			}
		}
	}
	for pe := 0; pe < n; pe++ {
		nbs := c.neighbors(pe)
		for t := 0; t < ii; t++ {
			nt := (t + 1) % ii
			g.AddEdge(fuID[pe][t], fuID[pe][nt])
			for _, nb := range nbs {
				g.AddEdge(fuID[pe][t], fuID[nb][nt])
			}
			if regID[pe][t] >= 0 {
				g.AddEdge(fuID[pe][t], regID[pe][nt])
				g.AddEdge(regID[pe][t], regID[pe][nt])
				g.AddEdge(regID[pe][t], fuID[pe][nt])
				for _, nb := range nbs {
					g.AddEdge(regID[pe][t], fuID[nb][nt])
				}
			}
		}
	}
	return g
}
