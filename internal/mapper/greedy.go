package mapper

import (
	"sort"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/labels"
)

// MapGreedy is a deterministic list-scheduling mapper in the mould of the
// classic hybrid heuristics the paper's related work surveys (modulo graph
// embedding, edge-centric modulo scheduling): nodes are placed one pass in
// priority order (critical-path height first), each on the locally cheapest
// compatible slot, and each incoming edge is routed immediately. No
// backtracking, no annealing — it is extremely fast, finds decent mappings
// when resources are plentiful, and gives up where the paper says greedy
// local views give up: dense DFGs on constrained arrays.
//
// It shares the engine state with the SA mappers, so its results pass the
// same Verify/sim checks.
func MapGreedy(ar arch.Arch, g *dfg.Graph, opts Options) Result {
	opts = opts.withDefaults()
	an := dfg.Analyze(g)
	lbl := labels.Initial(an)

	start := time.Now()
	res := Result{}
	maxII := ar.MaxII()
	if opts.MaxII > 0 && opts.MaxII < maxII {
		maxII = opts.MaxII
	}
	for ii := ar.MinII(g); ii <= maxII; ii++ {
		res.TriedIIs = append(res.TriedIIs, ii)
		st := newState(ar, g, an, ii, lbl, config{}, opts.Alpha, nil)
		st.faultToken = uint64(opts.Seed)
		if greedyPass(st, an) {
			res.OK = true
			res.II = ii
			res.PE = append([]int(nil), st.pe...)
			res.Time = append([]int(nil), st.time...)
			res.EdgeHops = make([]int, g.NumEdges())
			res.Routes = make([][]int, g.NumEdges())
			for e, p := range st.routes {
				res.EdgeHops[e] = len(p) - 1
				res.Routes[e] = append([]int(nil), p...)
			}
			res.RoutingCost = st.routingCost()
			break
		}
		if st.faultErr != nil {
			// An injected router fault fails every II the same way; one
			// attempt is evidence enough.
			break
		}
	}
	res.Duration = time.Since(start)
	return res
}

// greedyPass places and routes every node once; it reports success only if
// the complete mapping is valid.
func greedyPass(st *state, an *dfg.Analysis) bool {
	g := st.g
	// Height-based priority: nodes on long downward chains first within an
	// ASAP level (standard list-scheduling priority).
	height := make([]int, g.NumNodes())
	for i := len(an.Topo) - 1; i >= 0; i-- {
		v := an.Topo[i]
		for _, s := range g.Succ(v) {
			if height[s]+1 > height[v] {
				height[v] = height[s] + 1
			}
		}
	}
	order := make([]int, g.NumNodes())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if an.ASAP[a] != an.ASAP[b] {
			return an.ASAP[a] < an.ASAP[b]
		}
		if height[a] != height[b] {
			return height[a] > height[b]
		}
		return a < b
	})

	var placed []int // PEs hosting ops, for the spreading tie-break
	for _, v := range order {
		cands := st.candidates(v)
		if len(cands) == 0 {
			return false
		}
		// Deterministic local cost: earliest time, then closest to placed
		// parents, then smallest PE index. Parentless candidates (constants,
		// first loads) spread out instead of clustering: packing them into
		// one corner walls off its routing — literally the failure of the
		// paper's Fig. 5a — so for them "distance" is the negated distance
		// to the nearest already-placed op.
		type scored struct {
			slot
			key [3]int
		}
		var feas []scored
		for _, c := range cands {
			distSum := 0
			anchored := false
			feasible := true
			for _, ei := range g.InEdges(v) {
				u := g.Edges[ei].From
				if st.pe[u] < 0 {
					continue
				}
				anchored = true
				dt := c.t - st.time[u]
				sd := st.ar.SpatialDistance(c.pe, st.pe[u])
				if dt < 1 || sd > dt {
					feasible = false
					break
				}
				distSum += sd
			}
			if !feasible {
				continue
			}
			if !anchored && len(placed) > 0 {
				nearest := 1 << 30
				for _, p := range placed {
					if d := st.ar.SpatialDistance(c.pe, p); d < nearest {
						nearest = d
					}
				}
				distSum = -nearest
			}
			feas = append(feas, scored{slot: c, key: [3]int{c.t, distSum, c.pe}})
		}
		sort.Slice(feas, func(i, j int) bool { return keyLess(feas[i].key, feas[j].key) })
		// Local repair: walk the candidate ranking until one both places
		// and routes. This is per-node only — no global backtracking, so
		// the engine remains a one-pass list scheduler.
		const maxTries = 24
		success := false
		for ci, c := range feas {
			if ci >= maxTries {
				break
			}
			fu := st.fuAt(c.pe, c.t)
			if !st.occ.PlaceOp(fu, v) {
				continue
			}
			st.place(v, c.pe, c.t)
			var routed []int
			ok := true
			for _, ei := range g.InEdges(v) {
				if st.pe[g.Edges[ei].From] < 0 {
					continue
				}
				if st.routeEdge(ei) {
					routed = append(routed, ei)
				} else {
					ok = false
					break
				}
			}
			if ok {
				success = true
				placed = append(placed, c.pe)
				break
			}
			for _, ei := range routed {
				st.unroute(ei)
			}
			st.occ.RemoveOp(fu, v)
			st.unplace(v)
		}
		if !success {
			return false
		}
	}
	return st.valid()
}

func keyLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
