package attr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
)

func TestDimensionsMatchConstants(t *testing.T) {
	g := kernels.MustByName("gemm")
	s := Generate(g)
	if len(s.Node) != g.NumNodes() {
		t.Fatalf("node rows = %d, want %d", len(s.Node), g.NumNodes())
	}
	for _, r := range s.Node {
		if len(r) != NodeAttrDim {
			t.Fatalf("node attr dim = %d, want %d", len(r), NodeAttrDim)
		}
	}
	if len(s.Edge) != g.NumEdges() {
		t.Fatalf("edge rows = %d", len(s.Edge))
	}
	for _, r := range s.Edge {
		if len(r) != EdgeAttrDim {
			t.Fatalf("edge attr dim = %d, want %d", len(r), EdgeAttrDim)
		}
	}
	if len(s.Dummy) != len(s.DummyPairs) {
		t.Fatal("dummy rows != pairs")
	}
	for _, r := range s.Dummy {
		if len(r) != DummyAttrDim {
			t.Fatalf("dummy attr dim = %d, want %d", len(r), DummyAttrDim)
		}
	}
}

func TestNodeAttributeSemantics(t *testing.T) {
	g := kernels.MustByName("gemm")
	s := Generate(g)
	an := s.An
	for v := range g.Nodes {
		row := s.Node[v]
		if row[0] != float64(an.ASAP[v]) {
			t.Errorf("node %d attr[0] != ASAP", v)
		}
		if row[1] != float64(g.InDegree(v)) || row[2] != float64(g.OutDegree(v)) {
			t.Errorf("node %d degree attrs wrong", v)
		}
		if row[3] != float64(an.NumAncestors(v)) || row[4] != float64(an.NumDescendants(v)) {
			t.Errorf("node %d ancestor/descendant attrs wrong", v)
		}
		if row[5] != float64(g.Nodes[v].Op) {
			t.Errorf("node %d op attr wrong", v)
		}
	}
}

func TestEdgeAttributeSemantics(t *testing.T) {
	g := kernels.MustByName("atax")
	s := Generate(g)
	an := s.An
	for i, e := range g.Edges {
		row := s.Edge[i]
		if row[0] != float64(an.ASAP[e.To]-an.ASAP[e.From]) {
			t.Errorf("edge %d ASAP diff wrong", i)
		}
		if row[0] < 1 {
			t.Errorf("edge %d ASAP diff %v < 1 (child after parent)", i, row[0])
		}
		if row[3] != float64(an.NumAncestors(e.From)) {
			t.Errorf("edge %d parent-ancestor attr wrong", i)
		}
		if row[4] != float64(an.NumDescendants(e.To)) {
			t.Errorf("edge %d child-descendant attr wrong", i)
		}
	}
}

func TestDummyAttributesNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "r")
		s := Generate(g)
		for _, row := range s.Dummy {
			for _, v := range row {
				if v < 0 {
					return false
				}
			}
		}
		// Pairs must be canonical and same-level.
		for _, p := range s.DummyPairs {
			if p.A >= p.B {
				return false
			}
			if s.An.ASAP[p.A] != s.An.ASAP[p.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
