package arch

import (
	"fmt"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// CGRA is a parametric 2-D mesh coarse-grained reconfigurable array in the
// style of the paper's Fig. 1: every PE holds an ALU, a register file, a
// network switch and per-cycle configuration memory. A PE either computes or
// routes in a given cycle (Fig. 5); its register file buffers values across
// cycles, which is the routing resource the "less routing resources" variant
// cuts from four registers to one.
type CGRA struct {
	Rows, Cols    int
	RegsPerPE     int       // register-file capacity per PE
	Mem           MemPolicy // which PEs may execute loads/stores
	ConfigEntries int       // per-PE configuration memory entries == max II

	label string
}

// NewCGRA builds a CGRA with explicit parameters.
func NewCGRA(label string, rows, cols, regs int, mem MemPolicy, configEntries int) *CGRA {
	if rows < 1 || cols < 1 || regs < 0 || configEntries < 1 {
		panic("arch: invalid CGRA parameters")
	}
	return &CGRA{
		Rows: rows, Cols: cols, RegsPerPE: regs,
		Mem: mem, ConfigEntries: configEntries, label: label,
	}
}

// The paper's five CGRA targets (§VI "Modelled Spatial Accelerators").

// NewBaseline4x4 returns the 4×4 baseline CGRA (4 registers per PE).
func NewBaseline4x4() *CGRA { return NewCGRA("cgra-4x4", 4, 4, 4, MemAll, 24) }

// NewBaseline3x3 returns the 3×3 baseline CGRA.
func NewBaseline3x3() *CGRA { return NewCGRA("cgra-3x3", 3, 3, 4, MemAll, 24) }

// NewBaseline8x8 returns the 8×8 baseline CGRA.
func NewBaseline8x8() *CGRA { return NewCGRA("cgra-8x8", 8, 8, 4, MemAll, 24) }

// NewLessRouting4x4 returns the 4×4 CGRA with one register per PE.
func NewLessRouting4x4() *CGRA { return NewCGRA("cgra-4x4-lessroute", 4, 4, 1, MemAll, 24) }

// NewLessMem4x4 returns the 4×4 CGRA where only left-column PEs reach memory.
func NewLessMem4x4() *CGRA { return NewCGRA("cgra-4x4-lessmem", 4, 4, 4, MemLeftColumn, 24) }

// Name implements Arch.
func (c *CGRA) Name() string { return c.label }

// NumPEs implements Arch.
func (c *CGRA) NumPEs() int { return c.Rows * c.Cols }

// Coord implements Arch.
func (c *CGRA) Coord(pe int) (row, col int) { return pe / c.Cols, pe % c.Cols }

// PEAt returns the PE index at (row, col).
func (c *CGRA) PEAt(row, col int) int { return row*c.Cols + col }

// SpatialDistance implements Arch with Manhattan distance.
func (c *CGRA) SpatialDistance(a, b int) int {
	r1, c1 := c.Coord(a)
	r2, c2 := c.Coord(b)
	return manhattan(r1, c1, r2, c2)
}

// SupportsOp implements Arch: all PEs are general ALUs; memory ops obey the
// memory policy.
func (c *CGRA) SupportsOp(pe int, op dfg.OpKind) bool {
	if op.IsMemory() && c.Mem == MemLeftColumn {
		_, col := c.Coord(pe)
		return col == 0
	}
	return true
}

// MaxII implements Arch.
func (c *CGRA) MaxII() int { return c.ConfigEntries }

// MemPEs returns how many PEs can execute memory operations.
func (c *CGRA) MemPEs() int {
	if c.Mem == MemLeftColumn {
		return c.Rows
	}
	return c.NumPEs()
}

// MinII implements Arch: max of the compute-resource bound and the
// memory-port bound (RecMII is 1 since the kernels are DAG bodies).
func (c *CGRA) MinII(g *dfg.Graph) int {
	ii := ceilDiv(g.NumNodes(), c.NumPEs())
	if m := ceilDiv(g.MemOpCount(), c.MemPEs()); m > ii {
		ii = m
	}
	if ii < 1 {
		ii = 1
	}
	return ii
}

// neighbors returns the 4-neighborhood of a PE (mesh, no torus links).
func (c *CGRA) neighbors(pe int) []int {
	r, cc := c.Coord(pe)
	var out []int
	if r > 0 {
		out = append(out, c.PEAt(r-1, cc))
	}
	if r < c.Rows-1 {
		out = append(out, c.PEAt(r+1, cc))
	}
	if cc > 0 {
		out = append(out, c.PEAt(r, cc-1))
	}
	if cc < c.Cols-1 {
		out = append(out, c.PEAt(r, cc+1))
	}
	return out
}

// BuildRGraph implements Arch. Per (PE, cycle) it creates one FU node
// (compute-or-route, capacity 1) and, if the PE has registers, one register
// bank node (capacity RegsPerPE). Every edge advances one cycle mod II:
//
//	fu(p,t)  -> fu(p,t+1), fu(n,t+1)   route through own or neighbor ALU
//	fu(p,t)  -> reg(p,t+1)             write the register file
//	reg(p,t) -> reg(p,t+1)             hold in the register file
//	reg(p,t) -> fu(p,t+1), fu(n,t+1)   read out through the switch
func (c *CGRA) BuildRGraph(ii int) *rgraph.Graph {
	if ii < 1 || ii > c.MaxII() {
		panic(fmt.Sprintf("arch %s: II %d out of range [1,%d]", c.label, ii, c.MaxII()))
	}
	g := rgraph.NewGraph(ii)
	n := c.NumPEs()
	fuID := make([][]int, n)
	regID := make([][]int, n)

	general := allOpsMask()
	noMem := general &^ maskOf(dfg.OpLoad, dfg.OpStore)

	for pe := 0; pe < n; pe++ {
		fuID[pe] = make([]int, ii)
		regID[pe] = make([]int, ii)
		mask := general
		if !c.SupportsOp(pe, dfg.OpLoad) {
			mask = noMem
		}
		for t := 0; t < ii; t++ {
			fuID[pe][t] = g.AddNode(rgraph.Node{
				Kind: rgraph.KindFU, PE: pe, Cycle: t, Cap: 1,
				ComputeOK: true, RouteOK: true, OpsMask: mask,
			})
			if c.RegsPerPE > 0 {
				regID[pe][t] = g.AddNode(rgraph.Node{
					Kind: rgraph.KindReg, PE: pe, Cycle: t, Cap: c.RegsPerPE,
					RouteOK: true,
				})
			} else {
				regID[pe][t] = -1
			}
		}
	}

	for pe := 0; pe < n; pe++ {
		nbs := c.neighbors(pe)
		for t := 0; t < ii; t++ {
			nt := (t + 1) % ii
			g.AddEdge(fuID[pe][t], fuID[pe][nt])
			for _, nb := range nbs {
				g.AddEdge(fuID[pe][t], fuID[nb][nt])
			}
			if regID[pe][t] >= 0 {
				g.AddEdge(fuID[pe][t], regID[pe][nt])
				g.AddEdge(regID[pe][t], regID[pe][nt])
				g.AddEdge(regID[pe][t], fuID[pe][nt])
				for _, nb := range nbs {
					g.AddEdge(regID[pe][t], fuID[nb][nt])
				}
			}
		}
	}
	return g
}
