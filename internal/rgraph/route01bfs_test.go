package rgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOccupancy scatters foreign signals over the graph so routes must
// detour, share, or fail — the states the annealer actually queries from.
func randomOccupancy(g *Graph, rng *rand.Rand, load float64) *Occupancy {
	occ := NewOccupancy(g)
	for n := 0; n < g.NumNodes(); n++ {
		for rng.Float64() < load {
			sig := Signal(100 + rng.Intn(8))
			if !occ.CanEnter(n, sig) {
				break
			}
			occ.Use(n, sig)
		}
	}
	return occ
}

// checkPath verifies a returned route against the router's contract: exact
// length, declared endpoints, every step an actual graph edge, intermediates
// admissible, and the recomputed step-cost sum equal to the reported cost.
func checkPath(t *testing.T, g *Graph, occ *Occupancy, sig Signal, src, dst, hops int, path []int, cost int) {
	t.Helper()
	if len(path) != hops+1 {
		t.Fatalf("path length %d, want %d", len(path), hops+1)
	}
	if path[0] != src || path[hops] != dst {
		t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[hops], src, dst)
	}
	sum := 0
	for i := 1; i < len(path); i++ {
		edge := false
		for _, nb := range g.Out(path[i-1]) {
			if int(nb) == path[i] {
				edge = true
			}
		}
		if !edge {
			t.Fatalf("step %d->%d is not a graph edge", path[i-1], path[i])
		}
		isDst := path[i] == dst && i == hops
		if !isDst {
			if !g.Nodes[path[i]].RouteOK || !occ.CanEnter(path[i], sig) {
				t.Fatalf("inadmissible intermediate %d", path[i])
			}
		}
		if !isDst && !occ.Carries(path[i], sig) {
			sum++
		}
	}
	if sum != cost {
		t.Fatalf("recomputed cost %d, reported %d", sum, cost)
	}
}

// TestRoute01BFSMatchesDijkstra is the router differential test: on random
// occupancy states and random (src, dst, hops) queries, the 0-1 BFS must
// agree with the retained heap-Dijkstra reference on feasibility and on
// minimum cost. Paths may differ at equal cost (documented tie-break change);
// both must still be valid exact-length routes of that cost.
func TestRoute01BFSMatchesDijkstra(t *testing.T) {
	for _, shape := range []struct{ n, ii int }{{4, 1}, {6, 2}, {8, 3}} {
		g := lineGraph(shape.n, shape.ii)
		fus := g.FUs()
		r := NewRouter(g, 24)
		rng := rand.New(rand.NewSource(int64(shape.n*100 + shape.ii)))
		agreeOK, agreeFail := 0, 0
		for q := 0; q < 600; q++ {
			occ := randomOccupancy(g, rng, 0.25)
			sig := Signal(rng.Intn(4))
			src := fus[rng.Intn(len(fus))]
			dst := fus[rng.Intn(len(fus))]
			hops := 1 + rng.Intn(10)

			pb, cb, okb := r.Route(occ, sig, src, dst, hops)
			pd, cd, okd := r.routeDijkstra(occ, sig, src, dst, hops)
			if okb != okd {
				t.Fatalf("n=%d ii=%d q=%d: 0-1 BFS ok=%v, Dijkstra ok=%v (src=%d dst=%d hops=%d)",
					shape.n, shape.ii, q, okb, okd, src, dst, hops)
			}
			if !okb {
				agreeFail++
				continue
			}
			if cb != cd {
				t.Fatalf("n=%d ii=%d q=%d: 0-1 BFS cost=%d, Dijkstra cost=%d", shape.n, shape.ii, q, cb, cd)
			}
			checkPath(t, g, occ, sig, src, dst, hops, pb, cb)
			checkPath(t, g, occ, sig, src, dst, hops, pd, cd)
			agreeOK++
		}
		if agreeOK == 0 || agreeFail == 0 {
			t.Fatalf("n=%d ii=%d: degenerate query mix (ok=%d fail=%d)", shape.n, shape.ii, agreeOK, agreeFail)
		}
	}
}

// TestRouteDeterministic pins the 0-1 BFS tie-break: repeated identical
// queries — interleaved with unrelated ones that churn the shared scratch —
// must return byte-identical paths.
func TestRouteDeterministic(t *testing.T) {
	g := lineGraph(6, 2)
	fus := g.FUs()
	r := NewRouter(g, 16)
	occ := NewOccupancy(g)
	ref, cost, ok := r.Route(occ, 3, fus[0], fus[len(fus)-1], 7)
	if !ok {
		t.Fatal("reference route failed")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		r.Route(occ, Signal(rng.Intn(5)), fus[rng.Intn(len(fus))], fus[rng.Intn(len(fus))], 1+rng.Intn(8))
		got, c, ok := r.Route(occ, 3, fus[0], fus[len(fus)-1], 7)
		if !ok || c != cost {
			t.Fatalf("iteration %d: route changed feasibility/cost", i)
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("iteration %d: path diverged at %d: %v vs %v", i, j, got, ref)
			}
		}
	}
}

// TestShortestHopsDstFirstHop: the consumer's FU counts as reachable on the
// hop that touches it even when the FU itself is at capacity — the consumer
// op owns that slot. The dst check must therefore fire before the CanEnter
// filter, including on the very first hop.
func TestShortestHopsDstFirstHop(t *testing.T) {
	g := lineGraph(3, 1)
	occ := NewOccupancy(g)
	r := NewRouter(g, 8)
	src, dst := g.FUAt(0, 0), g.FUAt(1, 0)
	if !occ.PlaceOp(dst, 5) {
		t.Fatal("setup: PlaceOp failed")
	}
	if got := r.ShortestHops(occ, 1, src, dst); got != 1 {
		t.Fatalf("dst adjacent and op-occupied: ShortestHops = %d, want 1", got)
	}
	// The same query through Route: a 1-hop path straight into the consumer.
	path, cost, ok := r.Route(occ, 1, src, dst, 1)
	if !ok || cost != 0 || len(path) != 2 {
		t.Fatalf("1-hop route into occupied consumer: ok=%v cost=%d path=%v", ok, cost, path)
	}
}

// TestShortestHopsScratchReuse: interleaved queries on one router (shared
// dist/stamp/queue scratch) must match a fresh router's answers.
func TestShortestHopsScratchReuse(t *testing.T) {
	g := lineGraph(6, 2)
	fus := g.FUs()
	shared := NewRouter(g, 16)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		occ := randomOccupancy(g, rng, 0.2)
		sig := Signal(rng.Intn(4))
		src := fus[rng.Intn(len(fus))]
		dst := fus[rng.Intn(len(fus))]
		got := shared.ShortestHops(occ, sig, src, dst)
		want := NewRouter(g, 16).ShortestHops(occ, sig, src, dst)
		if got != want {
			t.Fatalf("query %d: shared scratch %d, fresh router %d", i, got, want)
		}
	}
}

// TestJournalRollbackProperty: for any interleaving of admissible Use/Release
// calls made under an armed journal, RollbackJournal must restore a table
// equivalent to the pre-journal Clone, and CommitJournal must keep the
// mutations. Signals overlap with pre-existing occupancy so rollback
// exercises refcount decrements, not just entry removal.
func TestJournalRollbackProperty(t *testing.T) {
	g := lineGraph(4, 2)
	f := func(ops []uint16, commit bool) bool {
		rng := rand.New(rand.NewSource(int64(len(ops))))
		occ := randomOccupancy(g, rng, 0.15)
		before := occ.Clone()
		occ.BeginJournal()
		var used [][2]int
		for _, op := range ops {
			node := int(op) % g.NumNodes()
			sig := Signal(int(op)%5 + 100) // overlaps randomOccupancy's signals
			if int(op)%3 == 0 && len(used) > 0 {
				k := int(op) % len(used)
				occ.Release(used[k][0], Signal(used[k][1]))
				used = append(used[:k], used[k+1:]...)
				continue
			}
			if occ.CanEnter(node, sig) {
				occ.Use(node, sig)
				used = append(used, [2]int{node, int(sig)})
			}
		}
		if commit {
			occ.CommitJournal()
			// Mutations survive: replaying the inverse by hand gets back to
			// the original, proving the journal didn't double-apply anything.
			for i := len(used) - 1; i >= 0; i-- {
				occ.Release(used[i][0], Signal(used[i][1]))
			}
			return occ.Equivalent(before)
		}
		occ.RollbackJournal()
		return occ.Equivalent(before) && before.Equivalent(occ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
