// Package mapper implements the mapping engines of the paper's evaluation:
// the vanilla simulated-annealing baseline (SA), SA with label-4 routing
// priority only (the Fig. 12 ablation), SA-M with 10× movements per
// temperature (the Fig. 13 ablation), the full label-aware simulated
// annealing of Algorithm 1 (LISA), and the partial label-aware mode used
// during training-data generation (§V-B: labels seed only the initial
// mapping).
//
// All engines share one spatio-temporal mapping state over the architecture's
// modulo routing resource graph: every DFG node gets a (PE, absolute cycle)
// slot, every DFG edge gets an exact-length route, and the annealer repeats
// unmap/re-place/re-route movements until the mapping is valid or the budget
// runs out. The II sweep starts at the resource-minimal II and increments on
// failure, exactly as §VI describes.
package mapper

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/labels"
)

// Algorithm selects a mapping engine.
type Algorithm string

// The engines evaluated in the paper.
const (
	AlgSA   Algorithm = "sa"      // vanilla simulated annealing
	AlgSARP Algorithm = "sa-rp"   // SA + routing priority (label 4 only)
	AlgSAM  Algorithm = "sa-m"    // SA with 10x movements per temperature
	AlgLISA Algorithm = "lisa"    // full label-aware SA (Algorithm 1)
	AlgPart Algorithm = "partial" // labels seed the initial mapping only
)

// Options tunes the annealer. Zero values fall back to DefaultOptions.
type Options struct {
	Seed         int64
	MaxMoves     int     // movement budget per II attempt
	MovesPerTemp int     // paper keeps 50 movements per temperature
	InitTemp     float64 // initial annealing temperature
	Cool         float64 // geometric cooling factor
	Alpha        float64 // α in σ = max{1, α·T − Acc} (Algorithm 1 line 7)
	MaxII        int     // override of the architecture's max II (0 = arch)
	TimeLimit    time.Duration

	// Restarts is the portfolio width K: the number of diverse annealing
	// chains raced per II attempt (see portfolio.go). 0 and 1 both mean the
	// plain single-chain annealer; K > 1 races chain 0 (identical to the
	// single-chain run) against K−1 variants with splitmix64-derived seeds.
	// Restarts changes the result, so it is part of Normalized() and of the
	// service cache key. Clamped to MaxRestarts.
	Restarts int
	// Workers bounds how many portfolio chains run concurrently (<= 0: one
	// per CPU). It trades wall-clock only — equal-seed output is
	// byte-identical at any worker count — so it is NOT part of the cache
	// key.
	Workers int
}

// MaxRestarts bounds the portfolio width a single Map call will run;
// withDefaults clamps Restarts to it. The serving daemon applies its own
// (configurable, lower) admission cap before this one.
const MaxRestarts = 64

// DefaultOptions returns the budget profile used by tests and quick
// experiments. The Paper profile in internal/experiments scales MaxMoves up.
func DefaultOptions() Options {
	return Options{
		MaxMoves:     2400,
		MovesPerTemp: 50,
		InitTemp:     40,
		Cool:         0.92,
		Alpha:        0.15,
		Restarts:     1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.MaxMoves == 0 {
		o.MaxMoves = d.MaxMoves
	}
	if o.MovesPerTemp == 0 {
		o.MovesPerTemp = d.MovesPerTemp
	}
	if o.InitTemp == 0 {
		o.InitTemp = d.InitTemp
	}
	if o.Cool == 0 {
		o.Cool = d.Cool
	}
	if o.Alpha == 0 {
		o.Alpha = d.Alpha
	}
	if o.Restarts < 1 {
		o.Restarts = 1
	}
	if o.Restarts > MaxRestarts {
		o.Restarts = MaxRestarts
	}
	return o
}

// Result reports one mapping run.
type Result struct {
	OK bool
	// II is the achieved initiation interval when OK; for a failed run it
	// is 0, matching the paper's "II is zero implies the benchmark cannot
	// be mapped" convention.
	II          int
	PE          []int   // per-node PE (valid when OK)
	Time        []int   // per-node absolute cycle (valid when OK)
	EdgeHops    []int   // per-edge route length (valid when OK)
	Routes      [][]int // per-edge resource-graph path incl. endpoints (valid when OK)
	RoutingCost int     // routing resources consumed (valid when OK)
	Moves       int     // total SA movements across the II sweep
	Duration    time.Duration
	TriedIIs    []int // the II values attempted, in order

	// DeadlineExceeded reports that Options.TimeLimit expired before the run
	// finished: the II sweep was cut short (or its last attempt truncated).
	// Single-chain runs can only set it on failure (always false when OK);
	// a portfolio run also sets it on an OK result when the deadline aborted
	// any chain, because the race was not run to completion and the winner
	// is best-completed-so-far rather than the deterministic fixed point.
	// Deadline-truncated results are never cached by the service.
	DeadlineExceeded bool
	// Portfolio describes the restart race that produced this result; nil
	// for single-chain runs (Restarts <= 1), keeping their wire bytes
	// identical to the pre-portfolio format.
	Portfolio *PortfolioInfo
	// Degraded names the fallback chain that produced this result (e.g.
	// "lisa→sa: labels unavailable"). It is written by the engine-level
	// degradation ladder (internal/engine); direct mapper runs leave it
	// empty. A non-empty chain marks the result as degraded: correct and
	// verified, but not what the requested engine would have produced.
	Degraded []string
}

// Stats converts a successful Result into the architecture-agnostic view the
// label extractor consumes.
func (r *Result) Stats(ar arch.Arch) *labels.MappingStats {
	if !r.OK {
		return nil
	}
	return &labels.MappingStats{
		II:          r.II,
		NodePE:      r.PE,
		NodeTime:    r.Time,
		EdgeHops:    r.EdgeHops,
		RoutingCost: r.RoutingCost,
		SpatialDist: ar.SpatialDistance,
	}
}

// Map runs the selected algorithm for g on ar. lbl supplies the labels for
// AlgSARP, AlgLISA and AlgPart; it may be nil for AlgSA/AlgSAM (and defaults
// to the §V-B initialization for the label-using engines when nil). It
// returns an error for an unknown algorithm and for injected faults
// (internal/fault); a mapping that merely fails to converge is not an
// error — it is a Result with OK=false.
func Map(ar arch.Arch, g *dfg.Graph, alg Algorithm, lbl *labels.Labels, opts Options) (Result, error) {
	opts = opts.withDefaults()
	an := dfg.Analyze(g)
	labelGuided := lbl != nil // caller-supplied GNN labels, not the §V-B fallback
	if lbl == nil {
		lbl = labels.Initial(an)
	}
	cfg, err := engineConfig(alg, &opts)
	if err != nil {
		return Result{}, err
	}

	start := time.Now()
	// Fault site mapper.anneal, streamed by the annealer seed: error mode
	// aborts the engine (the degradation ladder's cue), latency mode burns
	// the request's time budget before the sweep starts.
	if err := fault.Inject(fault.MapperAnneal, uint64(opts.Seed)); err != nil {
		return Result{}, fmt.Errorf("mapper: %s engine: %w", alg, err)
	}
	if opts.Restarts > 1 {
		return mapPortfolio(ar, g, an, alg, lbl, labelGuided, cfg, opts, start)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	maxII := ar.MaxII()
	if opts.MaxII > 0 && opts.MaxII < maxII {
		maxII = opts.MaxII
	}
	res := Result{}
	for ii := ar.MinII(g); ii <= maxII; ii++ {
		// The budget check gates the *start* of each II attempt: once the
		// limit is exhausted no further attempt begins, so TriedIIs never
		// records an II that was not allowed to run. (Checking only after
		// an attempt would both start attempts with no budget left and skip
		// the check entirely when an overrunning attempt succeeds.)
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			break
		}
		res.TriedIIs = append(res.TriedIIs, ii)
		st := newState(ar, g, an, ii, lbl, cfg, opts.Alpha, rng)
		st.faultToken = uint64(opts.Seed)
		ok, moves := st.anneal(opts, start)
		res.Moves += moves
		if st.faultErr != nil {
			res.Duration = time.Since(start)
			return res, fmt.Errorf("mapper: %s engine: %w", alg, st.faultErr)
		}
		if ok {
			res.OK = true
			res.II = ii
			res.PE = append([]int(nil), st.pe...)
			res.Time = append([]int(nil), st.time...)
			res.EdgeHops = make([]int, g.NumEdges())
			res.Routes = make([][]int, g.NumEdges())
			for e, p := range st.routes {
				res.EdgeHops[e] = len(p) - 1
				res.Routes[e] = append([]int(nil), p...)
			}
			res.RoutingCost = st.routingCost()
			break
		}
	}
	res.Duration = time.Since(start)
	if !res.OK && opts.TimeLimit > 0 && res.Duration > opts.TimeLimit {
		// The budget, not the search space, ended the sweep: the engine
		// ladder uses this to substitute a deterministic greedy fallback.
		res.DeadlineExceeded = true
	}
	return res, nil
}

// config captures which parts of Algorithm 1 an engine uses.
type config struct {
	useOrderLabel      bool // label 1 decides placement order
	usePlacementLabels bool // labels 2/3/4 in the PE-candidate cost
	useRoutingPriority bool // label 4 decides routing order
	partial            bool // labels only seed the initial mapping
}

func engineConfig(alg Algorithm, opts *Options) (config, error) {
	switch alg {
	case AlgSA:
		return config{}, nil
	case AlgSAM:
		opts.MovesPerTemp *= 10
		opts.MaxMoves *= 10
		return config{}, nil
	case AlgSARP:
		return config{useRoutingPriority: true}, nil
	case AlgPart:
		return config{
			useOrderLabel: true, usePlacementLabels: true,
			useRoutingPriority: true, partial: true,
		}, nil
	case AlgLISA:
		return config{
			useOrderLabel: true, usePlacementLabels: true,
			useRoutingPriority: true,
		}, nil
	default:
		return config{}, fmt.Errorf("mapper: unknown algorithm %q", alg)
	}
}
