package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/engine"
	"github.com/lisa-go/lisa/internal/mapper"
)

// cacheKey computes the content address of a mapping request: the hex
// SHA-256 of a canonical encoding of everything the result is a function
// of — the normalized DFG structure (names excluded, see dfg.WriteCanonical),
// the architecture name, the engine, the *normalized* annealer options
// (zero knobs resolved to their defaults, so "MaxMoves: 0" and the explicit
// default share an entry), the seed, and the request deadline (a time
// budget can cut the II sweep short, so different budgets may legitimately
// produce different results and must not share an entry).
func cacheKey(g *dfg.Graph, archName string, eng engine.Name, opts mapper.Options, deadlineMS int64) string {
	h := sha256.New()
	fmt.Fprintf(h, "lisa-serve/v1\narch=%s\nengine=%s\ndeadlineMs=%d\n", archName, eng, deadlineMS)
	o := opts.Normalized()
	// Restarts joins the key because the portfolio width changes the result
	// (normalization maps 0 → 1, so "no restarts requested" and an explicit
	// K=1 share the single-chain entry). Workers stays out: it can never
	// change the bytes, only the wall-clock.
	fmt.Fprintf(h, "opts=seed:%d,maxMoves:%d,movesPerTemp:%d,initTemp:%g,cool:%g,alpha:%g,maxII:%d,restarts:%d\n",
		o.Seed, o.MaxMoves, o.MovesPerTemp, o.InitTemp, o.Cool, o.Alpha, o.MaxII, o.Restarts)
	_ = g.WriteCanonical(h) // WriteCanonical only fails if the writer does; hash.Hash never errors
	return hex.EncodeToString(h.Sum(nil))
}
