// Package gnn implements the four per-label graph neural networks of the
// paper's §IV-B on top of the internal/tensor autodiff engine:
//
//	label 1 (schedule order):   four message-passing layers, each evaluating
//	                            eqs. (1)-(2): m' = W1·[mean,max,min of
//	                            neighbor m]; h' = W2(W3·h + m').
//	label 2 (same-level assoc): an MLP over the dummy-edge attributes,
//	                            eq. (3), hidden width = attribute count.
//	label 3 (spatial distance): eqs. (4)-(6): a convolution of the edge
//	                            attributes, a normalization vector ν built
//	                            from reciprocal mean/sum/max/min aggregates
//	                            over the edges incident to the endpoints, and
//	                            h² = W2·h¹ + ν ⊙ W3·h¹.
//	label 4 (temporal distance): an MLP over the edge attributes, eq. (7).
//
// One Model bundles the four networks for a single accelerator; retraining a
// Model on a new accelerator's label data is what makes LISA portable.
package gnn

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/tensor"
)

// hidden1 is the hidden width of the schedule-order network.
const hidden1 = 8

// Label1Net is the schedule-order network (eqs. 1-2, four layers).
type Label1Net struct {
	W0 *tensor.Tensor // attribute embedding: NodeAttrDim -> H
	Wh *tensor.Tensor // ASAP embedding: 1 -> H
	// Per layer: W1 aggregates [mean,max,min] (3H -> H); W3 transforms h
	// (H -> H); W2 combines (H -> H).
	W1, W2, W3 [4]*tensor.Tensor
	Out        *tensor.Tensor // H -> 1
}

// NewLabel1Net initializes the schedule-order network.
func NewLabel1Net(rng *rand.Rand) *Label1Net {
	n := &Label1Net{
		W0:  tensor.Param(rng, attr.NodeAttrDim, hidden1),
		Wh:  tensor.Param(rng, 1, hidden1),
		Out: tensor.Param(rng, hidden1, 1),
	}
	for t := 0; t < 4; t++ {
		n.W1[t] = tensor.Param(rng, 3*hidden1, hidden1)
		n.W2[t] = tensor.Param(rng, hidden1, hidden1)
		n.W3[t] = tensor.Param(rng, hidden1, hidden1)
	}
	return n
}

// Params lists the trainable tensors.
func (n *Label1Net) Params() []*tensor.Tensor {
	out := []*tensor.Tensor{n.W0, n.Wh, n.Out}
	for t := 0; t < 4; t++ {
		out = append(out, n.W1[t], n.W2[t], n.W3[t])
	}
	return out
}

// Forward predicts one schedule-order value per node. nodeAttrs is the
// scaled [n × NodeAttrDim] attribute matrix, asap the scaled [n × 1] ASAP
// column, and neighbors the undirected adjacency sets.
func (n *Label1Net) Forward(nodeAttrs, asap *tensor.Tensor, neighbors [][]int) *tensor.Tensor {
	m := tensor.MatMul(nodeAttrs, n.W0) // m⁰ = W0 · Attributes(v)
	h := tensor.MatMul(asap, n.Wh)      // h⁰ embeds the ASAP value
	for t := 0; t < 4; t++ {
		agg := tensor.ConcatCols(
			tensor.Aggregate(m, neighbors, tensor.AggMean),
			tensor.Aggregate(m, neighbors, tensor.AggMax),
			tensor.Aggregate(m, neighbors, tensor.AggMin),
		)
		m = tensor.MatMul(agg, n.W1[t])                                      // eq. (1)
		h = tensor.MatMul(tensor.Add(tensor.MatMul(h, n.W3[t]), m), n.W2[t]) // eq. (2)
		h = tensor.ReLU(h)
	}
	return tensor.MatMul(h, n.Out)
}

// MLP is the two-layer perceptron used by the label-2 and label-4 networks
// (eqs. 3 and 7): hidden channels equal the input attribute count, ReLU
// activation.
type MLP struct {
	W1, W2 *tensor.Tensor
}

// NewMLP builds an MLP for the given input width.
func NewMLP(rng *rand.Rand, in int) *MLP {
	return &MLP{
		W1: tensor.Param(rng, in, in),
		W2: tensor.Param(rng, in, 1),
	}
}

// Params lists the trainable tensors.
func (m *MLP) Params() []*tensor.Tensor { return []*tensor.Tensor{m.W1, m.W2} }

// Forward maps [k × in] attribute rows to [k × 1] predictions.
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.MatMul(tensor.ReLU(tensor.MatMul(x, m.W1)), m.W2)
}

// Label3Net is the spatial-mapping-distance network (eqs. 4-6).
type Label3Net struct {
	W1 *tensor.Tensor // edge attrs -> H (eq. 4)
	Wn *tensor.Tensor // 4H reciprocal aggregates -> H (builds ν, eq. 5)
	W2 *tensor.Tensor // H -> H (eq. 6)
	W3 *tensor.Tensor // H -> H (eq. 6)
	Wo *tensor.Tensor // H -> 1
}

// hidden3 is the hidden width of the spatial-distance network, equal to the
// edge attribute count as in the paper.
const hidden3 = attr.EdgeAttrDim

// NewLabel3Net initializes the spatial-distance network.
func NewLabel3Net(rng *rand.Rand) *Label3Net {
	return &Label3Net{
		W1: tensor.Param(rng, attr.EdgeAttrDim, hidden3),
		Wn: tensor.Param(rng, 4*hidden3, hidden3),
		W2: tensor.Param(rng, hidden3, hidden3),
		W3: tensor.Param(rng, hidden3, hidden3),
		Wo: tensor.Param(rng, hidden3, 1),
	}
}

// Params lists the trainable tensors.
func (n *Label3Net) Params() []*tensor.Tensor {
	return []*tensor.Tensor{n.W1, n.Wn, n.W2, n.W3, n.Wo}
}

// Forward predicts one spatial distance per edge. edgeAttrs is [m ×
// EdgeAttrDim]; incident[i] lists the edge indexes incident to edge i's
// endpoints (the e(v) of eq. 5).
func (n *Label3Net) Forward(edgeAttrs *tensor.Tensor, incident [][]int) *tensor.Tensor {
	h1 := tensor.MatMul(edgeAttrs, n.W1) // eq. (4)
	// eq. (5): ν from reciprocal mean/sum/max/min aggregates over e(v).
	recip := func(kind tensor.AggKind) *tensor.Tensor {
		return tensor.Reciprocal(tensor.Aggregate(h1, incident, kind), 1e-6)
	}
	nu := tensor.MatMul(tensor.ConcatCols(
		recip(tensor.AggMean), recip(tensor.AggSum),
		recip(tensor.AggMax), recip(tensor.AggMin),
	), n.Wn)
	// eq. (6): h² = W2·h¹ + ν ⊙ W3·h¹.
	h2 := tensor.Add(tensor.MatMul(h1, n.W2), tensor.Mul(nu, tensor.MatMul(h1, n.W3)))
	return tensor.MatMul(tensor.ReLU(h2), n.Wo)
}

// Model bundles the four per-label networks trained for one accelerator.
type Model struct {
	ArchName string

	Order    *Label1Net
	Same     *MLP // label 2 over dummy-edge attributes
	Spatial  *Label3Net
	Temporal *MLP // label 4 over edge attributes

	// Column scalers (computed from the training set) keep the raw count
	// attributes in a well-conditioned range.
	NodeScale  []float64
	EdgeScale  []float64
	DummyScale []float64
	ASAPScale  float64
}

// NewModel initializes an untrained model.
func NewModel(rng *rand.Rand, archName string) *Model {
	return &Model{
		ArchName: archName,
		Order:    NewLabel1Net(rng),
		Same:     NewMLP(rng, attr.DummyAttrDim),
		Spatial:  NewLabel3Net(rng),
		Temporal: NewMLP(rng, attr.EdgeAttrDim),
	}
}

// Predict runs all four networks on a DFG's attribute set and assembles a
// label set for the mapper. It uses the fused no-tape inference path
// (infer.go), which is bit-identical to the taped forward passes; the error
// is non-nil only when the model's scale vectors do not match the current
// attribute dimensionality (version skew after an attribute-set change),
// which would otherwise mix scaled and unscaled columns into one matmul and
// predict garbage.
func (m *Model) Predict(set *attr.Set) (*labels.Labels, error) {
	out, err := m.PredictBatch([]*attr.Set{set})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// CheckScales validates the model's column scalers against the current
// attribute dimensionality. Empty vectors mean "unscaled" (an untrained
// model) and are valid; any other length must match exactly — a serialized
// model whose scale vectors predate an attribute-set change must be
// retrained, not silently half-scaled.
func (m *Model) CheckScales() error {
	if err := m.checkScale("node", len(m.NodeScale), attr.NodeAttrDim); err != nil {
		return err
	}
	if err := m.checkScale("edge", len(m.EdgeScale), attr.EdgeAttrDim); err != nil {
		return err
	}
	return m.checkScale("dummy", len(m.DummyScale), attr.DummyAttrDim)
}

// checkScale validates one scale vector's width (CheckScales runs on the
// serving hot path, so the check is literal-free).
func (m *Model) checkScale(name string, got, want int) error {
	if got != 0 && got != want {
		return fmt.Errorf("gnn: model %q %s scale has %d columns, want %d (attribute-set version skew; retrain the model)",
			m.ArchName, name, got, want)
	}
	return nil
}

// predictTaped is the reference implementation of Predict on the taped
// engine. It is kept (unexported) as the ground truth the differential
// tests and the inference benchmark compare the fused path against; the
// fused Predict must reproduce its output bit for bit.
func (m *Model) predictTaped(set *attr.Set) *labels.Labels {
	g := set.An.G
	out := labels.NewZero(g)

	if g.NumNodes() > 0 {
		na, asap := m.scaledNodeInputs(set)
		pred := m.Order.Forward(na, asap, undirectedNeighbors(set))
		for v := 0; v < g.NumNodes(); v++ {
			out.Order[v] = clampMin(pred.At(v, 0), 0)
		}
	}
	if g.NumEdges() > 0 {
		ea := m.scaledMatrix(set.Edge, m.EdgeScale)
		sp := m.Spatial.Forward(ea, incidentEdges(set))
		tp := m.Temporal.Forward(ea)
		for e := 0; e < g.NumEdges(); e++ {
			out.Spatial[e] = clampMin(sp.At(e, 0), 0)
			out.Temporal[e] = clampMin(tp.At(e, 0), 1)
		}
	}
	if len(set.DummyPairs) > 0 {
		da := m.scaledMatrix(set.Dummy, m.DummyScale)
		sl := m.Same.Forward(da)
		for i, p := range set.DummyPairs {
			out.SameLevel[p] = clampMin(sl.At(i, 0), 0)
		}
	}
	return out
}

func clampMin(x, lo float64) float64 {
	if x < lo {
		return lo
	}
	return x
}

// undirectedNeighbors returns each node's parents+children index sets.
func undirectedNeighbors(set *attr.Set) [][]int {
	g := set.An.G
	nb := make([][]int, g.NumNodes())
	for v := range nb {
		nb[v] = append(nb[v], g.Pred(v)...)
		nb[v] = append(nb[v], g.Succ(v)...)
	}
	return nb
}

// incidentEdges returns, per edge, the indexes of edges sharing an endpoint
// with it (including itself) — the e(v) sets of eq. (5).
func incidentEdges(set *attr.Set) [][]int {
	g := set.An.G
	out := make([][]int, g.NumEdges())
	for i, e := range g.Edges {
		seen := map[int]bool{}
		for _, v := range []int{e.From, e.To} {
			for _, ie := range g.InEdges(v) {
				seen[ie] = true
			}
			for _, oe := range g.OutEdges(v) {
				seen[oe] = true
			}
		}
		for ie := range seen {
			out[i] = append(out[i], ie)
		}
		// Deterministic order keeps float aggregation bit-reproducible.
		sort.Ints(out[i])
	}
	return out
}

// scaledNodeInputs builds the scaled node-attribute matrix and ASAP column.
func (m *Model) scaledNodeInputs(set *attr.Set) (na, asap *tensor.Tensor) {
	na = m.scaledMatrix(set.Node, m.NodeScale)
	g := set.An.G
	asap = tensor.New(g.NumNodes(), 1)
	s := m.ASAPScale
	if s == 0 {
		s = 1
	}
	for v := 0; v < g.NumNodes(); v++ {
		asap.Set(v, 0, float64(set.An.ASAP[v])/s)
	}
	return na, asap
}

// scaledMatrix divides each column by its training-set scale (nil scale
// means the model is unscaled). A scale vector whose length disagrees with
// the matrix width is a shape bug — silently clamping would mix scaled and
// unscaled columns into the same matmul — so it fails loudly; Predict
// reports the same condition as a clean error before reaching here.
func (m *Model) scaledMatrix(rows [][]float64, scale []float64) *tensor.Tensor {
	t := tensor.FromRows(rows)
	if scale == nil || t.Rows == 0 {
		return t
	}
	if t.Cols != len(scale) {
		panic(fmt.Sprintf("gnn: model %q scale has %d columns, matrix has %d (attribute-set version skew)",
			m.ArchName, len(scale), t.Cols))
	}
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < t.Cols; j++ {
			if scale[j] != 0 {
				t.Set(i, j, t.At(i, j)/scale[j])
			}
		}
	}
	return t
}
