// Package dfg implements the dataflow-graph substrate of the LISA
// reproduction: the graph representation the mapper consumes, the structural
// analyses the Attributes Generator (paper §IV-A) is built on, a random DFG
// generator for GNN training data (paper §V-A), loop unrolling, and DOT
// export.
//
// A DFG node is one operation of a loop-kernel body; an edge is a data
// dependency between operations. All graphs handled here are directed and
// acyclic (the paper maps loop bodies; loop-carried recurrences are not
// modelled, so RecMII = 1 throughout).
package dfg

import (
	"fmt"
	"sort"
)

// OpKind identifies the operation a DFG node performs. The set matches what
// the modelled accelerators support: memory ops, integer/float ALU ops and
// constants.
type OpKind uint8

// Supported operation kinds.
const (
	OpNop OpKind = iota
	OpConst
	OpLoad
	OpStore
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpCmp
	OpSelect
	numOpKinds
)

var opNames = [...]string{
	OpNop:    "nop",
	OpConst:  "const",
	OpLoad:   "load",
	OpStore:  "store",
	OpAdd:    "add",
	OpSub:    "sub",
	OpMul:    "mul",
	OpDiv:    "div",
	OpShl:    "shl",
	OpShr:    "shr",
	OpAnd:    "and",
	OpOr:     "or",
	OpXor:    "xor",
	OpCmp:    "cmp",
	OpSelect: "select",
}

// String returns the mnemonic for k.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// NumOpKinds reports how many distinct operation kinds exist; the GNN uses it
// to normalize the operation-type attribute.
func NumOpKinds() int { return int(numOpKinds) }

// IsMemory reports whether k accesses the on-chip memory. Memory ops are
// subject to the accelerator's memory-access policy (e.g. the "less memory
// connectivity" CGRA only lets left-column PEs execute them).
func (k OpKind) IsMemory() bool { return k == OpLoad || k == OpStore }

// ParseOpKind resolves a mnemonic such as "mul" to its OpKind.
func ParseOpKind(s string) (OpKind, error) {
	for k, name := range opNames {
		if name == s {
			return OpKind(k), nil
		}
	}
	return OpNop, fmt.Errorf("dfg: unknown operation %q", s)
}

// Node is a single operation in a DFG.
type Node struct {
	ID   int    // dense index into Graph.Nodes
	Name string // human-readable name, unique within the graph
	Op   OpKind
}

// Edge is a data dependency: the value produced by From is consumed by To.
type Edge struct {
	ID   int // dense index into Graph.Edges
	From int // producer node ID
	To   int // consumer node ID
}

// Graph is a dataflow graph. The zero value is an empty graph ready to use.
// Nodes and edges are stored in slices and addressed by dense IDs, which the
// mapper, the attributes generator and the GNN all rely on.
type Graph struct {
	Name  string
	Nodes []Node
	Edges []Edge

	succ [][]int // node ID -> IDs of successor nodes
	pred [][]int // node ID -> IDs of predecessor nodes

	outEdges [][]int // node ID -> IDs of outgoing edges
	inEdges  [][]int // node ID -> IDs of incoming edges

	byName map[string]int
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]int)}
}

// AddNode appends a node and returns its ID. Name must be unique; an empty
// name is replaced by "n<ID>".
func (g *Graph) AddNode(name string, op OpKind) int {
	id := len(g.Nodes)
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	if g.byName == nil {
		g.byName = make(map[string]int)
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("dfg: duplicate node name %q", name))
	}
	g.byName[name] = id
	g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Op: op})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.outEdges = append(g.outEdges, nil)
	g.inEdges = append(g.inEdges, nil)
	return id
}

// AddEdge appends a data dependency from -> to and returns the edge ID.
// Parallel edges are allowed (a value used twice by the same consumer).
func (g *Graph) AddEdge(from, to int) int {
	if from < 0 || from >= len(g.Nodes) || to < 0 || to >= len(g.Nodes) {
		panic(fmt.Sprintf("dfg: edge (%d,%d) out of range", from, to))
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{ID: id, From: from, To: to})
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.outEdges[from] = append(g.outEdges[from], id)
	g.inEdges[to] = append(g.inEdges[to], id)
	return id
}

// NodeByName returns the ID of the node with the given name.
func (g *Graph) NodeByName(name string) (int, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Succ returns the successor node IDs of v. The slice is shared; callers must
// not modify it.
func (g *Graph) Succ(v int) []int { return g.succ[v] }

// Pred returns the predecessor node IDs of v. The slice is shared; callers
// must not modify it.
func (g *Graph) Pred(v int) []int { return g.pred[v] }

// OutEdges returns the IDs of edges leaving v.
func (g *Graph) OutEdges(v int) []int { return g.outEdges[v] }

// InEdges returns the IDs of edges entering v.
func (g *Graph) InEdges(v int) []int { return g.inEdges[v] }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v int) int { return len(g.outEdges[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int) int { return len(g.inEdges[v]) }

// MemOpCount returns the number of load/store nodes; the mapper uses it for
// the memory-constrained resource-minimal II.
func (g *Graph) MemOpCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Op.IsMemory() {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, n := range g.Nodes {
		c.AddNode(n.Name, n.Op)
	}
	for _, e := range g.Edges {
		c.AddEdge(e.From, e.To)
	}
	return c
}

// Validate checks structural invariants: IDs are dense and consistent,
// the graph is acyclic and weakly connected (unless empty), and every node
// name is unique. Every violation is reported as a *DefectError carrying a
// machine-readable Defect class alongside the descriptive message.
func (g *Graph) Validate() error {
	seen := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.ID != i {
			return &DefectError{Kind: DefectBadID,
				Msg: fmt.Sprintf("dfg %s: node %q has ID %d at index %d", g.Name, n.Name, n.ID, i)}
		}
		if j, dup := seen[n.Name]; dup {
			return &DefectError{Kind: DefectDuplicateName,
				Msg: fmt.Sprintf("dfg %s: nodes %d and %d share the name %q", g.Name, j, i, n.Name)}
		}
		seen[n.Name] = i
	}
	for i, e := range g.Edges {
		if e.ID != i {
			return &DefectError{Kind: DefectBadID,
				Msg: fmt.Sprintf("dfg %s: edge %d has ID %d", g.Name, i, e.ID)}
		}
		if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
			return &DefectError{Kind: DefectDanglingEdge,
				Msg: fmt.Sprintf("dfg %s: edge %d endpoints (%d,%d) out of range", g.Name, i, e.From, e.To)}
		}
		if e.From == e.To {
			return &DefectError{Kind: DefectSelfLoop,
				Msg: fmt.Sprintf("dfg %s: self loop on node %d", g.Name, e.From)}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if len(g.Nodes) > 1 && !g.WeaklyConnected() {
		return &DefectError{Kind: DefectNotConnected,
			Msg: fmt.Sprintf("dfg %s: graph is not weakly connected", g.Name)}
	}
	return nil
}

// TopoOrder returns one topological order of the nodes (Kahn's algorithm with
// a deterministic smallest-ID tie break) or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	for v := range g.Nodes {
		indeg[v] = len(g.pred[v])
	}
	// Min-ID ready list keeps the order deterministic across runs.
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, &DefectError{Kind: DefectCycle, Msg: fmt.Sprintf("dfg %s: cycle detected", g.Name)}
	}
	return order, nil
}

// WeaklyConnected reports whether the undirected version of g is connected.
func (g *Graph) WeaklyConnected() bool {
	n := len(g.Nodes)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succ[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
		for _, w := range g.pred[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}
