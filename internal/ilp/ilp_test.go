package ilp

import (
	"math/rand"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

func TestSolverSimpleOptimal(t *testing.T) {
	// minimize x0 + 2*x1 s.t. x0 + x1 == 1  -> x0=1, obj 1.
	m := &Model{NumVars: 2, Objective: []Term{{0, 1}, {1, 2}}}
	m.AddExactlyOne([]int{0, 1})
	sol, st := (&Solver{}).Solve(m)
	if st != StatusOptimal {
		t.Fatalf("status = %v", st)
	}
	if sol.Objective != 1 || sol.Values[0] != 1 || sol.Values[1] != 0 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolverInfeasible(t *testing.T) {
	// x0 + x1 == 1 and x0 + x1 >= 2 is infeasible.
	m := &Model{NumVars: 2}
	m.AddExactlyOne([]int{0, 1})
	m.AddConstraint(Constraint{
		Terms: []Term{{0, 1}, {1, 1}}, Sense: GE, RHS: 2,
	})
	_, st := (&Solver{}).Solve(m)
	if st != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestSolverConflictingGroups(t *testing.T) {
	// Three items, two slots (pigeonhole): infeasible.
	// x[i][s]: item i in slot s; each item exactly one slot; each slot <= 1.
	m := &Model{NumVars: 6}
	for i := 0; i < 3; i++ {
		m.AddExactlyOne([]int{i * 2, i*2 + 1})
	}
	for s := 0; s < 2; s++ {
		m.AddConstraint(Constraint{
			Terms: []Term{{s, 1}, {2 + s, 1}, {4 + s, 1}}, Sense: LE, RHS: 1,
		})
	}
	_, st := (&Solver{}).Solve(m)
	if st != StatusInfeasible {
		t.Fatalf("pigeonhole status = %v, want infeasible", st)
	}
}

func TestSolverAssignmentOptimum(t *testing.T) {
	// 3 items, 3 slots, cost matrix; optimal assignment cost is 1+2+1 = 4.
	cost := [3][3]int{{1, 5, 9}, {2, 2, 7}, {8, 4, 1}}
	m := &Model{NumVars: 9}
	for i := 0; i < 3; i++ {
		grp := []int{}
		for s := 0; s < 3; s++ {
			v := i*3 + s
			grp = append(grp, v)
			m.Objective = append(m.Objective, Term{Var: v, Coef: cost[i][s]})
		}
		m.AddExactlyOne(grp)
	}
	for s := 0; s < 3; s++ {
		m.AddConstraint(Constraint{
			Terms: []Term{{s, 1}, {3 + s, 1}, {6 + s, 1}}, Sense: LE, RHS: 1,
		})
	}
	sol, st := (&Solver{}).Solve(m)
	if st != StatusOptimal || sol.Objective != 4 {
		t.Fatalf("status=%v obj=%d, want optimal 4", st, sol.Objective)
	}
}

func TestSolverTimeout(t *testing.T) {
	// A big pigeonhole instance with a nanosecond budget must time out.
	n := 12
	m := &Model{NumVars: n * (n - 1)}
	for i := 0; i < n; i++ {
		grp := []int{}
		for s := 0; s < n-1; s++ {
			grp = append(grp, i*(n-1)+s)
		}
		m.AddExactlyOne(grp)
	}
	for s := 0; s < n-1; s++ {
		var terms []Term
		for i := 0; i < n; i++ {
			terms = append(terms, Term{Var: i*(n-1) + s, Coef: 1})
		}
		m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 1})
	}
	_, st := (&Solver{MaxNodes: 50}).Solve(m)
	if st != StatusTimeout && st != StatusInfeasible {
		t.Fatalf("status = %v, want timeout or infeasible", st)
	}
}

func TestILPMapsSmallKernel(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("doitgen")
	res := Map(ar, g, Options{TimeLimitPerII: 4 * time.Second})
	if !res.OK {
		t.Fatal("ILP failed on doitgen / 4x4")
	}
	if err := mapper.Verify(ar, g, &res); err != nil {
		t.Fatal(err)
	}
	if res.II < ar.MinII(g) {
		t.Fatalf("II %d below MII", res.II)
	}
}

func TestILPFailsOnOversizedFormulation(t *testing.T) {
	ar := arch.NewBaseline8x8()
	g, _ := kernels.Unrolled("2mm")
	res := Map(ar, g, Options{TimeLimitPerII: time.Second, MaxVars: 500})
	if res.OK {
		t.Fatal("expected scale failure with tiny MaxVars")
	}
	if res.II != 0 {
		t.Fatal("failed ILP must report II 0")
	}
}

func TestILPRejectsUnsupportedOps(t *testing.T) {
	ar := arch.NewSystolic5x5()
	g := kernels.MustByName("trmm")
	res := Map(ar, g, Options{TimeLimitPerII: time.Second})
	if res.OK {
		t.Fatal("trmm must be unmappable on systolic for ILP too")
	}
}

func TestILPWithinBudgetComparableToLISA(t *testing.T) {
	// On a small kernel ILP should find an II no worse than LISA's +1
	// (it is exact given time; LISA is a heuristic).
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	ilpRes := Map(ar, g, Options{TimeLimitPerII: 4 * time.Second})
	lisaRes, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ilpRes.OK {
		t.Skip("ILP timed out on this machine; acceptable")
	}
	if err := mapper.Verify(ar, g, &ilpRes); err != nil {
		t.Fatal(err)
	}
	if lisaRes.OK && ilpRes.II > lisaRes.II+2 {
		t.Errorf("ILP II=%d much worse than LISA II=%d", ilpRes.II, lisaRes.II)
	}
}

// bruteForce enumerates all assignments of a small model and returns the
// optimal objective, or ok=false when infeasible.
func bruteForce(m *Model) (best int, ok bool) {
	best = 1 << 60
	n := m.NumVars
	for bits := 0; bits < 1<<uint(n); bits++ {
		feasible := true
		for _, c := range m.Cons {
			lhs := 0
			for _, t := range c.Terms {
				if bits>>uint(t.Var)&1 == 1 {
					lhs += t.Coef
				}
			}
			switch c.Sense {
			case LE:
				feasible = feasible && lhs <= c.RHS
			case GE:
				feasible = feasible && lhs >= c.RHS
			case EQ:
				feasible = feasible && lhs == c.RHS
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		obj := 0
		for _, t := range m.Objective {
			if bits>>uint(t.Var)&1 == 1 {
				obj += t.Coef
			}
		}
		if obj < best {
			best, ok = obj, true
		}
	}
	return best, ok
}

// randomModel builds a small random model with exactly-one groups plus LE
// side constraints — the same structure the mapping formulation produces.
func randomModel(rng *rand.Rand) *Model {
	groups := 2 + rng.Intn(3)
	per := 2 + rng.Intn(2)
	m := &Model{NumVars: groups * per}
	for gI := 0; gI < groups; gI++ {
		var grp []int
		for k := 0; k < per; k++ {
			v := gI*per + k
			grp = append(grp, v)
			m.Objective = append(m.Objective, Term{Var: v, Coef: rng.Intn(9) - 2})
		}
		m.AddExactlyOne(grp)
	}
	for c := 0; c < 2+rng.Intn(3); c++ {
		var terms []Term
		for v := 0; v < m.NumVars; v++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{Var: v, Coef: 1 + rng.Intn(2)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: rng.Intn(4)})
	}
	return m
}

func TestSolverMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		want, feasible := bruteForce(m)
		sol, st := (&Solver{}).Solve(m)
		if feasible {
			if st != StatusOptimal {
				t.Fatalf("seed %d: status %v, brute force found optimum %d", seed, st, want)
			}
			if sol.Objective != want {
				t.Fatalf("seed %d: objective %d, brute force %d", seed, sol.Objective, want)
			}
		} else if st != StatusInfeasible {
			t.Fatalf("seed %d: status %v, brute force says infeasible", seed, st)
		}
	}
}
