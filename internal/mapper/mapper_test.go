package mapper

import (
	"math/rand"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
)

// quickOpts keeps test budgets small and deterministic.
func quickOpts(seed int64) Options {
	return Options{Seed: seed, MaxMoves: 1500}
}

func TestLISAMapsAllKernelsOn4x4(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for _, name := range kernels.Names() {
		g := kernels.MustByName(name)
		res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(7))
		if !res.OK {
			t.Errorf("%s: LISA failed on 4x4 baseline", name)
			continue
		}
		if err := Verify(ar, g, &res); err != nil {
			t.Errorf("%s: invalid mapping: %v", name, err)
		}
		if res.II < ar.MinII(g) {
			t.Errorf("%s: II %d below MII %d", name, res.II, ar.MinII(g))
		}
	}
}

func TestLISAMapsKernelsOn3x3(t *testing.T) {
	ar := arch.NewBaseline3x3()
	for _, name := range []string{"gemm", "syrk", "doitgen", "atax"} {
		g := kernels.MustByName(name)
		res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(11))
		if !res.OK {
			t.Errorf("%s: LISA failed on 3x3", name)
			continue
		}
		if err := Verify(ar, g, &res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMapOnLessMemRespectsPolicy(t *testing.T) {
	ar := arch.NewLessMem4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(3))
	if !res.OK {
		t.Fatal("LISA failed on less-mem 4x4")
	}
	if err := Verify(ar, g, &res); err != nil {
		t.Fatal(err)
	}
	for v, n := range g.Nodes {
		if n.Op.IsMemory() {
			if _, col := ar.Coord(res.PE[v]); col != 0 {
				t.Errorf("mem op %s placed on column %d", n.Name, col)
			}
		}
	}
}

func TestSystolicMapping(t *testing.T) {
	ar := arch.NewSystolic5x5()
	// doitgen: small, mul/add only -> mappable.
	g := kernels.MustByName("doitgen")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(5))
	if !res.OK {
		t.Fatal("LISA failed to map doitgen on systolic array")
	}
	if err := Verify(ar, g, &res); err != nil {
		t.Fatal(err)
	}
	// trmm: cmp/select are not executable on any systolic PE.
	tr := kernels.MustByName("trmm")
	res2 := mustMap(t, ar, tr, AlgLISA, nil, quickOpts(5))
	if res2.OK {
		t.Fatal("trmm must be unmappable on the systolic array")
	}
	if res2.II != 0 {
		t.Fatalf("failed mapping must report II=0, got %d", res2.II)
	}
}

func TestAllAlgorithmsProduceValidMappings(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	for _, alg := range []Algorithm{AlgSA, AlgSARP, AlgSAM, AlgLISA, AlgPart} {
		res := mustMap(t, ar, g, alg, nil, quickOpts(2))
		if !res.OK {
			t.Errorf("%s: failed to map syrk", alg)
			continue
		}
		if err := Verify(ar, g, &res); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	r1 := mustMap(t, ar, g, AlgLISA, nil, quickOpts(42))
	r2 := mustMap(t, ar, g, AlgLISA, nil, quickOpts(42))
	if r1.OK != r2.OK || r1.II != r2.II || r1.Moves != r2.Moves {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	for i := range r1.PE {
		if r1.PE[i] != r2.PE[i] || r1.Time[i] != r2.Time[i] {
			t.Fatalf("placement diverged at node %d", i)
		}
	}
}

func TestLISABeatsOrMatchesSAOnII(t *testing.T) {
	// The headline claim: with identical budgets LISA achieves II <= SA's
	// on the vast majority of combinations. Check a representative set.
	ar := arch.NewBaseline4x4()
	better, worse := 0, 0
	for _, name := range []string{"gemm", "atax", "bicg", "syrk", "syr2k", "gesummv"} {
		g := kernels.MustByName(name)
		lisa := mustMap(t, ar, g, AlgLISA, nil, quickOpts(9))
		sa := mustMap(t, ar, g, AlgSA, nil, quickOpts(9))
		switch {
		case !sa.OK && lisa.OK:
			better++
		case sa.OK && !lisa.OK:
			worse++
		case sa.OK && lisa.OK && lisa.II < sa.II:
			better++
		case sa.OK && lisa.OK && lisa.II > sa.II:
			worse++
		}
	}
	if worse > better {
		t.Errorf("LISA worse than SA on %d kernels vs better on %d", worse, better)
	}
}

func TestUnrolledMappingOn8x8(t *testing.T) {
	ar := arch.NewBaseline8x8()
	g, err := kernels.Unrolled("gemm")
	if err != nil {
		t.Fatal(err)
	}
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(13))
	if !res.OK {
		t.Fatal("LISA failed on unrolled gemm / 8x8")
	}
	if err := Verify(ar, g, &res); err != nil {
		t.Fatal(err)
	}
}

func TestPartialModeUsesLabelsOnlyInitially(t *testing.T) {
	// Behavioural check: partial and full LISA must both be valid; partial
	// with zero extra moves equals the label-seeded initial mapping.
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("doitgen")
	an := dfg.Analyze(g)
	lbl := labels.Initial(an)
	res := mustMap(t, ar, g, AlgPart, lbl, quickOpts(21))
	if !res.OK {
		t.Fatal("partial label-aware SA failed")
	}
	if err := Verify(ar, g, &res); err != nil {
		t.Fatal(err)
	}
}

func TestStatsConversion(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(1))
	if !res.OK {
		t.Fatal("map failed")
	}
	st := res.Stats(ar)
	if st == nil || st.II != res.II {
		t.Fatal("stats conversion broken")
	}
	an := dfg.Analyze(g)
	l := labels.Extract(an, st)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Temporal label == route hops == schedule delta.
	for i, e := range g.Edges {
		if int(l.Temporal[i]) != res.Time[e.To]-res.Time[e.From] {
			t.Fatalf("edge %d temporal label %v != dt", i, l.Temporal[i])
		}
	}
	failed := Result{OK: false}
	if failed.Stats(ar) != nil {
		t.Fatal("failed result must yield nil stats")
	}
}

func TestMapRandomDFGsAlwaysVerifies(t *testing.T) {
	// Fuzz the full pipeline: any mapping the annealer claims valid must
	// pass independent verification.
	ar := arch.NewBaseline4x4()
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "fuzz")
		res := mustMap(t, ar, g, AlgLISA, nil, Options{Seed: seed, MaxMoves: 1200})
		if !res.OK {
			continue
		}
		if err := Verify(ar, g, &res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Fatalf("withDefaults() = %+v, want %+v", o, d)
	}
	o2 := Options{MaxMoves: 7}.withDefaults()
	if o2.MaxMoves != 7 || o2.MovesPerTemp != d.MovesPerTemp {
		t.Fatal("partial override broken")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(1))
	if !res.OK {
		t.Fatal("map failed")
	}
	// Corrupt causality.
	bad := res
	bad.Time = append([]int(nil), res.Time...)
	bad.Time[g.Edges[0].To] = bad.Time[g.Edges[0].From]
	if Verify(ar, g, &bad) == nil {
		t.Error("Verify missed causality violation")
	}
	// Corrupt placement conflict.
	bad2 := res
	bad2.PE = append([]int(nil), res.PE...)
	bad2.Time = append([]int(nil), res.Time...)
	bad2.PE[1] = res.PE[0]
	bad2.Time[1] = res.Time[0]
	if Verify(ar, g, &bad2) == nil {
		t.Error("Verify missed FU conflict")
	}
}

func TestMaxIICapRespected(t *testing.T) {
	ar := arch.NewBaseline3x3()
	g := kernels.MustByName("syr2k")
	res := mustMap(t, ar, g, AlgSA, nil, Options{Seed: 1, MaxMoves: 50, MaxII: 3})
	for _, ii := range res.TriedIIs {
		if ii > 3 {
			t.Fatalf("tried II %d beyond cap", ii)
		}
	}
}

func TestTimeLimitStopsSweep(t *testing.T) {
	ar := arch.NewBaseline3x3()
	g := kernels.MustByName("syr2k")
	start := time.Now()
	res := mustMap(t, ar, g, AlgSA, nil, Options{
		Seed: 1, MaxMoves: 1 << 20, TimeLimit: 60 * time.Millisecond, MaxII: 4,
	})
	elapsed := time.Since(start)
	if res.OK {
		return // finished fast; nothing to assert about the limit
	}
	if elapsed > 2*time.Second {
		t.Fatalf("time limit ignored: ran %v", elapsed)
	}
}

func TestTinyTimeLimitBoundsWholeSweep(t *testing.T) {
	// With an already-exhausted budget the II sweep must stop before
	// starting attempts: at most the first attempt (whose anneal loop
	// checks the limit every 64 movements) may run, TriedIIs must not
	// record IIs that never got budget, and the whole call stays far below
	// an unbounded sweep.
	ar := arch.NewBaseline3x3()
	g := kernels.MustByName("syr2k")
	start := time.Now()
	res := mustMap(t, ar, g, AlgSA, nil, Options{
		Seed: 1, MaxMoves: 1 << 20, TimeLimit: time.Nanosecond, MaxII: 6,
	})
	elapsed := time.Since(start)
	if len(res.TriedIIs) > 1 {
		t.Fatalf("tiny TimeLimit still started %d II attempts: %v", len(res.TriedIIs), res.TriedIIs)
	}
	if res.OK {
		t.Fatalf("II %d mapped with no budget", res.II)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("tiny TimeLimit did not bound the sweep: ran %v", elapsed)
	}
}

func TestRoutesFieldConsistent(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("bicg")
	res := mustMap(t, ar, g, AlgLISA, nil, quickOpts(12))
	if !res.OK {
		t.Fatal("map failed")
	}
	if len(res.Routes) != g.NumEdges() {
		t.Fatalf("routes = %d, want %d", len(res.Routes), g.NumEdges())
	}
	for e, p := range res.Routes {
		if len(p)-1 != res.EdgeHops[e] {
			t.Fatalf("edge %d route length %d != hops %d", e, len(p)-1, res.EdgeHops[e])
		}
	}
}
