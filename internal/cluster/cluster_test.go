package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

func threePeers() []string {
	return []string{"http://127.0.0.1:9001", "http://127.0.0.1:9002", "http://127.0.0.1:9003"}
}

func mustNew(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	peers := threePeers()
	cases := map[string]Config{
		"empty peers":      {Self: peers[0]},
		"no self":          {Peers: peers},
		"self not in list": {Self: "http://127.0.0.1:9999", Peers: peers},
		"duplicate":        {Self: peers[0], Peers: append(threePeers(), peers[1])},
		"relative url":     {Self: "node-a", Peers: []string{"node-a", "node-b"}},
	}
	for what, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", what)
		}
	}
}

// TestRingAgreesAcrossPeerOrder is the no-coordination contract: every node
// derives the identical ownership map from any ordering of the same -peers
// flag.
func TestRingAgreesAcrossPeerOrder(t *testing.T) {
	peers := threePeers()
	shuffled := []string{peers[2], peers[0], peers[1]}
	a := mustNew(t, Config{Self: peers[0], Peers: peers})
	b := mustNew(t, Config{Self: peers[1], Peers: shuffled})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("%064x", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: node a says %s, node b says %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestOwnershipDistributionAndDeterminism(t *testing.T) {
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%064x", i*7919)
		owner := c.Owner(key)
		if c.Owner(key) != owner {
			t.Fatal("Owner is not deterministic")
		}
		counts[owner]++
	}
	for _, p := range peers {
		if counts[p] < n/6 {
			t.Fatalf("peer %s owns only %d/%d keys; ring badly skewed: %v", p, counts[p], n, counts)
		}
	}
}

// TestConsistentHashStability: removing one peer must only reassign the
// keys that peer owned — the point of consistent hashing over mod-N.
func TestConsistentHashStability(t *testing.T) {
	peers := threePeers()
	full := mustNew(t, Config{Self: peers[0], Peers: peers})
	reduced := mustNew(t, Config{Self: peers[0], Peers: peers[:2]})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("%064x", i*104729)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != peers[2] && after != before {
			t.Fatalf("key %s moved %s→%s though its owner never left", key, before, after)
		}
	}
}

// fakeClock is a hand-cranked clock for backoff tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBackoffScheduleDeterministic(t *testing.T) {
	peers := threePeers()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Now: clk.now,
		BackoffBase: 250 * time.Millisecond, BackoffMax: 2 * time.Second})
	peer := peers[1]

	if !c.Available(peer) {
		t.Fatal("fresh peer unavailable")
	}
	// failures → window: 250ms, 500ms, 1s, 2s, 2s (capped) ...
	for i, want := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 2 * time.Second} {
		c.markFailure(peer)
		if c.Available(peer) {
			t.Fatalf("failure %d: still available inside the window", i+1)
		}
		clk.advance(want - time.Millisecond)
		if c.Available(peer) {
			t.Fatalf("failure %d: window shorter than %v", i+1, want)
		}
		clk.advance(time.Millisecond)
		if !c.Available(peer) {
			t.Fatalf("failure %d: window longer than %v", i+1, want)
		}
	}
	c.markSuccess(peer)
	if !c.Available(peer) {
		t.Fatal("peer still down after success")
	}
	if st := c.Status(); st[0].Failures != 0 && st[1].Failures != 0 && st[2].Failures != 0 {
		t.Fatalf("Status retains failures after success: %+v", st)
	}
}

func TestForwardRoundTripAndLoopGuard(t *testing.T) {
	var gotForwarded string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded = r.Header.Get(ForwardedHeader)
		w.Header().Set("X-Lisa-Cache", "miss")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	self := "http://127.0.0.1:9001"
	c := mustNew(t, Config{Self: self, Peers: []string{self, srv.URL}})
	resp, err := c.Forward(srv.URL, "/v1/map", 1, []byte(`{"kernel":"gemm"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != `{"ok":true}` {
		t.Fatalf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header.Get("X-Lisa-Cache") != "miss" {
		t.Fatal("peer headers not forwarded")
	}
	if gotForwarded != self {
		t.Fatalf("%s header = %q, want %q", ForwardedHeader, gotForwarded, self)
	}
}

func TestForwardTransportFailureMarksDown(t *testing.T) {
	peers := threePeers()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	// Peer 9002 is not listening: the dial fails fast.
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Now: clk.now})
	if _, err := c.Forward(peers[1], "/v1/map", 1, nil); err == nil {
		t.Fatal("Forward to a dead peer succeeded")
	}
	// Now inside the backoff window: no dial, ErrPeerDown immediately.
	if _, err := c.Forward(peers[1], "/v1/map", 1, nil); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("second Forward = %v, want ErrPeerDown", err)
	}
	if st := c.Status(); st[1].Healthy || st[1].Failures != 1 {
		t.Fatalf("Status after one failure: %+v", st[1])
	}
}

func TestForwardHTTPErrorIsAliveContact(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	self := "http://127.0.0.1:9001"
	c := mustNew(t, Config{Self: self, Peers: []string{self, srv.URL}})
	resp, err := c.Forward(srv.URL, "/v1/map", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.Status)
	}
	if !c.Available(srv.URL) {
		t.Fatal("an HTTP 429 marked an alive peer down")
	}
}

func TestProbeUpdatesHealth(t *testing.T) {
	healthy := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		if !healthy {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	self := "http://127.0.0.1:9001"
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := mustNew(t, Config{Self: self, Peers: []string{self, srv.URL}, Now: clk.now})

	if !c.Probe(srv.URL) {
		t.Fatal("probe of a healthy peer failed")
	}
	if !c.Probe(self) {
		t.Fatal("self-probe must always succeed")
	}
	healthy = false
	if c.Probe(srv.URL) {
		t.Fatal("probe of a 503 peer succeeded")
	}
	// Inside backoff: probe reports down without contacting.
	if c.Probe(srv.URL) {
		t.Fatal("probe inside backoff succeeded")
	}
	healthy = true
	clk.advance(time.Second)
	if !c.Probe(srv.URL) {
		t.Fatal("probe after backoff expiry failed")
	}
}

func TestPeerRPCFaultSite(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	self := "http://127.0.0.1:9001"
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := mustNew(t, Config{Self: self, Peers: []string{self, srv.URL}, Now: clk.now})

	plan, err := fault.ParsePlan("peer.rpc=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()

	_, err = c.Forward(srv.URL, "/v1/map", 7, nil)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Site != fault.PeerRPC {
		t.Fatalf("Forward under peer.rpc fault = %v, want injected error", err)
	}
	if c.Available(srv.URL) {
		t.Fatal("injected RPC failure did not mark the peer down")
	}
	fault.Deactivate()
	clk.advance(time.Minute)
	if resp, err := c.Forward(srv.URL, "/v1/map", 7, nil); err != nil || resp.Status != http.StatusOK {
		t.Fatalf("recovery Forward = %v, %v", resp, err)
	}
}
