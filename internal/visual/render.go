package visual

import (
	"fmt"
	"io"
	"sort"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/mapper"
)

// WriteDFG renders a layered drawing of the DFG: one row per ASAP level,
// nodes as colored boxes, dependencies as lines — the same style as the
// paper's Fig. 4.
func WriteDFG(w io.Writer, g *dfg.Graph) error {
	an := dfg.Analyze(g)
	const (
		boxW, boxH = 84, 30
		gapX, gapY = 18, 42
		margin     = 24
	)
	// Nodes per level, in ID order.
	levels := make([][]int, an.CriticalPath+1)
	for v := range g.Nodes {
		levels[an.ASAP[v]] = append(levels[an.ASAP[v]], v)
	}
	widest := 0
	for _, l := range levels {
		if len(l) > widest {
			widest = len(l)
		}
	}
	width := 2*margin + widest*(boxW+gapX)
	height := 2*margin + len(levels)*(boxH+gapY)
	c := newCanvas(width, height)

	pos := make(map[int][2]int, g.NumNodes())
	for lvl, nodes := range levels {
		rowW := len(nodes)*(boxW+gapX) - gapX
		x0 := (width - rowW) / 2
		for i, v := range nodes {
			x := x0 + i*(boxW+gapX)
			y := margin + lvl*(boxH+gapY)
			pos[v] = [2]int{x + boxW/2, y + boxH/2}
		}
	}
	for _, e := range g.Edges {
		p, q := pos[e.From], pos[e.To]
		c.line(p[0], p[1]+boxH/2, q[0], q[1]-boxH/2, "#888888", 1.2)
	}
	for lvl, nodes := range levels {
		rowW := len(nodes)*(boxW+gapX) - gapX
		x0 := (width - rowW) / 2
		for i, v := range nodes {
			x := x0 + i*(boxW+gapX)
			y := margin + lvl*(boxH+gapY)
			c.rect(x, y, boxW, boxH, opFill(g.Nodes[v].Op.String()), "black")
			c.text(x+boxW/2, y+13, 10, "middle", g.Nodes[v].Name)
			c.text(x+boxW/2, y+25, 9, "middle", g.Nodes[v].Op.String())
		}
	}
	c.text(margin, height-6, 12, "start", fmt.Sprintf("%s — %d nodes, %d edges", g.Name, g.NumNodes(), g.NumEdges()))
	return c.flush(w)
}

// WriteMapping renders a successful mapping on the time-extended array, the
// style of the paper's Fig. 5: columns are PEs, rows are absolute cycles,
// ops are colored cells, and every route is drawn hop by hop.
func WriteMapping(w io.Writer, ar arch.Arch, g *dfg.Graph, r *mapper.Result) error {
	if !r.OK {
		return fmt.Errorf("visual: result not OK")
	}
	rg := ar.BuildRGraph(r.II)
	const (
		cellW, cellH = 72, 30
		margin       = 60
	)
	maxT := 0
	for _, t := range r.Time {
		if t > maxT {
			maxT = t
		}
	}
	// Routes can extend past the last firing? No: they end at consumers.
	width := margin*2 + ar.NumPEs()*cellW
	height := margin*2 + (maxT+1)*cellH
	c := newCanvas(width, height)

	cellCenter := func(pe, t int) (int, int) {
		return margin + pe*cellW + cellW/2, margin + t*cellH + cellH/2
	}
	// Grid and headers.
	for pe := 0; pe < ar.NumPEs(); pe++ {
		row, col := ar.Coord(pe)
		x, _ := cellCenter(pe, 0)
		c.text(x, margin-10, 10, "middle", fmt.Sprintf("(%d,%d)", row, col))
	}
	for t := 0; t <= maxT; t++ {
		_, y := cellCenter(0, t)
		c.text(margin-34, y+4, 10, "middle", fmt.Sprintf("t=%d", t))
		for pe := 0; pe < ar.NumPEs(); pe++ {
			c.rect(margin+pe*cellW, margin+t*cellH, cellW, cellH, "none", "#dddddd")
		}
	}
	// Routes first (under the op cells).
	for i, e := range g.Edges {
		path := r.Routes[i]
		for j := 0; j+1 < len(path); j++ {
			p1 := rg.Nodes[path[j]].PE
			p2 := rg.Nodes[path[j+1]].PE
			t1 := r.Time[e.From] + j
			x1, y1 := cellCenter(p1, t1)
			x2, y2 := cellCenter(p2, t1+1)
			c.line(x1, y1, x2, y2, "#4477cc", 1.4)
		}
	}
	// Ops.
	for v := range g.Nodes {
		x := margin + r.PE[v]*cellW
		y := margin + r.Time[v]*cellH
		c.rect(x+2, y+2, cellW-4, cellH-4, opFill(g.Nodes[v].Op.String()), "black")
		cx, cy := cellCenter(r.PE[v], r.Time[v])
		c.text(cx, cy+4, 9, "middle", g.Nodes[v].Name)
	}
	c.text(margin, height-8, 12, "start",
		fmt.Sprintf("%s on %s — II=%d", g.Name, ar.Name(), r.II))
	return c.flush(w)
}

// Series is one named bar series of a grouped chart.
type Series struct {
	Name   string
	Values map[string]float64 // category -> value
	Fill   string
}

// WriteBarChart renders a grouped bar chart (Fig. 9/10/11 style): categories
// on the x axis, one bar per series per category. Missing values render as a
// small ✗ marker, the paper's "cannot map".
func WriteBarChart(w io.Writer, title, yLabel string, categories []string, series []Series) error {
	const (
		margin  = 54
		barW    = 14
		groupGp = 18
		chartH  = 220
	)
	groupW := len(series)*barW + groupGp
	width := margin*2 + len(categories)*groupW
	height := chartH + margin*2
	c := newCanvas(width, height)

	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	baseY := margin + chartH
	c.line(margin, baseY, width-margin/2, baseY, "black", 1.5)
	c.line(margin, margin/2, margin, baseY, "black", 1.5)
	c.text(margin-6, margin/2+8, 10, "end", fmt.Sprintf("%.1f", maxV))
	c.text(16, margin+chartH/2, 11, "middle", yLabel)

	fills := []string{"#6699cc", "#dd8866", "#66bb77", "#bb77cc", "#ccaa44"}
	for ci, cat := range categories {
		gx := margin + ci*groupW + groupGp/2
		for si, s := range series {
			fill := s.Fill
			if fill == "" {
				fill = fills[si%len(fills)]
			}
			x := gx + si*barW
			v, ok := s.Values[cat]
			if !ok || v <= 0 {
				c.text(x+barW/2, baseY-4, 12, "middle", "x")
				continue
			}
			h := int(float64(chartH) * v / maxV)
			c.rect(x, baseY-h, barW-2, h, fill, "black")
		}
		c.text(gx+len(series)*barW/2, baseY+14, 10, "middle", cat)
	}
	// Legend.
	lx := margin
	for si, s := range series {
		fill := s.Fill
		if fill == "" {
			fill = fills[si%len(fills)]
		}
		c.rect(lx, 8, 12, 12, fill, "black")
		c.text(lx+16, 18, 11, "start", s.Name)
		lx += 16 + 8*len(s.Name) + 24
	}
	c.text(width/2, height-6, 12, "middle", title)
	return c.flush(w)
}

// SortedCategories returns map keys in deterministic order (helper for
// chart callers).
func SortedCategories(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
