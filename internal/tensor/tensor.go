// Package tensor is a minimal reverse-mode automatic-differentiation engine
// for the LISA GNN models. It provides dense float64 matrices, the handful of
// differentiable operations the paper's four networks need (matmul, add,
// ReLU, column concatenation, element-wise ops, neighbor aggregation with
// mean/max/min pooling, safe reciprocal, mean-squared-error loss), and an
// Adam optimizer with decoupled weight decay.
//
// The engine records a dynamic computation tape: every operation returns a
// new Tensor holding its inputs and a backward closure. Backward() walks the
// tape in reverse topological order. There is no broadcasting and no GPU —
// the networks here have tens of weights, which is the point of the paper's
// tiny per-label models.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a 2-D matrix node in the autodiff tape.
type Tensor struct {
	Rows, Cols int
	Data       []float64
	Grad       []float64

	requiresGrad bool
	prev         []*Tensor
	back         func()
}

// New allocates a zero tensor that does not require gradients.
func New(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a constant tensor from row vectors (all rows must have the
// same length).
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	t := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.Cols {
			panic(fmt.Sprintf("tensor: ragged row %d (%d vs %d)", i, len(r), t.Cols))
		}
		copy(t.Data[i*t.Cols:], r)
	}
	return t
}

// Param allocates a trainable tensor with Xavier-style uniform init.
func Param(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	t.requiresGrad = true
	t.Grad = make([]float64, rows*cols)
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols+j] = v }

// RequiresGrad reports whether t is trainable.
func (t *Tensor) RequiresGrad() bool { return t.requiresGrad }

// needsTape reports whether t participates in gradient flow.
func (t *Tensor) needsTape() bool { return t.requiresGrad || t.back != nil }

// result builds an output tensor wired into the tape when any input needs it.
func result(rows, cols int, inputs []*Tensor, back func(out *Tensor)) *Tensor {
	out := New(rows, cols)
	taped := false
	for _, in := range inputs {
		if in.needsTape() {
			taped = true
			break
		}
	}
	if taped {
		out.Grad = make([]float64, rows*cols)
		out.prev = inputs
		out.back = func() { back(out) }
	}
	return out
}

// ensureGrad lazily allocates the gradient buffer of an intermediate.
func (t *Tensor) ensureGrad() {
	if t.Grad == nil {
		t.Grad = make([]float64, len(t.Data))
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape (%dx%d)@(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := result(a.Rows, b.Cols, []*Tensor{a, b}, func(out *Tensor) {
		if a.needsTape() {
			a.ensureGrad()
			for i := 0; i < a.Rows; i++ {
				for k := 0; k < a.Cols; k++ {
					g := 0.0
					for j := 0; j < b.Cols; j++ {
						g += out.Grad[i*out.Cols+j] * b.Data[k*b.Cols+j]
					}
					a.Grad[i*a.Cols+k] += g
				}
			}
		}
		if b.needsTape() {
			b.ensureGrad()
			for k := 0; k < b.Rows; k++ {
				for j := 0; j < b.Cols; j++ {
					g := 0.0
					for i := 0; i < a.Rows; i++ {
						g += a.Data[i*a.Cols+k] * out.Grad[i*out.Cols+j]
					}
					b.Grad[k*b.Cols+j] += g
				}
			}
		}
	})
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += av * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Tensor) *Tensor {
	checkSameShape("add", a, b)
	out := result(a.Rows, a.Cols, []*Tensor{a, b}, func(out *Tensor) {
		if a.needsTape() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i]
			}
		}
		if b.needsTape() {
			b.ensureGrad()
			for i := range b.Grad {
				b.Grad[i] += out.Grad[i]
			}
		}
	})
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Mul returns the element-wise product a ⊙ b.
func Mul(a, b *Tensor) *Tensor {
	checkSameShape("mul", a, b)
	out := result(a.Rows, a.Cols, []*Tensor{a, b}, func(out *Tensor) {
		if a.needsTape() {
			a.ensureGrad()
			for i := range a.Grad {
				a.Grad[i] += out.Grad[i] * b.Data[i]
			}
		}
		if b.needsTape() {
			b.ensureGrad()
			for i := range b.Grad {
				b.Grad[i] += out.Grad[i] * a.Data[i]
			}
		}
	})
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// ReLU returns max(x, 0) element-wise.
func ReLU(x *Tensor) *Tensor {
	out := result(x.Rows, x.Cols, []*Tensor{x}, func(out *Tensor) {
		if x.needsTape() {
			x.ensureGrad()
			for i := range x.Grad {
				if x.Data[i] > 0 {
					x.Grad[i] += out.Grad[i]
				}
			}
		}
	})
	for i := range out.Data {
		if x.Data[i] > 0 {
			out.Data[i] = x.Data[i]
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns.
func ConcatCols(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := parts[0].Rows
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic("tensor: concat row mismatch")
		}
		cols += p.Cols
	}
	out := result(rows, cols, parts, func(out *Tensor) {
		off := 0
		for _, p := range parts {
			if p.needsTape() {
				p.ensureGrad()
				for i := 0; i < rows; i++ {
					for j := 0; j < p.Cols; j++ {
						p.Grad[i*p.Cols+j] += out.Grad[i*cols+off+j]
					}
				}
			}
			off += p.Cols
		}
	})
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+p.Cols], p.Data[i*p.Cols:(i+1)*p.Cols])
		}
		off += p.Cols
	}
	return out
}

// Reciprocal returns 1/(x+eps·sign-guard): entries whose magnitude is below
// eps yield exactly 1, matching the paper's rule "if the value of a
// denominator is zero, the corresponding normalization factor is set to one".
func Reciprocal(x *Tensor, eps float64) *Tensor {
	out := result(x.Rows, x.Cols, []*Tensor{x}, func(out *Tensor) {
		if x.needsTape() {
			x.ensureGrad()
			for i := range x.Grad {
				if math.Abs(x.Data[i]) >= eps {
					d := x.Data[i]
					x.Grad[i] += out.Grad[i] * (-1 / (d * d))
				}
			}
		}
	})
	for i := range out.Data {
		if math.Abs(x.Data[i]) < eps {
			out.Data[i] = 1
		} else {
			out.Data[i] = 1 / x.Data[i]
		}
	}
	return out
}

// AggKind selects a neighbor-pooling function.
type AggKind uint8

// Pooling kinds used by the paper's equations.
const (
	AggMean AggKind = iota
	AggMax
	AggMin
	AggSum
)

// Aggregate pools rows of x over index sets: out[i] = pool(x[j] for j in
// sets[i]). Empty sets yield zero rows. Gradients flow to the contributing
// rows (all rows for mean/sum; the arg-extremum row for max/min).
func Aggregate(x *Tensor, sets [][]int, kind AggKind) *Tensor {
	n := len(sets)
	cols := x.Cols
	// argsel[i*cols+j] records which source row won for max/min.
	argsel := make([]int32, n*cols)
	out := result(n, cols, []*Tensor{x}, func(out *Tensor) {
		if !x.needsTape() {
			return
		}
		x.ensureGrad()
		for i, set := range sets {
			if len(set) == 0 {
				continue
			}
			for j := 0; j < cols; j++ {
				g := out.Grad[i*cols+j]
				if g == 0 {
					continue
				}
				switch kind {
				case AggMean:
					share := g / float64(len(set))
					for _, s := range set {
						x.Grad[s*cols+j] += share
					}
				case AggSum:
					for _, s := range set {
						x.Grad[s*cols+j] += g
					}
				default:
					x.Grad[int(argsel[i*cols+j])*cols+j] += g
				}
			}
		}
	})
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			switch kind {
			case AggMean, AggSum:
				sum := 0.0
				for _, s := range set {
					sum += x.Data[s*cols+j]
				}
				if kind == AggMean {
					sum /= float64(len(set))
				}
				out.Data[i*cols+j] = sum
			case AggMax:
				best := set[0]
				for _, s := range set[1:] {
					if x.Data[s*cols+j] > x.Data[best*cols+j] {
						best = s
					}
				}
				out.Data[i*cols+j] = x.Data[best*cols+j]
				argsel[i*cols+j] = int32(best)
			case AggMin:
				best := set[0]
				for _, s := range set[1:] {
					if x.Data[s*cols+j] < x.Data[best*cols+j] {
						best = s
					}
				}
				out.Data[i*cols+j] = x.Data[best*cols+j]
				argsel[i*cols+j] = int32(best)
			}
		}
	}
	return out
}

// MSE returns the scalar mean-squared error between pred and target (target
// is treated as a constant). An empty prediction is a shape bug upstream
// (e.g. a zero-row label slice reaching the loss): dividing by zero here
// would yield a NaN that silently poisons validation-loss sums and
// early-stopping comparisons, so it fails loudly like the other ops.
func MSE(pred, target *Tensor) *Tensor {
	checkSameShape("mse", pred, target)
	if len(pred.Data) == 0 {
		panic("tensor: MSE of an empty prediction (zero elements); upstream shape bug")
	}
	n := float64(len(pred.Data))
	out := result(1, 1, []*Tensor{pred}, func(out *Tensor) {
		if pred.needsTape() {
			pred.ensureGrad()
			for i := range pred.Grad {
				pred.Grad[i] += out.Grad[0] * 2 * (pred.Data[i] - target.Data[i]) / n
			}
		}
	})
	sum := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
	}
	out.Data[0] = sum / n
	return out
}

// Backward runs reverse-mode differentiation from a scalar loss.
func Backward(loss *Tensor) {
	if len(loss.Data) != 1 {
		panic("tensor: Backward needs a scalar loss")
	}
	// Topological order over the tape.
	var order []*Tensor
	seen := map[*Tensor]bool{}
	var visit func(t *Tensor)
	visit = func(t *Tensor) {
		if seen[t] || !t.needsTape() {
			return
		}
		seen[t] = true
		for _, p := range t.prev {
			visit(p)
		}
		order = append(order, t)
	}
	visit(loss)
	loss.ensureGrad()
	loss.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].back != nil {
			order[i].back()
		}
	}
}

func checkSameShape(op string, a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape (%dx%d) vs (%dx%d)", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
