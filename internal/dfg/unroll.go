package dfg

import "fmt"

// Unroll replicates the DFG body factor times, modelling loop unrolling of
// the kernel (the paper evaluates unrolling factor 2). Replicas of constant
// (loop-invariant) nodes are shared rather than duplicated — a compiler would
// CSE them — and consecutive iterations are chained through their memory
// accesses: the i-th replica's first load depends on the (i-1)-th replica's
// first store address chain only via the shared constants, so replicas stay
// weakly connected through the shared invariants. When a body has no constant
// node, a synthetic shared index constant is introduced.
func Unroll(g *Graph, factor int) *Graph {
	if factor < 1 {
		panic("dfg: unroll factor must be >= 1")
	}
	if factor == 1 {
		return g.Clone()
	}
	out := New(fmt.Sprintf("%s_u%d", g.Name, factor))

	// Shared constants: one copy for all iterations.
	shared := make(map[int]int) // original const node -> new ID
	for _, n := range g.Nodes {
		if n.Op == OpConst {
			shared[n.ID] = out.AddNode(n.Name, OpConst)
		}
	}
	anchor := -1
	if len(shared) == 0 {
		anchor = out.AddNode("iv", OpConst)
	}

	for it := 0; it < factor; it++ {
		remap := make(map[int]int, g.NumNodes())
		//lisa:vet-ok maprange map-to-map copy; remap's content is independent of insertion order
		for orig, sh := range shared {
			remap[orig] = sh
		}
		for _, n := range g.Nodes {
			if n.Op == OpConst {
				continue
			}
			remap[n.ID] = out.AddNode(fmt.Sprintf("%s_i%d", n.Name, it), n.Op)
		}
		for _, e := range g.Edges {
			out.AddEdge(remap[e.From], remap[e.To])
		}
		if anchor >= 0 {
			// Tie each iteration to the synthetic induction variable so the
			// unrolled graph stays weakly connected.
			for _, n := range g.Nodes {
				if g.InDegree(n.ID) == 0 {
					out.AddEdge(anchor, remap[n.ID])
				}
			}
		}
	}
	return out
}
