package arch

import (
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// This file extends the CGRA model with the architecture axes the paper's
// related work motivates (HyCube-style richer interconnect, REVAMP-style
// heterogeneous PEs). They are not part of the paper's six evaluation
// targets, but they are exactly the kind of "new accelerator" a portable
// compiler must absorb without manual retuning — examples/newaccel and the
// portability tests exercise them.

// Torus wraps a CGRA's mesh into a torus: each edge PE also links to the
// opposite edge, halving worst-case spatial distance.
type Torus struct {
	CGRA
}

// NewTorus4x4 returns a 4×4 torus CGRA with the baseline register file.
func NewTorus4x4() *Torus {
	t := &Torus{CGRA: *NewCGRA("cgra-4x4-torus", 4, 4, 4, MemAll, 24)}
	return t
}

// SpatialDistance implements Arch with wrap-around Manhattan distance.
func (t *Torus) SpatialDistance(a, b int) int {
	r1, c1 := t.Coord(a)
	r2, c2 := t.Coord(b)
	dr := absInt(r1 - r2)
	if w := t.Rows - dr; w < dr {
		dr = w
	}
	dc := absInt(c1 - c2)
	if w := t.Cols - dc; w < dc {
		dc = w
	}
	return dr + dc
}

// BuildRGraph builds the mesh resource graph and adds the wrap links.
func (t *Torus) BuildRGraph(ii int) *rgraph.Graph {
	g := t.CGRA.BuildRGraph(ii)
	// Wrap links: first/last column and first/last row, FU->FU and reg->FU,
	// advancing one cycle like every other link.
	addWrap := func(a, b int) {
		for cyc := 0; cyc < ii; cyc++ {
			nt := (cyc + 1) % ii
			g.AddEdge(g.FUAt(a, cyc), g.FUAt(b, nt))
			g.AddEdge(g.FUAt(b, cyc), g.FUAt(a, nt))
		}
	}
	for r := 0; r < t.Rows; r++ {
		addWrap(t.PEAt(r, 0), t.PEAt(r, t.Cols-1))
	}
	for c := 0; c < t.Cols; c++ {
		addWrap(t.PEAt(0, c), t.PEAt(t.Rows-1, c))
	}
	return g
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Hetero is a heterogeneous CGRA in the REVAMP mould: every PE has an adder
// and logic unit, but only PEs on a checkerboard pattern carry the expensive
// multiplier/divider/shifter. Memory policy and registers follow the
// embedded CGRA configuration.
type Hetero struct {
	CGRA
}

// NewHetero4x4 returns a 4×4 CGRA where only checkerboard PEs multiply.
func NewHetero4x4() *Hetero {
	return &Hetero{CGRA: *NewCGRA("cgra-4x4-hetero", 4, 4, 4, MemAll, 24)}
}

// hasMultiplier reports whether the PE carries the complex-ALU cluster.
func (h *Hetero) hasMultiplier(pe int) bool {
	r, c := h.Coord(pe)
	return (r+c)%2 == 0
}

// complexOps are the operations restricted to multiplier PEs.
func complexOps() uint32 {
	return maskOf(dfg.OpMul, dfg.OpDiv, dfg.OpShl, dfg.OpShr)
}

// SupportsOp implements Arch.
func (h *Hetero) SupportsOp(pe int, op dfg.OpKind) bool {
	if complexOps()&(1<<uint(op)) != 0 && !h.hasMultiplier(pe) {
		return false
	}
	return h.CGRA.SupportsOp(pe, op)
}

// MinII implements Arch, adding the multiplier-port bound.
func (h *Hetero) MinII(g *dfg.Graph) int {
	ii := h.CGRA.MinII(g)
	mulOps := 0
	for _, n := range g.Nodes {
		if complexOps()&(1<<uint(n.Op)) != 0 {
			mulOps++
		}
	}
	mulPEs := 0
	for pe := 0; pe < h.NumPEs(); pe++ {
		if h.hasMultiplier(pe) {
			mulPEs++
		}
	}
	if m := ceilDiv(mulOps, mulPEs); m > ii {
		ii = m
	}
	return ii
}

// BuildRGraph builds the mesh graph, then strips the complex ops from the
// FU masks of non-multiplier PEs.
func (h *Hetero) BuildRGraph(ii int) *rgraph.Graph {
	g := h.CGRA.BuildRGraph(ii)
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Kind == rgraph.KindFU && !h.hasMultiplier(n.PE) {
			n.OpsMask &^= complexOps()
		}
	}
	return g
}

// ExtendedTargets returns the paper's six targets plus the torus and
// heterogeneous variants.
func ExtendedTargets() []Arch {
	return append(PaperTargets(), NewTorus4x4(), NewHetero4x4())
}
