package arch

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/lisa-go/lisa/internal/dfg"
)

// Spec is the JSON architecture description — the reproduction's counterpart
// of CGRA-ME's XML ADL. A portable compiler must absorb a *description* of a
// new accelerator rather than code changes; lisa-map/lisa-train accept these
// files via -arch-file and examples/customarch walks through one.
//
// Minimal example:
//
//	{
//	  "name": "diag-6x3",
//	  "rows": 6, "cols": 3,
//	  "maxII": 16,
//	  "defaults": {"registers": 2, "ops": "all"},
//	  "memory": {"policy": "leftColumn"},
//	  "links": {"mesh": true, "diagonal": true}
//	}
//
// Per-PE overrides pin down heterogeneous fabrics:
//
//	"pes": [
//	  {"at": [0, 0], "ops": ["load", "const"], "registers": 0},
//	  {"at": [2, 1], "ops": ["mul", "add"]}
//	]
type Spec struct {
	Name  string `json:"name"`
	Rows  int    `json:"rows"`
	Cols  int    `json:"cols"`
	MaxII int    `json:"maxII"`

	Defaults PESpec   `json:"defaults"`
	Memory   MemSpec  `json:"memory"`
	Links    LinkSpec `json:"links"`
	PEs      []PESpec `json:"pes"`
}

// PESpec describes one PE (or the default for all PEs).
type PESpec struct {
	// At is the [row, col] position; omitted in Defaults.
	At *[2]int `json:"at,omitempty"`
	// Registers is the register-file capacity. nil means "inherit".
	Registers *int `json:"registers,omitempty"`
	// Ops lists op mnemonics, or the strings "all" / "alu" (all minus
	// memory ops). nil means "inherit".
	Ops json.RawMessage `json:"ops,omitempty"`
}

// MemSpec selects the PEs that may execute loads/stores.
type MemSpec struct {
	// Policy is "all" (default), "leftColumn", or "custom".
	Policy string `json:"policy"`
	// PEs lists [row, col] pairs when Policy is "custom".
	PEs [][2]int `json:"pes,omitempty"`
}

// LinkSpec selects the interconnect pattern.
type LinkSpec struct {
	Mesh     bool `json:"mesh"`     // 4-neighborhood (default true)
	Torus    bool `json:"torus"`    // wrap-around rows/columns
	Diagonal bool `json:"diagonal"` // 8-neighborhood diagonals
}

// ParseSpec reads and validates a Spec.
func ParseSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("arch: decode spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("arch: spec needs a name")
	}
	if s.Rows < 1 || s.Cols < 1 {
		return fmt.Errorf("arch %s: rows/cols must be positive", s.Name)
	}
	if s.MaxII == 0 {
		s.MaxII = 24
	}
	if s.MaxII < 1 {
		return fmt.Errorf("arch %s: maxII must be >= 1", s.Name)
	}
	switch s.Memory.Policy {
	case "", "all", "leftColumn":
	case "custom":
		if len(s.Memory.PEs) == 0 {
			return fmt.Errorf("arch %s: custom memory policy needs pes", s.Name)
		}
		for _, at := range s.Memory.PEs {
			if at[0] < 0 || at[0] >= s.Rows || at[1] < 0 || at[1] >= s.Cols {
				return fmt.Errorf("arch %s: memory PE (%d,%d) out of grid", s.Name, at[0], at[1])
			}
		}
	default:
		return fmt.Errorf("arch %s: unknown memory policy %q", s.Name, s.Memory.Policy)
	}
	for i, pe := range s.PEs {
		if pe.At == nil {
			return fmt.Errorf("arch %s: pes[%d] needs \"at\"", s.Name, i)
		}
		if pe.At[0] < 0 || pe.At[0] >= s.Rows || pe.At[1] < 0 || pe.At[1] >= s.Cols {
			return fmt.Errorf("arch %s: pes[%d] at (%d,%d) out of grid",
				s.Name, i, pe.At[0], pe.At[1])
		}
		if _, err := parseOpsField(pe.Ops); err != nil {
			return fmt.Errorf("arch %s: pes[%d]: %v", s.Name, i, err)
		}
	}
	if _, err := parseOpsField(s.Defaults.Ops); err != nil {
		return fmt.Errorf("arch %s: defaults: %v", s.Name, err)
	}
	return nil
}

// parseOpsField resolves an ops field to a bitmask. nil yields (0, nil)
// meaning "inherit"; callers apply defaults.
func parseOpsField(raw json.RawMessage) (uint32, error) {
	if raw == nil {
		return 0, nil
	}
	var label string
	if err := json.Unmarshal(raw, &label); err == nil {
		switch label {
		case "all":
			return allOpsMask(), nil
		case "alu":
			return allOpsMask() &^ maskOf(dfg.OpLoad, dfg.OpStore), nil
		default:
			return 0, fmt.Errorf("unknown ops label %q (want \"all\", \"alu\" or a list)", label)
		}
	}
	var names []string
	if err := json.Unmarshal(raw, &names); err != nil {
		return 0, fmt.Errorf("ops must be a label or a list of mnemonics")
	}
	if len(names) == 0 {
		return 0, fmt.Errorf("ops list is empty")
	}
	var mask uint32
	for _, n := range names {
		k, err := dfg.ParseOpKind(n)
		if err != nil {
			return 0, err
		}
		mask |= 1 << uint(k)
	}
	return mask, nil
}
