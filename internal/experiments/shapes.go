package experiments

import (
	"fmt"
	"io"
	"strings"
)

// The reproduction's fidelity target is the *shape* of the paper's results,
// not the absolute numbers (different substrate, different budgets). This
// file encodes the paper's qualitative claims as executable assertions, so
// that "the shape holds" is a checked property rather than a reading of the
// output. EXPERIMENTS.md references these checks by name.

// Shape is the outcome of one assertion.
type Shape struct {
	Name   string
	Pass   bool
	Detail string
}

// CheckFig9 evaluates the paper's §VI-A claims over a set of Fig. 9 panels:
//   - LISA maps at least as many combinations as SA, and SA at least as
//     many as ILP ("LISA can map 48 combinations that ILP cannot ...").
//   - LISA achieves strictly better II than SA on more combinations than
//     the reverse ("ILP and SA can generate better mappings than LISA for
//     only 6 and 3 combinations").
func CheckFig9(cmps []*Comparison) []Shape {
	s := Summarize(cmps)
	var out []Shape
	out = append(out, Shape{
		Name: "fig9/coverage-order",
		Pass: s.MappedBy[MethodLISA] >= s.MappedBy[MethodSA] &&
			s.MappedBy[MethodSA] >= s.MappedBy[MethodILP],
		Detail: fmt.Sprintf("mapped: ILP %d <= SA %d <= LISA %d of %d",
			s.MappedBy[MethodILP], s.MappedBy[MethodSA], s.MappedBy[MethodLISA], s.Combinations),
	})
	out = append(out, Shape{
		Name:   "fig9/lisa-dominates-sa",
		Pass:   s.LISABetter > s.LISAWorse,
		Detail: fmt.Sprintf("LISA better on %d, worse on %d", s.LISABetter, s.LISAWorse),
	})
	return out
}

// CheckFig9g evaluates the systolic panel: LISA maps every kernel except
// trmm (the paper's lone ✗ for LISA).
func CheckFig9g(cmp *Comparison) []Shape {
	lisaFails := 0
	trmmFails := false
	for _, r := range cmp.Rows {
		res := r.Results[MethodLISA]
		if !res.OK {
			lisaFails++
			if r.Kernel == "trmm" {
				trmmFails = true
			}
		}
	}
	return []Shape{
		{
			Name:   "fig9g/trmm-unmappable",
			Pass:   trmmFails,
			Detail: fmt.Sprintf("trmm unmapped by LISA: %v", trmmFails),
		},
		{
			Name:   "fig9g/lisa-maps-rest",
			Pass:   lisaFails <= 2,
			Detail: fmt.Sprintf("LISA fails on %d systolic kernels (paper: 1)", lisaFails),
		},
	}
}

// CheckFig10 evaluates the power claim: on average SA is no more power
// efficient than LISA (the paper reports LISA at 1.58x / 1.4x over SA).
func CheckFig10(rows []PowerRow) []Shape {
	sum, n := 0.0, 0
	for _, r := range rows {
		if v, ok := r.Normalized[MethodSA]; ok {
			sum += v
			n++
		}
	}
	avg := 1.0
	if n > 0 {
		avg = sum / float64(n)
	}
	return []Shape{{
		Name:   "fig10/lisa-at-least-as-efficient",
		Pass:   avg <= 1.1,
		Detail: fmt.Sprintf("mean SA efficiency normalized to LISA = %.2f over %d kernels", avg, n),
	}}
}

// CheckFig11 evaluates the compile-time claim: LISA compiles faster than
// both ILP and SA on average (the paper reports 594x/724x vs ILP and
// 17x/12x vs SA).
func CheckFig11(rows []TimeRow) []Shape {
	vsILP := GeomeanSpeedup(rows, MethodILP)
	vsSA := GeomeanSpeedup(rows, MethodSA)
	return []Shape{
		{
			Name:   "fig11/faster-than-ilp",
			Pass:   vsILP > 1,
			Detail: fmt.Sprintf("LISA %.1fx faster than ILP", vsILP),
		},
		{
			Name:   "fig11/faster-than-sa",
			Pass:   vsSA > 1,
			Detail: fmt.Sprintf("LISA %.1fx faster than SA", vsSA),
		},
	}
}

// CheckTable2 evaluates the GNN-accuracy trends: accuracies are valid
// probabilities and the temporal-distance label (the most learnable, per
// Table II) scores at least as well as the schedule-order label (the
// hardest) on average across architectures.
func CheckTable2(rows []Table2Row) []Shape {
	var l1, l4, n float64
	valid := true
	for _, r := range rows {
		for _, a := range r.Accuracy {
			if a < 0 || a > 1 {
				valid = false
			}
		}
		if r.Samples == 0 {
			continue
		}
		l1 += r.Accuracy[0]
		l4 += r.Accuracy[3]
		n++
	}
	return []Shape{
		{
			Name:   "table2/valid-range",
			Pass:   valid,
			Detail: "all accuracies in [0,1]",
		},
		{
			Name: "table2/label4-easier-than-label1",
			Pass: n == 0 || l4 >= l1,
			Detail: fmt.Sprintf("mean label4 %.3f vs label1 %.3f",
				l4/maxF(n, 1), l1/maxF(n, 1)),
		},
	}
}

// CheckFig12 evaluates the routing-priority ablation: SA-RP maps at least
// as many combinations as SA, and LISA at least as many as SA-RP.
func CheckFig12(cmp *Comparison) []Shape {
	count := func(m Method) int {
		n := 0
		for _, r := range cmp.Rows {
			if r.Results[m].OK {
				n++
			}
		}
		return n
	}
	sa, sarp, li := count(MethodSA), count(MethodSARP), count(MethodLISA)
	return []Shape{{
		Name: "fig12/ordering " + cmp.Arch.Name(),
		Pass: sarp >= sa && li >= sarp,
		Detail: fmt.Sprintf("mapped: SA %d <= SA-RP %d <= LISA %d of %d",
			sa, sarp, li, len(cmp.Rows)),
	}}
}

// RenderShapes writes assertion outcomes.
func RenderShapes(w io.Writer, shapes []Shape) error {
	var b strings.Builder
	for _, s := range shapes {
		mark := "PASS"
		if !s.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-32s %s\n", mark, s.Name, s.Detail)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// AllPass reports whether every shape assertion holds.
func AllPass(shapes []Shape) bool {
	for _, s := range shapes {
		if !s.Pass {
			return false
		}
	}
	return true
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
