// Package registry caches one trained GNN model per architecture behind a
// per-architecture sync.Once. It generalizes the experiment grid's
// Context.ModelFor pattern so the long-lived serving daemon and the
// experiment runners share one implementation: models can be pre-loaded
// from disk at startup (offline training, the paper's intended deployment)
// or trained lazily on first use, and concurrent callers for one target
// always observe exactly one training run.
package registry

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/traingen"
)

// Config sets the budgets used when a model must be trained on demand.
type Config struct {
	TrainGen traingen.Config // dataset generation (§V)
	TrainCfg gnn.TrainConfig // four-network training (§IV)
	Seed     int64
	// Workers fans dataset generation out; 0 defers to TrainGen.Workers.
	Workers int
	// TrainOnDemand permits lazy training when no model was pre-loaded for
	// a requested architecture. When false, ModelFor returns an error for
	// such targets instead of spending minutes training inside a request.
	TrainOnDemand bool
}

// Registry holds at most one model per architecture name.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
}

// entry is the per-architecture slot; once gates training so concurrent
// ModelFor calls for one target resolve exactly one model.
type entry struct {
	once   sync.Once
	model  *gnn.Model
	stats  traingen.Stats
	err    error
	loaded bool // true when pre-loaded from disk rather than trained here
}

// New creates an empty registry.
func New(cfg Config) *Registry {
	return &Registry{cfg: cfg, entries: make(map[string]*entry)}
}

func (r *Registry) entryFor(name string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{}
		r.entries[name] = e
	}
	return e
}

// Put registers a pre-trained model under its architecture name. The first
// resolution for a name wins: a Put before any ModelFor call pins the model;
// a Put after the entry resolved is a no-op and returns false.
func (r *Registry) Put(m *gnn.Model) bool {
	e := r.entryFor(m.ArchName)
	won := false
	e.once.Do(func() {
		r.mu.Lock()
		e.model = m
		e.loaded = true
		r.mu.Unlock()
		won = true
	})
	return won
}

// LoadFile reads one model file saved by lisa-train / gnn.Save and registers
// it, returning the architecture name it serves.
func (r *Registry) LoadFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer func() { _ = f.Close() }() // read-only open: nothing to recover from a close error
	m, err := gnn.Load(f, gnn.NewModel(rand.New(rand.NewSource(1)), ""))
	if err != nil {
		return "", fmt.Errorf("registry: %s: %w", path, err)
	}
	if m.ArchName == "" {
		return "", fmt.Errorf("registry: %s: model file names no architecture", path)
	}
	if !r.Put(m) {
		return m.ArchName, fmt.Errorf("registry: %s: model for %q already registered", path, m.ArchName)
	}
	return m.ArchName, nil
}

// LoadDir registers every *.json model file in dir (the lisa-train output
// convention) and returns the architecture names loaded, sorted. Files that
// fail to parse or collide with an already-registered architecture abort the
// load: a serving daemon must not come up half-configured.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var names []string
	for _, path := range files {
		name, err := r.LoadFile(path)
		if err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Ready lists the architecture names whose model is already resolved,
// sorted. Targets that would still need on-demand training are absent.
func (r *Registry) Ready() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name, e := range r.entries {
		if e.model != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Has reports whether a resolved model exists for the architecture name.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return ok && e.model != nil
}

// ModelFor returns the model for ar, training it on first use when the
// config allows (training-data generation + four-network training, §V and
// §IV). Safe for concurrent use; each architecture trains at most once, and
// a disallowed lazy training reports an error without poisoning the slot.
func (r *Registry) ModelFor(ar arch.Arch) (*gnn.Model, error) {
	e := r.entryFor(ar.Name())
	if !r.cfg.TrainOnDemand {
		// Don't burn the once: a model may still be Put/loaded later.
		r.mu.Lock()
		m := e.model
		r.mu.Unlock()
		if m == nil {
			return nil, fmt.Errorf("registry: no model loaded for %q and on-demand training is disabled", ar.Name())
		}
		return m, nil
	}
	e.once.Do(func() {
		cfg := r.cfg.TrainGen
		cfg.Seed = r.cfg.Seed
		if cfg.Workers == 0 {
			cfg.Workers = r.cfg.Workers
		}
		// An empty sample set leaves the model at its random init — the
		// label engines degrade gracefully, matching the experiment grid's
		// historical behavior under tiny smoke-test budgets.
		ds := traingen.Generate(ar, cfg)
		m := gnn.NewModel(rand.New(rand.NewSource(r.cfg.Seed)), ar.Name())
		m.Train(ds.Samples, r.cfg.TrainCfg)
		r.mu.Lock()
		e.model, e.stats = m, ds.Stats
		r.mu.Unlock()
	})
	if e.err != nil {
		return nil, e.err
	}
	r.mu.Lock()
	m := e.model
	r.mu.Unlock()
	return m, nil
}

// StatsFor reports the dataset-generation stats behind ar's model, training
// it on first use like ModelFor. Pre-loaded models carry no stats.
func (r *Registry) StatsFor(ar arch.Arch) (traingen.Stats, error) {
	if _, err := r.ModelFor(ar); err != nil {
		return traingen.Stats{}, err
	}
	e := r.entryFor(ar.Name())
	r.mu.Lock()
	defer r.mu.Unlock()
	return e.stats, nil
}

// String summarizes the registry for logs.
func (r *Registry) String() string {
	names := r.Ready()
	if len(names) == 0 {
		return "registry: no models resolved"
	}
	return "registry: models for " + strings.Join(names, ", ")
}
