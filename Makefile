# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: build test bench examples figures serve cluster-smoke vet lint fuzz clean

build:
	go build ./...

vet:
	go vet ./...

# Static analysis gate: go vet plus lisa-vet, the repo's own determinism &
# concurrency linter (map-iteration order, global RNG streams, wall-clock
# reads, dropped errors). Fails on any unsuppressed diagnostic.
lint:
	go build ./...
	go run ./cmd/lisa-vet ./...
	go vet ./...

test:
	go test ./...

# One benchmark per paper table/figure; logs print the paper-style tables.
bench:
	go test -bench=. -benchmem ./...

examples:
	go run ./examples/quickstart
	go run ./examples/portability
	go run ./examples/unrolling
	go run ./examples/simulate
	go run ./examples/customarch
	go run ./examples/newaccel

# Regenerate every figure with the quick profile; JSON+SVG land in results/.
figures:
	go run ./cmd/lisa-bench -exp all -out results -shapes

# Start the mapping-as-a-service daemon on :8080 (see README "Mapping as a
# service"); pass MODELS=dir to pre-load lisa-train model files.
serve:
	go run ./cmd/lisa-serve -addr :8080 $(if $(MODELS),-models $(MODELS))

# End-to-end 3-node cluster smoke test (same script as the CI cluster-smoke
# job): byte-identical bodies on every node, one mapper run fleet-wide, a
# restarted node serving from its persistent store with zero fresh compute.
cluster-smoke:
	scripts/cluster-smoke.sh

fuzz:
	go test -fuzz FuzzParseDOT -fuzztime 30s ./internal/dfg/
	go test -fuzz FuzzReadJSON -fuzztime 30s ./internal/dfg/
	go test -fuzz FuzzParseSpec -fuzztime 30s ./internal/arch/

clean:
	rm -rf results *.model.json
