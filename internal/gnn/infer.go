// Fused, batched inference. Training runs the four networks through the
// autodiff tape (model.go Forward methods); serving label predictions only
// needs the forward values, so this file evaluates the same math on
// tensor.Infer — no Grad buffers, no backward closures, arena-recycled
// intermediates — and packs many DFGs into single dense matrices so one
// matmul serves a whole batch.
//
// Batching is block-diagonal: the nodes (and edges, and dummy pairs) of
// every DFG in the batch are stacked into one matrix, and the neighbor /
// incident index sets are offset into the stacked row space. No set ever
// crosses a DFG boundary, every row's arithmetic is independent of the
// other rows, and every op processes rows in the same order as the
// single-DFG path — so PredictBatch output is byte-identical to per-DFG
// Predict output at any batch size, and both are bit-identical to the taped
// reference (predictTaped). The differential tests in infer_test.go enforce
// both properties.
package gnn

import (
	"fmt"
	"sync"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/tensor"
)

// inferPool recycles inference arenas across Predict calls and goroutines:
// a Model is shared by concurrent requests (the registry hands every caller
// the same instance), while a tensor.Infer is single-threaded.
var inferPool = sync.Pool{New: func() any { return tensor.NewInfer() }}

// PredictBatch runs all four networks over a batch of DFG attribute sets
// and assembles one label set per DFG. All nodes (edges, dummy pairs) of
// the batch share single dense input matrices and single forward passes;
// the per-DFG outputs are byte-identical to calling Predict on each set
// alone. The error is non-nil only for scale-vector version skew (see
// CheckScales).
//
//lisa:hotpath one call per uncached /v1/map request; the fused pass exists to kill per-node allocations
func (m *Model) PredictBatch(sets []*attr.Set) ([]*labels.Labels, error) {
	if err := m.CheckScales(); err != nil {
		return nil, err
	}
	out := make([]*labels.Labels, len(sets))
	for i, set := range sets {
		out[i] = labels.NewZero(set.An.G)
	}
	if len(sets) == 0 {
		return out, nil
	}
	in := inferPool.Get().(*tensor.Infer)
	defer func() {
		in.Reset()
		inferPool.Put(in)
	}()

	m.batchOrder(in, sets, out)
	in.Reset() // each network starts from an empty arena: peak memory stays one network wide
	m.batchEdges(in, sets, out)
	in.Reset()
	m.batchSameLevel(in, sets, out)
	return out, nil
}

// batchOrder evaluates the label-1 (schedule order) network over all nodes
// of the batch.
func (m *Model) batchOrder(in *tensor.Infer, sets []*attr.Set, out []*labels.Labels) {
	totalNodes, totalEdges := 0, 0
	for _, set := range sets {
		totalNodes += set.An.G.NumNodes()
		totalEdges += set.An.G.NumEdges()
	}
	if totalNodes == 0 {
		return
	}
	na := in.NewMat(totalNodes, attr.NodeAttrDim)
	asap := in.NewMat(totalNodes, 1)
	asapScale := m.ASAPScale
	if asapScale == 0 {
		asapScale = 1
	}
	// Block-diagonal undirected adjacency: each edge contributes exactly one
	// predecessor and one successor entry, so the backing never reallocates
	// and the per-node subslices stay valid.
	neighbors := make([][]int, totalNodes)
	backing := make([]int, 0, 2*totalEdges)
	base := 0
	for _, set := range sets {
		g := set.An.G
		for v := 0; v < g.NumNodes(); v++ {
			row := base + v
			fillScaledRow(na, row, set.Node[v], m.NodeScale)
			asap.Set(row, 0, float64(set.An.ASAP[v])/asapScale)
			start := len(backing)
			for _, p := range g.Pred(v) {
				backing = append(backing, base+p)
			}
			for _, s := range g.Succ(v) {
				backing = append(backing, base+s)
			}
			neighbors[row] = backing[start:len(backing):len(backing)]
		}
		base += g.NumNodes()
	}
	pred := m.Order.forwardInfer(in, na, asap, neighbors)
	base = 0
	for si, set := range sets {
		g := set.An.G
		for v := 0; v < g.NumNodes(); v++ {
			out[si].Order[v] = clampMin(pred.At(base+v, 0), 0)
		}
		base += g.NumNodes()
	}
}

// batchEdges evaluates the label-3 (spatial) and label-4 (temporal)
// networks over all edges of the batch.
func (m *Model) batchEdges(in *tensor.Infer, sets []*attr.Set, out []*labels.Labels) {
	totalEdges := 0
	for _, set := range sets {
		totalEdges += set.An.G.NumEdges()
	}
	if totalEdges == 0 {
		return
	}
	ea := in.NewMat(totalEdges, attr.EdgeAttrDim)
	base := 0
	for _, set := range sets {
		for e, row := range set.Edge {
			fillScaledRow(ea, base+e, row, m.EdgeScale)
		}
		base += set.An.G.NumEdges()
	}
	incident := packIncident(sets, totalEdges)
	sp := m.Spatial.forwardInfer(in, ea, incident)
	tp := m.Temporal.forwardInfer(in, ea)
	base = 0
	for si, set := range sets {
		g := set.An.G
		for e := 0; e < g.NumEdges(); e++ {
			out[si].Spatial[e] = clampMin(sp.At(base+e, 0), 0)
			out[si].Temporal[e] = clampMin(tp.At(base+e, 0), 1)
		}
		base += g.NumEdges()
	}
}

// batchSameLevel evaluates the label-2 (same-level association) network
// over all dummy pairs of the batch.
func (m *Model) batchSameLevel(in *tensor.Infer, sets []*attr.Set, out []*labels.Labels) {
	totalPairs := 0
	for _, set := range sets {
		totalPairs += len(set.DummyPairs)
	}
	if totalPairs == 0 {
		return
	}
	da := in.NewMat(totalPairs, attr.DummyAttrDim)
	base := 0
	for _, set := range sets {
		for i, row := range set.Dummy {
			fillScaledRow(da, base+i, row, m.DummyScale)
		}
		base += len(set.DummyPairs)
	}
	sl := m.Same.forwardInfer(in, da)
	base = 0
	for si, set := range sets {
		for i, p := range set.DummyPairs {
			out[si].SameLevel[p] = clampMin(sl.At(base+i, 0), 0)
		}
		base += len(set.DummyPairs)
	}
}

// fillScaledRow writes one attribute row into the packed input matrix,
// dividing by the per-column scale exactly like scaledMatrix. A width
// mismatch is a shape bug (CheckScales already rejected model-side skew, so
// this guards the attribute rows themselves) and fails loudly.
func fillScaledRow(t *tensor.Tensor, row int, vals, scale []float64) {
	if len(vals) != t.Cols {
		panic(fmt.Sprintf("gnn: attribute row has %d columns, want %d", len(vals), t.Cols))
	}
	for j, v := range vals {
		if scale != nil && scale[j] != 0 {
			v /= scale[j]
		}
		t.Set(row, j, v)
	}
}

// packIncident builds the block-diagonal e(v) sets of eq. (5): for every
// edge, the sorted indexes (offset into the batch row space) of edges
// sharing an endpoint with it, including itself. Contents per DFG are
// identical to incidentEdges; the map-per-edge of that path is replaced by
// an epoch-stamped dedup array and one shared backing slice so a batch
// costs a handful of allocations instead of one map per edge.
func packIncident(sets []*attr.Set, totalEdges int) [][]int {
	incident := make([][]int, totalEdges)
	bound := 0
	for _, set := range sets {
		g := set.An.G
		for _, e := range g.Edges {
			bound += len(g.InEdges(e.From)) + len(g.OutEdges(e.From)) +
				len(g.InEdges(e.To)) + len(g.OutEdges(e.To))
		}
	}
	backing := make([]int, 0, bound)
	var scratch []int
	var mark []int
	epoch := 0
	base := 0
	for _, set := range sets {
		g := set.An.G
		ne := g.NumEdges()
		if len(mark) < ne {
			mark = make([]int, ne)
		}
		for i, e := range g.Edges {
			epoch++
			scratch = scratch[:0]
			for _, v := range [2]int{e.From, e.To} {
				for _, ie := range g.InEdges(v) {
					if mark[ie] != epoch {
						mark[ie] = epoch
						scratch = append(scratch, ie)
					}
				}
				for _, oe := range g.OutEdges(v) {
					if mark[oe] != epoch {
						mark[oe] = epoch
						scratch = append(scratch, oe)
					}
				}
			}
			// Deterministic ascending order keeps float aggregation
			// bit-reproducible (and equal to incidentEdges' sorted sets).
			insertionSort(scratch)
			start := len(backing)
			for _, x := range scratch {
				backing = append(backing, base+x)
			}
			incident[base+i] = backing[start:len(backing):len(backing)]
		}
		base += ne
	}
	return incident
}

// insertionSort orders a small int slice ascending without allocating;
// incident sets are a handful of entries each.
func insertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// forwardInfer mirrors Label1Net.Forward on the no-tape engine.
func (n *Label1Net) forwardInfer(in *tensor.Infer, nodeAttrs, asap *tensor.Tensor, neighbors [][]int) *tensor.Tensor {
	m := in.MatMul(nodeAttrs, n.W0) // m⁰ = W0 · Attributes(v)
	h := in.MatMul(asap, n.Wh)      // h⁰ embeds the ASAP value
	for t := 0; t < 4; t++ {
		agg := in.ConcatCols(
			in.Aggregate(m, neighbors, tensor.AggMean),
			in.Aggregate(m, neighbors, tensor.AggMax),
			in.Aggregate(m, neighbors, tensor.AggMin),
		)
		m = in.MatMul(agg, n.W1[t])                              // eq. (1)
		h = in.MatMul(in.Add(in.MatMul(h, n.W3[t]), m), n.W2[t]) // eq. (2)
		h = in.ReLU(h)
	}
	return in.MatMul(h, n.Out)
}

// forwardInfer mirrors MLP.Forward on the no-tape engine.
func (m *MLP) forwardInfer(in *tensor.Infer, x *tensor.Tensor) *tensor.Tensor {
	return in.MatMul(in.ReLU(in.MatMul(x, m.W1)), m.W2)
}

// forwardInfer mirrors Label3Net.Forward on the no-tape engine.
func (n *Label3Net) forwardInfer(in *tensor.Infer, edgeAttrs *tensor.Tensor, incident [][]int) *tensor.Tensor {
	h1 := in.MatMul(edgeAttrs, n.W1) // eq. (4)
	recip := func(kind tensor.AggKind) *tensor.Tensor {
		return in.Reciprocal(in.Aggregate(h1, incident, kind), 1e-6)
	}
	nu := in.MatMul(in.ConcatCols(
		recip(tensor.AggMean), recip(tensor.AggSum),
		recip(tensor.AggMax), recip(tensor.AggMin),
	), n.Wn)
	// eq. (6): h² = W2·h¹ + ν ⊙ W3·h¹.
	h2 := in.Add(in.MatMul(h1, n.W2), in.Mul(nu, in.MatMul(h1, n.W3)))
	return in.MatMul(in.ReLU(h2), n.Wo)
}
