package gnn

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// savedModelFile trains a tiny model, saves it, and returns the decoded
// file for targeted corruption.
func savedModelFile(t *testing.T) *modelFile {
	t.Helper()
	m := NewModel(rand.New(rand.NewSource(4)), "cgra-4x4")
	s := syntheticSample(3)
	m.Train([]Sample{s}, TrainConfig{Epochs: 2, LR: 0.01})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var f modelFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	return &f
}

func loadFrom(t *testing.T, f *modelFile) error {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(b), NewModel(rand.New(rand.NewSource(1)), "x"))
	return err
}

// loadCorrupted drops the envelope checksum before loading, so the mutation
// under test reaches structural validation — the legacy-file path, which must
// keep guarding files that predate the sha256 field.
func loadCorrupted(t *testing.T, f *modelFile) error {
	t.Helper()
	f.Sha256 = ""
	return loadFrom(t, f)
}

func TestLoadRejectsCorruptModelFiles(t *testing.T) {
	t.Run("truncated weight data", func(t *testing.T) {
		f := savedModelFile(t)
		w := f.Weights["order.Out"]
		w.Data = w.Data[:len(w.Data)-1]
		if err := loadCorrupted(t, f); err == nil || !strings.Contains(err.Error(), "values") {
			t.Fatalf("truncated data accepted (err=%v)", err)
		}
	})
	t.Run("oversized weight data", func(t *testing.T) {
		f := savedModelFile(t)
		w := f.Weights["same.W1"]
		w.Data = append(w.Data, 0.5)
		if err := loadCorrupted(t, f); err == nil {
			t.Fatal("oversized data accepted")
		}
	})
	t.Run("wrong shape", func(t *testing.T) {
		f := savedModelFile(t)
		f.Weights["order.W0"].Rows++
		if err := loadCorrupted(t, f); err == nil || !strings.Contains(err.Error(), "shape") {
			t.Fatalf("foreign shape accepted (err=%v)", err)
		}
	})
	t.Run("missing weight", func(t *testing.T) {
		f := savedModelFile(t)
		delete(f.Weights, "temporal.W2")
		if err := loadCorrupted(t, f); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Fatalf("missing weight accepted (err=%v)", err)
		}
	})
	t.Run("unknown extra weight", func(t *testing.T) {
		f := savedModelFile(t)
		f.Weights["trojan.W"] = &tensorFile{Rows: 1, Cols: 1, Data: []float64{1}}
		if err := loadCorrupted(t, f); err == nil || !strings.Contains(err.Error(), "unknown") {
			t.Fatalf("unknown weight accepted (err=%v)", err)
		}
	})
	t.Run("null weight", func(t *testing.T) {
		f := savedModelFile(t)
		f.Weights["order.Out"] = nil
		if err := loadCorrupted(t, f); err == nil {
			t.Fatal("null weight accepted")
		}
	})
	t.Run("bad scale length", func(t *testing.T) {
		f := savedModelFile(t)
		f.NodeScale = f.NodeScale[:2]
		if err := loadCorrupted(t, f); err == nil || !strings.Contains(err.Error(), "nodeScale") {
			t.Fatalf("bad scale length accepted (err=%v)", err)
		}
	})
	t.Run("intact file still loads", func(t *testing.T) {
		if err := loadFrom(t, savedModelFile(t)); err != nil {
			t.Fatalf("intact file rejected: %v", err)
		}
	})
}

// Load's error text must be stable run to run: validation iterates weight
// names in sorted order and scale checks in declaration order, so a file
// with several problems always reports the same one first. Service logs and
// these assertions depend on that; map-iteration order would make the
// reported name flap between runs.
func TestLoadErrorOrderIsStable(t *testing.T) {
	t.Run("multiple bad shapes report first sorted name", func(t *testing.T) {
		want := ""
		for i := 0; i < 20; i++ {
			f := savedModelFile(t)
			f.Weights["temporal.W2"].Rows++
			f.Weights["same.W1"].Rows++
			f.Weights["order.W0"].Rows++
			err := loadCorrupted(t, f)
			if err == nil {
				t.Fatal("corrupt file accepted")
			}
			if !strings.Contains(err.Error(), `"order.W0"`) {
				t.Fatalf("error names %q, want the alphabetically first corrupt weight order.W0", err)
			}
			if want == "" {
				want = err.Error()
			} else if err.Error() != want {
				t.Fatalf("error text changed between runs:\n%q\n%q", want, err.Error())
			}
		}
	})
	t.Run("multiple unknown weights report first sorted name", func(t *testing.T) {
		for i := 0; i < 20; i++ {
			f := savedModelFile(t)
			f.Weights["zzz.B"] = &tensorFile{Rows: 1, Cols: 1, Data: []float64{1}}
			f.Weights["aaa.A"] = &tensorFile{Rows: 1, Cols: 1, Data: []float64{1}}
			err := loadCorrupted(t, f)
			if err == nil || !strings.Contains(err.Error(), `"aaa.A"`) {
				t.Fatalf("error = %v, want unknown weight aaa.A reported first", err)
			}
		}
	})
	t.Run("multiple bad scales report declaration order", func(t *testing.T) {
		for i := 0; i < 20; i++ {
			f := savedModelFile(t)
			f.NodeScale = f.NodeScale[:2]
			f.EdgeScale = f.EdgeScale[:1]
			err := loadCorrupted(t, f)
			if err == nil || !strings.Contains(err.Error(), "nodeScale") {
				t.Fatalf("error = %v, want nodeScale reported before edgeScale", err)
			}
		}
	})
}

func TestLoadVerifiesEnvelopeChecksum(t *testing.T) {
	t.Run("tampered content with intact checksum is rejected", func(t *testing.T) {
		f := savedModelFile(t)
		f.Weights["order.Out"].Data[0] += 0.25 // plausible value, structurally valid
		err := loadFrom(t, f)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("tampered file accepted (err=%v)", err)
		}
	})
	t.Run("forged checksum is rejected", func(t *testing.T) {
		f := savedModelFile(t)
		f.Sha256 = strings.Repeat("ab", 32)
		err := loadFrom(t, f)
		if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("forged checksum accepted (err=%v)", err)
		}
	})
	t.Run("legacy file without checksum still loads", func(t *testing.T) {
		f := savedModelFile(t)
		f.Sha256 = ""
		if err := loadFrom(t, f); err != nil {
			t.Fatalf("legacy file rejected: %v", err)
		}
	})
	t.Run("save emits a checksum that round-trips", func(t *testing.T) {
		f := savedModelFile(t)
		if f.Sha256 == "" {
			t.Fatal("Save wrote no checksum")
		}
		sum, err := checksum(f)
		if err != nil {
			t.Fatal(err)
		}
		if sum != f.Sha256 {
			t.Fatalf("decoded file re-hashes to %s, envelope says %s", sum, f.Sha256)
		}
	})
}

// A rejected load must leave the seed model untouched — no partial copies.
func TestLoadFailureLeavesSeedModelUntouched(t *testing.T) {
	f := savedModelFile(t)
	f.Weights["temporal.W2"].Rows++ // invalid, but order.* weights still match
	f.Sha256 = ""                   // reach structural validation, not the checksum

	seed := NewModel(rand.New(rand.NewSource(7)), "pristine")
	before := append([]float64(nil), seed.Order.W0.Data...)
	b, _ := json.Marshal(f)
	if _, err := Load(bytes.NewReader(b), seed); err == nil {
		t.Fatal("invalid file accepted")
	}
	if seed.ArchName != "pristine" {
		t.Fatal("failed Load overwrote ArchName")
	}
	for i, v := range seed.Order.W0.Data {
		if v != before[i] {
			t.Fatal("failed Load partially copied weights into the seed model")
		}
	}
	if seed.NodeScale != nil {
		t.Fatal("failed Load set scale vectors on the seed model")
	}
}
