package arch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

func TestPaperTargetsValid(t *testing.T) {
	ts := PaperTargets()
	if len(ts) != 6 {
		t.Fatalf("paper targets = %d, want 6", len(ts))
	}
	for _, a := range ts {
		if err := Validate(a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		a, ok := ByName(n)
		if !ok || a.Name() != n {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName should fail for unknown arch")
	}
}

func TestCGRACoordRoundTrip(t *testing.T) {
	c := NewBaseline4x4()
	for pe := 0; pe < c.NumPEs(); pe++ {
		r, col := c.Coord(pe)
		if c.PEAt(r, col) != pe {
			t.Fatalf("coord round trip failed for PE %d", pe)
		}
	}
}

func TestManhattanDistanceProperties(t *testing.T) {
	c := NewBaseline8x8()
	f := func(a, b uint8) bool {
		pa, pb := int(a)%c.NumPEs(), int(b)%c.NumPEs()
		d := c.SpatialDistance(pa, pb)
		if d != c.SpatialDistance(pb, pa) {
			return false // symmetry
		}
		if (pa == pb) != (d == 0) {
			return false // identity
		}
		// Triangle inequality through PE 0.
		return c.SpatialDistance(pa, 0)+c.SpatialDistance(0, pb) >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMemPolicy(t *testing.T) {
	lm := NewLessMem4x4()
	memPEs := 0
	for pe := 0; pe < lm.NumPEs(); pe++ {
		if lm.SupportsOp(pe, dfg.OpLoad) {
			memPEs++
			_, col := lm.Coord(pe)
			if col != 0 {
				t.Errorf("PE %d (col %d) should not support loads", pe, col)
			}
		}
		if !lm.SupportsOp(pe, dfg.OpMul) {
			t.Errorf("PE %d should support mul", pe)
		}
	}
	if memPEs != 4 {
		t.Errorf("mem PEs = %d, want 4", memPEs)
	}
	base := NewBaseline4x4()
	for pe := 0; pe < base.NumPEs(); pe++ {
		if !base.SupportsOp(pe, dfg.OpStore) {
			t.Errorf("baseline PE %d should support stores", pe)
		}
	}
}

func TestMinII(t *testing.T) {
	g := dfg.New("t")
	prev := g.AddNode("", dfg.OpLoad)
	for i := 1; i < 20; i++ {
		op := dfg.OpAdd
		if i%3 == 0 {
			op = dfg.OpLoad
		}
		cur := g.AddNode("", op)
		g.AddEdge(prev, cur)
		prev = cur
	}
	c33 := NewBaseline3x3()
	if got := c33.MinII(g); got != 3 { // ceil(20/9) = 3
		t.Errorf("3x3 MinII = %d, want 3", got)
	}
	c44 := NewBaseline4x4()
	if got := c44.MinII(g); got != 2 { // ceil(20/16) = 2
		t.Errorf("4x4 MinII = %d, want 2", got)
	}
	lm := NewLessMem4x4()
	// 7 memory ops, 4 mem PEs -> memory bound ceil(7/4)=2 == compute bound.
	if got := lm.MinII(g); got != 2 {
		t.Errorf("lessmem MinII = %d, want 2", got)
	}
}

func TestCGRARGraphShape(t *testing.T) {
	c := NewBaseline4x4()
	ii := 3
	g := c.BuildRGraph(ii)
	wantNodes := c.NumPEs() * ii * 2 // FU + reg bank per (pe, cycle)
	if g.NumNodes() != wantNodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	// Every edge must advance exactly one cycle mod II.
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Nodes[id]
		for _, ob := range g.Out(id) {
			m := g.Nodes[ob]
			if m.Cycle != (n.Cycle+1)%ii {
				t.Fatalf("edge %v->%v does not advance one cycle", n, m)
			}
		}
	}
	// Corner PE has 2 neighbors; center has 4.
	corner := g.FUAt(0, 0)
	outFU := 0
	for _, ob := range g.Out(corner) {
		if g.Nodes[ob].Kind == rgraph.KindFU {
			outFU++
		}
	}
	if outFU != 3 { // self + 2 neighbors
		t.Errorf("corner FU out-degree to FUs = %d, want 3", outFU)
	}
}

func TestLessRoutingHasSmallerRegCapacity(t *testing.T) {
	a := NewBaseline4x4().BuildRGraph(2)
	b := NewLessRouting4x4().BuildRGraph(2)
	capOf := func(g *rgraph.Graph) int {
		for _, n := range g.Nodes {
			if n.Kind == rgraph.KindReg {
				return n.Cap
			}
		}
		return 0
	}
	if capOf(a) != 4 || capOf(b) != 1 {
		t.Errorf("reg caps = %d, %d; want 4, 1", capOf(a), capOf(b))
	}
}

func TestSystolicStructure(t *testing.T) {
	s := NewSystolic5x5()
	if s.MaxII() != 1 {
		t.Fatal("systolic MaxII must be 1")
	}
	for pe := 0; pe < s.NumPEs(); pe++ {
		_, col := s.Coord(pe)
		if !s.SupportsOp(pe, dfg.OpConst) {
			t.Errorf("PE %d must support constants", pe)
		}
		if s.SupportsOp(pe, dfg.OpSub) || s.SupportsOp(pe, dfg.OpCmp) {
			t.Errorf("PE %d must be fixed-function (no sub/cmp)", pe)
		}
		switch {
		case col == 0:
			if !s.SupportsOp(pe, dfg.OpLoad) || s.SupportsOp(pe, dfg.OpMul) {
				t.Errorf("left PE %d op support wrong", pe)
			}
		case col == s.Cols-1:
			if !s.SupportsOp(pe, dfg.OpStore) || s.SupportsOp(pe, dfg.OpAdd) {
				t.Errorf("right PE %d op support wrong", pe)
			}
		default:
			if !s.SupportsOp(pe, dfg.OpMul) || !s.SupportsOp(pe, dfg.OpAdd) {
				t.Errorf("interior PE %d should do mul/add", pe)
			}
			if s.SupportsOp(pe, dfg.OpLoad) || s.SupportsOp(pe, dfg.OpStore) {
				t.Errorf("interior PE %d must not access memory", pe)
			}
		}
	}
	g := s.BuildRGraph(1)
	// Links stay within the 4-neighborhood; only delay channels self-loop.
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Nodes[id]
		r1, c1 := s.Coord(n.PE)
		for _, ob := range g.Out(id) {
			m := g.Nodes[ob]
			r2, c2 := s.Coord(m.PE)
			d := manhattan(r1, c1, r2, c2)
			if d > 1 {
				t.Fatalf("link (%d,%d)->(%d,%d) exceeds neighborhood", r1, c1, r2, c2)
			}
			if d == 0 && !(m.Kind == rgraph.KindReg) {
				t.Fatalf("same-PE link must target the delay channel")
			}
		}
	}
}

func TestRouterExactLength(t *testing.T) {
	c := NewBaseline4x4()
	ii := 4
	g := c.BuildRGraph(ii)
	occ := rgraph.NewOccupancy(g)
	r := rgraph.NewRouter(g, 16)

	src := g.FUAt(c.PEAt(0, 0), 0)
	dst := g.FUAt(c.PEAt(0, 3), 3)
	// Manhattan distance 3, time delta 3 -> exact 3-hop path exists.
	path, cost, ok := r.Route(occ, 1, src, dst, 3)
	if !ok {
		t.Fatal("expected route")
	}
	if len(path) != 4 {
		t.Fatalf("path len = %d, want 4", len(path))
	}
	if cost > 2 {
		t.Errorf("cost = %d, want <= 2 (intermediates only)", cost)
	}
	// A 2-hop route to a distance-3 PE must fail.
	dst2 := g.FUAt(c.PEAt(0, 3), 2)
	if _, _, ok := r.Route(occ, 1, src, dst2, 2); ok {
		t.Error("impossible 2-hop route succeeded")
	}
	// But 5 hops (3 spatial + 2 waiting) should succeed via registers.
	dst3 := g.FUAt(c.PEAt(0, 3), (0+5)%ii)
	if _, _, ok := r.Route(occ, 1, src, dst3, 5); !ok {
		t.Error("5-hop route with waiting failed")
	}
}

func TestRouterRespectsOccupancy(t *testing.T) {
	// 1x2 "CGRA": only path between the two PEs goes through their FUs.
	c := NewCGRA("tiny", 1, 2, 0, MemAll, 24) // no registers at all
	g := c.BuildRGraph(1)
	occ := rgraph.NewOccupancy(g)
	r := rgraph.NewRouter(g, 8)
	src := g.FUAt(0, 0)
	dst := g.FUAt(1, 0)
	if _, _, ok := r.Route(occ, 1, src, dst, 1); !ok {
		t.Fatal("direct hop should route")
	}
	// Occupy both FUs with ops, as a real mapping does. A 3-hop route then
	// has no admissible intermediate (no registers, both FUs taken).
	if !occ.PlaceOp(src, 41) || !occ.PlaceOp(dst, 42) {
		t.Fatal("place failed")
	}
	if _, _, ok := r.Route(occ, 7, src, dst, 3); ok {
		t.Error("route through op-occupied FU should fail")
	}
	// The direct 1-hop route is still fine: endpoints are exempt.
	if _, _, ok := r.Route(occ, 7, src, dst, 1); !ok {
		t.Error("direct route between placed ops should still succeed")
	}
}

func TestRouterFanoutSharing(t *testing.T) {
	c := NewBaseline4x4()
	g := c.BuildRGraph(2)
	occ := rgraph.NewOccupancy(g)
	r := rgraph.NewRouter(g, 12)
	sig := rgraph.Signal(5)
	src := g.FUAt(c.PEAt(0, 0), 0)
	d1 := g.FUAt(c.PEAt(0, 2), 0) // 2 hops away, same mod-cycle
	path1, _, ok := r.Route(occ, sig, src, d1, 2)
	if !ok {
		t.Fatal("first route failed")
	}
	rgraph.Commit(occ, sig, path1)
	// Second branch of the same signal: shares the first intermediate.
	d2 := g.FUAt(c.PEAt(1, 1), 0)
	path2, cost2, ok := r.Route(occ, sig, src, d2, 2)
	if !ok {
		t.Fatal("second route failed")
	}
	if cost2 > 1 {
		t.Errorf("fanout route cost = %d, want <= 1 (sharing)", cost2)
	}
	rgraph.Commit(occ, sig, path2)
	rgraph.Uncommit(occ, sig, path2)
	rgraph.Uncommit(occ, sig, path1)
	for n := 0; n < g.NumNodes(); n++ {
		if occ.UseCount(n) != 0 {
			t.Fatalf("node %d still occupied after uncommit", n)
		}
	}
}

func TestOccupancyCapacityAndSharing(t *testing.T) {
	c := NewBaseline4x4()
	g := c.BuildRGraph(1)
	occ := rgraph.NewOccupancy(g)
	// Find a reg node (capacity 4).
	reg := -1
	for i, n := range g.Nodes {
		if n.Kind == rgraph.KindReg {
			reg = i
			break
		}
	}
	for s := rgraph.Signal(1); s <= 4; s++ {
		if !occ.CanEnter(reg, s) {
			t.Fatalf("signal %d should fit", s)
		}
		occ.Use(reg, s)
	}
	if occ.CanEnter(reg, 5) {
		t.Error("5th distinct signal should not fit in cap-4 register bank")
	}
	if !occ.CanEnter(reg, 2) {
		t.Error("existing signal must always be allowed to re-enter")
	}
	occ.Use(reg, 2) // refcount 2
	occ.Release(reg, 2)
	if !occ.Carries(reg, 2) {
		t.Error("signal 2 should survive one release")
	}
	occ.Release(reg, 2)
	if occ.Carries(reg, 2) {
		t.Error("signal 2 should be gone")
	}
}

func TestOccupancyCloneIndependence(t *testing.T) {
	c := NewBaseline3x3()
	g := c.BuildRGraph(1)
	occ := rgraph.NewOccupancy(g)
	reg := -1
	for i, n := range g.Nodes {
		if n.Kind == rgraph.KindReg {
			reg = i
			break
		}
	}
	occ.Use(reg, 1)
	cl := occ.Clone()
	cl.Use(reg, 2)
	if occ.Carries(reg, 2) {
		t.Fatal("clone mutation leaked to original")
	}
	if !cl.Carries(reg, 1) {
		t.Fatal("clone lost original state")
	}
}

func TestRouteRandomPairsAlwaysExactLength(t *testing.T) {
	c := NewBaseline4x4()
	ii := 4
	g := c.BuildRGraph(ii)
	r := rgraph.NewRouter(g, 20)
	rng := rand.New(rand.NewSource(3))
	occ := rgraph.NewOccupancy(g)
	for trial := 0; trial < 120; trial++ {
		p1 := rng.Intn(c.NumPEs())
		p2 := rng.Intn(c.NumPEs())
		t1 := rng.Intn(ii)
		hops := 1 + rng.Intn(12)
		src := g.FUAt(p1, t1)
		dst := g.FUAt(p2, (t1+hops)%ii)
		if src == dst {
			continue
		}
		path, _, ok := r.Route(occ, rgraph.Signal(trial), src, dst, hops)
		if !ok {
			// Must be genuinely infeasible: spatial distance exceeds hops.
			if c.SpatialDistance(p1, p2) <= hops {
				t.Fatalf("route (%d,%d)->(%d,%d) hops=%d should exist",
					p1, t1, p2, (t1+hops)%ii, hops)
			}
			continue
		}
		if len(path) != hops+1 {
			t.Fatalf("path length %d != hops+1 (%d)", len(path), hops+1)
		}
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatal("path endpoints wrong")
		}
		for i := 0; i+1 < len(path); i++ {
			found := false
			for _, nb := range g.Out(path[i]) {
				if int(nb) == path[i+1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("path step %d->%d is not an edge", path[i], path[i+1])
			}
		}
	}
}
