package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/registry"
)

func postLabels(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/labels", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestLabelsBatchEndpoint(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	var dfgJSON bytes.Buffer
	if err := kernels.MustByName("doitgen").WriteJSON(&dfgJSON); err != nil {
		t.Fatal(err)
	}
	w := postLabels(t, h, fmt.Sprintf(
		`{"arch":"cgra-4x4","kernels":["gemm","syrk"],"dfgs":[%s]}`, dfgJSON.String()))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp LabelsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Labels) != 3 {
		t.Fatalf("got %d rows, want 3", len(resp.Labels))
	}
	for i, wantName := range []string{"gemm", "syrk", "doitgen"} {
		row := resp.Labels[i]
		if row.Name != wantName {
			t.Fatalf("row %d name %q, want %q (request order must be preserved)", i, row.Name, wantName)
		}
		g := kernels.MustByName(wantName)
		if row.Nodes != g.NumNodes() || len(row.Order) != g.NumNodes() {
			t.Fatalf("%s: %d nodes, %d order values, want %d", wantName, row.Nodes, len(row.Order), g.NumNodes())
		}
		if len(row.Spatial) != g.NumEdges() || len(row.Temporal) != g.NumEdges() {
			t.Fatalf("%s: edge label lengths %d/%d, want %d", wantName, len(row.Spatial), len(row.Temporal), g.NumEdges())
		}
		for e, v := range row.Temporal {
			if v < 1 {
				t.Fatalf("%s: temporal[%d] = %v, below the clamp of 1", wantName, e, v)
			}
		}
		for j := 1; j < len(row.SameLevel); j++ {
			a, b := row.SameLevel[j-1], row.SameLevel[j]
			if a.A > b.A || (a.A == b.A && a.B >= b.B) {
				t.Fatalf("%s: sameLevel not sorted at %d: %+v then %+v", wantName, j, a, b)
			}
		}
	}

	// Deterministic bodies: the identical request must serialize identically.
	again := postLabels(t, h, fmt.Sprintf(
		`{"arch":"cgra-4x4","kernels":["gemm","syrk"],"dfgs":[%s]}`, dfgJSON.String()))
	if !bytes.Equal(w.Body.Bytes(), again.Body.Bytes()) {
		t.Fatal("identical /v1/labels requests produced different bodies")
	}

	// Batch output must equal single-DFG output (the block-diagonal batching
	// contract, observed end to end through HTTP).
	single := postLabels(t, h, `{"arch":"cgra-4x4","kernels":["syrk"]}`)
	var sr LabelsResponse
	if err := json.Unmarshal(single.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	batchRow, _ := json.Marshal(resp.Labels[1])
	singleRow, _ := json.Marshal(sr.Labels[0])
	if !bytes.Equal(batchRow, singleRow) {
		t.Fatalf("batched syrk row differs from single-DFG row:\n%s\n%s", batchRow, singleRow)
	}
}

func TestLabelsBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	big := `{"arch":"cgra-4x4","kernels":[` + strings.Repeat(`"gemm",`, maxLabelBatch) + `"gemm"]}`
	cases := map[string]string{
		"unknown arch":   `{"arch":"tpu-9000","kernels":["gemm"]}`,
		"unknown kernel": `{"arch":"cgra-4x4","kernels":["nope"]}`,
		"empty batch":    `{"arch":"cgra-4x4"}`,
		"oversized":      big,
		"broken dfg":     `{"arch":"cgra-4x4","dfgs":[{"nodes":"garbage"}]}`,
		"unknown field":  `{"arch":"cgra-4x4","kernels":["gemm"],"turbo":true}`,
		"broken json":    `{`,
	}
	//lisa:vet-ok maprange each case asserts independently; execution order cannot change the verdict
	for what, body := range cases {
		if w := postLabels(t, h, body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", what, w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/labels", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/labels: status %d, want 405", w.Code)
	}
}

func TestLabelsWithoutModel503(t *testing.T) {
	// No model and no on-demand training: unlike /v1/map (which degrades to
	// plain SA), a labels request has nothing to degrade to — 503 tells the
	// client to train or reload first.
	reg := registry.New(registry.Config{TrainOnDemand: false})
	s := New(Config{}, reg)
	defer s.Close()
	w := postLabels(t, s.Handler(), `{"arch":"cgra-4x4","kernels":["gemm"]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
	}
}
