#!/usr/bin/env bash
# bench-mapper.sh — run the mapper hot-path benchmark and emit BENCH_mapper.json.
#
# Usage:
#   scripts/bench-mapper.sh            # measure, write BENCH_mapper.json
#   scripts/bench-mapper.sh --check    # additionally fail if allocs/op exceeds
#                                      # ALLOC_CEILING (the CI perf-smoke gate)
#
# BenchmarkMapperCore maps the gemm kernel on the 4x4 CGRA with the LISA
# engine at a fixed movement budget; its ns/op and allocs/op are the canonical
# mapper hot-path numbers. The "seed" block below is the pre-incremental
# implementation (deep-clone rollback, full-recompute cost, container/heap
# Dijkstra) measured at the same -benchtime on the same workload; it is kept
# in the JSON so the before/after ratio travels with the artifact.
#
# The alloc ceiling is deliberately loose (~3x the current steady state, still
# ~10x below the seed) so the gate catches a regression of the incremental
# machinery — an accidental per-movement clone or per-route heap boxing blows
# through it instantly — without flaking on noise.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100x}"
ALLOC_CEILING="${ALLOC_CEILING:-12000}"
OUT="${OUT:-BENCH_mapper.json}"

# Seed-implementation numbers (commit f63b491, -benchtime 100x, same machine
# class as CI): recorded once so the artifact documents the before/after.
SEED_NS=16109082
SEED_ALLOCS=115206
SEED_BYTES=5511960

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
fi

echo "running BenchmarkMapperCore (-benchtime $BENCHTIME)..." >&2
raw=$(go test -run '^$' -bench '^BenchmarkMapperCore$' -benchtime "$BENCHTIME" -benchmem .)
echo "$raw" >&2

line=$(echo "$raw" | grep '^BenchmarkMapperCore')
ns=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="ns/op") printf "%d", $i}')
bytes=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="B/op") printf "%d", $i}')
allocs=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="allocs/op") printf "%d", $i}')

if [[ -z "$ns" || -z "$allocs" ]]; then
  echo "bench-mapper: could not parse benchmark output" >&2
  exit 1
fi

speedup=$(awk -v a="$SEED_NS" -v b="$ns" 'BEGIN {printf "%.2f", a/b}')
allocratio=$(awk -v a="$SEED_ALLOCS" -v b="$allocs" 'BEGIN {printf "%.2f", a/b}')

cat > "$OUT" <<EOF
{
  "benchmark": "BenchmarkMapperCore",
  "benchtime": "$BENCHTIME",
  "seed": {
    "commit": "f63b491",
    "ns_per_op": $SEED_NS,
    "bytes_per_op": $SEED_BYTES,
    "allocs_per_op": $SEED_ALLOCS
  },
  "current": {
    "ns_per_op": $ns,
    "bytes_per_op": $bytes,
    "allocs_per_op": $allocs
  },
  "speedup": $speedup,
  "alloc_reduction": $allocratio,
  "alloc_ceiling": $ALLOC_CEILING
}
EOF
echo "wrote $OUT (ns/op=$ns allocs/op=$allocs speedup=${speedup}x allocs ÷${allocratio})" >&2

if [[ "$check" == 1 ]]; then
  if (( allocs > ALLOC_CEILING )); then
    echo "bench-mapper: FAIL — allocs/op $allocs exceeds ceiling $ALLOC_CEILING" >&2
    exit 1
  fi
  echo "bench-mapper: allocs/op $allocs within ceiling $ALLOC_CEILING" >&2
fi
