package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates d(loss)/d(p[idx]) with central differences.
func numericalGrad(p *Tensor, idx int, loss func() float64) float64 {
	const h = 1e-6
	orig := p.Data[idx]
	p.Data[idx] = orig + h
	up := loss()
	p.Data[idx] = orig - h
	down := loss()
	p.Data[idx] = orig
	return (up - down) / (2 * h)
}

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatMulForward(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := Param(rng, 3, 2)
	x := FromRows([][]float64{{0.5, -1, 2}, {1, 0.25, -0.5}})
	target := FromRows([][]float64{{1, 0}, {0, 1}})
	loss := func() float64 { return MSE(MatMul(x, w), target).Data[0] }

	l := MSE(MatMul(x, w), target)
	Backward(l)
	for idx := range w.Data {
		num := numericalGrad(w, idx, loss)
		if !approxEqual(w.Grad[idx], num, 1e-4) {
			t.Errorf("grad[%d] = %v, numerical %v", idx, w.Grad[idx], num)
		}
	}
}

func TestChainedOpsGradient(t *testing.T) {
	// loss = MSE(relu(x@w1)@w2 + b, target) exercise of the whole tape.
	rng := rand.New(rand.NewSource(2))
	w1 := Param(rng, 4, 3)
	w2 := Param(rng, 3, 1)
	x := FromRows([][]float64{{1, -0.5, 0.25, 2}, {-1, 1, 0.5, 0.1}, {0.3, 0.7, -0.9, 1.1}})
	target := FromRows([][]float64{{1}, {-1}, {0.5}})
	forward := func() *Tensor { return MSE(MatMul(ReLU(MatMul(x, w1)), w2), target) }
	Backward(forward())
	for _, p := range []*Tensor{w1, w2} {
		for idx := range p.Data {
			num := numericalGrad(p, idx, func() float64 { return forward().Data[0] })
			if !approxEqual(p.Grad[idx], num, 1e-4) {
				t.Fatalf("param grad mismatch: %v vs %v", p.Grad[idx], num)
			}
		}
	}
}

func TestAggregateForward(t *testing.T) {
	x := FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}})
	sets := [][]int{{0, 1, 2}, {2}, {}}
	mean := Aggregate(x, sets, AggMean)
	if mean.At(0, 0) != 2 || mean.At(0, 1) != 20 {
		t.Fatalf("mean row 0 = (%v,%v)", mean.At(0, 0), mean.At(0, 1))
	}
	if mean.At(2, 0) != 0 {
		t.Fatal("empty set must aggregate to zero")
	}
	maxT := Aggregate(x, sets, AggMax)
	if maxT.At(0, 0) != 3 || maxT.At(0, 1) != 30 {
		t.Fatal("max wrong")
	}
	minT := Aggregate(x, sets, AggMin)
	if minT.At(0, 0) != 1 {
		t.Fatal("min wrong")
	}
	sum := Aggregate(x, sets, AggSum)
	if sum.At(0, 0) != 6 {
		t.Fatal("sum wrong")
	}
}

func TestAggregateGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := Param(rng, 2, 2)
	base := FromRows([][]float64{{1, 2}, {3, 1}, {0.5, -1}})
	sets := [][]int{{1, 2}, {0}, {0, 1, 2}}
	target := FromRows([][]float64{{0, 0}, {1, 1}, {0.5, -0.5}})
	for _, kind := range []AggKind{AggMean, AggMax, AggMin, AggSum} {
		forward := func() *Tensor {
			return MSE(Aggregate(MatMul(base, w), sets, kind), target)
		}
		for i := range w.Grad {
			w.Grad[i] = 0
		}
		Backward(forward())
		for idx := range w.Data {
			num := numericalGrad(w, idx, func() float64 { return forward().Data[0] })
			if !approxEqual(w.Grad[idx], num, 1e-3) {
				t.Errorf("kind %d grad[%d] = %v vs numerical %v", kind, idx, w.Grad[idx], num)
			}
		}
	}
}

func TestReciprocalGuard(t *testing.T) {
	x := FromRows([][]float64{{0, 2, -4}})
	r := Reciprocal(x, 1e-9)
	if r.At(0, 0) != 1 {
		t.Fatal("zero denominator must map to 1")
	}
	if r.At(0, 1) != 0.5 || r.At(0, 2) != -0.25 {
		t.Fatal("reciprocal values wrong")
	}
}

func TestReciprocalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := Param(rng, 1, 3)
	for i := range w.Data {
		w.Data[i] += 2 // keep away from the eps guard
	}
	target := FromRows([][]float64{{0.2, 0.4, 0.3}})
	forward := func() *Tensor { return MSE(Reciprocal(w, 1e-9), target) }
	Backward(forward())
	for idx := range w.Data {
		num := numericalGrad(w, idx, func() float64 { return forward().Data[0] })
		if !approxEqual(w.Grad[idx], num, 1e-4) {
			t.Errorf("grad[%d] = %v vs %v", idx, w.Grad[idx], num)
		}
	}
}

func TestConcatColsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Param(rng, 2, 2)
	b := Param(rng, 2, 1)
	target := New(2, 3)
	forward := func() *Tensor { return MSE(ConcatCols(a, b), target) }
	Backward(forward())
	for _, p := range []*Tensor{a, b} {
		for idx := range p.Data {
			num := numericalGrad(p, idx, func() float64 { return forward().Data[0] })
			if !approxEqual(p.Grad[idx], num, 1e-4) {
				t.Fatalf("concat grad mismatch")
			}
		}
	}
}

func TestMulGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Param(rng, 2, 2)
	b := Param(rng, 2, 2)
	target := New(2, 2)
	forward := func() *Tensor { return MSE(Mul(a, b), target) }
	Backward(forward())
	for _, p := range []*Tensor{a, b} {
		for idx := range p.Data {
			num := numericalGrad(p, idx, func() float64 { return forward().Data[0] })
			if !approxEqual(p.Grad[idx], num, 1e-4) {
				t.Fatalf("mul grad mismatch")
			}
		}
	}
}

func TestAdamConvergesOnLeastSquares(t *testing.T) {
	// Fit y = 2x - 1 with a single linear layer; Adam must reach tiny loss.
	rng := rand.New(rand.NewSource(7))
	w := Param(rng, 2, 1) // [slope, intercept]
	var xs, ys [][]float64
	for i := 0; i < 16; i++ {
		x := float64(i) / 4
		xs = append(xs, []float64{x, 1})
		ys = append(ys, []float64{2*x - 1})
	}
	x := FromRows(xs)
	y := FromRows(ys)
	opt := NewAdam([]*Tensor{w})
	opt.LR = 0.05
	opt.WeightDecay = 0
	var last float64
	for epoch := 0; epoch < 400; epoch++ {
		opt.ZeroGrad()
		loss := MSE(MatMul(x, w), y)
		Backward(loss)
		opt.Step()
		last = loss.Data[0]
	}
	if last > 1e-3 {
		t.Fatalf("Adam failed to converge: loss %v", last)
	}
	if math.Abs(w.Data[0]-2) > 0.1 || math.Abs(w.Data[1]+1) > 0.1 {
		t.Fatalf("fit = (%v, %v), want (2, -1)", w.Data[0], w.Data[1])
	}
}

func TestBackwardAccumulatesFanout(t *testing.T) {
	// y = w + w: dy/dw = 2 per element.
	rng := rand.New(rand.NewSource(8))
	w := Param(rng, 1, 2)
	target := New(1, 2)
	loss := MSE(Add(w, w), target)
	Backward(loss)
	for idx := range w.Data {
		want := 2 * 2 * (2 * w.Data[idx]) / 2 // dMSE = 2(y-t)/n * dy/dw, n=2
		if !approxEqual(w.Grad[idx], want, 1e-9) {
			t.Fatalf("fanout grad = %v, want %v", w.Grad[idx], want)
		}
	}
}

func TestMSEPropertyNonNegative(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological draws
			}
		}
		a := FromRows([][]float64{vals})
		b := New(1, len(vals))
		return MSE(a, b).Data[0] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}
