package gnn

import (
	"fmt"
	"math"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/tensor"
)

// Sample is one training example: a DFG's attributes with its ground-truth
// labels from the iterative mapping method of §V.
type Sample struct {
	Set *attr.Set
	Lbl *labels.Labels
}

// TrainConfig carries the training hyper-parameters; the defaults are the
// paper's (§VI-B: learning rate 0.001, weight decay 0.0005, 500 epochs).
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64

	// Validation, when non-empty, is evaluated every ValidateEvery epochs;
	// training stops early after Patience evaluations without improvement
	// of the summed per-label losses. Zero values disable early stopping.
	Validation    []Sample
	ValidateEvery int
	Patience      int

	// RecordHistory keeps the per-epoch mean losses in TrainStats.History.
	RecordHistory bool
}

// DefaultTrainConfig returns the paper's settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 500, LR: 0.001, WeightDecay: 0.0005}
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Epochs     int        // epochs actually run (early stopping can shorten)
	FinalLoss  [4]float64 // mean per-label loss over the last epoch
	NumSamples int
	// History holds per-epoch mean losses when RecordHistory is set.
	History [][4]float64
	// Stopped reports whether validation-based early stopping fired.
	Stopped bool
	// BestValLoss is the lowest validation loss observed (zero when
	// validation was disabled or never ran).
	BestValLoss float64
	// RestoredBest reports that the weights were rolled back to the
	// best-validation snapshot because the final weights measured worse.
	RestoredBest bool
}

// Train fits the four networks on samples. Each label's network trains
// independently (the paper designs "a network for each label"); one Adam
// step per sample per epoch.
func (m *Model) Train(samples []Sample, cfg TrainConfig) TrainStats {
	if cfg.Epochs == 0 {
		cfg = DefaultTrainConfig()
	}
	m.fitScales(samples)

	newOpt := func(params []*tensor.Tensor) *tensor.Adam {
		opt := tensor.NewAdam(params)
		opt.LR = cfg.LR
		opt.WeightDecay = cfg.WeightDecay
		return opt
	}
	opts := [4]*tensor.Adam{
		newOpt(m.Order.Params()),
		newOpt(m.Same.Params()),
		newOpt(m.Spatial.Params()),
		newOpt(m.Temporal.Params()),
	}

	stats := TrainStats{NumSamples: len(samples)}
	bestVal := math.Inf(1)
	badEvals := 0
	var bestSnap [][]float64 // weights at the best validation loss
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		stats.Epochs = epoch + 1
		var sum [4]float64
		var cnt [4]int
		for i := range samples {
			s := &samples[i]
			losses := m.trainStep(s, opts)
			for k, l := range losses {
				if !math.IsNaN(l) {
					sum[k] += l
					cnt[k]++
				}
			}
		}
		var mean [4]float64
		for k := range sum {
			if cnt[k] > 0 {
				mean[k] = sum[k] / float64(cnt[k])
			}
		}
		stats.FinalLoss = mean
		if cfg.RecordHistory {
			stats.History = append(stats.History, mean)
		}
		if len(cfg.Validation) > 0 && cfg.ValidateEvery > 0 && cfg.Patience > 0 &&
			(epoch+1)%cfg.ValidateEvery == 0 {
			val := m.validationLoss(cfg.Validation)
			if val < bestVal-1e-9 {
				bestVal = val
				badEvals = 0
				bestSnap = m.snapshotParams(bestSnap)
			} else {
				badEvals++
				if badEvals >= cfg.Patience {
					stats.Stopped = true
					break
				}
			}
		}
	}
	// Early stopping tracked the best validation loss; returning the
	// *last*-epoch weights would hand back a model measured Patience
	// evaluations worse than the best one seen. Roll back whenever the most
	// recent evaluation was not the best (badEvals > 0 covers both the
	// stopped case and an epoch budget that ran out mid-plateau); when the
	// last evaluation was the best, the current weights are at most
	// ValidateEvery-1 unevaluated epochs past it and are kept.
	if bestSnap != nil && badEvals > 0 {
		m.restoreParams(bestSnap)
		stats.RestoredBest = true
	}
	if !math.IsInf(bestVal, 1) {
		stats.BestValLoss = bestVal
	}
	return stats
}

// allParams lists every trainable tensor of the four networks in a fixed
// order (snapshot/restore pair over the same order).
func (m *Model) allParams() []*tensor.Tensor {
	out := append([]*tensor.Tensor{}, m.Order.Params()...)
	out = append(out, m.Same.Params()...)
	out = append(out, m.Spatial.Params()...)
	out = append(out, m.Temporal.Params()...)
	return out
}

// snapshotParams copies every trainable value into buf, allocating it on
// first use and reusing it afterwards so repeated improvements don't churn.
func (m *Model) snapshotParams(buf [][]float64) [][]float64 {
	params := m.allParams()
	if buf == nil {
		buf = make([][]float64, len(params))
		for i, p := range params {
			buf[i] = make([]float64, len(p.Data))
		}
	}
	for i, p := range params {
		copy(buf[i], p.Data)
	}
	return buf
}

// restoreParams copies a snapshot taken by snapshotParams back into the
// model's weights.
func (m *Model) restoreParams(buf [][]float64) {
	for i, p := range m.allParams() {
		copy(p.Data, buf[i])
	}
}

// validationLoss sums the four per-label MSE losses over a held-out set
// without touching any weights.
func (m *Model) validationLoss(samples []Sample) float64 {
	total := 0.0
	for i := range samples {
		s := &samples[i]
		g := s.Set.An.G
		if g.NumNodes() > 0 {
			na, asap := m.scaledNodeInputs(s.Set)
			pred := m.Order.Forward(na, asap, undirectedNeighbors(s.Set))
			total += tensor.MSE(pred, columnTensor(s.Lbl.Order)).Data[0]
		}
		if g.NumEdges() > 0 {
			ea := m.scaledMatrix(s.Set.Edge, m.EdgeScale)
			total += tensor.MSE(m.Spatial.Forward(ea, incidentEdges(s.Set)),
				columnTensor(s.Lbl.Spatial)).Data[0]
			total += tensor.MSE(m.Temporal.Forward(ea),
				columnTensor(s.Lbl.Temporal)).Data[0]
		}
		if len(s.Set.DummyPairs) > 0 {
			da := m.scaledMatrix(s.Set.Dummy, m.DummyScale)
			vals := make([]float64, len(s.Set.DummyPairs))
			for i, p := range s.Set.DummyPairs {
				vals[i] = s.Lbl.SameLevel[p]
			}
			total += tensor.MSE(m.Same.Forward(da), columnTensor(vals)).Data[0]
		}
	}
	return total
}

// trainStep performs one optimization step per label network on one sample
// and returns the four losses (NaN when a sample has no data for a label).
func (m *Model) trainStep(s *Sample, opts [4]*tensor.Adam) [4]float64 {
	g := s.Set.An.G
	losses := [4]float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}

	if g.NumNodes() > 0 {
		opts[0].ZeroGrad()
		na, asap := m.scaledNodeInputs(s.Set)
		pred := m.Order.Forward(na, asap, undirectedNeighbors(s.Set))
		target := columnTensor(s.Lbl.Order)
		loss := tensor.MSE(pred, target)
		tensor.Backward(loss)
		opts[0].Step()
		losses[0] = loss.Data[0]
	}
	if len(s.Set.DummyPairs) > 0 {
		opts[1].ZeroGrad()
		da := m.scaledMatrix(s.Set.Dummy, m.DummyScale)
		pred := m.Same.Forward(da)
		vals := make([]float64, len(s.Set.DummyPairs))
		for i, p := range s.Set.DummyPairs {
			vals[i] = s.Lbl.SameLevel[p]
		}
		loss := tensor.MSE(pred, columnTensor(vals))
		tensor.Backward(loss)
		opts[1].Step()
		losses[1] = loss.Data[0]
	}
	if g.NumEdges() > 0 {
		ea := m.scaledMatrix(s.Set.Edge, m.EdgeScale)

		opts[2].ZeroGrad()
		predS := m.Spatial.Forward(ea, incidentEdges(s.Set))
		lossS := tensor.MSE(predS, columnTensor(s.Lbl.Spatial))
		tensor.Backward(lossS)
		opts[2].Step()
		losses[2] = lossS.Data[0]

		opts[3].ZeroGrad()
		// Rebuild the input: the previous backward taped through ea.
		ea2 := m.scaledMatrix(s.Set.Edge, m.EdgeScale)
		predT := m.Temporal.Forward(ea2)
		lossT := tensor.MSE(predT, columnTensor(s.Lbl.Temporal))
		tensor.Backward(lossT)
		opts[3].Step()
		losses[3] = lossT.Data[0]
	}
	return losses
}

// fitScales computes per-column max-abs scalers over the training set.
func (m *Model) fitScales(samples []Sample) {
	m.NodeScale = make([]float64, attr.NodeAttrDim)
	m.EdgeScale = make([]float64, attr.EdgeAttrDim)
	m.DummyScale = make([]float64, attr.DummyAttrDim)
	m.ASAPScale = 1
	grow := func(name string, scale []float64, rows [][]float64) {
		for _, r := range rows {
			// A row wider or narrower than the scale vector means the
			// attribute set changed shape under the model; clamping silently
			// (the old `j < len(scale)` guard) would fit scales to a prefix
			// and mis-scale the rest forever after serialization.
			if len(r) != len(scale) {
				panic(fmt.Sprintf("gnn: %s attribute row has %d columns, want %d (attribute-set version skew)",
					name, len(r), len(scale)))
			}
			for j, v := range r {
				if math.Abs(v) > scale[j] {
					scale[j] = math.Abs(v)
				}
			}
		}
	}
	for i := range samples {
		grow("node", m.NodeScale, samples[i].Set.Node)
		grow("edge", m.EdgeScale, samples[i].Set.Edge)
		grow("dummy", m.DummyScale, samples[i].Set.Dummy)
		if cp := float64(samples[i].Set.An.CriticalPath); cp > m.ASAPScale {
			m.ASAPScale = cp
		}
	}
	for _, scale := range [][]float64{m.NodeScale, m.EdgeScale, m.DummyScale} {
		for j := range scale {
			if scale[j] == 0 {
				scale[j] = 1
			}
		}
	}
}

// Accuracy evaluates the paper's per-label prediction-accuracy metric
// (§VI-B): schedule order counts as accurate when the rounded prediction
// equals the rounded ground truth; same-level association and spatial
// distance tolerate a difference of one; temporal distance tolerates two.
func (m *Model) Accuracy(samples []Sample) [4]float64 {
	sets := make([]*attr.Set, len(samples))
	for i := range samples {
		sets[i] = samples[i].Set
	}
	// One fused, batched inference pass over the whole evaluation set
	// (bit-identical to per-sample Predict). The model fitted its own
	// scales, so a skew error here is an internal invariant violation.
	preds, err := m.PredictBatch(sets)
	if err != nil {
		panic("gnn: Accuracy: " + err.Error())
	}
	var hit, total [4]int
	for i := range samples {
		s := &samples[i]
		pred := preds[i]
		for v := range s.Lbl.Order {
			total[0]++
			if math.Round(pred.Order[v]) == math.Round(s.Lbl.Order[v]) {
				hit[0]++
			}
		}
		//lisa:vet-ok maprange integer hit/total counters; addition is commutative, order cannot change the tally
		for p, want := range s.Lbl.SameLevel {
			total[1]++
			if math.Abs(pred.SameLevel[p]-want) <= 1 {
				hit[1]++
			}
		}
		for e := range s.Lbl.Spatial {
			total[2]++
			if math.Abs(pred.Spatial[e]-s.Lbl.Spatial[e]) <= 1 {
				hit[2]++
			}
			total[3]++
			if math.Abs(pred.Temporal[e]-s.Lbl.Temporal[e]) <= 2 {
				hit[3]++
			}
		}
	}
	var acc [4]float64
	for k := range acc {
		if total[k] > 0 {
			acc[k] = float64(hit[k]) / float64(total[k])
		} else {
			acc[k] = 1
		}
	}
	return acc
}

func columnTensor(vals []float64) *tensor.Tensor {
	t := tensor.New(len(vals), 1)
	for i, v := range vals {
		t.Set(i, 0, v)
	}
	return t
}
