package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryAcceptedTask(t *testing.T) {
	p := NewPool(4, 16)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 100; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			accepted++
		} else {
			// Full queue: drain a moment and keep going.
			time.Sleep(time.Millisecond)
			i--
		}
	}
	p.Close()
	if int(ran.Load()) != accepted {
		t.Fatalf("accepted %d tasks but ran %d", accepted, ran.Load())
	}
	if accepted != 100 {
		t.Fatalf("only %d of 100 tasks were eventually accepted", accepted)
	}
}

func TestPoolRefusesWhenQueueFull(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); <-block }) {
		t.Fatal("first task refused")
	}
	<-started // worker is now busy; the queue slot is free
	if !p.TrySubmit(func() {}) {
		t.Fatal("queued task refused with an empty queue")
	}
	if p.TrySubmit(func() { t.Error("over-admitted task ran") }) {
		t.Fatal("task accepted beyond the queue bound")
	}
	close(block)
}

func TestPoolCloseStopsAdmissionAndDrains(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.TrySubmit(func() { time.Sleep(time.Millisecond); ran.Add(1) })
	}
	p.Close()
	if p.TrySubmit(func() { t.Error("task ran after Close") }) {
		t.Fatal("TrySubmit accepted work after Close")
	}
	if ran.Load() == 0 {
		t.Fatal("Close did not drain queued tasks")
	}
	p.Close() // idempotent
}

// Hammer TrySubmit against Close under the race detector: submissions must
// either run or be refused, never panic on the closed channel.
func TestPoolSubmitCloseRace(t *testing.T) {
	p := NewPool(2, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.TrySubmit(func() {})
			}
		}()
	}
	time.Sleep(500 * time.Microsecond)
	p.Close()
	wg.Wait()
}
