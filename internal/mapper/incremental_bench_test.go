package mapper

import "testing"

// benchState builds a mid-anneal state on a random kernel, the population the
// snapshot/rollback benchmarks mutate.
func benchState(b *testing.B) *state {
	b.Helper()
	return buildAnnealState(b, 1, 42,
		config{useOrderLabel: true, usePlacementLabels: true, useRoutingPriority: true})
}

// BenchmarkSnapshotUndoLog measures the production rollback path: arm the
// undo logs, run one movement, roll it back. Compare against
// BenchmarkSnapshotClone, the deep-copy path it replaced — the delta is the
// core of the mapper speedup.
func BenchmarkSnapshotUndoLog(b *testing.B) {
	st := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.beginTxn()
		st.movement()
		st.rollbackTxn()
	}
}

// BenchmarkSnapshotClone measures the retired deep-clone rollback on the same
// movement loop.
func BenchmarkSnapshotClone(b *testing.B) {
	st := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := st.save()
		st.movement()
		st.restore(snap)
	}
}

// BenchmarkCostIncremental reads the O(1) tally-backed objective; the
// recompute benchmark below walks every node and edge the way cost() itself
// used to.
func BenchmarkCostIncremental(b *testing.B) {
	st := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += st.cost()
	}
	_ = sink
}

// BenchmarkCostFullRecompute is the from-scratch reference recompute.
func BenchmarkCostFullRecompute(b *testing.B) {
	st := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += st.costFull()
	}
	_ = sink
}
