// Warm model shipping tests: the /v1/model endpoint, a cold replica
// inheriting the ring's trained model with zero local training, the
// model.fetch chaos fallback, and the corrupt-payload containment
// contract (rejected, cached, healed by reload — never installed).
package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/registry"
	"github.com/lisa-go/lisa/internal/traingen"
)

// quickTrainCfg is a registry config whose on-demand training finishes
// inside a test run (mirrors the registry package's quickCfg).
func quickTrainCfg() registry.Config {
	return registry.Config{
		TrainGen: traingen.Config{
			NumDFGs:    12,
			Iterations: 2,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 500},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg:      gnn.TrainConfig{Epochs: 2, LR: 0.003, WeightDecay: 0.0005},
		Seed:          1,
		TrainOnDemand: true,
	}
}

// coldNode boots a server with an EMPTY registry behind a live listener
// whose peer list is urls — the fresh-replica shape the shipping layer
// exists for. The returned slot must be set before the node takes traffic.
func coldNode(t *testing.T, reg *registry.Registry, self string, urls []string) *Server {
	t.Helper()
	// Tiny backoff windows so recovery phases don't stall the test run.
	cl, err := cluster.New(cluster.Config{Self: self, Peers: urls,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, Cluster: cl}, reg)
	t.Cleanup(s.Close)
	return s
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestModelEndpointServesVerifiedBytes(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	w := getPath(t, h, "/v1/model/cgra-4x4")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	body := w.Body.Bytes()
	if got := w.Header().Get(cluster.ModelSHAHeader); got != cluster.PayloadSHA(body) {
		t.Fatalf("%s = %q does not match the body", cluster.ModelSHAHeader, got)
	}
	if got := w.Header().Get(cluster.ModelLenHeader); got == "" {
		t.Fatalf("%s missing", cluster.ModelLenHeader)
	}
	m, err := gnn.Load(bytes.NewReader(body), gnn.NewModel(rand.New(rand.NewSource(1)), ""))
	if err != nil {
		t.Fatalf("served model does not round-trip through gnn.Load: %v", err)
	}
	if m.ArchName != "cgra-4x4" {
		t.Fatalf("served model names arch %q", m.ArchName)
	}
	// Stable bytes: the fetching side's byte-identity contract.
	if again := getPath(t, h, "/v1/model/cgra-4x4"); !bytes.Equal(again.Body.Bytes(), body) {
		t.Fatal("two GETs served different bytes for the same model")
	}

	if w := getPath(t, h, "/v1/model/no-such-arch"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown arch: %d, want 404", w.Code)
	}
	if w := getPath(t, h, "/v1/model/"); w.Code != http.StatusBadRequest {
		t.Fatalf("empty arch: %d, want 400", w.Code)
	}
	post := httptest.NewRecorder()
	h.ServeHTTP(post, httptest.NewRequest(http.MethodPost, "/v1/model/cgra-4x4", nil))
	if post.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: %d, want 405", post.Code)
	}

	// A model-less slot answers 404, never trains. testServer's registry
	// pre-seeds every arch, so use an empty one.
	empty := New(Config{}, registry.New(registry.Config{}))
	t.Cleanup(empty.Close)
	if w := getPath(t, empty.Handler(), "/v1/model/cgra-4x4"); w.Code != http.StatusNotFound {
		t.Fatalf("unresolved model: %d, want 404", w.Code)
	}
}

// The tentpole acceptance path: a fresh -train=false replica joining a warm
// ring answers a label-engine request byte-identically to the warm peer,
// with zero local training runs and provenance=shipped.
func TestColdReplicaShipsModelFromWarmPeer(t *testing.T) {
	slots := []*handlerSlot{{}, {}}
	urls := make([]string, 2)
	for i, slot := range slots {
		hts := httptest.NewServer(slot)
		t.Cleanup(hts.Close)
		urls[i] = hts.URL
	}

	warm := testServer(t, Config{Workers: 2}) // every model resolved
	slots[0].set(warm.Handler())

	coldReg := registry.New(registry.Config{TrainOnDemand: false}) // -train=false, no models
	cold := coldNode(t, coldReg, urls[1], urls)
	slots[1].set(cold.Handler())

	labelsBody := `{"arch":"cgra-4x4","kernels":["gemm"]}`
	want := postPath(t, warm.Handler(), "/v1/labels", labelsBody)
	if want.Code != http.StatusOK {
		t.Fatalf("warm node labels: %d: %s", want.Code, want.Body)
	}

	got := postPath(t, cold.Handler(), "/v1/labels", labelsBody)
	if got.Code != http.StatusOK {
		t.Fatalf("cold node labels: %d: %s", got.Code, got.Body)
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatal("cold replica's labels differ from the warm peer's — the shipped model is not the peer's model")
	}

	ctr := coldReg.Counters()
	if ctr.TrainRuns != 0 || ctr.Fetches != 1 || ctr.FetchErrors != 0 {
		t.Fatalf("cold replica counters = %+v, want one fetch and zero training", ctr)
	}

	// Provenance on /v1/archs: shipped, from the warm peer.
	var archs []ArchInfo
	if err := json.Unmarshal(getPath(t, cold.Handler(), "/v1/archs").Body.Bytes(), &archs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range archs {
		if a.Name != "cgra-4x4" {
			continue
		}
		found = true
		if !a.ModelReady || a.ModelProvenance != "shipped" || a.ModelSource != urls[0] {
			t.Fatalf("archs row = %+v, want ready/shipped from %s", a, urls[0])
		}
	}
	if !found {
		t.Fatal("cgra-4x4 missing from /v1/archs")
	}

	// And in /metrics.
	var snap MetricsSnapshot
	if err := json.Unmarshal(getPath(t, cold.Handler(), "/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Models == nil || snap.Models.Shipped != 1 || snap.Models.TrainRuns != 0 || snap.Models.Fetches != 1 {
		t.Fatalf("models snapshot = %+v, want shipped=1 trainRuns=0 fetches=1", snap.Models)
	}
}

func postPath(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return w
}

// Chaos: with model.fetch armed the ladder's next rung answers — local
// training when allowed, a structured retryable 503 when not.
func TestChaosModelFetchFault(t *testing.T) {
	slots := []*handlerSlot{{}, {}}
	urls := make([]string, 2)
	for i, slot := range slots {
		hts := httptest.NewServer(slot)
		t.Cleanup(hts.Close)
		urls[i] = hts.URL
	}
	warm := testServer(t, Config{Workers: 2})
	slots[0].set(warm.Handler())

	t.Run("train disabled: structured 503, healed after disarm", func(t *testing.T) {
		coldReg := registry.New(registry.Config{TrainOnDemand: false})
		cold := coldNode(t, coldReg, urls[1], urls)
		slots[1].set(cold.Handler())
		armFaults(t, "model.fetch=error:1", 1)

		body := `{"arch":"cgra-4x4","kernels":["gemm"]}`
		w := postPath(t, cold.Handler(), "/v1/labels", body)
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("labels under model.fetch fault = %d: %s", w.Code, w.Body)
		}
		var e errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("503 body not structured: %s", w.Body)
		}
		if err := coldReg.Err("cgra-4x4"); err != nil {
			t.Fatalf("transient injected failure was cached as permanent: %v", err)
		}
		alive(t, cold.Handler())

		// Disarm and let the peer's backoff lapse: the next request fetches
		// with no manual Retry — the injected error was transport-class.
		fault.Deactivate()
		var last int
		for i := 0; i < 50; i++ {
			w = postPath(t, cold.Handler(), "/v1/labels", body)
			last = w.Code
			if last == http.StatusOK {
				break
			}
			time.Sleep(5 * time.Millisecond) // let the backoff window lapse
		}
		if last != http.StatusOK {
			t.Fatalf("labels never recovered after disarm: %d: %s", last, w.Body)
		}
	})

	t.Run("train enabled: fallback to local training answers 200", func(t *testing.T) {
		coldReg := registry.New(quickTrainCfg())
		cold := coldNode(t, coldReg, urls[1], urls)
		slots[1].set(cold.Handler())
		armFaults(t, "model.fetch=error:1", 1)

		w := postPath(t, cold.Handler(), "/v1/labels", `{"arch":"cgra-4x4","kernels":["gemm"]}`)
		if w.Code != http.StatusOK {
			t.Fatalf("labels with training fallback = %d: %s", w.Code, w.Body)
		}
		ctr := coldReg.Counters()
		if ctr.TrainRuns != 1 || ctr.FetchErrors != 1 {
			t.Fatalf("counters = %+v, want the fetch rung to fail once and training to run once", ctr)
		}
		var archs []ArchInfo
		if err := json.Unmarshal(getPath(t, cold.Handler(), "/v1/archs").Body.Bytes(), &archs); err != nil {
			t.Fatal(err)
		}
		for _, a := range archs {
			if a.Name == "cgra-4x4" {
				if a.ModelProvenance != "trained" || a.FetchError == "" {
					t.Fatalf("archs row = %+v, want trained with the fetch error preserved", a)
				}
			}
		}
		alive(t, cold.Handler())
	})
}

// The containment contract for a corrupt shipped payload: never installed,
// never evicts anything, cached as a permanent failure that /v1/reload
// re-opens — and the healed source then wins.
func TestCorruptShippedPayloadRejectedNotPoisoned(t *testing.T) {
	good := testServer(t, Config{}) // source of a valid payload for the heal phase
	corrupt := true
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/model/") {
			http.NotFound(w, r)
			return
		}
		var body []byte
		if corrupt {
			// Valid JSON, wire checksum intact — the corruption is only
			// visible to gnn.Load's envelope validation. This must be
			// rejected WITHOUT marking the peer down or retrying forever.
			body = []byte(`{"format":1,"arch":"cgra-4x4","weights":{}}`)
		} else {
			rec := httptest.NewRecorder()
			good.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, r.URL.Path, nil))
			body = rec.Body.Bytes()
		}
		w.Header().Set(cluster.ModelSHAHeader, cluster.PayloadSHA(body))
		w.Header().Set(cluster.ModelLenHeader, strconv.Itoa(len(body)))
		_, _ = w.Write(body)
	}))
	t.Cleanup(owner.Close)

	slot := &handlerSlot{}
	hts := httptest.NewServer(slot)
	t.Cleanup(hts.Close)
	coldReg := registry.New(registry.Config{TrainOnDemand: false})
	cold := coldNode(t, coldReg, hts.URL, []string{hts.URL, owner.URL})
	slot.set(cold.Handler())

	body := `{"arch":"cgra-4x4","kernels":["gemm"]}`
	w := postPath(t, cold.Handler(), "/v1/labels", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("labels over a corrupt payload = %d: %s", w.Code, w.Body)
	}
	// Permanent: cached, answered without re-fetching the same bad bytes.
	if err := coldReg.Err("cgra-4x4"); err == nil || !registry.IsPermanent(err) {
		t.Fatalf("Err = %v, want the cached permanent validation error", err)
	}
	_ = postPath(t, cold.Handler(), "/v1/labels", body)
	if ctr := coldReg.Counters(); ctr.FetchErrors != 1 {
		t.Fatalf("FetchErrors = %d after a cached permanent failure, want 1", ctr.FetchErrors)
	}
	var archs []ArchInfo
	if err := json.Unmarshal(getPath(t, cold.Handler(), "/v1/archs").Body.Bytes(), &archs); err != nil {
		t.Fatal(err)
	}
	for _, a := range archs {
		if a.Name == "cgra-4x4" && (a.ModelReady || a.ModelError == "") {
			t.Fatalf("archs row = %+v, want not-ready with the validation error", a)
		}
	}

	// Heal the source, then /v1/reload: the retry is NOT cached away.
	corrupt = false
	if w := postPath(t, cold.Handler(), "/v1/reload", ""); w.Code != http.StatusOK {
		t.Fatalf("reload: %d: %s", w.Code, w.Body)
	}
	w = postPath(t, cold.Handler(), "/v1/labels", body)
	if w.Code != http.StatusOK {
		t.Fatalf("labels after heal+reload = %d: %s", w.Code, w.Body)
	}
	if ctr := coldReg.Counters(); ctr.Fetches != 1 || ctr.TrainRuns != 0 {
		t.Fatalf("counters after heal = %+v, want the healed fetch and still zero training", ctr)
	}
	warmRow := getPath(t, cold.Handler(), "/v1/archs")
	if !strings.Contains(warmRow.Body.String(), `"modelProvenance":"shipped"`) {
		t.Fatalf("archs after heal: %s", warmRow.Body)
	}
	alive(t, cold.Handler())
}

// A ready model is never evicted by the fetch path: the slot answers from
// ready state before any fetch can run, whatever the ring serves.
func TestFetchNeverEvictsWorkingModel(t *testing.T) {
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("a node with a resolved model contacted the ring for it")
	}))
	t.Cleanup(owner.Close)
	slot := &handlerSlot{}
	hts := httptest.NewServer(slot)
	t.Cleanup(hts.Close)

	reg := registry.New(registry.Config{TrainOnDemand: false})
	pre := gnn.NewModel(rand.New(rand.NewSource(1)), "cgra-4x4")
	reg.Put(pre)
	s := coldNode(t, reg, hts.URL, []string{hts.URL, owner.URL})
	slot.set(s.Handler())

	ar, _ := arch.ByName("cgra-4x4")
	m, err := reg.ModelFor(ar)
	if err != nil || m != pre {
		t.Fatalf("ModelFor = (%v, %v), want the resolved model untouched", m, err)
	}
}
