package parallel

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is the serving-side counterpart of ForEach: a fixed set of worker
// goroutines draining a bounded queue. ForEach fans a known batch out and
// joins; a Pool accepts work forever but refuses it when the queue is full,
// which is exactly the admission-control contract a request handler needs —
// the caller turns a refusal into backpressure (HTTP 429) instead of letting
// latency grow without bound.
//
// Workers are panic-fenced: a task that panics is caught (with its stack)
// instead of killing the process, and the worker keeps draining the queue.
// This is the last-resort fence — tasks that own a completion channel must
// still recover for themselves, or their waiters block forever.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	onPanic atomic.Pointer[func(recovered any, stack []byte)]

	mu     sync.RWMutex
	closed bool
}

// NewPool starts workers goroutines (<= 0 means one per CPU, as in ForEach)
// behind a queue holding up to queue waiting tasks (minimum 0).
func NewPool(workers, queue int) *Pool {
	workers = Workers(workers)
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.run(fn)
			}
		}()
	}
	return p
}

// OnPanic installs a handler called with the recovered value and stack of
// every task panic (nil restores the default of swallowing silently). The
// daemon points this at its crash log and panic counter.
func (p *Pool) OnPanic(fn func(recovered any, stack []byte)) {
	if fn == nil {
		p.onPanic.Store(nil)
		return
	}
	p.onPanic.Store(&fn)
}

// run executes one task behind the worker's panic fence.
func (p *Pool) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if h := p.onPanic.Load(); h != nil {
				(*h)(r, debug.Stack())
			}
		}
	}()
	fn()
}

// TrySubmit offers fn to the pool. It returns false — without blocking —
// when the queue is full or the pool is closed; fn will never run in that
// case. On true, fn is guaranteed to run exactly once, even if the pool is
// closed right after (Close drains the queue).
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Close stops admission, runs every already-accepted task to completion,
// and waits for the workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
