// Package visual renders DFGs, mappings and experiment results as SVG —
// the reproduction's counterpart of the paper artifact's plotting scripts.
// Everything is generated with the standard library only.
package visual

import (
	"fmt"
	"io"
	"strings"
)

// canvas accumulates SVG elements.
type canvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h}
	fmt.Fprintf(&c.b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		w, h, w, h)
	c.b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	return c
}

func (c *canvas) rect(x, y, w, h int, fill string, stroke string) {
	fmt.Fprintf(&c.b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s"/>`+"\n",
		x, y, w, h, fill, stroke)
}

func (c *canvas) line(x1, y1, x2, y2 int, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *canvas) text(x, y int, size int, anchor, s string) {
	fmt.Fprintf(&c.b,
		`<text x="%d" y="%d" font-size="%d" font-family="monospace" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *canvas) circle(x, y, r int, fill string) {
	fmt.Fprintf(&c.b, `<circle cx="%d" cy="%d" r="%d" fill="%s" stroke="black"/>`+"\n", x, y, r, fill)
}

func (c *canvas) flush(w io.Writer) error {
	c.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, c.b.String())
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// opFill maps an op mnemonic to a pastel fill color.
func opFill(op string) string {
	switch op {
	case "load":
		return "#cfe8ff"
	case "store":
		return "#ffd6cc"
	case "mul", "div":
		return "#d8f5d0"
	case "const":
		return "#eeeeee"
	case "cmp", "select":
		return "#f5e6ff"
	default:
		return "#fff3bf"
	}
}
