package ilp

import (
	"sort"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Options bounds the ILP mapper. The paper grants CGRA-ME's ILP two hours
// per target II; experiment profiles scale this down proportionally.
type Options struct {
	TimeLimitPerII time.Duration
	MaxNodes       int // B&B node budget per solve (0 = unlimited)
	MaxCutRounds   int // lazy routing-cut iterations per II
	MaxII          int // override of the architecture's max II (0 = arch)
	// MaxVars aborts formulation when the model would exceed this many
	// placement variables; mirrors "ILP requires more variables ... and
	// cannot scale" on the 8×8 array.
	MaxVars int
}

// DefaultOptions returns the quick-profile limits.
func DefaultOptions() Options {
	return Options{
		TimeLimitPerII: 2 * time.Second,
		MaxNodes:       400000,
		MaxCutRounds:   25,
		MaxVars:        20000,
	}
}

// slotVar maps one placement variable to its (node, pe, time) meaning.
type slotVar struct {
	node, pe, t int
}

// Map runs the exact mapper: for each II from MII upward it formulates the
// 0–1 placement problem, solves it with branch and bound, checks routability
// of the integer solution on the real resource graph, and adds no-good cuts
// for unroutable placements until the solution routes, the cut budget is
// exhausted, or the time limit fires.
func Map(ar arch.Arch, g *dfg.Graph, opts Options) mapper.Result {
	if opts.TimeLimitPerII == 0 {
		opts.TimeLimitPerII = DefaultOptions().TimeLimitPerII
	}
	if opts.MaxCutRounds == 0 {
		opts.MaxCutRounds = DefaultOptions().MaxCutRounds
	}
	if opts.MaxVars == 0 {
		opts.MaxVars = DefaultOptions().MaxVars
	}
	start := time.Now()
	an := dfg.Analyze(g)
	res := mapper.Result{}

	maxII := ar.MaxII()
	if opts.MaxII > 0 && opts.MaxII < maxII {
		maxII = opts.MaxII
	}
	for ii := ar.MinII(g); ii <= maxII; ii++ {
		res.TriedIIs = append(res.TriedIIs, ii)
		if ok := mapAtII(ar, g, an, ii, opts, &res); ok {
			res.OK = true
			res.II = ii
			break
		}
	}
	res.Duration = time.Since(start)
	return res
}

func mapAtII(ar arch.Arch, g *dfg.Graph, an *dfg.Analysis, ii int,
	opts Options, res *mapper.Result) bool {

	diameter := 0
	for pe := 0; pe < ar.NumPEs(); pe++ {
		if d := ar.SpatialDistance(0, pe); d > diameter {
			diameter = d
		}
	}
	window := ii + diameter + 2
	schedLen := an.CriticalPath + window

	// Variables: x[v][slot] for compatible slots within the node's window.
	var vars []slotVar
	varID := map[[3]int]int{}
	nodeVars := make([][]int, g.NumNodes())
	for v := range g.Nodes {
		op := g.Nodes[v].Op
		for t := an.ASAP[v]; t <= an.ASAP[v]+window && t < schedLen; t++ {
			for pe := 0; pe < ar.NumPEs(); pe++ {
				if !ar.SupportsOp(pe, op) {
					continue
				}
				id := len(vars)
				vars = append(vars, slotVar{node: v, pe: pe, t: t})
				varID[[3]int{v, pe, t}] = id
				nodeVars[v] = append(nodeVars[v], id)
			}
		}
		if len(nodeVars[v]) == 0 {
			return false // op unsupported anywhere (e.g. trmm on systolic)
		}
	}
	if len(vars) > opts.MaxVars {
		return false // formulation too large; ILP does not scale here
	}

	m := &Model{NumVars: len(vars)}
	for v := range g.Nodes {
		m.AddExactlyOne(nodeVars[v])
	}
	// Modulo-FU exclusivity: at most one op per (pe, t mod II). Constraints
	// are added in sorted (pe, slot) order: the branch-and-bound solver's
	// propagation and tie-breaking follow constraint order, so map-iteration
	// order here would make the returned placement (not just the search
	// path) vary run to run.
	fuVars := map[[2]int][]int{}
	for id, sv := range vars {
		key := [2]int{sv.pe, sv.t % ii}
		fuVars[key] = append(fuVars[key], id)
	}
	fuKeys := make([][2]int, 0, len(fuVars))
	for key := range fuVars {
		fuKeys = append(fuKeys, key)
	}
	sort.Slice(fuKeys, func(i, j int) bool {
		if fuKeys[i][0] != fuKeys[j][0] {
			return fuKeys[i][0] < fuKeys[j][0]
		}
		return fuKeys[i][1] < fuKeys[j][1]
	})
	for _, key := range fuKeys {
		group := fuVars[key]
		if len(group) < 2 {
			continue
		}
		terms := make([]Term, len(group))
		for i, v := range group {
			terms[i] = Term{Var: v, Coef: 1}
		}
		m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 1})
	}
	// Edge-feasibility support constraints. A pair of slots is certainly
	// unroutable when it violates causality (dt < 1) or distance
	// (spatial > dt). Rather than one cut per infeasible pair (quadratic in
	// slots), each slot gets a support constraint: choosing it implies some
	// compatible slot at the other endpoint,
	//	x[u,su] − Σ_{sv compatible with su} x[v,sv] ≤ 0
	// and symmetrically for the consumer side. These propagate like arc
	// consistency under the worklist solver.
	feasible := func(su, sv slotVar) bool {
		dt := sv.t - su.t
		return dt >= 1 && ar.SpatialDistance(su.pe, sv.pe) <= dt
	}
	for _, e := range g.Edges {
		for _, uID := range nodeVars[e.From] {
			terms := []Term{{Var: uID, Coef: 1}}
			for _, vID := range nodeVars[e.To] {
				if feasible(vars[uID], vars[vID]) {
					terms = append(terms, Term{Var: vID, Coef: -1})
				}
			}
			m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 0})
		}
		for _, vID := range nodeVars[e.To] {
			terms := []Term{{Var: vID, Coef: 1}}
			for _, uID := range nodeVars[e.From] {
				if feasible(vars[uID], vars[vID]) {
					terms = append(terms, Term{Var: uID, Coef: -1})
				}
			}
			m.AddConstraint(Constraint{Terms: terms, Sense: LE, RHS: 0})
		}
	}
	// Objective: minimize total schedule time, i.e. the most compact (and
	// typically lowest-latency) placement.
	for id, sv := range vars {
		m.Objective = append(m.Objective, Term{Var: id, Coef: sv.t})
	}

	deadline := time.Now().Add(opts.TimeLimitPerII)
	for round := 0; round < opts.MaxCutRounds; round++ {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		solver := &Solver{TimeLimit: remaining, MaxNodes: opts.MaxNodes}
		sol, status := solver.Solve(m)
		if status == StatusInfeasible || status == StatusTimeout {
			return false
		}
		pe := make([]int, g.NumNodes())
		tm := make([]int, g.NumNodes())
		for id, val := range sol.Values {
			if val == 1 && id < len(vars) {
				sv := vars[id]
				pe[sv.node] = sv.pe
				tm[sv.node] = sv.t
			}
		}
		if hops, paths, cost, badEdge := tryRoute(ar, g, ii, pe, tm); badEdge < 0 {
			res.PE = pe
			res.Time = tm
			res.EdgeHops = hops
			res.Routes = paths
			res.RoutingCost = cost
			return true
		} else {
			// No-good cut: this exact placement of the failing edge's
			// endpoints is unroutable in context; forbid the pair.
			e := g.Edges[badEdge]
			uID := varID[[3]int{e.From, pe[e.From], tm[e.From]}]
			vID := varID[[3]int{e.To, pe[e.To], tm[e.To]}]
			m.AddConstraint(Constraint{
				Terms: []Term{{Var: uID, Coef: 1}, {Var: vID, Coef: 1}},
				Sense: LE, RHS: 1,
			})
		}
	}
	return false
}

// tryRoute routes every edge of the integer placement on the real resource
// graph. It returns the per-edge hop counts, paths and routing cost on
// success (badEdge == -1), or the first edge that failed.
func tryRoute(ar arch.Arch, g *dfg.Graph, ii int, pe, tm []int) (hops []int, paths [][]int, cost int, badEdge int) {
	rg := ar.BuildRGraph(ii)
	occ := rgraph.NewOccupancy(rg)
	maxHops := 0
	for _, e := range g.Edges {
		if d := tm[e.To] - tm[e.From]; d > maxHops {
			maxHops = d
		}
	}
	router := rgraph.NewRouter(rg, maxHops+1)
	for v := range g.Nodes {
		fu := rg.FUAt(pe[v], tm[v]%ii)
		if !occ.PlaceOp(fu, v) {
			return nil, nil, 0, 0 // exclusivity violated; cut the first edge
		}
	}
	hops = make([]int, g.NumEdges())
	paths = make([][]int, g.NumEdges())
	for i, e := range g.Edges {
		dt := tm[e.To] - tm[e.From]
		src := rg.FUAt(pe[e.From], tm[e.From]%ii)
		dst := rg.FUAt(pe[e.To], tm[e.To]%ii)
		path, _, ok := router.Route(occ, rgraph.Signal(e.From), src, dst, dt)
		if !ok {
			return nil, nil, 0, i
		}
		rgraph.Commit(occ, rgraph.Signal(e.From), path)
		hops[i] = len(path) - 1
		paths[i] = path
		if n := len(path) - 2; n > 0 {
			cost += n
		}
	}
	return hops, paths, cost, -1
}
