package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak flags goroutine patterns that leak under the daemon's lifecycle:
//
//   - a `go` statement whose body (a function literal, or a same-package
//     function) contains an infinite `for` loop with no exit — no return,
//     no break/goto, no panic — so the goroutine can never terminate and
//     pins its stack (and captures) for the life of the process;
//   - time.After inside a loop: each call arms a timer the runtime cannot
//     collect until it fires, so a tight loop with a long duration grows
//     unboundedly — hoist a time.Timer/Ticker out of the loop;
//   - a send on an unbuffered channel from a spawned goroutine: if the
//     receiver gives up (client hangs up, deadline fires), the sender
//     blocks forever. Buffer the channel (size 1) or select on a
//     cancellation path.
//
// Worker loops that exit via `return` (bounded index handoff, as in
// internal/parallel) or terminate by ranging over a closable channel are
// recognized and not flagged.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines without a termination path, time.After in loops, unbuffered sends from goroutines",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path, "internal") {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkGoStmts(pass, decl)
			checkUnbufferedSends(pass, decl)
		}
		checkTimeAfterInLoops(pass, f)
	}
}

// checkGoStmts inspects every `go` statement in decl and flags launched
// bodies with no termination path.
func checkGoStmts(pass *Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		what := "goroutine"
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			body = fun.Body
		default:
			if fn := pass.Pkg.calleeFunc(g.Call); fn != nil {
				if calleeDecl := pass.Pkg.declOf(fn); calleeDecl != nil {
					body = calleeDecl.Body
					what = "goroutine running " + fn.Name()
				}
			}
		}
		if body == nil {
			return true // dynamic launch target: not resolvable, stay silent
		}
		if loop := firstInescapableLoop(body); loop != nil {
			pass.Reportf(g.Pos(),
				"%s loops forever with no termination path (for loop at line %d has no return, break, or panic); add a ctx/done case or range over a closable channel",
				what, pass.Pkg.Fset.Position(loop.Pos()).Line)
		}
		return true
	})
}

// firstInescapableLoop returns the first bare `for {}` loop in body whose
// subtree (excluding nested function literals) contains no way out.
func firstInescapableLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	inspectSkipFuncLit(body, func(n ast.Node) {
		if found != nil {
			return
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return
		}
		if !hasLoopExit(loop.Body) {
			found = loop
		}
	}, func(*ast.CallExpr) {})
	return found
}

// hasLoopExit reports whether the loop body (excluding nested function
// literals) contains a statement that can leave the loop or the goroutine:
// return, break, goto, or a terminating call (panic, os.Exit,
// runtime.Goexit, log.Fatal*).
func hasLoopExit(body *ast.BlockStmt) bool {
	exit := false
	inspectSkipFuncLit(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				exit = true
			}
		}
	}, func(call *ast.CallExpr) {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			exit = true
		}
		if fn, ok := exprFuncPkgName(call); ok {
			switch fn {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				exit = true
			}
		}
	})
	return exit
}

// exprFuncPkgName renders a selector call target as "pkgIdent.Name" for the
// small syntactic allowlist above (no type info needed: these stdlib names
// are unambiguous in this codebase).
func exprFuncPkgName(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name + "." + sel.Sel.Name, true
}

// checkTimeAfterInLoops flags time.After calls lexically inside a for/range
// loop anywhere in the file (including function literals: the timer leak
// does not care which frame armed it).
func checkTimeAfterInLoops(pass *Pass, f *ast.File) {
	var loopDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch s := node.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loopDepth++
				if fs, ok := s.(*ast.ForStmt); ok {
					walk(fs.Body)
				} else {
					walk(s.(*ast.RangeStmt).Body)
				}
				loopDepth--
				return false
			case *ast.CallExpr:
				if fn := pass.Pkg.calleeFunc(s); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && fn.Name() == "After" && loopDepth > 0 {
					pass.Reportf(s.Pos(),
						"time.After inside a loop arms an uncollectable timer per iteration; hoist a time.Timer or time.Ticker out of the loop")
				}
			}
			return true
		})
	}
	walk(f)
}

// checkUnbufferedSends flags sends on function-local unbuffered channels
// performed inside goroutines launched by the same function.
func checkUnbufferedSends(pass *Pass, decl *ast.FuncDecl) {
	// Locals created as make(chan T) with no capacity argument.
	unbuffered := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if t := pass.TypeOf(rhs); t == nil {
				continue
			} else if _, isChan := t.Underlying().(*types.Chan); !isChan {
				continue
			}
			if lhs, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pass.ObjectOf(lhs); obj != nil {
					unbuffered[obj] = true
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		var selectDepth int
		var walk func(ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(node ast.Node) bool {
				switch s := node.(type) {
				case *ast.SelectStmt:
					selectDepth++
					walk(s.Body)
					selectDepth--
					return false
				case *ast.SendStmt:
					id, ok := ast.Unparen(s.Chan).(*ast.Ident)
					if !ok || !unbuffered[pass.ObjectOf(id)] || selectDepth > 0 {
						return true
					}
					pass.Reportf(s.Pos(),
						"goroutine sends on unbuffered channel %s; if the receiver stops waiting the goroutine blocks forever — buffer the channel (size 1) or select with a cancellation case",
						id.Name)
				}
				return true
			})
		}
		walk(lit.Body)
		return false
	})
}
