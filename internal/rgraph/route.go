package rgraph

import "container/heap"

// The router finds a minimum-cost path of *exactly* K hops from a producer FU
// to a consumer FU. Exactness matters for modulo scheduling correctness: an
// operation placed at absolute cycle T occupies resources at T mod II, and an
// edge u→v must deliver its value in exactly T_v − T_u cycles so that every
// firing of v combines operands of the same loop iteration. "Waiting" is
// expressed inside the resource graph itself (register self-chains, or a
// value circling through FUs), so exact-length paths exist whenever the
// architecture has buffering to spare.
//
// Cost model: entering a resource that already carries the same signal is
// free (fan-out sharing and deliberate loops), entering a fresh resource
// costs 1. Dijkstra over (resource, hops-done) states.

// Router performs exact-length routes over one resource graph. It reuses
// scratch buffers across calls; a Router is not safe for concurrent use.
type Router struct {
	g *Graph

	// MaxHops bounds route length; states beyond it are not explored.
	MaxHops int

	dist  []int32
	stamp []uint32
	prev  []int32
	epoch uint32
	pq    routeHeap
}

// NewRouter creates a router for g with the given hop bound.
func NewRouter(g *Graph, maxHops int) *Router {
	if maxHops < 1 {
		maxHops = 1
	}
	size := g.NumNodes() * (maxHops + 1)
	return &Router{
		g:       g,
		MaxHops: maxHops,
		dist:    make([]int32, size),
		stamp:   make([]uint32, size),
		prev:    make([]int32, size),
	}
}

type routeItem struct {
	state int32 // node*(MaxHops+1) + hopsDone
	cost  int32
}

type routeHeap []routeItem

func (h routeHeap) Len() int            { return len(h) }
func (h routeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h routeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x interface{}) { *h = append(*h, x.(routeItem)) }
func (h *routeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Route searches for an exact hops-length path from src to dst for signal
// sig, honouring occ. The returned path has hops+1 node IDs including src and
// dst; ok is false when no such path exists within the router's hop bound.
// The path is NOT committed; call Commit to occupy it.
func (r *Router) Route(occ *Occupancy, sig Signal, src, dst, hops int) (path []int, cost int, ok bool) {
	if hops < 1 || hops > r.MaxHops {
		return nil, 0, false
	}
	r.epoch++
	w := r.MaxHops + 1
	start := int32(src*w + 0)
	r.dist[start] = 0
	r.stamp[start] = r.epoch
	r.prev[start] = -1
	r.pq = r.pq[:0]
	r.pq = append(r.pq, routeItem{state: start, cost: 0})

	goal := int32(dst*w + hops)
	for len(r.pq) > 0 {
		it := heap.Pop(&r.pq).(routeItem)
		if r.stamp[it.state] == r.epoch && r.dist[it.state] < it.cost {
			continue // stale entry
		}
		if it.state == goal {
			return r.buildPath(goal, w), int(it.cost), true
		}
		node := int(it.state) / w
		done := int(it.state) % w
		if done >= hops {
			continue
		}
		for _, nb := range r.g.Out(node) {
			next := int(nb)
			nn := &r.g.Nodes[next]
			isDst := next == dst && done+1 == hops
			if !isDst {
				if !nn.RouteOK || !occ.CanEnter(next, sig) {
					continue
				}
			}
			step := int32(1)
			if occ.Carries(next, sig) {
				step = 0
			}
			if isDst {
				step = 0 // the consumer op already occupies its FU
			}
			ns := int32(next*w + done + 1)
			nc := it.cost + step
			if r.stamp[ns] == r.epoch && r.dist[ns] <= nc {
				continue
			}
			r.stamp[ns] = r.epoch
			r.dist[ns] = nc
			r.prev[ns] = it.state
			heap.Push(&r.pq, routeItem{state: ns, cost: nc})
		}
	}
	return nil, 0, false
}

// ShortestHops returns the minimum hop count of any admissible path from src
// to dst for sig (ignoring the exact-length constraint), or -1 if dst is
// unreachable within MaxHops. The mapper uses it to pick feasible time slots.
func (r *Router) ShortestHops(occ *Occupancy, sig Signal, src, dst int) int {
	r.epoch++
	w := r.MaxHops + 1
	// BFS over plain nodes: hop-minimal reachability. Reuse stamp[node*w].
	type qe struct{ node, d int }
	queue := []qe{{src, 0}}
	r.stamp[src*w] = r.epoch
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= r.MaxHops {
			continue
		}
		for _, nb := range r.g.Out(cur.node) {
			next := int(nb)
			if next == dst {
				return cur.d + 1
			}
			nn := &r.g.Nodes[next]
			if !nn.RouteOK || !occ.CanEnter(next, sig) {
				continue
			}
			if r.stamp[next*w] == r.epoch {
				continue
			}
			r.stamp[next*w] = r.epoch
			queue = append(queue, qe{next, cur.d + 1})
		}
	}
	return -1
}

func (r *Router) buildPath(goal int32, w int) []int {
	var rev []int
	for s := goal; s != -1; s = r.prev[s] {
		rev = append(rev, int(s)/w)
	}
	// rev is dst..src; reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Commit occupies every intermediate node of path (excluding the first and
// last entries, which are the producer and consumer FUs) with sig.
func Commit(occ *Occupancy, sig Signal, path []int) {
	for i := 1; i < len(path)-1; i++ {
		occ.Use(path[i], sig)
	}
}

// Uncommit releases a previously committed path.
func Uncommit(occ *Occupancy, sig Signal, path []int) {
	for i := 1; i < len(path)-1; i++ {
		occ.Release(path[i], sig)
	}
}
