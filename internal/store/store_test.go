package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lisa-go/lisa/internal/fault"
)

// key returns a valid content-address-shaped key derived from s.
func key(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	body := []byte(`{"result":"ok"}` + "\n")
	k := key("a")
	if err := s.Put(k, body); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, want %q", got, body)
	}
	if s.Len() != 1 || s.Bytes() != int64(len(body)) {
		t.Fatalf("census = %d entries / %d bytes, want 1 / %d", s.Len(), s.Bytes(), len(body))
	}
	if _, err := s.Get(key("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for _, k := range []string{"", "short", "../../etc/passwd", "UPPERHEX00000000", key("x") + "Z"} {
		if err := s.Put(k, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", k)
		}
		if _, err := s.Get(k); err == nil || errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want an invalid-key error", k, err)
		}
	}
}

func TestFirstWriteWins(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	k := key("a")
	if err := s.Put(k, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("re-put replaced content: %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after re-put, want 1", s.Len())
	}
}

func TestEntriesSurviveReopenByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	bodies := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := key(fmt.Sprintf("entry-%d", i))
		bodies[k] = []byte(fmt.Sprintf(`{"ii":%d,"routes":["r%d"]}`+"\n", i+1, i))
		if err := s.Put(k, bodies[k]); err != nil {
			t.Fatal(err)
		}
	}
	gen := s.Generation()

	// A second process (a restarted daemon) opens the same directory.
	s2 := mustOpen(t, dir)
	if s2.Generation() != gen+1 {
		t.Fatalf("generation = %d after reopen, want %d", s2.Generation(), gen+1)
	}
	if s2.Len() != len(bodies) {
		t.Fatalf("reopen found %d entries, want %d", s2.Len(), len(bodies))
	}
	for k, want := range bodies {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after reopen: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("entry %s not byte-identical after reopen", k)
		}
	}
}

// TestCrashRecoveryTornWrite is the crash-tolerance contract: a write
// killed mid-entry (the store.write fault site emulates the torn file a
// dying writer leaves) must be dropped by the restart scan, every
// surviving entry must come back byte-identical, and the torn key must be
// rewritable afterwards.
func TestCrashRecoveryTornWrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	good := map[string][]byte{}
	for i := 0; i < 5; i++ {
		k := key(fmt.Sprintf("good-%d", i))
		good[k] = []byte(fmt.Sprintf(`{"seed":%d,"result":{"ii":%d}}`+"\n", i, i%3+1))
		if err := s.Put(k, good[k]); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the torn-write fault for the victim key only (prob 1 fires for
	// every key, but we only write the victim while armed).
	plan, err := fault.ParsePlan("store.write=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	victim := key("victim")
	victimBody := []byte(`{"seed":99,"result":{"ii":2,"moves":1234}}` + "\n")
	if err := s.Put(victim, victimBody); err == nil {
		t.Fatal("Put under an armed store.write fault reported success")
	}
	fault.Deactivate()

	// The torn file is on disk under the final name — the worst case.
	raw, err := os.ReadFile(filepath.Join(dir, victim+entrySuffix))
	if err != nil {
		t.Fatalf("fault site left no torn file: %v", err)
	}
	if len(raw) >= len(encodeEntry(victimBody)) {
		t.Fatal("torn file is not actually truncated")
	}

	// "Restart": a fresh Open must rebuild the index with the torn entry
	// dropped and every survivor byte-identical.
	s2 := mustOpen(t, dir)
	if s2.Len() != len(good) {
		t.Fatalf("recovery scan kept %d entries, want %d", s2.Len(), len(good))
	}
	if s2.Dropped() != 1 {
		t.Fatalf("recovery scan dropped %d entries, want 1", s2.Dropped())
	}
	if _, err := os.Stat(filepath.Join(dir, victim+entrySuffix)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("torn entry file survived the recovery scan")
	}
	for k, want := range good {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("survivor %s: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("survivor %s not byte-identical after recovery", k)
		}
	}

	// The torn key heals: the next compute rewrites it.
	if err := s2.Put(victim, victimBody); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(victim)
	if err != nil || !bytes.Equal(got, victimBody) {
		t.Fatalf("rewritten victim: %q, %v", got, err)
	}
}

func TestCorruptEntryDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	k := key("a")
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip a body byte behind the store's back (bit rot).
	path := filepath.Join(dir, k+entrySuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = s.Get(k)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Get on a corrupt entry = %v, want *CorruptError", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry was not removed")
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Get = %v, want ErrNotFound after self-heal", err)
	}
}

func TestOpenSweepsTmpOrphansAndForeignJunk(t *testing.T) {
	dir := t.TempDir()
	// Crash debris and a foreign file posing as an entry.
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"orphan"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	junk := key("junk")
	if err := os.WriteFile(filepath.Join(dir, junk+entrySuffix), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1 (the junk entry)", s.Dropped())
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"orphan")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp orphan survived Open")
	}
}

func TestIndexCorruptionOnlyResetsGeneration(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	k := key("a")
	if err := s.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	if s2.Generation() != 1 {
		t.Fatalf("generation after index loss = %d, want 1", s2.Generation())
	}
	if got, err := s2.Get(k); err != nil || string(got) != "body" {
		t.Fatalf("entry lost with the index: %q, %v", got, err)
	}
}

func TestStoreReadFaultIsAMiss(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	k := key("a")
	if err := s.Put(k, []byte("body")); err != nil {
		t.Fatal(err)
	}
	plan, err := fault.ParsePlan("store.read=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()
	_, err = s.Get(k)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Site != fault.StoreRead {
		t.Fatalf("Get under store.read fault = %v, want injected error", err)
	}
	fault.Deactivate()
	if got, gerr := s.Get(k); gerr != nil || string(got) != "body" {
		t.Fatalf("entry damaged by a read fault: %q, %v", got, gerr)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key(fmt.Sprintf("k%d", i%8)) // contended: 4 writers per key
			body := []byte(fmt.Sprintf("body-%d", i%8))
			if err := s.Put(k, body); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			got, err := s.Get(k)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if string(got) != string(body) {
				t.Errorf("Get = %q, want %q", got, body)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	var want []string
	for i := 0; i < 5; i++ {
		k := key(fmt.Sprintf("k%d", i))
		if err := s.Put(k, []byte("b")); err != nil {
			t.Fatal(err)
		}
		want = append(want, k)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %d, want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys not sorted")
		}
	}
}

// TestConcurrentSameKeyPutsCoalesce pins the claim-under-lock contract: many
// goroutines Putting the same key produce exactly one census entry, every
// Put returns with the entry readable, and s.mu is never held across the
// fsync (lockorder enforces the static side; this exercises the dynamic
// one under the race detector).
func TestConcurrentSameKeyPutsCoalesce(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	k := key("hot")
	body := []byte("same bytes from every writer")
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(k, body); err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			// Put returning nil means the entry is on disk, even for
			// writers that lost the in-flight claim.
			if got, err := s.Get(k); err != nil || !bytes.Equal(got, body) {
				t.Errorf("Get after Put = %q, %v", got, err)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 1 {
		t.Fatalf("Len = %d after %d same-key Puts, want 1", s.Len(), n)
	}
	if s.Bytes() != int64(len(body)) {
		t.Fatalf("Bytes = %d, want %d (census double-counted a coalesced write)", s.Bytes(), len(body))
	}
}

// TestDecodeEntryRejectsTrailingJunkLength pins the strconv.Atoi fix:
// fmt.Sscanf("%d") accepted "12abc" as 12, letting a corrupted length
// field slip through header validation.
func TestDecodeEntryRejectsTrailingJunkLength(t *testing.T) {
	body := []byte("twelve bytes")
	sum := sha256.Sum256(body)
	raw := fmt.Sprintf("%s %s 12abc\n%s", format, hex.EncodeToString(sum[:]), body)
	if _, reason := decodeEntry([]byte(raw)); reason != "bad length field" {
		t.Fatalf("decodeEntry reason = %q, want %q", reason, "bad length field")
	}
}
