// Package suppressfix seeds the suppression-comment corner cases. Only
// okSuppressed carries a well-formed //lisa:vet-ok (analyzer + reason): its
// maprange finding is silenced and nothing else is reported for it. The
// other comments are each malformed in one way — reason-less, unknown
// analyzer, wrong analyzer, legacy //lisa:nondet-ok — so both the
// suppression diagnostic and the undiminished maprange finding appear.
package suppressfix

// okSuppressed is the clean baseline: a well-formed suppression silences
// the finding on the line below it.
func okSuppressed(m map[int]int) int {
	n := 0
	//lisa:vet-ok maprange commutative sum; iteration order cannot change the result
	for _, v := range m {
		n += v
	}
	return n
}

// noReason names the analyzer but gives no justification: the suppression
// is reported and does not silence the finding.
func noReason(m map[int]int) int {
	n := 0
	//lisa:vet-ok maprange
	for range m {
		n++
	}
	return n
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer(m map[int]int) int {
	n := 0
	//lisa:vet-ok mapranje typo in the analyzer name
	for range m {
		n++
	}
	return n
}

// wrongAnalyzer is well-formed but scoped to a different analyzer, so the
// maprange finding still fires (and the comment itself is fine).
func wrongAnalyzer(m map[int]int) int {
	n := 0
	//lisa:vet-ok wallclock suppresses the wrong analyzer
	for range m {
		n++
	}
	return n
}

// legacyForm still uses the pre-v2 marker: reported for migration, no
// longer silences anything.
func legacyForm(m map[int]int) int {
	n := 0
	//lisa:nondet-ok old-style comment
	for range m {
		n++
	}
	return n
}
