package mapper

import (
	"fmt"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Verify independently checks that a successful Result is a legal mapping of
// g onto ar: every node sits on an op-compatible FU, no two nodes share a
// modulo FU slot, every edge's schedule times are causally ordered, and the
// spatial displacement of each edge is achievable within its cycle budget.
// It rebuilds occupancy from scratch, so it catches bookkeeping bugs in the
// annealer rather than trusting its internal state.
func Verify(ar arch.Arch, g *dfg.Graph, r *Result) error {
	if !r.OK {
		return fmt.Errorf("mapper: result not OK")
	}
	if r.II < 1 || r.II > ar.MaxII() {
		return fmt.Errorf("mapper: II %d out of range", r.II)
	}
	if len(r.PE) != g.NumNodes() || len(r.Time) != g.NumNodes() {
		return fmt.Errorf("mapper: placement arrays sized %d/%d, want %d",
			len(r.PE), len(r.Time), g.NumNodes())
	}
	if len(r.EdgeHops) != g.NumEdges() {
		return fmt.Errorf("mapper: EdgeHops sized %d, want %d", len(r.EdgeHops), g.NumEdges())
	}

	rg := ar.BuildRGraph(r.II)
	occ := rgraph.NewOccupancy(rg)
	for v := range g.Nodes {
		pe, tm := r.PE[v], r.Time[v]
		if pe < 0 || pe >= ar.NumPEs() || tm < 0 {
			return fmt.Errorf("mapper: node %d has invalid slot (%d,%d)", v, pe, tm)
		}
		if !ar.SupportsOp(pe, g.Nodes[v].Op) {
			return fmt.Errorf("mapper: node %d op %s not supported on PE %d",
				v, g.Nodes[v].Op, pe)
		}
		fu := rg.FUAt(pe, tm%r.II)
		if !rg.Nodes[fu].AllowsOp(uint8(g.Nodes[v].Op)) {
			return fmt.Errorf("mapper: node %d op %s not allowed on FU (%d,%d)",
				v, g.Nodes[v].Op, pe, tm%r.II)
		}
		if !occ.PlaceOp(fu, v) {
			return fmt.Errorf("mapper: modulo FU conflict at (%d,%d)", pe, tm%r.II)
		}
	}
	for i, e := range g.Edges {
		dt := r.Time[e.To] - r.Time[e.From]
		if dt < 1 {
			return fmt.Errorf("mapper: edge %d (%d->%d) violates causality: dt=%d",
				i, e.From, e.To, dt)
		}
		if r.EdgeHops[i] != dt {
			return fmt.Errorf("mapper: edge %d route length %d != schedule delta %d",
				i, r.EdgeHops[i], dt)
		}
		if sd := ar.SpatialDistance(r.PE[e.From], r.PE[e.To]); sd > dt {
			return fmt.Errorf("mapper: edge %d spans distance %d in %d cycles",
				i, sd, dt)
		}
	}
	return nil
}
