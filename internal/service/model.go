package service

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/registry"
)

// Model distribution: the warm-model shipping layer. A fresh replica that
// has no model for a requested architecture asks the ring for one before
// it falls back to training — the fleet's knowledge travels to new nodes
// instead of being recomputed on each of them. The serving side is
// GET /v1/model/{arch} (handleModel); the fetching side is fetchModel,
// wired into the registry's acquisition ladder by New.

// modelKey is the ring key for an architecture's model. Every node derives
// the same key, so the fleet agrees on which peer is the model's home
// (where label traffic for the arch routes, hence where a trained model
// most likely lives).
func modelKey(name string) string { return "model/" + name }

// handleModel serves this node's resolved model for one architecture as
// raw gnn.Save bytes, self-described by SHA-256 and length headers
// (mirroring the store's entry-header format) so the fetching peer can
// verify the payload before parsing it. Deliberately read-only: a node
// with no resolved model answers 404 rather than training one — a model
// fetch must never cascade into training on the serving peer. It also
// answers while draining: shipping an already-resolved model is how a
// restarting fleet rewarms, exactly when drains happen.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/model"
	if r.Method != http.MethodGet {
		s.fail(w, route, http.StatusMethodNotAllowed, "use GET")
		return
	}
	name, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/v1/model/"))
	if err != nil || name == "" || strings.Contains(name, "/") {
		s.fail(w, route, http.StatusBadRequest, "use GET /v1/model/{arch}")
		return
	}
	if _, ok := arch.ByName(name); !ok {
		s.fail(w, route, http.StatusNotFound, "unknown arch %q (have %v)", name, arch.Names())
		return
	}
	body, err := s.reg.ModelBytes(name)
	if err != nil {
		s.fail(w, route, http.StatusNotFound, "%v", err)
		return
	}
	s.metrics.Request(route, http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.ModelSHAHeader, cluster.PayloadSHA(body))
	w.Header().Set(cluster.ModelLenHeader, strconv.Itoa(len(body)))
	_, _ = w.Write(body) // client disconnect mid-ship; the fetcher's checksum rejects the torn copy
}

// fetchModel is the registry.FetchFunc the daemon runs with: try the ring
// candidates for name's model — owner first, then successors — and install
// the first payload that survives validation. Error classification drives
// the registry's caching: transport-class failures (peer down, nothing
// trained yet, an armed model.fetch fault) try the next candidate and are
// returned unmarked, so the next request simply retries against a
// possibly-healed ring; a payload that fails gnn.Load or names the wrong
// architecture is returned registry.Permanent immediately — every replica
// of that model would serve the same bytes, so walking more candidates or
// retrying buys nothing until an operator reloads.
func (s *Server) fetchModel(name string) (*gnn.Model, string, error) {
	cl := s.cfg.Cluster
	candidates := cl.Successors(modelKey(name))
	if len(candidates) == 0 {
		return nil, "", errors.New("service: single-node ring; no peer to fetch a model from")
	}
	var errs []error
	for _, peer := range candidates {
		raw, err := cl.FetchModel(peer, name)
		if err != nil {
			var ve *cluster.ValidationError
			if errors.As(err, &ve) {
				return nil, "", registry.Permanent(err)
			}
			errs = append(errs, err)
			continue
		}
		m, err := gnn.Load(bytes.NewReader(raw), gnn.NewModel(rand.New(rand.NewSource(1)), ""))
		if err != nil {
			// Wire checksum passed but the envelope did not parse or
			// validate: the peer's model is corrupt or version-skewed
			// (e.g. scale vectors for a different attribute schema).
			return nil, "", registry.Permanent(&cluster.ValidationError{Peer: peer, Err: err})
		}
		if m.ArchName != name {
			return nil, "", registry.Permanent(&cluster.ValidationError{Peer: peer,
				Err: fmt.Errorf("model is for arch %q, requested %q", m.ArchName, name)})
		}
		return m, peer, nil
	}
	return nil, "", errors.Join(errs...)
}
