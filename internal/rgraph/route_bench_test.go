package rgraph

import (
	"math/rand"
	"testing"
)

// benchQueries builds one deterministic mixed workload (successes, congestion
// failures, waiting routes) shared by both router benchmarks so their
// numbers compare like for like.
type benchQuery struct {
	occ  *Occupancy
	sig  Signal
	src  int
	dst  int
	hops int
}

func benchQueries(g *Graph, count int) []benchQuery {
	rng := rand.New(rand.NewSource(1))
	fus := g.FUs()
	qs := make([]benchQuery, count)
	for i := range qs {
		qs[i] = benchQuery{
			occ:  randomOccupancy(g, rng, 0.3),
			sig:  Signal(rng.Intn(4)),
			src:  fus[rng.Intn(len(fus))],
			dst:  fus[rng.Intn(len(fus))],
			hops: 1 + rng.Intn(10),
		}
	}
	return qs
}

// BenchmarkRoute01BFS measures the deque-based 0-1 BFS router (the production
// path). Compare against BenchmarkRouteDijkstra, the retired container/heap
// implementation it replaced.
func BenchmarkRoute01BFS(b *testing.B) {
	g := lineGraph(8, 4)
	r := NewRouter(g, 24)
	qs := benchQueries(g, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r.Route(q.occ, q.sig, q.src, q.dst, q.hops)
	}
}

// BenchmarkRouteDijkstra measures the reference heap Dijkstra on the
// identical workload.
func BenchmarkRouteDijkstra(b *testing.B) {
	g := lineGraph(8, 4)
	r := NewRouter(g, 24)
	qs := benchQueries(g, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r.routeDijkstra(q.occ, q.sig, q.src, q.dst, q.hops)
	}
}

// BenchmarkShortestHops measures the scratch-reusing reachability BFS the
// mapper calls when scanning feasible time slots.
func BenchmarkShortestHops(b *testing.B) {
	g := lineGraph(8, 4)
	r := NewRouter(g, 24)
	qs := benchQueries(g, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		r.ShortestHops(q.occ, q.sig, q.src, q.dst)
	}
}
