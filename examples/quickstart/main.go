// Quickstart: map the gemm kernel onto the 4×4 baseline CGRA with the
// label-aware mapper, verify the mapping, and print the schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lisa "github.com/lisa-go/lisa"
)

func main() {
	// Pick an accelerator and create a framework instance for it. An
	// untrained framework already maps with the paper's label
	// initialization; Train (see examples/newaccel) sharpens the labels.
	fw := lisa.New(lisa.CGRA4x4())
	fw.MapOpts.Seed = 42

	g, err := lisa.Kernel("gemm")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mapping", g.Summary())

	res, err := fw.Map(g)
	if err != nil {
		log.Fatal(err)
	}
	if !res.OK {
		log.Fatalf("no mapping found (tried IIs %v)", res.TriedIIs)
	}
	if err := fw.Verify(g, &res); err != nil {
		log.Fatalf("mapping failed independent verification: %v", err)
	}

	fmt.Print(lisa.Describe(fw.Arch, g, &res))
	fmt.Printf("\nThe loop kernel initiates a new iteration every %d cycles (II=%d).\n",
		res.II, res.II)
}
