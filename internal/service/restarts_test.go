package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// /v1/map with "restarts": the portfolio width is admission-capped, joins
// the cache key (K=1 and "unset" share the single-chain entry, K>1 does
// not), and portfolio responses carry the deterministic portfolio block.
func TestMapRestartsCapAndCacheKey(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	// Unset and an explicit K=1 are the same computation — the second
	// request must hit the entry the first one filled.
	base := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}`)
	if base.Code != http.StatusOK {
		t.Fatalf("base status %d: %s", base.Code, base.Body)
	}
	k1 := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7,"restarts":1}`)
	if k1.Code != http.StatusOK {
		t.Fatalf("restarts=1 status %d: %s", k1.Code, k1.Body)
	}
	if got := k1.Header().Get("X-Lisa-Cache"); got != "hit" {
		t.Fatalf("restarts=1 did not share the single-chain cache entry: X-Lisa-Cache=%q", got)
	}
	if !bytes.Equal(base.Body.Bytes(), k1.Body.Bytes()) {
		t.Fatal("restarts=1 body differs from the unset-restarts body")
	}

	// K=4 is a different result: a fresh key, a portfolio block on the
	// wire, and byte-identical re-serving from cache.
	req4 := `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7,"restarts":4}`
	miss := postMap(t, h, req4)
	if miss.Code != http.StatusOK {
		t.Fatalf("restarts=4 status %d: %s", miss.Code, miss.Body)
	}
	if got := miss.Header().Get("X-Lisa-Cache"); got != "miss" {
		t.Fatalf("restarts=4 reused the K=1 cache entry: X-Lisa-Cache=%q", got)
	}
	var resp MapResponse
	if err := json.Unmarshal(miss.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	p := resp.Result.Portfolio
	if p == nil || p.Restarts != 4 {
		t.Fatalf("restarts=4 response has no 4-chain portfolio block: %+v", p)
	}
	if resp.Result.OK && resp.Result.II > 0 {
		var baseResp MapResponse
		if err := json.Unmarshal(base.Body.Bytes(), &baseResp); err != nil {
			t.Fatal(err)
		}
		if resp.Result.II > baseResp.Result.II {
			t.Fatalf("portfolio II=%d worse than single-chain II=%d", resp.Result.II, baseResp.Result.II)
		}
	}
	hit := postMap(t, h, req4)
	if got := hit.Header().Get("X-Lisa-Cache"); got != "hit" {
		t.Fatalf("repeated restarts=4 request missed: X-Lisa-Cache=%q", got)
	}
	if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatal("cached portfolio response differs from the original miss")
	}

	// Admission: the default cap is 8 chains; beyond it (or negative) is a
	// structured 400, not a queued multi-chain run.
	for _, body := range []string{
		`{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","restarts":9}`,
		`{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","restarts":-1}`,
	} {
		w := postMap(t, h, body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("bad restarts %s: status %d, want 400", body, w.Code)
		}
		if !strings.Contains(w.Body.String(), "restarts") {
			t.Fatalf("restarts rejection does not name the field: %s", w.Body)
		}
	}

	// A raised cap admits wider portfolios.
	wide := testServer(t, Config{MaxRestarts: 16})
	w := postMap(t, wide.Handler(), `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","restarts":9}`)
	if w.Code != http.StatusOK {
		t.Fatalf("restarts=9 under MaxRestarts=16: status %d: %s", w.Code, w.Body)
	}
}
