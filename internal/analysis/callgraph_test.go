package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// loadCGSource type-checks one source string as a package and returns it.
func loadCGSource(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir, "example.com/cgfix", nil)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	return pkg
}

// fnNode looks up the graph node for the function or method named name.
func fnNode(t *testing.T, pkg *Package, name string) *cgNode {
	t.Helper()
	g := pkg.CallGraph()
	for fn, n := range g.nodes {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not in call graph", name)
	return nil
}

// edgeNames renders a node's outgoing edges as callee names, with a
// "?"-suffix on dynamic (interface over-approximated) edges.
func edgeNames(n *cgNode) map[string]int {
	out := map[string]int{}
	for _, e := range n.out {
		name := e.callee.fn.Name()
		if e.dynamic {
			name += "?"
		}
		out[name]++
	}
	return out
}

func TestCallGraphStaticAndRecursive(t *testing.T) {
	pkg := loadCGSource(t, `package cgfix

func entry() {
	helper()
	entry() // direct recursion must not loop graph construction
}

func helper() {
	mutual()
}

func mutual() {
	helper() // mutual recursion
}
`)
	entry := edgeNames(fnNode(t, pkg, "entry"))
	if entry["helper"] != 1 || entry["entry"] != 1 {
		t.Errorf("entry edges = %v, want helper and entry once each", entry)
	}
	if got := edgeNames(fnNode(t, pkg, "mutual")); got["helper"] != 1 {
		t.Errorf("mutual edges = %v, want helper", got)
	}
}

// TestCallGraphInterfaceDispatch checks the documented over-approximation:
// a call through an interface method fans out to every same-name,
// same-signature method in the package, marked dynamic, and skips methods
// whose signature differs.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	pkg := loadCGSource(t, `package cgfix

type runner interface{ Run(int) int }

type a struct{}

func (a) Run(x int) int { return x }

type b struct{}

func (b) Run(x int) int { return 2 * x }

type other struct{}

// Run on other has a different signature: not a candidate.
func (other) Run(x string) string { return x }

func dispatch(r runner) int {
	return r.Run(1)
}

func concrete() int {
	var v a
	return v.Run(3) // concrete method call: one static edge
}
`)
	got := edgeNames(fnNode(t, pkg, "dispatch"))
	if len(got) != 1 || got["Run?"] != 2 {
		t.Errorf("dispatch edges = %v, want exactly the two dynamic Run implementations", got)
	}
	cgot := edgeNames(fnNode(t, pkg, "concrete"))
	if len(cgot) != 1 || cgot["Run"] != 1 {
		t.Errorf("concrete edges = %v, want one static Run edge", cgot)
	}
}

// TestCallGraphUnresolvedValues checks the documented blind spots: calls
// through function values and method values produce no edges, and calls
// inside function literals are attributed to nobody.
func TestCallGraphUnresolvedValues(t *testing.T) {
	pkg := loadCGSource(t, `package cgfix

type s struct{}

func (s) m() {}

func target() {}

func viaValues() {
	f := target
	f() // function value: unresolved
	var v s
	g := v.m
	g() // method value: unresolved
}

func viaLiteral() {
	run := func() {
		target() // inside a literal: attributed to nobody
	}
	run()
}
`)
	if got := edgeNames(fnNode(t, pkg, "viaValues")); len(got) != 0 {
		t.Errorf("viaValues edges = %v, want none (function/method values are unresolved)", got)
	}
	if got := edgeNames(fnNode(t, pkg, "viaLiteral")); len(got) != 0 {
		t.Errorf("viaLiteral edges = %v, want none (literal bodies are excluded)", got)
	}
}

// TestCallGraphMemoized checks CallGraph builds once per package.
func TestCallGraphMemoized(t *testing.T) {
	pkg := loadCGSource(t, `package cgfix

func f() {}
`)
	if g1, g2 := pkg.CallGraph(), pkg.CallGraph(); g1 != g2 {
		t.Error("CallGraph rebuilt on second call; want the memoized instance")
	}
	var nilGraph *callGraph
	if n := nilGraph.node(nil); n != nil {
		t.Errorf("nil graph node lookup = %v, want nil", n)
	}
}
