package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the static, per-package call graph shared by the
// interprocedural analyzers (lockorder, goleak, hotalloc). It resolves what
// go/types can prove and over-approximates the rest:
//
//   - Direct calls (`f()`, `pkg.F()`) and concrete method calls (`x.M()`)
//     resolve to their *types.Func; an edge is added when the callee is
//     declared in the package under analysis.
//   - A call through an interface method is over-approximated: it gets a
//     Dynamic edge to every method declared in this package with the same
//     name and an identical signature. Analyzers that must not follow
//     spurious edges (lockorder) skip Dynamic edges; analyzers that want
//     coverage (hotalloc) follow them.
//   - Calls through function values (method values, stored closures,
//     callbacks) are not resolved: the graph stays silent rather than
//     guessing. This is the documented blind spot — hot-path and lock
//     discipline in this repo flow through named functions.
//
// Calls inside nested function literals are attributed to nobody: a closure
// body may run on a different goroutine or after the enclosing frame
// returned, so charging its calls to the enclosing function would be wrong
// for lock tracking. Analyzers that care about closure bodies (goleak,
// hotalloc) walk the literals directly.

// cgNode is one declared function or method in the package.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	out  []cgEdge
}

// cgEdge is one call site from a node to a same-package callee.
type cgEdge struct {
	callee  *cgNode
	call    *ast.CallExpr
	dynamic bool // interface-dispatch over-approximation, not a proven call
}

// callGraph indexes the package's declared functions and their edges.
type callGraph struct {
	nodes map[*types.Func]*cgNode
}

// node returns the graph node for fn, or nil if fn is not declared (with a
// body) in this package.
func (g *callGraph) node(fn *types.Func) *cgNode {
	if g == nil || fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// CallGraph builds (once) and returns the package's call graph.
func (pkg *Package) CallGraph() *callGraph {
	if pkg.cg != nil {
		return pkg.cg
	}
	g := &callGraph{nodes: map[*types.Func]*cgNode{}}

	// Pass 1: one node per declared function/method with a body.
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			g.nodes[fn] = &cgNode{fn: fn, decl: decl}
		}
	}

	// Pass 2: edges. Function literal bodies are skipped (see file comment).
	for _, n := range g.nodes {
		node := n
		inspectSkipFuncLit(node.decl.Body, func(ast.Node) {}, func(call *ast.CallExpr) {
			callees, dynamic := pkg.calleesOf(call)
			for _, callee := range callees {
				if target := g.nodes[callee]; target != nil {
					node.out = append(node.out, cgEdge{callee: target, call: call, dynamic: dynamic})
				}
			}
		})
	}
	pkg.cg = g
	return g
}

// calleesOf resolves the possible callees of call. For a statically known
// function or concrete method it returns exactly that function. For a call
// through an interface method it returns every same-name, same-signature
// method in the package and dynamic=true. Unresolvable calls (function
// values, builtins) return nothing.
func (pkg *Package) calleesOf(call *ast.CallExpr) (callees []*types.Func, dynamic bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.ObjectOf(fun).(*types.Func); ok {
			return []*types.Func{fn}, false
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.ObjectOf(fun.Sel).(*types.Func)
		if !ok {
			return nil, false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				return pkg.implementersOf(fn), true
			}
		}
		return []*types.Func{fn}, false
	}
	return nil, false
}

// implementersOf lists the package's declared methods that could satisfy a
// dispatch through interface method m: same name, identical signature
// (ignoring the receiver).
func (pkg *Package) implementersOf(m *types.Func) []*types.Func {
	msig, ok := m.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Func
	for fn := range pkg.cgCandidates() {
		if fn.Name() != m.Name() {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if sameSignatureIgnoringRecv(sig, msig) {
			out = append(out, fn)
		}
	}
	return out
}

// cgCandidates yields the declared functions known so far. During graph
// construction pass 2 the node map is already complete, so this is simply
// the node set.
func (pkg *Package) cgCandidates() map[*types.Func]*cgNode {
	if pkg.cg != nil {
		return pkg.cg.nodes
	}
	// Called only from within CallGraph construction, where the map being
	// filled is not yet published; rebuild the declared set from the AST.
	out := map[*types.Func]*cgNode{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if decl, ok := d.(*ast.FuncDecl); ok && decl.Body != nil {
				if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
					out[fn] = nil
				}
			}
		}
	}
	return out
}

// sameSignatureIgnoringRecv reports whether two method signatures agree on
// parameters and results (receivers excluded).
func sameSignatureIgnoringRecv(a, b *types.Signature) bool {
	return types.Identical(
		types.NewSignatureType(nil, nil, nil, a.Params(), a.Results(), a.Variadic()),
		types.NewSignatureType(nil, nil, nil, b.Params(), b.Results(), b.Variadic()),
	)
}

// inspectSkipFuncLit walks n without descending into *ast.FuncLit bodies,
// invoking visit on every node and onCall on every call expression.
func inspectSkipFuncLit(n ast.Node, visit func(ast.Node), onCall func(*ast.CallExpr)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if node == nil {
			return true
		}
		visit(node)
		if call, ok := node.(*ast.CallExpr); ok {
			onCall(call)
		}
		return true
	})
}

// declOf returns the AST declaration of fn if it is declared in this
// package, else nil.
func (pkg *Package) declOf(fn *types.Func) *ast.FuncDecl {
	if n := pkg.CallGraph().node(fn); n != nil {
		return n.decl
	}
	return nil
}
