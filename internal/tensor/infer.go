// Inference-only execution mode. The taped engine in tensor.go allocates a
// Grad buffer, a prev list and a backward closure for every intermediate the
// moment any input is trainable — the right trade for training, pure
// overhead for serving, where trained weights carry requiresGrad but nobody
// ever calls Backward. Infer is the no-tape fast path: the same forward
// math, bit-for-bit, evaluated into a reusable arena.
//
// Bit-identity with the taped ops is a hard contract (the gnn package's
// differential tests enforce it): every Infer op performs the same float64
// operations in the same order as its taped counterpart, so a served
// prediction is byte-identical to what the training-time forward pass would
// have produced. In particular InferMatMul accumulates over k in ascending
// order with the same skip-zero rule as MatMul — the transposed layout
// changes the memory access pattern, never the arithmetic sequence.
package tensor

import "fmt"

// inferSlabFloats sizes the arena's float64 slabs (128 KiB each).
const inferSlabFloats = 16384

// inferSlabHdrs sizes the arena's Tensor-header slabs.
const inferSlabHdrs = 256

// mmBlock is the output-column block width of the transposed matmul: one
// block of B-transposed rows stays hot in cache while every A row streams
// past it. Blocking never splits the k (reduction) dimension, so the
// accumulation order — and therefore the result bits — match the taped
// MatMul exactly.
const mmBlock = 48

// Infer is an inference-only evaluator: an arena of matrices plus no-tape
// implementations of the forward operations. Tensors returned by its
// methods carry no Grad, no tape, and borrow memory owned by the arena —
// they are valid until the next Reset. An Infer is not safe for concurrent
// use; pool instances across goroutines instead (sync.Pool is a good fit:
// after a few calls every allocation is a slab reuse).
type Infer struct {
	slabs [][]float64
	slab  int // index of the slab currently being carved
	off   int // carve offset within slabs[slab]

	hdrs   [][]Tensor
	hdrCur int
	hdrOff int
}

// NewInfer returns an empty arena; slabs are allocated on first use and
// kept across Reset.
func NewInfer() *Infer { return &Infer{} }

// Reset reclaims every tensor handed out since the previous Reset. The
// memory is retained for reuse; tensors obtained earlier must no longer be
// read.
func (in *Infer) Reset() {
	in.slab, in.off = 0, 0
	in.hdrCur, in.hdrOff = 0, 0
}

// alloc carves a zeroed length-n block out of the arena. Slabs are never
// reallocated (only appended), so previously returned slices stay valid
// until Reset.
func (in *Infer) alloc(n int) []float64 {
	for {
		if in.slab < len(in.slabs) {
			s := in.slabs[in.slab]
			if in.off+n <= len(s) {
				out := s[in.off : in.off+n : in.off+n]
				in.off += n
				for i := range out {
					out[i] = 0
				}
				return out
			}
			in.slab++
			in.off = 0
			continue
		}
		size := inferSlabFloats
		if n > size {
			size = n
		}
		in.slabs = append(in.slabs, make([]float64, size))
	}
}

// hdr carves one Tensor header. Header slabs are append-only for the same
// pointer-stability reason as data slabs.
func (in *Infer) hdr() *Tensor {
	if in.hdrCur == len(in.hdrs) {
		in.hdrs = append(in.hdrs, make([]Tensor, inferSlabHdrs))
	}
	t := &in.hdrs[in.hdrCur][in.hdrOff]
	in.hdrOff++
	if in.hdrOff == len(in.hdrs[in.hdrCur]) {
		in.hdrCur++
		in.hdrOff = 0
	}
	return t
}

// NewMat allocates a zeroed rows×cols matrix in the arena. The result never
// requires gradients; feeding it to the taped ops is allowed (it is a plain
// constant there).
//
//lisa:hotpath arena carve called by every fused op
func (in *Infer) NewMat(rows, cols int) *Tensor {
	t := in.hdr()
	*t = Tensor{Rows: rows, Cols: cols, Data: in.alloc(rows * cols)}
	return t
}

// MatMul returns a @ b without touching the tape. The inner product runs
// over a transposed copy of b in column blocks — both operands stream
// linearly — while accumulating exactly like the taped MatMul: ascending k,
// zero entries of a skipped.
//
//lisa:hotpath per-layer matmul of every served prediction; BENCH_gnn.json gates allocs/op
func (in *Infer) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape (%dx%d)@(%dx%d)", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	bt := in.alloc(b.Rows * b.Cols)
	for k := 0; k < b.Rows; k++ {
		row := b.Data[k*b.Cols : (k+1)*b.Cols]
		for j, v := range row {
			bt[j*b.Rows+k] = v
		}
	}
	out := in.NewMat(a.Rows, b.Cols)
	for jb := 0; jb < b.Cols; jb += mmBlock {
		je := jb + mmBlock
		if je > b.Cols {
			je = b.Cols
		}
		for i := 0; i < a.Rows; i++ {
			arow := a.Data[i*a.Cols : (i+1)*a.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := jb; j < je; j++ {
				brow := bt[j*b.Rows : (j+1)*b.Rows]
				acc := 0.0
				for k, av := range arow {
					if av == 0 {
						continue
					}
					acc += av * brow[k]
				}
				orow[j] = acc
			}
		}
	}
	return out
}

// Add returns a + b (same shape), no tape.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) Add(a, b *Tensor) *Tensor {
	checkSameShape("add", a, b)
	out := in.NewMat(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Mul returns the element-wise product a ⊙ b, no tape.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) Mul(a, b *Tensor) *Tensor {
	checkSameShape("mul", a, b)
	out := in.NewMat(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// ReLU returns max(x, 0) element-wise, no tape.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) ReLU(x *Tensor) *Tensor {
	out := in.NewMat(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ConcatCols concatenates tensors with equal row counts along columns, no
// tape.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) ConcatCols(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: concat of nothing")
	}
	rows := parts[0].Rows
	cols := 0
	for _, p := range parts {
		if p.Rows != rows {
			panic("tensor: concat row mismatch")
		}
		cols += p.Cols
	}
	out := in.NewMat(rows, cols)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+p.Cols], p.Data[i*p.Cols:(i+1)*p.Cols])
		}
		off += p.Cols
	}
	return out
}

// Reciprocal mirrors the taped Reciprocal: entries with magnitude below eps
// yield exactly 1.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) Reciprocal(x *Tensor, eps float64) *Tensor {
	out := in.NewMat(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v < eps && v > -eps {
			out.Data[i] = 1
		} else {
			out.Data[i] = 1 / v
		}
	}
	return out
}

// Aggregate pools rows of x over index sets exactly like the taped
// Aggregate (empty sets yield zero rows; mean divides after summing in set
// order), without recording arg-extremum selections.
//
//lisa:hotpath fused-inference op; must stay arena-only
func (in *Infer) Aggregate(x *Tensor, sets [][]int, kind AggKind) *Tensor {
	cols := x.Cols
	out := in.NewMat(len(sets), cols)
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		orow := out.Data[i*cols : (i+1)*cols]
		for j := 0; j < cols; j++ {
			switch kind {
			case AggMean, AggSum:
				sum := 0.0
				for _, s := range set {
					sum += x.Data[s*cols+j]
				}
				if kind == AggMean {
					sum /= float64(len(set))
				}
				orow[j] = sum
			case AggMax:
				best := x.Data[set[0]*cols+j]
				for _, s := range set[1:] {
					if v := x.Data[s*cols+j]; v > best {
						best = v
					}
				}
				orow[j] = best
			case AggMin:
				best := x.Data[set[0]*cols+j]
				for _, s := range set[1:] {
					if v := x.Data[s*cols+j]; v < best {
						best = v
					}
				}
				orow[j] = best
			}
		}
	}
	return out
}
