package dfg

import (
	"strings"
	"testing"
)

// Every way an untrusted DFG body can be malformed must come back as a
// classified DefectError, never a panic.
func TestReadJSONClassifiesDefects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want Defect
	}{
		{"malformed json", `{not json`, DefectBadJSON},
		{"unknown op", `{"name":"g","nodes":[{"name":"a","op":"frobnicate"}],"edges":[]}`, DefectUnknownOp},
		{"duplicate name", `{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"a","op":"mul"}],"edges":[[0,1]]}`, DefectDuplicateName},
		{"edge out of range", `{"name":"g","nodes":[{"name":"a","op":"add"}],"edges":[[0,7]]}`, DefectDanglingEdge},
		{"negative edge endpoint", `{"name":"g","nodes":[{"name":"a","op":"add"}],"edges":[[-1,0]]}`, DefectDanglingEdge},
		{"self loop", `{"name":"g","nodes":[{"name":"a","op":"add"}],"edges":[[0,0]]}`, DefectSelfLoop},
		{"cycle", `{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[[0,1],[1,0]]}`, DefectCycle},
		{"disconnected", `{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[]}`, DefectNotConnected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := ReadJSON(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("ReadJSON accepted %s (graph %v)", tc.name, g.Name)
			}
			de, ok := AsDefect(err)
			if !ok {
				t.Fatalf("error is not a DefectError: %v", err)
			}
			if de.Kind != tc.want {
				t.Fatalf("defect = %q (%v), want %q", de.Kind, err, tc.want)
			}
		})
	}
}

func TestReadJSONAcceptsValidGraph(t *testing.T) {
	body := `{"name":"g","nodes":[{"name":"a","op":"load"},{"name":"b","op":"add"}],"edges":[[0,1]]}`
	g, err := ReadJSON(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("round trip lost structure: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestValidateClassifiesHandBuiltDefects(t *testing.T) {
	// Struct-literal graphs bypass AddNode/AddEdge invariants; Validate must
	// still classify what it finds.
	dup := &Graph{Name: "dup", Nodes: []Node{{ID: 0, Name: "x"}, {ID: 1, Name: "x"}}}
	if de, ok := AsDefect(dup.Validate()); !ok || de.Kind != DefectDuplicateName {
		t.Fatalf("duplicate-name graph: %v", dup.Validate())
	}
	badID := &Graph{Name: "bad", Nodes: []Node{{ID: 5, Name: "x"}}}
	if de, ok := AsDefect(badID.Validate()); !ok || de.Kind != DefectBadID {
		t.Fatalf("bad-id graph: %v", badID.Validate())
	}
}

func TestCheckSize(t *testing.T) {
	g := New("g")
	a := g.AddNode("a", OpLoad)
	b := g.AddNode("b", OpAdd)
	g.AddEdge(a, b)

	if err := g.CheckSize(0, 0); err != nil {
		t.Fatalf("uncapped CheckSize: %v", err)
	}
	if err := g.CheckSize(2, 1); err != nil {
		t.Fatalf("at-limit CheckSize: %v", err)
	}
	if de, ok := AsDefect(g.CheckSize(1, 0)); !ok || de.Kind != DefectTooLarge {
		t.Fatalf("node cap: %v", g.CheckSize(1, 0))
	}
	c := g.AddNode("c", OpStore)
	g.AddEdge(b, c)
	if de, ok := AsDefect(g.CheckSize(0, 1)); !ok || de.Kind != DefectTooLarge {
		t.Fatalf("edge cap: %v", g.CheckSize(0, 1))
	}
}
