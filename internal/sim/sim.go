// Package sim is a functional, cycle-accurate simulator for mapped kernels.
// It executes a mapper.Result the way the accelerator would — values leave
// their producer FU, advance one resource-graph hop per cycle along the
// committed route, and arrive at the consumer exactly when it fires — for a
// number of pipelined loop iterations, then checks the observable output
// (the store stream) against a direct evaluation of the DFG.
//
// This is the end-to-end referee for the whole mapping stack: a mapping that
// passes mapper.Verify has consistent *shapes*; a mapping that passes
// sim.Run provably computes the right values under modulo-scheduled overlap
// of iterations, with every resource's capacity respected at every cycle.
package sim

import (
	"fmt"
	"sort"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Value is the simulated machine word.
type Value int64

// StoreEvent is one observable output: a store node firing.
type StoreEvent struct {
	Node      int
	Iteration int
	Cycle     int // absolute cycle of the firing
	Addr      Value
	Value     Value
}

// Trace is the output of a simulation run.
type Trace struct {
	Iterations int
	II         int
	// Stores is the observable output stream, ordered by (cycle, node).
	Stores []StoreEvent
	// TotalCycles is the cycle at which the last event of the last
	// iteration completes.
	TotalCycles int
	// PeakResourceUse is the maximum number of distinct signals observed on
	// any resource in any cycle (must be within capacity).
	PeakResourceUse int
}

// memRead models the scratchpad: a deterministic value per address, disjoint
// from anything the kernel computes (loads never alias stores — the kernels'
// accumulators are modelled as read-modify-write of independent addresses
// per iteration, which is how a software pipeline with II-spaced iterations
// behaves for the PolyBench access patterns).
func memRead(addr Value) Value {
	x := uint64(addr) * 0x9e3779b97f4a7c15
	x ^= x >> 33
	return Value(x&0xffff) - 0x8000
}

// constValue gives every constant node a distinct deterministic value.
func constValue(node int, it int) Value {
	// Loop-invariant: independent of the iteration.
	_ = it
	return Value(3 + 7*node)
}

// fold mixes an arbitrary operand list deterministically; it gives ops with
// nonstandard arity (random training DFGs attach any number of inputs) a
// well-defined meaning so the scheduled and reference executions can still be
// compared value-for-value.
func fold(node int, args []Value) Value {
	acc := Value(0x5bd1e995) ^ Value(node)
	for _, a := range args {
		acc = acc*31 + a
	}
	return acc
}

// wantArity returns the canonical operand count of an op, or -1 for ops that
// accept any operand list (nop).
func wantArity(op dfg.OpKind) int {
	switch op {
	case dfg.OpConst:
		return 0
	case dfg.OpLoad:
		return 1
	case dfg.OpSelect:
		return 3
	case dfg.OpNop:
		return -1
	default:
		return 2
	}
}

// evalOp computes one operation. Standard arities get exact semantics;
// anything else folds deterministically.
func evalOp(op dfg.OpKind, node, it int, args []Value) (Value, error) {
	bin := func() (a, b Value, err error) {
		if len(args) != 2 {
			return 0, 0, nil
		}
		return args[0], args[1], nil
	}
	if wantArity(op) >= 0 && len(args) != wantArity(op) {
		return fold(node, args), nil
	}
	switch op {
	case dfg.OpConst:
		return constValue(node, it), nil
	case dfg.OpLoad:
		// Different iterations stream different elements.
		return memRead(args[0] + Value(it)), nil
	case dfg.OpStore:
		return args[1], nil
	case dfg.OpAdd:
		a, b, err := bin()
		return a + b, err
	case dfg.OpSub:
		a, b, err := bin()
		return a - b, err
	case dfg.OpMul:
		a, b, err := bin()
		return a * b, err
	case dfg.OpDiv:
		a, b, err := bin()
		if b == 0 {
			return 0, err
		}
		return a / b, err
	case dfg.OpShl:
		a, b, err := bin()
		return a << (uint(b) & 15), err
	case dfg.OpShr:
		a, b, err := bin()
		return a >> (uint(b) & 15), err
	case dfg.OpAnd:
		a, b, err := bin()
		return a & b, err
	case dfg.OpOr:
		a, b, err := bin()
		return a | b, err
	case dfg.OpXor:
		a, b, err := bin()
		return a ^ b, err
	case dfg.OpCmp:
		a, b, err := bin()
		if a > b {
			return 1, err
		}
		return 0, err
	case dfg.OpSelect:
		if args[0] != 0 {
			return args[1], nil
		}
		return args[2], nil
	default:
		return fold(node, args), nil
	}
}

// Reference evaluates the DFG directly (no schedule, no resources) for the
// given iterations and returns the store stream in deterministic node order
// per iteration. This is the golden model sim.Run compares against.
func Reference(g *dfg.Graph, iterations int) ([]StoreEvent, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	var out []StoreEvent
	for it := 0; it < iterations; it++ {
		vals := make([]Value, g.NumNodes())
		for _, v := range topo {
			args := make([]Value, 0, len(g.InEdges(v)))
			for _, e := range g.InEdges(v) {
				args = append(args, vals[g.Edges[e].From])
			}
			val, err := evalOp(g.Nodes[v].Op, v, it, args)
			if err != nil {
				return nil, fmt.Errorf("reference: node %s: %w", g.Nodes[v].Name, err)
			}
			vals[v] = val
			if g.Nodes[v].Op == dfg.OpStore {
				out = append(out, StoreEvent{
					Node: v, Iteration: it, Addr: args[0], Value: val,
				})
			}
		}
	}
	return out, nil
}

// occupant records one signal observed on a resource in one absolute cycle.
type occupant struct {
	res, cycle int
}

// Run simulates a successful mapping for the given number of pipelined
// iterations. It validates route structure hop by hop, enforces per-cycle
// resource capacities under full iteration overlap, checks operand arrival
// times, and compares the store stream against Reference.
func Run(ar arch.Arch, g *dfg.Graph, r *mapper.Result, iterations int) (*Trace, error) {
	if !r.OK {
		return nil, fmt.Errorf("sim: result not OK")
	}
	if iterations < 1 {
		return nil, fmt.Errorf("sim: iterations must be >= 1")
	}
	if err := mapper.Verify(ar, g, r); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if len(r.Routes) != g.NumEdges() {
		return nil, fmt.Errorf("sim: result carries %d routes, want %d", len(r.Routes), g.NumEdges())
	}
	rg := ar.BuildRGraph(r.II)

	// Structural route validation (independent of iterations).
	for i, e := range g.Edges {
		path := r.Routes[i]
		if len(path) < 2 {
			return nil, fmt.Errorf("sim: edge %d has no route", i)
		}
		if path[0] != rg.FUAt(r.PE[e.From], r.Time[e.From]%r.II) {
			return nil, fmt.Errorf("sim: edge %d route does not start at the producer", i)
		}
		if path[len(path)-1] != rg.FUAt(r.PE[e.To], r.Time[e.To]%r.II) {
			return nil, fmt.Errorf("sim: edge %d route does not end at the consumer", i)
		}
		for j := 0; j+1 < len(path); j++ {
			if !hasRGEdge(rg, path[j], path[j+1]) {
				return nil, fmt.Errorf("sim: edge %d hop %d (%d->%d) is not a link",
					i, j, path[j], path[j+1])
			}
			if j > 0 && !rg.Nodes[path[j]].RouteOK {
				return nil, fmt.Errorf("sim: edge %d uses non-routing resource %d", i, path[j])
			}
		}
	}

	// Cycle-accurate occupancy under full overlap. Signals are producer DFG
	// nodes; ops are negative pseudo-signals.
	occ := map[occupant]map[int]bool{} // (resource, absolute cycle) -> signals
	note := func(res, cycle, sig int) {
		key := occupant{res, cycle}
		if occ[key] == nil {
			occ[key] = map[int]bool{}
		}
		occ[key][sig] = true
	}
	lastCycle := 0
	for it := 0; it < iterations; it++ {
		base := it * r.II
		for v := range g.Nodes {
			c := base + r.Time[v]
			note(rg.FUAt(r.PE[v], r.Time[v]%r.II), c, -1-v)
			if c > lastCycle {
				lastCycle = c
			}
		}
		for i, e := range g.Edges {
			for j := 1; j < len(r.Routes[i])-1; j++ {
				note(r.Routes[i][j], base+r.Time[e.From]+j, e.From)
			}
		}
	}
	peak := 0
	for key, sigs := range occ {
		n := len(sigs)
		if n > peak {
			peak = n
		}
		capn := rg.Nodes[key.res].Cap
		if n > capn {
			return nil, fmt.Errorf("sim: resource %d over capacity at cycle %d (%d > %d)",
				key.res, key.cycle, n, capn)
		}
		// A firing op excludes any routed signal on the same FU that cycle.
		hasOp, hasSig := false, false
		for s := range sigs {
			if s < 0 {
				hasOp = true
			} else {
				hasSig = true
			}
		}
		if hasOp && hasSig {
			return nil, fmt.Errorf("sim: resource %d both computes and routes at cycle %d",
				key.res, key.cycle)
		}
	}

	// Dataflow execution: values ride the routes; operands must arrive
	// exactly at the consumer's firing cycle with the same iteration index.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	trace := &Trace{Iterations: iterations, II: r.II, PeakResourceUse: peak}
	for it := 0; it < iterations; it++ {
		base := it * r.II
		vals := make([]Value, g.NumNodes())
		for _, v := range topo {
			fire := base + r.Time[v]
			args := make([]Value, 0, len(g.InEdges(v)))
			for _, ei := range g.InEdges(v) {
				e := g.Edges[ei]
				depart := base + r.Time[e.From]
				arrive := depart + len(r.Routes[ei]) - 1
				if arrive != fire {
					return nil, fmt.Errorf(
						"sim: edge %d operand of %s arrives at %d but consumer fires at %d",
						ei, g.Nodes[v].Name, arrive, fire)
				}
				args = append(args, vals[e.From])
			}
			val, err := evalOp(g.Nodes[v].Op, v, it, args)
			if err != nil {
				return nil, fmt.Errorf("sim: node %s: %w", g.Nodes[v].Name, err)
			}
			vals[v] = val
			if g.Nodes[v].Op == dfg.OpStore {
				trace.Stores = append(trace.Stores, StoreEvent{
					Node: v, Iteration: it, Cycle: fire, Addr: args[0], Value: val,
				})
			}
		}
	}
	trace.TotalCycles = lastCycle + 1

	// Compare the observable output against the golden model.
	ref, err := Reference(g, iterations)
	if err != nil {
		return nil, err
	}
	if err := compareStores(trace.Stores, ref); err != nil {
		return nil, err
	}
	sort.Slice(trace.Stores, func(i, j int) bool {
		if trace.Stores[i].Cycle != trace.Stores[j].Cycle {
			return trace.Stores[i].Cycle < trace.Stores[j].Cycle
		}
		return trace.Stores[i].Node < trace.Stores[j].Node
	})
	return trace, nil
}

// compareStores matches scheduled stores with reference stores by (node,
// iteration) and compares address and value.
func compareStores(got, want []StoreEvent) error {
	if len(got) != len(want) {
		return fmt.Errorf("sim: %d store events, reference has %d", len(got), len(want))
	}
	type key struct{ node, it int }
	index := map[key]StoreEvent{}
	for _, e := range want {
		index[key{e.Node, e.Iteration}] = e
	}
	for _, e := range got {
		w, ok := index[key{e.Node, e.Iteration}]
		if !ok {
			return fmt.Errorf("sim: unexpected store by node %d iteration %d", e.Node, e.Iteration)
		}
		if e.Addr != w.Addr || e.Value != w.Value {
			return fmt.Errorf("sim: store mismatch node %d it %d: got (%d,%d), want (%d,%d)",
				e.Node, e.Iteration, e.Addr, e.Value, w.Addr, w.Value)
		}
	}
	return nil
}

func hasRGEdge(rg *rgraph.Graph, a, b int) bool {
	for _, nb := range rg.Out(a) {
		if int(nb) == b {
			return true
		}
	}
	return false
}
