package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// LockOrder tracks sync.Mutex/sync.RWMutex discipline interprocedurally
// within each package:
//
//   - double-acquire: locking a mutex already held on the current path,
//     directly or by calling a function that (transitively) acquires it —
//     Go mutexes are not reentrant, so this self-deadlocks;
//   - lock-order cycles: if one path acquires A then B and another B then
//     A (either order possibly through a call chain), two goroutines can
//     deadlock against each other;
//   - imbalance: a branch that returns while a lock acquired in this
//     function is still held and no defer releases it;
//   - blocking under lock: a held mutex across a known-blocking call
//     (fsync, HTTP round trips, sleeps, process waits, WaitGroup.Wait) —
//     every other acquirer stalls for the full I/O latency.
//
// Lock identity is the declared mutex variable or struct field: two
// instances of one struct type share an identity, which is the right
// granularity for intra-package ordering rules and is documented as an
// over-approximation. Calls through interfaces or function values are not
// followed (the call graph marks them dynamic), and function-literal
// bodies are not charged to the enclosing function — both directions of
// conservatism avoid false positives at the cost of missing exotic code.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex double-acquire, lock-order cycles, early-return imbalance, blocking calls under lock",
	Run:  runLockOrder,
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOpOf classifies call as a mutex operation and resolves the mutex's
// identity (the declared field/var object). A mutex reached through
// anything but a selector/ident chain (map index, call result) is not
// trackable and returns opNone.
func lockOpOf(pkg *Package, call *ast.CallExpr) (obj types.Object, op lockOpKind, disp string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone, ""
	}
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return nil, opNone, ""
	}
	recv := pkg.Info.TypeOf(sel.X)
	if recv == nil || !isSyncMutex(recv) {
		return nil, opNone, ""
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj = pkg.Info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = pkg.Info.ObjectOf(x.Sel)
	}
	if obj == nil {
		return nil, opNone, ""
	}
	return obj, op, types.ExprString(sel.X)
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// blockingStdCall reports whether call is one of the stdlib operations this
// analyzer treats as blocking, with a display name for the diagnostic.
func blockingStdCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := pkg.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkgPath, name := fn.Pkg().Path(), fn.Name()
	recvName := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName = named.Obj().Name()
		}
	}
	key := pkgPath + "." + recvName + "." + name
	switch key {
	case "os.File.Sync",
		"time..Sleep",
		"net/http.Client.Do", "net/http.Client.Get", "net/http.Client.Post", "net/http.Client.PostForm",
		"net/http..Get", "net/http..Post", "net/http..PostForm", "net/http..Head",
		"os/exec.Cmd.Run", "os/exec.Cmd.Output", "os/exec.Cmd.CombinedOutput", "os/exec.Cmd.Wait",
		"sync.WaitGroup.Wait":
		if recvName != "" {
			return "(*" + pkgPath + "." + recvName + ")." + name, true
		}
		return pkgPath + "." + name, true
	}
	return "", false
}

// calleeFunc resolves the called function or method on a Package (the Pass
// variant in errdrop.go delegates here).
func (pkg *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// acquireInfo remembers where a function first acquires a mutex, for the
// interprocedural diagnostics.
type acquireInfo struct {
	pos  token.Pos
	disp string
}

// lockSummaries holds the per-package fixpoint results: which mutexes each
// function may acquire (transitively, static edges only) and whether it may
// reach a blocking call.
type lockSummaries struct {
	pkg        *Package
	order      []*cgNode // deterministic iteration order (by position)
	mayAcquire map[*types.Func]map[types.Object]acquireInfo
	blockCause map[*types.Func]string
}

func buildLockSummaries(pkg *Package) *lockSummaries {
	g := pkg.CallGraph()
	s := &lockSummaries{
		pkg:        pkg,
		mayAcquire: map[*types.Func]map[types.Object]acquireInfo{},
		blockCause: map[*types.Func]string{},
	}
	for _, n := range g.nodes {
		s.order = append(s.order, n)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i].decl.Pos() < s.order[j].decl.Pos() })

	// Direct facts.
	for _, n := range s.order {
		acq := map[types.Object]acquireInfo{}
		inspectSkipFuncLit(n.decl.Body, func(ast.Node) {}, func(call *ast.CallExpr) {
			if obj, op, disp := lockOpOf(pkg, call); op == opLock || op == opRLock {
				if _, ok := acq[obj]; !ok {
					acq[obj] = acquireInfo{pos: call.Pos(), disp: disp}
				}
			}
			if cause, ok := blockingStdCall(pkg, call); ok {
				if _, seen := s.blockCause[n.fn]; !seen {
					s.blockCause[n.fn] = cause
				}
			}
		})
		s.mayAcquire[n.fn] = acq
	}

	// Fixpoint over static (non-dynamic) edges.
	for changed := true; changed; {
		changed = false
		for _, n := range s.order {
			for _, e := range n.out {
				if e.dynamic {
					continue
				}
				for obj, info := range s.mayAcquire[e.callee.fn] {
					if _, ok := s.mayAcquire[n.fn][obj]; !ok {
						s.mayAcquire[n.fn][obj] = info
						changed = true
					}
				}
				if cause, ok := s.blockCause[e.callee.fn]; ok {
					if _, seen := s.blockCause[n.fn]; !seen {
						s.blockCause[n.fn] = e.callee.fn.Name() + " → " + cause
						changed = true
					}
				}
			}
		}
	}
	return s
}

// heldLock is one mutex held on the current path.
type heldLock struct {
	read         bool
	deferRelease bool
	pos          token.Pos
	disp         string
}

type lockState map[types.Object]*heldLock

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// intersect keeps only locks held in both states; deferRelease survives
// only if both paths registered the release.
func intersect(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			c := *va
			c.deferRelease = va.deferRelease && vb.deferRelease
			out[k] = &c
		}
	}
	return out
}

// orderEdge records "from acquired before to" with the position where the
// second acquisition (or the call that performs it) happens.
type orderEdge struct {
	from, to         types.Object
	fromDisp, toDisp string
	pos              token.Pos
	interprocedural  bool
	viaFn            string // callee performing the acquisition, if any
}

type lockWalker struct {
	pass      *Pass
	summaries *lockSummaries
	edges     *[]orderEdge
	node      *cgNode
}

func runLockOrder(pass *Pass) {
	if !pathHasSegment(pass.Pkg.Path, "internal") {
		return
	}
	summaries := buildLockSummaries(pass.Pkg)
	var edges []orderEdge
	for _, n := range summaries.order {
		w := &lockWalker{pass: pass, summaries: summaries, edges: &edges, node: n}
		st, terminated := w.stmts(n.decl.Body.List, lockState{})
		if !terminated {
			w.checkHeldAtExit(st, n.decl.Body.End(), "function end")
		}
	}
	reportOrderCycles(pass, edges)
}

// checkHeldAtExit reports locks still held (without a deferred release) when
// control leaves the function.
func (w *lockWalker) checkHeldAtExit(st lockState, pos token.Pos, how string) {
	var objs []types.Object
	for obj := range st {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return st[objs[i]].pos < st[objs[j]].pos })
	for _, obj := range objs {
		h := st[obj]
		if h.deferRelease {
			continue
		}
		w.pass.Reportf(pos, "%s while %s is still locked (acquired at line %d) and no defer releases it",
			how, h.disp, w.pass.Pkg.Fset.Position(h.pos).Line)
	}
}

// stmts walks a statement list linearly, threading the held-lock state.
// The returned bool reports whether every path through the list terminated
// (return, panic, branch) — callers merging branches use it.
func (w *lockWalker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, stmt := range list {
		var terminated bool
		st, terminated = w.stmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *lockWalker) stmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.ReturnStmt:
		w.calls(s, st) // result expressions evaluate before the return
		w.checkHeldAtExit(st, s.Pos(), "return")
		return st, true

	case *ast.BranchStmt: // break, continue, goto, fallthrough
		return st, true

	case *ast.DeferStmt:
		w.deferStmt(s, st)
		return st, false

	case *ast.GoStmt:
		// The spawned call runs on another goroutine; its lock effects are
		// not this path's. goleak owns goroutine analysis.
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.callsExpr(s.Cond, st)
		thenSt, thenTerm := w.stmts(s.Body.List, st.clone())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return intersect(thenSt, elseSt), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.callsExpr(s.Cond, st)
		bodySt, bodyTerm := w.stmts(s.Body.List, st.clone())
		if s.Post != nil {
			bodySt, _ = w.stmt(s.Post, bodySt)
		}
		w.checkLoopBalance(st, bodySt, bodyTerm, s.Body.End())
		return st, false

	case *ast.RangeStmt:
		w.callsExpr(s.X, st)
		bodySt, bodyTerm := w.stmts(s.Body.List, st.clone())
		w.checkLoopBalance(st, bodySt, bodyTerm, s.Body.End())
		return st, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.callsExpr(s.Tag, st)
		return w.clauses(s.Body.List, st, hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Assign != nil {
			w.calls(s.Assign, st)
		}
		return w.clauses(s.Body.List, st, hasDefaultClause(s.Body.List))

	case *ast.SelectStmt:
		// A select blocks until some clause runs: every path goes through a
		// clause, so (unlike switch without default) the entry state does
		// not fall through on its own.
		return w.clauses(s.Body.List, st, true)

	default:
		// Assignments, expression statements, declarations, sends: just the
		// calls they contain, in source order.
		w.calls(stmt, st)
		return st, false
	}
}

// clauses walks case/comm clause bodies from independent copies of st and
// merges the fall-through states. exhaustive says whether some clause is
// guaranteed to run (select, or switch with a default).
func (w *lockWalker) clauses(list []ast.Stmt, st lockState, exhaustive bool) (lockState, bool) {
	var fallThroughs []lockState
	ran := false
	for _, cl := range list {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.callsExpr(e, st)
			}
			body = c.Body
		case *ast.CommClause:
			clauseSt := st.clone()
			if c.Comm != nil {
				clauseSt, _ = w.stmt(c.Comm, clauseSt)
			}
			if endSt, term := w.stmts(c.Body, clauseSt); !term {
				fallThroughs = append(fallThroughs, endSt)
			}
			ran = true
			continue
		default:
			continue
		}
		ran = true
		if endSt, term := w.stmts(body, st.clone()); !term {
			fallThroughs = append(fallThroughs, endSt)
		}
	}
	if !exhaustive || !ran {
		fallThroughs = append(fallThroughs, st)
	}
	if len(fallThroughs) == 0 {
		return st, true // every clause terminated and one must run
	}
	merged := fallThroughs[0]
	for _, other := range fallThroughs[1:] {
		merged = intersect(merged, other)
	}
	return merged, false
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, cl := range list {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// checkLoopBalance reports locks acquired inside a loop body that are still
// held when the iteration ends — the next iteration would double-acquire.
func (w *lockWalker) checkLoopBalance(entry, bodyEnd lockState, bodyTerm bool, pos token.Pos) {
	if bodyTerm {
		return
	}
	var objs []types.Object
	for obj := range bodyEnd {
		if _, held := entry[obj]; !held {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return bodyEnd[objs[i]].pos < bodyEnd[objs[j]].pos })
	for _, obj := range objs {
		h := bodyEnd[obj]
		if h.deferRelease {
			continue
		}
		w.pass.Reportf(h.pos, "%s is locked here and still held at the end of the loop iteration; the next iteration would deadlock",
			h.disp)
	}
}

// deferStmt registers deferred unlocks, including the defer-a-closure form.
func (w *lockWalker) deferStmt(s *ast.DeferStmt, st lockState) {
	markRelease := func(call *ast.CallExpr) {
		if obj, op, _ := lockOpOf(w.pass.Pkg, call); op == opUnlock || op == opRUnlock {
			if h, ok := st[obj]; ok {
				h.deferRelease = true
			}
		}
	}
	markRelease(s.Call)
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markRelease(call)
			}
			return true
		})
	}
}

// calls processes every call expression under n (skipping function
// literals) against the current lock state.
func (w *lockWalker) calls(n ast.Node, st lockState) {
	inspectSkipFuncLit(n, func(ast.Node) {}, func(call *ast.CallExpr) {
		w.call(call, st)
	})
}

func (w *lockWalker) callsExpr(e ast.Expr, st lockState) {
	if e != nil {
		w.calls(e, st)
	}
}

// call applies one call's lock effects to st and emits diagnostics.
func (w *lockWalker) call(call *ast.CallExpr, st lockState) {
	pkg := w.pass.Pkg
	if obj, op, disp := lockOpOf(pkg, call); op != opNone {
		switch op {
		case opLock, opRLock:
			if h, held := st[obj]; held {
				w.pass.Reportf(call.Pos(), "%s acquired again while already held (previous acquisition at line %d); Go mutexes are not reentrant",
					disp, pkg.Fset.Position(h.pos).Line)
				return
			}
			for prev, h := range st {
				*w.edges = append(*w.edges, orderEdge{
					from: prev, to: obj, fromDisp: h.disp, toDisp: disp, pos: call.Pos(),
				})
			}
			st[obj] = &heldLock{read: op == opRLock, pos: call.Pos(), disp: disp}
		case opUnlock, opRUnlock:
			delete(st, obj)
		}
		return
	}

	fn := pkg.calleeFunc(call)
	if fn == nil || len(st) == 0 {
		return
	}

	// Blocking while holding a lock: directly, or through a same-package
	// call chain.
	if cause, ok := blockingStdCall(pkg, call); ok {
		w.reportBlocked(call, st, cause)
	} else if cause, ok := w.summaries.blockCause[fn]; ok && pkg.CallGraph().node(fn) != nil {
		w.reportBlocked(call, st, fn.Name()+" → "+cause)
	}

	// Interprocedural acquisitions: calling fn while holding H where fn may
	// acquire A gives an order edge H→A — and a self-deadlock when A is H.
	if pkg.CallGraph().node(fn) == nil {
		return
	}
	acq := w.summaries.mayAcquire[fn]
	var objs []types.Object
	for obj := range acq {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return acq[objs[i]].pos < acq[objs[j]].pos })
	for _, obj := range objs {
		info := acq[obj]
		if h, held := st[obj]; held {
			w.pass.Reportf(call.Pos(), "calling %s while holding %s (acquired at line %d), but %s acquires %s again (line %d): self-deadlock",
				fn.Name(), h.disp, pkg.Fset.Position(h.pos).Line,
				fn.Name(), info.disp, pkg.Fset.Position(info.pos).Line)
			continue
		}
		for prev, h := range st {
			*w.edges = append(*w.edges, orderEdge{
				from: prev, to: obj, fromDisp: h.disp, toDisp: info.disp,
				pos: call.Pos(), interprocedural: true, viaFn: fn.Name(),
			})
		}
	}
}

func (w *lockWalker) reportBlocked(call *ast.CallExpr, st lockState, cause string) {
	var objs []types.Object
	for obj := range st {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return st[objs[i]].pos < st[objs[j]].pos })
	for _, obj := range objs {
		h := st[obj]
		w.pass.Reportf(call.Pos(), "%s held (acquired at line %d) across blocking call %s; release it before the call",
			h.disp, w.pass.Pkg.Fset.Position(h.pos).Line, cause)
	}
}

// reportOrderCycles finds pairs of mutexes acquired in both orders and
// reports each inconsistent pair once, at the lexically first edge.
func reportOrderCycles(pass *Pass, edges []orderEdge) {
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })

	// adjacency for reachability over the order graph
	succ := map[types.Object]map[types.Object]bool{}
	for _, e := range edges {
		if succ[e.from] == nil {
			succ[e.from] = map[types.Object]bool{}
		}
		succ[e.from][e.to] = true
	}
	reaches := func(from, to types.Object) (bool, token.Pos) {
		seen := map[types.Object]bool{from: true}
		stack := []types.Object{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				// find a witness edge into `to` for the message
				for _, e := range edges {
					if e.to == to && seen[e.from] {
						return true, e.pos
					}
				}
				return true, token.NoPos
			}
			for next := range succ[cur] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false, token.NoPos
	}

	type pairKey struct{ a, b types.Object }
	reported := map[pairKey]bool{}
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		key := pairKey{e.from, e.to}
		if e.to.Pos() < e.from.Pos() {
			key = pairKey{e.to, e.from}
		}
		if reported[key] {
			continue
		}
		// find a reverse witness: an edge (chain) to→…→from
		if ok, witnessPos := reaches(e.to, e.from); ok {
			reported[key] = true
			where := "elsewhere"
			if witnessPos != token.NoPos {
				p := pass.Pkg.Fset.Position(witnessPos)
				where = fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
			}
			via := ""
			if e.interprocedural {
				via = fmt.Sprintf(" (via call to %s)", e.viaFn)
			}
			pass.Reportf(e.pos, "lock-order cycle: %s is acquired before %s here%s, but the opposite order is taken at %s; two goroutines can deadlock",
				e.fromDisp, e.toDisp, via, where)
		}
	}
}
