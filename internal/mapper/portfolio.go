// Portfolio annealing: race K diverse restart chains of the incremental SA
// core and return the best mapping, deterministically.
//
// PR 5 made one chain ~6× faster; this layer spends that win on restart
// diversity instead of a single longer trajectory. Each chain c gets
//
//   - a distinct seed: chain 0 keeps Options.Seed verbatim (it IS the
//     single-chain run, so every portfolio dominates K=1 by construction),
//     chains c >= 1 use parallel.DeriveSeed(Seed, c);
//   - a distinct initial placement family (variant): the engine's own
//     label-guided policy, a greedy list-scheduling seed (the MapGreedy
//     pass), or uniform-random placement;
//   - a move budget: with caller-supplied GNN labels the budget tilts
//     toward label-guided chains in proportion to labelConfidence — the
//     "learned cost model steers search budget" direction of the SambaNova
//     placement work applied to LISA's own labels.
//
// Chains cooperate through two atomics (portShared): a best-so-far II bound
// that lets dominated chains abandon early, and a provably-optimal marker —
// a chain that completes at the resource-minimal II with total hops equal to
// the admissible lower bound (hopLowerBound) cannot be beaten, so every
// higher-index chain stops.
//
// Determinism argument (the DESIGN.md "Portfolio annealing" section carries
// the full version): a chain that completes an II attempt was never steered
// by shared state — abandonment ends an attempt with failure, it never
// alters placements or the RNG stream — so every completed result equals the
// result of running that chain alone. A chain abandons only when a completed
// result strictly dominates everything the chain could still produce
// (a finished mapping at a strictly lower II, or a hop-optimal mapping at a
// strictly lower chain index). The winner — minimum over chains of the key
// (OK desc, II asc, hops asc, chain index asc) — is therefore the same
// regardless of goroutine scheduling or worker count: the true winner can
// never be the chain that got abandoned.
package mapper

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/parallel"
)

// Chain initial-placement families. Chain 0 is always seedEngine; chains
// c >= 1 cycle greedy → random → engine so every family appears by K=4.
const (
	seedEngine uint8 = iota // the engine's own initial policy (placeAll)
	seedGreedy              // greedy list-scheduling seed (greedyPass), then anneal
	seedRandom              // uniform-random initial placement (labels off for the seed)
)

func variantName(v uint8) string {
	switch v {
	case seedGreedy:
		return "greedy"
	case seedRandom:
		return "random"
	default:
		return "engine"
	}
}

// PortfolioInfo describes the restart race behind a Result. Every field is
// a pure function of (inputs, options, seed) — worker count and goroutine
// scheduling never show through — so it is safe to serialize and cache.
type PortfolioInfo struct {
	Restarts int    `json:"restarts"` // portfolio width K actually raced
	Winner   int    `json:"winner"`   // index of the winning chain
	Variant  string `json:"variant"`  // winning chain's initial-placement family
	// ProvablyOptimal reports that the winner completed at the
	// resource-minimal II with total hops equal to HopLowerBound: no
	// mapping of this DFG on this architecture can beat it on (II, hops).
	ProvablyOptimal bool `json:"provablyOptimal,omitempty"`
	// HopLowerBound is the admissible aggregate route-length bound at the
	// resource-minimal II (see hopLowerBound).
	HopLowerBound int `json:"hopLowerBound"`
	// Budgets is the per-chain movement budget allocation.
	Budgets []int `json:"budgets"`
}

// portShared is the cross-chain cooperation state: two monotone atomics.
// Chains only ever *shrink* both values, and a chain consults them only to
// stop — never to steer a still-running attempt — which is what keeps every
// completed chain result scheduling-independent.
type portShared struct {
	// bestII is the lowest II any chain has completed a valid mapping at.
	// Every attempt at a strictly higher II is dominated and abandons.
	bestII atomic.Int64
	// optimalFrom is the lowest chain index that completed a provably
	// hop-optimal mapping at the resource-minimal II. Chains with a higher
	// index abandon: they can at best tie, and a tie loses the index
	// tie-break. Lower-index chains must run to completion — they could tie
	// and win.
	optimalFrom atomic.Int64
}

// abandoned reports whether chain's attempt at ii can no longer win the
// race. Polled from the annealing movement loop, so it must stay two plain
// atomic loads.
//
//lisa:hotpath polled every 64 movements by every portfolio chain; must stay allocation-free
func (sh *portShared) abandoned(chain, ii int) bool {
	return int64(ii) > sh.bestII.Load() || int64(chain) > sh.optimalFrom.Load()
}

// publish records a chain's completed mapping: a CAS-min on the II bound,
// and, when the mapping is provably hop-optimal at the minimal II, a
// CAS-min on the optimal chain index.
func (sh *portShared) publish(chain, ii, hops, minII, lb int) {
	for {
		cur := sh.bestII.Load()
		if int64(ii) >= cur || sh.bestII.CompareAndSwap(cur, int64(ii)) {
			break
		}
	}
	if ii == minII && hops <= lb {
		for {
			cur := sh.optimalFrom.Load()
			if int64(chain) >= cur || sh.optimalFrom.CompareAndSwap(cur, int64(chain)) {
				break
			}
		}
	}
}

// chainResult is one chain's contribution to winner selection.
type chainResult struct {
	res      Result
	hops     int  // total routed hops when res.OK
	optimal  bool // res hit the lower bound at the minimal II
	deadline bool // the shared TimeLimit cut this chain short
	err      error
}

// portfolio is one race: the shared inputs plus the per-chain plan.
type portfolio struct {
	ar    arch.Arch
	g     *dfg.Graph
	an    *dfg.Analysis
	alg   Algorithm
	lbl   *labels.Labels
	cfg   config
	opts  Options
	start time.Time

	minII, maxII int
	lb           int // admissible aggregate hop lower bound at minII
	variants     []uint8
	budgets      []int
	shared       *portShared
}

// mapPortfolio races opts.Restarts chains and returns the deterministic
// winner. Called from Map with normalized options, after engineConfig has
// applied per-engine budget scaling (so SA-M chains race 10× budgets, same
// as its single chain) and after the mapper.anneal fault site has passed.
func mapPortfolio(ar arch.Arch, g *dfg.Graph, an *dfg.Analysis, alg Algorithm,
	lbl *labels.Labels, labelGuided bool, cfg config, opts Options, start time.Time) (Result, error) {

	k := opts.Restarts
	maxII := ar.MaxII()
	if opts.MaxII > 0 && opts.MaxII < maxII {
		maxII = opts.MaxII
	}
	p := &portfolio{
		ar: ar, g: g, an: an, alg: alg, lbl: lbl, cfg: cfg, opts: opts, start: start,
		minII: ar.MinII(g), maxII: maxII,
		shared: &portShared{},
	}
	p.shared.bestII.Store(int64(maxII) + 1)
	p.shared.optimalFrom.Store(int64(k))
	p.lb = hopLowerBound(ar, g, an, p.minII)
	p.variants = chainVariants(k)
	p.budgets = chainBudgets(k, opts.MaxMoves, labelGuided, lbl, p.variants)

	chains := make([]chainResult, k)
	parallel.ForEach(opts.Workers, k, func(c int) {
		chains[c] = p.runChain(c)
	})
	return p.pickWinner(chains)
}

// runChain runs one chain's full II sweep in isolation semantics: the only
// cross-chain influence is the abandonment poll, which can end the chain
// early but never change what it would have produced. A panicking chain is
// contained here (before parallel.ForEach's re-raise) and becomes an
// errored chain — one poisoned chain must degrade to the survivors' winner,
// never crash the race.
func (p *portfolio) runChain(c int) (out chainResult) {
	defer func() {
		if r := recover(); r != nil {
			out = chainResult{err: fmt.Errorf("mapper: %s engine chain %d panicked: %v", p.alg, c, r)}
		}
	}()
	seed := p.opts.Seed
	if c > 0 {
		seed = parallel.DeriveSeed(p.opts.Seed, c)
	}
	// Fault site mapper.portfolio, streamed by the chain seed: each chain
	// draws its own fault decision, so a sub-1 probability poisons a strict
	// subset of the race deterministically.
	if err := fault.Inject(fault.MapperPortfolio, uint64(seed)); err != nil {
		return chainResult{err: fmt.Errorf("mapper: %s engine chain %d: %w", p.alg, c, err)}
	}
	opts := p.opts
	opts.MaxMoves = p.budgets[c]
	rng := rand.New(rand.NewSource(seed))
	res := Result{}
	for ii := p.minII; ii <= p.maxII; ii++ {
		if opts.TimeLimit > 0 && time.Since(p.start) > opts.TimeLimit {
			out.deadline = true
			break
		}
		if p.shared.abandoned(c, ii) {
			break
		}
		res.TriedIIs = append(res.TriedIIs, ii)
		st := newState(p.ar, p.g, p.an, ii, p.lbl, p.cfg, opts.Alpha, rng)
		st.faultToken = uint64(seed)
		st.shared = p.shared
		st.chainIdx = c
		if p.variants[c] == seedGreedy {
			// Greedy-seeded chain: list-schedule the initial mapping (a
			// partial placement on failure is fine — the movement loop
			// repairs from wherever the pass stopped).
			st.initialPhase = true
			greedyPass(st, p.an)
			st.initialPhase = false
			st.preSeeded = true
		} else if p.variants[c] == seedRandom {
			st.randomSeed = true
		}
		ok, moves := st.anneal(opts, p.start)
		res.Moves += moves
		if st.faultErr != nil {
			out.err = fmt.Errorf("mapper: %s engine chain %d: %w", p.alg, c, st.faultErr)
			return out
		}
		if ok {
			res.OK = true
			res.II = ii
			res.PE = append([]int(nil), st.pe...)
			res.Time = append([]int(nil), st.time...)
			res.EdgeHops = make([]int, p.g.NumEdges())
			res.Routes = make([][]int, p.g.NumEdges())
			hops := 0
			for e, path := range st.routes {
				res.EdgeHops[e] = len(path) - 1
				res.Routes[e] = append([]int(nil), path...)
				hops += len(path) - 1
			}
			res.RoutingCost = st.routingCost()
			out.hops = hops
			out.optimal = ii == p.minII && hops <= p.lb
			p.shared.publish(c, ii, hops, p.minII, p.lb)
			break
		}
	}
	// The deadline can also cut the final II attempt mid-anneal (the
	// movement loop checks it every 64 moves), in which case the sweep ends
	// without reaching the loop-top check above.
	if !res.OK && opts.TimeLimit > 0 && time.Since(p.start) > opts.TimeLimit {
		out.deadline = true
	}
	out.res = res
	return out
}

// chainBetter reports whether a beats b under the race's total order:
// OK first, then lower II, then fewer hops. Ties fall to the caller's
// ascending-index scan, completing the deterministic (cost, chain index)
// tie-break.
func chainBetter(a, b *chainResult) bool {
	if a.res.OK != b.res.OK {
		return a.res.OK
	}
	if !a.res.OK {
		return false
	}
	if a.res.II != b.res.II {
		return a.res.II < b.res.II
	}
	return a.hops < b.hops
}

// pickWinner folds the chain results into one Result. All-chains-errored
// surfaces the lowest-index chain's error (deterministic, and exactly what
// the engine degradation ladder keys off); otherwise errored chains simply
// drop out of the race.
func (p *portfolio) pickWinner(chains []chainResult) (Result, error) {
	winner, firstErr := -1, -1
	deadline := false
	for c := range chains {
		if chains[c].deadline {
			deadline = true
		}
		if chains[c].err != nil {
			if firstErr < 0 {
				firstErr = c
			}
			continue
		}
		if winner < 0 || chainBetter(&chains[c], &chains[winner]) {
			winner = c
		}
	}
	if winner < 0 {
		return Result{}, chains[firstErr].err
	}
	w := &chains[winner]
	res := w.res
	res.Duration = time.Since(p.start)
	if deadline {
		// At least one chain was wall-clock-cut: the race did not run to
		// completion, so this winner is "best completed before the
		// deadline", not the deterministic fixed point. Label it so no
		// tier caches it. (An OK winner still satisfies the engine ladder —
		// it only degrades on !OK.)
		res.DeadlineExceeded = true
	}
	res.Portfolio = &PortfolioInfo{
		Restarts:        len(chains),
		Winner:          winner,
		Variant:         variantName(p.variants[winner]),
		ProvablyOptimal: w.optimal,
		HopLowerBound:   p.lb,
		Budgets:         p.budgets,
	}
	return res, nil
}

// chainVariants assigns each chain its initial-placement family.
func chainVariants(k int) []uint8 {
	out := make([]uint8, k)
	for c := 1; c < k; c++ {
		switch (c - 1) % 3 {
		case 0:
			out[c] = seedGreedy
		case 1:
			out[c] = seedRandom
		default:
			out[c] = seedEngine
		}
	}
	return out
}

// chainBudgets splits the movement budget across chains. Chain 0 always
// keeps the caller's full MaxMoves — it is the K=1 run, and an intact
// budget is what makes the portfolio winner provably no worse than the
// single-chain result. With caller-supplied GNN labels the remaining
// chains' budgets tilt by labelConfidence: a confident model earns the
// label-guided (engine/greedy) chains up to +25% movements at the expense
// of the unguided random explorers, a diffuse one tilts the other way.
// Without external labels every chain gets the full budget.
func chainBudgets(k, maxMoves int, labelGuided bool, lbl *labels.Labels, variants []uint8) []int {
	out := make([]int, k)
	out[0] = maxMoves
	conf := 0.0
	if labelGuided {
		conf = labelConfidence(lbl)
	}
	for c := 1; c < k; c++ {
		w := 1.0
		if labelGuided {
			if variants[c] == seedRandom {
				w = 1.25 - 0.5*conf // 1.25 … 0.75 as confidence rises
			} else {
				w = 0.75 + 0.5*conf // 0.75 … 1.25 as confidence rises
			}
		}
		b := int(math.Round(float64(maxMoves) * w))
		if b < 64 {
			b = 64
		}
		out[c] = b
	}
	return out
}

// labelConfidence scores a GNN label set in [0, 1]: the mean reciprocal of
// the predicted temporal mapping distances (label 4). Temporal labels are
// at least 1 hop; a model predicting tight routes (values near 1) is
// reading a compact, confident mapping out of the graph, while large
// predictions say the model expects congestion and detours — budget then
// shifts from guided chains to unguided exploration. A pure function of
// the labels, so every derived budget is deterministic.
func labelConfidence(l *labels.Labels) float64 {
	if len(l.Temporal) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range l.Temporal {
		if t < 1 {
			t = 1
		}
		sum += 1 / t
	}
	return sum / float64(len(l.Temporal))
}

// hopLowerBound is an admissible lower bound on the total routed hop count
// of ANY valid mapping at the resource-minimal II — the certificate behind
// the portfolio's provable early exit. Two placement-independent facts
// bound each DFG edge's route length (EdgeHops[e] = time[to] − time[from],
// the exact-length router's contract):
//
//   - dependency: every DFG path u→…→v forces time[v] − time[u] to be at
//     least the path's length (each edge advances time by ≥ 1), so the
//     longest u→v path length lower-bounds the direct edge's hop count;
//   - geometry: a route advances at most one spatial step per hop, so the
//     hop count is at least the spatial distance between the endpoint PEs —
//     and hence at least the minimum distance over PE pairs whose FUs can
//     host the two ops at all (the ShortestHops argument on an empty
//     fabric).
//
// Both hold for every placement, so the edge-wise max of the two, summed
// over edges, is admissible: a mapping that completes at the minimal II
// with exactly this many hops cannot be beaten on (II, hops), and the
// chain that found it may cancel every higher-index chain.
func hopLowerBound(ar arch.Arch, g *dfg.Graph, an *dfg.Analysis, minII int) int {
	n := g.NumNodes()
	topoPos := make([]int, n)
	for i, v := range an.Topo {
		topoPos[v] = i
	}

	// PEs able to host each op kind somewhere in the minII schedule window,
	// and the minimum spatial distance between hosting PE pairs, both
	// memoized — kernels use a handful of op kinds.
	rg := ar.BuildRGraph(minII)
	numPE := ar.NumPEs()
	hostPEs := map[uint8][]int{}
	hosts := func(op uint8) []int {
		if s, ok := hostPEs[op]; ok {
			return s
		}
		s := []int{}
		for pe := 0; pe < numPE; pe++ {
			for c := 0; c < minII; c++ {
				if rg.Nodes[rg.FUAt(pe, c)].AllowsOp(op) {
					s = append(s, pe)
					break
				}
			}
		}
		hostPEs[op] = s
		return s
	}
	minDist := map[[2]uint8]int{}
	opDist := func(a, b uint8) int {
		key := [2]uint8{a, b}
		if d, ok := minDist[key]; ok {
			return d
		}
		best := -1
		for _, pa := range hosts(a) {
			for _, pb := range hosts(b) {
				if d := ar.SpatialDistance(pa, pb); best < 0 || d < best {
					best = d
				}
			}
		}
		if best < 0 {
			// An op kind no FU hosts: every chain fails anyway, and an
			// admissible bound must not promise hops a mapping can't have.
			best = 0
		}
		minDist[key] = best
		return best
	}

	dist := make([]int, n)
	total := 0
	for u := 0; u < n; u++ {
		if len(g.OutEdges(u)) == 0 {
			continue
		}
		// Longest paths from u, one topo-order DP pass (graphs are small;
		// this runs once per portfolio Map call).
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		for i := topoPos[u]; i < n; i++ {
			x := an.Topo[i]
			if dist[x] < 0 {
				continue
			}
			for _, s := range g.Succ(x) {
				if dist[x]+1 > dist[s] {
					dist[s] = dist[x] + 1
				}
			}
		}
		for _, e := range g.OutEdges(u) {
			v := g.Edges[e].To
			lb := dist[v] // ≥ 1: the edge itself is a u→v path
			if d := opDist(uint8(g.Nodes[u].Op), uint8(g.Nodes[v].Op)); d > lb {
				lb = d
			}
			total += lb
		}
	}
	return total
}
