// Command lisa-map maps one kernel onto one accelerator with a chosen
// mapping engine and prints the resulting schedule.
//
// Usage:
//
//	lisa-map -kernel gemm -arch cgra-4x4 -alg lisa [-model model.json]
//	lisa-map -kernel syr2k -arch cgra-4x4-lessroute -alg sa -seed 3
//	lisa-map -kernel doitgen -arch systolic-5x5 -alg ilp
//
// Algorithms: lisa (label-aware SA, default), sa, sa-rp, sa-m, partial,
// greedy, ilp. The CLI exits nonzero when no legal mapping is found.
// Without -model, the label-using engines fall back to the §V-B label
// initialization; pass a model trained by lisa-train for GNN-derived labels.
//
// Requests run through the same degradation ladder as lisa-serve: an
// engine that errors or panics, or an SA sweep that exhausts its deadline
// without a valid mapping, is replaced by the next rung down (sa, then
// greedy) and each substitution is printed. -no-fallback runs the named
// engine exactly once and exits nonzero on any failure.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	lisa "github.com/lisa-go/lisa"
	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/engine"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/sim"
	"github.com/lisa-go/lisa/internal/visual"

	"github.com/lisa-go/lisa/internal/dfg"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name (see lisa-dfg list)")
	dfgFile := flag.String("dfg", "", "load the DFG from a .dot or .json file instead of -kernel")
	archName := flag.String("arch", "cgra-4x4", "target: "+strings.Join(arch.Names(), ", "))
	archFile := flag.String("arch-file", "", "load the target from a JSON architecture spec instead of -arch")
	alg := flag.String("alg", "lisa", "mapping engine: lisa|sa|sa-rp|sa-m|partial|greedy|ilp")
	unroll := flag.Int("unroll", 1, "unrolling factor")
	seed := flag.Int64("seed", 1, "annealer seed")
	moves := flag.Int("moves", 2400, "SA movement budget per II")
	restarts := flag.Int("restarts", 1, "portfolio width: race K diverse annealing chains per II (1 = plain annealer)")
	workers := flag.Int("workers", 0, "concurrent portfolio chains (<=0: one per CPU; never changes the result)")
	modelPath := flag.String("model", "", "trained GNN model (from lisa-train)")
	ilpTime := flag.Duration("ilp-time", 5*time.Second, "ILP time limit per II")
	stats := flag.Bool("stats", false, "print utilization and the schedule table")
	simulate := flag.Int("simulate", 0, "cycle-accurate simulation for N iterations")
	svgOut := flag.String("svg", "", "write the mapping drawing (Fig. 5 style) to this SVG file")
	noFallback := flag.Bool("no-fallback", false, "fail instead of degrading to sa/greedy when the engine cannot run")
	flag.Parse()

	// LISA_FAULTS arms the deterministic fault layer (chaos testing), the
	// same contract as lisa-serve.
	if plan, err := fault.FromEnv(); err != nil {
		fatal(err)
	} else if plan != nil {
		fault.Activate(plan)
		fmt.Fprintln(os.Stderr, "lisa-map: FAULT INJECTION ARMED:", plan)
	}

	var ar arch.Arch
	if *archFile != "" {
		f, err := os.Open(*archFile)
		if err != nil {
			fatal(err)
		}
		ar, err = arch.LoadArch(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var ok bool
		ar, ok = arch.ByName(*archName)
		if !ok {
			fatal(fmt.Errorf("unknown arch %q (have %v)", *archName, arch.Names()))
		}
	}
	var g *dfg.Graph
	if *dfgFile != "" {
		f, err := os.Open(*dfgFile)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*dfgFile, ".json") {
			g, err = dfg.ReadJSON(f)
		} else {
			g, err = dfg.ParseDOT(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		g, err = kernels.ByName(*kernel)
		if err != nil {
			fatal(err)
		}
	}
	if *unroll > 1 {
		g = dfg.Unroll(g, *unroll)
	}

	// Engine dispatch is shared with lisa-serve (internal/engine), so the
	// CLI and the service resolve a request identically.
	eng, err := engine.Parse(*alg)
	if err != nil {
		fatal(err)
	}
	var lbl *labels.Labels
	if *modelPath != "" && eng != engine.ILP && eng != engine.Greedy {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(err)
		}
		model, err := gnn.Load(f, gnn.NewModel(rand.New(rand.NewSource(1)), ar.Name()))
		f.Close()
		if err != nil {
			fatal(err)
		}
		if model.ArchName != ar.Name() {
			fmt.Fprintf(os.Stderr, "warning: model trained for %s, mapping on %s\n",
				model.ArchName, ar.Name())
		}
		lbl, err = model.Predict(attr.Generate(g))
		if err != nil {
			fatal(err)
		}
	}
	rr, err := engine.Run(ar, g, engine.Request{
		Engine: eng,
		Labels: engine.StaticLabels{L: lbl},
		Opts: engine.Options{
			Map: mapper.Options{Seed: *seed, MaxMoves: *moves, Restarts: *restarts, Workers: *workers},
			ILP: ilp.Options{TimeLimitPerII: *ilpTime},
		},
		NoFallback: *noFallback,
	})
	if err != nil {
		fatal(err)
	}
	res := rr.Result
	for _, step := range res.Degraded {
		fmt.Fprintln(os.Stderr, "lisa-map: degraded:", step)
	}
	if rr.Engine != eng {
		fmt.Fprintf(os.Stderr, "lisa-map: result produced by the %s engine, not %s\n", rr.Engine, eng)
	}

	fmt.Print(lisa.Describe(ar, g, &res))
	if !res.OK {
		os.Exit(1)
	}
	if err := mapper.Verify(ar, g, &res); err != nil {
		fatal(fmt.Errorf("mapping failed verification: %w", err))
	}
	fmt.Printf("verified: legal mapping (moves=%d)\n", res.Moves)
	if *stats {
		u, err := mapper.Utilize(ar, g, &res)
		if err != nil {
			fatal(err)
		}
		fmt.Println(u)
		fmt.Println(mapper.ScheduleTable(ar, g, &res))
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		err = visual.WriteMapping(f, ar, g, &res)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mapping drawing written to %s\n", *svgOut)
	}
	if *simulate > 0 {
		tr, err := sim.Run(ar, g, &res, *simulate)
		if err != nil {
			fatal(fmt.Errorf("simulation: %w", err))
		}
		fmt.Printf("simulated %d iterations in %d cycles; %d store events match the DFG\n",
			tr.Iterations, tr.TotalCycles, len(tr.Stores))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisa-map:", err)
	os.Exit(1)
}
