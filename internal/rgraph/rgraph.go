// Package rgraph implements the time-extended (modulo) routing resource
// graph that spatial-accelerator mapping operates on, together with a
// journaling occupancy tracker and an exact-length 0-1 BFS router (the
// heap-Dijkstra it replaced is retained as the reference implementation).
//
// The model follows the paper's Fig. 5 semantics: the accelerator's resources
// are replicated along the time dimension (II cycles for a CGRA modulo
// schedule, a single layer for the systolic array), each processing element
// can either compute or route per cycle, and registers buffer values across
// cycles. Every resource-graph edge advances time by exactly one cycle, so a
// route's hop count *is* its temporal distance — the quantity label 4
// (temporal mapping distance) describes.
package rgraph

import "fmt"

// NodeKind classifies a resource-graph node.
type NodeKind uint8

const (
	// KindFU is a function-unit slot at (PE, cycle): it executes one
	// operation or forwards one value per cycle.
	KindFU NodeKind = iota
	// KindReg is a register-file slot at (PE, cycle): it holds up to Cap
	// distinct values across a cycle boundary.
	KindReg
)

func (k NodeKind) String() string {
	switch k {
	case KindFU:
		return "fu"
	case KindReg:
		return "reg"
	}
	return "?"
}

// Node is one resource in the time-extended graph.
type Node struct {
	ID    int
	Kind  NodeKind
	PE    int // PE index in the architecture
	Cycle int // time slot in [0, II)
	Cap   int // capacity in distinct values (FU: 1, Reg: register count)

	// ComputeOK marks FU nodes where operations may be placed (systolic
	// forward-only channels clear it).
	ComputeOK bool
	// RouteOK marks nodes that may carry routed values. CGRA FUs allow
	// compute-or-route; a systolic compute slot is compute-only.
	RouteOK bool

	// OpsMask restricts which dfg.OpKind values may be placed here, as a
	// bitmask over op kinds. Zero means "no ops" (pure routing resource).
	OpsMask uint32
}

// AllowsOp reports whether an operation of the given kind may be placed on n.
func (n *Node) AllowsOp(op uint8) bool {
	return n.ComputeOK && n.OpsMask&(1<<op) != 0
}

// Graph is an immutable time-extended resource graph. Build one per
// (architecture, II) pair via the architecture's BuildRGraph.
type Graph struct {
	II    int
	Nodes []Node

	adj  [][]int32 // out-neighbors
	radj [][]int32 // in-neighbors

	fuAt map[[2]int]int // (pe, cycle) -> FU node ID
}

// NewGraph creates an empty resource graph for the given II.
func NewGraph(ii int) *Graph {
	return &Graph{II: ii, fuAt: make(map[[2]int]int)}
}

// AddNode appends a resource node and returns its ID.
func (g *Graph) AddNode(n Node) int {
	n.ID = len(g.Nodes)
	if n.Cap <= 0 {
		panic("rgraph: node capacity must be positive")
	}
	g.Nodes = append(g.Nodes, n)
	g.adj = append(g.adj, nil)
	g.radj = append(g.radj, nil)
	if n.Kind == KindFU {
		g.fuAt[[2]int{n.PE, n.Cycle}] = n.ID
	}
	return n.ID
}

// AddEdge connects resource a to resource b (a one-cycle advance).
func (g *Graph) AddEdge(a, b int) {
	g.adj[a] = append(g.adj[a], int32(b))
	g.radj[b] = append(g.radj[b], int32(a))
}

// Out returns the out-neighbor IDs of n (shared slice, do not modify).
func (g *Graph) Out(n int) []int32 { return g.adj[n] }

// In returns the in-neighbor IDs of n.
func (g *Graph) In(n int) []int32 { return g.radj[n] }

// FUAt returns the FU node at (pe, cycle), which must exist.
func (g *Graph) FUAt(pe, cycle int) int {
	id, ok := g.fuAt[[2]int{pe, cycle}]
	if !ok {
		panic(fmt.Sprintf("rgraph: no FU at pe=%d cycle=%d", pe, cycle))
	}
	return id
}

// HasFUAt reports whether an FU node exists at (pe, cycle).
func (g *Graph) HasFUAt(pe, cycle int) bool {
	_, ok := g.fuAt[[2]int{pe, cycle}]
	return ok
}

// NumNodes returns the resource count.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// FUs returns the IDs of all FU nodes in ID order.
func (g *Graph) FUs() []int {
	var out []int
	for i := range g.Nodes {
		if g.Nodes[i].Kind == KindFU {
			out = append(out, i)
		}
	}
	return out
}
