// Package arch models the spatial accelerators the paper evaluates: a
// parametric 2-D mesh CGRA (the four baseline/variant CGRAs of §VI) and the
// 5×5 systolic array with Revel-like fixed-function compute units. Each
// architecture knows how to build its time-extended routing resource graph
// for a target II; everything else (mapping, labels, GNN) is
// architecture-agnostic, which is the point of a portable compiler.
package arch

import (
	"fmt"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Arch describes a spatial accelerator to the mapper and label machinery.
type Arch interface {
	// Name identifies the architecture in experiment output.
	Name() string
	// NumPEs returns the processing-element count.
	NumPEs() int
	// Coord returns the (row, col) grid position of a PE.
	Coord(pe int) (row, col int)
	// SpatialDistance is the label-space distance between two PEs; 2-D mesh
	// accelerators use Manhattan distance (paper §III-A).
	SpatialDistance(a, b int) int
	// SupportsOp reports whether an op kind may be placed on the PE.
	SupportsOp(pe int, op dfg.OpKind) bool
	// MaxII is the largest initiation interval the configuration memory
	// supports (24 entries for the CGRAs; 1 for the systolic array).
	MaxII() int
	// MinII is the resource-minimal II for the DFG (paper §V-C: nodes
	// divided by PEs, extended with the memory-port bound).
	MinII(g *dfg.Graph) int
	// BuildRGraph materializes the modulo routing resource graph for ii.
	BuildRGraph(ii int) *rgraph.Graph
}

// MemPolicy selects which PEs can access on-chip memory.
type MemPolicy uint8

const (
	// MemAll lets every PE execute loads and stores (baseline CGRAs).
	MemAll MemPolicy = iota
	// MemLeftColumn restricts memory ops to column-0 PEs ("less memory
	// connectivity" CGRA in §VI).
	MemLeftColumn
)

func (p MemPolicy) String() string {
	if p == MemLeftColumn {
		return "left-column"
	}
	return "all-PEs"
}

// allOpsMask is the op bitmask for a fully general ALU PE.
func allOpsMask() uint32 {
	var m uint32
	for k := 0; k < dfg.NumOpKinds(); k++ {
		m |= 1 << uint(k)
	}
	return m
}

func maskOf(ops ...dfg.OpKind) uint32 {
	var m uint32
	for _, k := range ops {
		m |= 1 << uint(k)
	}
	return m
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// manhattan computes |r1-r2| + |c1-c2|.
func manhattan(r1, c1, r2, c2 int) int {
	dr := r1 - r2
	if dr < 0 {
		dr = -dr
	}
	dc := c1 - c2
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// Validate sanity-checks an architecture (used by tests and the CLI).
func Validate(a Arch) error {
	if a.NumPEs() <= 0 {
		return fmt.Errorf("arch %s: no PEs", a.Name())
	}
	if a.MaxII() < 1 {
		return fmt.Errorf("arch %s: MaxII < 1", a.Name())
	}
	g := a.BuildRGraph(1)
	if g.NumNodes() == 0 {
		return fmt.Errorf("arch %s: empty resource graph", a.Name())
	}
	return nil
}
