// Command lisa-vet runs the repo's determinism & concurrency analyzers
// (internal/analysis) over the packages matching its arguments and reports
// every unsuppressed diagnostic.
//
// Usage:
//
//	lisa-vet [-json] [-list] [packages...]
//
// With no package arguments it analyzes ./... . Exit status is 0 on a
// clean tree, 1 when any diagnostic is reported, and 2 when loading or
// type-checking fails. Diagnostics are suppressed per line with
// //lisa:nondet-ok <reason>; see internal/analysis for the analyzer docs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/lisa-go/lisa/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of file:line text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lisa-vet [-json] [-list] [packages...]\n\n"+
			"Runs LISA's determinism & concurrency analyzers (default: ./...).\n"+
			"Exits 1 if any diagnostic is reported, 2 on load errors.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := analysis.Load("", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisa-vet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analysis.All)

	// Report paths relative to the working directory: shorter, clickable,
	// and stable across checkouts (golden CI logs diff cleanly).
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
				diags[i].File = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "lisa-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lisa-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
