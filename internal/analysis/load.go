package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	suppressions []suppression
	cg           *callGraph // built lazily by CallGraph
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// goList runs `go list -export -deps -json` on the patterns and returns the
// decoded package stream. -export populates each package's Export field
// with the build cache path of its compiled export data, which is how the
// type checker resolves imports without x/tools or re-parsing dependencies.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportImporter resolves imports from `go list -export` build-cache
// artifacts via the stdlib gc importer.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists the packages matching patterns (relative to dir; "" means the
// current directory), parses their non-test Go files with comments, and
// type-checks them against the export data of their dependencies. Test
// files are deliberately out of scope: the invariants guard result-
// producing code, and tests discard errors and read clocks legitimately.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture parses and type-checks a single directory of Go files as the
// package asPath, resolving its imports through `go list -export`. It backs
// the analyzer fixture tests: asPath controls which package-scoped rules
// apply (e.g. a fixture posing as internal/mapper gets the result-package
// checks).
func LoadFixture(dir, asPath string, imports []string) (*Package, error) {
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(dir, append([]string{"--"}, imports...))
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	return checkPackage(fset, exportImporter(fset, exports), asPath, dir, files)
}

// checkPackage parses goFiles (named relative to dir) and type-checks them
// as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: fset,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	for _, name := range goFiles {
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.suppressions = append(pkg.suppressions, collectSuppressions(fset, file)...)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
