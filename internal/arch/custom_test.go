package arch

import (
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/dfg"
)

const sampleSpec = `{
  "name": "diag-3x3",
  "rows": 3, "cols": 3,
  "maxII": 8,
  "defaults": {"registers": 2, "ops": "all"},
  "memory": {"policy": "leftColumn"},
  "links": {"mesh": true, "diagonal": true},
  "pes": [
    {"at": [1, 1], "ops": ["mul", "add"], "registers": 0}
  ]
}`

func TestLoadArchFromSpec(t *testing.T) {
	c, err := LoadArch(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "diag-3x3" || c.NumPEs() != 9 || c.MaxII() != 8 {
		t.Fatalf("basic fields wrong: %s %d %d", c.Name(), c.NumPEs(), c.MaxII())
	}
	if err := Validate(c); err != nil {
		t.Fatal(err)
	}
	// Memory policy: left column only.
	for pe := 0; pe < c.NumPEs(); pe++ {
		_, col := c.Coord(pe)
		if c.SupportsOp(pe, dfg.OpLoad) != (col == 0) {
			t.Errorf("PE %d load support inconsistent with leftColumn", pe)
		}
	}
	// Per-PE override at the center.
	center := c.PEAt(1, 1)
	if c.SupportsOp(center, dfg.OpSub) || !c.SupportsOp(center, dfg.OpMul) {
		t.Error("center PE override not applied")
	}
}

func TestCustomDiagonalDistanceAndLinks(t *testing.T) {
	c, err := LoadArch(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Chebyshev: opposite corners of a 3x3 are 2 apart with diagonals.
	if d := c.SpatialDistance(c.PEAt(0, 0), c.PEAt(2, 2)); d != 2 {
		t.Fatalf("diagonal distance = %d, want 2", d)
	}
	g := c.BuildRGraph(2)
	// FU(0,0) must link to the diagonal neighbor (1,1).
	src := g.FUAt(c.PEAt(0, 0), 0)
	dst := g.FUAt(c.PEAt(1, 1), 1)
	found := false
	for _, nb := range g.Out(src) {
		if int(nb) == dst {
			found = true
		}
	}
	if !found {
		t.Fatal("diagonal link missing from resource graph")
	}
	// Zero-register PEs get no register node.
	for _, n := range g.Nodes {
		if n.PE == c.PEAt(1, 1) && n.Kind != 0 /* KindFU */ {
			t.Fatal("center PE must have no register bank")
		}
	}
}

func TestCustomMinIIPerOpClass(t *testing.T) {
	spec := `{
	  "name": "one-mul", "rows": 2, "cols": 2,
	  "defaults": {"ops": ["add", "load", "store", "const"]},
	  "pes": [{"at": [0, 0], "ops": ["mul", "add", "load", "store", "const"]}]
	}`
	c, err := LoadArch(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	// 3 muls on a fabric with a single multiplier PE -> II >= 3.
	g := dfg.New("m")
	prev := g.AddNode("", dfg.OpLoad)
	for i := 0; i < 3; i++ {
		cur := g.AddNode("", dfg.OpMul)
		g.AddEdge(prev, cur)
		prev = cur
	}
	if got := c.MinII(g); got != 3 {
		t.Fatalf("MinII = %d, want 3", got)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	bad := []string{
		`{}`,                             // no name
		`{"name":"x","rows":0,"cols":3}`, // bad grid
		`{"name":"x","rows":2,"cols":2,"memory":{"policy":"bogus"}}`,
		`{"name":"x","rows":2,"cols":2,"memory":{"policy":"custom"}}`,       // no pes
		`{"name":"x","rows":2,"cols":2,"pes":[{"ops":["add"]}]}`,            // no at
		`{"name":"x","rows":2,"cols":2,"pes":[{"at":[5,0],"ops":["add"]}]}`, // off grid
		`{"name":"x","rows":2,"cols":2,"pes":[{"at":[0,0],"ops":["zap"]}]}`, // bad op
		`{"name":"x","rows":2,"cols":2,"defaults":{"ops":"sometimes"}}`,     // bad label
		`{"name":"x","rows":2,"cols":2,"bogusfield":1}`,                     // unknown field
	}
	for _, src := range bad {
		if _, err := LoadArch(strings.NewReader(src)); err == nil {
			t.Errorf("spec %q should fail", src)
		}
	}
}

func TestCustomTorusWraps(t *testing.T) {
	spec := `{"name":"t","rows":4,"cols":4,"links":{"mesh":true,"torus":true}}`
	c, err := LoadArch(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if d := c.SpatialDistance(c.PEAt(0, 0), c.PEAt(3, 3)); d != 2 {
		t.Fatalf("torus distance = %d, want 2", d)
	}
	g := c.BuildRGraph(1)
	src := g.FUAt(c.PEAt(0, 0), 0)
	wrap := g.FUAt(c.PEAt(0, 3), 0)
	found := false
	for _, nb := range g.Out(src) {
		if int(nb) == wrap {
			found = true
		}
	}
	if !found {
		t.Fatal("torus wrap link missing")
	}
}

func TestCustomEquivalentToBuiltin(t *testing.T) {
	// A spec mirroring the 4x4 baseline must agree with it on the basics.
	spec := `{"name":"clone-4x4","rows":4,"cols":4,"maxII":24,
	          "defaults":{"registers":4,"ops":"all"},
	          "memory":{"policy":"all"},"links":{"mesh":true}}`
	c, err := LoadArch(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBaseline4x4()
	if c.NumPEs() != b.NumPEs() || c.MaxII() != b.MaxII() {
		t.Fatal("shape mismatch")
	}
	for a := 0; a < 16; a++ {
		for z := 0; z < 16; z++ {
			if c.SpatialDistance(a, z) != b.SpatialDistance(a, z) {
				t.Fatal("distance mismatch")
			}
		}
	}
	gc := c.BuildRGraph(3)
	gb := b.BuildRGraph(3)
	if gc.NumNodes() != gb.NumNodes() {
		t.Fatalf("resource counts differ: %d vs %d", gc.NumNodes(), gb.NumNodes())
	}
}
