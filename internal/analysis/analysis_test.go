package analysis

import (
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// goldenCases pairs each analyzer with a fixture package seeded with
// violations (and non-violations) and the golden transcript of the
// diagnostics it must produce.
var goldenCases = []struct {
	name      string // also the golden file stem
	fixture   string // dir under testdata/src/internal/
	asPath    string // import path the fixture poses as
	imports   []string
	analyzers []*Analyzer
}{
	{
		name:      "maprange",
		fixture:   "mapper",
		asPath:    "example.com/fixture/internal/mapper",
		imports:   []string{"sort", "time"},
		analyzers: []*Analyzer{MapRange},
	},
	{
		name:      "wallclock",
		fixture:   "mapper",
		asPath:    "example.com/fixture/internal/mapper",
		imports:   []string{"sort", "time"},
		analyzers: []*Analyzer{WallClock},
	},
	{
		name:      "globalrand",
		fixture:   "randfix",
		asPath:    "example.com/fixture/internal/randfix",
		imports:   []string{"math/rand"},
		analyzers: []*Analyzer{GlobalRand},
	},
	{
		name:      "errdrop",
		fixture:   "errfix",
		asPath:    "example.com/fixture/internal/errfix",
		imports:   []string{"fmt", "os", "strings"},
		analyzers: []*Analyzer{ErrDrop},
	},
	{
		name:    "suppression",
		fixture: "suppressfix",
		// Poses as a result package so the maprange findings the malformed
		// suppressions fail to silence show up next to the suppression
		// diagnostics.
		asPath:    "example.com/fixture/internal/mapper",
		analyzers: []*Analyzer{MapRange},
	},
	{
		name:      "lockorder",
		fixture:   "lockfix",
		asPath:    "example.com/fixture/internal/lockfix",
		imports:   []string{"sync", "time"},
		analyzers: []*Analyzer{LockOrder},
	},
	{
		name:      "goleak",
		fixture:   "leakfix",
		asPath:    "example.com/fixture/internal/leakfix",
		imports:   []string{"time"},
		analyzers: []*Analyzer{GoLeak},
	},
	{
		name:      "hotalloc",
		fixture:   "hotfix",
		asPath:    "example.com/fixture/internal/hotfix",
		imports:   []string{"fmt"},
		analyzers: []*Analyzer{HotAlloc},
	},
	{
		name:      "faultsite",
		fixture:   "fault",
		asPath:    "example.com/fixture/internal/fault",
		analyzers: []*Analyzer{FaultSite},
	},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", "internal", tc.fixture)
			pkg, err := LoadFixture(dir, tc.asPath, tc.imports)
			if err != nil {
				t.Fatalf("LoadFixture(%s): %v", dir, err)
			}
			diags := Run([]*Package{pkg}, tc.analyzers)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; each fixture must seed at least one violation", tc.fixture)
			}
			var b strings.Builder
			for _, d := range diags {
				// Keep goldens machine-independent: base name only.
				d.File = filepath.Base(d.File)
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/analysis -run TestGolden -update`): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesFailViaRealLoader drives the production Load path (go list
// -export) over every fixture package and checks the full analyzer set finds
// the seeded violations — this is the in-process version of the CI gate that
// `lisa-vet` exits nonzero on each fixture.
func TestFixturesFailViaRealLoader(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	patterns := []string{
		"./internal/analysis/testdata/src/internal/mapper",
		"./internal/analysis/testdata/src/internal/randfix",
		"./internal/analysis/testdata/src/internal/errfix",
		"./internal/analysis/testdata/src/internal/suppressfix",
		"./internal/analysis/testdata/src/internal/lockfix",
		"./internal/analysis/testdata/src/internal/leakfix",
		"./internal/analysis/testdata/src/internal/hotfix",
		"./internal/analysis/testdata/src/internal/fault",
	}
	pkgs, err := Load("../..", patterns)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != len(patterns) {
		t.Fatalf("Load returned %d packages, want %d", len(pkgs), len(patterns))
	}
	for _, pkg := range pkgs {
		diags := Run([]*Package{pkg}, All)
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics from seeded-violation fixture", pkg.Path)
		}
	}
}

// TestCollectSuppressions covers the comment-scanning corner cases directly.
func TestCollectSuppressions(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //lisa:vet-ok maprange with a reason
	//lisa:vet-ok maprange
	_ = 2
	_ = 3 //lisa:vet-okay different marker, not ours
	_ = 4 // lisa:vet-ok goleak leading space still counts
	_ = 5 //lisa:vet-ok
	_ = 6 //lisa:nondet-ok legacy marker is kept for reporting
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := collectSuppressions(fset, file)
	want := []struct {
		line     int
		analyzer string
		reason   string
		legacy   bool
	}{
		{4, "maprange", "with a reason", false},
		{5, "maprange", "", false},
		{8, "goleak", "leading space still counts", false},
		{9, "", "", false},
		{10, "", "legacy marker is kept for reporting", true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d suppressions, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		s := got[i]
		if s.line != w.line || s.analyzer != w.analyzer || s.reason != w.reason || s.legacy != w.legacy {
			t.Errorf("suppression %d = {line %d analyzer %q reason %q legacy %v}, want {line %d analyzer %q reason %q legacy %v}",
				i, s.line, s.analyzer, s.reason, s.legacy, w.line, w.analyzer, w.reason, w.legacy)
		}
	}
}

// TestSuppressedLineAbove checks that a well-formed comment suppresses its
// own analyzer's finding on the line below it but nothing else: not two
// lines down, not another analyzer, and never when malformed.
func TestSuppressedLineAbove(t *testing.T) {
	pkg := &Package{suppressions: []suppression{
		{file: "f.go", line: 10, analyzer: "maprange", reason: "x"},
		{file: "f.go", line: 20, analyzer: "maprange"},              // no reason: malformed
		{file: "f.go", line: 30, analyzer: "mapranje", reason: "x"}, // unknown analyzer
		{file: "f.go", line: 40, reason: "legacy", legacy: true},
	}}
	for _, tc := range []struct {
		line     int
		analyzer string
		want     bool
	}{
		{10, "maprange", true},
		{11, "maprange", true},
		{12, "maprange", false},
		{9, "maprange", false},
		{11, "goleak", false}, // scoped: wrong analyzer
		{21, "maprange", false},
		{31, "maprange", false},
		{41, "maprange", false},
	} {
		d := Diagnostic{File: "f.go", Line: tc.line, Analyzer: tc.analyzer}
		if got := pkg.suppressed(d); got != tc.want {
			t.Errorf("suppressed(line %d, %s) = %v, want %v", tc.line, tc.analyzer, got, tc.want)
		}
	}
}

// TestTreeClean is the in-process form of the CI gate `lisa-vet ./...`:
// the repo's own source must pass the full analyzer set with zero
// unsuppressed diagnostics.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list over the whole module")
	}
	pkgs, err := Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, stats := RunWithStats(pkgs, All)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if stats.HotpathFuncs == 0 {
		t.Error("no //lisa:hotpath roots found in the tree; the hotalloc gate is not checking anything")
	}
}

func TestPathHasSuffix(t *testing.T) {
	for _, tc := range []struct {
		path, suffix string
		want         bool
	}{
		{"internal/mapper", "internal/mapper", true},
		{"github.com/lisa-go/lisa/internal/mapper", "internal/mapper", true},
		{"github.com/lisa-go/lisa/internal/remapper", "internal/mapper", false},
		{"example.com/x/testdata/src/internal/mapper", "internal/mapper", true},
	} {
		if got := pathHasSuffix(tc.path, tc.suffix); got != tc.want {
			t.Errorf("pathHasSuffix(%q, %q) = %v, want %v", tc.path, tc.suffix, got, tc.want)
		}
	}
}
