package power

import (
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
)

func TestLowerIIMeansBetterEfficiency(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	p := DefaultParams()
	r2 := Evaluate(ar, g, 2, 10, p)
	r4 := Evaluate(ar, g, 4, 10, p)
	if r2.MOPS <= r4.MOPS {
		t.Fatal("halving II must increase MOPS")
	}
	if r2.MOPSPerWatt <= r4.MOPSPerWatt {
		t.Fatalf("II 2 efficiency %.1f <= II 4 efficiency %.1f",
			r2.MOPSPerWatt, r4.MOPSPerWatt)
	}
}

func TestBiggerArrayBurnsMoreStaticPower(t *testing.T) {
	g := kernels.MustByName("gemm")
	p := DefaultParams()
	small := Evaluate(arch.NewBaseline3x3(), g, 2, 10, p)
	big := Evaluate(arch.NewBaseline8x8(), g, 2, 10, p)
	if big.PowerWatts <= small.PowerWatts {
		t.Fatal("8x8 must draw more power than 3x3 at equal activity")
	}
}

func TestRoutingCostCostsPower(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syr2k")
	p := DefaultParams()
	lean := Evaluate(ar, g, 3, 5, p)
	heavy := Evaluate(ar, g, 3, 50, p)
	if heavy.MOPSPerWatt >= lean.MOPSPerWatt {
		t.Fatal("heavier routing must reduce efficiency")
	}
}

func TestZeroParamsFallBack(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	r := Evaluate(ar, g, 2, 4, ModelParams{})
	if r.MOPSPerWatt <= 0 || r.PowerWatts <= 0 {
		t.Fatalf("fallback params produced %+v", r)
	}
}
