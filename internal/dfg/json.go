package dfg

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the interchange schema for DFGs.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Name string `json:"name"`
	Op   string `json:"op"`
}

// WriteJSON serializes g as JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name}
	for _, n := range g.Nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Op: n.Op.String()})
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, [2]int{e.From, e.To})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jg)
}

// ReadJSON deserializes a DFG written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, fmt.Errorf("dfg: decode JSON: %w", err)
	}
	g := New(jg.Name)
	for i, n := range jg.Nodes {
		op, err := ParseOpKind(n.Op)
		if err != nil {
			return nil, fmt.Errorf("dfg: node %d: %w", i, err)
		}
		g.AddNode(n.Name, op)
	}
	for i, e := range jg.Edges {
		if e[0] < 0 || e[0] >= len(g.Nodes) || e[1] < 0 || e[1] >= len(g.Nodes) {
			return nil, fmt.Errorf("dfg: edge %d out of range", i)
		}
		g.AddEdge(e[0], e[1])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
