// Command fakeowner is a smoke-test stand-in for a lisa-serve peer whose
// model file is corrupt: it answers GET /v1/model/{arch} with a payload
// whose wire checksum and length headers are VALID but whose envelope
// fails gnn.Load's structural validation (no weights). The transport layer
// therefore accepts the bytes and the install layer must reject them — the
// exact split the corrupt-payload containment contract in cluster-smoke.sh
// exercises. Not part of the serving product; used only by scripts/.
package main

import (
	"flag"
	"log"
	"net/http"
	"strconv"

	"github.com/lisa-go/lisa/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8750", "listen address")
	arch := flag.String("arch", "cgra-4x4", "architecture name to claim in the corrupt envelope")
	flag.Parse()

	// Format and arch fields parse; the empty weight set fails validation.
	body := []byte(`{"format":1,"arch":"` + *arch + `","weights":{}}`)

	mux := http.NewServeMux()
	ok := func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) }
	mux.HandleFunc("/healthz", ok)
	mux.HandleFunc("/readyz", ok)
	mux.HandleFunc("/v1/model/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(cluster.ModelSHAHeader, cluster.PayloadSHA(body))
		w.Header().Set(cluster.ModelLenHeader, strconv.Itoa(len(body)))
		_, _ = w.Write(body)
	})

	log.Printf("fakeowner serving corrupt %s model on %s", *arch, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
