// Command lisa-vet runs the repo's determinism & concurrency analyzers
// (internal/analysis) over the packages matching its arguments and reports
// every unsuppressed diagnostic.
//
// Usage:
//
//	lisa-vet [-json] [-list] [-run a,b] [-stats] [packages...]
//
// With no package arguments it analyzes ./... . Exit status is 0 on a
// clean tree, 1 when any diagnostic is reported, and 2 when loading or
// type-checking fails. -run restricts the analyzer set to a comma-
// separated list of names; -stats appends per-analyzer finding and
// suppression counts (part of the JSON object with -json) so suppression
// growth is visible in review. Diagnostics are suppressed per line with
// //lisa:vet-ok <analyzer> <reason>; see internal/analysis for the
// analyzer docs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/lisa-go/lisa/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON instead of file:line text")
	list := flag.Bool("list", false, "list the analyzers and exit")
	runFilter := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	stats := flag.Bool("stats", false, "print per-analyzer finding/suppression counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lisa-vet [-json] [-list] [-run a,b] [-stats] [packages...]\n\n"+
			"Runs LISA's determinism & concurrency analyzers (default: ./...).\n"+
			"Exits 1 if any diagnostic is reported, 2 on load errors.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runFilter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisa-vet:", err)
		os.Exit(2)
	}

	pkgs, err := analysis.Load("", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lisa-vet:", err)
		os.Exit(2)
	}
	diags, runStats := analysis.RunWithStats(pkgs, analyzers)

	// Report paths relative to the working directory: shorter, clickable,
	// and stable across checkouts (golden CI logs diff cleanly).
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
				diags[i].File = rel
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = diags
		if *stats {
			payload = struct {
				Diagnostics []analysis.Diagnostic `json:"diagnostics"`
				Stats       analysis.Stats        `json:"stats"`
			}{diags, runStats}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "lisa-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if *stats {
			printStats(analyzers, runStats)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lisa-vet: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -run filter against the registered set.
func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	if filter == "" {
		return analysis.All, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("-run: unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run: no analyzers selected")
	}
	return out, nil
}

// printStats renders the counters in a fixed, grep-friendly format; the CI
// perf-smoke job asserts on the "hotpath functions" line.
func printStats(analyzers []*analysis.Analyzer, s analysis.Stats) {
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	for name := range s.Findings { // e.g. "suppression" meta-findings
		if !contains(names, name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("stats: %-12s findings=%d suppressions=%d\n", name, s.Findings[name], s.Suppressions[name])
	}
	fmt.Printf("stats: hotpath functions: %d\n", s.HotpathFuncs)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
