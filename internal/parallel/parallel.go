// Package parallel is the deterministic fan-out/fan-in execution layer
// shared by training-data generation and the experiment grid.
//
// The paper ran its evaluation on a 14-core server (1000 training DFGs per
// accelerator, SA median-of-three, §VI); this package lets the repro use
// every core the same way while keeping results bit-identical to a serial
// run. Two rules make that possible:
//
//  1. Ordered fan-in: work items are indexed and every worker writes its
//     result into a caller-owned per-index slot, so output order never
//     depends on goroutine scheduling.
//  2. Per-task seeding: any randomized task derives its seed from
//     (base seed, task index) via DeriveSeed, never from a shared rand.Rand
//     stream, so the value a task computes is a pure function of its index.
//
// Workers <= 0 means runtime.GOMAXPROCS(0); Workers == 1 is the exact
// serial loop (no goroutines are spawned).
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 means GOMAXPROCS). Items are handed out in index order, and
// the call returns only after every fn has finished. With workers == 1 (or
// n <= 1) fn runs on the calling goroutine in strict index order — the
// exact serial loop.
//
// fn must write its result into a caller-owned per-index slot; combined
// with per-index seeding (DeriveSeed) that makes the fan-in deterministic
// regardless of scheduling. A panic in any fn is re-raised on the calling
// goroutine after all workers have drained, mirroring the serial behavior.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = fmt.Errorf("parallel: task %d panicked: %v", i, r)
							}
							panicMu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// MapOrdered evaluates fn(i) for every i in [0, n) with ForEach and returns
// the results in index order — the parallel form of
//
//	out := make([]T, n)
//	for i := range out { out[i] = fn(i) }
func MapOrdered[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// DeriveSeed deterministically derives an independent seed for task index
// from a base seed, so parallel tasks never share a random stream. It is a
// splitmix64 step over the (base, index) pair: well-mixed enough that
// adjacent indices produce unrelated streams, and a pure function, so the
// same (base, index) always yields the same seed on every platform and
// worker count.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
