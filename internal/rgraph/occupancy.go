package rgraph

// Signal identifies a value travelling through the resource graph. The mapper
// uses the producing DFG node's ID, so all routes fanning out from one
// producer share resources for free — a standard routing-resource-graph rule
// without which dense DFGs (syr2k and friends) become unmappable.
type Signal int32

// opSignal marks an FU node occupied by a placed operation rather than a
// routed value. Each placed op gets a distinct negative signal so that a
// route may *end* at its consumer but never pass through another op.
func opSignal(dfgNode int) Signal { return Signal(-1 - dfgNode) }

// Occupancy tracks which signals occupy each resource node. It supports the
// capacity rule (at most Cap distinct signals per node), fan-out sharing
// (re-entering a node already carrying the same signal is free), and
// reference-counted release so overlapping routes unwind correctly.
//
// For speculative mutation (the annealer's movement loop) it offers an undo
// journal: between BeginJournal and RollbackJournal every Use/Release —
// including those issued through PlaceOp/RemoveOp/Commit/Uncommit — is
// recorded, and rollback replays the inverse log in reverse, touching only
// the entries the movement touched. This replaces the per-movement deep
// Clone: rollback cost is O(ops in the movement), not O(resource nodes).
// Clone is retained as the reference snapshot path for differential tests
// and benchmarks.
type Occupancy struct {
	g *Graph
	// occ[node] lists (signal, refcount) pairs; nodes carry few signals so a
	// small slice beats a map.
	occ [][]sigRef

	journaling bool
	journal    []journalOp
}

type sigRef struct {
	sig Signal
	ref int
}

// journalOp records one Use (release=false) or Release (release=true).
type journalOp struct {
	node    int32
	sig     Signal
	release bool
}

// NewOccupancy creates an empty occupancy table for g.
func NewOccupancy(g *Graph) *Occupancy {
	return &Occupancy{g: g, occ: make([][]sigRef, g.NumNodes())}
}

// Clone returns a deep copy (used by movement rollback in SA).
func (o *Occupancy) Clone() *Occupancy {
	c := &Occupancy{g: o.g, occ: make([][]sigRef, len(o.occ))}
	for i, s := range o.occ {
		if len(s) > 0 {
			c.occ[i] = append([]sigRef(nil), s...)
		}
	}
	return c
}

// Reset clears all occupancy.
func (o *Occupancy) Reset() {
	for i := range o.occ {
		o.occ[i] = o.occ[i][:0]
	}
}

// distinct returns the number of distinct signals at node n.
func (o *Occupancy) distinct(n int) int { return len(o.occ[n]) }

// CanEnter reports whether signal sig may use node n: either n already
// carries sig, or n has spare capacity.
func (o *Occupancy) CanEnter(n int, sig Signal) bool {
	for _, r := range o.occ[n] {
		if r.sig == sig {
			return true
		}
	}
	return o.distinct(n) < o.g.Nodes[n].Cap
}

// Carries reports whether node n currently carries signal sig.
func (o *Occupancy) Carries(n int, sig Signal) bool {
	for _, r := range o.occ[n] {
		if r.sig == sig {
			return true
		}
	}
	return false
}

// Use records one use of sig at node n. It panics if the capacity rule would
// be violated; callers must check CanEnter first.
func (o *Occupancy) Use(n int, sig Signal) {
	if o.journaling {
		o.journal = append(o.journal, journalOp{node: int32(n), sig: sig})
	}
	o.use(n, sig)
}

func (o *Occupancy) use(n int, sig Signal) {
	for i := range o.occ[n] {
		if o.occ[n][i].sig == sig {
			o.occ[n][i].ref++
			return
		}
	}
	if o.distinct(n) >= o.g.Nodes[n].Cap {
		panic("rgraph: capacity violated")
	}
	o.occ[n] = append(o.occ[n], sigRef{sig: sig, ref: 1})
}

// Release undoes one Use of sig at node n.
func (o *Occupancy) Release(n int, sig Signal) {
	if o.journaling {
		o.journal = append(o.journal, journalOp{node: int32(n), sig: sig, release: true})
	}
	o.release(n, sig)
}

func (o *Occupancy) release(n int, sig Signal) {
	for i := range o.occ[n] {
		if o.occ[n][i].sig == sig {
			o.occ[n][i].ref--
			if o.occ[n][i].ref == 0 {
				last := len(o.occ[n]) - 1
				o.occ[n][i] = o.occ[n][last]
				o.occ[n] = o.occ[n][:last]
			}
			return
		}
	}
	panic("rgraph: release of absent signal")
}

// BeginJournal arms the undo journal: every subsequent Use/Release is
// recorded until CommitJournal or RollbackJournal. Nested journals are not
// supported; beginning again simply truncates the log.
func (o *Occupancy) BeginJournal() {
	o.journaling = true
	o.journal = o.journal[:0]
}

// CommitJournal accepts the mutations made since BeginJournal and discards
// the log.
func (o *Occupancy) CommitJournal() {
	o.journaling = false
	o.journal = o.journal[:0]
}

// RollbackJournal undoes every Use/Release recorded since BeginJournal by
// replaying the inverse log in reverse order. The restored table is
// semantically identical to the pre-journal state (same signals, same
// refcounts per node); only the internal ordering of a node's entries may
// differ, which no query observes.
func (o *Occupancy) RollbackJournal() {
	o.journaling = false
	for i := len(o.journal) - 1; i >= 0; i-- {
		op := o.journal[i]
		if op.release {
			o.use(int(op.node), op.sig)
		} else {
			o.release(int(op.node), op.sig)
		}
	}
	o.journal = o.journal[:0]
}

// SigRef is an exported (signal, refcount) pair for inspection by tests and
// debugging tools.
type SigRef struct {
	Sig Signal
	Ref int
}

// Entries returns node n's occupants in canonical (signal-sorted) order.
// The internal order is arbitrary — Release swap-removes and rollback
// re-appends — so comparisons must go through this canonical view.
func (o *Occupancy) Entries(n int) []SigRef {
	if len(o.occ[n]) == 0 {
		return nil
	}
	out := make([]SigRef, len(o.occ[n]))
	for i, r := range o.occ[n] {
		out[i] = SigRef{Sig: r.sig, Ref: r.ref}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Sig < out[j-1].Sig; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Equivalent reports whether o and p describe the same occupancy (same
// signals with same refcounts at every node), ignoring internal entry order.
func (o *Occupancy) Equivalent(p *Occupancy) bool {
	if len(o.occ) != len(p.occ) {
		return false
	}
	for n := range o.occ {
		a, b := o.Entries(n), p.Entries(n)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// PlaceOp occupies FU node n with the operation of DFG node v. It reports
// false when the node is already occupied by a different signal.
func (o *Occupancy) PlaceOp(n, v int) bool {
	sig := opSignal(v)
	if !o.CanEnter(n, sig) {
		return false
	}
	o.Use(n, sig)
	return true
}

// RemoveOp releases the operation of DFG node v from FU node n.
func (o *Occupancy) RemoveOp(n, v int) { o.Release(n, opSignal(v)) }

// OpOccupied reports whether node n hosts a placed operation.
func (o *Occupancy) OpOccupied(n int) bool {
	for _, r := range o.occ[n] {
		if r.sig < 0 {
			return true
		}
	}
	return false
}

// CanPlaceOp reports whether an operation could be placed on node n, i.e.
// the node still has spare capacity for a new distinct signal.
func (o *Occupancy) CanPlaceOp(n int) bool {
	return o.distinct(n) < o.g.Nodes[n].Cap
}

// UseCount returns the total distinct signals at n (for congestion metrics).
func (o *Occupancy) UseCount(n int) int { return o.distinct(n) }
