package arch

import (
	"testing"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

func TestTorusDistanceWraps(t *testing.T) {
	tor := NewTorus4x4()
	// Opposite corners: mesh distance 6, torus distance 2.
	a := tor.PEAt(0, 0)
	b := tor.PEAt(3, 3)
	if d := tor.SpatialDistance(a, b); d != 2 {
		t.Fatalf("torus corner distance = %d, want 2", d)
	}
	if d := tor.SpatialDistance(a, a); d != 0 {
		t.Fatal("identity distance broken")
	}
	// Distance never exceeds half the perimeter.
	for x := 0; x < tor.NumPEs(); x++ {
		for y := 0; y < tor.NumPEs(); y++ {
			if tor.SpatialDistance(x, y) > 4 {
				t.Fatalf("torus distance (%d,%d) too large", x, y)
			}
		}
	}
}

func TestTorusRGraphHasWrapLinks(t *testing.T) {
	tor := NewTorus4x4()
	g := tor.BuildRGraph(2)
	// FU(0,0) must reach FU at (0, 3) in one hop via the wrap link.
	src := g.FUAt(tor.PEAt(0, 0), 0)
	dst := g.FUAt(tor.PEAt(0, 3), 1)
	found := false
	for _, nb := range g.Out(src) {
		if int(nb) == dst {
			found = true
		}
	}
	if !found {
		t.Fatal("wrap link missing")
	}
	if err := Validate(tor); err != nil {
		t.Fatal(err)
	}
}

func TestHeteroOpSupport(t *testing.T) {
	h := NewHetero4x4()
	mulPEs := 0
	for pe := 0; pe < h.NumPEs(); pe++ {
		if h.SupportsOp(pe, dfg.OpMul) {
			mulPEs++
			if !h.hasMultiplier(pe) {
				t.Fatalf("PE %d supports mul without a multiplier", pe)
			}
		}
		if !h.SupportsOp(pe, dfg.OpAdd) || !h.SupportsOp(pe, dfg.OpLoad) {
			t.Fatalf("PE %d must keep add/mem support", pe)
		}
	}
	if mulPEs != 8 {
		t.Fatalf("multiplier PEs = %d, want 8 (checkerboard)", mulPEs)
	}
}

func TestHeteroRGraphMasks(t *testing.T) {
	h := NewHetero4x4()
	g := h.BuildRGraph(1)
	for _, n := range g.Nodes {
		if n.Kind != rgraph.KindFU {
			continue
		}
		allows := n.AllowsOp(uint8(dfg.OpMul))
		if allows != h.hasMultiplier(n.PE) {
			t.Fatalf("FU mask inconsistent with multiplier placement at PE %d", n.PE)
		}
	}
}

func TestHeteroMinIIAccountsForMultipliers(t *testing.T) {
	// A DFG with 17 muls on 8 multiplier PEs needs II >= 3.
	g := dfg.New("muls")
	prev := g.AddNode("", dfg.OpLoad)
	for i := 0; i < 17; i++ {
		cur := g.AddNode("", dfg.OpMul)
		g.AddEdge(prev, cur)
		prev = cur
	}
	h := NewHetero4x4()
	if got := h.MinII(g); got != 3 {
		t.Fatalf("hetero MinII = %d, want 3", got)
	}
	base := NewBaseline4x4()
	if got := base.MinII(g); got != 2 {
		t.Fatalf("baseline MinII = %d, want 2", got)
	}
}

func TestExtendedTargetsValid(t *testing.T) {
	ts := ExtendedTargets()
	if len(ts) != 8 {
		t.Fatalf("extended targets = %d, want 8", len(ts))
	}
	for _, a := range ts {
		if err := Validate(a); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}
