package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/mapper"
)

// WriteStoresCSV exports the observable output stream as CSV
// (cycle,iteration,node,addr,value) — the equivalent of the result text
// files the paper's artifact collects for post-processing.
func (t *Trace) WriteStoresCSV(w io.Writer, g *dfg.Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "iteration", "node", "addr", "value"}); err != nil {
		return err
	}
	for _, e := range t.Stores {
		rec := []string{
			strconv.Itoa(e.Cycle),
			strconv.Itoa(e.Iteration),
			g.Nodes[e.Node].Name,
			strconv.FormatInt(int64(e.Addr), 10),
			strconv.FormatInt(int64(e.Value), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ActivityRow is one line of the per-cycle activity trace: what a PE does in
// a given cycle of the steady-state window.
type ActivityRow struct {
	Cycle int // modulo cycle in [0, II)
	PE    int
	// Kind is "compute", "route" or "hold" (value parked in registers).
	Kind string
	// What names the op or the routed signal's producer.
	What string
}

// Activity derives the steady-state activity table from a mapping: every
// (PE, cycle mod II) slot that computes, forwards or holds a value. This is
// the textual version of the configuration memory contents the compiler
// would emit.
func Activity(ar arch.Arch, g *dfg.Graph, r *mapper.Result) ([]ActivityRow, error) {
	if !r.OK {
		return nil, fmt.Errorf("sim: result not OK")
	}
	rg := ar.BuildRGraph(r.II)
	var rows []ActivityRow
	for v := range g.Nodes {
		rows = append(rows, ActivityRow{
			Cycle: r.Time[v] % r.II, PE: r.PE[v],
			Kind: "compute", What: g.Nodes[v].Name,
		})
	}
	seen := map[[3]int]bool{} // (cycle, pe, producer) dedup for fanout shares
	for i, e := range g.Edges {
		path := r.Routes[i]
		for j := 1; j < len(path)-1; j++ {
			n := rg.Nodes[path[j]]
			key := [3]int{n.Cycle, n.PE, e.From}
			if seen[key] {
				continue
			}
			seen[key] = true
			kind := "route"
			if n.Kind == 1 /* KindReg */ {
				kind = "hold"
			}
			rows = append(rows, ActivityRow{
				Cycle: n.Cycle, PE: n.PE, Kind: kind,
				What: g.Nodes[e.From].Name,
			})
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Cycle != rows[b].Cycle {
			return rows[a].Cycle < rows[b].Cycle
		}
		if rows[a].PE != rows[b].PE {
			return rows[a].PE < rows[b].PE
		}
		return rows[a].What < rows[b].What
	})
	return rows, nil
}

// WriteActivityCSV exports the activity table.
func WriteActivityCSV(w io.Writer, ar arch.Arch, g *dfg.Graph, r *mapper.Result) error {
	rows, err := Activity(ar, g, r)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "pe", "row", "col", "kind", "what"}); err != nil {
		return err
	}
	for _, a := range rows {
		row, col := ar.Coord(a.PE)
		rec := []string{
			strconv.Itoa(a.Cycle), strconv.Itoa(a.PE),
			strconv.Itoa(row), strconv.Itoa(col), a.Kind, a.What,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
