package dfg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"
)

// WriteCanonical writes a canonical byte encoding of g's mapping-relevant
// structure: op kinds in node-index order and edges in edge-index order.
// Node and graph names are excluded — a mapping result (per-node PE/time
// arrays, per-edge routes) depends only on indices and op kinds, so two
// graphs that differ only in names canonicalize identically. Index order is
// preserved rather than sorted because result arrays are index-addressed:
// reordering nodes or edges yields a genuinely different response body.
func (g *Graph) WriteCanonical(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "dfg/v1 n=%d e=%d\n", len(g.Nodes), len(g.Edges)); err != nil {
		return err
	}
	for i, n := range g.Nodes {
		if _, err := fmt.Fprintf(w, "n%d %s\n", i, n.Op); err != nil {
			return err
		}
	}
	for i, e := range g.Edges {
		if _, err := fmt.Fprintf(w, "e%d %d>%d\n", i, e.From, e.To); err != nil {
			return err
		}
	}
	return nil
}

// Fingerprint returns the hex SHA-256 of the canonical encoding — the
// content address of the graph's structure.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	_ = g.WriteCanonical(h) // WriteCanonical only fails if the writer does; hash.Hash never errors
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalString returns the canonical encoding as a string (for tests and
// debugging cache keys).
func (g *Graph) CanonicalString() string {
	var b strings.Builder
	_ = g.WriteCanonical(&b) // strings.Builder writes never error
	return b.String()
}
