package parallel

import (
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmptyAndTiny(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn must not run for n=0") })
	ran := false
	ForEach(8, 1, func(i int) {
		if i != 0 {
			t.Fatalf("i = %d", i)
		}
		ran = true
	})
	if !ran {
		t.Fatal("n=1 did not run")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("workers=1 must run in index order, got %v", order)
		}
	}
}

func TestMapOrderedMatchesSerial(t *testing.T) {
	fn := func(i int) int { return i*i + 3 }
	serial := MapOrdered(1, 50, fn)
	for _, workers := range []int{2, 8, 33} {
		if got := MapOrdered(workers, 50, fn); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d diverged from serial: %v vs %v", workers, got, serial)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if workers > 1 && !strings.Contains(r.(error).Error(), "panicked") {
					t.Fatalf("workers=%d: unexpected panic payload %v", workers, r)
				}
			}()
			ForEach(workers, 8, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive counts pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-2) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive counts must default to GOMAXPROCS")
	}
}

func TestDeriveSeed(t *testing.T) {
	// Pure function of (base, index).
	if DeriveSeed(1, 5) != DeriveSeed(1, 5) {
		t.Fatal("DeriveSeed must be deterministic")
	}
	// Distinct across indices and bases (no collisions in a modest window).
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d index=%d", base, i)
			}
			seen[s] = true
		}
	}
}
