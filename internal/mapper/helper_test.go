package mapper

import (
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/labels"
)

// mustMap runs Map and fails the test on a dispatch error (unknown
// algorithm or injected fault — neither can occur in these tests, so any
// error is a bug).
func mustMap(t testing.TB, ar arch.Arch, g *dfg.Graph, alg Algorithm, lbl *labels.Labels, opts Options) Result {
	t.Helper()
	res, err := Map(ar, g, alg, lbl, opts)
	if err != nil {
		t.Fatalf("Map(%s): %v", alg, err)
	}
	return res
}
