// Package fix is the maprange/wallclock fixture. Its directory poses as
// internal/mapper (see LoadFixture's asPath in the tests), so the
// result-package rules apply.
package fix

import "sort"

// rangesMap consumes map entries directly: flagged.
func rangesMap(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// collectThenSort is the blessed idiom: not flagged.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectNoSort collects but never sorts: flagged.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// conditionalCollect collects under a condition and sorts: not flagged.
func conditionalCollect(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// suppressedRange carries an annotation: not flagged.
func suppressedRange(m map[string]int) int {
	n := 0
	//lisa:nondet-ok counting entries; integer addition is commutative
	for range m {
		n++
	}
	return n
}

// sliceRange iterates a slice: maps only, not flagged.
func sliceRange(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
