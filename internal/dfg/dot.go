package dfg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits g in Graphviz DOT format. Node labels show name, op and ID;
// memory ops are shaded so the memory-connectivity constraints are visible at
// a glance.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		attrs := ""
		if n.Op.IsMemory() {
			attrs = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"%s];\n", n.ID, n.Name, n.Op, attrs)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary returns a one-line description used by the CLI tools.
func (g *Graph) Summary() string {
	a := Analyze(g)
	return fmt.Sprintf("%s: %d nodes, %d edges, %d mem ops, critical path %d",
		g.Name, g.NumNodes(), g.NumEdges(), g.MemOpCount(), a.CriticalPath)
}
