package tensor

import "math"

// Adam implements the Adam optimizer with decoupled weight decay (AdamW
// style), matching the paper's training setup: learning rate 0.001 and
// weight decay 0.0005 (§VI-B).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*Tensor
	m, v   [][]float64
	step   int
}

// NewAdam creates an optimizer over the given trainable tensors with the
// paper's hyper-parameters as defaults.
func NewAdam(params []*Tensor) *Adam {
	a := &Adam{
		LR: 0.001, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 0.0005,
		params: params,
	}
	for _, p := range params {
		if !p.RequiresGrad() {
			panic("tensor: Adam over non-trainable tensor")
		}
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// ZeroGrad clears every parameter gradient.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// Step applies one update from the accumulated gradients.
func (a *Adam) Step() {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i := range p.Data {
			g := p.Grad[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mh := m[i] / b1c
			vh := v[i] / b2c
			p.Data[i] -= a.LR * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.Data[i])
		}
	}
}
