// Package leakfix seeds the goleak violation classes: goroutines whose body
// loops forever with no termination path (both a function literal and a
// named function launched with go), time.After armed inside a loop, and a
// send on an unbuffered channel from a spawned goroutine. The ok* functions
// are decoys for the blessed shapes: loops with a done-channel exit, ranging
// over a closable channel, buffered result channels, sends wrapped in a
// select with a cancellation case, and a hoisted Ticker.
package leakfix

import "time"

var sink int

func step() { sink++ }

// spinForever launches a literal that can never return.
func spinForever() {
	go func() {
		for {
			step()
		}
	}()
}

// pump loops forever too; launchPump is the flagged launch site.
func pump() {
	for {
		step()
	}
}

func launchPump() {
	go pump()
}

// pollWithAfter arms a fresh timer every iteration.
func pollWithAfter(events chan int, quit chan struct{}) {
	for {
		select {
		case e := <-events:
			sink += e
		case <-time.After(time.Second):
			step()
		case <-quit:
			return
		}
	}
}

// sendResult hands the result back over an unbuffered channel: if the
// caller stops waiting, the goroutine blocks forever.
func sendResult() int {
	ch := make(chan int)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

func compute() int { return 42 }

// okDone is a decoy: the loop exits through the done channel.
func okDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			step()
		}
	}()
}

// okRange is a decoy: ranging over a channel terminates when it closes.
func okRange(jobs chan int) {
	go func() {
		for j := range jobs {
			sink += j
		}
	}()
}

// okBuffered is a decoy: the size-1 buffer lets the sender finish even if
// the receiver has given up.
func okBuffered() int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute()
	}()
	return <-ch
}

// okSelectSend is a decoy: the send sits in a select with a cancellation
// case, so an abandoned receiver cannot pin the goroutine.
func okSelectSend(done chan struct{}) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-done:
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

// okTicker is a decoy: one Ticker hoisted out of the loop replaces the
// per-iteration time.After.
func okTicker(events chan int, quit chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case e := <-events:
			sink += e
		case <-t.C:
			step()
		case <-quit:
			return
		}
	}
}
