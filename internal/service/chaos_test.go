// Chaos suite: the daemon under deterministic fault injection. Every test
// arms a fault plan (fixed seed), drives real handler traffic — under
// -race in CI — and asserts the crash-proofing contract: no dead daemon,
// degraded responses labeled and deterministic, the cache never poisoned,
// and byte-identical healthy responses once faults are disarmed.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/registry"
)

// armFaults activates a fault plan for the duration of the test.
func armFaults(t *testing.T, spec string, seed int64) {
	t.Helper()
	plan, err := fault.ParsePlan(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	t.Cleanup(fault.Deactivate)
}

// alive asserts the daemon still answers /healthz and /metrics after the
// chaos of the calling test.
func alive(t *testing.T, h http.Handler) {
	t.Helper()
	for _, path := range []string{"/healthz", "/metrics"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("daemon dead: GET %s = %d", path, w.Code)
		}
	}
}

// mapResp decodes a /v1/map body.
func mapResp(t *testing.T, w *httptest.ResponseRecorder) MapResponse {
	t.Helper()
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad /v1/map body: %v: %s", err, w.Body)
	}
	return resp
}

// TestChaosGNNTrainFault: a poisoned on-demand training degrades label
// engines to sa, exactly once per target, with the failure cached.
func TestChaosGNNTrainFault(t *testing.T) {
	armFaults(t, "gnn.train=error:1", 1)
	reg := registry.New(registry.Config{TrainOnDemand: true})
	s := New(Config{}, reg)
	defer s.Close()
	h := s.Handler()

	body := `{"kernel":"atax","arch":"cgra-4x4","engine":"lisa","seed":3}`
	first := postMap(t, h, body)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body)
	}
	resp := mapResp(t, first)
	if resp.EngineUsed != "sa" || len(resp.Result.Degraded) != 1 {
		t.Fatalf("want one lisa-to-sa rung, got engineUsed=%q degraded=%v", resp.EngineUsed, resp.Result.Degraded)
	}
	if s.Cache().Len() != 0 {
		t.Fatal("degraded response entered the cache")
	}
	// Deterministic: the same request is answered byte-identically, and the
	// cached training failure means no second training attempt.
	second := postMap(t, h, body)
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("degraded responses differ:\n%s\n%s", first.Body, second.Body)
	}
	if n := fault.Counts()[fault.GNNTrain]; n != 1 {
		t.Fatalf("training ran %d times for one target, want 1 (failure not cached)", n)
	}
	alive(t, h)
}

// TestChaosMapperAnnealFault: error and panic modes at the anneal site walk
// the full ladder to greedy; both are labeled and deterministic.
func TestChaosMapperAnnealFault(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		t.Run(mode, func(t *testing.T) {
			armFaults(t, "mapper.anneal="+mode+":1", 1)
			s := testServer(t, Config{})
			h := s.Handler()

			body := `{"kernel":"atax","arch":"cgra-4x4","engine":"lisa","seed":3}`
			first := postMap(t, h, body)
			if first.Code != http.StatusOK {
				t.Fatalf("status %d: %s", first.Code, first.Body)
			}
			resp := mapResp(t, first)
			if resp.EngineUsed != "greedy" || len(resp.Result.Degraded) != 2 {
				t.Fatalf("want lisa→sa→greedy, got engineUsed=%q degraded=%v", resp.EngineUsed, resp.Result.Degraded)
			}
			if !resp.Result.OK {
				t.Fatal("greedy rung failed a kernel it can map")
			}
			if s.Cache().Len() != 0 {
				t.Fatal("degraded response entered the cache")
			}
			second := postMap(t, h, body)
			if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
				t.Fatalf("degraded responses differ:\n%s\n%s", first.Body, second.Body)
			}
			alive(t, h)
		})
	}
}

// TestChaosRouterFault: a failing router takes out every engine including
// greedy; the response is still a labeled 200 (OK=false), never a crash.
func TestChaosRouterFault(t *testing.T) {
	armFaults(t, "router.dijkstra=error:1", 1)
	s := testServer(t, Config{})
	h := s.Handler()

	w := postMap(t, h, `{"kernel":"atax","arch":"cgra-4x4","engine":"lisa","seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	resp := mapResp(t, w)
	if len(resp.Result.Degraded) != 2 {
		t.Fatalf("want the full ladder walked, got %v", resp.Result.Degraded)
	}
	if resp.Result.OK {
		t.Fatal("mapping claims OK with every route injected to fail")
	}
	if s.Cache().Len() != 0 {
		t.Fatal("failed mapping entered the cache")
	}
	alive(t, h)
}

// TestChaosCacheGetFault: a failing cache lookup is a forced miss — the
// request is recomputed, the answer stays correct and byte-identical.
func TestChaosCacheGetFault(t *testing.T) {
	armFaults(t, "cache.get=error:1", 1)
	s := testServer(t, Config{})
	h := s.Handler()

	body := `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3}`
	first := postMap(t, h, body)
	second := postMap(t, h, body)
	for _, w := range []*httptest.ResponseRecorder{first, second} {
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body)
		}
		if got := w.Header().Get("X-Lisa-Cache"); got != "miss" {
			t.Fatalf("X-Lisa-Cache = %q, want miss while lookups fail", got)
		}
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("recomputed responses differ:\n%s\n%s", first.Body, second.Body)
	}
	resp := mapResp(t, first)
	if len(resp.Result.Degraded) != 0 {
		t.Fatalf("a cache fault must not degrade the mapping: %v", resp.Result.Degraded)
	}
	alive(t, h)
}

// TestChaosPoolSubmitFault: a failing admission is backpressure — 429, not
// a crash and not a 500.
func TestChaosPoolSubmitFault(t *testing.T) {
	armFaults(t, "pool.submit=error:1", 1)
	s := testServer(t, Config{})
	h := s.Handler()

	w := postMap(t, h, `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
	alive(t, h)
}

// TestChaosRegistryLoadFault: poisoned model-file loads fail the reload
// rescan gracefully and leave no half-registered state behind.
func TestChaosRegistryLoadFault(t *testing.T) {
	armFaults(t, "registry.load=error:1", 1)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "cgra-4x4.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := registry.New(registry.Config{TrainOnDemand: false})
	s := New(Config{ModelsDir: dir}, reg)
	defer s.Close()
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/reload: %d %s", w.Code, w.Body)
	}
	var resp ReloadResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Loaded) != 0 || len(resp.Errors) != 1 {
		t.Fatalf("want one load error and nothing loaded, got %+v", resp)
	}
	if reg.Has("cgra-4x4") {
		t.Fatal("model registered despite the injected load failure")
	}
	alive(t, h)
}

// TestChaosConcurrentProbabilisticFaults is the -race stress: many
// concurrent requests with a 50% anneal-panic plan. Every response must be
// a 200, labeled iff degraded; only clean results may enter the cache; and
// a second identical round must reproduce every body byte-for-byte (the
// fault stream is keyed by plan seed and request seed, not by timing).
func TestChaosConcurrentProbabilisticFaults(t *testing.T) {
	armFaults(t, "mapper.anneal=panic:0.5", 7)
	s := testServer(t, Config{})
	h := s.Handler()

	const n = 24
	round := func() [][]byte {
		bodies := make([][]byte, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"kernel":"atax","arch":"cgra-4x4","engine":"lisa","seed":%d}`, i+1)
				w := postMap(t, h, body)
				if w.Code != http.StatusOK {
					t.Errorf("seed %d: status %d: %s", i+1, w.Code, w.Body)
					return
				}
				bodies[i] = append([]byte(nil), w.Body.Bytes()...)
			}(i)
		}
		wg.Wait()
		return bodies
	}

	first := round()
	if t.Failed() {
		t.FailNow()
	}
	degraded := 0
	for i, b := range first {
		var resp MapResponse
		if err := json.Unmarshal(b, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Result.Degraded) > 0 {
			degraded++
			if resp.EngineUsed != "greedy" {
				t.Fatalf("seed %d: degraded %v but engineUsed=%q", i+1, resp.Result.Degraded, resp.EngineUsed)
			}
		} else if resp.EngineUsed != "" {
			t.Fatalf("seed %d: clean response names engineUsed=%q", i+1, resp.EngineUsed)
		}
	}
	if degraded == 0 || degraded == n {
		t.Fatalf("p=0.5 plan degraded %d/%d requests; the fault stream is not firing probabilistically", degraded, n)
	}
	if got := s.Cache().Len(); got != n-degraded {
		t.Fatalf("cache holds %d entries, want the %d clean results only", got, n-degraded)
	}

	// Determinism: an identical second round (same plan seed, same request
	// seeds) reproduces every body — degraded ones are recomputed, clean
	// ones come from the cache; both must match round one.
	for i, b := range round() {
		if !bytes.Equal(first[i], b) {
			t.Fatalf("seed %d: rounds differ:\n%s\n%s", i+1, first[i], b)
		}
	}
	alive(t, h)
}

// TestChaosDisabledIsByteIdenticalToSeed: with no plan armed, /v1/map
// bodies carry none of the robustness fields (all omitempty), so the wire
// format is byte-identical to the pre-fault-layer daemon.
func TestChaosDisabledIsByteIdenticalToSeed(t *testing.T) {
	if fault.Enabled() {
		t.Fatal("a fault plan leaked into this test")
	}
	s := testServer(t, Config{})
	w := postMap(t, s.Handler(), `{"kernel":"atax","arch":"cgra-4x4","engine":"lisa","seed":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	for _, field := range []string{"degraded", "engineUsed", "deadlineExceeded", "modelError", "defect"} {
		if bytes.Contains(w.Body.Bytes(), []byte(`"`+field+`"`)) {
			t.Fatalf("healthy response leaks the %q field: %s", field, w.Body)
		}
	}
	var snap MetricsSnapshot
	mw := httptest.NewRecorder()
	s.Handler().ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if err := json.Unmarshal(mw.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Faults != nil {
		t.Fatalf("/metrics reports fault counters with no plan armed: %v", snap.Faults)
	}
}
