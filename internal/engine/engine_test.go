package engine

import (
	"reflect"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

func TestParseAcceptsEveryName(t *testing.T) {
	for _, s := range Names() {
		n, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if string(n) != s {
			t.Fatalf("Parse(%q) = %q", s, n)
		}
	}
	if _, err := Parse("annealer-9000"); err == nil {
		t.Fatal("Parse accepted an unknown engine")
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("Parse accepted the empty string")
	}
}

func TestUsesLabels(t *testing.T) {
	want := map[Name]bool{
		LISA: true, SARP: true, Partial: true,
		SA: false, SAM: false, Greedy: false, ILP: false,
	}
	for n, w := range want {
		if n.UsesLabels() != w {
			t.Errorf("%s.UsesLabels() = %v, want %v", n, !w, w)
		}
	}
}

// Every engine must produce a verifiable mapping for gemm on the baseline
// CGRA through the shared dispatch, and the SA-family results must be
// identical to calling the mapper directly — the no-drift guarantee.
func TestMapDispatchMatchesDirectCalls(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{
		Map: mapper.Options{Seed: 3, MaxMoves: 1600},
		ILP: ilp.Options{TimeLimitPerII: 2 * time.Second, MaxCutRounds: 12, MaxVars: 9000, MaxII: 8},
	}
	for _, eng := range Names() {
		n, err := Parse(eng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(ar, g, n, nil, opts)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if !res.OK {
			t.Fatalf("%s: failed to map gemm on cgra-4x4", eng)
		}
		if err := mapper.Verify(ar, g, &res); err != nil {
			t.Fatalf("%s: invalid mapping: %v", eng, err)
		}
		if n == ILP || n == Greedy {
			continue
		}
		direct := mapper.Map(ar, g, mapper.Algorithm(n), nil, opts.Map)
		res.Duration, direct.Duration = 0, 0
		if !reflect.DeepEqual(res, direct) {
			t.Fatalf("%s: dispatch result differs from direct mapper.Map", eng)
		}
	}
}

func TestMapRejectsUnknownEngine(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	if _, err := Map(ar, g, Name("nope"), nil, Options{}); err == nil {
		t.Fatal("Map accepted an unknown engine instead of returning an error")
	}
}
