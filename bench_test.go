// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its figure under the bench
// profile (a trimmed Quick profile, so the whole suite finishes in minutes)
// and logs the paper-style table through b.Log. Absolute numbers differ from
// the paper — the substrate is this repository's simulator stack, not the
// authors' CGRA-ME + 14-core server — but the shapes are the deliverable:
// who maps what, who wins, by roughly what factor. EXPERIMENTS.md records
// paper-vs-measured for every row.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig9b -benchmem
package lisa_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/experiments"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/power"
	"github.com/lisa-go/lisa/internal/traingen"
)

// benchProfile trims the Quick profile so the full suite stays in minutes.
// Workers = 0 fans the experiment grid and dataset generation out over all
// CPUs (the paper's artifact ran on a 14-core server); results are
// identical to a -workers=1 serial run.
func benchProfile() experiments.Profile {
	p := experiments.Quick()
	p.Name = "bench"
	p.MapOpts.MaxMoves = 1400
	p.ILPOpts.TimeLimitPerII = 400 * time.Millisecond
	p.ILPOpts.MaxII = 6
	p.TrainGen.NumDFGs = 24
	p.TrainGen.MapOpts.MaxMoves = 600
	p.TrainCfg.Epochs = 40
	p.Workers = 0
	return p
}

// sharedCtx trains each architecture's GNN once across all benchmarks, as
// the paper's flow does.
var (
	ctxOnce sync.Once
	ctx     *experiments.Context
)

func benchCtx() *experiments.Context {
	ctxOnce.Do(func() { ctx = experiments.NewContext(benchProfile()) })
	return ctx
}

// runFig9 executes one Fig. 9 panel per benchmark iteration.
func runFig9(b *testing.B, id string) {
	c := benchCtx()
	spec, ok := experiments.Fig9SpecByID(id)
	if !ok {
		b.Fatalf("unknown panel %s", id)
	}
	c.ModelFor(spec.Arch) // train outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := c.Fig9(spec)
		b.StopTimer()
		var sb strings.Builder
		cmp.Render(&sb)
		b.Log("\n" + sb.String())
		b.Log(experiments.Summarize([]*experiments.Comparison{cmp}).String())
		b.StartTimer()
	}
}

// BenchmarkFig9a_CGRA3x3 regenerates Fig. 9a: II of ILP/SA/LISA for the 12
// PolyBench DFGs on the 3×3 baseline CGRA.
func BenchmarkFig9a_CGRA3x3(b *testing.B) { runFig9(b, "Fig9a") }

// BenchmarkFig9b_CGRA4x4 regenerates Fig. 9b (4×4 baseline CGRA).
func BenchmarkFig9b_CGRA4x4(b *testing.B) { runFig9(b, "Fig9b") }

// BenchmarkFig9c_LessRouting regenerates Fig. 9c (4×4 CGRA, one register
// per PE).
func BenchmarkFig9c_LessRouting(b *testing.B) { runFig9(b, "Fig9c") }

// BenchmarkFig9d_Unrolled4x4 regenerates Fig. 9d (six unrolled DFGs on the
// 4×4 baseline).
func BenchmarkFig9d_Unrolled4x4(b *testing.B) { runFig9(b, "Fig9d") }

// BenchmarkFig9e_LessMem regenerates Fig. 9e (4×4 CGRA, left-column-only
// memory access).
func BenchmarkFig9e_LessMem(b *testing.B) { runFig9(b, "Fig9e") }

// BenchmarkFig9f_Unrolled8x8 regenerates Fig. 9f (eight unrolled DFGs on
// the 8×8 CGRA).
func BenchmarkFig9f_Unrolled8x8(b *testing.B) { runFig9(b, "Fig9f") }

// BenchmarkFig9g_Systolic regenerates Fig. 9g (✓/✗ mapping on the 5×5
// systolic accelerator).
func BenchmarkFig9g_Systolic(b *testing.B) { runFig9(b, "Fig9g") }

// BenchmarkFig10_PowerEfficiency regenerates Fig. 10: MOPS/W normalized to
// LISA on the 3×3 and 4×4 baseline CGRAs.
func BenchmarkFig10_PowerEfficiency(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"Fig9a", "Fig9b"} {
			spec, _ := experiments.Fig9SpecByID(id)
			cmp := c.Fig9(spec)
			rows := experiments.Fig10(cmp, power.DefaultParams())
			b.StopTimer()
			var sb strings.Builder
			experiments.RenderPower(&sb, "Fig10/"+spec.Arch.Name(), cmp.Methods, rows)
			b.Log("\n" + sb.String())
			b.StartTimer()
		}
	}
}

// BenchmarkFig11_CompileTime regenerates Fig. 11: compilation time on the
// 3×3 and 4×4 baseline CGRAs, with the LISA-vs-ILP and LISA-vs-SA reduction
// factors the paper quotes (594×/17× and 724×/12×).
func BenchmarkFig11_CompileTime(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"Fig9a", "Fig9b"} {
			spec, _ := experiments.Fig9SpecByID(id)
			cmp := c.Fig9(spec)
			rows := experiments.Fig11(cmp)
			b.StopTimer()
			var sb strings.Builder
			experiments.RenderTimes(&sb, "Fig11/"+spec.Arch.Name(), cmp.Methods, rows)
			b.Log("\n" + sb.String())
			b.StartTimer()
		}
	}
}

// BenchmarkTable2_GNNAccuracy regenerates Table II: per-label GNN prediction
// accuracy for all six accelerators.
func BenchmarkTable2_GNNAccuracy(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		rows := c.Table2(arch.PaperTargets())
		b.StopTimer()
		var sb strings.Builder
		experiments.RenderTable2(&sb, rows)
		b.Log("\n" + sb.String())
		b.StartTimer()
	}
}

// BenchmarkFig12_RoutingPriority regenerates Fig. 12: vanilla SA vs SA with
// only the label-4 routing priority vs full LISA, on the 4×4 baseline and
// the less-routing variant.
func BenchmarkFig12_RoutingPriority(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		for _, ar := range []arch.Arch{arch.NewBaseline4x4(), arch.NewLessRouting4x4()} {
			cmp := c.Fig12(ar)
			b.StopTimer()
			var sb strings.Builder
			cmp.Render(&sb)
			b.Log("\n" + sb.String())
			b.StartTimer()
		}
	}
}

// BenchmarkFig13_SAM regenerates Fig. 13: SA vs SA-M (10× movements) vs
// LISA on original and unrolled DFGs (4×4 baseline).
func BenchmarkFig13_SAM(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		orig, unrolled := c.Fig13()
		b.StopTimer()
		var sb strings.Builder
		orig.Render(&sb)
		unrolled.Render(&sb)
		b.Log("\n" + sb.String())
		b.StartTimer()
	}
}

// BenchmarkAblation_GreedyPlacement compares Algorithm 1's normal-
// distribution candidate selection (σ = max{1, α·T − Acc}) against always
// taking the minimum-cost PE (α→0 keeps σ at its floor, i.e. near-greedy),
// isolating design decision 3 of DESIGN.md.
func BenchmarkAblation_GreedyPlacement(b *testing.B) {
	names := []string{"bicg", "syr2k", "gesummv", "symm"}
	for i := 0; i < b.N; i++ {
		stochOK, greedyOK := 0, 0
		for _, name := range names {
			g := kernels.MustByName(name)
			ar := arch.NewLessRouting4x4()
			stoch, err := mapper.Map(ar, g, mapper.AlgLISA, nil,
				mapper.Options{Seed: 5, MaxMoves: 1200, Alpha: 0.15})
			if err != nil {
				b.Fatal(err)
			}
			greedy, err := mapper.Map(ar, g, mapper.AlgLISA, nil,
				mapper.Options{Seed: 5, MaxMoves: 1200, Alpha: 1e-9})
			if err != nil {
				b.Fatal(err)
			}
			if stoch.OK {
				stochOK++
			}
			if greedy.OK {
				greedyOK++
			}
		}
		b.StopTimer()
		b.Logf("normal-distribution selection maps %d/%d; near-greedy maps %d/%d",
			stochOK, len(names), greedyOK, len(names))
		b.StartTimer()
	}
}

// BenchmarkAblation_PartialSA compares the partial label-aware SA used for
// training-data generation (labels seed only the initial mapping) with full
// label-aware SA, isolating design decision 4 of DESIGN.md.
func BenchmarkAblation_PartialSA(b *testing.B) {
	g := kernels.MustByName("atax")
	ar := arch.NewBaseline4x4()
	for i := 0; i < b.N; i++ {
		part, err := mapper.Map(ar, g, mapper.AlgPart, nil, mapper.Options{Seed: 2, MaxMoves: 1200})
		if err != nil {
			b.Fatal(err)
		}
		full, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: 2, MaxMoves: 1200})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Logf("partial: ok=%v II=%d moves=%d; full: ok=%v II=%d moves=%d",
			part.OK, part.II, part.Moves, full.OK, full.II, full.Moves)
		b.StartTimer()
	}
}

// BenchmarkAblation_LabelFilter measures how many generated DFGs the §V-C
// filter e = O + σ·N rejects versus accepting everything, isolating design
// decision 5 of DESIGN.md.
func BenchmarkAblation_LabelFilter(b *testing.B) {
	c := benchCtx()
	for i := 0; i < b.N; i++ {
		cfg := c.Profile.TrainGen
		cfg.Seed = 12345
		ds := traingen.Generate(arch.NewBaseline4x4(), cfg)
		b.StopTimer()
		b.Logf("generated %d, mapped %d, admitted by filter %d",
			ds.Stats.Generated, ds.Stats.Mapped, ds.Stats.Admitted)
		b.StartTimer()
	}
}

// runTraingen measures dataset generation at a fixed worker count; the
// resulting dataset is identical at every setting, so the two benchmarks
// below isolate the fan-out speedup.
func runTraingen(b *testing.B, workers int) {
	cfg := benchProfile().TrainGen
	cfg.Seed = 1
	cfg.NumDFGs = 16
	cfg.Workers = workers
	ar := arch.NewBaseline4x4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := traingen.Generate(ar, cfg)
		if ds.Stats.Generated != cfg.NumDFGs {
			b.Fatal("generation incomplete")
		}
	}
}

// BenchmarkTraingenSerial generates the training dataset on one worker (the
// exact serial path).
func BenchmarkTraingenSerial(b *testing.B) { runTraingen(b, 1) }

// BenchmarkTraingenParallel generates the same dataset with one worker per
// CPU; compare against BenchmarkTraingenSerial for the fan-out speedup.
func BenchmarkTraingenParallel(b *testing.B) { runTraingen(b, 0) }

// BenchmarkMapperCore measures the raw label-aware mapper on one kernel —
// the inner loop every figure exercises.
func BenchmarkMapperCore(b *testing.B) {
	g := kernels.MustByName("gemm")
	ar := arch.NewBaseline4x4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mapper.Map(ar, g, mapper.AlgLISA, nil,
			mapper.Options{Seed: int64(i), MaxMoves: 1200})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			b.Fatal("map failed")
		}
	}
}

// benchmarkMapperPortfolio is the shared body of the portfolio benchmarks:
// the unrolled atax kernel (dense enough that seeds disagree about II) with
// a K-chain restart portfolio. Besides ns/op it reports the mapping-quality
// metrics the BENCH_mapper.json portfolio block records: mean II, mean
// routed hops, failures, and a per-seed scalar cost (II·1000 + hops, 10⁶
// for a failed map). Chain 0 of every portfolio IS the K=1 run, so for any
// common seed set cost(K=4) ≤ cost(K=1) must hold — the bench script's
// --check gate enforces it.
func benchmarkMapperPortfolio(b *testing.B, k int) {
	g, err := kernels.Unrolled("atax")
	if err != nil {
		b.Fatal(err)
	}
	ar := arch.NewBaseline4x4()
	b.ReportAllocs()
	iiSum, hopSum, fails, costSum := 0, 0, 0, 0
	for i := 0; i < b.N; i++ {
		res, err := mapper.Map(ar, g, mapper.AlgLISA, nil,
			mapper.Options{Seed: int64(i), MaxMoves: 1200, Restarts: k})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK {
			fails++
			costSum += 1_000_000
			continue
		}
		hops := 0
		for _, h := range res.EdgeHops {
			hops += h
		}
		iiSum += res.II
		hopSum += hops
		costSum += res.II*1000 + hops
	}
	n := float64(b.N)
	b.ReportMetric(float64(iiSum)/n, "II/op")
	b.ReportMetric(float64(hopSum)/n, "hops/op")
	b.ReportMetric(float64(fails)/n, "fails/op")
	b.ReportMetric(float64(costSum)/n, "cost/op")
}

// BenchmarkMapperPortfolioK1 is the single-chain baseline of the portfolio
// comparison (identical to the pre-portfolio annealer on every seed).
func BenchmarkMapperPortfolioK1(b *testing.B) { benchmarkMapperPortfolio(b, 1) }

// BenchmarkMapperPortfolioK4 races four diverse chains per II attempt. With
// chains running concurrently its wall-clock per op is close to K1's, while
// its cost/op is bounded above by K1's on any common seed set.
func BenchmarkMapperPortfolioK4(b *testing.B) { benchmarkMapperPortfolio(b, 4) }

// BenchmarkPortability_ExtendedTargets sweeps a kernel set over the paper's
// six accelerators plus the torus and heterogeneous CGRA variants with the
// list-scheduling, SA and LISA engines — the "new accelerator, no manual
// retuning" scenario the paper motivates.
func BenchmarkPortability_ExtendedTargets(b *testing.B) {
	c := benchCtx()
	names := []string{"gemm", "bicg", "syr2k", "cholesky"}
	for i := 0; i < b.N; i++ {
		cmps := c.Portability(names)
		b.StopTimer()
		var sb strings.Builder
		for _, cmp := range cmps {
			cmp.Render(&sb)
		}
		b.Log("\n" + sb.String())
		b.Log(experiments.Summarize(cmps).String())
		b.StartTimer()
	}
}
