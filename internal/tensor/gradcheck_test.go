package tensor

import (
	"math/rand"
	"testing"
)

// This file is the systematic finite-difference audit of the tape: one test
// per differentiable op, each comparing every analytic input gradient against
// a central-difference estimate. tensor_test.go keeps a few op gradients
// covered incidentally; the suite here is the exhaustive one that CI runs
// under -race next to the fused-vs-taped differential tests.

// gradCheck runs forward once, backpropagates, and compares the analytic
// gradient of every parameter entry against numericalGrad.
func gradCheck(t *testing.T, params []*Tensor, forward func() *Tensor, tol float64) {
	t.Helper()
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	Backward(forward())
	for pi, p := range params {
		for idx := range p.Data {
			num := numericalGrad(p, idx, func() float64 { return forward().Data[0] })
			if !approxEqual(p.Grad[idx], num, tol) {
				t.Errorf("param %d grad[%d] = %v, numerical %v", pi, idx, p.Grad[idx], num)
			}
		}
	}
}

// kinkFree nudges every entry away from zero so ReLU's kink and Reciprocal's
// eps guard never sit inside the finite-difference window.
func kinkFree(p *Tensor, margin float64) {
	for i, v := range p.Data {
		if v >= 0 && v < margin {
			p.Data[i] = v + margin
		}
		if v < 0 && v > -margin {
			p.Data[i] = v - margin
		}
	}
}

func TestGradCheckMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := Param(rng, 3, 4)
	b := Param(rng, 4, 2)
	target := FromRows([][]float64{{0.3, -0.2}, {1, 0.5}, {-0.4, 0.1}})
	gradCheck(t, []*Tensor{a, b}, func() *Tensor {
		return MSE(MatMul(a, b), target)
	}, 1e-4)
}

func TestGradCheckAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	a := Param(rng, 2, 3)
	b := Param(rng, 2, 3)
	target := New(2, 3)
	gradCheck(t, []*Tensor{a, b}, func() *Tensor {
		return MSE(Add(a, b), target)
	}, 1e-4)
}

func TestGradCheckMul(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	a := Param(rng, 2, 3)
	b := Param(rng, 2, 3)
	target := New(2, 3)
	gradCheck(t, []*Tensor{a, b}, func() *Tensor {
		return MSE(Mul(a, b), target)
	}, 1e-4)
}

func TestGradCheckReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	x := Param(rng, 3, 3)
	kinkFree(x, 1e-3) // keep the finite-difference window off the kink
	target := New(3, 3)
	gradCheck(t, []*Tensor{x}, func() *Tensor {
		return MSE(ReLU(x), target)
	}, 1e-4)
}

func TestGradCheckConcatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	a := Param(rng, 3, 2)
	b := Param(rng, 3, 1)
	c := Param(rng, 3, 3)
	target := New(3, 6)
	gradCheck(t, []*Tensor{a, b, c}, func() *Tensor {
		return MSE(ConcatCols(a, b, c), target)
	}, 1e-4)
}

func TestGradCheckReciprocal(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	x := Param(rng, 2, 4)
	for i := range x.Data {
		x.Data[i] = x.Data[i]/2 + 1.5 // all entries well above the eps guard
	}
	target := New(2, 4)
	gradCheck(t, []*Tensor{x}, func() *Tensor {
		return MSE(Reciprocal(x, 1e-9), target)
	}, 1e-4)
}

func TestGradCheckAggregateAllKinds(t *testing.T) {
	sets := [][]int{{0, 2}, {1}, {0, 1, 2, 3}, {}}
	target := New(4, 2)
	for _, kind := range []AggKind{AggMean, AggSum, AggMax, AggMin} {
		x := Param(rand.New(rand.NewSource(int64(107+kind))), 4, 2)
		// Spread entries so max/min winners are unique: a tie would make the
		// analytic subgradient and the two-sided difference legitimately
		// disagree.
		for i := range x.Data {
			x.Data[i] += float64(i) * 0.37
		}
		gradCheck(t, []*Tensor{x}, func() *Tensor {
			return MSE(Aggregate(x, sets, kind), target)
		}, 1e-3)
	}
}

func TestGradCheckMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	pred := Param(rng, 2, 3)
	target := FromRows([][]float64{{0.5, -1, 2}, {0, 1, -0.5}})
	gradCheck(t, []*Tensor{pred}, func() *Tensor {
		return MSE(pred, target)
	}, 1e-4)
}

// TestGradCheckDeepComposite chains every op into one loss and checks the
// full tape end to end: relu(x@w1) aggregated, concatenated with an
// element-wise branch, through a reciprocal, into MSE.
func TestGradCheckDeepComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	w1 := Param(rng, 3, 4)
	w2 := Param(rng, 3, 4)
	x := FromRows([][]float64{{1, -0.5, 0.25}, {-1, 1, 0.5}, {0.3, 0.7, -0.9}, {2, 0.1, 1.1}})
	sets := [][]int{{0, 1}, {2, 3}, {1, 2}}
	forward := func() *Tensor {
		h := ReLU(MatMul(x, w1))
		agg := Aggregate(h, sets, AggMean)
		branch := Mul(MatMul(x, w2), MatMul(x, w2))
		joined := ConcatCols(agg, Aggregate(branch, sets, AggSum))
		r := Reciprocal(Add(joined, onesLike(joined, 2)), 1e-9)
		return MSE(r, New(3, 8))
	}
	gradCheck(t, []*Tensor{w1, w2}, forward, 1e-3)
}

// onesLike returns a constant tensor shaped like t filled with v, to shift a
// composite away from Reciprocal's guard region.
func onesLike(t *Tensor, v float64) *Tensor {
	out := New(t.Rows, t.Cols)
	for i := range out.Data {
		out.Data[i] = v
	}
	return out
}

// TestMSEEmptyPanics locks in the zero-length guard: an empty prediction is
// an upstream shape bug and must fail loudly, not divide by zero.
func TestMSEEmptyPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MSE of an empty tensor must panic")
		}
		if s, ok := r.(string); !ok || !containsStr(s, "empty") {
			t.Fatalf("panic message %v does not mention emptiness", r)
		}
	}()
	MSE(New(0, 3), New(0, 3))
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
