// Portability: the same kernels, six different spatial accelerators, one
// compiler. This is the paper's headline scenario — LISA adapts to each
// target without handcrafting, while vanilla simulated annealing degrades on
// the harder ones.
//
//	go run ./examples/portability
package main

import (
	"fmt"

	lisa "github.com/lisa-go/lisa"
)

func main() {
	kernelNames := []string{"gemm", "bicg", "syr2k", "trmm"}

	fmt.Println("kernel x accelerator matrix — cell shows LISA II / SA II (0 = cannot map)")
	fmt.Printf("%-10s", "")
	for _, ar := range lisa.Targets() {
		fmt.Printf("%22s", ar.Name())
	}
	fmt.Println()

	for _, name := range kernelNames {
		fmt.Printf("%-10s", name)
		for _, ar := range lisa.Targets() {
			g, err := lisa.Kernel(name)
			if err != nil {
				panic(err)
			}
			fw := lisa.New(ar)
			fw.MapOpts.Seed = 7
			fw.MapOpts.MaxMoves = 1600

			withLabels, err := fw.Map(g)
			if err != nil {
				panic(err)
			}
			baseline, err := fw.MapBaseline(g)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%22s", fmt.Sprintf("%d / %d", withLabels.II, baseline.II))
		}
		fmt.Println()
	}

	fmt.Println("\nNotes:")
	fmt.Println(" - trmm cannot map on systolic-5x5: its triangular guard needs cmp/select,")
	fmt.Println("   which fixed-function multiply/add units do not provide (paper Fig. 9g).")
	fmt.Println(" - on the systolic array an II of 1 simply means 'mapped'.")
}
