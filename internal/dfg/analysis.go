package dfg

import "math/bits"

// Analysis caches the structural properties of a DFG that the Attributes
// Generator (paper §IV-A), the label machinery and the mappers all consume:
// ASAP/ALAP levels, ancestor/descendant sets, and the critical-path length.
// Build one with Analyze; it is immutable afterwards.
type Analysis struct {
	G *Graph

	// ASAP holds each node's as-soon-as-possible level: source nodes are 0,
	// every other node is 1 + max over predecessors. The paper uses ASAP as
	// the base scheduling order and as a node attribute.
	ASAP []int

	// ALAP holds each node's as-late-as-possible level measured on the same
	// scale as ASAP (sinks sit at CriticalPath).
	ALAP []int

	// CriticalPath is the number of nodes on the longest dependency chain
	// minus one, i.e. max(ASAP). The paper normalizes the schedule-order
	// label to "the length of the longest path".
	CriticalPath int

	// Topo is a deterministic topological order.
	Topo []int

	ancestors   []bitset // transitive predecessors, one bitset per node
	descendants []bitset // transitive successors
}

// bitset is a fixed-width bit vector over node IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// intersects reports whether b and o share any set bit.
func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Analyze computes the cached structural analysis of g. It panics if g is
// cyclic (Validate catches that earlier in every pipeline).
func Analyze(g *Graph) *Analysis {
	topo, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	n := g.NumNodes()
	a := &Analysis{
		G:           g,
		ASAP:        make([]int, n),
		ALAP:        make([]int, n),
		Topo:        topo,
		ancestors:   make([]bitset, n),
		descendants: make([]bitset, n),
	}

	for _, v := range topo {
		lvl := 0
		for _, p := range g.Pred(v) {
			if a.ASAP[p]+1 > lvl {
				lvl = a.ASAP[p] + 1
			}
		}
		a.ASAP[v] = lvl
		if lvl > a.CriticalPath {
			a.CriticalPath = lvl
		}
	}

	for i := range a.ALAP {
		a.ALAP[i] = a.CriticalPath
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range g.Succ(v) {
			if a.ALAP[s]-1 < a.ALAP[v] {
				a.ALAP[v] = a.ALAP[s] - 1
			}
		}
	}

	for _, v := range topo {
		b := newBitset(n)
		for _, p := range g.Pred(v) {
			b.set(p)
			b.or(a.ancestors[p])
		}
		a.ancestors[v] = b
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		b := newBitset(n)
		for _, s := range g.Succ(v) {
			b.set(s)
			b.or(a.descendants[s])
		}
		a.descendants[v] = b
	}
	return a
}

// NumAncestors returns the number of transitive predecessors of v
// (node attribute 4 in §IV-A).
func (a *Analysis) NumAncestors(v int) int { return a.ancestors[v].count() }

// NumDescendants returns the number of transitive successors of v
// (node attribute 5 in §IV-A).
func (a *Analysis) NumDescendants(v int) int { return a.descendants[v].count() }

// IsAncestor reports whether u is a transitive predecessor of v.
func (a *Analysis) IsAncestor(u, v int) bool { return a.ancestors[v].has(u) }

// IsDescendant reports whether u is a transitive successor of v.
func (a *Analysis) IsDescendant(u, v int) bool { return a.descendants[v].has(u) }

// HaveCommonAncestor reports whether u and v share a transitive predecessor.
func (a *Analysis) HaveCommonAncestor(u, v int) bool {
	return a.ancestors[u].intersects(a.ancestors[v])
}

// HaveCommonDescendant reports whether u and v share a transitive successor.
func (a *Analysis) HaveCommonDescendant(u, v int) bool {
	return a.descendants[u].intersects(a.descendants[v])
}

// NodesBetween counts the nodes whose ASAP value lies strictly between the
// ASAP values of u and v (edge attribute 2 in §IV-A).
func (a *Analysis) NodesBetween(u, v int) int {
	lo, hi := a.ASAP[u], a.ASAP[v]
	if lo > hi {
		lo, hi = hi, lo
	}
	n := 0
	for w := range a.ASAP {
		if a.ASAP[w] > lo && a.ASAP[w] < hi {
			n++
		}
	}
	return n
}

// NodesAtLevel counts the nodes whose ASAP value equals lvl.
func (a *Analysis) NodesAtLevel(lvl int) int {
	n := 0
	for _, l := range a.ASAP {
		if l == lvl {
			n++
		}
	}
	return n
}

// NodesWithASAPBetween counts nodes with lo < ASAP < hi.
func (a *Analysis) NodesWithASAPBetween(lo, hi int) int {
	n := 0
	for _, l := range a.ASAP {
		if l > lo && l < hi {
			n++
		}
	}
	return n
}

// ClosestCommonAncestor returns the common ancestor of u and v with the
// largest ASAP value (closest to the pair) and the larger of the two hop
// distances from u and v to it. ok is false when none exists.
func (a *Analysis) ClosestCommonAncestor(u, v int) (anc, dist int, ok bool) {
	best := -1
	for w := range a.ASAP {
		if a.ancestors[u].has(w) && a.ancestors[v].has(w) {
			if best == -1 || a.ASAP[w] > a.ASAP[best] {
				best = w
			}
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	du := a.hopDistanceUp(u, best)
	dv := a.hopDistanceUp(v, best)
	if dv > du {
		du = dv
	}
	return best, du, true
}

// ClosestCommonDescendant returns the common descendant of u and v with the
// smallest ASAP value and the larger hop distance from u and v to it.
func (a *Analysis) ClosestCommonDescendant(u, v int) (desc, dist int, ok bool) {
	best := -1
	for w := range a.ASAP {
		if a.descendants[u].has(w) && a.descendants[v].has(w) {
			if best == -1 || a.ASAP[w] < a.ASAP[best] {
				best = w
			}
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	du := a.hopDistanceDown(u, best)
	dv := a.hopDistanceDown(v, best)
	if dv > du {
		du = dv
	}
	return best, du, true
}

// hopDistanceUp returns the shortest edge count from anc down to v (BFS over
// successor edges starting at anc, restricted to ancestors of v plus v).
func (a *Analysis) hopDistanceUp(v, anc int) int {
	return a.shortestHops(anc, v)
}

// hopDistanceDown returns the shortest edge count from v down to desc.
func (a *Analysis) hopDistanceDown(v, desc int) int {
	return a.shortestHops(v, desc)
}

// shortestHops returns the shortest directed path length (in edges) from s to
// t, or 0 if t is unreachable (callers only ask for reachable pairs).
func (a *Analysis) shortestHops(s, t int) int {
	if s == t {
		return 0
	}
	n := a.G.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range a.G.Succ(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				if w == t {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return 0
}

// PathNodeCount returns the number of intermediate nodes on the shortest
// directed path from s to t (path length - 1), or 0 when s and t are
// adjacent or unreachable. Dummy-edge attributes 6 and 7 use it.
func (a *Analysis) PathNodeCount(s, t int) int {
	h := a.shortestHops(s, t)
	if h <= 1 {
		return 0
	}
	return h - 1
}

// SameLevelPair describes two nodes with equal ASAP value, no direct
// dependency, and a common ancestor or descendant — the endpoints of a dummy
// edge (paper §III-A, label 2).
type SameLevelPair struct {
	A, B int
}

// SameLevelPairs enumerates all dummy edges of the DFG in deterministic
// (A,B) order with A < B.
func (a *Analysis) SameLevelPairs() []SameLevelPair {
	var pairs []SameLevelPair
	n := a.G.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if a.ASAP[u] != a.ASAP[v] {
				continue
			}
			// Same ASAP value implies no direct dependency.
			if a.HaveCommonAncestor(u, v) || a.HaveCommonDescendant(u, v) {
				pairs = append(pairs, SameLevelPair{A: u, B: v})
			}
		}
	}
	return pairs
}
