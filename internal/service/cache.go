package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: canonical request key →
// serialized response body, bounded by an LRU entry count. Values are the
// exact bytes served on the original miss, so a hit is byte-identical to
// the response the first requester saw — the determinism contract of
// /v1/map (see hash.go for what the key covers).
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache bounded to max entries (minimum 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, refreshing its recency. The returned
// slice is shared and must not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add stores body under key, evicting the least-recently-used entry when
// the bound is exceeded. Re-adding an existing key refreshes its recency
// but keeps the original body: results are content-addressed, so the first
// bytes stored for a key are the bytes every later hit must see.
func (c *Cache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup deduplicates concurrent identical requests (singleflight):
// the first caller for a key becomes the leader and computes; followers
// that arrive before the leader finishes block and receive the leader's
// exact bytes. Entries are removed on completion, so later requests go
// through the cache instead.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	body    []byte
	status  int
	err     error
	waiters int // followers currently blocked on done (under flightGroup.mu)
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. The boolean reports
// whether this caller shared another caller's execution (true = follower).
// cancel, when non-nil, lets a follower stop waiting early (e.g. its client
// hung up); the leader always runs fn to completion so the result can be
// cached for everyone else.
func (g *flightGroup) do(key string, cancel <-chan struct{}, fn func() ([]byte, int, error)) (body []byte, status int, err error, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		call.waiters++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.body, call.status, call.err, true
		case <-cancel:
			return nil, 0, errCanceled, true
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.body, call.status, call.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.body, call.status, call.err, false
}

// waiting reports how many followers are blocked on key's in-flight call
// (tests synchronize on this before releasing a gated leader).
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call.waiters
	}
	return 0
}
