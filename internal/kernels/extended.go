package kernels

import "github.com/lisa-go/lisa/internal/dfg"

// Extended suite: kernels beyond the 12 the paper maps (CGRA-ME could not
// lower every PolyBench kernel; these four exercise structures the core
// twelve do not — stencils with wide reuse, four-array gemver traffic, a
// division, and a guarded sqrt-free Cholesky step). They feed the
// portability tests and examples, not the paper figures.

// ExtendedNames lists the extra kernels.
func ExtendedNames() []string {
	return []string{"jacobi1d", "gemver", "cholesky", "stencil2d"}
}

func init() {
	registry["jacobi1d"] = jacobi1d
	registry["gemver"] = gemver
	registry["cholesky"] = cholesky
	registry["stencil2d"] = stencil2d
}

// jacobi1d: B[i] = 0.33 * (A[i-1] + A[i] + A[i+1]).
func jacobi1d() *dfg.Graph {
	b := dfg.NewBuilder("jacobi1d")
	pA, pB := b.Const("pA"), b.Const("pB")
	im1, i, ip1 := b.Const("im1"), b.Const("i"), b.Const("ip1")
	third := b.Const("third")
	l0 := b.Load("A_im1", b.Addr("a0", pA, im1))
	l1 := b.Load("A_i", b.Addr("a1", pA, i))
	l2 := b.Load("A_ip1", b.Addr("a2", pA, ip1))
	s1 := b.Add("s1", l0, l1)
	s2 := b.Add("s2", s1, l2)
	m := b.Mul("scaled", third, s2)
	b.Store("stB", b.Addr("aB", pB, i), m)
	return b.Graph()
}

// gemver (inner slice): A[i][j] += u1[i]*v1[j] + u2[i]*v2[j].
func gemver() *dfg.Graph {
	b := dfg.NewBuilder("gemver")
	pA, pu1, pv1, pu2, pv2 := b.Const("pA"), b.Const("pu1"), b.Const("pv1"), b.Const("pu2"), b.Const("pv2")
	j := b.Const("j")
	lu1 := b.Load("u1", pu1)
	lv1 := b.Load("v1", b.Addr("av1", pv1, j))
	m1 := b.Mul("u1v1", lu1, lv1)
	lu2 := b.Load("u2", pu2)
	lv2 := b.Load("v2", b.Addr("av2", pv2, j))
	m2 := b.Mul("u2v2", lu2, lv2)
	s := b.Add("rank2", m1, m2)
	aA := b.Addr("aA", pA, j)
	// gemver updates A in place: the loaded element feeds the sum.
	s2 := b.Add("acc", s, b.Load("A_ij", aA))
	b.Store("stA", aA, s2)
	return b.Graph()
}

// cholesky (inner update): A[j][k] -= A[j][i] * A[k][i] / A[i][i].
func cholesky() *dfg.Graph {
	b := dfg.NewBuilder("cholesky")
	pA, pJI, pKI, pII := b.Const("pA"), b.Const("pJI"), b.Const("pKI"), b.Const("pII")
	k := b.Const("k")
	lji := b.Load("A_ji", pJI)
	lki := b.Load("A_ki", pKI)
	lii := b.Load("A_ii", pII)
	m := b.Mul("prod", lji, lki)
	d := b.Div("scaled", m, lii)
	aJK := b.Addr("aJK", pA, k)
	ljk := b.Load("A_jk", aJK)
	s := b.Sub("upd", ljk, d)
	b.Store("stA", aJK, s)
	return b.Graph()
}

// stencil2d: five-point stencil with distinct coefficients.
func stencil2d() *dfg.Graph {
	b := dfg.NewBuilder("stencil2d")
	pIn, pOut := b.Const("pIn"), b.Const("pOut")
	c, n, s, e, w := b.Const("cc"), b.Const("cn"), b.Const("cs"), b.Const("ce"), b.Const("cw")
	idx := b.Const("idx")
	up, down := b.Const("idxN"), b.Const("idxS")
	lc := b.Load("in_c", b.Addr("ac", pIn, idx))
	ln := b.Load("in_n", b.Addr("an", pIn, up))
	ls := b.Load("in_s", b.Addr("as", pIn, down))
	mc := b.Mul("wc", c, lc)
	mn := b.Mul("wn", n, ln)
	ms := b.Mul("ws", s, ls)
	// East/west reuse the center row load with shifted coefficients (the
	// row buffer a stencil engine keeps); this keeps the load count at the
	// systolic edge capacity.
	me := b.Mul("we", e, lc)
	mw := b.Mul("ww", w, lc)
	s1 := b.Add("s1", mc, mn)
	s2 := b.Add("s2", s1, ms)
	s3 := b.Add("s3", s2, me)
	s4 := b.Add("s4", s3, mw)
	b.Store("stOut", b.Addr("ao", pOut, idx), s4)
	return b.Graph()
}
