package service

import (
	"container/list"
	"sync"
)

// Cache is the in-memory (L1) content-addressed result cache: canonical
// request key → serialized response body, LRU-bounded by entry count AND
// by total body bytes — a handful of large inline-DFG responses must not
// dominate daemon memory just because the entry count is low. Values are
// the exact bytes served on the original miss, so a hit is byte-identical
// to the response the first requester saw — the determinism contract of
// /v1/map (see hash.go for what the key covers). When a persistent store
// is configured it sits behind this cache as the L2: L1 evictions lose
// only latency, never results.
type Cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache bounded to max entries (minimum 1) and, when
// maxBytes > 0, to maxBytes of total body bytes. The most recent entry is
// always kept even if it alone exceeds maxBytes: serving one oversized
// result beats recomputing it per request.
func NewCache(max int, maxBytes int64) *Cache {
	if max < 1 {
		max = 1
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Cache{
		max:      max,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, refreshing its recency. The returned
// slice is shared and must not be mutated.
//
//lisa:hotpath every /v1/map request takes this read before anything else; a hit must not allocate
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add stores body under key, evicting least-recently-used entries while
// either bound is exceeded. Re-adding an existing key refreshes its recency
// but keeps the original body: results are content-addressed, so the first
// bytes stored for a key are the bytes every later hit must see.
func (c *Cache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.order.Len() > 1 && (c.order.Len() > c.max || (c.maxBytes > 0 && c.bytes > c.maxBytes)) {
		last := c.order.Back()
		c.order.Remove(last)
		e := last.Value.(*cacheEntry)
		c.bytes -= int64(len(e.body))
		delete(c.entries, e.key)
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes reports the total body bytes currently held.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightResult is what one singleflight execution produced: the response
// bytes (or error), plus the dispositions the serving layer needs — via
// records how a clustered request was satisfied ("" local, "proxied",
// "fallback-local"), and noStore marks bodies that must not enter any
// cache tier (degraded or deadline-curtailed runs).
type flightResult struct {
	body    []byte
	status  int
	err     error
	via     string
	noStore bool
}

// flightGroup deduplicates concurrent identical requests (singleflight):
// the first caller for a key becomes the leader and computes; followers
// that arrive before the leader finishes block and receive the leader's
// exact bytes. Entries are removed on completion, so later requests go
// through the cache instead. In cluster mode the leader may be proxying to
// the owning peer rather than computing — the dedup holds across the hop,
// so N concurrent identical requests on a non-owner node cost one RPC.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	res     flightResult
	waiters int // followers currently blocked on done (under flightGroup.mu)
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers. The boolean reports
// whether this caller shared another caller's execution (true = follower).
// cancel, when non-nil, lets a follower stop waiting early (e.g. its client
// hung up); the leader always runs fn to completion so the result can be
// cached for everyone else.
func (g *flightGroup) do(key string, cancel <-chan struct{}, fn func() flightResult) (res flightResult, shared bool) {
	g.mu.Lock()
	if call, ok := g.calls[key]; ok {
		call.waiters++
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.res, true
		case <-cancel:
			return flightResult{err: errCanceled}, true
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.calls[key] = call
	g.mu.Unlock()

	call.res = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(call.done)
	return call.res, false
}

// waiting reports how many followers are blocked on key's in-flight call
// (tests synchronize on this before releasing a gated leader).
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.calls[key]; ok {
		return call.waiters
	}
	return 0
}
