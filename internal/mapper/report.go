package mapper

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Utilization summarizes how a successful mapping uses the accelerator —
// the compiler-report counterpart of the II number.
type Utilization struct {
	II int
	// FUCompute is the fraction of (PE, cycle) slots executing an op.
	FUCompute float64
	// FURoute is the fraction of (PE, cycle) slots forwarding a value.
	FURoute float64
	// RegSlots is the number of register (or channel) slot-cycles holding
	// a value.
	RegSlots int
	// BusiestPE and BusiestLoad report the PE with the most activity and
	// its slot count.
	BusiestPE   int
	BusiestLoad int
	// ScheduleLength is the makespan of one iteration in cycles.
	ScheduleLength int
}

// Utilize computes utilization for a successful mapping.
func Utilize(ar arch.Arch, g *dfg.Graph, r *Result) (Utilization, error) {
	if !r.OK {
		return Utilization{}, fmt.Errorf("mapper: result not OK")
	}
	rg := ar.BuildRGraph(r.II)
	u := Utilization{II: r.II}

	fuBusy := map[int]bool{} // FU resource -> computing
	perPE := make([]int, ar.NumPEs())
	for v := range g.Nodes {
		fu := rg.FUAt(r.PE[v], r.Time[v]%r.II)
		fuBusy[fu] = true
		perPE[r.PE[v]]++
		if end := r.Time[v] + 1; end > u.ScheduleLength {
			u.ScheduleLength = end
		}
	}
	fuRouting := map[int]bool{}
	for _, path := range r.Routes {
		for i := 1; i < len(path)-1; i++ {
			n := &rg.Nodes[path[i]]
			switch n.Kind {
			case rgraph.KindFU:
				if !fuBusy[path[i]] {
					fuRouting[path[i]] = true
				}
				perPE[n.PE]++
			case rgraph.KindReg:
				u.RegSlots++
			}
		}
	}
	totalFU := ar.NumPEs() * r.II
	u.FUCompute = float64(len(fuBusy)) / float64(totalFU)
	u.FURoute = float64(len(fuRouting)) / float64(totalFU)
	for pe, n := range perPE {
		if n > u.BusiestLoad {
			u.BusiestLoad = n
			u.BusiestPE = pe
		}
	}
	return u, nil
}

// String renders the utilization one-liner.
func (u Utilization) String() string {
	return fmt.Sprintf(
		"II=%d sched=%d cycles, FU compute %.0f%%, FU route %.0f%%, reg slot-cycles %d, busiest PE %d (%d slots)",
		u.II, u.ScheduleLength, 100*u.FUCompute, 100*u.FURoute,
		u.RegSlots, u.BusiestPE, u.BusiestLoad)
}

// ScheduleTable renders the mapping as a time × PE grid: each cell names the
// op executing there (by node name) or "·" for idle/routing slots. Rows are
// absolute cycles of one iteration.
func ScheduleTable(ar arch.Arch, g *dfg.Graph, r *Result) string {
	if !r.OK {
		return "(no mapping)"
	}
	maxT := 0
	for _, t := range r.Time {
		if t > maxT {
			maxT = t
		}
	}
	colW := 8
	var b strings.Builder
	fmt.Fprintf(&b, "%5s", "cycle")
	for pe := 0; pe < ar.NumPEs(); pe++ {
		row, col := ar.Coord(pe)
		fmt.Fprintf(&b, "%*s", colW, fmt.Sprintf("(%d,%d)", row, col))
	}
	b.WriteByte('\n')

	byCell := map[[2]int]string{}
	for v := range g.Nodes {
		byCell[[2]int{r.Time[v], r.PE[v]}] = g.Nodes[v].Name
	}
	for t := 0; t <= maxT; t++ {
		fmt.Fprintf(&b, "%5d", t)
		for pe := 0; pe < ar.NumPEs(); pe++ {
			name := byCell[[2]int{t, pe}]
			if name == "" {
				name = "·"
			}
			if len(name) >= colW {
				name = name[:colW-1]
			}
			fmt.Fprintf(&b, "%*s", colW, name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CriticalEdges returns the edge IDs sorted by route length, longest first —
// the "long edges need more routing resources" view that motivates label 4.
func CriticalEdges(g *dfg.Graph, r *Result) []int {
	ids := make([]int, g.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if r.EdgeHops[ids[a]] != r.EdgeHops[ids[b]] {
			return r.EdgeHops[ids[a]] > r.EdgeHops[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids
}
