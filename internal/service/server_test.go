package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/engine"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/registry"
)

// testServer builds a server whose registry has a pre-seeded (untrained)
// model per CGRA so label engines never fall into minutes of training.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	reg := registry.New(registry.Config{TrainOnDemand: false})
	for _, name := range arch.Names() {
		reg.Put(gnn.NewModel(rand.New(rand.NewSource(1)), name))
	}
	s := New(cfg, reg)
	t.Cleanup(s.Close)
	return s
}

func postMap(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/map", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestMapMissThenHitByteIdentical(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	body := `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}`

	miss := postMap(t, h, body)
	if miss.Code != http.StatusOK {
		t.Fatalf("miss status %d: %s", miss.Code, miss.Body)
	}
	if got := miss.Header().Get("X-Lisa-Cache"); got != "miss" {
		t.Fatalf("first request X-Lisa-Cache = %q", got)
	}
	hit := postMap(t, h, body)
	if hit.Code != http.StatusOK {
		t.Fatalf("hit status %d", hit.Code)
	}
	if got := hit.Header().Get("X-Lisa-Cache"); got != "hit" {
		t.Fatalf("second request X-Lisa-Cache = %q", got)
	}
	if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatal("cache hit body differs from the original miss")
	}

	var resp MapResponse
	if err := json.Unmarshal(miss.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Result.OK || resp.Result.II <= 0 {
		t.Fatalf("gemm/sa/seed7 failed to map: %+v", resp.Result)
	}
	if resp.Result.Duration != 0 {
		t.Fatal("response leaked wall-clock duration; bodies cannot be deterministic")
	}

	// The response matches a direct engine invocation with the same inputs
	// (the CLI path), so service and CLI agree II-for-II.
	direct, err := engine.Map(arch.NewBaseline4x4(), kernels.MustByName("gemm"), engine.SA, nil,
		engine.Options{Map: mapper.Options{Seed: 7, MaxMoves: 2400, TimeLimit: 30 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	if direct.II != resp.Result.II || direct.Moves != resp.Result.Moves {
		t.Fatalf("service II=%d moves=%d, direct II=%d moves=%d",
			resp.Result.II, resp.Result.Moves, direct.II, direct.Moves)
	}

	snap := s.Metrics().Snapshot(time.Now(), s.Cache().Len(), s.Cache().Bytes())
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", snap.Cache.Hits, snap.Cache.Misses)
	}
	if snap.Cache.HitRatio != 0.5 {
		t.Fatalf("hit ratio %v, want 0.5", snap.Cache.HitRatio)
	}
}

// N concurrent identical requests run the annealer exactly once and all see
// the same bytes (run with -race: this is the singleflight acceptance test).
func TestConcurrentIdenticalRequestsSingleMapperRun(t *testing.T) {
	s := testServer(t, Config{Workers: 4, QueueDepth: 64})
	h := s.Handler()
	body := `{"kernel":"atax","arch":"cgra-4x4","engine":"sa","seed":3}`

	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postMap(t, h, body)
			if w.Code != http.StatusOK {
				t.Errorf("request %d: status %d", i, w.Code)
				return
			}
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	snap := s.Metrics().Snapshot(time.Now(), s.Cache().Len(), s.Cache().Bytes())
	sa := snap.Engines["sa"]
	if sa.Count != 1 {
		t.Fatalf("mapper ran %d times for %d identical requests, want exactly 1", sa.Count, n)
	}
	if got := snap.Cache.Hits + snap.Cache.Misses + snap.Cache.Coalesced; got != n {
		t.Fatalf("hits+misses+coalesced = %d, want %d", got, n)
	}
	if snap.Cache.Misses != 1 {
		t.Fatalf("misses = %d, want 1", snap.Cache.Misses)
	}
}

func TestMapInlineDFGMatchesKernel(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	var dfgJSON bytes.Buffer
	if err := kernels.MustByName("gemm").WriteJSON(&dfgJSON); err != nil {
		t.Fatal(err)
	}
	inline := postMap(t, h, fmt.Sprintf(`{"dfg":%s,"arch":"cgra-4x4","engine":"sa","seed":7}`, dfgJSON.String()))
	if inline.Code != http.StatusOK {
		t.Fatalf("inline DFG status %d: %s", inline.Code, inline.Body)
	}
	// Content addressing: the equivalent named-kernel request must hit.
	named := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}`)
	if got := named.Header().Get("X-Lisa-Cache"); got != "hit" {
		t.Fatalf("named kernel after inline DFG: X-Lisa-Cache = %q, want hit", got)
	}
	var a, b MapResponse
	json.Unmarshal(inline.Body.Bytes(), &a)
	json.Unmarshal(named.Body.Bytes(), &b)
	if a.Result.II != b.Result.II {
		t.Fatalf("inline II=%d, named II=%d", a.Result.II, b.Result.II)
	}
}

func TestMapLabelEngineUsesRegistry(t *testing.T) {
	s := testServer(t, Config{})
	w := postMap(t, s.Handler(), `{"kernel":"gemm","arch":"cgra-4x4","engine":"lisa","seed":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("lisa engine status %d: %s", w.Code, w.Body)
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Result.OK {
		t.Fatal("lisa engine failed to map gemm")
	}
}

func TestMapWithoutModelDegradesToSA(t *testing.T) {
	// No model and no on-demand training: the ladder substitutes plain SA
	// for the label engine and says so, rather than failing the request.
	reg := registry.New(registry.Config{TrainOnDemand: false})
	s := New(Config{}, reg)
	defer s.Close()
	w := postMap(t, s.Handler(), `{"kernel":"gemm","arch":"cgra-4x4","engine":"lisa"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via the degradation ladder: %s", w.Code, w.Body)
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.EngineUsed != "sa" {
		t.Fatalf("engineUsed = %q, want sa", resp.EngineUsed)
	}
	if len(resp.Result.Degraded) == 0 || !strings.Contains(resp.Result.Degraded[0], "lisa\u2192sa") && !strings.Contains(resp.Result.Degraded[0], "lisa->sa") {
		t.Fatalf("degraded chain = %v, want a lisa-to-sa rung", resp.Result.Degraded)
	}
	// Degraded results must not poison the cache.
	if got := s.Cache().Len(); got != 0 {
		t.Fatalf("cache has %d entries after a degraded response, want 0", got)
	}
	w2 := postMap(t, s.Handler(), `{"kernel":"gemm","arch":"cgra-4x4","engine":"lisa"}`)
	if w2.Header().Get("X-Lisa-Cache") == "hit" {
		t.Fatal("degraded response was served from the cache")
	}
}

func TestMapBadRequests(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	cases := map[string]string{
		"both kernel and dfg":    `{"kernel":"gemm","dfg":{"name":"x"},"arch":"cgra-4x4"}`,
		"neither kernel nor dfg": `{"arch":"cgra-4x4"}`,
		"unknown arch":           `{"kernel":"gemm","arch":"tpu-9000"}`,
		"unknown engine":         `{"kernel":"gemm","arch":"cgra-4x4","engine":"magic"}`,
		"unknown kernel":         `{"kernel":"nope","arch":"cgra-4x4"}`,
		"unknown field":          `{"kernel":"gemm","arch":"cgra-4x4","turbo":true}`,
		"broken json":            `{`,
	}
	for what, body := range cases {
		if w := postMap(t, h, body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", what, w.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/map", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/map: status %d, want 405", w.Code)
	}
}

func TestAdmissionControl429(t *testing.T) {
	s := testServer(t, Config{Workers: 1, QueueDepth: -1})
	h := s.Handler()

	// Occupy the single worker so the next mapping request finds a full pool.
	// With an unbuffered queue TrySubmit only succeeds once the worker is
	// parked in its receive, so retry until it picks the blocker up.
	block := make(chan struct{})
	started := make(chan struct{})
	for !s.pool.TrySubmit(func() { close(started); <-block }) {
		time.Sleep(time.Millisecond)
	}
	<-started

	w := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 with a saturated pool", w.Code)
	}
	close(block)

	snap := s.Metrics().Snapshot(time.Now(), 0, 0)
	if snap.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", snap.Rejected)
	}
	// After the blocker drains, the same request succeeds.
	deadlineOK := func() bool {
		w := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa"}`)
		return w.Code == http.StatusOK
	}
	for i := 0; i < 100 && !deadlineOK(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDiscoveryAndHealthEndpoints(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	var archs []ArchInfo
	if w := get("/v1/archs"); w.Code != http.StatusOK {
		t.Fatalf("/v1/archs: %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &archs); err != nil {
		t.Fatal(err)
	}
	if len(archs) != len(arch.Names()) {
		t.Fatalf("archs: %d rows, want %d", len(archs), len(arch.Names()))
	}
	for _, a := range archs {
		if a.PEs <= 0 || a.MaxII <= 0 {
			t.Fatalf("arch row %+v not populated", a)
		}
		if !a.ModelReady {
			t.Fatalf("arch %s should have a pre-seeded model", a.Name)
		}
	}

	var ks []KernelInfo
	if w := get("/v1/kernels"); w.Code != http.StatusOK {
		t.Fatalf("/v1/kernels: %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &ks); err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(kernels.Names()) {
		t.Fatalf("kernels: %d rows, want %d", len(ks), len(kernels.Names()))
	}
	for _, k := range ks {
		if k.Nodes == 0 || k.Edges == 0 {
			t.Fatalf("kernel row %+v not populated", k)
		}
	}

	if w := get("/healthz"); w.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", w.Code)
	}
	var m MetricsSnapshot
	if w := get("/metrics"); w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["/v1/archs"] != 1 || m.Requests["/healthz"] != 1 {
		t.Fatalf("request counters wrong: %+v", m.Requests)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	s.Close()

	if w := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4"}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("map while draining: %d, want 503", w.Code)
	}
	// Liveness stays green while draining — the process is alive, it just
	// refuses new work; /readyz is what takes the node out of rotation.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness)", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", w.Code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || !ready.Draining {
		t.Fatalf("readyz body %+v, want ready=false draining=true", ready)
	}
}

func TestDeadlineCapsAndStatsField(t *testing.T) {
	s := testServer(t, Config{MaxDeadline: time.Minute})
	h := s.Handler()
	w := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":2,"deadlineMs":600000,"stats":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Utilization == nil || resp.Utilization.II != resp.Result.II {
		t.Fatalf("stats=true returned no utilization: %+v", resp.Utilization)
	}
}
