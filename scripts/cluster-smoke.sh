#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end smoke test for distributed lisa-serve.
#
# Starts a 3-node cluster (static peer list, per-node persistent store),
# sends the same mapping request to every node, and asserts the distributed
# serving contract:
#
#   1. every node answers byte-identically;
#   2. the fleet ran the mapper exactly once for the one distinct request
#      (consistent-hash routing + cross-hop singleflight);
#   3. after restarting a node, it serves the request from its persistent
#      store byte-identically with zero fresh mapper invocations.
#
# Then the warm-model-shipping contract, on a second two-node fleet:
#
#   4. a fresh -train=false replica joining a warm ring answers a label
#      request byte-identically to the warm peer, with zero local training
#      runs and provenance=shipped;
#   5. with model.fetch armed at prob=1 the same replica answers a
#      structured 503 (train disabled) or falls back to local training
#      and answers 200 (train enabled, provenance=trained);
#   6. a corrupt shipped payload (valid wire checksum, invalid envelope)
#      is rejected and cached as a permanent failure — and /v1/reload
#      heals the cache so the fetch is retried, not cached away.
#
# Usage: scripts/cluster-smoke.sh [port-base]   (default 8741)

set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${1:-8741}"
BIN=bin/lisa-serve
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/lisa-serve

URLS=()
for i in 0 1 2; do
  URLS+=("http://127.0.0.1:$((PORT_BASE + i))")
done
PEERS="$(IFS=,; echo "${URLS[*]}")"

start_node() { # start_node <index>
  local i="$1"
  "$BIN" -addr "127.0.0.1:$((PORT_BASE + i))" -train=false \
    -store-dir "$WORK/store$i" -peers "$PEERS" -self "${URLS[$i]}" \
    >"$WORK/node$i.log" 2>&1 &
  PIDS[$i]=$!
}

wait_ready() { # wait_ready <url>
  for _ in $(seq 1 50); do
    curl -sf "$1/readyz" >/dev/null && return 0
    sleep 0.2
  done
  echo "node $1 never became ready" >&2
  return 1
}

# engine_runs <url>: total mapper invocations on one node. In the /metrics
# document only engine blocks pair "count" with a following "failures" key
# (histogram entries pair it with "leMillis"), so the match is unambiguous.
engine_runs() {
  local doc
  doc="$(curl -sf "$1/metrics")" || return 1
  # grep exits 1 on a node that never ran the mapper; that is a valid 0.
  printf '%s' "$doc" |
    { grep -o '"count":[0-9]*,"failures"' || true; } |
    { grep -o '[0-9]*' || true; } |
    awk '{sum += $1} END {print sum + 0}'
}

for i in 0 1 2; do start_node "$i"; done
for u in "${URLS[@]}"; do wait_ready "$u"; done
echo "3-node cluster up: $PEERS"

req='{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}'
for i in 0 1 2; do
  curl -sf -X POST -d "$req" -o "$WORK/resp$i.json" "${URLS[$i]}/v1/map"
done
cmp "$WORK/resp0.json" "$WORK/resp1.json"
cmp "$WORK/resp0.json" "$WORK/resp2.json"
echo "bodies byte-identical across all 3 nodes"

total=0
for u in "${URLS[@]}"; do
  runs="$(engine_runs "$u")"
  total=$((total + runs))
done
echo "fleet-wide mapper runs: $total"
test "$total" -eq 1

# Restart node 0: its store must answer the request with no fresh compute.
kill "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
start_node 0
wait_ready "${URLS[0]}"
curl -sf -X POST -d "$req" -o "$WORK/restart.json" "${URLS[0]}/v1/map"
cmp "$WORK/resp0.json" "$WORK/restart.json"
runs="$(engine_runs "${URLS[0]}")"
echo "restarted node mapper runs: $runs"
test "$runs" -eq 0
curl -sf "${URLS[0]}/metrics" | grep -q '"store":{' || {
  echo "restarted node /metrics has no store block" >&2
  exit 1
}

echo "--- warm model shipping ---"

# A separate two-node fleet: one warm trainer, one cold -train=false
# replica that must inherit the trained model over the wire.
WARM="http://127.0.0.1:$((PORT_BASE + 3))"
COLD="http://127.0.0.1:$((PORT_BASE + 4))"
WPEERS="$WARM,$COLD"
lreq='{"arch":"cgra-4x4","kernels":["gemm"]}'

start_cold() { # start_cold <extra flags...>; (re)starts the cold node
  "$BIN" -addr "127.0.0.1:$((PORT_BASE + 4))" \
    -peers "$WPEERS" -self "$COLD" "$@" >"$WORK/cold.log" 2>&1 &
  PIDS[4]=$!
}

"$BIN" -addr "127.0.0.1:$((PORT_BASE + 3))" -train -train-dfgs 4 -train-epochs 2 \
  -peers "$WPEERS" -self "$WARM" >"$WORK/warm.log" 2>&1 &
PIDS[3]=$!
wait_ready "$WARM"

# Warm the ring: this request trains cgra-4x4's model on the warm node.
curl -sf -X POST -d "$lreq" -o "$WORK/warm-labels.json" "$WARM/v1/labels"

start_cold -train=false
wait_ready "$COLD"
curl -sf -X POST -d "$lreq" -o "$WORK/cold-labels.json" "$COLD/v1/labels"
cmp "$WORK/warm-labels.json" "$WORK/cold-labels.json"
echo "cold replica's labels byte-identical to the warm peer's"

cold_metrics="$(curl -sf "$COLD/metrics")"
echo "$cold_metrics" | grep -q '"trainRuns":0' || {
  echo "cold replica trained locally; wanted a shipped model" >&2
  exit 1
}
echo "$cold_metrics" | grep -q '"fetches":1' || {
  echo "cold replica /metrics does not record exactly one model fetch" >&2
  exit 1
}
curl -sf "$COLD/v1/archs" | grep -q '"modelProvenance":"shipped"' || {
  echo "cold replica does not report provenance=shipped" >&2
  exit 1
}
echo "cold replica: 0 train runs, 1 fetch, provenance=shipped"

# model.fetch armed, train disabled: the ladder bottoms out at a
# structured 503, and the daemon stays alive.
kill "${PIDS[4]}"; wait "${PIDS[4]}" 2>/dev/null || true
start_cold -train=false -faults 'model.fetch=error:1'
wait_ready "$COLD"
code="$(curl -s -o "$WORK/f503.json" -w '%{http_code}' -X POST -d "$lreq" "$COLD/v1/labels")"
test "$code" -eq 503
grep -q '"error"' "$WORK/f503.json"
curl -sf "$COLD/healthz" >/dev/null
echo "model.fetch armed + train disabled: structured 503, daemon alive"

# model.fetch armed, train enabled: fallback-to-train answers 200 with
# provenance=trained and the failed fetch on record.
kill "${PIDS[4]}"; wait "${PIDS[4]}" 2>/dev/null || true
start_cold -train -train-dfgs 4 -train-epochs 2 -faults 'model.fetch=error:1'
wait_ready "$COLD"
curl -sf -X POST -d "$lreq" -o "$WORK/trained-labels.json" "$COLD/v1/labels"
archs="$(curl -sf "$COLD/v1/archs")"
echo "$archs" | grep -q '"modelProvenance":"trained"' || {
  echo "fallback-to-train did not report provenance=trained" >&2
  exit 1
}
echo "$archs" | grep -q '"fetchError"' || {
  echo "the failed fetch rung left no trace on /v1/archs" >&2
  exit 1
}
echo "model.fetch armed + train enabled: 200 via local training"

# Corrupt shipped payload: valid wire checksum, invalid envelope. The
# replica must reject it (503 + cached validation error), and /v1/reload
# must heal the cache so the fetch is retried rather than cached away.
go build -o bin/lisa-fakeowner ./scripts/fakeowner
FAKE="http://127.0.0.1:$((PORT_BASE + 5))"
COLD2="http://127.0.0.1:$((PORT_BASE + 6))"
bin/lisa-fakeowner -addr "127.0.0.1:$((PORT_BASE + 5))" >"$WORK/fake.log" 2>&1 &
PIDS[5]=$!
wait_ready "$FAKE"
"$BIN" -addr "127.0.0.1:$((PORT_BASE + 6))" -train=false \
  -peers "$FAKE,$COLD2" -self "$COLD2" >"$WORK/cold2.log" 2>&1 &
PIDS[6]=$!
wait_ready "$COLD2"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$lreq" "$COLD2/v1/labels")"
test "$code" -eq 503
curl -sf "$COLD2/v1/archs" | grep -q 'invalid model payload' || {
  echo "corrupt payload not surfaced as a validation error on /v1/archs" >&2
  exit 1
}
curl -sf -X POST "$COLD2/v1/reload" >/dev/null
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST -d "$lreq" "$COLD2/v1/labels")"
test "$code" -eq 503
curl -sf "$COLD2/metrics" | grep -q '"fetchErrors":2' || {
  echo "reload did not retry the fetch — the validation error was cached away" >&2
  exit 1
}
echo "corrupt payload rejected, cached, and retried after reload"

echo "cluster smoke: OK"
