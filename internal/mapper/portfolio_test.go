package mapper

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/kernels"
)

// resultBytes serializes a Result with the wall-clock field zeroed — the
// byte-stable form the service cache stores.
func resultBytes(t *testing.T, r Result) []byte {
	t.Helper()
	r.Duration = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Equal-seed portfolio runs must be byte-identical at any worker count:
// Workers trades wall-clock only, never the result. Each K is also checked
// against itself across repeated runs, and the winner must verify.
func TestPortfolioEqualSeedIdenticalAcrossWorkers(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for _, alg := range []Algorithm{AlgSA, AlgLISA} {
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/K%d", alg, k), func(t *testing.T) {
				g := dfg.Random(rand.New(rand.NewSource(3)), dfg.DefaultRandomConfig(), "prop")
				var ref []byte
				for _, workers := range []int{1, 4, 8} {
					opts := Options{Seed: 42, MaxMoves: 400, Restarts: k, Workers: workers}
					res := mustMap(t, ar, g, alg, nil, opts)
					if res.OK {
						if err := Verify(ar, g, &res); err != nil {
							t.Fatalf("K=%d workers=%d: invalid winner: %v", k, workers, err)
						}
					}
					b := resultBytes(t, res)
					if ref == nil {
						ref = b
					} else if !bytes.Equal(ref, b) {
						t.Fatalf("K=%d diverged at workers=%d:\n%s\n%s", k, workers, ref, b)
					}
				}
			})
		}
	}
}

// Restarts: 1 (and the zero default) must reproduce the pre-portfolio
// single-chain annealer bit for bit, with no portfolio block on the wire.
func TestPortfolioK1IdenticalToSingleChain(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	for _, alg := range []Algorithm{AlgSA, AlgLISA} {
		base := mustMap(t, ar, g, alg, nil, Options{Seed: 7, MaxMoves: 600})
		if base.Portfolio != nil {
			t.Fatalf("%s: single-chain result carries portfolio info", alg)
		}
		for _, opts := range []Options{
			{Seed: 7, MaxMoves: 600, Restarts: 1},
			{Seed: 7, MaxMoves: 600, Restarts: 1, Workers: 8},
		} {
			got := mustMap(t, ar, g, alg, nil, opts)
			if !bytes.Equal(resultBytes(t, base), resultBytes(t, got)) {
				t.Fatalf("%s: K=1 output differs from the single-chain annealer", alg)
			}
		}
	}
}

// The portfolio winner can never be worse than the equal-seed single-chain
// run: chain 0 races with the caller's exact seed and budget, so K=4 is
// bounded by K=1 on (II, hops) by construction. This is the acceptance
// criterion behind the BENCH_mapper.json portfolio block.
func TestPortfolioDominatesSingleChainEqualSeed(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g, err := kernels.Unrolled("atax")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgSA, AlgLISA} {
		for seed := int64(1); seed <= 5; seed++ {
			r1 := mustMap(t, ar, g, alg, nil, Options{Seed: seed, MaxMoves: 300})
			r4 := mustMap(t, ar, g, alg, nil, Options{Seed: seed, MaxMoves: 300, Restarts: 4})
			if r4.Portfolio == nil || r4.Portfolio.Restarts != 4 {
				t.Fatalf("%s seed %d: missing portfolio info: %+v", alg, seed, r4.Portfolio)
			}
			if r1.OK && !r4.OK {
				t.Fatalf("%s seed %d: K=1 mapped (II=%d) but K=4 failed", alg, seed, r1.II)
			}
			if r1.OK && r4.OK {
				if r4.II > r1.II {
					t.Fatalf("%s seed %d: K=4 II=%d worse than K=1 II=%d", alg, seed, r4.II, r1.II)
				}
				if r4.II == r1.II && sum(r4.EdgeHops) > sum(r1.EdgeHops) {
					t.Fatalf("%s seed %d: K=4 hops=%d worse than K=1 hops=%d at II=%d",
						alg, seed, sum(r4.EdgeHops), sum(r1.EdgeHops), r1.II)
				}
			}
		}
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// hopLowerBound must be admissible: no valid mapping at the resource-minimal
// II may route fewer total hops than the bound claims.
func TestPortfolioHopLowerBoundAdmissible(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for gseed := int64(1); gseed <= 8; gseed++ {
		g := dfg.Random(rand.New(rand.NewSource(gseed)), dfg.DefaultRandomConfig(), "prop")
		an := dfg.Analyze(g)
		lb := hopLowerBound(ar, g, an, ar.MinII(g))
		for seed := int64(1); seed <= 3; seed++ {
			res := mustMap(t, ar, g, AlgLISA, nil, Options{Seed: seed, MaxMoves: 800})
			if !res.OK || res.II != ar.MinII(g) {
				continue
			}
			if got := sum(res.EdgeHops); got < lb {
				t.Fatalf("graph %d seed %d: mapping routes %d hops below the 'lower' bound %d",
					gseed, seed, got, lb)
			}
		}
	}
}

// A kernel whose optimal hop count is trivially reachable must trigger the
// provable early exit: the winner completes at the minimal II with hops
// equal to the lower bound and is labeled ProvablyOptimal.
func TestPortfolioProvablyOptimalEarlyExit(t *testing.T) {
	g := dfg.New("chain4")
	a := g.AddNode("a", dfg.OpLoad)
	b := g.AddNode("b", dfg.OpAdd)
	c := g.AddNode("c", dfg.OpMul)
	d := g.AddNode("d", dfg.OpStore)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, d)

	ar := arch.NewBaseline4x4()
	res := mustMap(t, ar, g, AlgLISA, nil, Options{Seed: 1, MaxMoves: 2000, Restarts: 4})
	if !res.OK {
		t.Fatal("chain kernel did not map")
	}
	p := res.Portfolio
	if p == nil {
		t.Fatal("no portfolio info")
	}
	if p.HopLowerBound != 3 {
		t.Fatalf("chain of 3 edges: lower bound %d, want 3", p.HopLowerBound)
	}
	if !p.ProvablyOptimal {
		t.Fatalf("winner II=%d hops=%d lb=%d not labeled provably optimal",
			res.II, sum(res.EdgeHops), p.HopLowerBound)
	}
	if sum(res.EdgeHops) != p.HopLowerBound {
		t.Fatalf("provably-optimal winner routes %d hops, bound is %d", sum(res.EdgeHops), p.HopLowerBound)
	}
}

// One poisoned chain degrades the race to the surviving chains' winner —
// deterministically, and never a crash — for both error- and panic-mode
// faults. With every chain poisoned the portfolio surfaces the injected
// error (the engine ladder's cue to fall back).
func TestChaosPortfolioChainFaultDegradesToSurvivors(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	opts := Options{Seed: 5, MaxMoves: 400, Restarts: 4}

	arm := func(spec string) {
		t.Helper()
		plan, err := fault.ParsePlan(spec, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := fault.Activate(plan); err != nil {
			t.Fatal(err)
		}
	}
	defer fault.Deactivate()

	for _, mode := range []string{"error", "panic"} {
		arm("mapper.portfolio=" + mode + ":0.5")
		res1, err := Map(ar, g, AlgLISA, nil, opts)
		if err != nil {
			t.Fatalf("%s:0.5 poisoned every chain of the race: %v", mode, err)
		}
		if !res1.OK {
			t.Fatalf("%s:0.5: surviving chains found no mapping", mode)
		}
		if fired := fault.Counts()[fault.MapperPortfolio]; fired < 1 || fired > 3 {
			t.Fatalf("%s:0.5 fired %d times, want a strict subset of 4 chains (fault seed needs adjusting)", mode, fired)
		}
		arm("mapper.portfolio=" + mode + ":0.5")
		res2, err := Map(ar, g, AlgLISA, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resultBytes(t, res1), resultBytes(t, res2)) {
			t.Fatalf("%s:0.5: degraded race is nondeterministic", mode)
		}

		arm("mapper.portfolio=" + mode + ":1")
		if _, err := Map(ar, g, AlgLISA, nil, opts); err == nil {
			t.Fatalf("%s:1: all chains poisoned but Map returned no error", mode)
		} else if mode == "error" {
			var fe *fault.Error
			if !errors.As(err, &fe) || fe.Site != fault.MapperPortfolio {
				t.Fatalf("all-poisoned error does not unwrap to the fault site: %v", err)
			}
		}
		fault.Deactivate()
	}
}

// A provable early exit (or any abandonment) must not leak the losing
// chains' goroutines: parallel.ForEach joins every worker before the
// portfolio returns.
func TestPortfolioEarlyExitLeaksNoGoroutines(t *testing.T) {
	g := dfg.New("chain3")
	a := g.AddNode("a", dfg.OpLoad)
	b := g.AddNode("b", dfg.OpAdd)
	c := g.AddNode("c", dfg.OpStore)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	ar := arch.NewBaseline4x4()

	before := runtime.NumGoroutine()
	for seed := int64(1); seed <= 20; seed++ {
		res := mustMap(t, ar, g, AlgLISA, nil,
			Options{Seed: seed, MaxMoves: 2000, Restarts: 8, Workers: 8})
		if !res.OK {
			t.Fatalf("seed %d: trivial kernel failed", seed)
		}
	}
	// Workers have all been joined; give the runtime a beat to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("portfolio leaked goroutines: %d before, %d after", before, after)
	}
}

// The shared TimeLimit must cut every chain promptly — a portfolio with a
// millisecond budget and a huge movement allowance returns in milliseconds,
// not after K full sweeps — and the result must be labeled
// deadline-truncated so no cache tier stores it.
func TestPortfolioSharedDeadlineCutsAllChains(t *testing.T) {
	ar := arch.NewLessRouting4x4()
	g, err := kernels.Unrolled("gemm")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Seed:      3,
		MaxMoves:  50_000_000,
		Restarts:  4,
		Workers:   4,
		TimeLimit: 30 * time.Millisecond,
	}
	begin := time.Now()
	res := mustMap(t, ar, g, AlgSA, nil, opts)
	elapsed := time.Since(begin)
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not cancel the chains: portfolio ran %v on a %v budget",
			elapsed, opts.TimeLimit)
	}
	if !res.DeadlineExceeded {
		t.Fatalf("deadline-cut portfolio not labeled: %+v", res)
	}
}
