package cluster

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

// flakyTransport fails the first request with failFirst (when set), then
// answers every request with a canned 200 — the deterministic stand-in for
// a peer that was mid-restart on the first dial and back up on the second.
type flakyTransport struct {
	calls     atomic.Int32
	failFirst error
	status    int
	header    http.Header
	body      []byte
}

func (t *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.calls.Add(1) == 1 && t.failFirst != nil {
		return nil, t.failFirst
	}
	status := t.status
	if status == 0 {
		status = http.StatusOK
	}
	h := t.header
	if h == nil {
		h = http.Header{}
	}
	return &http.Response{
		StatusCode: status,
		Header:     h,
		Body:       io.NopCloser(bytes.NewReader(t.body)),
		Request:    r,
	}, nil
}

// timeoutErr satisfies net.Error with Timeout()==true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "deadline exceeded" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func refused() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
}

func modelHeaders(body []byte) http.Header {
	h := http.Header{}
	h.Set(ModelSHAHeader, PayloadSHA(body))
	h.Set(ModelLenHeader, strconv.Itoa(len(body)))
	return h
}

// The mid-flight-restart regression: a peer that refuses the first dial
// (old process gone, new one not yet listening on attempt one) must not
// fail an idempotent GET — FetchModel retries exactly once and succeeds.
func TestFetchModelRetriesRefusedOnce(t *testing.T) {
	body := []byte(`{"format":1}`)
	tr := &flakyTransport{failFirst: refused(), header: modelHeaders(body), body: body}
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})

	got, err := c.FetchModel(peers[1], "cgra-4x4")
	if err != nil {
		t.Fatalf("FetchModel across a restart = %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q, want %q", got, body)
	}
	if n := tr.calls.Load(); n != 2 {
		t.Fatalf("transport saw %d calls, want exactly 2 (one retry)", n)
	}
	if !c.Available(peers[1]) {
		t.Fatal("a recovered retry left the peer marked down")
	}
}

func TestGetDoesNotRetryTimeout(t *testing.T) {
	tr := &flakyTransport{failFirst: &net.OpError{Op: "read", Net: "tcp", Err: timeoutErr{}}}
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})

	if _, err := c.FetchModel(peers[1], "cgra-4x4"); err == nil {
		t.Fatal("timed-out fetch succeeded")
	}
	if n := tr.calls.Load(); n != 1 {
		t.Fatalf("transport saw %d calls, want 1 — a timed-out request may still be running on the peer", n)
	}
	if c.Available(peers[1]) {
		t.Fatal("transport failure did not mark the peer down")
	}
}

// Forward is a POST — a mapping request that died mid-flight may already
// have executed on the peer, so it is never replayed.
func TestForwardDoesNotRetryRefused(t *testing.T) {
	tr := &flakyTransport{failFirst: refused()}
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})

	if _, err := c.Forward(peers[1], "/v1/map", 1, nil); err == nil {
		t.Fatal("Forward over a refused dial succeeded")
	}
	if n := tr.calls.Load(); n != 1 {
		t.Fatalf("transport saw %d calls, want 1 — POSTs are not idempotent", n)
	}
}

func TestProbeRetriesRefusedOnce(t *testing.T) {
	tr := &flakyTransport{failFirst: refused()}
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})
	if !c.Probe(peers[1]) {
		t.Fatal("probe across a restart failed")
	}
	if n := tr.calls.Load(); n != 2 {
		t.Fatalf("transport saw %d calls, want exactly 2", n)
	}
}

func TestFetchModelAgainstLiveServer(t *testing.T) {
	body := []byte(`{"format":1,"arch":"cgra-4x4"}`)
	var gotPath string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		w.Header().Set(ModelSHAHeader, PayloadSHA(body))
		w.Header().Set(ModelLenHeader, strconv.Itoa(len(body)))
		_, _ = w.Write(body)
	}))
	defer srv.Close()
	self := "http://127.0.0.1:9001"
	c := mustNew(t, Config{Self: self, Peers: []string{self, srv.URL}})

	got, err := c.FetchModel(srv.URL, "cgra-4x4")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body = %q", got)
	}
	if gotPath != "/v1/model/cgra-4x4" {
		t.Fatalf("fetch hit %s", gotPath)
	}
}

func TestFetchModelErrorClassification(t *testing.T) {
	body := []byte(`{"format":1}`)
	t.Run("404 is ErrNoModel", func(t *testing.T) {
		tr := &flakyTransport{status: http.StatusNotFound}
		peers := threePeers()
		c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})
		_, err := c.FetchModel(peers[1], "x")
		if !errors.Is(err, ErrNoModel) {
			t.Fatalf("err = %v, want ErrNoModel", err)
		}
		var ve *ValidationError
		if errors.As(err, &ve) {
			t.Fatal("a 404 classified as a validation error")
		}
		if !c.Available(peers[1]) {
			t.Fatal("a 404 marked an alive peer down")
		}
	})
	t.Run("sha mismatch is ValidationError", func(t *testing.T) {
		h := modelHeaders(body)
		h.Set(ModelSHAHeader, "deadbeef")
		tr := &flakyTransport{header: h, body: body}
		peers := threePeers()
		c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})
		_, err := c.FetchModel(peers[1], "x")
		var ve *ValidationError
		if !errors.As(err, &ve) || ve.Peer != peers[1] {
			t.Fatalf("err = %v, want *ValidationError for %s", err, peers[1])
		}
		if !c.Available(peers[1]) {
			t.Fatal("a corrupt payload marked the peer down — it answered; backoff would delay rerouting to healthy candidates")
		}
	})
	t.Run("length mismatch is ValidationError", func(t *testing.T) {
		h := modelHeaders(body)
		h.Set(ModelLenHeader, "3")
		tr := &flakyTransport{header: h, body: body}
		peers := threePeers()
		c := mustNew(t, Config{Self: peers[0], Peers: peers, Transport: tr})
		_, err := c.FetchModel(peers[1], "x")
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("err = %v, want *ValidationError", err)
		}
	})
	t.Run("refused twice is transport error and marks down", func(t *testing.T) {
		clk := &fakeClock{t: time.Unix(1000, 0)}
		peers := threePeers()
		// Peer not listening at all: both the attempt and its one retry fail.
		c := mustNew(t, Config{Self: peers[0], Peers: peers, Now: clk.now})
		_, err := c.FetchModel(peers[1], "x")
		if err == nil {
			t.Fatal("fetch from a dead peer succeeded")
		}
		var ve *ValidationError
		if errors.As(err, &ve) {
			t.Fatal("a dead peer classified as a validation error")
		}
		if _, err := c.FetchModel(peers[1], "x"); !errors.Is(err, ErrPeerDown) {
			t.Fatalf("second fetch = %v, want ErrPeerDown (backoff gate)", err)
		}
	})
}

func TestFetchModelFaultSite(t *testing.T) {
	body := []byte(`{"format":1}`)
	tr := &flakyTransport{header: modelHeaders(body), body: body}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers, Now: clk.now, Transport: tr})

	plan, err := fault.ParsePlan("model.fetch=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Activate(plan); err != nil {
		t.Fatal(err)
	}
	defer fault.Deactivate()

	_, err = c.FetchModel(peers[1], "cgra-4x4")
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Site != fault.ModelFetch {
		t.Fatalf("fetch under model.fetch fault = %v, want injected error", err)
	}
	if n := tr.calls.Load(); n != 0 {
		t.Fatal("injected fault still dialed the peer")
	}
	if c.Available(peers[1]) {
		t.Fatal("injected fetch failure did not mark the peer down")
	}
	fault.Deactivate()
	clk.advance(time.Minute)
	if _, err := c.FetchModel(peers[1], "cgra-4x4"); err != nil {
		t.Fatalf("recovery fetch = %v", err)
	}
}

func TestSuccessorsRingOrder(t *testing.T) {
	peers := threePeers()
	c := mustNew(t, Config{Self: peers[0], Peers: peers})
	for i := 0; i < 200; i++ {
		key := string(rune('a'+i%26)) + strconv.Itoa(i)
		succ := c.Successors(key)
		seen := map[string]bool{}
		for _, p := range succ {
			if p == c.Self() {
				t.Fatalf("key %q: Successors includes self", key)
			}
			if seen[p] {
				t.Fatalf("key %q: duplicate successor %s", key, p)
			}
			seen[p] = true
		}
		if len(succ) != len(peers)-1 {
			t.Fatalf("key %q: %d successors, want all %d remote peers", key, len(succ), len(peers)-1)
		}
		if owner := c.Owner(key); owner != c.Self() && succ[0] != owner {
			t.Fatalf("key %q: first successor %s, want owner %s", key, succ[0], owner)
		}
	}
	// Every node must derive the same candidate order for the same key
	// (self-exclusion aside) — the fetch path's no-coordination contract.
	b := mustNew(t, Config{Self: peers[1], Peers: []string{peers[2], peers[1], peers[0]}})
	for i := 0; i < 50; i++ {
		key := "model|" + strconv.Itoa(i)
		var fromA, fromB []string
		for _, p := range append([]string{c.Owner(key)}, c.Successors(key)...) {
			if !contains(fromA, p) {
				fromA = append(fromA, p)
			}
		}
		for _, p := range append([]string{b.Owner(key)}, b.Successors(key)...) {
			if !contains(fromB, p) {
				fromB = append(fromB, p)
			}
		}
		// Dropping self from each node's view, the underlying ring order
		// must agree: compare the full owner-first traversals.
		if fromA[0] != fromB[0] {
			t.Fatalf("key %q: ring traversal disagrees: %v vs %v", key, fromA, fromB)
		}
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
