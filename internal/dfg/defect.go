package dfg

import (
	"errors"
	"fmt"
)

// Defect classifies one structural problem with a DFG. The serving daemon
// maps these to machine-readable fields on 400 responses, so clients can
// tell a cyclic graph from an oversized one without parsing prose.
type Defect string

// The defect classes Validate, ReadJSON and CheckSize can report.
const (
	DefectCycle         Defect = "cycle"
	DefectSelfLoop      Defect = "self-loop"
	DefectDanglingEdge  Defect = "dangling-edge"
	DefectDuplicateName Defect = "duplicate-name"
	DefectUnknownOp     Defect = "unknown-op"
	DefectNotConnected  Defect = "not-connected"
	DefectBadID         Defect = "bad-id"
	DefectTooLarge      Defect = "too-large"
	DefectBadJSON       Defect = "bad-json"
)

// DefectError is a structural-validation failure with its classification.
// The message matches what the un-classified errors said before, so log
// output and error-text tests are unaffected.
type DefectError struct {
	Kind Defect
	Msg  string
}

// Error returns the human-readable message.
func (e *DefectError) Error() string { return e.Msg }

// AsDefect unwraps err to a DefectError if one is in its chain.
func AsDefect(err error) (*DefectError, bool) {
	var de *DefectError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}

// CheckSize enforces node/edge count caps (<= 0 means uncapped). The
// serving daemon applies it to inline DFGs before analysis: mapper state is
// quadratic-ish in graph size, so an unbounded request is a memory bomb.
func (g *Graph) CheckSize(maxNodes, maxEdges int) error {
	if maxNodes > 0 && len(g.Nodes) > maxNodes {
		return &DefectError{
			Kind: DefectTooLarge,
			Msg:  fmt.Sprintf("dfg %s: %d nodes exceeds the limit of %d", g.Name, len(g.Nodes), maxNodes),
		}
	}
	if maxEdges > 0 && len(g.Edges) > maxEdges {
		return &DefectError{
			Kind: DefectTooLarge,
			Msg:  fmt.Sprintf("dfg %s: %d edges exceeds the limit of %d", g.Name, len(g.Edges), maxEdges),
		}
	}
	return nil
}
