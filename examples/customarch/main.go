// Custom architecture: bring a JSON *description* of an accelerator — no
// code — and get the full LISA pipeline on it. The spec below defines a
// heterogeneous 4×4 fabric with diagonal links, two registers per PE, memory
// on the left column, and multipliers only on the top two rows.
//
//	go run ./examples/customarch
package main

import (
	"fmt"
	"log"
	"strings"

	lisa "github.com/lisa-go/lisa"
)

const spec = `{
  "name": "hetero-diag-4x4",
  "rows": 4, "cols": 4,
  "maxII": 16,
  "defaults": {"registers": 2, "ops": ["add", "sub", "cmp", "select", "const"]},
  "memory": {"policy": "leftColumn"},
  "links": {"mesh": true, "diagonal": true},
  "pes": [
    {"at": [0, 1], "ops": ["mul", "add", "const"]},
    {"at": [0, 2], "ops": ["mul", "add", "const"]},
    {"at": [0, 3], "ops": ["mul", "add", "const"]},
    {"at": [1, 1], "ops": ["mul", "add", "const"]},
    {"at": [1, 2], "ops": ["mul", "add", "const"]},
    {"at": [1, 3], "ops": ["mul", "add", "const"]}
  ]
}`

func main() {
	ar, err := lisa.LoadArch(strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	fw := lisa.New(ar)
	fw.MapOpts.Seed = 9
	fw.MapOpts.MaxMoves = 2000

	fmt.Printf("loaded %q: %d PEs, max II %d\n\n", ar.Name(), ar.NumPEs(), ar.MaxII())
	fmt.Printf("%-10s %6s %6s   %s\n", "kernel", "LISA", "SA", "(II; 0 = cannot map)")
	for _, name := range []string{"gemm", "syrk", "gesummv", "doitgen"} {
		g, err := lisa.Kernel(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fw.Map(g)
		if err != nil {
			log.Fatal(err)
		}
		base, err := fw.MapBaseline(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d %6d\n", name, res.II, base.II)
		if res.OK {
			if err := fw.Verify(g, &res); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			// The strongest check: execute the mapping and compare outputs.
			if _, err := fw.Simulate(g, &res, 4); err != nil {
				log.Fatalf("%s: simulation: %v", name, err)
			}
		}
	}
	fmt.Println("\nevery successful mapping above was verified structurally and executed")
	fmt.Println("cycle-accurately for 4 pipelined iterations against the DFG semantics.")
}
