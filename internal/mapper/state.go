package mapper

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Cost weights. Penalties dominate real routing costs so the annealer always
// prefers legalizing the mapping over shortening routes.
const (
	costUnplaced   = 1000.0
	costFailedEdge = 400.0
	costInfeasible = 50.0 // placement-candidate penalty for dt < 1
	costTooFar     = 20.0 // placement-candidate penalty for spatial > dt
)

// pairRef links a node to one same-level partner and the label-2 value of
// their dummy edge.
type pairRef struct {
	other int
	want  float64
}

// state is one mapping attempt at a fixed II.
type state struct {
	ar  arch.Arch
	g   *dfg.Graph
	an  *dfg.Analysis
	lbl *labels.Labels
	cfg config
	rng *rand.Rand

	ii       int
	schedLen int
	diameter int

	rg     *rgraph.Graph
	occ    *rgraph.Occupancy
	router *rgraph.Router

	pe     []int   // -1 when unplaced
	time   []int   // valid when placed
	routes [][]int // per edge; nil when unrouted

	order    []int // node IDs in placement order
	partners [][]pairRef

	attempted, accepted int     // for σ = max{1, α·T − Acc}
	alpha               float64 // α of Algorithm 1 line 7
	initialPhase        bool    // partial mode: labels only apply here

	faultToken uint64 // per-request fault stream token (the annealer seed)
	faultErr   error  // first injected router fault; aborts the sweep
}

func newState(ar arch.Arch, g *dfg.Graph, an *dfg.Analysis, ii int,
	lbl *labels.Labels, cfg config, alpha float64, rng *rand.Rand) *state {

	st := &state{
		ar: ar, g: g, an: an, lbl: lbl, cfg: cfg, rng: rng, ii: ii, alpha: alpha,
		pe:   make([]int, g.NumNodes()),
		time: make([]int, g.NumNodes()),
	}
	for i := range st.pe {
		st.pe[i] = -1
	}
	st.routes = make([][]int, g.NumEdges())

	st.diameter = 0
	n := ar.NumPEs()
	for a := 0; a < n; a++ {
		if d := ar.SpatialDistance(0, a); d > st.diameter {
			st.diameter = d
		}
		if d := ar.SpatialDistance(n-1, a); d > st.diameter {
			st.diameter = d
		}
	}
	st.schedLen = an.CriticalPath + 2*ii + st.diameter + 2
	st.rg = ar.BuildRGraph(ii)
	st.occ = rgraph.NewOccupancy(st.rg)
	st.router = rgraph.NewRouter(st.rg, st.schedLen)

	// Placement order: label 1 when enabled, ASAP otherwise, with
	// deterministic ID tie-break.
	st.order = make([]int, g.NumNodes())
	for i := range st.order {
		st.order[i] = i
	}
	key := func(v int) float64 {
		if cfg.useOrderLabel {
			return lbl.Order[v]
		}
		return float64(an.ASAP[v])
	}
	sort.SliceStable(st.order, func(i, j int) bool {
		a, b := st.order[i], st.order[j]
		if key(a) != key(b) {
			return key(a) < key(b)
		}
		return a < b
	})

	// Build the partner lists in sorted pair order, not map-iteration order:
	// the per-candidate cost sums partner terms in list order, and float
	// addition is order-sensitive, so ranging over the map directly would
	// make the whole anneal nondeterministic for the label-using engines.
	st.partners = make([][]pairRef, g.NumNodes())
	pairs := make([]labels.Pair, 0, len(lbl.SameLevel))
	for p := range lbl.SameLevel {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		want := lbl.SameLevel[p]
		st.partners[p.A] = append(st.partners[p.A], pairRef{other: p.B, want: want})
		st.partners[p.B] = append(st.partners[p.B], pairRef{other: p.A, want: want})
	}
	return st
}

// anneal runs the movement loop; it returns success and the movement count.
func (st *state) anneal(opts Options, start time.Time) (bool, int) {
	st.initialPhase = true
	st.placeAll()
	st.routePending()
	st.initialPhase = false

	cur := st.cost()
	temp := opts.InitTemp
	moves := 0
	for moves < opts.MaxMoves {
		if st.faultErr != nil {
			// An injected router fault makes every further route attempt
			// moot; stop burning the movement budget.
			return false, moves
		}
		if st.valid() {
			return true, moves
		}
		if opts.TimeLimit > 0 && moves%64 == 0 && time.Since(start) > opts.TimeLimit {
			return false, moves
		}
		snap := st.save()
		st.movement()
		moves++
		st.attempted++
		next := st.cost()
		accept := next <= cur
		if !accept && temp > 1e-9 {
			accept = st.rng.Float64() < math.Exp((cur-next)/temp)
		}
		if accept {
			cur = next
			st.accepted++
		} else {
			st.restore(snap)
		}
		if moves%opts.MovesPerTemp == 0 {
			temp *= opts.Cool
		}
	}
	return st.valid(), moves
}

// useLabels reports whether label guidance applies to the current phase.
func (st *state) useLabels() bool {
	if st.cfg.partial {
		return st.initialPhase
	}
	return true
}

// valid reports whether every node is placed and every edge routed.
func (st *state) valid() bool {
	for _, p := range st.pe {
		if p < 0 {
			return false
		}
	}
	for _, r := range st.routes {
		if r == nil {
			return false
		}
	}
	return true
}

// cost is the annealing objective.
func (st *state) cost() float64 {
	c := 0.0
	for _, p := range st.pe {
		if p < 0 {
			c += costUnplaced
		}
	}
	for e, r := range st.routes {
		if r == nil {
			ed := st.g.Edges[e]
			if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
				c += costFailedEdge
			}
			continue
		}
		c += float64(len(r) - 1)
	}
	return c
}

// routingCost counts intermediate resources consumed by all routes.
func (st *state) routingCost() int {
	total := 0
	for _, r := range st.routes {
		if n := len(r) - 2; n > 0 {
			total += n
		}
	}
	return total
}

type snapshot struct {
	occ    *rgraph.Occupancy
	pe     []int
	time   []int
	routes [][]int
}

func (st *state) save() snapshot {
	return snapshot{
		occ:    st.occ.Clone(),
		pe:     append([]int(nil), st.pe...),
		time:   append([]int(nil), st.time...),
		routes: append([][]int(nil), st.routes...),
	}
}

func (st *state) restore(s snapshot) {
	st.occ = s.occ
	st.pe = s.pe
	st.time = s.time
	st.routes = s.routes
}

// fuOf returns the FU resource node of a placed DFG node.
func (st *state) fuOf(v int) int {
	return st.rg.FUAt(st.pe[v], st.time[v]%st.ii)
}

// placeAll performs the initial full placement in schedule order.
func (st *state) placeAll() {
	for _, v := range st.order {
		if st.pe[v] < 0 {
			st.placeNode(v)
		}
	}
}

// unmapNode removes v's op and unroutes every incident edge (Algorithm 1
// line 2's "unmap one or more DFG nodes").
func (st *state) unmapNode(v int) {
	if st.pe[v] < 0 {
		return
	}
	for _, e := range st.g.InEdges(v) {
		st.unroute(e)
	}
	for _, e := range st.g.OutEdges(v) {
		st.unroute(e)
	}
	st.occ.RemoveOp(st.fuOf(v), v)
	st.pe[v] = -1
}

func (st *state) unroute(e int) {
	if st.routes[e] == nil {
		return
	}
	sig := rgraph.Signal(st.g.Edges[e].From)
	rgraph.Uncommit(st.occ, sig, st.routes[e])
	st.routes[e] = nil
}

// slot is one placement candidate.
type slot struct {
	pe, t int
	cost  float64
}

// timeBounds computes the candidate window for v from its placed neighbors.
func (st *state) timeBounds(v int) (lb, ub int) {
	lb = st.an.ASAP[v]
	ub = st.schedLen - 1
	for _, p := range st.g.Pred(v) {
		if st.pe[p] >= 0 && st.time[p]+1 > lb {
			lb = st.time[p] + 1
		}
	}
	for _, s := range st.g.Succ(v) {
		if st.pe[s] >= 0 && st.time[s]-1 < ub {
			ub = st.time[s] - 1
		}
	}
	if ub < lb {
		ub = st.schedLen - 1 // inconsistent neighbors; edges will fail and anneal away
	}
	// Bound the window so candidate enumeration stays cheap on big arrays.
	if w := lb + st.ii + st.diameter + 2; ub > w {
		ub = w
	}
	return lb, ub
}

// candidates enumerates the free, op-compatible slots for v.
func (st *state) candidates(v int) []slot {
	lb, ub := st.timeBounds(v)
	op := st.g.Nodes[v].Op
	var out []slot
	for t := lb; t <= ub; t++ {
		for pe := 0; pe < st.ar.NumPEs(); pe++ {
			fu := st.rg.FUAt(pe, t%st.ii)
			n := &st.rg.Nodes[fu]
			if !n.AllowsOp(uint8(op)) {
				continue
			}
			if !st.occ.CanPlaceOp(fu) {
				continue
			}
			out = append(out, slot{pe: pe, t: t})
		}
	}
	return out
}

// placeNode places v on a candidate slot. With label guidance the candidate
// cost combines labels 2, 3 and 4 (Algorithm 1 line 6) and the winner is
// drawn from a normal distribution over the cost ranking (lines 7-8);
// without guidance the slot is uniform random, as in vanilla SA.
func (st *state) placeNode(v int) {
	cands := st.candidates(v)
	if len(cands) == 0 {
		return // stays unplaced; the cost function punishes it
	}
	var pick slot
	if st.useLabels() && st.cfg.usePlacementLabels {
		for i := range cands {
			cands[i].cost = st.slotCost(v, cands[i])
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].cost != cands[j].cost {
				return cands[i].cost < cands[j].cost
			}
			if cands[i].t != cands[j].t {
				return cands[i].t < cands[j].t
			}
			return cands[i].pe < cands[j].pe
		})
		sigma := math.Max(1, st.alphaSigma())
		idx := int(math.Abs(st.rng.NormFloat64()) * sigma)
		if idx >= len(cands) {
			idx = len(cands) - 1
		}
		pick = cands[idx]
	} else {
		pick = cands[st.rng.Intn(len(cands))]
	}
	fu := st.rg.FUAt(pick.pe, pick.t%st.ii)
	if !st.occ.PlaceOp(fu, v) {
		return
	}
	st.pe[v] = pick.pe
	st.time[v] = pick.t
}

// alphaSigma evaluates σ = α·T − Acc from Algorithm 1 line 7: a low
// acceptance rate widens the distribution, randomizing PE selection to escape
// an invalid mapping.
func (st *state) alphaSigma() float64 {
	return st.alpha*float64(st.attempted) - float64(st.accepted)
}

// slotCost is the label-aware placement cost: the sum of differences between
// the distances a candidate implies and the distances the labels expect.
func (st *state) slotCost(v int, s slot) float64 {
	c := 0.0
	seen := false
	for _, e := range st.g.InEdges(v) {
		u := st.g.Edges[e].From
		if st.pe[u] < 0 {
			continue
		}
		seen = true
		dt := s.t - st.time[u]
		sd := st.ar.SpatialDistance(s.pe, st.pe[u])
		if dt < 1 {
			c += costInfeasible
		} else {
			c += math.Abs(float64(dt) - st.lbl.Temporal[e])
			if sd > dt {
				c += costTooFar
			}
		}
		c += math.Abs(float64(sd) - st.lbl.Spatial[e])
	}
	for _, e := range st.g.OutEdges(v) {
		w := st.g.Edges[e].To
		if st.pe[w] < 0 {
			continue
		}
		seen = true
		dt := st.time[w] - s.t
		sd := st.ar.SpatialDistance(s.pe, st.pe[w])
		if dt < 1 {
			c += costInfeasible
		} else {
			c += math.Abs(float64(dt) - st.lbl.Temporal[e])
			if sd > dt {
				c += costTooFar
			}
		}
		c += math.Abs(float64(sd) - st.lbl.Spatial[e])
	}
	for _, pr := range st.partners[v] {
		if st.pe[pr.other] < 0 {
			continue
		}
		c += math.Abs(float64(st.ar.SpatialDistance(s.pe, st.pe[pr.other])) - pr.want)
	}
	if !seen {
		// Anchor isolated placements near the schedule time label 1 expects.
		c += 0.3 * math.Abs(float64(s.t)-st.lbl.Order[v])
	}
	return c
}

// routePending routes every edge whose endpoints are placed, in routing
// priority order (Algorithm 1 lines 9-11: highest temporal-mapping-distance
// first) when enabled.
func (st *state) routePending() {
	var pending []int
	for e := range st.routes {
		if st.routes[e] != nil {
			continue
		}
		ed := st.g.Edges[e]
		if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
			pending = append(pending, e)
		}
	}
	if st.cfg.useRoutingPriority && st.useLabels() {
		sort.SliceStable(pending, func(i, j int) bool {
			return st.lbl.Temporal[pending[i]] > st.lbl.Temporal[pending[j]]
		})
	}
	for _, e := range pending {
		st.routeEdge(e)
	}
}

// routeEdge routes one edge with Dijkstra (Algorithm 1 line 11); the hop
// count is fixed by the endpoints' schedule times.
func (st *state) routeEdge(e int) bool {
	// Fault site router.dijkstra: an injected error fails the route and
	// aborts the sweep (Map surfaces st.faultErr), so the engine ladder can
	// substitute a fallback; disabled, this is one atomic load.
	if err := fault.Inject(fault.RouterDijkstra, st.faultToken); err != nil {
		if st.faultErr == nil {
			st.faultErr = err
		}
		return false
	}
	ed := st.g.Edges[e]
	hops := st.time[ed.To] - st.time[ed.From]
	if hops < 1 {
		return false
	}
	sig := rgraph.Signal(ed.From)
	path, _, ok := st.router.Route(st.occ, sig, st.fuOf(ed.From), st.fuOf(ed.To), hops)
	if !ok {
		return false
	}
	rgraph.Commit(st.occ, sig, path)
	st.routes[e] = path
	return true
}

// movement is one unmap/re-place/re-route step.
func (st *state) movement() {
	victims := st.pickVictims()
	for _, v := range victims {
		st.unmapNode(v)
	}
	// Re-place in global schedule order.
	idx := make(map[int]int, len(st.order))
	for i, v := range st.order {
		idx[v] = i
	}
	sort.Slice(victims, func(i, j int) bool { return idx[victims[i]] < idx[victims[j]] })
	for _, v := range victims {
		if st.pe[v] < 0 {
			st.placeNode(v)
		}
	}
	st.routePending()
}

// pickVictims chooses the nodes to unmap: problem nodes (unplaced, or
// endpoints of failed/infeasible edges) first, plus an occasional random
// placed node to shake the mapping out of local minima.
func (st *state) pickVictims() []int {
	problem := map[int]bool{}
	for v, p := range st.pe {
		if p < 0 {
			problem[v] = true
		}
	}
	for e, r := range st.routes {
		if r != nil {
			continue
		}
		ed := st.g.Edges[e]
		if st.pe[ed.From] >= 0 && st.pe[ed.To] >= 0 {
			problem[ed.From] = true
			problem[ed.To] = true
		}
	}
	var pool []int
	for v := range problem {
		pool = append(pool, v)
	}
	sort.Ints(pool)

	var victims []int
	if len(pool) > 0 {
		// One or two problem nodes.
		victims = append(victims, pool[st.rng.Intn(len(pool))])
		if len(pool) > 1 && st.rng.Float64() < 0.5 {
			w := pool[st.rng.Intn(len(pool))]
			if w != victims[0] {
				victims = append(victims, w)
			}
		}
	}
	// Occasionally also displace a random placed node to free resources.
	if len(victims) == 0 || st.rng.Float64() < 0.35 {
		v := st.rng.Intn(st.g.NumNodes())
		dup := false
		for _, w := range victims {
			if w == v {
				dup = true
			}
		}
		if !dup && st.pe[v] >= 0 {
			victims = append(victims, v)
		}
	}
	return victims
}
