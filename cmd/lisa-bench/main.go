// Command lisa-bench regenerates the paper's evaluation tables and figures
// as text output.
//
// Usage:
//
//	lisa-bench -exp fig9b                 one panel, quick profile
//	lisa-bench -exp all                   everything (takes a while)
//	lisa-bench -exp table2 -profile paper Table II at paper scale (hours)
//
// Experiments: fig9a..fig9g, fig10, fig11, fig12, fig13, table2, portfolio,
// all. "portfolio" is not a paper figure: it sweeps the mapper's restart
// width K over the PolyBench kernels (EXPERIMENTS.md quality-vs-wallclock
// table).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/experiments"
	"github.com/lisa-go/lisa/internal/power"
)

func main() {
	exp := flag.String("exp", "fig9b", "experiment id (fig9a..g, fig10, fig11, fig12, fig13, table2, portfolio, all)")
	profile := flag.String("profile", "quick", "budget profile: quick|paper")
	seed := flag.Int64("seed", 1, "profile seed")
	workers := flag.Int("workers", 0, "parallel workers for the experiment grid and training-data generation (0 = all CPUs, 1 = serial); results are identical at any setting")
	outDir := flag.String("out", "", "also write <exp>.json and <exp>.svg files into this directory")
	shapes := flag.Bool("shapes", false, "evaluate the paper-shape assertions on Fig. 9 results")
	flag.Parse()

	var p experiments.Profile
	switch *profile {
	case "quick":
		p = experiments.Quick()
	case "paper":
		p = experiments.Paper()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	p.Seed = *seed
	p.Workers = *workers
	ctx := experiments.NewContext(p)

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "fig9g",
			"fig10", "fig11", "table2", "fig12", "fig13", "portfolio"}
	}
	var fig9Cmps []*experiments.Comparison
	for _, id := range ids {
		switch {
		case strings.HasPrefix(id, "fig9"):
			spec, ok := experiments.Fig9SpecByID("Fig9" + strings.TrimPrefix(id, "fig9"))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q", id))
			}
			cmp := ctx.Fig9(spec)
			must(cmp.Render(os.Stdout))
			fig9Cmps = append(fig9Cmps, cmp)
			exportComparison(*outDir, id, cmp)
			fmt.Println()
		case id == "fig10":
			for _, panel := range []string{"Fig9a", "Fig9b"} {
				spec, _ := experiments.Fig9SpecByID(panel)
				cmp := ctx.Fig9(spec)
				rows := experiments.Fig10(cmp, power.DefaultParams())
				must(experiments.RenderPower(os.Stdout, "Fig10/"+spec.Arch.Name(), cmp.Methods, rows))
				fmt.Println()
			}
		case id == "fig11":
			for _, panel := range []string{"Fig9a", "Fig9b"} {
				spec, _ := experiments.Fig9SpecByID(panel)
				cmp := ctx.Fig9(spec)
				rows := experiments.Fig11(cmp)
				must(experiments.RenderTimes(os.Stdout, "Fig11/"+spec.Arch.Name(), cmp.Methods, rows))
				fmt.Println()
			}
		case id == "fig12":
			for _, ar := range []arch.Arch{arch.NewBaseline4x4(), arch.NewLessRouting4x4()} {
				must(ctx.Fig12(ar).Render(os.Stdout))
				fmt.Println()
			}
		case id == "fig13":
			orig, unrolled := ctx.Fig13()
			must(orig.Render(os.Stdout))
			must(unrolled.Render(os.Stdout))
			fmt.Println()
		case id == "portfolio":
			sw := ctx.Portfolio(arch.NewBaseline4x4(), nil, nil)
			must(sw.Render(os.Stdout))
			fmt.Println()
		case id == "table2":
			rows := ctx.Table2(arch.PaperTargets())
			must(experiments.RenderTable2(os.Stdout, rows))
			fmt.Println()
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
	}
	if len(fig9Cmps) > 0 {
		fmt.Println(experiments.Summarize(fig9Cmps).String())
	}
	if *shapes && len(fig9Cmps) > 0 {
		fmt.Println()
		must(experiments.RenderShapes(os.Stdout, experiments.CheckFig9(fig9Cmps)))
		for _, cmp := range fig9Cmps {
			if cmp.Arch.MaxII() == 1 && len(cmp.Rows) >= 12 {
				must(experiments.RenderShapes(os.Stdout, experiments.CheckFig9g(cmp)))
			}
		}
	}
}

// exportComparison writes the machine-readable artifacts when -out is set.
func exportComparison(dir, id string, cmp *experiments.Comparison) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	jf, err := os.Create(filepath.Join(dir, id+".json"))
	if err != nil {
		fatal(err)
	}
	defer jf.Close()
	if err := cmp.WriteJSON(jf); err != nil {
		fatal(err)
	}
	sf, err := os.Create(filepath.Join(dir, id+".svg"))
	if err != nil {
		fatal(err)
	}
	defer sf.Close()
	if err := cmp.WriteSVG(sf); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisa-bench:", err)
	os.Exit(1)
}

// must aborts on a table/figure write error (stdout or -out files).
func must(err error) {
	if err != nil {
		fatal(err)
	}
}
