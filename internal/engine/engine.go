// Package engine is the single dispatch point from an engine name
// (lisa|sa|sa-rp|sa-m|partial|greedy|ilp) to a mapping run. The lisa-map
// CLI and the lisa-serve daemon both resolve requests through this package,
// so the set of engines and the way each one is invoked cannot drift
// between the two front ends.
package engine

import (
	"fmt"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
)

// Name identifies a mapping engine.
type Name string

// The seven engines exposed by the CLIs and the service.
const (
	LISA    Name = "lisa"    // full label-aware SA (Algorithm 1)
	SA      Name = "sa"      // vanilla simulated annealing
	SARP    Name = "sa-rp"   // SA + GNN routing priority (Fig. 12 ablation)
	SAM     Name = "sa-m"    // SA with 10x movements (Fig. 13 ablation)
	Partial Name = "partial" // labels seed the initial mapping only
	Greedy  Name = "greedy"  // deterministic list scheduling
	ILP     Name = "ilp"     // exact branch-and-bound mapper
)

// Names lists every engine in presentation order.
func Names() []string {
	return []string{"lisa", "sa", "sa-rp", "sa-m", "partial", "greedy", "ilp"}
}

// Parse validates an engine name from a flag or request field.
func Parse(s string) (Name, error) {
	for _, n := range Names() {
		if s == n {
			return Name(s), nil
		}
	}
	return "", fmt.Errorf("engine: unknown engine %q (have %v)", s, Names())
}

// UsesLabels reports whether the engine consumes GNN-predicted labels.
// Label-using engines fall back to the §V-B initialization when mapped
// without a model.
func (n Name) UsesLabels() bool {
	switch n {
	case LISA, SARP, Partial:
		return true
	}
	return false
}

// Deterministic reports whether the engine's result is a pure function of
// (DFG, architecture, options, seed). The SA family and greedy qualify; the
// ILP mapper's outcome depends on its wall-clock time budget.
func (n Name) Deterministic() bool {
	return n != ILP
}

// Options carries the budgets for both engine families; only the half
// matching the selected engine is consulted.
type Options struct {
	Map mapper.Options // SA-family and greedy budgets
	ILP ilp.Options    // exact-mapper limits
}

// Map runs the named engine for g on ar. lbl supplies GNN labels for the
// label-using engines and may be nil (§V-B fallback); it is ignored by the
// others. The only error is an unknown engine name, so callers that parsed
// the name with Parse can ignore it.
func Map(ar arch.Arch, g *dfg.Graph, eng Name, lbl *labels.Labels, opts Options) (mapper.Result, error) {
	switch eng {
	case ILP:
		return ilp.Map(ar, g, opts.ILP), nil
	case Greedy:
		return mapper.MapGreedy(ar, g, opts.Map), nil
	case LISA, SA, SARP, SAM, Partial:
		return mapper.Map(ar, g, mapper.Algorithm(eng), lbl, opts.Map), nil
	default:
		return mapper.Result{}, fmt.Errorf("engine: unknown engine %q (have %v)", eng, Names())
	}
}
