// Package experiments regenerates the paper's evaluation: one runner per
// table and figure (Fig. 9a–g mapping quality, Fig. 10 power efficiency,
// Fig. 11 compilation time, Table II GNN accuracy, Fig. 12 routing-priority
// ablation, Fig. 13 SA-M ablation), each emitting the same rows/series the
// paper reports.
//
// Budgets are grouped into profiles: Quick keeps the full pipeline inside a
// test/benchmark run, Paper scales the knobs to the paper's settings (1000
// training DFGs, 500 epochs, hours of ILP time). Shapes — who maps what,
// who wins, by roughly what factor — are stable across the two profiles.
package experiments

import (
	"sort"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/parallel"
	"github.com/lisa-go/lisa/internal/registry"
	"github.com/lisa-go/lisa/internal/traingen"
)

// Profile groups every experiment budget knob.
type Profile struct {
	Name string

	MapOpts  mapper.Options  // SA/LISA movement budgets
	ILPOpts  ilp.Options     // exact-mapper limits
	TrainGen traingen.Config // dataset generation
	TrainCfg gnn.TrainConfig // GNN training
	SARuns   int             // SA median-of-N runs (paper: 3)
	Seed     int64

	// Workers fans the experiment grid (kernel × method cells), the SA
	// median runs and dataset generation out over this many goroutines:
	// <= 0 means one per CPU (runtime.GOMAXPROCS), 1 is the exact serial
	// path. Every cell and every training DFG is seeded independently of
	// scheduling, so results are identical at any worker count.
	Workers int
}

// Quick returns the profile used by tests and `go test -bench`. A full
// figure regenerates in seconds to a few minutes.
func Quick() Profile {
	return Profile{
		Name:    "quick",
		MapOpts: mapper.Options{MaxMoves: 1600},
		ILPOpts: ilp.Options{
			TimeLimitPerII: 1500 * time.Millisecond,
			MaxNodes:       150000,
			MaxCutRounds:   12,
			MaxVars:        9000,
			MaxII:          8,
		},
		TrainGen: traingen.Config{
			NumDFGs:    36,
			Iterations: 2,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 700},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg: gnn.TrainConfig{Epochs: 60, LR: 0.003, WeightDecay: 0.0005},
		SARuns:   3,
		Seed:     1,
	}
}

// Paper returns the paper-scale profile (§VI): 1000 random DFGs per
// accelerator, 500 training epochs at lr 0.001 / weight decay 0.0005,
// SA median of three runs, and a generous ILP time limit per target II.
func Paper() Profile {
	return Profile{
		Name:    "paper",
		MapOpts: mapper.Options{MaxMoves: 20000},
		ILPOpts: ilp.Options{
			TimeLimitPerII: 2 * time.Hour,
			MaxCutRounds:   200,
			MaxVars:        200000,
		},
		TrainGen: traingen.Config{
			NumDFGs:    1000,
			Iterations: 4,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 4000},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg: gnn.DefaultTrainConfig(),
		SARuns:   3,
		Seed:     1,
	}
}

// Context caches trained GNN models per architecture so that all figures
// share one training run per target, as the paper does. It is a thin
// wrapper over the shared registry.Registry (also used by lisa-serve): grid
// cells that need the same accelerator block on a per-architecture once and
// see exactly one training run.
type Context struct {
	Profile Profile

	reg *registry.Registry
}

// NewContext creates a fresh experiment context.
func NewContext(p Profile) *Context {
	return &Context{
		Profile: p,
		reg: registry.New(registry.Config{
			TrainGen:      p.TrainGen,
			TrainCfg:      p.TrainCfg,
			Seed:          p.Seed,
			Workers:       p.Workers,
			TrainOnDemand: true,
		}),
	}
}

// Registry exposes the underlying model registry (for pre-seeding with
// offline-trained models before running figures).
func (c *Context) Registry() *registry.Registry { return c.reg }

// ModelFor returns the trained GNN model for ar, training it on first use
// (training-data generation + four-network training, §V and §IV). Safe to
// call from concurrent grid cells; the model for each architecture is
// trained exactly once.
func (c *Context) ModelFor(ar arch.Arch) *gnn.Model {
	m, err := c.reg.ModelFor(ar)
	if err != nil {
		// The context always permits on-demand training, so an error here
		// means the registry contract itself is broken — fail loudly.
		panic("experiments: " + err.Error())
	}
	return m
}

// TrainStats reports the dataset-generation stats behind ar's cached model,
// training it on first use like ModelFor.
func (c *Context) TrainStats(ar arch.Arch) traingen.Stats {
	stats, err := c.reg.StatsFor(ar)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return stats
}

// Method names a mapping approach in experiment output.
type Method string

// The three methods of Figs. 9-11 plus the two ablation engines.
const (
	MethodILP  Method = "ILP"
	MethodSA   Method = "SA"
	MethodSARP Method = "SA-RP"
	MethodSAM  Method = "SA-M"
	MethodLISA Method = "LISA"
	// MethodGreedy is the deterministic list-scheduling baseline (not part
	// of the paper's figures; used by the portability sweep).
	MethodGreedy Method = "Greedy"
)

// Run maps g on ar with one method under the context's profile. SA-family
// methods run SARuns times and report the median, following the paper
// ("we run SA three times ... and use the median performance").
func (c *Context) Run(ar arch.Arch, g *dfg.Graph, m Method) mapper.Result {
	switch m {
	case MethodILP:
		return ilp.Map(ar, g, c.Profile.ILPOpts)
	case MethodGreedy:
		return mapper.MapGreedy(ar, g, c.Profile.MapOpts)
	case MethodLISA:
		lbl := c.predictLabels(ar, g)
		opts := c.Profile.MapOpts
		opts.Seed = c.Profile.Seed
		res, err := mapper.Map(ar, g, mapper.AlgLISA, lbl, opts)
		if err != nil {
			// The grid never runs with faults armed, so an error here is a
			// failed cell, not a crashed experiment.
			return mapper.Result{}
		}
		return res
	case MethodSA, MethodSAM, MethodSARP:
		alg := map[Method]mapper.Algorithm{
			MethodSA: mapper.AlgSA, MethodSAM: mapper.AlgSAM, MethodSARP: mapper.AlgSARP,
		}[m]
		var lbl *labels.Labels
		if m == MethodSARP {
			// The Fig. 12 ablation adds only the GNN routing priority to SA.
			lbl = c.predictLabels(ar, g)
		}
		return c.medianRun(ar, g, alg, lbl)
	default:
		panic("experiments: unknown method " + string(m))
	}
}

// predictLabels runs the fused GNN inference for one grid cell. Grid-cell
// models fit their own scales, so a skew error is a broken registry
// contract — fail loudly like ModelFor does.
func (c *Context) predictLabels(ar arch.Arch, g *dfg.Graph) *labels.Labels {
	lbl, err := c.ModelFor(ar).Predict(attr.Generate(g))
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return lbl
}

// medianRun executes SARuns independently seeded runs — in parallel, as
// the paper's artifact does on its multi-core server — and returns the
// median-quality result. Failures sort worst; quality ties break on the
// run's slot index, which fixes its seed. Because every run is a pure
// function of its seed and the ordering never consults wall-clock
// measurements, the selected median — including its Routes, Moves and
// TriedIIs — is identical across repeated invocations, worker counts and
// schedulers.
func (c *Context) medianRun(ar arch.Arch, g *dfg.Graph, alg mapper.Algorithm, lbl *labels.Labels) mapper.Result {
	n := c.Profile.SARuns
	if n < 1 {
		n = 1
	}
	results := make([]mapper.Result, n)
	parallel.ForEach(c.Profile.Workers, n, func(i int) {
		opts := c.Profile.MapOpts
		opts.Seed = c.Profile.Seed + int64(i)*7919
		res, err := mapper.Map(ar, g, alg, lbl, opts)
		if err != nil {
			res = mapper.Result{} // injected fault ⇒ failed run; sorts worst
		}
		results[i] = res
	})
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		qi, qj := quality(&results[i]), quality(&results[j])
		if qi != qj {
			return qi < qj
		}
		return i < j
	})
	return results[order[n/2]]
}

// quality orders results: lower is better, failures are worst.
func quality(r *mapper.Result) int {
	if !r.OK {
		return 1 << 20
	}
	return r.II
}
