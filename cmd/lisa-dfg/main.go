// Command lisa-dfg inspects and exports the dataflow graphs the framework
// maps: the PolyBench kernel suite, unrolled variants, and random DFGs of the
// kind the training pipeline generates.
//
// Usage:
//
//	lisa-dfg list
//	lisa-dfg show -kernel gemm [-unroll 2]
//	lisa-dfg dot  -kernel gemm [-unroll 2] > gemm.dot
//	lisa-dfg random -seed 7 -min 10 -max 28
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/visual"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, n := range kernels.Names() {
			fmt.Println(kernels.MustByName(n).Summary())
		}
		fmt.Println("extended suite:")
		for _, n := range kernels.ExtendedNames() {
			fmt.Println(kernels.MustByName(n).Summary())
		}
	case "show", "dot", "svg":
		fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
		kernel := fs.String("kernel", "gemm", "kernel name")
		unroll := fs.Int("unroll", 1, "unrolling factor")
		fs.Parse(os.Args[2:])
		g, err := kernels.ByName(*kernel)
		if err != nil {
			fatal(err)
		}
		if *unroll > 1 {
			g = dfg.Unroll(g, *unroll)
		}
		if os.Args[1] == "dot" {
			if err := g.WriteDOT(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		if os.Args[1] == "svg" {
			if err := visual.WriteDFG(os.Stdout, g); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Println(g.Summary())
		m := dfg.ComputeMetrics(g)
		fmt.Printf("  width %d, max fanout %d, avg fanout %.2f, density %.3f, %d same-level pairs\n",
			m.Width, m.MaxFanout, m.AvgFanout, m.Density, m.SameLevelPairs)
		an := dfg.Analyze(g)
		for _, n := range g.Nodes {
			fmt.Printf("  %-12s %-7s asap=%d in=%d out=%d\n",
				n.Name, n.Op, an.ASAP[n.ID], g.InDegree(n.ID), g.OutDegree(n.ID))
		}
	case "random":
		fs := flag.NewFlagSet("random", flag.ExitOnError)
		seed := fs.Int64("seed", 1, "generator seed")
		minN := fs.Int("min", 10, "min nodes")
		maxN := fs.Int("max", 28, "max nodes")
		fs.Parse(os.Args[2:])
		cfg := dfg.DefaultRandomConfig()
		cfg.MinNodes, cfg.MaxNodes = *minN, *maxN
		g := dfg.Random(rand.New(rand.NewSource(*seed)), cfg, "random")
		fmt.Println(g.Summary())
		if err := g.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lisa-dfg {list | show | dot | svg | random} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisa-dfg:", err)
	os.Exit(1)
}
