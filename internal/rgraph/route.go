package rgraph

// The router finds a minimum-cost path of *exactly* K hops from a producer FU
// to a consumer FU. Exactness matters for modulo scheduling correctness: an
// operation placed at absolute cycle T occupies resources at T mod II, and an
// edge u→v must deliver its value in exactly T_v − T_u cycles so that every
// firing of v combines operands of the same loop iteration. "Waiting" is
// expressed inside the resource graph itself (register self-chains, or a
// value circling through FUs), so exact-length paths exist whenever the
// architecture has buffering to spare.
//
// Cost model: entering a resource that already carries the same signal is
// free (fan-out sharing and deliberate loops), entering a fresh resource
// costs 1. Because every step costs exactly 0 or 1, the search is a 0-1 BFS
// over (resource, hops-done) states: a deque replaces the Dijkstra heap
// (free steps go to the front, paying steps to the back), which removes both
// the log factor and the per-push interface{} boxing of container/heap.
// The heap-based Dijkstra survives as routeDijkstra (route_dijkstra.go) — the
// reference implementation the differential tests and benchmarks compare
// against.
//
// Tie-breaking is explicit and deterministic: among equal-cost paths the
// winner is fixed by (a) the immutable adjacency order of Graph.Out, (b) the
// strict-improvement rule (a state's predecessor is only rewritten when the
// new cost is strictly lower), and (c) the FIFO/LIFO discipline of the deque.
// Equal inputs therefore always produce byte-identical paths — the property
// the equal-seed mapper invariants build on. The chosen path can differ from
// the heap Dijkstra's pick at equal cost, which is why experiment tables
// regenerated across the router switch may shift by a tie.

// Router performs exact-length routes over one resource graph. It reuses
// scratch buffers across calls; a Router is not safe for concurrent use.
type Router struct {
	g *Graph

	// MaxHops bounds route length; states beyond it are not explored.
	// It is fixed at construction; do not modify.
	MaxHops int

	w     int // state stride: MaxHops + 1
	dist  []int32
	stamp []uint32
	prev  []int32
	epoch uint32
	dq    deque32
	bfsq  []int32   // ShortestHops queue scratch
	pq    routeHeap // scratch for the routeDijkstra reference implementation
}

// NewRouter creates a router for g with the given hop bound.
func NewRouter(g *Graph, maxHops int) *Router {
	if maxHops < 1 {
		maxHops = 1
	}
	size := g.NumNodes() * (maxHops + 1)
	return &Router{
		g:       g,
		MaxHops: maxHops,
		w:       maxHops + 1,
		dist:    make([]int32, size),
		stamp:   make([]uint32, size),
		prev:    make([]int32, size),
	}
}

// deque32 is an allocation-free ring-buffer deque of int32 states. It grows
// geometrically and keeps its backing array across resets.
type deque32 struct {
	buf  []int32
	head int // index of the front element
	n    int // element count
}

func (d *deque32) reset() { d.head, d.n = 0, 0 }

func (d *deque32) empty() bool { return d.n == 0 }

func (d *deque32) grow() {
	nb := make([]int32, max(4*len(d.buf), 64))
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

func (d *deque32) pushFront(v int32) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
}

func (d *deque32) pushBack(v int32) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

func (d *deque32) popFront() int32 {
	v := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v
}

// Route searches for an exact hops-length path from src to dst for signal
// sig, honouring occ. The returned path has hops+1 node IDs including src and
// dst; ok is false when no such path exists within the router's hop bound.
// The path is NOT committed; call Commit to occupy it.
func (r *Router) Route(occ *Occupancy, sig Signal, src, dst, hops int) (path []int, cost int, ok bool) {
	if hops < 1 || hops > r.MaxHops {
		return nil, 0, false
	}
	// Feasibility pre-check: an exact-hops path is a witness that dst is
	// reachable in ≤ hops under the same RouteOK/CanEnter constraints, so a
	// failed or too-long ShortestHops proves no exact path exists. This
	// turns the common congestion failure from a full state-space sweep
	// (nodes × hops) into one plain BFS, and never changes a success.
	if sh := r.ShortestHops(occ, sig, src, dst); sh < 0 || sh > hops {
		return nil, 0, false
	}
	r.epoch++
	w := r.w
	start := int32(src * w)
	r.dist[start] = 0
	r.stamp[start] = r.epoch
	r.prev[start] = -1
	r.dq.reset()
	r.dq.pushBack(start)

	goal := int32(dst*w + hops)
	for !r.dq.empty() {
		s := r.dq.popFront()
		d := r.dist[s]
		if s == goal {
			// 0-1 BFS invariant: the first pop of a state carries its final
			// distance (free steps re-enter at the front).
			return r.buildPath(goal, hops), int(d), true
		}
		node := int(s) / w
		done := int(s) % w
		if done >= hops {
			continue
		}
		for _, nb := range r.g.Out(node) {
			next := int(nb)
			isDst := next == dst && done+1 == hops
			if !isDst {
				nn := &r.g.Nodes[next]
				if !nn.RouteOK || !occ.CanEnter(next, sig) {
					continue
				}
			}
			step := int32(1)
			if isDst || occ.Carries(next, sig) {
				// The consumer op already occupies its FU; same-signal
				// re-entry is fan-out sharing. Both are free.
				step = 0
			}
			ns := int32(next*w + done + 1)
			nc := d + step
			if r.stamp[ns] == r.epoch && r.dist[ns] <= nc {
				continue
			}
			r.stamp[ns] = r.epoch
			r.dist[ns] = nc
			r.prev[ns] = s
			if step == 0 {
				r.dq.pushFront(ns)
			} else {
				r.dq.pushBack(ns)
			}
		}
	}
	return nil, 0, false
}

// ShortestHops returns the minimum hop count of any admissible path from src
// to dst for sig (ignoring the exact-length constraint), or -1 if dst is
// unreachable within MaxHops. The mapper uses it to pick feasible time slots.
// Like Route it reuses the router's scratch arrays; dst counts as reachable
// on the hop that touches it even when dst itself is at capacity (the
// consumer op owns that FU).
func (r *Router) ShortestHops(occ *Occupancy, sig Signal, src, dst int) int {
	r.epoch++
	w := r.w
	// Plain-node BFS: hop-minimal reachability. Reuse dist/stamp at node*w
	// and the queue buffer from previous calls.
	q := r.bfsq[:0]
	q = append(q, int32(src))
	r.stamp[src*w] = r.epoch
	r.dist[src*w] = 0
	for i := 0; i < len(q); i++ {
		cur := int(q[i])
		d := int(r.dist[cur*w])
		if d >= r.MaxHops {
			continue
		}
		for _, nb := range r.g.Out(cur) {
			next := int(nb)
			if next == dst {
				r.bfsq = q
				return d + 1
			}
			nn := &r.g.Nodes[next]
			if !nn.RouteOK || !occ.CanEnter(next, sig) {
				continue
			}
			if r.stamp[next*w] == r.epoch {
				continue
			}
			r.stamp[next*w] = r.epoch
			r.dist[next*w] = int32(d + 1)
			q = append(q, int32(next))
		}
	}
	r.bfsq = q
	return -1
}

// buildPath materializes the prev chain ending at goal into a fresh
// exact-size slice (the caller retains it in the mapping state).
func (r *Router) buildPath(goal int32, hops int) []int {
	path := make([]int, hops+1)
	s := goal
	for i := hops; i >= 0; i-- {
		path[i] = int(s) / r.w
		s = r.prev[s]
	}
	return path
}

// Commit occupies every intermediate node of path (excluding the first and
// last entries, which are the producer and consumer FUs) with sig.
func Commit(occ *Occupancy, sig Signal, path []int) {
	for i := 1; i < len(path)-1; i++ {
		occ.Use(path[i], sig)
	}
}

// Uncommit releases a previously committed path.
func Uncommit(occ *Occupancy, sig Signal, path []int) {
	for i := 1; i < len(path)-1; i++ {
		occ.Release(path[i], sig)
	}
}
