package traingen

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/mapper"
)

func quickConfig(n int, seed int64) Config {
	cfg := DefaultConfig()
	cfg.NumDFGs = n
	cfg.Iterations = 2
	cfg.Seed = seed
	cfg.MapOpts = mapper.Options{MaxMoves: 500}
	return cfg
}

func TestGenerateProducesAdmittedSamples(t *testing.T) {
	ar := arch.NewBaseline4x4()
	ds := Generate(ar, quickConfig(12, 1))
	if ds.Stats.Generated != 12 {
		t.Fatalf("generated = %d", ds.Stats.Generated)
	}
	if ds.Stats.Mapped == 0 {
		t.Fatal("no DFG mapped at all")
	}
	if len(ds.Samples) == 0 {
		t.Fatal("no samples admitted")
	}
	if ds.Stats.Admitted != len(ds.Samples) {
		t.Fatal("stats inconsistent")
	}
	for i, s := range ds.Samples {
		if err := s.Lbl.Validate(s.Set.An.G); err != nil {
			t.Errorf("sample %d: %v", i, err)
		}
		// Extracted temporal labels must be >= 1 (a route takes a cycle).
		for e, tv := range s.Lbl.Temporal {
			if tv < 1 {
				t.Errorf("sample %d edge %d temporal %v < 1", i, e, tv)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ar := arch.NewBaseline3x3()
	a := Generate(ar, quickConfig(6, 42))
	b := Generate(ar, quickConfig(6, 42))
	if len(a.Samples) != len(b.Samples) || a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestGenerateWorkerCountInvariant(t *testing.T) {
	// The dataset — sample order, content and stats — must be identical at
	// every worker count: each DFG's stream is derived from (Seed, index),
	// never from a shared rng.
	ar := arch.NewBaseline4x4()
	serialCfg := quickConfig(10, 7)
	serialCfg.Workers = 1
	serial := Generate(ar, serialCfg)

	for _, workers := range []int{2, 8} {
		cfg := quickConfig(10, 7)
		cfg.Workers = workers
		got := Generate(ar, cfg)
		if got.Stats != serial.Stats {
			t.Fatalf("workers=%d stats diverged: %+v vs %+v", workers, got.Stats, serial.Stats)
		}
		if !reflect.DeepEqual(got.Samples, serial.Samples) {
			t.Fatalf("workers=%d samples diverged from serial run", workers)
		}
	}
	if serial.Stats.Generated != 10 {
		t.Fatalf("generated = %d", serial.Stats.Generated)
	}
}

func TestSplit(t *testing.T) {
	ar := arch.NewBaseline4x4()
	ds := Generate(ar, quickConfig(10, 3))
	if len(ds.Samples) < 2 {
		t.Skip("not enough samples in quick profile")
	}
	train, test := Split(ds, 0.75, 1)
	if len(train)+len(test) != len(ds.Samples) {
		t.Fatal("split lost samples")
	}
	if len(train) == 0 {
		t.Fatal("empty training split")
	}
}

func TestEndToEndTrainOnGenerated(t *testing.T) {
	// The full §V pipeline: generate -> train -> accuracy sane.
	ar := arch.NewBaseline4x4()
	ds := Generate(ar, quickConfig(14, 5))
	if len(ds.Samples) < 4 {
		t.Skipf("only %d samples; budget too small on this machine", len(ds.Samples))
	}
	train, test := Split(ds, 0.7, 2)
	m := gnn.NewModel(randSource(1), ar.Name())
	m.Train(train, gnn.TrainConfig{Epochs: 40, LR: 0.003, WeightDecay: 0.0005})
	acc := m.Accuracy(test)
	for k, a := range acc {
		if a < 0 || a > 1 {
			t.Fatalf("label %d accuracy out of range: %v", k+1, a)
		}
	}
	t.Logf("quick-profile accuracies: %.3f", acc)
}

// randSource adapts a seed for gnn.NewModel.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ar := arch.NewBaseline4x4()
	ds := Generate(ar, quickConfig(8, 9))
	if len(ds.Samples) == 0 {
		t.Skip("no samples at this budget")
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(ds.Samples) || back.Stats != ds.Stats {
		t.Fatalf("round trip lost data: %d vs %d samples", len(back.Samples), len(ds.Samples))
	}
	for i := range ds.Samples {
		a, b := &ds.Samples[i], &back.Samples[i]
		if a.Set.An.G.NumNodes() != b.Set.An.G.NumNodes() {
			t.Fatal("graph shape changed")
		}
		for v := range a.Lbl.Order {
			if a.Lbl.Order[v] != b.Lbl.Order[v] {
				t.Fatal("order labels changed")
			}
		}
		for p, val := range a.Lbl.SameLevel {
			if b.Lbl.SameLevel[p] != val {
				t.Fatal("same-level labels changed")
			}
		}
		// Attributes regenerate identically.
		for v := range a.Set.Node {
			for j := range a.Set.Node[v] {
				if a.Set.Node[v][j] != b.Set.Node[v][j] {
					t.Fatal("attributes diverged after reload")
				}
			}
		}
	}
}

func TestDatasetLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("truncated input must fail")
	}
	if _, err := Load(strings.NewReader(`{"format":9}`)); err == nil {
		t.Fatal("bad format must fail")
	}
}

func TestGenerateRespectsArchOps(t *testing.T) {
	// On the systolic array, training DFGs must only use mul/add compute
	// ops (the fixed-function PEs cannot execute anything else).
	ar := arch.NewSystolic5x5()
	ds := Generate(ar, quickConfig(8, 17))
	if ds.Stats.Generated != 8 {
		t.Fatal("generation incomplete")
	}
	for _, s := range ds.Samples {
		for _, n := range s.Set.An.G.Nodes {
			ok := false
			for pe := 0; pe < ar.NumPEs(); pe++ {
				if ar.SupportsOp(pe, n.Op) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("training DFG carries unsupported op %s", n.Op)
			}
		}
	}
	t.Logf("systolic: mapped %d admitted %d of %d", ds.Stats.Mapped, ds.Stats.Admitted, ds.Stats.Generated)
}
