package rgraph

// Signal identifies a value travelling through the resource graph. The mapper
// uses the producing DFG node's ID, so all routes fanning out from one
// producer share resources for free — a standard routing-resource-graph rule
// without which dense DFGs (syr2k and friends) become unmappable.
type Signal int32

// opSignal marks an FU node occupied by a placed operation rather than a
// routed value. Each placed op gets a distinct negative signal so that a
// route may *end* at its consumer but never pass through another op.
func opSignal(dfgNode int) Signal { return Signal(-1 - dfgNode) }

// Occupancy tracks which signals occupy each resource node. It supports the
// capacity rule (at most Cap distinct signals per node), fan-out sharing
// (re-entering a node already carrying the same signal is free), and
// reference-counted release so overlapping routes unwind correctly.
type Occupancy struct {
	g *Graph
	// occ[node] lists (signal, refcount) pairs; nodes carry few signals so a
	// small slice beats a map.
	occ [][]sigRef
}

type sigRef struct {
	sig Signal
	ref int
}

// NewOccupancy creates an empty occupancy table for g.
func NewOccupancy(g *Graph) *Occupancy {
	return &Occupancy{g: g, occ: make([][]sigRef, g.NumNodes())}
}

// Clone returns a deep copy (used by movement rollback in SA).
func (o *Occupancy) Clone() *Occupancy {
	c := &Occupancy{g: o.g, occ: make([][]sigRef, len(o.occ))}
	for i, s := range o.occ {
		if len(s) > 0 {
			c.occ[i] = append([]sigRef(nil), s...)
		}
	}
	return c
}

// Reset clears all occupancy.
func (o *Occupancy) Reset() {
	for i := range o.occ {
		o.occ[i] = o.occ[i][:0]
	}
}

// distinct returns the number of distinct signals at node n.
func (o *Occupancy) distinct(n int) int { return len(o.occ[n]) }

// CanEnter reports whether signal sig may use node n: either n already
// carries sig, or n has spare capacity.
func (o *Occupancy) CanEnter(n int, sig Signal) bool {
	for _, r := range o.occ[n] {
		if r.sig == sig {
			return true
		}
	}
	return o.distinct(n) < o.g.Nodes[n].Cap
}

// Carries reports whether node n currently carries signal sig.
func (o *Occupancy) Carries(n int, sig Signal) bool {
	for _, r := range o.occ[n] {
		if r.sig == sig {
			return true
		}
	}
	return false
}

// Use records one use of sig at node n. It panics if the capacity rule would
// be violated; callers must check CanEnter first.
func (o *Occupancy) Use(n int, sig Signal) {
	for i := range o.occ[n] {
		if o.occ[n][i].sig == sig {
			o.occ[n][i].ref++
			return
		}
	}
	if o.distinct(n) >= o.g.Nodes[n].Cap {
		panic("rgraph: capacity violated")
	}
	o.occ[n] = append(o.occ[n], sigRef{sig: sig, ref: 1})
}

// Release undoes one Use of sig at node n.
func (o *Occupancy) Release(n int, sig Signal) {
	for i := range o.occ[n] {
		if o.occ[n][i].sig == sig {
			o.occ[n][i].ref--
			if o.occ[n][i].ref == 0 {
				last := len(o.occ[n]) - 1
				o.occ[n][i] = o.occ[n][last]
				o.occ[n] = o.occ[n][:last]
			}
			return
		}
	}
	panic("rgraph: release of absent signal")
}

// PlaceOp occupies FU node n with the operation of DFG node v. It reports
// false when the node is already occupied by a different signal.
func (o *Occupancy) PlaceOp(n, v int) bool {
	sig := opSignal(v)
	if !o.CanEnter(n, sig) {
		return false
	}
	o.Use(n, sig)
	return true
}

// RemoveOp releases the operation of DFG node v from FU node n.
func (o *Occupancy) RemoveOp(n, v int) { o.Release(n, opSignal(v)) }

// OpOccupied reports whether node n hosts a placed operation.
func (o *Occupancy) OpOccupied(n int) bool {
	for _, r := range o.occ[n] {
		if r.sig < 0 {
			return true
		}
	}
	return false
}

// CanPlaceOp reports whether an operation could be placed on node n, i.e.
// the node still has spare capacity for a new distinct signal.
func (o *Occupancy) CanPlaceOp(n int) bool {
	return o.distinct(n) < o.g.Nodes[n].Cap
}

// UseCount returns the total distinct signals at n (for congestion metrics).
func (o *Occupancy) UseCount(n int) int { return o.distinct(n) }
