#!/usr/bin/env bash
# bench-gnn.sh — run the GNN inference benchmarks and emit BENCH_gnn.json.
#
# Usage:
#   scripts/bench-gnn.sh            # measure, write BENCH_gnn.json
#   scripts/bench-gnn.sh --check    # additionally fail if the fused path's
#                                   # allocs/op exceeds ALLOC_CEILING or its
#                                   # alloc reduction over the taped path
#                                   # drops below MIN_ALLOC_RATIO (CI gate)
#
# BenchmarkGNNInference is the fused no-tape Predict on the gemm kernel — the
# serving hot path. BenchmarkGNNInferenceTaped is the taped reference forward
# pass it replaced, measured in the same run so the ratio is machine-neutral.
# BenchmarkGNNInferenceBatch8 packs eight PolyBench kernels into one
# PredictBatch call.
#
# The alloc ceiling is loose (~3x the fused steady state, still >5x below the
# taped path) so the gate catches a real regression — an op that starts taping
# or an arena that stops being reused blows through it instantly — without
# flaking on noise.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-200x}"
ALLOC_CEILING="${ALLOC_CEILING:-60}"
MIN_ALLOC_RATIO="${MIN_ALLOC_RATIO:-5}"
OUT="${OUT:-BENCH_gnn.json}"

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
fi

echo "running GNNInference benchmarks (-benchtime $BENCHTIME)..." >&2
raw=$(go test -run '^$' -bench 'GNNInference' -benchtime "$BENCHTIME" -benchmem ./internal/gnn/)
echo "$raw" >&2

field() { # field <line> <unit>
  echo "$1" | awk -v unit="$2" '{for (i=1;i<=NF;i++) if ($(i+1)==unit) printf "%d", $i}'
}

fused_line=$(echo "$raw" | grep '^BenchmarkGNNInference ')
taped_line=$(echo "$raw" | grep '^BenchmarkGNNInferenceTaped')
batch_line=$(echo "$raw" | grep '^BenchmarkGNNInferenceBatch8')

fused_ns=$(field "$fused_line" "ns/op")
fused_bytes=$(field "$fused_line" "B/op")
fused_allocs=$(field "$fused_line" "allocs/op")
taped_ns=$(field "$taped_line" "ns/op")
taped_bytes=$(field "$taped_line" "B/op")
taped_allocs=$(field "$taped_line" "allocs/op")
batch_ns=$(field "$batch_line" "ns/op")
batch_allocs=$(field "$batch_line" "allocs/op")

if [[ -z "$fused_allocs" || -z "$taped_allocs" ]]; then
  echo "bench-gnn: could not parse benchmark output" >&2
  exit 1
fi

speedup=$(awk -v a="$taped_ns" -v b="$fused_ns" 'BEGIN {printf "%.2f", a/b}')
allocratio=$(awk -v a="$taped_allocs" -v b="$fused_allocs" 'BEGIN {printf "%.2f", a/b}')

cat > "$OUT" <<EOF
{
  "benchmark": "BenchmarkGNNInference",
  "benchtime": "$BENCHTIME",
  "taped": {
    "ns_per_op": $taped_ns,
    "bytes_per_op": $taped_bytes,
    "allocs_per_op": $taped_allocs
  },
  "fused": {
    "ns_per_op": $fused_ns,
    "bytes_per_op": $fused_bytes,
    "allocs_per_op": $fused_allocs
  },
  "batch8": {
    "ns_per_op": $batch_ns,
    "allocs_per_op": $batch_allocs
  },
  "speedup": $speedup,
  "alloc_reduction": $allocratio,
  "alloc_ceiling": $ALLOC_CEILING,
  "min_alloc_ratio": $MIN_ALLOC_RATIO
}
EOF
echo "wrote $OUT (fused ns/op=$fused_ns allocs/op=$fused_allocs, taped allocs/op=$taped_allocs, allocs ÷${allocratio})" >&2

if [[ "$check" == 1 ]]; then
  if (( fused_allocs > ALLOC_CEILING )); then
    echo "bench-gnn: FAIL — fused allocs/op $fused_allocs exceeds ceiling $ALLOC_CEILING" >&2
    exit 1
  fi
  below=$(awk -v r="$allocratio" -v m="$MIN_ALLOC_RATIO" 'BEGIN {print (r < m) ? 1 : 0}')
  if [[ "$below" == 1 ]]; then
    echo "bench-gnn: FAIL — alloc reduction ${allocratio}x below required ${MIN_ALLOC_RATIO}x" >&2
    exit 1
  fi
  echo "bench-gnn: fused allocs/op $fused_allocs within ceiling $ALLOC_CEILING, reduction ${allocratio}x >= ${MIN_ALLOC_RATIO}x" >&2
fi
