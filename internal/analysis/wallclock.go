package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock flags time.Now, time.Since and time.Sleep calls in
// result-affecting packages outside the allowlisted deadline/metrics call
// sites. Wall-clock readings that reach a Result make equal requests
// produce unequal bytes, which breaks the service cache's byte-identity
// guarantee and poisons any dataset that serializes them; a sleep shifts
// every deadline-relative outcome the same way without ever appearing in
// a Result, which is worse to debug.
//
// Legitimate clock uses fall in two families, allowlisted by enclosing
// function below: deadline enforcement (a time budget may cut an II sweep
// short — that is already part of the cache key, see service.cacheKey) and
// latency metrics (reported via /metrics, never part of a Result except
// the documented Duration field, which the cache zeroes on hits).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "time.Now/time.Since/time.Sleep in a result-affecting package outside allowlisted deadline/metrics sites",
	Run:  runWallClock,
}

// wallclockAllowed maps a result package (path suffix) to the functions in
// it that may read the clock. Keep this list small and audited: every entry
// is either a deadline check or a metrics/duration measurement.
var wallclockAllowed = map[string][]string{
	"internal/mapper": {
		"Map",        // start time for TimeLimit + Result.Duration
		"MapGreedy",  // Result.Duration measurement
		"anneal",     // TimeLimit deadline check inside the movement loop
		"runChain",   // portfolio chain's shared-deadline check (same start as Map)
		"pickWinner", // portfolio Result.Duration measurement
	},
	"internal/ilp": {
		"Map",     // Result.Duration measurement
		"mapAtII", // per-II solver deadline
		"Solve",   // solver TimeLimit deadline
		"timeUp",  // deadline check in the search loop
	},
	"internal/fault": {
		"Inject", // latency-mode sleep IS the injected fault; fires only with a plan armed
	},
	"internal/service": {
		"New",           // metrics start timestamp (uptime)
		"runMapping",    // per-engine latency histogram sample
		"handleMetrics", // /metrics snapshot timestamp
	},
}

func runWallClock(pass *Pass) {
	if !inResultPackage(pass.Pkg.Path) {
		return
	}
	allowed := map[string]bool{}
	for suffix, funcs := range wallclockAllowed {
		if pathHasSuffix(pass.Pkg.Path, suffix) {
			for _, fn := range funcs {
				allowed[fn] = true
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && allowed[fd.Name.Name] {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if name := fn.Name(); name == "Now" || name == "Since" || name == "Sleep" {
					pass.Reportf(call.Pos(),
						"time.%s outside an allowlisted deadline/metrics site leaks wall-clock into result-affecting code; add the enclosing function to wallclockAllowed (with justification) or restructure",
						name)
				}
				return true
			})
		}
	}
}
