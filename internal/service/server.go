// Package service is the mapping-as-a-service subsystem behind the
// lisa-serve daemon. LISA's split — offline per-accelerator training,
// cheap compile-time inference (§IV–V) — is exactly the shape of a
// long-lived server: models are loaded (or trained) once per architecture
// and every mapping request is a low-latency inference + annealing run.
//
// The server composes six pieces:
//
//   - a model registry (internal/registry) resolving one GNN model per
//     architecture behind a per-architecture once;
//   - a two-tier content-addressed result cache: SHA-256 of the
//     normalized request → the exact response bytes. L1 is in-memory
//     (cache.go), LRU-bounded by entries and bytes, with singleflight
//     deduplication so N concurrent identical requests run the annealer
//     once; L2 (optional) is the crash-tolerant persistent store in
//     internal/store, so results outlive both L1 eviction and restarts;
//   - an admission-controlled worker pool (internal/parallel.Pool): a
//     bounded queue that turns overload into HTTP 429 instead of latency;
//   - optional multi-node routing (internal/cluster): each cache key has
//     one owning peer on a consistent-hash ring, non-owners proxy to it
//     (singleflight held across the hop), and an unreachable owner
//     degrades to local compute — so a fleet computes each distinct
//     mapping once but never refuses work because a peer died;
//   - a batch endpoint (batch.go): many DFG×arch items per request,
//     fanned out over a dedicated pool with per-item outcomes;
//   - request metrics (metrics.go) served as JSON on /metrics.
//
// Because mapping results are pure functions of (DFG, arch, engine,
// options, seed) for the SA-family engines, a cache hit, a fresh run, and
// a re-run after restart all return byte-identical bodies.
//
// The daemon is crash-proofed for long-lived serving: every handler runs
// behind a panic fence (500 + a panics counter, never a dead process),
// mapping requests go through engine.Run's graceful-degradation ladder
// (degraded responses are labeled and never cached), inline DFGs are
// structurally validated and size-capped before any analysis touches
// them, and POST /v1/reload is the explicit recovery path for cached
// training failures. internal/fault sites (cache.get, pool.submit) let
// the chaos suite drive all of this deterministically.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/engine"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/parallel"
	"github.com/lisa-go/lisa/internal/registry"
	"github.com/lisa-go/lisa/internal/store"
)

// Response headers. Routing and cache dispositions live in headers, never
// in bodies: the body of a 200 is byte-identical fleet-wide for a given
// request, no matter which node answered or how.
const (
	cacheHeader   = "X-Lisa-Cache"    // hit | store | miss | coalesced
	clusterHeader = "X-Lisa-Cluster"  // local | proxied | fallback-local
	noStoreHeader = "X-Lisa-No-Store" // "1": degraded/deadline result; no tier may cache it
)

var (
	errCanceled = errors.New("service: request canceled while waiting")
	errBusy     = errors.New("service: mapping queue full")
)

// Config tunes the server. Zero values fall back to DefaultConfig.
type Config struct {
	// Workers bounds concurrent mapper invocations (<= 0: one per CPU).
	Workers int
	// QueueDepth bounds mapping jobs waiting behind the workers; a full
	// queue turns into HTTP 429. Zero means the default; negative means no
	// queue at all (a request is refused unless a worker is free).
	QueueDepth int
	// CacheEntries bounds the in-memory (L1) result cache by entry count;
	// CacheBytes bounds it by total body bytes (0: the default; negative:
	// no byte bound).
	CacheEntries int
	CacheBytes   int64
	// Store, when set, is the persistent (L2) result store: L1 misses are
	// looked up there before computing, and every cacheable result is
	// written through, so results survive restarts and L1 eviction.
	Store *store.Store
	// Cluster, when set, routes each cache key to its owning peer on a
	// consistent-hash ring; this node proxies keys it does not own and
	// falls back to local compute when the owner cannot serve.
	Cluster *cluster.Cluster
	// MaxBatchItems caps the items of one /v1/map/batch request (0: the
	// default).
	MaxBatchItems int
	// DefaultDeadline applies when a request names none; MaxDeadline caps
	// what a request may ask for. Deadlines feed mapper.Options.TimeLimit.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxBodyBytes bounds the request body (DFG uploads).
	MaxBodyBytes int64
	// MaxDFGNodes / MaxDFGEdges cap inline DFG uploads, including after
	// unrolling (0: the default caps; negative: uncapped). Built-in kernels
	// are trusted and exempt.
	MaxDFGNodes int
	MaxDFGEdges int
	// MaxUnroll caps the request unroll factor (0: default; negative:
	// uncapped).
	MaxUnroll int
	// MaxRestarts caps the portfolio width a request may ask for
	// (mapper.Options.Restarts): each restart is one full annealing chain,
	// so the cap bounds per-request compute the same way MaxUnroll bounds
	// graph size (0: default; negative: uncapped up to mapper.MaxRestarts).
	MaxRestarts int
	// ModelsDir, when set, is rescanned by POST /v1/reload for model files
	// that appeared after startup.
	ModelsDir string
	// OnPanic, when set, observes every recovered panic (handler or pool
	// task) with its stack; the daemon points it at the crash log.
	OnPanic func(recovered any, stack []byte)
	// MapOpts is the server-side default annealing budget; requests may
	// override MaxMoves and Seed.
	MapOpts mapper.Options
	// ILPOpts is the budget for engine=ilp requests.
	ILPOpts ilp.Options
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		QueueDepth:      64,
		CacheEntries:    4096,
		CacheBytes:      256 << 20,
		MaxBatchItems:   64,
		DefaultDeadline: 30 * time.Second,
		MaxDeadline:     2 * time.Minute,
		MaxBodyBytes:    4 << 20,
		MaxDFGNodes:     512,
		MaxDFGEdges:     2048,
		MaxUnroll:       8,
		MaxRestarts:     8,
		MapOpts:         mapper.DefaultOptions(),
		ILPOpts:         ilp.DefaultOptions(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.QueueDepth == 0 {
		c.QueueDepth = d.QueueDepth
	} else if c.QueueDepth < 0 {
		c.QueueDepth = -1 // parallel.NewPool clamps to an unbuffered queue
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = d.CacheEntries
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = d.CacheBytes
	} else if c.CacheBytes < 0 {
		c.CacheBytes = 0 // NewCache treats 0 as unbounded
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = d.MaxBatchItems
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = d.DefaultDeadline
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = d.MaxDeadline
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxDFGNodes == 0 {
		c.MaxDFGNodes = d.MaxDFGNodes
	} else if c.MaxDFGNodes < 0 {
		c.MaxDFGNodes = 0
	}
	if c.MaxDFGEdges == 0 {
		c.MaxDFGEdges = d.MaxDFGEdges
	} else if c.MaxDFGEdges < 0 {
		c.MaxDFGEdges = 0
	}
	if c.MaxUnroll == 0 {
		c.MaxUnroll = d.MaxUnroll
	} else if c.MaxUnroll < 0 {
		c.MaxUnroll = 0
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = d.MaxRestarts
	} else if c.MaxRestarts < 0 {
		c.MaxRestarts = 0
	}
	if c.MapOpts == (mapper.Options{}) {
		c.MapOpts = d.MapOpts
	}
	if c.ILPOpts == (ilp.Options{}) {
		c.ILPOpts = d.ILPOpts
	}
	return c
}

// Server serves mapping requests. Create with New, mount Handler on an
// http.Server, and Close on shutdown to drain in-flight mappings.
type Server struct {
	cfg     Config
	reg     *registry.Registry
	cache   *Cache
	flight  *flightGroup
	pool    *parallel.Pool
	metrics *Metrics

	// batchPool fans /v1/map/batch items out. It must be distinct from
	// pool: batch items submit mapping tasks into pool, and fanning out on
	// the same pool would let a burst of batches occupy every worker with
	// items that are themselves waiting for a worker — a deadlock.
	batchPool *parallel.Pool

	mu       sync.Mutex
	draining bool
}

// New builds a server over a model registry (which may have been pre-loaded
// from a models directory).
func New(cfg Config, reg *registry.Registry) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		cache:     NewCache(cfg.CacheEntries, cfg.CacheBytes),
		flight:    newFlightGroup(),
		pool:      parallel.NewPool(cfg.Workers, cfg.QueueDepth),
		batchPool: parallel.NewPool(cfg.Workers, cfg.QueueDepth),
		metrics:   NewMetrics(time.Now()),
	}
	// Last-resort fence: a task that panics past its own recovery must not
	// kill the worker. (Mapping tasks also recover for themselves so their
	// singleflight leader is never left waiting.)
	s.pool.OnPanic(s.panicked)
	s.batchPool.OnPanic(s.panicked)
	if cfg.Cluster != nil {
		// Warm model shipping: before the registry spends a local training
		// run on a model-less arch, ask the ring for one (model.go).
		reg.SetFetch(s.fetchModel)
	}
	return s
}

// panicked is the central sink for every recovered panic: count it and
// hand the stack to the configured crash log.
func (s *Server) panicked(recovered any, stack []byte) {
	s.metrics.Panic()
	if s.cfg.OnPanic != nil {
		s.cfg.OnPanic(recovered, stack)
	}
}

// Metrics exposes the server's counters (the /metrics handler and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the result cache (tests).
func (s *Server) Cache() *Cache { return s.cache }

// Close stops admitting new mapping jobs and waits for accepted ones to
// finish — the graceful-drain half of SIGTERM handling (the HTTP listener
// itself is drained by http.Server.Shutdown).
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.batchPool.Close()
	s.pool.Close()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Handler returns the route mux. Every route is wrapped in a panic fence:
// a panicking handler produces a 500 and a panics-counter tick, and the
// daemon keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/map", s.handleMap)
	mux.HandleFunc("/v1/map/batch", s.handleMapBatch)
	mux.HandleFunc("/v1/labels", s.handleLabels)
	mux.HandleFunc("/v1/archs", s.handleArchs)
	mux.HandleFunc("/v1/model/", s.handleModel)
	mux.HandleFunc("/v1/kernels", s.handleKernels)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

// recoverPanics is the handler-level panic fence.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec) // the deliberate connection-abort idiom; not a crash
			}
			s.panicked(rec, debug.Stack())
			// Best effort: if the handler already started the response the
			// status line is gone, but a fresh panic happens before any write.
			writeJSON(w, http.StatusInternalServerError,
				errorBody{Error: fmt.Sprintf("internal error: %v", rec)})
		}()
		next.ServeHTTP(w, r)
	})
}

// MapRequest is the POST /v1/map body. Exactly one of Kernel and DFG names
// the graph; Engine defaults to "lisa", Seed to 1, Unroll to 1, MaxMoves to
// the server default, DeadlineMs to the server default.
type MapRequest struct {
	Kernel     string          `json:"kernel,omitempty"`
	DFG        json.RawMessage `json:"dfg,omitempty"`
	Arch       string          `json:"arch"`
	Engine     string          `json:"engine,omitempty"`
	Seed       *int64          `json:"seed,omitempty"`
	Unroll     int             `json:"unroll,omitempty"`
	MaxMoves   int             `json:"maxMoves,omitempty"`
	// Restarts asks the SA-family engines to race a K-chain restart
	// portfolio (capped by Config.MaxRestarts; 0 and 1 both mean the plain
	// single-chain annealer). Part of the cache key: different widths are
	// different results.
	Restarts   int   `json:"restarts,omitempty"`
	DeadlineMs int64 `json:"deadlineMs,omitempty"`
	// Stats additionally computes the utilization report for OK mappings.
	Stats bool `json:"stats,omitempty"`
}

// MapResponse is the POST /v1/map body on success. Every field is
// deterministic for the SA-family engines, so identical requests always
// receive byte-identical bodies; the X-Lisa-Cache header ("hit", "miss",
// "coalesced") is the only part that varies.
type MapResponse struct {
	Key    string `json:"key"`
	Arch   string `json:"arch"`
	Engine string `json:"engine"`
	Seed   int64  `json:"seed"`
	Kernel string `json:"kernel,omitempty"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`

	// EngineUsed names the engine that actually produced the result when
	// the degradation ladder substituted one (absent on healthy responses,
	// which therefore stay byte-identical to earlier releases). The rungs
	// taken are in Result.Degraded.
	EngineUsed string `json:"engineUsed,omitempty"`

	Result      mapper.Result       `json:"result"`
	Utilization *mapper.Utilization `json:"utilization,omitempty"`
}

// errorBody is every non-200 JSON payload. Defect carries the
// machine-readable dfg.Defect class when the rejection was a structural
// DFG problem, so clients can tell a cyclic graph from an oversized one.
type errorBody struct {
	Error  string `json:"error"`
	Defect string `json:"defect,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: once the status line is
	// out there is no way to signal an encoding failure to the client.
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body) // a write error means the client hung up; nothing to do
}

func (s *Server) fail(w http.ResponseWriter, route string, status int, format string, args ...any) {
	s.metrics.Request(route, status)
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// failErr writes an error response, classifying DFG defects for clients.
func (s *Server) failErr(w http.ResponseWriter, route string, status int, err error) {
	s.metrics.Request(route, status)
	body := errorBody{Error: err.Error()}
	if de, ok := dfg.AsDefect(err); ok {
		body.Defect = string(de.Kind)
	}
	writeJSON(w, status, body)
}

// mapJob is one fully validated mapping request: everything execute needs,
// plus the exact request bytes so a proxy hop replays the request verbatim.
type mapJob struct {
	req     MapRequest
	raw     []byte
	ar      arch.Arch
	eng     engine.Name
	g       *dfg.Graph
	mapOpts mapper.Options
	key     string
}

// mapOutcome is how one mapping request was answered: the flight result
// (body/status/error plus routing dispositions) and the cache disposition
// for the X-Lisa-Cache header.
type mapOutcome struct {
	flightResult
	cacheState string // hit | store | miss | coalesced; "" on errors
}

// prepare validates raw as a MapRequest and resolves everything derived
// from it — architecture, engine, graph, normalized options, cache key.
// Every error is a client error (HTTP 400).
func (s *Server) prepare(raw []byte) (*mapJob, error) {
	job := &mapJob{raw: raw}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job.req); err != nil {
		return nil, fmt.Errorf("bad request body: %v", err)
	}

	ar, ok := arch.ByName(job.req.Arch)
	if !ok {
		return nil, fmt.Errorf("unknown arch %q (have %v)", job.req.Arch, arch.Names())
	}
	job.ar = ar
	job.eng = engine.Name("lisa")
	if job.req.Engine != "" {
		var err error
		job.eng, err = engine.Parse(job.req.Engine)
		if err != nil {
			return nil, err
		}
	}
	var err error
	job.g, err = s.requestGraph(&job.req)
	if err != nil {
		return nil, err
	}

	seed := int64(1)
	if job.req.Seed != nil {
		seed = *job.req.Seed
	}
	deadline := s.cfg.DefaultDeadline
	if job.req.DeadlineMs > 0 {
		deadline = time.Duration(job.req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	if job.req.Restarts < 0 {
		return nil, fmt.Errorf("restarts %d is negative", job.req.Restarts)
	}
	if s.cfg.MaxRestarts > 0 && job.req.Restarts > s.cfg.MaxRestarts {
		return nil, fmt.Errorf("restarts %d exceeds the limit of %d", job.req.Restarts, s.cfg.MaxRestarts)
	}
	job.mapOpts = s.cfg.MapOpts
	job.mapOpts.Seed = seed
	if job.req.MaxMoves > 0 {
		job.mapOpts.MaxMoves = job.req.MaxMoves
	}
	if job.req.Restarts > 0 {
		job.mapOpts.Restarts = job.req.Restarts
	}
	job.mapOpts.TimeLimit = deadline

	job.key = cacheKey(job.g, ar.Name(), job.eng, job.mapOpts, deadline.Milliseconds())
	return job, nil
}

// execute answers one prepared job through the full serving stack: L1
// cache, persistent store, cluster routing (unless the request already
// arrived forwarded), singleflight, worker pool. cancel aborts a follower's
// wait; the leader always completes.
func (s *Server) execute(job *mapJob, cancel <-chan struct{}, forwarded bool) mapOutcome {
	key := job.key
	if err := fault.Inject(fault.CacheGet, fault.Token(key)); err != nil {
		// An injected lookup failure is a forced miss: the request falls
		// through to a fresh (deduplicated) mapping run, trading latency
		// for availability exactly like a real cache outage would. The
		// injection itself is visible in /metrics under faults.
	} else if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHit()
		return mapOutcome{flightResult: flightResult{body: body, status: http.StatusOK}, cacheState: "hit"}
	} else if st := s.cfg.Store; st != nil {
		body, err := st.Get(key)
		switch {
		case err == nil:
			s.metrics.StoreHit()
			s.cache.Add(key, body) // promote to L1; next hit skips the disk
			return mapOutcome{flightResult: flightResult{body: body, status: http.StatusOK}, cacheState: "store"}
		case errors.Is(err, store.ErrNotFound):
			s.metrics.StoreMiss()
		default:
			// Read failures (injected, torn, bit-rot) are forced misses: the
			// store self-heals corrupt entries and the fresh compute rewrites
			// them. Availability over persistence, never the reverse.
			s.metrics.StoreReadError()
		}
	}

	// Cluster routing: keys this node does not own are proxied to their
	// owner so the fleet computes each distinct mapping exactly once. A
	// forwarded request is never re-forwarded (the owner may disagree about
	// ownership mid-reconfiguration; one hop bounds the disagreement).
	owner := ""
	if cl := s.cfg.Cluster; cl != nil && !forwarded {
		if o := cl.Owner(key); o != cl.Self() {
			owner = o
		}
	}
	fn := func() flightResult { return s.runMapping(job) }
	if owner != "" {
		fn = func() flightResult { return s.proxyToOwner(job, owner) }
	}
	res, shared := s.flight.do(key, cancel, fn)
	out := mapOutcome{flightResult: res}
	if res.err == nil {
		if shared {
			s.metrics.Coalesced()
			out.cacheState = "coalesced"
		} else {
			s.metrics.CacheMiss()
			out.cacheState = "miss"
		}
	}
	return out
}

// proxyToOwner is the singleflight leader body on a non-owner node: replay
// the request bytes against the key's owner and relay its answer. If the
// owner cannot serve — down, draining, overloaded, or an injected peer.rpc
// fault — the request degrades to local compute instead of failing: the
// serving twin of the engine degradation ladder. The fallback produces the
// same deterministic bytes the owner would have (only the X-Lisa-Cluster
// header and the fallbacks counter betray the detour).
func (s *Server) proxyToOwner(job *mapJob, owner string) flightResult {
	resp, err := s.cfg.Cluster.Forward(owner, "/v1/map", fault.Token(job.key), job.raw)
	if err == nil {
		switch {
		case resp.Status == http.StatusOK:
			s.metrics.Proxied()
			noStore := resp.Header.Get(noStoreHeader) != ""
			if !noStore {
				// Adopt the owner's result into both local tiers: the next
				// request for this key is served here without a hop.
				s.cacheBody(job.key, resp.Body)
			}
			return flightResult{body: resp.Body, status: http.StatusOK, via: "proxied", noStore: noStore}
		case resp.Status < http.StatusInternalServerError &&
			resp.Status != http.StatusTooManyRequests &&
			resp.Status != http.StatusServiceUnavailable:
			// A deterministic 4xx: recomputing locally would refuse the
			// request identically, so relay the owner's verdict.
			s.metrics.Proxied()
			return flightResult{body: resp.Body, status: resp.Status, via: "proxied", noStore: true}
		}
		// 429 / 503 / 5xx: the owner is alive but cannot serve this now.
	}
	s.metrics.Fallback()
	res := s.runMapping(job)
	res.via = "fallback-local"
	return res
}

// cacheBody writes one cacheable response body through both cache tiers. A
// store write failure costs persistence, not the request: the result is
// already in L1 and on its way to the client.
func (s *Server) cacheBody(key string, body []byte) {
	s.cache.Add(key, body)
	if st := s.cfg.Store; st != nil {
		if err := st.Put(key, body); err != nil {
			s.metrics.StoreWriteError()
		}
	}
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/map"
	if r.Method != http.MethodPost {
		s.fail(w, route, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.isDraining() {
		s.fail(w, route, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.metrics.InflightAdd(1)
	defer s.metrics.InflightAdd(-1)

	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.fail(w, route, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	job, err := s.prepare(raw)
	if err != nil {
		s.failErr(w, route, http.StatusBadRequest, err)
		return
	}

	out := s.execute(job, r.Context().Done(), r.Header.Get(cluster.ForwardedHeader) != "")
	switch {
	case errors.Is(out.err, errCanceled):
		// Client hung up while waiting on another request's run; nothing
		// useful to write.
		s.metrics.Request(route, http.StatusRequestTimeout)
		return
	case errors.Is(out.err, errBusy):
		s.metrics.Rejected()
		s.fail(w, route, http.StatusTooManyRequests, "mapping queue full, retry later")
		return
	case out.err != nil:
		s.fail(w, route, out.status, "%v", out.err)
		return
	}
	s.metrics.Request(route, out.status)
	w.Header().Set("Content-Type", "application/json")
	if out.cacheState != "" {
		w.Header().Set(cacheHeader, out.cacheState)
	}
	if s.cfg.Cluster != nil {
		via := out.via
		if via == "" {
			via = "local"
		}
		w.Header().Set(clusterHeader, via)
	}
	if out.noStore && out.status == http.StatusOK {
		// Tells a forwarding peer (and any cache in between) that this body
		// is a degraded/deadline-curtailed result no tier may retain.
		w.Header().Set(noStoreHeader, "1")
	}
	if out.status != http.StatusOK {
		w.WriteHeader(out.status)
	}
	_, _ = w.Write(out.body) // client disconnect; any cacheable result is already cached
}

// runMapping is the singleflight leader body: admit into the worker pool,
// run the engine behind the degradation ladder, serialize, cache. It always
// runs to completion once admitted so followers and the cache see the
// result even if the leading client disconnects.
func (s *Server) runMapping(job *mapJob) flightResult {
	key, ar, g, eng, mapOpts := job.key, job.ar, job.g, job.eng, job.mapOpts
	ilpOpts := s.cfg.ILPOpts
	if eng == engine.ILP && mapOpts.TimeLimit > 0 && (ilpOpts.TimeLimitPerII <= 0 || ilpOpts.TimeLimitPerII > mapOpts.TimeLimit) {
		ilpOpts.TimeLimitPerII = mapOpts.TimeLimit
	}

	if err := fault.Inject(fault.PoolSubmit, fault.Token(key)); err != nil {
		// An injected admission failure is backpressure, same as a full
		// queue: the client sees 429 and retries.
		return flightResult{status: http.StatusTooManyRequests, err: errBusy}
	}

	type outcome struct {
		rr  engine.RunResult
		err error
	}
	done := make(chan outcome, 1)
	admitted := s.pool.TrySubmit(func() {
		// This fence must be here, not (only) in the pool: the pool's
		// worker-level recovery would keep the worker alive but never send
		// on done, leaving the singleflight leader blocked forever.
		defer func() {
			if rec := recover(); rec != nil {
				s.panicked(rec, debug.Stack())
				done <- outcome{err: fmt.Errorf("mapping task panicked: %v", rec)}
			}
		}()
		start := time.Now()
		rr, err := engine.Run(ar, g, engine.Request{
			Engine: eng,
			Labels: s.reg,
			Opts:   engine.Options{Map: mapOpts, ILP: ilpOpts},
		})
		s.metrics.Mapped(string(eng), err == nil && rr.OK, time.Since(start))
		if err == nil && rr.DegradedRun() {
			s.metrics.DegradedRun(string(eng))
		}
		done <- outcome{rr, err}
	})
	if !admitted {
		return flightResult{status: http.StatusTooManyRequests, err: errBusy}
	}
	out := <-done
	if out.err != nil {
		return flightResult{status: http.StatusInternalServerError, err: out.err}
	}
	res := out.rr.Result
	if res.OK {
		if err := mapper.Verify(ar, g, &res); err != nil {
			return flightResult{status: http.StatusInternalServerError, err: fmt.Errorf("mapping failed verification: %w", err)}
		}
	}
	// Wall-clock duration is the one nondeterministic Result field; zero it
	// so identical requests serialize to identical bytes. Latency lives in
	// /metrics instead.
	res.Duration = 0

	resp := MapResponse{
		Key:    key,
		Arch:   ar.Name(),
		Engine: string(eng),
		Seed:   mapOpts.Seed,
		Kernel: job.req.Kernel,
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		Result: res,
	}
	if out.rr.Engine != eng {
		resp.EngineUsed = string(out.rr.Engine)
	}
	if job.req.Stats && res.OK {
		u, err := mapper.Utilize(ar, g, &res)
		if err != nil {
			return flightResult{status: http.StatusInternalServerError, err: err}
		}
		resp.Utilization = &u
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		return flightResult{status: http.StatusInternalServerError, err: err}
	}
	body = append(body, '\n')
	// Degraded and deadline-curtailed results are served but never cached —
	// in either tier: the caches must only ever hold first-choice
	// deterministic outcomes, or a transient fault's fallback would outlive
	// the fault itself.
	if len(res.Degraded) == 0 && !res.DeadlineExceeded {
		s.cacheBody(key, body)
		return flightResult{body: body, status: http.StatusOK}
	}
	return flightResult{body: body, status: http.StatusOK, noStore: true}
}

// requestGraph resolves the request's DFG: a named kernel or an inline DFG
// document, then optional unrolling. Inline DFGs are untrusted input: they
// are structurally validated (ReadJSON) and size-capped, both as uploaded
// and after unrolling — mapper state grows superlinearly with graph size,
// so an unbounded upload is a memory bomb. Built-in kernels are trusted
// and exempt from the size caps (but not the unroll cap).
func (s *Server) requestGraph(req *MapRequest) (*dfg.Graph, error) {
	if (req.Kernel == "") == (len(req.DFG) == 0) {
		return nil, errors.New("exactly one of \"kernel\" and \"dfg\" must be set")
	}
	var g *dfg.Graph
	if req.Kernel != "" {
		var err error
		g, err = kernels.ByName(req.Kernel)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		g, err = dfg.ReadJSON(bytes.NewReader(req.DFG))
		if err != nil {
			return nil, err
		}
		if err := g.CheckSize(s.cfg.MaxDFGNodes, s.cfg.MaxDFGEdges); err != nil {
			return nil, err
		}
	}
	if req.Unroll > 1 {
		if s.cfg.MaxUnroll > 0 && req.Unroll > s.cfg.MaxUnroll {
			return nil, &dfg.DefectError{Kind: dfg.DefectTooLarge,
				Msg: fmt.Sprintf("unroll factor %d exceeds the limit of %d", req.Unroll, s.cfg.MaxUnroll)}
		}
		g = dfg.Unroll(g, req.Unroll)
		if req.Kernel == "" {
			if err := g.CheckSize(s.cfg.MaxDFGNodes, s.cfg.MaxDFGEdges); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// maxLabelBatch caps the number of DFGs per /v1/labels request: one batch
// is a single fused inference pass, so the cap bounds the packed matrix
// size the same way MaxDFGNodes bounds one mapping request.
const maxLabelBatch = 64

// LabelsRequest is the POST /v1/labels body: one architecture and a batch
// of DFGs, named kernels and/or inline documents, predicted in a single
// fused GNN inference pass.
type LabelsRequest struct {
	Arch    string            `json:"arch"`
	Kernels []string          `json:"kernels,omitempty"`
	DFGs    []json.RawMessage `json:"dfgs,omitempty"`
}

// SameLevelEntry is one label-2 prediction, sorted by (A, B) so the
// response bytes are deterministic.
type SameLevelEntry struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	Value float64 `json:"value"`
}

// LabelsRow carries the four predicted label sets for one DFG of the batch,
// in request order (kernels first, then inline DFGs).
type LabelsRow struct {
	Name      string           `json:"name"`
	Nodes     int              `json:"nodes"`
	Edges     int              `json:"edges"`
	Order     []float64        `json:"order"`
	Spatial   []float64        `json:"spatial"`
	Temporal  []float64        `json:"temporal"`
	SameLevel []SameLevelEntry `json:"sameLevel,omitempty"`
}

// LabelsResponse is the POST /v1/labels body on success.
type LabelsResponse struct {
	Arch   string      `json:"arch"`
	Labels []LabelsRow `json:"labels"`
}

// handleLabels serves raw GNN label predictions: the compile-time inference
// half of the pipeline without the annealer, for clients that run their own
// mapper or inspect what the model would steer it with. The whole batch is
// one fused PredictBatch pass — byte-identical to per-DFG prediction.
func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/labels"
	if r.Method != http.MethodPost {
		s.fail(w, route, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.isDraining() {
		s.fail(w, route, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req LabelsRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, route, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ar, ok := arch.ByName(req.Arch)
	if !ok {
		s.fail(w, route, http.StatusBadRequest, "unknown arch %q (have %v)", req.Arch, arch.Names())
		return
	}
	n := len(req.Kernels) + len(req.DFGs)
	if n == 0 {
		s.fail(w, route, http.StatusBadRequest, "at least one of \"kernels\" and \"dfgs\" must be non-empty")
		return
	}
	if n > maxLabelBatch {
		s.fail(w, route, http.StatusBadRequest, "batch of %d DFGs exceeds the limit of %d", n, maxLabelBatch)
		return
	}
	gs := make([]*dfg.Graph, 0, n)
	for _, name := range req.Kernels {
		g, err := kernels.ByName(name)
		if err != nil {
			s.failErr(w, route, http.StatusBadRequest, err)
			return
		}
		gs = append(gs, g)
	}
	for i, raw := range req.DFGs {
		// Inline DFGs are untrusted: structurally validated and size-capped
		// like /v1/map uploads.
		g, err := dfg.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			s.failErr(w, route, http.StatusBadRequest, fmt.Errorf("dfgs[%d]: %w", i, err))
			return
		}
		if err := g.CheckSize(s.cfg.MaxDFGNodes, s.cfg.MaxDFGEdges); err != nil {
			s.failErr(w, route, http.StatusBadRequest, fmt.Errorf("dfgs[%d]: %w", i, err))
			return
		}
		gs = append(gs, g)
	}
	// Resolve the model first so "no model for this target" is backpressure
	// (503, retry after training/reload), not an internal error.
	if _, err := s.reg.ModelFor(ar); err != nil {
		s.fail(w, route, http.StatusServiceUnavailable, "%v", err)
		return
	}
	preds, err := s.reg.LabelsForBatch(ar, gs)
	if err != nil {
		// The only remaining failure is scale-vector version skew — a broken
		// model artifact, squarely a server-side error.
		s.fail(w, route, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := LabelsResponse{Arch: ar.Name(), Labels: make([]LabelsRow, len(gs))}
	for i, g := range gs {
		lbl := preds[i]
		row := LabelsRow{
			Name:     g.Name,
			Nodes:    g.NumNodes(),
			Edges:    g.NumEdges(),
			Order:    lbl.Order,
			Spatial:  lbl.Spatial,
			Temporal: lbl.Temporal,
		}
		for p, v := range lbl.SameLevel {
			row.SameLevel = append(row.SameLevel, SameLevelEntry{A: p.A, B: p.B, Value: v})
		}
		sort.Slice(row.SameLevel, func(a, b int) bool {
			if row.SameLevel[a].A != row.SameLevel[b].A {
				return row.SameLevel[a].A < row.SameLevel[b].A
			}
			return row.SameLevel[a].B < row.SameLevel[b].B
		})
		resp.Labels[i] = row
	}
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// ArchInfo is one /v1/archs row.
type ArchInfo struct {
	Name       string `json:"name"`
	PEs        int    `json:"pes"`
	MaxII      int    `json:"maxII"`
	ModelReady bool   `json:"modelReady"`
	// ModelProvenance says which ladder rung resolved the model — "loaded"
	// (from disk), "trained" (locally), or "shipped" (fetched from a ring
	// peer); empty while no model is resolved. ModelSource is the peer URL a
	// shipped model came from.
	ModelProvenance string `json:"modelProvenance,omitempty"`
	ModelSource     string `json:"modelSource,omitempty"`
	// ModelError is the cached model-resolution failure for this target, if
	// any (a training failure or a permanently rejected fetch payload);
	// POST /v1/reload clears it for one retry.
	ModelError string `json:"modelError,omitempty"`
	// FetchError is the last failed model-fetch attempt. Unlike ModelError
	// it does not imply the slot is stuck: transport-class fetch failures
	// retry on the next request, and a locally trained model keeps the
	// trace to explain why the ladder fell through to training.
	FetchError string `json:"fetchError,omitempty"`
}

func (s *Server) handleArchs(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/archs"
	if r.Method != http.MethodGet {
		s.fail(w, route, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out []ArchInfo
	for _, name := range arch.Names() {
		ar, _ := arch.ByName(name)
		slot := s.reg.InfoFor(name)
		info := ArchInfo{
			Name:            name,
			PEs:             ar.NumPEs(),
			MaxII:           ar.MaxII(),
			ModelReady:      slot.Ready,
			ModelProvenance: string(slot.Provenance),
			ModelSource:     slot.Source,
		}
		if slot.Err != nil {
			info.ModelError = slot.Err.Error()
		}
		if slot.FetchErr != nil {
			info.FetchError = slot.FetchErr.Error()
		}
		out = append(out, info)
	}
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, out)
}

// KernelInfo is one /v1/kernels row.
type KernelInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/kernels"
	if r.Method != http.MethodGet {
		s.fail(w, route, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out []KernelInfo
	for _, name := range kernels.Names() {
		g := kernels.MustByName(name)
		out = append(out, KernelInfo{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()})
	}
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, out)
}

// ReloadResponse is the POST /v1/reload body.
type ReloadResponse struct {
	// Retried lists targets whose cached training failure was cleared; the
	// next request for each may spend one fresh training attempt.
	Retried []string `json:"retried,omitempty"`
	// Loaded lists targets whose model file was newly loaded from the
	// models directory.
	Loaded []string `json:"loaded,omitempty"`
	// Errors lists model files that failed to load (already-registered
	// collisions are expected on a rescan and not reported).
	Errors []string `json:"errors,omitempty"`
}

// handleReload is the explicit recovery path: clear cached training
// failures so the next request may retry, and rescan the models directory
// (when configured) for files that appeared after startup. It is
// deliberately the only way to spend a second training attempt on a failed
// target — ordinary requests never retrain.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/reload"
	if r.Method != http.MethodPost {
		s.fail(w, route, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var resp ReloadResponse
	for _, name := range arch.Names() {
		if s.reg.Err(name) != nil && s.reg.Retry(name) {
			resp.Retried = append(resp.Retried, name)
		}
	}
	if dir := s.cfg.ModelsDir; dir != "" {
		files, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			s.fail(w, route, http.StatusInternalServerError, "%v", err)
			return
		}
		sort.Strings(files)
		for _, path := range files {
			name, err := s.reg.LoadFile(path)
			switch {
			case err == nil:
				resp.Loaded = append(resp.Loaded, name)
			case errors.Is(err, registry.ErrAlreadyLoaded):
				// Expected on a rescan; nothing to report.
			default:
				resp.Errors = append(resp.Errors, err.Error())
			}
		}
	}
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: the process is up and the handler chain
// works. It answers 200 even while draining — a draining daemon is alive,
// it just refuses new work, which is /readyz's distinction to make. Peers
// probe this endpoint, so "alive but not ready" must not read as "dead".
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	const route = "/healthz"
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
}

// StoreReadiness is the /readyz store block.
type StoreReadiness struct {
	Writable   bool   `json:"writable"`
	Error      string `json:"error,omitempty"`
	Entries    int    `json:"entries"`
	Generation uint64 `json:"generation"`
}

// ReadyResponse is the /readyz body: whether this node should receive
// traffic, and why not when it shouldn't.
type ReadyResponse struct {
	Ready    bool            `json:"ready"`
	Draining bool            `json:"draining,omitempty"`
	Models   []string        `json:"models"`
	Store    *StoreReadiness `json:"store,omitempty"`
	Peers    []PeerSnapshot  `json:"peers,omitempty"`
}

// handleReadyz is readiness: draining or an unwritable store means this
// node should be taken out of rotation (503). Unreachable peers are
// reported but do not flip readiness — the cluster fallback path keeps a
// lone survivor serving, so peer state is observability, not a gate.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	const route = "/readyz"
	if r.Method != http.MethodGet {
		s.fail(w, route, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := ReadyResponse{Ready: true, Models: s.reg.Ready()}
	if s.isDraining() {
		resp.Draining = true
		resp.Ready = false
	}
	if st := s.cfg.Store; st != nil {
		sr := &StoreReadiness{Entries: st.Len(), Generation: st.Generation()}
		if err := st.CheckWritable(); err != nil {
			sr.Error = err.Error()
			resp.Ready = false
		} else {
			sr.Writable = true
		}
		resp.Store = sr
	}
	if cl := s.cfg.Cluster; cl != nil {
		for _, p := range cl.Peers() {
			cl.Probe(p) // refresh; backoff-gated, so a down peer costs no dial
		}
		resp.Peers = peerSnapshots(cl)
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	s.metrics.Request(route, status)
	writeJSON(w, status, resp)
}

// peerSnapshots converts the cluster's health rows for JSON responses.
func peerSnapshots(cl *cluster.Cluster) []PeerSnapshot {
	rows := cl.Status()
	out := make([]PeerSnapshot, len(rows))
	for i, row := range rows {
		out[i] = PeerSnapshot{URL: row.URL, Self: row.Self, Healthy: row.Healthy, Failures: row.Failures}
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	const route = "/metrics"
	s.metrics.Request(route, http.StatusOK)
	snap := s.metrics.Snapshot(time.Now(), s.cache.Len(), s.cache.Bytes())
	if st := s.cfg.Store; st != nil {
		ss := s.metrics.storeSnapshot()
		ss.Entries = st.Len()
		ss.Bytes = st.Bytes()
		ss.Dropped = st.Dropped()
		ss.Generation = st.Generation()
		snap.Store = &ss
	}
	if cl := s.cfg.Cluster; cl != nil {
		proxied, fallbacks := s.metrics.clusterCounters()
		snap.Cluster = &ClusterSnapshot{
			Self:      cl.Self(),
			Proxied:   proxied,
			Fallbacks: fallbacks,
			Peers:     peerSnapshots(cl),
		}
	}
	counts := s.reg.ProvenanceCounts()
	ctr := s.reg.Counters()
	snap.Models = &ModelsSnapshot{
		Loaded:      counts[registry.ProvLoaded],
		Trained:     counts[registry.ProvTrained],
		Shipped:     counts[registry.ProvShipped],
		TrainRuns:   ctr.TrainRuns,
		Fetches:     ctr.Fetches,
		FetchErrors: ctr.FetchErrors,
	}
	if fault.Enabled() {
		snap.Faults = fault.Counts()
	}
	writeJSON(w, http.StatusOK, snap)
}
