// Package labels implements the paper's central abstraction (Table I): four
// per-node / per-edge quantities that summarize how a DFG *should* be mapped
// onto a particular accelerator —
//
//	label 1  schedule order             (node)        guides placement order
//	label 2  same-level nodes association (dummy edge) guides placement
//	label 3  spatial mapping distance   (edge)        guides placement+routing
//	label 4  temporal mapping distance  (edge)        guides routing priority
//
// The package provides label initialization (§V-B), extraction from a
// concrete mapping, candidate selection (best II, routing cost within 1.15×
// of the best), and the training-set filter metric e = O + σ·N (§V-C).
package labels

import (
	"fmt"
	"math"

	"github.com/lisa-go/lisa/internal/dfg"
)

// Pair canonically orders a same-level node pair (A < B).
type Pair struct{ A, B int }

// MakePair builds a canonical pair.
func MakePair(a, b int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Labels carries the four label sets for one DFG on one accelerator.
type Labels struct {
	// Order is label 1, indexed by node ID. Lower values are scheduled
	// (placed) earlier.
	Order []float64
	// SameLevel is label 2: the expected spatial distance between each
	// same-level (dummy-edge) pair.
	SameLevel map[Pair]float64
	// Spatial is label 3, indexed by edge ID: expected spatial (Manhattan)
	// distance between producer and consumer PEs.
	Spatial []float64
	// Temporal is label 4, indexed by edge ID: expected cycle distance
	// between producer and consumer, i.e. the routing resources the edge
	// needs.
	Temporal []float64
}

// NewZero allocates a label set shaped for g.
func NewZero(g *dfg.Graph) *Labels {
	return &Labels{
		Order:     make([]float64, g.NumNodes()),
		SameLevel: make(map[Pair]float64),
		Spatial:   make([]float64, g.NumEdges()),
		Temporal:  make([]float64, g.NumEdges()),
	}
}

// Clone deep-copies l.
func (l *Labels) Clone() *Labels {
	c := &Labels{
		Order:     append([]float64(nil), l.Order...),
		Spatial:   append([]float64(nil), l.Spatial...),
		Temporal:  append([]float64(nil), l.Temporal...),
		SameLevel: make(map[Pair]float64, len(l.SameLevel)),
	}
	//lisa:vet-ok maprange map-to-map copy; the clone's content is independent of iteration order
	for k, v := range l.SameLevel {
		c.SameLevel[k] = v
	}
	return c
}

// Initial returns the label initialization of §V-B: schedule order = ASAP,
// same-level association = average of the shortest distances from the pair to
// their common ancestor/descendant, spatial distance = 0, temporal distance
// = 1.
func Initial(an *dfg.Analysis) *Labels {
	g := an.G
	l := NewZero(g)
	for v := range g.Nodes {
		l.Order[v] = float64(an.ASAP[v])
	}
	for _, p := range an.SameLevelPairs() {
		sum, cnt := 0.0, 0
		if _, d, ok := an.ClosestCommonAncestor(p.A, p.B); ok {
			sum += float64(d)
			cnt++
		}
		if _, d, ok := an.ClosestCommonDescendant(p.A, p.B); ok {
			sum += float64(d)
			cnt++
		}
		if cnt > 0 {
			l.SameLevel[MakePair(p.A, p.B)] = sum / float64(cnt)
		}
	}
	for e := range l.Temporal {
		l.Temporal[e] = 1
	}
	return l
}

// MappingStats is the architecture-agnostic view of one concrete mapping that
// label extraction needs. The mapper fills it in; keeping it here avoids a
// labels→mapper dependency cycle.
type MappingStats struct {
	II          int
	NodePE      []int // PE index per DFG node
	NodeTime    []int // absolute schedule cycle per DFG node
	EdgeHops    []int // route length in cycles per DFG edge
	RoutingCost int   // total routing resources consumed
	// SpatialDist computes the accelerator's label-space distance.
	SpatialDist func(peA, peB int) int
}

// Extract derives a label set from a mapping (§V-B "We extract label values
// from the mapping result"): the schedule order is the node's cycle
// normalized to [0, critical-path length]; labels 2 and 3 are measured
// spatial distances; label 4 is the measured route length.
func Extract(an *dfg.Analysis, m *MappingStats) *Labels {
	g := an.G
	l := NewZero(g)

	maxTime := 1
	for _, t := range m.NodeTime {
		if t > maxTime {
			maxTime = t
		}
	}
	cp := float64(an.CriticalPath)
	if cp == 0 {
		cp = 1
	}
	for v := range g.Nodes {
		l.Order[v] = float64(m.NodeTime[v]) * cp / float64(maxTime)
	}
	for _, p := range an.SameLevelPairs() {
		l.SameLevel[MakePair(p.A, p.B)] =
			float64(m.SpatialDist(m.NodePE[p.A], m.NodePE[p.B]))
	}
	for i, e := range g.Edges {
		l.Spatial[i] = float64(m.SpatialDist(m.NodePE[e.From], m.NodePE[e.To]))
		l.Temporal[i] = float64(m.EdgeHops[i])
	}
	return l
}

// Candidate pairs an extracted label set with the quality of the mapping it
// came from.
type Candidate struct {
	Labels      *Labels
	II          int
	RoutingCost int
}

// RoutingCostSlack is the paper's candidate-selection threshold: a label
// whose mapping uses at most 1.15× the routing cost of the best mapping at
// the best II remains a candidate.
const RoutingCostSlack = 1.15

// SelectAndCombine applies the two-round selection of §V-B: keep candidates
// at the minimum II, then keep those within RoutingCostSlack of the lowest
// routing cost, and return the element-wise average of the survivors along
// with how many survived. It returns nil when cands is empty.
func SelectAndCombine(cands []Candidate) (*Labels, int) {
	if len(cands) == 0 {
		return nil, 0
	}
	bestII := cands[0].II
	for _, c := range cands {
		if c.II < bestII {
			bestII = c.II
		}
	}
	var atBest []Candidate
	for _, c := range cands {
		if c.II == bestII {
			atBest = append(atBest, c)
		}
	}
	minCost := atBest[0].RoutingCost
	for _, c := range atBest {
		if c.RoutingCost < minCost {
			minCost = c.RoutingCost
		}
	}
	var final []Candidate
	for _, c := range atBest {
		if float64(c.RoutingCost) <= RoutingCostSlack*float64(minCost) {
			final = append(final, c)
		}
	}
	return average(final), len(final)
}

func average(cands []Candidate) *Labels {
	out := cands[0].Labels.Clone()
	n := float64(len(cands))
	if len(cands) == 1 {
		return out
	}
	for _, c := range cands[1:] {
		for v := range out.Order {
			out.Order[v] += c.Labels.Order[v]
		}
		for i := range out.Spatial {
			out.Spatial[i] += c.Labels.Spatial[i]
			out.Temporal[i] += c.Labels.Temporal[i]
		}
		//lisa:vet-ok maprange per-key accumulation: each key's sum only sees its own candidates, in slice order
		for k, v := range c.Labels.SameLevel {
			out.SameLevel[k] += v
		}
	}
	for v := range out.Order {
		out.Order[v] /= n
	}
	for i := range out.Spatial {
		out.Spatial[i] /= n
		out.Temporal[i] /= n
	}
	//lisa:vet-ok maprange per-key division; no cross-key interaction
	for k := range out.SameLevel {
		out.SameLevel[k] /= n
	}
	return out
}

// FilterConfig parameterizes the §V-C label filter e = O + σ·N.
type FilterConfig struct {
	// Sigma weights the candidate count N.
	Sigma float64
	// MinScore is the admission threshold for e.
	MinScore float64
}

// DefaultFilterConfig matches the repository-wide training defaults.
func DefaultFilterConfig() FilterConfig {
	return FilterConfig{Sigma: 0.1, MinScore: 0.5}
}

// Admit evaluates the filter metric for a DFG whose best mapping achieved
// achievedII against the theoretical minimum minII with n surviving
// candidates. O is the closeness to the theoretical minimal execution time
// (1 when II == MII). Per the paper, hitting the minimum II admits the label
// even with a single candidate.
func (f FilterConfig) Admit(achievedII, minII, n int) (score float64, ok bool) {
	if n == 0 || achievedII <= 0 {
		return 0, false
	}
	o := float64(minII) / float64(achievedII)
	score = o + f.Sigma*float64(n)
	if achievedII == minII {
		return score, true
	}
	return score, score >= f.MinScore
}

// Validate sanity-checks a label set against its DFG.
func (l *Labels) Validate(g *dfg.Graph) error {
	if len(l.Order) != g.NumNodes() {
		return fmt.Errorf("labels: Order size %d != nodes %d", len(l.Order), g.NumNodes())
	}
	if len(l.Spatial) != g.NumEdges() || len(l.Temporal) != g.NumEdges() {
		return fmt.Errorf("labels: edge label sizes %d/%d != edges %d",
			len(l.Spatial), len(l.Temporal), g.NumEdges())
	}
	for i, t := range l.Temporal {
		if t < 0 || math.IsNaN(t) {
			return fmt.Errorf("labels: temporal[%d] = %v", i, t)
		}
	}
	for v, o := range l.Order {
		if math.IsNaN(o) {
			return fmt.Errorf("labels: order[%d] is NaN", v)
		}
	}
	return nil
}
