// Unrolling: how DFG complexity interacts with array size (the paper's
// Figs. 9d and 9f). Unrolling a kernel by 2 roughly doubles the DFG; on the
// 4×4 CGRA that forces a higher II, while the 8×8 CGRA absorbs the extra
// parallelism and keeps the II low — if the mapper can navigate the larger
// search space, which is where label guidance matters most.
//
//	go run ./examples/unrolling
package main

import (
	"fmt"
	"log"

	lisa "github.com/lisa-go/lisa"
)

func main() {
	kernelNames := []string{"gemm", "atax", "syrk", "doitgen"}
	targets := []lisa.Arch{lisa.CGRA4x4(), lisa.CGRA8x8()}

	fmt.Printf("%-10s %-10s", "kernel", "variant")
	for _, ar := range targets {
		fmt.Printf("%12s", ar.Name())
	}
	fmt.Println("   (LISA II; 0 = cannot map)")

	for _, name := range kernelNames {
		for _, unrolled := range []bool{false, true} {
			variant := "original"
			g, err := lisa.Kernel(name)
			if err != nil {
				panic(err)
			}
			if unrolled {
				variant = "unrolled"
				g = lisa.Unroll(g, 2)
			}
			fmt.Printf("%-10s %-10s", name, variant)
			for _, ar := range targets {
				fw := lisa.New(ar)
				fw.MapOpts.Seed = 11
				fw.MapOpts.MaxMoves = 2000
				res, err := fw.Map(g)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%12d", res.II)
			}
			fmt.Printf("   %d nodes\n", g.NumNodes())
		}
	}

	fmt.Println("\nExpected shape (paper Figs. 9d/9f): unrolled DFGs raise the II on the")
	fmt.Println("4x4 array but stay near the original II on the 8x8 — spatial parallelism")
	fmt.Println("absorbs the unrolling when the mapper finds a valid placement.")
}
