// Package cluster is the multi-node routing layer of lisa-serve: a static
// peer list, consistent-hash ownership of mapping keys, and a proxy client
// with deterministic-backoff health gating.
//
// The design leans on the same property that makes the result store safe
// to share: a mapping is a pure function of its canonical cache key, so
// *where* it is computed does not matter — only that it is computed once.
// Consistent hashing assigns every key exactly one owner; non-owners proxy
// to the owner instead of computing, so a fleet of N daemons answers N
// nodes' worth of traffic with one compute per unique request fleet-wide.
// Every node is configured with the same peer list (order-insensitive; the
// ring is built from sorted URLs), so all nodes agree on ownership without
// any coordination protocol, leader, or membership gossip.
//
// Failure handling is availability-first: when the owner of a key is
// unreachable, the receiving node computes locally instead of failing the
// request — determinism makes the locally computed bytes identical to what
// the owner would have served, so the fallback costs duplicate work, never
// wrong answers. The fallback is labeled in response headers and counted
// in /metrics (the body stays byte-identical fleet-wide, which is the
// contract the degradation ladder's body labels would break). A failing
// peer is put in timed backoff — base×2^(failures−1), capped — so a dead
// node costs one probe per backoff window, not one timeout per request;
// the backoff schedule is a pure function of the failure count, keeping
// recovery behavior reproducible.
package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

// ForwardedHeader marks a proxied request so the owner computes locally
// instead of re-routing — the loop guard for transiently disagreeing
// configurations (e.g. a peer restarted with a different -peers list).
const ForwardedHeader = "X-Lisa-Forwarded"

// ModelSHAHeader and ModelLenHeader self-describe a served model payload —
// the HTTP mirror of the store's "lisa-store/v1 <sha256> <length>" entry
// header. The fetching side verifies both against the received body before
// it even tries gnn.Load, so a torn proxy response is caught at the wire.
const (
	ModelSHAHeader = "X-Lisa-Model-Sha256"
	ModelLenHeader = "X-Lisa-Model-Length"
)

// ErrPeerDown reports a peer skipped because it is inside its backoff
// window; the caller falls back to local compute without paying a timeout.
var ErrPeerDown = errors.New("cluster: peer in backoff")

// ErrNoModel reports a peer that answered the model fetch but has no model
// for the arch (HTTP 404). Transport-class for the ladder: the next ring
// candidate may have one, and this peer may train one later.
var ErrNoModel = errors.New("cluster: peer has no model for arch")

// ValidationError reports a fetched model payload that failed integrity or
// structural validation: the peer answered, but with bytes that must not be
// installed. Unlike a transport failure this is permanent until the peer's
// model changes, so callers cache it (cleared by Retry/reload) instead of
// re-fetching the same bad bytes on every request.
type ValidationError struct {
	Peer string
	Err  error
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("cluster: %s: invalid model payload: %v", e.Peer, e.Err)
}

func (e *ValidationError) Unwrap() error { return e.Err }

// Config describes one node's view of the fleet. Every node must be given
// the same Peers set (any order) for ownership to agree.
type Config struct {
	// Self is this node's own URL exactly as it appears in Peers.
	Self string
	// Peers lists every node of the fleet, including Self.
	Peers []string
	// Replicas is the number of virtual ring points per peer (default 64);
	// more points smooth the key distribution.
	Replicas int
	// RPCTimeout bounds one proxied mapping call (default 150s — above the
	// service's maximum request deadline, so the peer's own deadline
	// handling, not the transport, decides slow requests).
	RPCTimeout time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FetchTimeout bounds one model-fetch attempt (default 10s — a model
	// file is a few hundred KB of JSON; anything slower is a sick peer and
	// local training is the better spend).
	FetchTimeout time.Duration
	// BackoffBase and BackoffMax shape the failure backoff
	// base×2^(failures−1), capped at max (defaults 250ms and 8s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Now is the clock (tests inject a fake; the daemon leaves it nil for
	// time.Now).
	Now func() time.Time
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

// point is one virtual ring position.
type point struct {
	hash uint64
	peer int // index into Cluster.peers
}

// peerHealth tracks one remote peer's failure state. failures==0 means
// healthy; otherwise the peer is skipped until retryAt, when the next
// request is allowed through as the probe.
type peerHealth struct {
	failures int
	retryAt  time.Time
}

// Cluster is one node's routing table plus the health-gated proxy client.
type Cluster struct {
	self     string
	peers    []string // sorted; ring and Status order
	ring     []point  // sorted by hash
	client   *http.Client
	probe    *http.Client
	fetch    *http.Client
	now      func() time.Time
	backoff0 time.Duration
	backoffM time.Duration

	mu     sync.Mutex
	health map[string]*peerHealth // remote peers only
}

// New validates the peer list and builds the ring. It requires Self to be
// one of Peers, URLs to parse, and no duplicates.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: -self is required with -peers")
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := map[string]bool{}
	selfSeen := false
	for _, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not an absolute URL", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		if p == strings.TrimRight(strings.TrimSpace(cfg.Self), "/") {
			selfSeen = true
		}
		peers = append(peers, p)
	}
	if !selfSeen {
		return nil, fmt.Errorf("cluster: -self %q is not in the peer list %v", cfg.Self, peers)
	}
	sort.Strings(peers)

	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 64
	}
	c := &Cluster{
		self:     strings.TrimRight(strings.TrimSpace(cfg.Self), "/"),
		peers:    peers,
		now:      cfg.Now,
		backoff0: cfg.BackoffBase,
		backoffM: cfg.BackoffMax,
		health:   make(map[string]*peerHealth),
	}
	if c.now == nil {
		c.now = func() time.Time {
			//lisa:vet-ok wallclock backoff gating only: the clock decides when a down peer is re-probed, never what any mapping result contains
			return time.Now()
		}
	}
	if c.backoff0 <= 0 {
		c.backoff0 = 250 * time.Millisecond
	}
	if c.backoffM <= 0 {
		c.backoffM = 8 * time.Second
	}
	rpcTimeout := cfg.RPCTimeout
	if rpcTimeout <= 0 {
		rpcTimeout = 150 * time.Second
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	fetchTimeout := cfg.FetchTimeout
	if fetchTimeout <= 0 {
		fetchTimeout = 10 * time.Second
	}
	c.client = &http.Client{Timeout: rpcTimeout, Transport: cfg.Transport}
	c.probe = &http.Client{Timeout: probeTimeout, Transport: cfg.Transport}
	c.fetch = &http.Client{Timeout: fetchTimeout, Transport: cfg.Transport}

	// Ring points are hashes of "peer|replica" over the *sorted* peer list,
	// so every node — whatever order its -peers flag came in — derives the
	// identical ring and agrees on ownership with no coordination.
	c.ring = make([]point, 0, len(peers)*replicas)
	for pi, p := range peers {
		for r := 0; r < replicas; r++ {
			c.ring = append(c.ring, point{hash: hash64(fmt.Sprintf("%s|%d", p, r)), peer: pi})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool {
		if c.ring[i].hash != c.ring[j].hash {
			return c.ring[i].hash < c.ring[j].hash
		}
		return c.ring[i].peer < c.ring[j].peer // deterministic tie-break on (astronomically unlikely) hash collisions
	})
	return c, nil
}

// hash64 is FNV-1a — stable across processes and Go versions, unlike
// maphash.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s) // hash.Hash writes never fail
	return h.Sum64()
}

// PayloadSHA is the hex SHA-256 of a model payload — the value both sides
// of the model wire format put in ModelSHAHeader.
func PayloadSHA(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Self returns this node's URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the full sorted peer list (including self).
func (c *Cluster) Peers() []string { return append([]string(nil), c.peers...) }

// Owner returns the peer URL owning key: the first ring point at or after
// the key's hash, wrapping around. Pure function of (peer list, key) —
// every correctly configured node answers identically.
func (c *Cluster) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0
	}
	return c.peers[c.ring[i].peer]
}

// OwnsSelf reports whether this node owns key.
func (c *Cluster) OwnsSelf(key string) bool { return c.Owner(key) == c.self }

// Successors returns the distinct remote peers in ring order starting at
// key's owner, self excluded. This is the model-fetch candidate list: the
// owner is the peer most likely to hold a trained model for the key (all
// label traffic for it routes there), and when the owner is down — or this
// node *is* the owner — the ring successors are the next most likely, in an
// order every node agrees on.
func (c *Cluster) Successors(key string) []string {
	h := hash64(key)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if start == len(c.ring) {
		start = 0
	}
	out := make([]string, 0, len(c.peers))
	seen := make(map[int]bool, len(c.peers))
	for i := 0; i < len(c.ring) && len(seen) < len(c.peers); i++ {
		pt := c.ring[(start+i)%len(c.ring)]
		if seen[pt.peer] {
			continue
		}
		seen[pt.peer] = true
		if p := c.peers[pt.peer]; p != c.self {
			out = append(out, p)
		}
	}
	return out
}

// Available reports whether peer may be contacted right now: healthy, or
// its backoff window has expired (the next call doubles as the probe).
func (c *Cluster) Available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	return h == nil || h.failures == 0 || !c.now().Before(h.retryAt)
}

// markFailure records a failed contact and arms the next backoff window:
// base×2^(failures−1), capped. The schedule is a pure function of the
// failure count — no jitter — so recovery timing reproduces in tests and
// chaos runs.
func (c *Cluster) markFailure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.health[peer]
	if h == nil {
		h = &peerHealth{}
		c.health[peer] = h
	}
	h.failures++
	d := c.backoff0
	for i := 1; i < h.failures && d < c.backoffM; i++ {
		d *= 2
	}
	if d > c.backoffM {
		d = c.backoffM
	}
	h.retryAt = c.now().Add(d)
}

// markSuccess clears peer's failure state.
func (c *Cluster) markSuccess(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.health, peer)
}

// Response is one proxied HTTP exchange, body fully read.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// Forward proxies body to peer's path (POST, JSON) through the health
// gate: a peer inside its backoff window returns ErrPeerDown immediately;
// a transport failure (or an armed peer.rpc fault) marks the peer down and
// is returned for the caller to fall back on. An HTTP-level error status
// is a *successful* contact — the peer is alive and said so — and never
// marks it down. token scopes fault decisions per request.
func (c *Cluster) Forward(peer, path string, token uint64, body []byte) (*Response, error) {
	if !c.Available(peer) {
		return nil, ErrPeerDown
	}
	if err := fault.Inject(fault.PeerRPC, token); err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	req, err := http.NewRequest(http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	defer func() { _ = resp.Body.Close() }() // fully read below; close cannot lose data
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: reading response: %w", peer, err)
	}
	c.markSuccess(peer)
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// retryableConn reports whether err is a connection-level refusal or reset
// — the peer process is restarting or just bounced, and an immediate second
// dial plausibly lands on the fresh listener. Timeouts are excluded: a
// timed-out request may still be executing on the peer, and retrying it
// doubles the load exactly when the peer is slowest.
func retryableConn(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// doGet issues a GET through client, retrying exactly once on a
// connection-refused/reset error. Safe only because GETs here are
// idempotent reads (health probes, model fetches); Forward's POSTs are
// never retried — a mapping request that died mid-flight may have been
// executed, and replaying it would double-count in the peer's metrics.
func (c *Cluster) doGet(client *http.Client, url string) (*http.Response, error) {
	resp, err := client.Get(url)
	if err != nil && retryableConn(err) {
		resp, err = client.Get(url)
	}
	return resp, err
}

// FetchModel asks peer for its trained model for arch and returns the raw
// gnn.Save bytes, verified against the payload's own SHA-256 and length
// headers. Errors classify for the registry's retry policy: health-gate
// skips (ErrPeerDown), transport failures, and non-OK statuses other than
// 404 are transient — try the next ring candidate, retry later; ErrNoModel
// (404) means this peer just hasn't trained yet; a *ValidationError means
// the peer served bytes that fail integrity checks, which re-fetching will
// not fix. The injected model.fetch fault behaves as a transport failure.
func (c *Cluster) FetchModel(peer, arch string) ([]byte, error) {
	if !c.Available(peer) {
		return nil, ErrPeerDown
	}
	if err := fault.Inject(fault.ModelFetch, fault.Token(peer+"|"+arch)); err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	resp, err := c.doGet(c.fetch, peer+"/v1/model/"+url.PathEscape(arch))
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: %w", peer, err)
	}
	defer func() { _ = resp.Body.Close() }() // fully read below; close cannot lose data
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.markFailure(peer)
		return nil, fmt.Errorf("cluster: %s: reading model: %w", peer, err)
	}
	c.markSuccess(peer) // the peer answered; what it said is judged below
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("cluster: %s: %w", peer, ErrNoModel)
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("cluster: %s: model fetch status %d", peer, resp.StatusCode)
	}
	if want := resp.Header.Get(ModelLenHeader); want != "" {
		n, err := strconv.Atoi(want)
		if err != nil || n != len(body) {
			return nil, &ValidationError{Peer: peer, Err: fmt.Errorf("length header says %s, body is %d bytes", want, len(body))}
		}
	}
	if want := resp.Header.Get(ModelSHAHeader); want != "" {
		if got := PayloadSHA(body); got != want {
			return nil, &ValidationError{Peer: peer, Err: fmt.Errorf("sha256 header says %s, body hashes to %s", want, got)}
		}
	}
	return body, nil
}

// Probe contacts peer's liveness endpoint and updates its health state,
// reporting reachability. Peers inside their backoff window are not
// contacted (reported down) so a dead node costs one timeout per window.
func (c *Cluster) Probe(peer string) bool {
	if peer == c.self {
		return true
	}
	if !c.Available(peer) {
		return false
	}
	//lisa:vet-ok faultsite Probe and Forward share the PeerRPC site on purpose: a peer-RPC fault plan must hit both paths a request can reach that peer through
	if err := fault.Inject(fault.PeerRPC, fault.Token(peer)); err != nil {
		c.markFailure(peer)
		return false
	}
	resp, err := c.doGet(c.probe, peer+"/healthz")
	if err != nil {
		c.markFailure(peer)
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reusable
	_ = resp.Body.Close()                 // read-only response; nothing to recover
	if resp.StatusCode != http.StatusOK {
		c.markFailure(peer)
		return false
	}
	c.markSuccess(peer)
	return true
}

// PeerStatus is one row of Status: the node's current view of a peer.
type PeerStatus struct {
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Healthy  bool   `json:"healthy"`
	Failures int    `json:"failures,omitempty"`
}

// Status snapshots every peer's health, sorted by URL. "Healthy" means
// contactable right now (self always is; a peer in backoff is not).
func (c *Cluster) Status() []PeerStatus {
	out := make([]PeerStatus, 0, len(c.peers))
	for _, p := range c.peers {
		st := PeerStatus{URL: p, Self: p == c.self, Healthy: true}
		if !st.Self {
			c.mu.Lock()
			if h := c.health[p]; h != nil && h.failures > 0 {
				st.Failures = h.failures
				st.Healthy = !c.now().Before(h.retryAt)
			}
			c.mu.Unlock()
		}
		out = append(out, st)
	}
	return out
}
