package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/power"
)

// testProfile is even smaller than Quick so the whole package tests in
// seconds.
func testProfile() Profile {
	p := Quick()
	p.Name = "test"
	p.MapOpts.MaxMoves = 900
	p.ILPOpts.TimeLimitPerII = 300 * time.Millisecond
	p.ILPOpts.MaxII = 4
	p.TrainGen.NumDFGs = 10
	p.TrainGen.MapOpts.MaxMoves = 400
	p.TrainCfg.Epochs = 15
	p.SARuns = 1
	return p
}

func TestFig9PanelShape(t *testing.T) {
	c := NewContext(testProfile())
	spec, ok := Fig9SpecByID("Fig9b")
	if !ok {
		t.Fatal("Fig9b spec missing")
	}
	spec.Kernels = []string{"gemm", "syrk", "doitgen", "bicg"}
	cmp := c.Fig9(spec)
	if len(cmp.Rows) != 4 {
		t.Fatalf("rows = %d", len(cmp.Rows))
	}
	lisaMapped := 0
	for _, r := range cmp.Rows {
		res := r.Results[MethodLISA]
		if res.OK {
			lisaMapped++
			if err := mapper.Verify(cmp.Arch, r.Graph, &res); err != nil {
				t.Errorf("%s: invalid LISA mapping: %v", r.Kernel, err)
			}
		}
	}
	if lisaMapped < 3 {
		t.Errorf("LISA mapped only %d/4 kernels on 4x4", lisaMapped)
	}
	var sb strings.Builder
	cmp.Render(&sb)
	if !strings.Contains(sb.String(), "gemm") || !strings.Contains(sb.String(), "LISA") {
		t.Errorf("render missing content:\n%s", sb.String())
	}
}

func TestFig9SpecsCoverPaperPanels(t *testing.T) {
	specs := Fig9Specs()
	if len(specs) != 7 {
		t.Fatalf("panels = %d, want 7 (Fig. 9a-g)", len(specs))
	}
	// Panel g is the systolic array; panel f is the 8x8 with 8 unrolled.
	if specs[6].Arch.Name() != "systolic-5x5" {
		t.Error("Fig9g must target the systolic array")
	}
	if !specs[5].Unrolled || len(specs[5].Kernels) != 8 {
		t.Error("Fig9f must use 8 unrolled kernels")
	}
	if !specs[3].Unrolled || len(specs[3].Kernels) != 6 {
		t.Error("Fig9d must use 6 unrolled kernels")
	}
}

func TestFig10And11Derivation(t *testing.T) {
	c := NewContext(testProfile())
	spec, _ := Fig9SpecByID("Fig9b")
	spec.Kernels = []string{"gemm", "doitgen"}
	cmp := c.Fig9(spec)

	prows := Fig10(cmp, power.DefaultParams())
	if len(prows) != 2 {
		t.Fatalf("power rows = %d", len(prows))
	}
	for _, r := range prows {
		if v, ok := r.Normalized[MethodLISA]; ok && v != 1 {
			t.Errorf("%s: LISA normalized efficiency = %v, want 1", r.Kernel, v)
		}
	}
	trows := Fig11(cmp)
	if len(trows) != 2 {
		t.Fatalf("time rows = %d", len(trows))
	}
	for _, r := range trows {
		for m, d := range r.Times {
			if d <= 0 {
				t.Errorf("%s/%s: non-positive compile time", r.Kernel, m)
			}
		}
	}
	var sb strings.Builder
	RenderPower(&sb, "Fig10", cmp.Methods, prows)
	RenderTimes(&sb, "Fig11", cmp.Methods, trows)
	if !strings.Contains(sb.String(), "power efficiency") {
		t.Error("power render missing header")
	}
}

func TestTable2Quick(t *testing.T) {
	c := NewContext(testProfile())
	rows := c.Table2([]arch.Arch{arch.NewBaseline4x4()})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	for k, a := range rows[0].Accuracy {
		if a < 0 || a > 1 {
			t.Fatalf("label %d accuracy %v out of range", k+1, a)
		}
	}
	var sb strings.Builder
	RenderTable2(&sb, rows)
	if !strings.Contains(sb.String(), "label4") {
		t.Error("table render missing header")
	}
}

func TestSystolicPanelMarksTrmm(t *testing.T) {
	c := NewContext(testProfile())
	spec, _ := Fig9SpecByID("Fig9g")
	spec.Kernels = []string{"doitgen", "trmm"}
	cmp := c.Fig9(spec)
	if cmp.Rows[1].Results[MethodLISA].OK {
		t.Error("trmm must not map on the systolic array")
	}
	var sb strings.Builder
	cmp.Render(&sb)
	if !strings.Contains(sb.String(), "✗") {
		t.Error("systolic render must use ✗ marks")
	}
}

func TestSummarize(t *testing.T) {
	c := NewContext(testProfile())
	spec, _ := Fig9SpecByID("Fig9b")
	spec.Kernels = []string{"gemm", "syr2k"}
	cmp := c.Fig9(spec)
	s := Summarize([]*Comparison{cmp})
	if s.Combinations != 2 {
		t.Fatalf("combinations = %d", s.Combinations)
	}
	if s.MappedBy[MethodLISA] == 0 {
		t.Error("LISA mapped nothing")
	}
	if !strings.Contains(s.String(), "combinations") {
		t.Error("summary string malformed")
	}
}

func TestModelCachePerArch(t *testing.T) {
	c := NewContext(testProfile())
	a := arch.NewBaseline3x3()
	m1 := c.ModelFor(a)
	m2 := c.ModelFor(a)
	if m1 != m2 {
		t.Fatal("model must be cached per architecture")
	}
}

func TestFig12And13RunnersExist(t *testing.T) {
	// Smoke-level: these are exercised at full length by the benchmarks.
	c := NewContext(testProfile())
	c.Profile.TrainGen.NumDFGs = 6
	cmp := c.Compare("Fig12mini", arch.NewBaseline4x4(), []string{"syrk"}, false,
		[]Method{MethodSA, MethodSARP, MethodLISA})
	if len(cmp.Rows) != 1 {
		t.Fatal("ablation comparison empty")
	}
	if _, ok := cmp.Rows[0].Results[MethodSARP]; !ok {
		t.Fatal("SA-RP result missing")
	}
	_ = kernels.Names()
}

func TestExportJSONAndSVG(t *testing.T) {
	c := NewContext(testProfile())
	spec, _ := Fig9SpecByID("Fig9b")
	spec.Kernels = []string{"gemm", "doitgen"}
	cmp := c.Fig9(spec)

	var jbuf strings.Builder
	if err := cmp.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), `"kernel": "gemm"`) {
		t.Errorf("JSON missing kernel row:\n%s", jbuf.String())
	}
	var sbuf strings.Builder
	if err := cmp.WriteSVG(&sbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sbuf.String(), "<svg") {
		t.Error("SVG export malformed")
	}
	rows := Fig10(cmp, power.DefaultParams())
	var pbuf strings.Builder
	if err := WritePowerSVG(&pbuf, cmp, rows, power.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	trows := Fig11(cmp)
	var tbuf strings.Builder
	if err := WriteTimesSVG(&tbuf, cmp, trows); err != nil {
		t.Fatal(err)
	}
}

func TestShapeChecks(t *testing.T) {
	c := NewContext(testProfile())
	spec, _ := Fig9SpecByID("Fig9b")
	spec.Kernels = []string{"gemm", "syrk", "doitgen"}
	cmp := c.Fig9(spec)
	shapes := CheckFig9([]*Comparison{cmp})
	if len(shapes) != 2 {
		t.Fatalf("fig9 shapes = %d", len(shapes))
	}
	var sb strings.Builder
	RenderShapes(&sb, shapes)
	if !strings.Contains(sb.String(), "fig9/coverage-order") {
		t.Error("render missing assertion name")
	}

	// Systolic check with a tiny panel.
	spec9g, _ := Fig9SpecByID("Fig9g")
	spec9g.Kernels = []string{"doitgen", "trmm"}
	cmp9g := c.Fig9(spec9g)
	shapes9g := CheckFig9g(cmp9g)
	if !AllPass(shapes9g) {
		RenderShapes(&sb, shapes9g)
		t.Errorf("fig9g shapes failed:\n%s", sb.String())
	}

	// Fig10/11 checks run on derived rows.
	prows := Fig10(cmp, power.DefaultParams())
	_ = CheckFig10(prows)
	trows := Fig11(cmp)
	f11 := CheckFig11(trows)
	if len(f11) != 2 {
		t.Fatal("fig11 shapes missing")
	}

	// Table 2 trends.
	t2 := []Table2Row{{ArchName: "x", Accuracy: [4]float64{0.5, 0.8, 0.9, 0.95}}}
	if !AllPass(CheckTable2(t2)) {
		t.Error("valid table2 row failed the check")
	}
	bad := []Table2Row{{ArchName: "x", Accuracy: [4]float64{1.5, 0, 0, 0}}}
	if AllPass(CheckTable2(bad)) {
		t.Error("invalid accuracy slipped through")
	}
}

func TestPortabilitySweep(t *testing.T) {
	p := testProfile()
	p.TrainGen.NumDFGs = 5 // 8 targets train here; keep it cheap
	p.TrainGen.MapOpts.MaxMoves = 300
	p.TrainCfg.Epochs = 8
	c := NewContext(p)
	cmps := c.Portability([]string{"gemm"})
	if len(cmps) != 8 {
		t.Fatalf("portability targets = %d, want 8", len(cmps))
	}
	lisaOK := 0
	for _, cmp := range cmps {
		if _, ok := cmp.Rows[0].Results[MethodGreedy]; !ok {
			t.Fatal("greedy result missing")
		}
		if cmp.Rows[0].Results[MethodLISA].OK {
			lisaOK++
		}
	}
	if lisaOK < 7 {
		t.Errorf("LISA mapped gemm on only %d/8 targets", lisaOK)
	}
}

func TestCheckFig12Shape(t *testing.T) {
	// Synthetic comparison with the expected ordering.
	mk := func(ok map[Method]bool) CompareRow {
		r := CompareRow{Kernel: "k", Results: map[Method]mapper.Result{}}
		for m, o := range ok {
			res := mapper.Result{OK: o}
			if o {
				res.II = 2
			}
			r.Results[m] = res
		}
		return r
	}
	good := &Comparison{
		Arch:    arch.NewBaseline4x4(),
		Methods: []Method{MethodSA, MethodSARP, MethodLISA},
		Rows: []CompareRow{
			mk(map[Method]bool{MethodSA: false, MethodSARP: true, MethodLISA: true}),
			mk(map[Method]bool{MethodSA: true, MethodSARP: true, MethodLISA: true}),
		},
	}
	if !AllPass(CheckFig12(good)) {
		t.Fatal("expected ordering should pass")
	}
	bad := &Comparison{
		Arch:    arch.NewBaseline4x4(),
		Methods: good.Methods,
		Rows: []CompareRow{
			mk(map[Method]bool{MethodSA: true, MethodSARP: false, MethodLISA: false}),
		},
	}
	if AllPass(CheckFig12(bad)) {
		t.Fatal("inverted ordering should fail")
	}
}

func TestGeomeanSpeedupEdgeCases(t *testing.T) {
	if GeomeanSpeedup(nil, MethodSA) != 0 {
		t.Fatal("empty rows must yield 0")
	}
	rows := []TimeRow{{
		Kernel: "k",
		Times: map[Method]time.Duration{
			MethodLISA: 10 * time.Millisecond,
			MethodSA:   100 * time.Millisecond,
		},
	}}
	if sp := GeomeanSpeedup(rows, MethodSA); sp != 10 {
		t.Fatalf("speedup = %v, want 10", sp)
	}
}
