package gnn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
)

// syntheticSample builds a sample whose labels are simple functions of the
// attributes, so a working model must be able to fit them.
func syntheticSample(seed int64) Sample {
	rng := rand.New(rand.NewSource(seed))
	g := dfg.Random(rng, dfg.DefaultRandomConfig(), "syn")
	set := attr.Generate(g)
	an := set.An
	lbl := labels.NewZero(g)
	for v := range g.Nodes {
		lbl.Order[v] = float64(an.ASAP[v])
	}
	for i, e := range g.Edges {
		lbl.Spatial[i] = 1
		lbl.Temporal[i] = float64(an.ASAP[e.To] - an.ASAP[e.From])
		if lbl.Temporal[i] < 1 {
			lbl.Temporal[i] = 1
		}
	}
	for _, p := range set.DummyPairs {
		lbl.SameLevel[p] = 2
	}
	return Sample{Set: set, Lbl: lbl}
}

// mustPredict runs Predict and fails the test on a scale-validation error.
func mustPredict(t *testing.T, m *Model, set *attr.Set) *labels.Labels {
	t.Helper()
	lbl, err := m.Predict(set)
	if err != nil {
		t.Fatal(err)
	}
	return lbl
}

func TestPredictShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel(rng, "test")
	g := kernels.MustByName("gemm")
	set := attr.Generate(g)
	lbl := mustPredict(t, m, set)
	if err := lbl.Validate(g); err != nil {
		t.Fatal(err)
	}
	for e := range lbl.Temporal {
		if lbl.Temporal[e] < 1 {
			t.Fatalf("temporal label %d below 1: %v", e, lbl.Temporal[e])
		}
	}
	if len(lbl.SameLevel) != len(set.DummyPairs) {
		t.Fatalf("same-level predictions %d != pairs %d", len(lbl.SameLevel), len(set.DummyPairs))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewModel(rng, "test")
	var samples []Sample
	for s := int64(0); s < 6; s++ {
		samples = append(samples, syntheticSample(s))
	}
	first := m.Train(samples, TrainConfig{Epochs: 1, LR: 0.001, WeightDecay: 0.0005})
	more := m.Train(samples, TrainConfig{Epochs: 60, LR: 0.003, WeightDecay: 0.0001})
	for k := 0; k < 4; k++ {
		if more.FinalLoss[k] > first.FinalLoss[k]*1.5+1 {
			t.Errorf("label %d loss grew: %v -> %v", k+1, first.FinalLoss[k], more.FinalLoss[k])
		}
	}
}

func TestTrainingLearnsSyntheticLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(rng, "test")
	var samples []Sample
	for s := int64(10); s < 22; s++ {
		samples = append(samples, syntheticSample(s))
	}
	m.Train(samples, TrainConfig{Epochs: 150, LR: 0.005, WeightDecay: 0.0001})
	acc := m.Accuracy(samples)
	// Labels 2-4 are smooth functions of the attributes with generous
	// tolerances; a working implementation fits them well on train data.
	if acc[1] < 0.7 || acc[2] < 0.7 || acc[3] < 0.7 {
		t.Errorf("training-set accuracy too low: %v", acc)
	}
}

func TestAccuracyPerfectOnOwnPredictions(t *testing.T) {
	// Feeding a model's own predictions back as ground truth must yield
	// accuracy 1 for every label.
	rng := rand.New(rand.NewSource(4))
	m := NewModel(rng, "test")
	s := syntheticSample(99)
	s.Lbl = mustPredict(t, m, s.Set)
	acc := m.Accuracy([]Sample{s})
	for k, a := range acc {
		if a != 1 {
			t.Errorf("label %d self-accuracy = %v, want 1", k+1, a)
		}
	}
}

func TestModelsAreIndependentPerArch(t *testing.T) {
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	m1 := NewModel(r1, "a")
	m2 := NewModel(r2, "b")
	s := syntheticSample(7)
	m1.Train([]Sample{s}, TrainConfig{Epochs: 5, LR: 0.01, WeightDecay: 0})
	p1 := mustPredict(t, m1, s.Set)
	p2 := mustPredict(t, m2, s.Set)
	diff := 0.0
	for v := range p1.Order {
		diff += p1.Order[v] - p2.Order[v]
	}
	if diff == 0 {
		t.Error("training one model must not affect (or equal) the untrained one")
	}
}

func TestIncidentEdgesIncludesSelf(t *testing.T) {
	g := kernels.MustByName("syrk")
	set := attr.Generate(g)
	inc := incidentEdges(set)
	for e, lst := range inc {
		found := false
		for _, x := range lst {
			if x == e {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d missing from its own incident set", e)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewModel(rng, "cgra-4x4")
	s := syntheticSample(3)
	m.Train([]Sample{s}, TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 0})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewModel(rand.New(rand.NewSource(999)), "other")
	loaded, err := Load(&buf, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ArchName != "cgra-4x4" {
		t.Fatal("arch name lost")
	}
	p1 := mustPredict(t, m, s.Set)
	p2 := mustPredict(t, loaded, s.Set)
	for v := range p1.Order {
		if p1.Order[v] != p2.Order[v] {
			t.Fatalf("prediction diverged after round trip at node %d", v)
		}
	}
	for e := range p1.Temporal {
		if p1.Temporal[e] != p2.Temporal[e] || p1.Spatial[e] != p2.Spatial[e] {
			t.Fatalf("edge prediction diverged at %d", e)
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	fresh := NewModel(rand.New(rand.NewSource(1)), "x")
	if _, err := Load(strings.NewReader("{"), fresh); err == nil {
		t.Fatal("truncated JSON must fail")
	}
	if _, err := Load(strings.NewReader(`{"format":99}`), fresh); err == nil {
		t.Fatal("unknown format must fail")
	}
}

func TestTrainingHistoryAndEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewModel(rng, "hist")
	var train, val []Sample
	for s := int64(30); s < 36; s++ {
		train = append(train, syntheticSample(s))
	}
	for s := int64(40); s < 43; s++ {
		val = append(val, syntheticSample(s))
	}
	stats := m.Train(train, TrainConfig{
		Epochs: 40, LR: 0.003, WeightDecay: 0,
		RecordHistory: true,
		Validation:    val, ValidateEvery: 2, Patience: 3,
	})
	if len(stats.History) != stats.Epochs {
		t.Fatalf("history length %d != epochs run %d", len(stats.History), stats.Epochs)
	}
	if stats.Epochs > 40 {
		t.Fatal("ran more epochs than configured")
	}
	// Loss trends down over the first half on the training set.
	first, mid := stats.History[0], stats.History[len(stats.History)/2]
	improved := 0
	for k := 0; k < 4; k++ {
		if mid[k] <= first[k] {
			improved++
		}
	}
	if improved < 2 {
		t.Errorf("losses not trending down: first %v mid %v", first, mid)
	}
}

func TestValidationLossFiniteAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewModel(rng, "v")
	s := syntheticSample(50)
	m.fitScales([]Sample{s})
	v := m.validationLoss([]Sample{s})
	if v <= 0 || v != v {
		t.Fatalf("validation loss = %v", v)
	}
}
