// Package errfix is the errdrop fixture.
package errfix

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func tuple() (int, error) { return 0, nil }

// drops a bare error: flagged.
func drops() {
	mayFail()
}

// dropsTuple drops a (T, error): flagged.
func dropsTuple() {
	tuple()
}

// dropsDefer drops in a defer: flagged.
func dropsDefer(f *os.File) {
	defer f.Close()
}

// dropsGo drops in a go statement: flagged.
func dropsGo() {
	go mayFail()
}

// explicit discards deliberately: not flagged.
func explicit() {
	_ = mayFail()
}

// handled propagates: not flagged.
func handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// infallible writers and stdout prints: not flagged.
func excluded(b *strings.Builder) {
	fmt.Fprintf(b, "x")
	fmt.Println("x")
}

// suppressed carries an annotation: not flagged.
func suppressed() {
	mayFail() //lisa:nondet-ok best-effort cleanup on the shutdown path
}
