// Package lisa is the public API of the LISA reproduction — a portable,
// GNN-guided mapping framework for spatial accelerators (Li et al., "LISA:
// Graph Neural Network based Portable Mapping on Spatial Accelerators",
// HPCA 2022).
//
// The intended workflow mirrors the paper's Fig. 2:
//
//	ar := lisa.CGRA4x4()                    // pick / define an accelerator
//	fw := lisa.New(ar)                      // framework for that target
//	report := fw.Train(lisa.QuickTraining()) // one-off: labels + GNN (§IV-V)
//	g, _ := lisa.Kernel("gemm")             // a DFG (PolyBench or your own)
//	res := fw.Map(g)                        // label-aware mapping (§III)
//
// Everything heavy lives in internal packages; this package re-exports the
// types a downstream user needs and wires the pipeline together.
package lisa

import (
	"fmt"
	"math/rand"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/ilp"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/sim"
	"github.com/lisa-go/lisa/internal/traingen"
)

// Re-exported core types. These aliases are the public names; the internal
// packages are implementation detail.
type (
	// Graph is a dataflow graph (one loop-kernel body).
	Graph = dfg.Graph
	// Builder hand-lowers a kernel body into a Graph.
	Builder = dfg.Builder
	// Arch describes a spatial accelerator.
	Arch = arch.Arch
	// Labels is the per-DFG label set guiding the mapper (paper Table I).
	Labels = labels.Labels
	// Result is a mapping outcome (II, placement, routes, timing).
	Result = mapper.Result
	// MapOptions tunes the simulated-annealing engines.
	MapOptions = mapper.Options
	// Model is the per-accelerator bundle of four label GNNs.
	Model = gnn.Model
	// SimTrace is the output of a cycle-accurate simulation run.
	SimTrace = sim.Trace
)

// Accelerator constructors for the paper's six targets.
var (
	CGRA3x3         = arch.NewBaseline3x3
	CGRA4x4         = arch.NewBaseline4x4
	CGRA8x8         = arch.NewBaseline8x8
	CGRA4x4LessReg  = arch.NewLessRouting4x4
	CGRA4x4LessMem  = arch.NewLessMem4x4
	Systolic5x5     = arch.NewSystolic5x5
	Torus4x4        = arch.NewTorus4x4
	Hetero4x4       = arch.NewHetero4x4
	Targets         = arch.PaperTargets
	ExtendedTargets = arch.ExtendedTargets
	TargetByName    = arch.ByName
	NewCGRA         = arch.NewCGRA
	NewGraphBuilder = dfg.NewBuilder
	// LoadArch builds an accelerator from a JSON architecture spec
	// (io.Reader), the ADL counterpart of CGRA-ME's XML descriptions.
	LoadArch = arch.LoadArch
	// ParseDOT / ReadJSON load DFGs from files.
	ParseDOT = dfg.ParseDOT
	ReadDFG  = dfg.ReadJSON
)

// Kernel returns a fresh DFG for one of the PolyBench kernels the paper
// evaluates (gemm, atax, bicg, mvt, gesummv, symm, syrk, syr2k, trmm, 2mm,
// 3mm, doitgen).
func Kernel(name string) (*Graph, error) { return kernels.ByName(name) }

// KernelUnrolled returns the factor-2 unrolled version of a kernel.
func KernelUnrolled(name string) (*Graph, error) { return kernels.Unrolled(name) }

// KernelNames lists the available kernels.
func KernelNames() []string { return kernels.Names() }

// Unroll replicates a DFG body the given number of times.
func Unroll(g *Graph, factor int) *Graph { return dfg.Unroll(g, factor) }

// Framework is the per-accelerator LISA instance: train once, then derive
// labels and map any number of DFGs.
type Framework struct {
	Arch    Arch
	Model   *Model
	MapOpts MapOptions
}

// New creates an untrained framework for the accelerator. Mapping before
// Train falls back to the label initialization of §V-B, which is already a
// label-aware mapper — training sharpens the labels per architecture.
func New(ar Arch) *Framework { return &Framework{Arch: ar} }

// TrainOptions controls the one-off per-accelerator tuning pass.
type TrainOptions struct {
	// NumDFGs random DFGs are generated and labelled by iterative mapping.
	NumDFGs int
	// Iterations of the label-update loop per DFG.
	Iterations int
	// Epochs of GNN training (paper: 500).
	Epochs int
	Seed   int64
	// MapBudget is the SA movement budget while labelling.
	MapBudget int
}

// QuickTraining returns a laptop-scale training configuration (seconds to a
// couple of minutes); PaperTraining matches §VI.
func QuickTraining() TrainOptions {
	return TrainOptions{NumDFGs: 40, Iterations: 2, Epochs: 60, MapBudget: 700, Seed: 1}
}

// PaperTraining returns the paper-scale configuration (1000 DFGs, 500
// epochs).
func PaperTraining() TrainOptions {
	return TrainOptions{NumDFGs: 1000, Iterations: 4, Epochs: 500, MapBudget: 4000, Seed: 1}
}

// TrainReport summarizes the tuning pass.
type TrainReport struct {
	Generated, Mapped, Admitted int
	Accuracy                    [4]float64 // on the training set
}

// Train runs the paper's §V pipeline (random DFGs → iterative partial
// label-aware SA → candidate selection → filter) and fits the four GNNs.
func (f *Framework) Train(opt TrainOptions) TrainReport {
	if opt.NumDFGs == 0 {
		opt = QuickTraining()
	}
	cfg := traingen.DefaultConfig()
	cfg.NumDFGs = opt.NumDFGs
	cfg.Iterations = opt.Iterations
	cfg.Seed = opt.Seed
	cfg.MapOpts = mapper.Options{MaxMoves: opt.MapBudget}
	ds := traingen.Generate(f.Arch, cfg)

	m := gnn.NewModel(rand.New(rand.NewSource(opt.Seed)), f.Arch.Name())
	tc := gnn.DefaultTrainConfig()
	tc.Epochs = opt.Epochs
	m.Train(ds.Samples, tc)
	f.Model = m
	return TrainReport{
		Generated: ds.Stats.Generated,
		Mapped:    ds.Stats.Mapped,
		Admitted:  ds.Stats.Admitted,
		Accuracy:  m.Accuracy(ds.Samples),
	}
}

// DeriveLabels predicts the four labels for a DFG: the trained GNN when
// available, the §V-B initialization otherwise. The error is non-nil only
// when the model's serialized scale vectors do not match the current
// attribute dimensionality (version skew), which would otherwise produce
// silently garbage labels.
func (f *Framework) DeriveLabels(g *Graph) (*Labels, error) {
	if f.Model != nil {
		return f.Model.Predict(attr.Generate(g))
	}
	return labels.Initial(dfg.Analyze(g)), nil
}

// DeriveLabelsBatch predicts labels for many DFGs in one fused, batched
// inference pass (byte-identical to per-DFG DeriveLabels).
func (f *Framework) DeriveLabelsBatch(gs []*Graph) ([]*Labels, error) {
	if f.Model == nil {
		out := make([]*Labels, len(gs))
		for i, g := range gs {
			out[i] = labels.Initial(dfg.Analyze(g))
		}
		return out, nil
	}
	sets := make([]*attr.Set, len(gs))
	for i, g := range gs {
		sets[i] = attr.Generate(g)
	}
	return f.Model.PredictBatch(sets)
}

// Map runs the label-aware simulated annealing of Algorithm 1. The error
// is nil except for injected faults (internal/fault) and label version
// skew; a kernel that merely cannot be mapped is a Result with OK=false.
func (f *Framework) Map(g *Graph) (Result, error) {
	lbl, err := f.DeriveLabels(g)
	if err != nil {
		return Result{}, err
	}
	return mapper.Map(f.Arch, g, mapper.AlgLISA, lbl, f.MapOpts)
}

// MapBaseline runs the vanilla simulated-annealing baseline.
func (f *Framework) MapBaseline(g *Graph) (Result, error) {
	return mapper.Map(f.Arch, g, mapper.AlgSA, nil, f.MapOpts)
}

// MapExact runs the ILP (branch-and-bound) baseline.
func (f *Framework) MapExact(g *Graph, opts ilp.Options) Result {
	return ilp.Map(f.Arch, g, opts)
}

// Verify independently checks that a successful Result is a legal mapping.
func (f *Framework) Verify(g *Graph, r *Result) error {
	return mapper.Verify(f.Arch, g, r)
}

// Simulate executes a successful mapping cycle-accurately for the given
// number of pipelined loop iterations, enforcing per-cycle resource
// capacities and comparing the store output stream against a direct
// evaluation of the DFG. It is the strongest correctness check the
// framework offers.
func (f *Framework) Simulate(g *Graph, r *Result, iterations int) (*SimTrace, error) {
	return sim.Run(f.Arch, g, r, iterations)
}

// Utilization reports how a successful mapping uses the accelerator.
func (f *Framework) Utilization(g *Graph, r *Result) (mapper.Utilization, error) {
	return mapper.Utilize(f.Arch, g, r)
}

// ScheduleTable renders the mapping as a time × PE grid.
func (f *Framework) ScheduleTable(g *Graph, r *Result) string {
	return mapper.ScheduleTable(f.Arch, g, r)
}

// Describe renders a successful mapping as human-readable schedule lines.
func Describe(ar Arch, g *Graph, r *Result) string {
	if !r.OK {
		return fmt.Sprintf("%s: no mapping found (tried IIs %v)", g.Name, r.TriedIIs)
	}
	s := fmt.Sprintf("%s: II=%d, %d nodes, routing cost %d, compile time %v\n",
		g.Name, r.II, g.NumNodes(), r.RoutingCost, r.Duration.Round(1000))
	for v := range g.Nodes {
		row, col := ar.Coord(r.PE[v])
		s += fmt.Sprintf("  t=%2d  PE(%d,%d)  %s\n", r.Time[v], row, col, g.Nodes[v].Name)
	}
	return s
}
