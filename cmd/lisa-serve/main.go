// Command lisa-serve runs the mapping-as-a-service daemon: a stdlib-only
// HTTP/JSON server with pre-loaded (or lazily trained) per-architecture GNN
// models, a content-addressed result cache with singleflight deduplication,
// an admission-controlled worker pool, and request metrics.
//
// Usage:
//
//	lisa-serve -addr :8080 -models ./models        (offline-trained models)
//	lisa-serve -addr :8080 -train                  (train on first request)
//
// Endpoints:
//
//	POST /v1/map          {"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}
//	POST /v1/map/batch    {"items":[...]} — many mapping requests, one round trip
//	POST /v1/labels       raw GNN label predictions, no annealer
//	GET  /v1/archs        capability discovery: targets + model readiness,
//	                      provenance (loaded/trained/shipped) and errors
//	GET  /v1/kernels      the built-in PolyBench kernels
//	GET  /v1/model/{arch} this node's trained model as verified gnn.Save bytes
//	POST /v1/reload       clear cached training/fetch failures, rescan models
//	GET  /healthz         liveness (always 200 while the process serves)
//	GET  /readyz          readiness (503 while draining or store unwritable)
//	GET  /metrics         request counts, cache tiers, cluster routing, models
//
// -store-dir persists results on disk (content-addressed, crash-tolerant):
// a restarted daemon answers previously computed requests byte-identically
// without re-running the mapper. -peers/-self join a static fleet: each
// request key has one owning node on a consistent-hash ring, non-owners
// proxy to it, and a dead owner degrades to local compute. Trained models
// ship the same channel: a node with no model for a requested arch fetches
// the ring owner's (checksum- and gnn.Load-validated) before falling back
// to local training.
//
// SIGINT/SIGTERM drains: the listener stops accepting, in-flight mappings
// finish, then the process exits.
//
// Requests that hit an engine failure are answered by the degradation
// ladder (lisa → sa → greedy) with the rungs labeled in the response; a
// panic anywhere in a handler or mapping task becomes a 500 plus a metrics
// tick, never a dead daemon. The -faults flag (or LISA_FAULTS) arms the
// deterministic fault-injection layer for chaos testing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/registry"
	"github.com/lisa-go/lisa/internal/service"
	"github.com/lisa-go/lisa/internal/store"
	"github.com/lisa-go/lisa/internal/traingen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelsDir := flag.String("models", "", "directory of lisa-train model files (*.json) to pre-load")
	train := flag.Bool("train", true, "train a model on demand for targets without a pre-loaded one")
	workers := flag.Int("workers", 0, "concurrent mapping jobs (0 = all CPUs)")
	queue := flag.Int("queue", 64, "queued mapping jobs beyond the workers before requests get 429")
	cacheEntries := flag.Int("cache", 4096, "result-cache entries (LRU)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "result-cache byte bound (-1 = unbounded)")
	storeDir := flag.String("store-dir", "", "directory for the persistent result store (empty = memory only)")
	peers := flag.String("peers", "", "comma-separated peer base URLs forming a static cluster (requires -self)")
	self := flag.String("self", "", "this node's base URL as it appears in -peers")
	maxBatch := flag.Int("max-batch", 64, "max items per /v1/map/batch request")
	moves := flag.Int("moves", 2400, "default SA movement budget per II")
	maxRestarts := flag.Int("max-restarts", 8, "cap on the per-request portfolio width (-1 = uncapped)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request mapping deadline")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "cap on the per-request deadline")
	trainDFGs := flag.Int("train-dfgs", 36, "random DFGs per on-demand training run")
	trainEpochs := flag.Int("train-epochs", 60, "epochs per on-demand training run")
	seed := flag.Int64("train-seed", 1, "seed for on-demand training")
	maxNodes := flag.Int("max-dfg-nodes", 512, "node cap for inline DFG uploads, post-unroll (-1 = uncapped)")
	maxEdges := flag.Int("max-dfg-edges", 2048, "edge cap for inline DFG uploads, post-unroll (-1 = uncapped)")
	faults := flag.String("faults", "", "fault-injection plan, e.g. 'gnn.train=error:1' (overrides LISA_FAULTS; chaos testing only)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault decisions")
	flag.Parse()

	if *faults != "" {
		plan, err := fault.ParsePlan(*faults, *faultSeed)
		if err != nil {
			log.Fatalf("lisa-serve: -faults: %v", err)
		}
		fault.Activate(plan)
		log.Printf("lisa-serve: FAULT INJECTION ARMED: %s", plan)
	} else if plan, err := fault.FromEnv(); err != nil {
		log.Fatalf("lisa-serve: LISA_FAULTS: %v", err)
	} else if plan != nil {
		fault.Activate(plan)
		log.Printf("lisa-serve: FAULT INJECTION ARMED (env): %s", plan)
	}

	reg := registry.New(registry.Config{
		TrainGen: traingen.Config{
			NumDFGs:    *trainDFGs,
			Iterations: 2,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 700},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg:      gnn.TrainConfig{Epochs: *trainEpochs, LR: 0.003, WeightDecay: 0.0005},
		Seed:          *seed,
		TrainOnDemand: *train,
	})
	if *modelsDir != "" {
		names, err := reg.LoadDir(*modelsDir)
		if err != nil {
			log.Fatalf("lisa-serve: loading models from %s: %v", *modelsDir, err)
		}
		log.Printf("loaded %d model(s) from %s: %v", len(names), *modelsDir, names)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatalf("lisa-serve: -store-dir %s: %v", *storeDir, err)
		}
		log.Printf("lisa-serve: store %s: %d entries (%d bytes), %d dropped in recovery, generation %d",
			st.Dir(), st.Len(), st.Bytes(), st.Dropped(), st.Generation())
	}

	var cl *cluster.Cluster
	if *peers != "" || *self != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		var err error
		cl, err = cluster.New(cluster.Config{Self: *self, Peers: peerList})
		if err != nil {
			log.Fatalf("lisa-serve: -peers/-self: %v", err)
		}
		log.Printf("lisa-serve: cluster of %d nodes, self=%s", len(peerList), cl.Self())
	}

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		Store:           st,
		Cluster:         cl,
		MaxBatchItems:   *maxBatch,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MapOpts:         mapper.Options{MaxMoves: *moves},
		MaxRestarts:     *maxRestarts,
		MaxDFGNodes:     *maxNodes,
		MaxDFGEdges:     *maxEdges,
		ModelsDir:       *modelsDir,
		OnPanic: func(recovered any, stack []byte) {
			log.Printf("lisa-serve: recovered panic: %v\n%s", recovered, stack)
		},
	}, reg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("lisa-serve listening on %s (workers=%d queue=%d cache=%d train-on-demand=%v)",
		*addr, *workers, *queue, *cacheEntries, *train)

	select {
	case err := <-errc:
		log.Fatalf("lisa-serve: %v", err)
	case <-ctx.Done():
	}

	log.Print("lisa-serve: draining ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *maxDeadline+10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("lisa-serve: shutdown: %v", err)
	}
	svc.Close()
	fmt.Println("lisa-serve: drained, bye")
}
