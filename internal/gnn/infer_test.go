package gnn

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/labels"
)

// assertLabelsBitIdentical compares two label sets with Float64bits: the
// fused/batched paths promise the exact float sequence of the taped
// reference, so approximate comparison would mask a real divergence.
func assertLabelsBitIdentical(t *testing.T, name string, set *attr.Set, want, got *labels.Labels) {
	t.Helper()
	for v := range want.Order {
		if math.Float64bits(want.Order[v]) != math.Float64bits(got.Order[v]) {
			t.Fatalf("%s: Order[%d] = %v, want %v", name, v, got.Order[v], want.Order[v])
		}
	}
	for e := range want.Spatial {
		if math.Float64bits(want.Spatial[e]) != math.Float64bits(got.Spatial[e]) {
			t.Fatalf("%s: Spatial[%d] = %v, want %v", name, e, got.Spatial[e], want.Spatial[e])
		}
		if math.Float64bits(want.Temporal[e]) != math.Float64bits(got.Temporal[e]) {
			t.Fatalf("%s: Temporal[%d] = %v, want %v", name, e, got.Temporal[e], want.Temporal[e])
		}
	}
	if len(want.SameLevel) != len(got.SameLevel) {
		t.Fatalf("%s: SameLevel size %d, want %d", name, len(got.SameLevel), len(want.SameLevel))
	}
	// Iterate the pair key slice, not the map, for a deterministic order.
	for _, p := range set.DummyPairs {
		if math.Float64bits(want.SameLevel[p]) != math.Float64bits(got.SameLevel[p]) {
			t.Fatalf("%s: SameLevel[%v] = %v, want %v", name, p, got.SameLevel[p], want.SameLevel[p])
		}
	}
}

// trainedTestModel returns a lightly trained model (non-trivial weights and
// fitted scales) shared by the differential tests.
func trainedTestModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(rng, "diff")
	var samples []Sample
	for s := int64(60); s < 64; s++ {
		samples = append(samples, syntheticSample(s))
	}
	m.Train(samples, TrainConfig{Epochs: 8, LR: 0.005, WeightDecay: 0.0001})
	return m
}

// TestFusedPredictBitIdenticalToTaped is the tentpole's core differential
// test: the fused no-tape Predict must reproduce the taped forward pass bit
// for bit on every label network, across real kernels and random DFGs.
func TestFusedPredictBitIdenticalToTaped(t *testing.T) {
	m := trainedTestModel(31)
	var sets []*attr.Set
	for _, k := range []string{"gemm", "syrk", "doitgen", "atax"} {
		sets = append(sets, attr.Generate(kernels.MustByName(k)))
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 4; i++ {
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "rnd")
		sets = append(sets, attr.Generate(g))
	}
	for _, set := range sets {
		want := m.predictTaped(set)
		got, err := m.Predict(set)
		if err != nil {
			t.Fatal(err)
		}
		assertLabelsBitIdentical(t, set.An.G.Name, set, want, got)
	}
}

// TestPredictBatchMatchesSinglePredict checks block-diagonal batching: the
// batch output must be byte-for-byte the per-DFG output at every batch size.
func TestPredictBatchMatchesSinglePredict(t *testing.T) {
	m := trainedTestModel(33)
	var sets []*attr.Set
	for _, k := range []string{"gemm", "bicg", "mvt", "syr2k", "trmm"} {
		sets = append(sets, attr.Generate(kernels.MustByName(k)))
	}
	single := make([]*labels.Labels, len(sets))
	for i, set := range sets {
		var err error
		single[i], err = m.Predict(set)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{1, 2, len(sets)} {
		batch, err := m.PredictBatch(sets[:n])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			assertLabelsBitIdentical(t, sets[i].An.G.Name, sets[i], single[i], batch[i])
		}
	}
}

// TestPredictBatchEmptyAndReuse covers the degenerate batch and arena reuse
// across consecutive calls (the pool hands the same Infer back).
func TestPredictBatchEmptyAndReuse(t *testing.T) {
	m := trainedTestModel(34)
	if out, err := m.PredictBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d labels", err, len(out))
	}
	set := attr.Generate(kernels.MustByName("gemm"))
	first := mustPredict(t, m, set)
	for i := 0; i < 3; i++ {
		again := mustPredict(t, m, set)
		assertLabelsBitIdentical(t, "reuse", set, first, again)
	}
}

// TestPredictRejectsScaleSkew locks in the version-skew guard: a scale
// vector whose length disagrees with the attribute dimensionality must turn
// into a clean error, not silently half-scaled predictions (the old
// `j < len(scale)` clamp).
func TestPredictRejectsScaleSkew(t *testing.T) {
	m := trainedTestModel(35)
	set := attr.Generate(kernels.MustByName("gemm"))
	m.NodeScale = m.NodeScale[:attr.NodeAttrDim-1]
	if _, err := m.Predict(set); err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("short NodeScale: err = %v, want version-skew error", err)
	}
	if _, err := m.PredictBatch([]*attr.Set{set}); err == nil {
		t.Fatal("PredictBatch must reject the same skew")
	}
	m.NodeScale = nil // nil means unscaled and is valid
	m.EdgeScale = append(m.EdgeScale, 1)
	if _, err := m.Predict(set); err == nil || !strings.Contains(err.Error(), "edge scale") {
		t.Fatalf("long EdgeScale: err = %v, want edge-scale error", err)
	}
}

// TestFitScalesPanicsOnSkewedRows: a training row that disagrees with the
// attribute dimensionality must fail loudly instead of fitting a prefix.
func TestFitScalesPanicsOnSkewedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := NewModel(rng, "skew")
	s := syntheticSample(70)
	s.Set.Node[0] = s.Set.Node[0][:attr.NodeAttrDim-1]
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fitScales must panic on a short attribute row")
		}
		if !strings.Contains(r.(string), "version skew") {
			t.Fatalf("panic %v does not name version skew", r)
		}
	}()
	m.fitScales([]Sample{s})
}

// TestLoadRejectsCorruptScales: serialized scale entries that are zero,
// negative or non-finite would silently corrupt scaling for one column;
// Load must reject the file whole.
func TestLoadRejectsCorruptScales(t *testing.T) {
	m := trainedTestModel(37)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(f map[string]any)) string {
		var f map[string]any
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		mutate(f)
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := map[string]string{
		"zero node scale": corrupt(func(f map[string]any) {
			f["nodeScale"].([]any)[0] = 0.0
		}),
		"negative edge scale": corrupt(func(f map[string]any) {
			f["edgeScale"].([]any)[1] = -2.0
		}),
		"negative asap scale": corrupt(func(f map[string]any) {
			f["asapScale"] = -1.0
		}),
	}
	names := []string{"zero node scale", "negative edge scale", "negative asap scale"}
	for _, name := range names {
		fresh := NewModel(rand.New(rand.NewSource(1)), "x")
		if _, err := Load(strings.NewReader(cases[name]), fresh); err == nil {
			t.Errorf("%s: Load accepted a corrupt scale", name)
		}
	}
}

// TestEarlyStoppingRestoresBestWeights: the validation labels are the
// untrained model's own predictions, so every training step (toward large
// constant targets) degrades validation loss monotonically after the first
// evaluation. Early stopping must fire AND hand back the weights from the
// best evaluation, not the ones Patience evaluations worse.
func TestEarlyStoppingRestoresBestWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	m := NewModel(rng, "early")

	val := syntheticSample(80)
	val.Lbl = mustPredict(t, m, val.Set) // untrained self-predictions

	train := syntheticSample(81)
	for v := range train.Lbl.Order {
		train.Lbl.Order[v] = 100
	}
	for e := range train.Lbl.Spatial {
		train.Lbl.Spatial[e] = 100
		train.Lbl.Temporal[e] = 100
	}
	for _, p := range train.Set.DummyPairs {
		train.Lbl.SameLevel[p] = 100
	}

	stats := m.Train([]Sample{train}, TrainConfig{
		Epochs: 50, LR: 0.01, WeightDecay: 0,
		Validation: []Sample{val}, ValidateEvery: 1, Patience: 2,
	})
	if !stats.Stopped {
		t.Fatalf("early stopping did not fire: %+v", stats)
	}
	if !stats.RestoredBest {
		t.Fatal("weights were not rolled back to the best-validation snapshot")
	}
	if stats.BestValLoss <= 0 {
		t.Fatalf("BestValLoss = %v, want > 0", stats.BestValLoss)
	}
	// The restore is a byte-exact copy, so re-measuring validation loss on
	// the returned weights must reproduce BestValLoss exactly.
	if got := m.validationLoss([]Sample{val}); got != stats.BestValLoss {
		t.Fatalf("validation loss after restore = %v, want the recorded best %v", got, stats.BestValLoss)
	}
}

// TestEarlyStoppingKeepsFinalWeightsWhenLastEvalIsBest: when training
// improves through the final epoch, no rollback may happen.
func TestEarlyStoppingKeepsFinalWeightsWhenLastEvalIsBest(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	m := NewModel(rng, "improving")
	s := syntheticSample(82)
	stats := m.Train([]Sample{s}, TrainConfig{
		Epochs: 6, LR: 0.003, WeightDecay: 0,
		Validation: []Sample{s}, ValidateEvery: 1, Patience: 4,
	})
	if stats.Stopped {
		t.Skipf("training plateaued early (%+v); rollback legitimately fired", stats)
	}
	if stats.RestoredBest && stats.BestValLoss != m.validationLoss([]Sample{s}) {
		t.Fatal("rollback left weights inconsistent with the recorded best")
	}
}
