package experiments

import (
	"reflect"
	"sync"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

// stripTiming drops the only intentionally nondeterministic Result field so
// the rest can be compared exactly.
func stripTiming(r mapper.Result) mapper.Result {
	r.Duration = 0
	return r
}

// TestConcurrentContextDeterministic maps the same kernel through one
// shared Context from many goroutines (run with -race) and asserts every
// result — including the SA median pick with its Routes, Moves and
// TriedIIs — is identical to the serial Workers=1 run.
func TestConcurrentContextDeterministic(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")

	serialProfile := testProfile()
	serialProfile.SARuns = 3 // exercise the median pick
	serialProfile.Workers = 1
	serial := NewContext(serialProfile)
	wantSA := stripTiming(serial.Run(ar, g, MethodSA))
	wantLISA := stripTiming(serial.Run(ar, g, MethodLISA))

	sharedProfile := serialProfile
	sharedProfile.Workers = 4
	shared := NewContext(sharedProfile)

	const goroutines = 4
	gotSA := make([]mapper.Result, goroutines)
	gotLISA := make([]mapper.Result, goroutines)
	models := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				gotSA[i] = shared.Run(ar, g, MethodSA)
				gotLISA[i] = shared.Run(ar, g, MethodLISA)
			} else {
				gotLISA[i] = shared.Run(ar, g, MethodLISA)
				gotSA[i] = shared.Run(ar, g, MethodSA)
			}
			models[i] = shared.ModelFor(ar)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if got := stripTiming(gotSA[i]); !reflect.DeepEqual(got, wantSA) {
			t.Errorf("goroutine %d: SA median diverged from serial run:\n got %+v\nwant %+v",
				i, got, wantSA)
		}
		if got := stripTiming(gotLISA[i]); !reflect.DeepEqual(got, wantLISA) {
			t.Errorf("goroutine %d: LISA result diverged from serial run:\n got %+v\nwant %+v",
				i, got, wantLISA)
		}
		if models[i] != models[0] {
			t.Errorf("goroutine %d saw a different model instance; per-arch training must run once", i)
		}
	}
}

// TestCompareWorkerCountInvariant runs a trimmed grid (kernel × method
// cells, SA median-of-three and LISA) at Workers=1 and Workers=8 and
// asserts the comparison rows are identical apart from compile-time
// measurements. ILP is left out: it runs under a wall-clock budget
// (TimeLimitPerII), so its outcome is timing-dependent even serially; the
// SA and LISA engines carry the determinism guarantee.
func TestCompareWorkerCountInvariant(t *testing.T) {
	run := func(workers int) *Comparison {
		p := testProfile()
		p.SARuns = 3
		p.Workers = workers
		c := NewContext(p)
		return c.Compare("grid", arch.NewBaseline4x4(), []string{"gemm", "bicg"}, false,
			[]Method{MethodSA, MethodLISA})
	}
	serial, par := run(1), run(8)
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		sr, pr := serial.Rows[i], par.Rows[i]
		if sr.Kernel != pr.Kernel {
			t.Fatalf("row %d kernel order diverged: %s vs %s", i, sr.Kernel, pr.Kernel)
		}
		for _, m := range serial.Methods {
			a, b := stripTiming(sr.Results[m]), stripTiming(pr.Results[m])
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s diverged between Workers=1 and Workers=8:\n got %+v\nwant %+v",
					sr.Kernel, m, b, a)
			}
		}
	}
}

// TestMedianRunDeterministicTieBreak reruns the SA median many times on one
// context and asserts the pick never changes — the tie-break is the run's
// slot index, not wall-clock duration.
func TestMedianRunDeterministicTieBreak(t *testing.T) {
	p := testProfile()
	p.SARuns = 3
	p.Workers = 4
	c := NewContext(p)
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	want := stripTiming(c.Run(ar, g, MethodSA))
	for i := 0; i < 2; i++ {
		if got := stripTiming(c.Run(ar, g, MethodSA)); !reflect.DeepEqual(got, want) {
			t.Fatalf("rerun %d picked a different median:\n got %+v\nwant %+v", i, got, want)
		}
	}
}
