package dfg

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls the random DFG generator used to build GNN training
// sets (paper §V-A: "generate random directed and weakly connected graphs"
// with node counts and per-node edge counts drawn from ranges based on the
// real applications).
type RandomConfig struct {
	MinNodes  int // inclusive lower bound on node count
	MaxNodes  int // inclusive upper bound on node count
	MinFanout int // lower bound on edges added per non-sink node
	MaxFanout int // upper bound on edges added per non-sink node

	// MemFraction is the approximate fraction of nodes that are memory ops;
	// real PolyBench DFGs are roughly one third loads/stores.
	MemFraction float64

	// Ops is the pool of compute op kinds to draw from. Empty means a
	// default ALU mix.
	Ops []OpKind
}

// DefaultRandomConfig mirrors the size range of the PolyBench DFGs the paper
// maps (tens of nodes).
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		MinNodes:    10,
		MaxNodes:    28,
		MinFanout:   1,
		MaxFanout:   3,
		MemFraction: 0.3,
		Ops:         []OpKind{OpAdd, OpSub, OpMul, OpAdd, OpMul, OpShl, OpCmp},
	}
}

// Random generates one random, directed, weakly-connected, acyclic DFG.
// Determinism is entirely controlled by rng. The construction works level by
// level: nodes are created in ID order and each node draws its fanout edges
// toward strictly later IDs, which guarantees acyclicity; a final pass stitches
// disconnected components together.
func Random(rng *rand.Rand, cfg RandomConfig, name string) *Graph {
	if cfg.MaxNodes < cfg.MinNodes || cfg.MinNodes < 2 {
		panic("dfg: invalid RandomConfig node bounds")
	}
	ops := cfg.Ops
	if len(ops) == 0 {
		ops = DefaultRandomConfig().Ops
	}
	n := cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)
	g := New(name)

	for i := 0; i < n; i++ {
		op := ops[rng.Intn(len(ops))]
		if rng.Float64() < cfg.MemFraction {
			// Memory ops: early IDs lean toward loads, late IDs toward
			// stores, matching how lowered kernels look.
			if float64(i) < float64(n)*0.5 {
				op = OpLoad
			} else {
				op = OpStore
			}
		}
		g.AddNode(fmt.Sprintf("r%d", i), op)
	}

	for v := 0; v < n-1; v++ {
		fan := cfg.MinFanout
		if cfg.MaxFanout > cfg.MinFanout {
			fan += rng.Intn(cfg.MaxFanout - cfg.MinFanout + 1)
		}
		for k := 0; k < fan; k++ {
			w := v + 1 + rng.Intn(n-v-1)
			if !hasEdge(g, v, w) {
				g.AddEdge(v, w)
			}
		}
	}

	// Stores must be sinks and must have at least one input; consts/loads
	// at position 0 are sources. Fix up violations deterministically.
	for v := 0; v < n; v++ {
		if g.Nodes[v].Op == OpStore {
			// Redirect outgoing edges of stores is impossible post hoc
			// (edges are append-only), so instead demote stores that
			// gained successors to adds.
			if g.OutDegree(v) > 0 {
				g.Nodes[v].Op = OpAdd
			}
		}
		if v > 0 && g.InDegree(v) == 0 {
			g.AddEdge(rng.Intn(v), v)
		}
	}

	connectComponents(g, rng)
	return g
}

// hasEdge reports whether g already contains edge (u,v).
func hasEdge(g *Graph, u, v int) bool {
	for _, w := range g.Succ(u) {
		if w == v {
			return true
		}
	}
	return false
}

// connectComponents adds forward edges until the graph is weakly connected.
func connectComponents(g *Graph, rng *rand.Rand) {
	n := g.NumNodes()
	for {
		comp := weakComponents(g)
		if comp.count <= 1 {
			return
		}
		// Join the component of node 0 with another component using a
		// forward edge (low ID -> high ID keeps the graph acyclic).
		var a, b = -1, -1
		for v := 0; v < n; v++ {
			if comp.id[v] != comp.id[0] {
				b = v
				break
			}
		}
		for v := 0; v < b; v++ {
			if comp.id[v] == comp.id[0] {
				a = v
			}
		}
		if a == -1 {
			// Component of 0 has no node with ID below b; flip direction.
			for v := b + 1; v < n; v++ {
				if comp.id[v] == comp.id[0] {
					g.AddEdge(b, v)
					a = v
					break
				}
			}
			if a == -1 {
				g.AddEdge(0, b)
			}
			continue
		}
		_ = rng
		g.AddEdge(a, b)
	}
}

type components struct {
	id    []int
	count int
}

func weakComponents(g *Graph) components {
	n := g.NumNodes()
	id := make([]int, n)
	for i := range id {
		id[i] = -1
	}
	c := 0
	for s := 0; s < n; s++ {
		if id[s] != -1 {
			continue
		}
		stack := []int{s}
		id[s] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Succ(v) {
				if id[w] == -1 {
					id[w] = c
					stack = append(stack, w)
				}
			}
			for _, w := range g.Pred(v) {
				if id[w] == -1 {
					id[w] = c
					stack = append(stack, w)
				}
			}
		}
		c++
	}
	return components{id: id, count: c}
}
