package dfg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample builds the DFG of the paper's Fig. 4: A..J with B feeding four
// children and the dense region the motivating example discusses.
func paperExample() *Graph {
	g := New("fig4")
	ids := map[string]int{}
	for _, n := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J"} {
		ids[n] = g.AddNode(n, OpAdd)
	}
	add := func(a, b string) { g.AddEdge(ids[a], ids[b]) }
	add("A", "C")
	add("B", "D")
	add("B", "E")
	add("B", "F")
	add("B", "I")
	add("C", "G")
	add("D", "H")
	add("E", "I")
	add("G", "J")
	add("H", "J")
	add("I", "J")
	add("F", "J")
	return g
}

func TestPaperExampleStructure(t *testing.T) {
	g := paperExample()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	a := Analyze(g)
	b, _ := g.NodeByName("B")
	if got := g.OutDegree(b); got != 4 {
		t.Errorf("B out-degree = %d, want 4", got)
	}
	j, _ := g.NodeByName("J")
	if a.ASAP[j] != a.CriticalPath {
		t.Errorf("J ASAP = %d, want critical path %d", a.ASAP[j], a.CriticalPath)
	}
	if a.CriticalPath != 3 {
		t.Errorf("critical path = %d, want 3 (A->C->G->J)", a.CriticalPath)
	}
	if n := a.NumDescendants(b); n != 6 {
		t.Errorf("B descendants = %d, want 6 (D,E,F,I,H,J)", n)
	}
	if n := a.NumAncestors(j); n != 9 {
		t.Errorf("J ancestors = %d, want 9", n)
	}
}

func TestSameLevelPairsPaperExample(t *testing.T) {
	// Paper Fig. 7: C, E, F are same-level (ASAP 1); C-E and E-F get dummy
	// edges (common descendant J via I for C-E? C and E share descendant J).
	// Per the paper, C and F have no common ancestor or descendant... in
	// Fig. 4 all of C,E,F reach J, so the concrete statement differs from
	// our reconstruction; here we verify the definition, not the figure.
	g := paperExample()
	a := Analyze(g)
	c, _ := g.NodeByName("C")
	e, _ := g.NodeByName("E")
	if a.ASAP[c] != a.ASAP[e] {
		t.Fatalf("C and E should be same level: %d vs %d", a.ASAP[c], a.ASAP[e])
	}
	pairs := a.SameLevelPairs()
	found := false
	for _, p := range pairs {
		if (p.A == c && p.B == e) || (p.A == e && p.B == c) {
			found = true
		}
		if a.ASAP[p.A] != a.ASAP[p.B] {
			t.Errorf("pair (%d,%d) not same level", p.A, p.B)
		}
		if !a.HaveCommonAncestor(p.A, p.B) && !a.HaveCommonDescendant(p.A, p.B) {
			t.Errorf("pair (%d,%d) lacks common ancestor/descendant", p.A, p.B)
		}
	}
	if !found {
		t.Error("C-E dummy edge missing")
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddNode("a", OpAdd)
	b := g.AddNode("b", OpAdd)
	g.AddEdge(a, b)
	g.Edges = append(g.Edges, Edge{ID: 1, From: b, To: a})
	g.succ[b] = append(g.succ[b], a)
	g.pred[a] = append(g.pred[a], b)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestValidateRejectsSelfLoop(t *testing.T) {
	g := New("self")
	a := g.AddNode("a", OpAdd)
	g.Edges = append(g.Edges, Edge{ID: 0, From: a, To: a})
	if err := g.Validate(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderKernelShape(t *testing.T) {
	b := NewBuilder("axpy")
	base := b.Const("xbase")
	i := b.Const("i")
	addr := b.Addr("xaddr", base, i)
	x := b.Load("x", addr)
	aCoef := b.Const("a")
	ax := b.Mul("ax", aCoef, x)
	ybase := b.Const("ybase")
	yaddr := b.Addr("yaddr", ybase, i)
	y := b.Load("y", yaddr)
	sum := b.Add("sum", ax, y)
	b.Store("out", yaddr, sum)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MemOpCount() != 3 {
		t.Errorf("mem ops = %d, want 3", g.MemOpCount())
	}
	st, _ := g.NodeByName("out")
	if g.OutDegree(st) != 0 {
		t.Error("store must be a sink")
	}
	an := Analyze(g)
	if an.ASAP[sum.ID()] <= an.ASAP[x.ID()] {
		t.Error("sum must be scheduled after load x")
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	cfg := DefaultRandomConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, cfg, "rnd")
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if g.NumNodes() < cfg.MinNodes || g.NumNodes() > cfg.MaxNodes {
			return false
		}
		for _, n := range g.Nodes {
			if n.Op == OpStore && g.OutDegree(n.ID) != 0 {
				t.Logf("seed %d: store %d has successors", seed, n.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	g1 := Random(rand.New(rand.NewSource(7)), DefaultRandomConfig(), "a")
	g2 := Random(rand.New(rand.NewSource(7)), DefaultRandomConfig(), "a")
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed should give identical graphs")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestASAPALAPInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, DefaultRandomConfig(), "rnd")
		a := Analyze(g)
		for v := range g.Nodes {
			if a.ASAP[v] > a.ALAP[v] {
				return false
			}
			if a.ALAP[v] > a.CriticalPath {
				return false
			}
			for _, p := range g.Pred(v) {
				if a.ASAP[p] >= a.ASAP[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorDescendantDuality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(rng, DefaultRandomConfig(), "rnd")
		a := Analyze(g)
		for u := range g.Nodes {
			for v := range g.Nodes {
				if a.IsAncestor(u, v) != a.IsDescendant(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollScalesBody(t *testing.T) {
	g := paperExample()
	u := Unroll(g, 2)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// No consts in fig4, so a synthetic anchor node is added.
	want := 2*g.NumNodes() + 1
	if u.NumNodes() != want {
		t.Errorf("unrolled nodes = %d, want %d", u.NumNodes(), want)
	}
	if u.NumEdges() < 2*g.NumEdges() {
		t.Errorf("unrolled edges = %d, want >= %d", u.NumEdges(), 2*g.NumEdges())
	}
}

func TestUnrollSharesConstants(t *testing.T) {
	b := NewBuilder("k")
	c := b.Const("base")
	l := b.Load("x", c)
	b.Store("y", c, l)
	g := b.Graph()
	u := Unroll(g, 3)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	consts := 0
	for _, n := range u.Nodes {
		if n.Op == OpConst {
			consts++
		}
	}
	if consts != 1 {
		t.Errorf("const nodes = %d, want 1 (shared)", consts)
	}
	if u.NumNodes() != 1+3*2 {
		t.Errorf("nodes = %d, want 7", u.NumNodes())
	}
}

func TestUnrollFactorOneClones(t *testing.T) {
	g := paperExample()
	u := Unroll(g, 1)
	if u.NumNodes() != g.NumNodes() || u.NumEdges() != g.NumEdges() {
		t.Fatal("factor-1 unroll must be a clone")
	}
	u.Nodes[0].Op = OpMul
	if g.Nodes[0].Op == OpMul {
		t.Fatal("clone must not alias original")
	}
}

func TestWriteDOT(t *testing.T) {
	g := paperExample()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "digraph") || !strings.Contains(s, "n0 ->") && !strings.Contains(s, "-> n") {
		t.Errorf("unexpected DOT output:\n%s", s)
	}
	if strings.Count(s, "->") != g.NumEdges() {
		t.Errorf("DOT edge count = %d, want %d", strings.Count(s, "->"), g.NumEdges())
	}
}

func TestNodesBetweenAndLevels(t *testing.T) {
	g := paperExample()
	a := Analyze(g)
	A, _ := g.NodeByName("A")
	J, _ := g.NodeByName("J")
	// Levels: 0:{A,B} 1:{C,D,E,F} 2:{G,H,I} 3:{J} -> between A and J: 7.
	if got := a.NodesBetween(A, J); got != 7 {
		t.Errorf("NodesBetween(A,J) = %d, want 7", got)
	}
	if got := a.NodesAtLevel(1); got != 4 {
		t.Errorf("NodesAtLevel(1) = %d, want 4", got)
	}
}

func TestClosestCommonAncestorDescendant(t *testing.T) {
	g := paperExample()
	a := Analyze(g)
	D, _ := g.NodeByName("D")
	E, _ := g.NodeByName("E")
	B, _ := g.NodeByName("B")
	J, _ := g.NodeByName("J")
	anc, dist, ok := a.ClosestCommonAncestor(D, E)
	if !ok || anc != B || dist != 1 {
		t.Errorf("CCA(D,E) = (%d,%d,%v), want (B=%d,1,true)", anc, dist, ok, B)
	}
	desc, _, ok := a.ClosestCommonDescendant(D, E)
	if !ok || desc != J {
		t.Errorf("CCD(D,E) = (%d,%v), want (J=%d,true)", desc, ok, J)
	}
	A, _ := g.NodeByName("A")
	if _, _, ok := a.ClosestCommonAncestor(A, B); ok {
		t.Error("A and B have no common ancestor")
	}
}

func TestParseOpKind(t *testing.T) {
	k, err := ParseOpKind("mul")
	if err != nil || k != OpMul {
		t.Fatalf("ParseOpKind(mul) = %v, %v", k, err)
	}
	if _, err := ParseOpKind("bogus"); err == nil {
		t.Fatal("expected error for unknown op")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := paperExample()
	c := g.Clone()
	c.AddNode("extra", OpMul)
	if g.NumNodes() == c.NumNodes() {
		t.Fatal("clone must be independent")
	}
	if err := c.Validate(); err == nil {
		// extra node is disconnected -> Validate must fail.
		t.Fatal("expected connectivity error after adding isolated node")
	}
}

func TestComputeMetrics(t *testing.T) {
	g := paperExample()
	m := ComputeMetrics(g)
	if m.Nodes != 10 || m.Edges != 12 {
		t.Fatalf("size wrong: %+v", m)
	}
	if m.CriticalPath != 3 || m.Width != 4 {
		t.Fatalf("cp/width wrong: %+v", m)
	}
	if m.MaxFanout != 4 { // node B
		t.Fatalf("max fanout = %d, want 4", m.MaxFanout)
	}
	if m.Density <= 0 || m.Density > 1 {
		t.Fatalf("density out of range: %v", m.Density)
	}
	if m.SameLevelPairs == 0 {
		t.Fatal("same-level pairs missing")
	}
}
