// Package registry caches one trained GNN model per architecture. It
// generalizes the experiment grid's Context.ModelFor pattern so the
// long-lived serving daemon and the experiment runners share one
// implementation: models can be pre-loaded from disk at startup (offline
// training, the paper's intended deployment) or trained lazily on first
// use, and concurrent callers for one target always observe exactly one
// training run.
//
// Each architecture slot is a small state machine (idle → busy → ready |
// failed) rather than a sync.Once: a training run that errors or panics
// parks the slot in failed with the cause cached, where it answers every
// subsequent request instantly instead of wedging callers or silently
// retraining on each hit. Failed slots heal through Put (a later offline
// model wins) or an explicit Retry (the daemon's reload path).
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/traingen"
)

// ErrAlreadyLoaded marks a LoadFile that lost to an existing model for the
// same architecture — expected (and skippable) on a reload rescan.
var ErrAlreadyLoaded = errors.New("model already registered")

// Provenance records how a slot's model was obtained — the degradation
// ladder rung that answered: fetched from a ring peer, trained locally, or
// pre-loaded from disk. Surfaced per arch on /v1/archs and aggregated in
// /metrics.
type Provenance string

const (
	ProvLoaded  Provenance = "loaded"  // pre-loaded from a model file (or Put)
	ProvTrained Provenance = "trained" // trained locally on demand
	ProvShipped Provenance = "shipped" // fetched from a ring peer's /v1/model
)

// Permanent marks err as non-retryable: re-running the work that produced
// it returns the same answer until an operator intervenes (a peer serving a
// corrupt or version-skewed model payload, say — re-fetching gets the same
// bad bytes). The registry parks permanent fetch failures in the failed
// state, where they answer instantly until Retry or Put heals the slot;
// unmarked (transport-class) failures leave the slot idle so the next
// request simply tries again.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// IsPermanent reports whether err (or anything it wraps) was marked by
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// FetchFunc obtains a trained model for an architecture name from outside
// this process — in the daemon, from the ring owner's /v1/model endpoint.
// It returns the model, the source it came from (a peer URL), and an error
// optionally marked Permanent to control the retry policy.
type FetchFunc func(name string) (*gnn.Model, string, error)

// Config sets the budgets used when a model must be trained on demand.
type Config struct {
	TrainGen traingen.Config // dataset generation (§V)
	TrainCfg gnn.TrainConfig // four-network training (§IV)
	Seed     int64
	// Workers fans dataset generation out; 0 defers to TrainGen.Workers.
	Workers int
	// TrainOnDemand permits lazy training when no model was pre-loaded for
	// a requested architecture. When false, ModelFor returns an error for
	// such targets instead of spending minutes training inside a request.
	TrainOnDemand bool
}

// Registry holds at most one model per architecture name.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	fetch   FetchFunc
	ctr     Counters
}

// Counters aggregates the registry's model-acquisition activity for
// /metrics. TrainRuns counts local training attempts (successful or not),
// Fetches counts models installed from a peer, FetchErrors counts failed
// fetch attempts.
type Counters struct {
	TrainRuns   int64 `json:"trainRuns"`
	Fetches     int64 `json:"fetches"`
	FetchErrors int64 `json:"fetchErrors"`
}

// trainState is the lifecycle of one architecture slot.
type trainState int

const (
	stateIdle   trainState = iota // nothing resolved, no training in flight
	stateBusy                     // one training run in flight; wait on done
	stateReady                    // model resolved
	stateFailed                   // last training attempt failed; err cached
)

// entry is the per-architecture slot.
type entry struct {
	state trainState
	done  chan struct{} // closed when the in-flight resolution settles (busy only)
	model *gnn.Model
	stats traingen.Stats
	err   error

	prov     Provenance // how model was obtained (ready slots)
	source   string     // peer URL a shipped model came from
	fetchErr error      // last failed fetch attempt; kept across idle retries for /v1/archs
}

// New creates an empty registry.
func New(cfg Config) *Registry {
	return &Registry{cfg: cfg, entries: make(map[string]*entry)}
}

// ensure returns the slot for name, creating an idle one. r.mu must be held.
func (r *Registry) ensure(name string) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{}
		r.entries[name] = e
	}
	return e
}

// Put registers a pre-trained model under its architecture name. It wins
// over idle and failed slots (healing a cached training failure) and loses
// to a ready model or an in-flight training run, returning false.
func (r *Registry) Put(m *gnn.Model) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.ensure(m.ArchName)
	switch e.state {
	case stateReady, stateBusy:
		return false
	}
	e.state = stateReady
	e.model = m
	e.stats = traingen.Stats{}
	e.err = nil
	e.prov = ProvLoaded
	e.source = ""
	e.fetchErr = nil
	return true
}

// SetFetch installs the external model source consulted before local
// training — the daemon wires the cluster's owner-fetch here. Must be set
// before the registry takes traffic.
func (r *Registry) SetFetch(fn FetchFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fetch = fn
}

// Counters snapshots the acquisition counters.
func (r *Registry) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctr
}

// Info is the observable state of one architecture slot for /v1/archs.
type Info struct {
	Ready      bool
	Provenance Provenance // set when Ready
	Source     string     // peer URL, shipped models only
	Err        error      // cached failure of a failed slot
	FetchErr   error      // last failed fetch attempt, if any
}

// InfoFor reports how name's slot got (or failed to get) its model.
func (r *Registry) InfoFor(name string) Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return Info{}
	}
	info := Info{FetchErr: e.fetchErr}
	switch e.state {
	case stateReady:
		info.Ready = true
		info.Provenance = e.prov
		info.Source = e.source
	case stateFailed:
		info.Err = e.err
	}
	return info
}

// ProvenanceCounts tallies ready slots by how their model was obtained.
func (r *Registry) ProvenanceCounts() map[Provenance]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[Provenance]int{}
	//lisa:vet-ok maprange integer counters keyed by provenance; addition is commutative, order cannot change the tally
	for _, e := range r.entries {
		if e.state == stateReady {
			out[e.prov]++
		}
	}
	return out
}

// ModelBytes serializes name's resolved model with gnn.Save — the payload
// of the daemon's /v1/model endpoint. Slots that are not ready return an
// error; the endpoint maps it to 404 rather than resolving on demand, so a
// model fetch can never cascade into training on the serving peer.
func (r *Registry) ModelBytes(name string) ([]byte, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok || e.state != stateReady {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: no resolved model for %q", name)
	}
	m := e.model
	r.mu.Unlock()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, fmt.Errorf("registry: serializing model for %q: %w", name, err)
	}
	return buf.Bytes(), nil
}

// LoadFile reads one model file saved by lisa-train / gnn.Save and registers
// it, returning the architecture name it serves.
func (r *Registry) LoadFile(path string) (string, error) {
	if err := fault.Inject(fault.RegistryLoad, fault.Token(path)); err != nil {
		return "", fmt.Errorf("registry: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer func() { _ = f.Close() }() // read-only open: nothing to recover from a close error
	m, err := gnn.Load(f, gnn.NewModel(rand.New(rand.NewSource(1)), ""))
	if err != nil {
		return "", fmt.Errorf("registry: %s: %w", path, err)
	}
	if m.ArchName == "" {
		return "", fmt.Errorf("registry: %s: model file names no architecture", path)
	}
	if !r.Put(m) {
		return m.ArchName, fmt.Errorf("registry: %s: model for %q: %w", path, m.ArchName, ErrAlreadyLoaded)
	}
	return m.ArchName, nil
}

// LoadDir registers every *.json model file in dir (the lisa-train output
// convention) and returns the architecture names loaded, sorted. Files that
// fail to parse or collide with an already-registered architecture abort the
// load: a serving daemon must not come up half-configured.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var names []string
	for _, path := range files {
		name, err := r.LoadFile(path)
		if err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Ready lists the architecture names whose model is already resolved,
// sorted. Targets that would still need on-demand training are absent.
func (r *Registry) Ready() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name, e := range r.entries {
		if e.state == stateReady {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Has reports whether a resolved model exists for the architecture name.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return ok && e.state == stateReady
}

// Err returns the cached error of a failed slot, nil otherwise. It lets the
// daemon's /v1/archs report *why* a target has no model without re-running
// the failed training.
func (r *Registry) Err(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.state != stateFailed {
		return nil
	}
	return e.err
}

// Retry clears a failed slot back to idle so the next ModelFor may train
// again, reporting whether there was a cached failure to clear. This is the
// one deliberate way to spend a second training attempt on a poisoned
// target (the daemon's reload path); ordinary requests only ever pay once.
func (r *Registry) Retry(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.state != stateFailed {
		return false
	}
	e.state = stateIdle
	e.err = nil
	e.fetchErr = nil
	return true
}

// ModelFor returns the model for ar, resolving it on first use down the
// degradation ladder: fetch from the configured external source (SetFetch —
// the ring owner's serialized model), then local training when the config
// allows (training-data generation + four-network training, §V and §IV),
// then an error. Safe for concurrent use; the busy state singleflights
// resolution, so N concurrent callers for one architecture trigger one
// fetch and at most one training run.
//
// Failure caching follows the error class. A failed training run or a
// Permanent fetch failure (corrupt or version-skewed payload — re-fetching
// returns the same bytes) parks the slot in failed, where it answers every
// later call instantly until Put or Retry heals it. A transport-class fetch
// failure with no training fallback leaves the slot idle: the next request
// simply retries, which is cheap because the cluster's backoff gating
// answers ErrPeerDown without a dial while the peer stays down.
func (r *Registry) ModelFor(ar arch.Arch) (*gnn.Model, error) {
	name := ar.Name()
	for {
		r.mu.Lock()
		e := r.ensure(name)
		switch e.state {
		case stateReady:
			m := e.model
			r.mu.Unlock()
			return m, nil
		case stateFailed:
			err := e.err
			r.mu.Unlock()
			return nil, err
		case stateBusy:
			done := e.done
			r.mu.Unlock()
			<-done
			continue // re-read the settled state
		}
		// Idle: resolve here, or report that no rung of the ladder may run.
		fetch := r.fetch
		if fetch == nil && !r.cfg.TrainOnDemand {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: no model loaded for %q and on-demand training is disabled", name)
		}
		e.state = stateBusy
		e.done = make(chan struct{})
		r.mu.Unlock()

		m, stats, prov, source, err := r.resolve(fetch, ar)

		r.mu.Lock()
		switch {
		case m != nil:
			e.state = stateReady
			e.model, e.stats, e.err = m, stats, nil
			e.prov, e.source = prov, source
			if prov == ProvShipped {
				// A trained install keeps the fetch trace: /v1/archs then
				// explains why the ladder fell through to local training.
				e.fetchErr = nil
			}
		case IsPermanent(err) || prov == ProvTrained:
			// Training failures and permanent fetch failures cache: re-running
			// them returns the same answer at real cost.
			e.state = stateFailed
			e.err = err
		default:
			// Transport-class fetch failure, no training fallback: back to
			// idle so the next request retries against a possibly-healed ring.
			e.state = stateIdle
			e.err = nil
		}
		close(e.done)
		e.done = nil
		r.mu.Unlock()
		if m == nil {
			return nil, err
		}
	}
}

// resolve runs the acquisition ladder outside the registry lock and
// reports what it got: the model plus its provenance, or the error of the
// last rung tried (prov then tells the caller which rung failed).
func (r *Registry) resolve(fetch FetchFunc, ar arch.Arch) (*gnn.Model, traingen.Stats, Provenance, string, error) {
	name := ar.Name()
	var fetchErr error
	if fetch != nil {
		m, source, err := fetch(name)
		r.mu.Lock()
		if err == nil {
			r.ctr.Fetches++
			r.mu.Unlock()
			return m, traingen.Stats{}, ProvShipped, source, nil
		}
		r.ctr.FetchErrors++
		r.entries[name].fetchErr = err // slot exists and is busy-held by us
		r.mu.Unlock()
		fetchErr = err
	}
	if !r.cfg.TrainOnDemand {
		if fetchErr != nil {
			return nil, traingen.Stats{}, ProvShipped, "", fetchErr
		}
		return nil, traingen.Stats{}, "", "", fmt.Errorf("registry: no model loaded for %q and on-demand training is disabled", name)
	}
	r.mu.Lock()
	r.ctr.TrainRuns++
	r.mu.Unlock()
	m, stats, err := r.train(ar)
	if err != nil {
		return nil, traingen.Stats{}, ProvTrained, "", err
	}
	return m, stats, ProvTrained, "", nil
}

// train runs one on-demand training pass outside the registry lock. A panic
// anywhere in generation or training (an injected fault or an organic bug)
// becomes the slot's cached error instead of a crashed caller.
func (r *Registry) train(ar arch.Arch) (m *gnn.Model, stats traingen.Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, stats = nil, traingen.Stats{}
			err = fmt.Errorf("registry: training for %q panicked: %v", ar.Name(), rec)
		}
	}()
	if err := fault.Inject(fault.GNNTrain, fault.Token(ar.Name())); err != nil {
		return nil, traingen.Stats{}, fmt.Errorf("registry: training for %q: %w", ar.Name(), err)
	}
	cfg := r.cfg.TrainGen
	cfg.Seed = r.cfg.Seed
	if cfg.Workers == 0 {
		cfg.Workers = r.cfg.Workers
	}
	// An empty sample set leaves the model at its random init — the
	// label engines degrade gracefully, matching the experiment grid's
	// historical behavior under tiny smoke-test budgets.
	ds := traingen.Generate(ar, cfg)
	model := gnn.NewModel(rand.New(rand.NewSource(r.cfg.Seed)), ar.Name())
	model.Train(ds.Samples, r.cfg.TrainCfg)
	return model, ds.Stats, nil
}

// StatsFor reports the dataset-generation stats behind ar's model, training
// it on first use like ModelFor. Pre-loaded models carry no stats.
func (r *Registry) StatsFor(ar arch.Arch) (traingen.Stats, error) {
	if _, err := r.ModelFor(ar); err != nil {
		return traingen.Stats{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ensure(ar.Name()).stats, nil
}

// LabelsFor predicts the four mapper labels for g using ar's model; it is
// the engine.LabelSource the daemon and CLIs hand to engine.Run, so a
// training failure surfaces there as the ladder's labels-unavailable rung
// rather than an aborted request.
func (r *Registry) LabelsFor(ar arch.Arch, g *dfg.Graph) (*labels.Labels, error) {
	m, err := r.ModelFor(ar)
	if err != nil {
		return nil, err
	}
	return m.Predict(attr.Generate(g))
}

// LabelsForBatch predicts the four mapper labels for many DFGs on one
// architecture in a single fused inference pass: all nodes/edges of the
// batch share one set of dense matmuls (gnn.Model.PredictBatch), so the
// per-DFG cost amortizes the model walk. Output is byte-identical to
// calling LabelsFor per graph.
func (r *Registry) LabelsForBatch(ar arch.Arch, gs []*dfg.Graph) ([]*labels.Labels, error) {
	m, err := r.ModelFor(ar)
	if err != nil {
		return nil, err
	}
	sets := make([]*attr.Set, len(gs))
	for i, g := range gs {
		sets[i] = attr.Generate(g)
	}
	return m.PredictBatch(sets)
}

// String summarizes the registry for logs.
func (r *Registry) String() string {
	names := r.Ready()
	if len(names) == 0 {
		return "registry: no models resolved"
	}
	return "registry: models for " + strings.Join(names, ", ")
}
