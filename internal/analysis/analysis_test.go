package analysis

import (
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// goldenCases pairs each analyzer with a fixture package seeded with
// violations (and non-violations) and the golden transcript of the
// diagnostics it must produce.
var goldenCases = []struct {
	name      string // also the golden file stem
	fixture   string // dir under testdata/src/internal/
	asPath    string // import path the fixture poses as
	imports   []string
	analyzers []*Analyzer
}{
	{
		name:      "maprange",
		fixture:   "mapper",
		asPath:    "example.com/fixture/internal/mapper",
		imports:   []string{"sort", "time"},
		analyzers: []*Analyzer{MapRange},
	},
	{
		name:      "wallclock",
		fixture:   "mapper",
		asPath:    "example.com/fixture/internal/mapper",
		imports:   []string{"sort", "time"},
		analyzers: []*Analyzer{WallClock},
	},
	{
		name:      "globalrand",
		fixture:   "randfix",
		asPath:    "example.com/fixture/internal/randfix",
		imports:   []string{"math/rand"},
		analyzers: []*Analyzer{GlobalRand},
	},
	{
		name:      "errdrop",
		fixture:   "errfix",
		asPath:    "example.com/fixture/internal/errfix",
		imports:   []string{"fmt", "os", "strings"},
		analyzers: []*Analyzer{ErrDrop},
	},
	{
		name:      "suppression",
		fixture:   "suppressfix",
		asPath:    "example.com/fixture/internal/suppressfix",
		analyzers: []*Analyzer{MapRange},
	},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", "internal", tc.fixture)
			pkg, err := LoadFixture(dir, tc.asPath, tc.imports)
			if err != nil {
				t.Fatalf("LoadFixture(%s): %v", dir, err)
			}
			diags := Run([]*Package{pkg}, tc.analyzers)
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; each fixture must seed at least one violation", tc.fixture)
			}
			var b strings.Builder
			for _, d := range diags {
				// Keep goldens machine-independent: base name only.
				d.File = filepath.Base(d.File)
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/analysis -run TestGolden -update`): %v", err)
			}
			if want := string(wantBytes); got != want {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixturesFailViaRealLoader drives the production Load path (go list
// -export) over every fixture package and checks the full analyzer set finds
// the seeded violations — this is the in-process version of the CI gate that
// `lisa-vet` exits nonzero on each fixture.
func TestFixturesFailViaRealLoader(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	patterns := []string{
		"./internal/analysis/testdata/src/internal/mapper",
		"./internal/analysis/testdata/src/internal/randfix",
		"./internal/analysis/testdata/src/internal/errfix",
		"./internal/analysis/testdata/src/internal/suppressfix",
	}
	pkgs, err := Load("../..", patterns)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != len(patterns) {
		t.Fatalf("Load returned %d packages, want %d", len(pkgs), len(patterns))
	}
	for _, pkg := range pkgs {
		diags := Run([]*Package{pkg}, All)
		if len(diags) == 0 {
			t.Errorf("%s: no diagnostics from seeded-violation fixture", pkg.Path)
		}
	}
}

// TestCollectSuppressions covers the comment-scanning corner cases directly.
func TestCollectSuppressions(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //lisa:nondet-ok with a reason
	//lisa:nondet-ok
	_ = 2
	_ = 3 //lisa:nondet-okay different marker, not ours
	_ = 4 // lisa:nondet-ok leading space still counts
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got := collectSuppressions(fset, file)
	want := []struct {
		line   int
		reason string
	}{
		{4, "with a reason"},
		{5, ""},
		{8, "leading space still counts"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d suppressions, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].line != w.line || got[i].reason != w.reason {
			t.Errorf("suppression %d = line %d reason %q, want line %d reason %q",
				i, got[i].line, got[i].reason, w.line, w.reason)
		}
	}
}

// TestSuppressedLineAbove checks that a standalone comment suppresses the
// statement directly below it but not two lines down.
func TestSuppressedLineAbove(t *testing.T) {
	pkg := &Package{suppressions: []suppression{{file: "f.go", line: 10, reason: "x"}}}
	for _, tc := range []struct {
		line int
		want bool
	}{{10, true}, {11, true}, {12, false}, {9, false}} {
		d := Diagnostic{File: "f.go", Line: tc.line}
		if got := pkg.suppressed(d); got != tc.want {
			t.Errorf("suppressed(line %d) = %v, want %v", tc.line, got, tc.want)
		}
	}
}

func TestPathHasSuffix(t *testing.T) {
	for _, tc := range []struct {
		path, suffix string
		want         bool
	}{
		{"internal/mapper", "internal/mapper", true},
		{"github.com/lisa-go/lisa/internal/mapper", "internal/mapper", true},
		{"github.com/lisa-go/lisa/internal/remapper", "internal/mapper", false},
		{"example.com/x/testdata/src/internal/mapper", "internal/mapper", true},
	} {
		if got := pathHasSuffix(tc.path, tc.suffix); got != tc.want {
			t.Errorf("pathHasSuffix(%q, %q) = %v, want %v", tc.path, tc.suffix, got, tc.want)
		}
	}
}
