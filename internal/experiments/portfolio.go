package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/parallel"
)

// PortfolioSweep compares mapping quality and wall-clock across portfolio
// widths (mapper.Options.Restarts) at a fixed per-chain movement budget.
// It is the quality-vs-wallclock companion to BenchmarkMapperPortfolio:
// chain 0 of every portfolio is exactly the K=1 run, so quality is
// monotone in K by construction, while wall-clock grows with the number
// of chains that do not fit the machine's cores.
type PortfolioSweep struct {
	Arch    arch.Arch
	Ks      []int
	Kernels []string
	Rows    []PortfolioRow
}

// PortfolioRow holds one kernel's cells, keyed by portfolio width.
type PortfolioRow struct {
	Kernel string
	Cells  map[int]PortfolioCell
}

// PortfolioCell is one (kernel, K) measurement.
type PortfolioCell struct {
	OK       bool
	II       int
	Hops     int // total route hops across DFG edges (valid when OK)
	Winner   int // index of the winning chain (0 for K=1)
	Variant  string
	Duration time.Duration
}

// DefaultPortfolioKs is the width ladder reported in EXPERIMENTS.md.
var DefaultPortfolioKs = []int{1, 2, 4, 8}

// Portfolio maps every kernel with the LISA engine at each width in ks
// (DefaultPortfolioKs if empty) on ar. Each (kernel, K) cell is an
// independent mapper.Map call with the profile's seed, so cells are
// deterministic and scheduling-independent; the grid fans out over
// Profile.Workers like the other figures.
func (c *Context) Portfolio(ar arch.Arch, kernelNames []string, ks []int) *PortfolioSweep {
	if len(ks) == 0 {
		ks = append([]int(nil), DefaultPortfolioKs...)
	}
	if len(kernelNames) == 0 {
		kernelNames = kernels.Names()
	}
	sw := &PortfolioSweep{Arch: ar, Ks: ks, Kernels: kernelNames}
	sw.Rows = make([]PortfolioRow, len(kernelNames))

	type cellKey struct{ kernel, k int }
	grid := make([]cellKey, 0, len(kernelNames)*len(ks))
	for ki := range kernelNames {
		sw.Rows[ki] = PortfolioRow{Kernel: kernelNames[ki], Cells: map[int]PortfolioCell{}}
		for wi := range ks {
			grid = append(grid, cellKey{ki, wi})
		}
	}
	cells := make([]PortfolioCell, len(grid))

	// Train (or fetch) the model once up front so concurrent cells don't
	// serialize on the registry's per-architecture lock.
	c.ModelFor(ar)

	parallel.ForEach(c.Profile.Workers, len(grid), func(i int) {
		gk := grid[i]
		g := kernels.MustByName(kernelNames[gk.kernel])
		lbl := c.predictLabels(ar, g)
		opts := c.Profile.MapOpts
		opts.Seed = c.Profile.Seed
		opts.Restarts = ks[gk.k]
		res, err := mapper.Map(ar, g, mapper.AlgLISA, lbl, opts)
		if err != nil {
			cells[i] = PortfolioCell{}
			return
		}
		cell := PortfolioCell{OK: res.OK, II: res.II, Duration: res.Duration}
		if res.OK {
			for _, h := range res.EdgeHops {
				cell.Hops += h
			}
		}
		if res.Portfolio != nil {
			cell.Winner = res.Portfolio.Winner
			cell.Variant = res.Portfolio.Variant
		}
		cells[i] = cell
	})
	for i, gk := range grid {
		sw.Rows[gk.kernel].Cells[ks[gk.k]] = cells[i]
	}
	return sw
}

// Render writes the quality-vs-wallclock table: per kernel, II at each
// width, then the geomean wall-clock ratio of each width against K=1.
func (sw *PortfolioSweep) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Portfolio annealing — %s, LISA engine (II / total route hops; 0 = cannot map)\n", sw.Arch.Name())
	fmt.Fprintf(&b, "%-12s", "kernel")
	for _, k := range sw.Ks {
		fmt.Fprintf(&b, "%14s", fmt.Sprintf("K=%d", k))
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range sw.Rows {
		fmt.Fprintf(&b, "%-12s", r.Kernel)
		for _, k := range sw.Ks {
			cell := r.Cells[k]
			if cell.OK {
				fmt.Fprintf(&b, "%14s", fmt.Sprintf("%d / %d", cell.II, cell.Hops))
			} else {
				fmt.Fprintf(&b, "%14s", "0")
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, k := range sw.Ks {
		if k == 1 {
			continue
		}
		imp, ratio := sw.Against(1, k)
		fmt.Fprintf(&b, "K=%d vs K=1: II improved on %d/%d kernels, wall-clock x%.2f\n",
			k, imp, len(sw.Rows), ratio)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Against compares width k against width base: the number of kernels where
// k achieves a strictly lower II (or maps where base cannot), and the
// median per-kernel wall-clock ratio k/base. Median rather than mean keeps
// one slow kernel from dominating the single summary number.
func (sw *PortfolioSweep) Against(base, k int) (improved int, clockRatio float64) {
	var ratios []float64
	for _, r := range sw.Rows {
		cb, ck := r.Cells[base], r.Cells[k]
		if ck.OK && (!cb.OK || ck.II < cb.II) {
			improved++
		}
		if cb.Duration > 0 && ck.Duration > 0 {
			ratios = append(ratios, float64(ck.Duration)/float64(cb.Duration))
		}
	}
	if len(ratios) == 0 {
		return improved, 0
	}
	sort.Float64s(ratios)
	return improved, ratios[len(ratios)/2]
}
