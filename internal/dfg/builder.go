package dfg

// Builder is a small fluent helper for hand-lowering loop-kernel bodies into
// DFGs. The kernels package uses it to express PolyBench loop bodies the way
// a compiler front end would lower them: loads feed address arithmetic and
// compute ops, stores consume results.
type Builder struct {
	g *Graph
}

// NewBuilder starts a new DFG with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: New(name)}
}

// Value is a handle to the node producing a value inside a Builder program.
type Value struct{ id int }

// ID exposes the underlying node ID (useful in tests).
func (v Value) ID() int { return v.id }

// Const introduces a constant/loop-invariant value (e.g. a base address or a
// scalar kept in a register).
func (b *Builder) Const(name string) Value {
	return Value{b.g.AddNode(name, OpConst)}
}

// Load reads memory at the given address value.
func (b *Builder) Load(name string, addr Value) Value {
	id := b.g.AddNode(name, OpLoad)
	b.g.AddEdge(addr.id, id)
	return Value{id}
}

// Store writes val to memory at addr. Stores are DFG sinks.
func (b *Builder) Store(name string, addr, val Value) Value {
	id := b.g.AddNode(name, OpStore)
	b.g.AddEdge(addr.id, id)
	b.g.AddEdge(val.id, id)
	return Value{id}
}

// binary adds a two-input ALU node.
func (b *Builder) binary(name string, op OpKind, x, y Value) Value {
	id := b.g.AddNode(name, op)
	b.g.AddEdge(x.id, id)
	b.g.AddEdge(y.id, id)
	return Value{id}
}

// Add returns x+y.
func (b *Builder) Add(name string, x, y Value) Value { return b.binary(name, OpAdd, x, y) }

// Sub returns x-y.
func (b *Builder) Sub(name string, x, y Value) Value { return b.binary(name, OpSub, x, y) }

// Mul returns x*y.
func (b *Builder) Mul(name string, x, y Value) Value { return b.binary(name, OpMul, x, y) }

// Div returns x/y.
func (b *Builder) Div(name string, x, y Value) Value { return b.binary(name, OpDiv, x, y) }

// Shl returns x<<y; kernels use it for strength-reduced row addressing.
func (b *Builder) Shl(name string, x, y Value) Value { return b.binary(name, OpShl, x, y) }

// Cmp compares x and y.
func (b *Builder) Cmp(name string, x, y Value) Value { return b.binary(name, OpCmp, x, y) }

// Select returns a 3-input select(cond, x, y).
func (b *Builder) Select(name string, cond, x, y Value) Value {
	id := b.g.AddNode(name, OpSelect)
	b.g.AddEdge(cond.id, id)
	b.g.AddEdge(x.id, id)
	b.g.AddEdge(y.id, id)
	return Value{id}
}

// Addr computes base + offset, the canonical address-arithmetic node.
func (b *Builder) Addr(name string, base, offset Value) Value {
	return b.binary(name, OpAdd, base, offset)
}

// Graph finishes the build and returns the DFG.
func (b *Builder) Graph() *Graph { return b.g }
