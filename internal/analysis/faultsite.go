package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// FaultSite cross-checks the chaos inventory: the Site constants declared
// in internal/fault, the list Sites() advertises to the chaos suite, and
// the fault.Inject call sites across the whole tree must agree —
//
//   - every registered Site constant has exactly one Inject call site
//     (a site with zero calls is dead inventory the chaos suite believes
//     it is arming; a site with several calls makes one injection plan
//     fire in places the suite never intended);
//   - every Inject call names a registered Site constant (no raw string
//     literals that silently miss the registry);
//   - every Site constant appears in the Sites() listing, so the suite's
//     "arm everything" loop cannot silently skip one.
//
// This is a whole-program analyzer: it needs the fault package and its
// callers in the same load. When the loaded set contains no Inject call at
// all (e.g. `lisa-vet ./internal/fault` alone), the per-site call-count
// checks are skipped — otherwise every site would be reported missing.
var FaultSite = &Analyzer{
	Name:      "faultsite",
	Doc:       "fault-injection sites: registry, Sites() listing, and Inject call sites must agree 1:1",
	RunGlobal: runFaultSite,
}

func runFaultSite(gp *GlobalPass) {
	for _, pkg := range gp.Pkgs {
		if pathHasSuffix(pkg.Path, "internal/fault") {
			checkFaultPackage(gp, pkg)
		}
	}
}

type injectCall struct {
	pkg  *Package
	pos  token.Pos
	site string // constant name; "" if the argument is not a registered constant
	arg  ast.Expr
}

func checkFaultPackage(gp *GlobalPass, faultPkg *Package) {
	// The registered sites: package-level constants of the named type Site.
	siteType := faultPkg.Types.Scope().Lookup("Site")
	if siteType == nil {
		return
	}
	// Site constants are keyed by name: callers in other packages resolve
	// them through export data, so their types.Object identities differ
	// from the source-checked fault package's.
	var sites []*types.Const
	registered := map[string]bool{}
	for _, name := range faultPkg.Types.Scope().Names() { // Names() is sorted
		c, ok := faultPkg.Types.Scope().Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), siteType.Type()) {
			continue
		}
		sites = append(sites, c)
		registered[c.Name()] = true
	}
	if len(sites) == 0 {
		return
	}

	// What Sites() advertises.
	listed, haveListing := sitesListing(faultPkg)

	// Every Inject call in the loaded set, in load order (deterministic).
	var calls []injectCall
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fn := pkg.calleeFunc(call)
				if fn == nil || fn.Name() != "Inject" || fn.Pkg() == nil || fn.Pkg().Path() != faultPkg.Path {
					return true
				}
				ic := injectCall{pkg: pkg, pos: call.Pos(), arg: call.Args[0]}
				if obj := constOf(pkg, call.Args[0]); obj != nil &&
					obj.Pkg() != nil && obj.Pkg().Path() == faultPkg.Path && registered[obj.Name()] {
					ic.site = obj.Name()
				}
				calls = append(calls, ic)
				return true
			})
		}
	}

	for _, c := range calls {
		if c.site == "" {
			gp.Reportf(c.pkg, c.arg.Pos(),
				"Inject must be called with a registered Site constant, not %s; raw strings bypass the chaos inventory",
				types.ExprString(c.arg))
		}
	}

	bySite := map[string][]injectCall{}
	for _, c := range calls {
		if c.site != "" {
			bySite[c.site] = append(bySite[c.site], c)
		}
	}

	for _, site := range sites {
		if haveListing && !listed[site.Name()] {
			gp.Reportf(faultPkg, site.Pos(),
				"fault site %s is registered but missing from Sites(); the chaos suite's arm-everything loop will skip it",
				site.Name())
		}
		uses := bySite[site.Name()]
		if len(calls) == 0 {
			continue // fault package analyzed without its callers: counts unknowable
		}
		if len(uses) == 0 {
			gp.Reportf(faultPkg, site.Pos(),
				"fault site %s has no Inject call site in the analyzed tree; dead chaos inventory (site constant %q)",
				site.Name(), site.Val().String())
			continue
		}
		sort.Slice(uses, func(i, j int) bool {
			pi := uses[i].pkg.Fset.Position(uses[i].pos)
			pj := uses[j].pkg.Fset.Position(uses[j].pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			return pi.Line < pj.Line
		})
		first := uses[0].pkg.Fset.Position(uses[0].pos)
		for _, dup := range uses[1:] {
			gp.Reportf(dup.pkg, dup.pos,
				"fault site %s is injected at %d call sites; one injection plan should fire in exactly one place (first site at %s:%d)",
				site.Name(), len(uses), filepath.Base(first.Filename), first.Line)
		}
	}
}

// sitesListing resolves the constant names returned by the fault package's
// Sites() function.
func sitesListing(faultPkg *Package) (map[string]bool, bool) {
	for _, f := range faultPkg.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Name.Name != "Sites" || decl.Recv != nil || decl.Body == nil {
				continue
			}
			listed := map[string]bool{}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				for _, el := range lit.Elts {
					if obj := constOf(faultPkg, el); obj != nil {
						listed[obj.Name()] = true
					}
				}
				return true
			})
			return listed, true
		}
	}
	return nil, false
}

// constOf resolves e to the constant object it names, if any.
func constOf(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if c, ok := pkg.Info.ObjectOf(x).(*types.Const); ok {
			return c
		}
	case *ast.SelectorExpr:
		if c, ok := pkg.Info.ObjectOf(x.Sel).(*types.Const); ok {
			return c
		}
	}
	return nil
}
