package arch

// PaperTargets returns the six accelerators of the paper's evaluation in the
// order they are introduced in §VI.
func PaperTargets() []Arch {
	return []Arch{
		NewBaseline4x4(),
		NewBaseline8x8(),
		NewBaseline3x3(),
		NewLessRouting4x4(),
		NewLessMem4x4(),
		NewSystolic5x5(),
	}
}

// ByName resolves an architecture by its Name string; the CLI tools use it.
func ByName(name string) (Arch, bool) {
	for _, a := range PaperTargets() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Names lists the available architecture names.
func Names() []string {
	ts := PaperTargets()
	out := make([]string, len(ts))
	for i, a := range ts {
		out[i] = a.Name()
	}
	return out
}
