package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		p, err := ParsePlan("  ", 7)
		if err != nil || p != nil {
			t.Fatalf("empty spec: got %v, %v", p, err)
		}
	})
	t.Run("full", func(t *testing.T) {
		p, err := ParsePlan("mapper.anneal=error:1, cache.get=latency:0.5:50ms,pool.submit=panic:0.25", 42)
		if err != nil {
			t.Fatal(err)
		}
		if p.Seed != 42 || len(p.Sites) != 3 {
			t.Fatalf("plan = %+v", p)
		}
		if c := p.Sites[MapperAnneal]; c.Mode != ModeError || c.Prob != 1 {
			t.Errorf("mapper.anneal = %+v", c)
		}
		if c := p.Sites[CacheGet]; c.Mode != ModeLatency || c.Latency != 50*time.Millisecond {
			t.Errorf("cache.get = %+v", c)
		}
		if c := p.Sites[PoolSubmit]; c.Mode != ModePanic || c.Prob != 0.25 {
			t.Errorf("pool.submit = %+v", c)
		}
	})
	for _, bad := range []string{
		"nope=error:1",                                // unknown site
		"mapper.anneal=boom:1",                        // unknown mode
		"mapper.anneal=error:2",                       // probability out of range
		"mapper.anneal=error:x",                       // unparsable probability
		"mapper.anneal=latency:1",                     // latency without duration
		"mapper.anneal=error:1:50ms",                  // latency field on non-latency mode
		"mapper.anneal",                               // no '='
		"mapper.anneal=error:1,mapper.anneal=error:1", // duplicate
	} {
		if _, err := ParsePlan(bad, 1); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

func TestInjectDisabledIsNil(t *testing.T) {
	Deactivate()
	for _, site := range Sites() {
		if err := Inject(site, 123); err != nil {
			t.Fatalf("disabled Inject(%s) = %v", site, err)
		}
	}
}

func TestInjectModes(t *testing.T) {
	defer Deactivate()
	plan := &Plan{Seed: 1, Sites: map[Site]SiteConfig{
		MapperAnneal: {Prob: 1, Mode: ModeError},
		PoolSubmit:   {Prob: 1, Mode: ModePanic},
		CacheGet:     {Prob: 1, Mode: ModeLatency, Latency: time.Millisecond},
	}}
	if err := Activate(plan); err != nil {
		t.Fatal(err)
	}

	err := Inject(MapperAnneal, 9)
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != MapperAnneal {
		t.Fatalf("error mode: got %v", err)
	}

	func() {
		defer func() {
			r := recover()
			pv, ok := r.(*PanicValue)
			if !ok || pv.Site != PoolSubmit {
				t.Errorf("panic mode: recovered %v", r)
			}
		}()
		_ = Inject(PoolSubmit, 9)
		t.Error("panic mode did not panic")
	}()

	if err := Inject(CacheGet, 9); err != nil {
		t.Fatalf("latency mode returned %v", err)
	}
	// Unarmed site stays silent even with a plan active.
	if err := Inject(GNNTrain, 9); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}

	c := Counts()
	if c[MapperAnneal] != 1 || c[PoolSubmit] != 1 || c[CacheGet] != 1 || c[GNNTrain] != 0 {
		t.Fatalf("counts = %v", c)
	}
}

// TestDecideDeterministic pins the core reproducibility contract: the fire
// decision is a pure function of (seed, site, token).
func TestDecideDeterministic(t *testing.T) {
	for _, prob := range []float64{0.1, 0.5, 0.9} {
		for token := uint64(0); token < 64; token++ {
			a := decide(42, MapperAnneal, token, prob)
			for i := 0; i < 3; i++ {
				if b := decide(42, MapperAnneal, token, prob); a != b {
					t.Fatalf("decide(42, anneal, %d, %g) flapped", token, prob)
				}
			}
		}
	}
}

// TestDecideDistribution checks the splitmix64 stream roughly honours the
// probability across tokens (the "per-request stream" property: different
// requests draw independent decisions).
func TestDecideDistribution(t *testing.T) {
	const n = 4000
	fired := 0
	for token := uint64(0); token < n; token++ {
		if decide(7, CacheGet, token, 0.5) {
			fired++
		}
	}
	if fired < n*4/10 || fired > n*6/10 {
		t.Fatalf("prob 0.5 fired %d/%d times", fired, n)
	}
	// Different sites draw from different streams under the same tokens.
	same := 0
	for token := uint64(0); token < n; token++ {
		if decide(7, CacheGet, token, 0.5) == decide(7, PoolSubmit, token, 0.5) {
			same++
		}
	}
	if same == n {
		t.Fatal("cache.get and pool.submit streams are identical")
	}
	// Different seeds reshuffle the decisions.
	same = 0
	for token := uint64(0); token < n; token++ {
		if decide(7, CacheGet, token, 0.5) == decide(8, CacheGet, token, 0.5) {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 7 and 8 produce identical streams")
	}
}

func TestProbEdges(t *testing.T) {
	for token := uint64(0); token < 100; token++ {
		if decide(1, MapperAnneal, token, 0) {
			t.Fatal("prob 0 fired")
		}
		if !decide(1, MapperAnneal, token, 1) {
			t.Fatal("prob 1 did not fire")
		}
	}
}

func TestActivateValidates(t *testing.T) {
	defer Deactivate()
	bad := []*Plan{
		{Seed: 1, Sites: map[Site]SiteConfig{"nope": {Prob: 1}}},
		{Seed: 1, Sites: map[Site]SiteConfig{MapperAnneal: {Prob: 2}}},
		{Seed: 1, Sites: map[Site]SiteConfig{CacheGet: {Prob: 1, Mode: ModeLatency, Latency: -1}}},
	}
	for i, p := range bad {
		if err := Activate(p); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	if Enabled() {
		t.Fatal("failed Activate left a plan armed")
	}
}

func TestPlanString(t *testing.T) {
	p, err := ParsePlan("cache.get=latency:0.5:50ms,mapper.anneal=error:1", 9)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"seed=9", "mapper.anneal=error:1", "cache.get=latency:0.5:50ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	var nilPlan *Plan
	if nilPlan.String() != "faults disabled" {
		t.Errorf("nil String() = %q", nilPlan.String())
	}
}
