package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/registry"
)

// Satellite: every malformed inline DFG comes back as a structured 400
// whose defect field names the specific problem — never a 500, never a
// crashed handler.
func TestMapInlineDFGDefects(t *testing.T) {
	s := testServer(t, Config{MaxDFGNodes: 8, MaxDFGEdges: 8, MaxUnroll: 4})
	h := s.Handler()

	mapBody := func(dfgDoc string, extra string) string {
		return fmt.Sprintf(`{"dfg":%s,"arch":"cgra-4x4"%s}`, dfgDoc, extra)
	}
	bigDFG := func(n int) string {
		nodes := make([]string, n)
		edges := make([]string, n-1)
		for i := range nodes {
			nodes[i] = fmt.Sprintf(`{"name":"n%d","op":"add"}`, i)
		}
		for i := range edges {
			edges[i] = fmt.Sprintf(`[%d,%d]`, i, i+1)
		}
		return fmt.Sprintf(`{"name":"big","nodes":[%s],"edges":[%s]}`,
			strings.Join(nodes, ","), strings.Join(edges, ","))
	}

	cases := []struct {
		name   string
		body   string
		defect string
	}{
		{"non-object dfg document", mapBody(`"just a string"`, ""), "bad-json"},
		{"unknown op", mapBody(`{"name":"g","nodes":[{"name":"a","op":"frobnicate"}],"edges":[]}`, ""), "unknown-op"},
		{"duplicate name", mapBody(`{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"a","op":"mul"}],"edges":[[0,1]]}`, ""), "duplicate-name"},
		{"dangling edge", mapBody(`{"name":"g","nodes":[{"name":"a","op":"add"}],"edges":[[0,9]]}`, ""), "dangling-edge"},
		{"self loop", mapBody(`{"name":"g","nodes":[{"name":"a","op":"add"}],"edges":[[0,0]]}`, ""), "self-loop"},
		{"cycle", mapBody(`{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[[0,1],[1,0]]}`, ""), "cycle"},
		{"disconnected", mapBody(`{"name":"g","nodes":[{"name":"a","op":"add"},{"name":"b","op":"mul"}],"edges":[]}`, ""), "not-connected"},
		{"too many nodes", mapBody(bigDFG(9), ""), "too-large"},
		{"too large after unroll", mapBody(bigDFG(5), `,"unroll":2`), "too-large"},
		{"unroll factor over cap", mapBody(bigDFG(2), `,"unroll":5`), "too-large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postMap(t, h, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body)
			}
			var body struct {
				Error  string `json:"error"`
				Defect string `json:"defect"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatal(err)
			}
			if body.Defect != tc.defect {
				t.Fatalf("defect = %q (%s), want %q", body.Defect, body.Error, tc.defect)
			}
			if body.Error == "" {
				t.Fatal("400 with no error message")
			}
		})
	}
}

// Built-in kernels are trusted: the size caps must not reject them even
// when they are larger than the inline-DFG limits.
func TestMapKernelsExemptFromSizeCaps(t *testing.T) {
	s := testServer(t, Config{MaxDFGNodes: 2, MaxDFGEdges: 2})
	w := postMap(t, s.Handler(), `{"kernel":"gemm","arch":"cgra-8x8","engine":"sa","seed":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("trusted kernel rejected by size cap: %d %s", w.Code, w.Body)
	}
}

// Satellite: a request whose deadline expires before any valid mapping is
// found must come back 200 — either a best-so-far result flagged
// deadlineExceeded or a labeled greedy fallback — and must never enter the
// cache.
func TestMapExpiredDeadlineIsLabeledAndUncached(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()
	// A 1ms budget for an 8x-unrolled gemm on the 4x4 array cannot finish
	// the SA sweep; the ladder's deadline rung takes over.
	body := `{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":1,"unroll":8,"maxMoves":400000,"deadlineMs":1}`
	w := postMap(t, h, body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (never 5xx on a deadline): %s", w.Code, w.Body)
	}
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	labeled := resp.Result.DeadlineExceeded || len(resp.Result.Degraded) > 0
	if !labeled {
		t.Fatalf("deadline-curtailed response carries no label: %+v", resp.Result)
	}
	if len(resp.Result.Degraded) > 0 && resp.EngineUsed != "greedy" {
		t.Fatalf("degraded chain %v but engineUsed = %q, want greedy", resp.Result.Degraded, resp.EngineUsed)
	}
	if got := s.Cache().Len(); got != 0 {
		t.Fatalf("cache has %d entries after a deadline-curtailed response, want 0", got)
	}
	if w2 := postMap(t, h, body); w2.Header().Get("X-Lisa-Cache") == "hit" {
		t.Fatal("deadline-curtailed response was served from the cache")
	}
}

// A cached lazy-training failure must surface on /v1/archs as modelError
// and clear through POST /v1/reload — the one deliberate retry path. The
// failure is driven through the gnn.train fault site, which fires before
// any real training work, so the test is cheap.
func TestArchsReportModelErrorAndReloadClearsIt(t *testing.T) {
	plan, err := fault.ParsePlan("gnn.train=error:1", 1)
	if err != nil {
		t.Fatal(err)
	}
	fault.Activate(plan)
	defer fault.Deactivate()

	reg := registry.New(registry.Config{TrainOnDemand: true})
	s := New(Config{}, reg)
	defer s.Close()
	h := s.Handler()

	archsBody := func() []ArchInfo {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/archs", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("/v1/archs: %d", w.Code)
		}
		var out []ArchInfo
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	modelError := func(name string) string {
		t.Helper()
		for _, info := range archsBody() {
			if info.Name == name {
				return info.ModelError
			}
		}
		t.Fatalf("%s missing from /v1/archs", name)
		return ""
	}

	// A label-engine request trips the poisoned training; the ladder still
	// answers 200 (degraded to sa), and the failure is now cached.
	w := postMap(t, h, `{"kernel":"gemm","arch":"cgra-4x4","engine":"lisa","seed":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via the ladder: %s", w.Code, w.Body)
	}
	if got := modelError("cgra-4x4"); !strings.Contains(got, "injected") {
		t.Fatalf("modelError = %q, want the cached injected-fault error", got)
	}

	// Reload clears exactly that failure.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/v1/reload: %d %s", rw.Code, rw.Body)
	}
	var resp ReloadResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Retried) != 1 || resp.Retried[0] != "cgra-4x4" {
		t.Fatalf("reload retried %v, want [cgra-4x4]", resp.Retried)
	}
	if got := modelError("cgra-4x4"); got != "" {
		t.Fatalf("modelError survives reload: %q", got)
	}
}

// POST /v1/reload rescans the models directory for files that appeared
// after startup, skipping already-registered targets.
func TestReloadRescansModelsDir(t *testing.T) {
	dir := t.TempDir()
	reg := registry.New(registry.Config{TrainOnDemand: false})
	s := New(Config{ModelsDir: dir}, reg)
	defer s.Close()
	h := s.Handler()

	writeModel := func(name string) {
		t.Helper()
		m := gnn.NewModel(rand.New(rand.NewSource(1)), name)
		f, err := os.Create(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	reload := func() ReloadResponse {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("/v1/reload: %d %s", w.Code, w.Body)
		}
		var resp ReloadResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	writeModel("cgra-4x4")
	resp := reload()
	if len(resp.Loaded) != 1 || resp.Loaded[0] != "cgra-4x4" {
		t.Fatalf("first rescan: %+v", resp)
	}
	if !reg.Has("cgra-4x4") {
		t.Fatal("rescanned model not registered")
	}

	// A second reload sees the same file: already-registered, not an error.
	resp = reload()
	if len(resp.Loaded) != 0 || len(resp.Errors) != 0 {
		t.Fatalf("idempotent rescan: %+v", resp)
	}

	// A new file appearing later is picked up; a corrupt one is reported.
	writeModel("cgra-8x8")
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp = reload()
	if len(resp.Loaded) != 1 || resp.Loaded[0] != "cgra-8x8" {
		t.Fatalf("second rescan loaded %v", resp.Loaded)
	}
	if len(resp.Errors) != 1 {
		t.Fatalf("corrupt file not reported: %+v", resp)
	}
}

func TestReloadRequiresPOST(t *testing.T) {
	s := testServer(t, Config{})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/reload", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/reload: %d, want 405", w.Code)
	}
}

// A panicking handler must produce a 500 and a panics-counter tick, and
// the daemon must keep answering afterwards.
func TestHandlerPanicIsA500NotACrash(t *testing.T) {
	var recovered any
	s := testServer(t, Config{OnPanic: func(rec any, stack []byte) {
		recovered = rec
		if len(stack) == 0 {
			t.Error("panic reported with no stack")
		}
	}})
	// Wrap a deliberately panicking handler in the server's own fence.
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/anything", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "boom") {
		t.Fatalf("error body %q does not mention the panic", body.Error)
	}
	if recovered != "boom" {
		t.Fatalf("OnPanic saw %v, want boom", recovered)
	}
	snap := s.Metrics().Snapshot(s.metrics.start, 0, 0)
	if snap.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", snap.Panics)
	}

	// The real mux still serves.
	w2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w2.Code != http.StatusOK {
		t.Fatalf("daemon dead after a handler panic: %d", w2.Code)
	}
}
