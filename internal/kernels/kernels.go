// Package kernels provides the PolyBench loop-kernel DFGs the paper's
// evaluation maps (§VI: 12 DFGs supported by CGRA-ME, plus unrolled versions
// with unrolling factor 2).
//
// The paper obtains these DFGs from CGRA-ME's front end; here each kernel's
// innermost loop body is hand-lowered with the dfg.Builder the way a compiler
// would after strength reduction: per array access one base-pointer constant,
// one address add and one load/store, then the compute ops of the statement.
// Loop-invariant scalars (alpha, beta, induction-variable offsets) are OpConst
// nodes. Sizes land in the 13–24 node range of CGRA-ME's PolyBench DFGs.
//
// trmm is the one kernel with a data-dependent triangular guard; its cmp +
// select pair is exactly what the fixed-function systolic PEs cannot execute,
// reproducing the lone ✗ of the paper's Fig. 9g for LISA.
package kernels

import (
	"fmt"
	"sort"

	"github.com/lisa-go/lisa/internal/dfg"
)

// Names lists the 12 kernels in the order the paper's figures show them.
func Names() []string {
	return []string{
		"gemm", "atax", "bicg", "mvt", "gesummv", "symm",
		"syrk", "syr2k", "trmm", "2mm", "3mm", "doitgen",
	}
}

// UnrolledNames4x4 lists the six unrolled DFGs of Fig. 9d.
func UnrolledNames4x4() []string {
	return []string{"gemm", "atax", "mvt", "symm", "syrk", "doitgen"}
}

// UnrolledNames8x8 lists the eight unrolled DFGs of Fig. 9f.
func UnrolledNames8x8() []string {
	return []string{"gemm", "atax", "bicg", "mvt", "symm", "syrk", "2mm", "doitgen"}
}

var registry = map[string]func() *dfg.Graph{
	"gemm":    gemm,
	"atax":    atax,
	"bicg":    bicg,
	"mvt":     mvt,
	"gesummv": gesummv,
	"symm":    symm,
	"syrk":    syrk,
	"syr2k":   syr2k,
	"trmm":    trmm,
	"2mm":     k2mm,
	"3mm":     k3mm,
	"doitgen": doitgen,
}

// ByName builds a fresh copy of the named kernel DFG.
func ByName(name string) (*dfg.Graph, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustByName is ByName for known-good names (panics otherwise).
func MustByName(name string) *dfg.Graph {
	g, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Unrolled returns the factor-2 unrolled version of the named kernel.
func Unrolled(name string) (*dfg.Graph, error) {
	g, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return dfg.Unroll(g, 2), nil
}

// All builds every kernel, sorted by name (for deterministic iteration).
func All() []*dfg.Graph {
	names := Names()
	sort.Strings(names)
	out := make([]*dfg.Graph, 0, len(names))
	for _, n := range names {
		out = append(out, MustByName(n))
	}
	return out
}

// gemm: C[i][j] += alpha * A[i][k] * B[k][j] (inner k-loop body).
func gemm() *dfg.Graph {
	b := dfg.NewBuilder("gemm")
	pA, pB, pC := b.Const("pA"), b.Const("pB"), b.Const("pC")
	alpha, k := b.Const("alpha"), b.Const("k")
	lA := b.Load("A_ik", b.Addr("aA", pA, k))
	lB := b.Load("B_kj", b.Addr("aB", pB, k))
	m := b.Mul("AxB", lA, lB)
	am := b.Mul("alphaAB", alpha, m)
	lC := b.Load("C_ij", pC)
	s := b.Add("acc", lC, am)
	b.Store("stC", pC, s)
	return b.Graph()
}

// atax: tmp[i] += A[i][j]*x[j];  y[j] += A[i][j]*tmp[i].
func atax() *dfg.Graph {
	b := dfg.NewBuilder("atax")
	pA, px, py, ptmp := b.Const("pA"), b.Const("px"), b.Const("py"), b.Const("ptmp")
	j := b.Const("j")
	lA := b.Load("A_ij", b.Addr("aA", pA, j))
	lx := b.Load("x_j", b.Addr("ax", px, j))
	m1 := b.Mul("Ax", lA, lx)
	ltmp := b.Load("tmp_i", ptmp)
	t2 := b.Add("tmpacc", ltmp, m1)
	b.Store("sttmp", ptmp, t2)
	m2 := b.Mul("Atmp", lA, t2)
	ay := b.Addr("ay", py, j)
	ly := b.Load("y_j", ay)
	y2 := b.Add("yacc", ly, m2)
	b.Store("sty", ay, y2)
	return b.Graph()
}

// bicg: s[j] += r[i]*A[i][j];  q[i] += A[i][j]*p[j]. The shared A load and
// the triple-fanout induction offset make this the dense DFG that vanilla SA
// fails to map on the 4×4 baseline in the paper.
func bicg() *dfg.Graph {
	b := dfg.NewBuilder("bicg")
	pA, pr, pp, ps, pq := b.Const("pA"), b.Const("pr"), b.Const("pp"), b.Const("ps"), b.Const("pq")
	j := b.Const("j")
	aA := b.Addr("aA", pA, j)
	lA := b.Load("A_ij", aA)
	lr := b.Load("r_i", pr)
	m1 := b.Mul("rA", lr, lA)
	as := b.Addr("as", ps, j)
	ls := b.Load("s_j", as)
	s2 := b.Add("sacc", ls, m1)
	b.Store("sts", as, s2)
	ap := b.Addr("ap", pp, j)
	lp := b.Load("p_j", ap)
	m2 := b.Mul("Ap", lA, lp)
	lq := b.Load("q_i", pq)
	q2 := b.Add("qacc", lq, m2)
	b.Store("stq", pq, q2)
	return b.Graph()
}

// mvt: x1[i] += A[i][j]*y1[j];  x2[i] += A[j][i]*y2[j].
func mvt() *dfg.Graph {
	b := dfg.NewBuilder("mvt")
	pA, pAT, py, px1, px2 := b.Const("pA"), b.Const("pAT"), b.Const("py"), b.Const("px1"), b.Const("px2")
	j := b.Const("j")
	l1 := b.Load("A_ij", b.Addr("a1", pA, j))
	ly := b.Load("y_j", b.Addr("ay", py, j))
	m1 := b.Mul("Ay1", l1, ly)
	lx1 := b.Load("x1_i", px1)
	s1 := b.Add("x1acc", lx1, m1)
	b.Store("stx1", px1, s1)
	l2 := b.Load("A_ji", b.Addr("a2", pAT, j))
	m2 := b.Mul("Ay2", l2, ly)
	lx2 := b.Load("x2_i", px2)
	s2 := b.Add("x2acc", lx2, m2)
	b.Store("stx2", px2, s2)
	return b.Graph()
}

// gesummv: tmp += A[i][j]*x[j];  y[i] = alpha*tmp + beta*(B[i][j]*x[j]).
func gesummv() *dfg.Graph {
	b := dfg.NewBuilder("gesummv")
	pA, pB, px, ptmp, py := b.Const("pA"), b.Const("pB"), b.Const("px"), b.Const("ptmp"), b.Const("py")
	alpha, beta, j := b.Const("alpha"), b.Const("beta"), b.Const("j")
	lA := b.Load("A_ij", b.Addr("aA", pA, j))
	lB := b.Load("B_ij", b.Addr("aB", pB, j))
	lx := b.Load("x_j", b.Addr("ax", px, j))
	m1 := b.Mul("Ax", lA, lx)
	m2 := b.Mul("Bx", lB, lx)
	ltmp := b.Load("tmp_i", ptmp)
	t := b.Add("tmpacc", ltmp, m1)
	b.Store("sttmp", ptmp, t)
	a := b.Mul("alphatmp", alpha, t)
	bb := b.Mul("betaBx", beta, m2)
	y := b.Add("y_i", a, bb)
	b.Store("sty", py, y)
	return b.Graph()
}

// symm: C[i][j] = beta*C[i][j] + alpha*A[..]*B[i][j] + alpha-scaled
// symmetric contribution.
func symm() *dfg.Graph {
	b := dfg.NewBuilder("symm")
	pA, pB, pB2, pC := b.Const("pA"), b.Const("pB"), b.Const("pB2"), b.Const("pC")
	alpha, beta, j := b.Const("alpha"), b.Const("beta"), b.Const("j")
	lA := b.Load("A", b.Addr("aA", pA, j))
	lB := b.Load("B", b.Addr("aB", pB, j))
	m1 := b.Mul("AB", lA, lB)
	aC := b.Addr("aC", pC, j)
	lC := b.Load("C", aC)
	m2 := b.Mul("betaC", beta, lC)
	m3 := b.Mul("alphaAB", alpha, m1)
	s := b.Add("sum1", m2, m3)
	lB2 := b.Load("B2", pB2)
	m4 := b.Mul("symc", lB2, lA)
	acc := b.Add("sum2", s, m4)
	b.Store("stC", aC, acc)
	return b.Graph()
}

// syrk: C[i][j] += alpha * A[i][k] * A[j][k].
func syrk() *dfg.Graph {
	b := dfg.NewBuilder("syrk")
	pA1, pA2, pC := b.Const("pA1"), b.Const("pA2"), b.Const("pC")
	alpha, k := b.Const("alpha"), b.Const("k")
	l1 := b.Load("A_ik", b.Addr("a1", pA1, k))
	l2 := b.Load("A_jk", b.Addr("a2", pA2, k))
	m := b.Mul("AA", l1, l2)
	ma := b.Mul("alphaAA", alpha, m)
	lC := b.Load("C_ij", pC)
	s := b.Add("acc", lC, ma)
	b.Store("stC", pC, s)
	return b.Graph()
}

// syr2k: C[i][j] += alpha*A[i][k]*B[j][k] + alpha*A[j][k]*B[i][k]. The widest
// fanout of the suite (the k offset feeds four addresses), making it the
// kernel vanilla SA cannot map on the routing-starved CGRAs in the paper.
func syr2k() *dfg.Graph {
	b := dfg.NewBuilder("syr2k")
	pA, pB, pA2, pB2, pC := b.Const("pA"), b.Const("pB"), b.Const("pA2"), b.Const("pB2"), b.Const("pC")
	alpha, k := b.Const("alpha"), b.Const("k")
	lA1 := b.Load("A_ik", b.Addr("aA1", pA, k))
	lB1 := b.Load("B_ik", b.Addr("aB1", pB, k))
	lA2 := b.Load("A_jk", b.Addr("aA2", pA2, k))
	lB2 := b.Load("B_jk", b.Addr("aB2", pB2, k))
	m1 := b.Mul("AiBj", lA1, lB2)
	m2 := b.Mul("AjBi", lA2, lB1)
	s := b.Add("pair", m1, m2)
	ms := b.Mul("alphapair", alpha, s)
	lC := b.Load("C_ij", pC)
	c2 := b.Add("acc", lC, ms)
	b.Store("stC", pC, c2)
	return b.Graph()
}

// trmm: B[i][j] += A[i][k]*B[k][j] guarded by the triangular condition k > i.
// The guard lowers to cmp + select, which the systolic array's fixed
// multiply/add units cannot execute.
func trmm() *dfg.Graph {
	b := dfg.NewBuilder("trmm")
	pA, pB, pB2 := b.Const("pA"), b.Const("pB"), b.Const("pB2")
	k, i, zero := b.Const("k"), b.Const("i"), b.Const("zero")
	lA := b.Load("A_ik", b.Addr("aA", pA, k))
	lB := b.Load("B_kj", b.Addr("aB", pB, k))
	m := b.Mul("AB", lA, lB)
	c := b.Cmp("k_gt_i", k, i)
	sel := b.Select("guard", c, m, zero)
	lB2 := b.Load("B_ij", pB2)
	s := b.Add("acc", lB2, sel)
	b.Store("stB", pB2, s)
	return b.Graph()
}

// k2mm (2mm): tmp = alpha*A*B;  D = tmp*C + beta*D.
func k2mm() *dfg.Graph {
	b := dfg.NewBuilder("2mm")
	pA, pB, pC, pD, ptmp := b.Const("pA"), b.Const("pB"), b.Const("pC"), b.Const("pD"), b.Const("ptmp")
	alpha, beta, k := b.Const("alpha"), b.Const("beta"), b.Const("k")
	lA := b.Load("A", b.Addr("aA", pA, k))
	lB := b.Load("B", b.Addr("aB", pB, k))
	m1 := b.Mul("AB", lA, lB)
	ma := b.Mul("alphaAB", alpha, m1)
	ltmp := b.Load("tmp", ptmp)
	t := b.Add("tmpacc", ltmp, ma)
	b.Store("sttmp", ptmp, t)
	lC := b.Load("C", b.Addr("aC", pC, k))
	m2 := b.Mul("tmpC", t, lC)
	lD := b.Load("D", pD)
	mb := b.Mul("betaD", beta, lD)
	d := b.Add("dacc", m2, mb)
	b.Store("stD", pD, d)
	return b.Graph()
}

// k3mm (3mm): E = A*B;  G += (A*B)*C chained through the E accumulator.
func k3mm() *dfg.Graph {
	b := dfg.NewBuilder("3mm")
	pA, pB, pC, pE, pG := b.Const("pA"), b.Const("pB"), b.Const("pC"), b.Const("pE"), b.Const("pG")
	k := b.Const("k")
	lA := b.Load("A", b.Addr("aA", pA, k))
	lB := b.Load("B", b.Addr("aB", pB, k))
	m1 := b.Mul("AB", lA, lB)
	b.Store("stE", pE, m1)
	lC := b.Load("C", b.Addr("aC", pC, k))
	m2 := b.Mul("ABC", m1, lC)
	lG := b.Load("G", pG)
	g := b.Add("gacc", lG, m2)
	b.Store("stG", pG, g)
	return b.Graph()
}

// doitgen: sum[p] += A[r][q][s] * C4[s][p].
func doitgen() *dfg.Graph {
	b := dfg.NewBuilder("doitgen")
	pA, pC, psum := b.Const("pA"), b.Const("pC"), b.Const("psum")
	s := b.Const("s")
	lA := b.Load("A", b.Addr("aA", pA, s))
	lC := b.Load("C4", b.Addr("aC", pC, s))
	m := b.Mul("AC", lA, lC)
	lsum := b.Load("sum", psum)
	s2 := b.Add("acc", lsum, m)
	b.Store("stsum", psum, s2)
	return b.Graph()
}
