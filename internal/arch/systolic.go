package arch

import (
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/rgraph"
)

// Systolic models the paper's 5×5 systolic accelerator (Fig. 3) with compute
// units similar to the Revel basic unit: left-most PEs load input data,
// right-most PEs store output, and the interior PEs each execute a fixed
// multiply or add operation for the whole run — there is no per-cycle
// reconfiguration, so MaxII is 1 and every resource exists in a single time
// layer. Mapping a DFG therefore succeeds or fails (the ✓/✗ of Fig. 9g);
// failure happens when the op mix does not fit the fixed-function PEs (trmm's
// triangular guard needs cmp/select, which no systolic PE provides) or the
// fabric cannot delay-align the dataflow waves.
//
// Revel is a hybrid systolic-dataflow architecture, so the interconnect is a
// mesh like the CGRA's; the systolic character comes from the fixed-function
// constraint and from the per-PE delay channels (capacity Channels) that
// stand in for the skew registers a systolic wave rides on. Constants
// (loop-invariant scalars) can be pinned at any PE.
type Systolic struct {
	Rows, Cols int
	// Channels is the delay/pass-through register capacity per PE.
	Channels int
	label    string
}

// NewSystolic5x5 returns the paper's 5×5 systolic accelerator.
func NewSystolic5x5() *Systolic {
	return &Systolic{Rows: 5, Cols: 5, Channels: 4, label: "systolic-5x5"}
}

// Name implements Arch.
func (s *Systolic) Name() string { return s.label }

// NumPEs implements Arch.
func (s *Systolic) NumPEs() int { return s.Rows * s.Cols }

// Coord implements Arch.
func (s *Systolic) Coord(pe int) (row, col int) { return pe / s.Cols, pe % s.Cols }

// PEAt returns the PE index at (row, col).
func (s *Systolic) PEAt(row, col int) int { return row*s.Cols + col }

// SpatialDistance implements Arch with Manhattan distance.
func (s *Systolic) SpatialDistance(a, b int) int {
	r1, c1 := s.Coord(a)
	r2, c2 := s.Coord(b)
	return manhattan(r1, c1, r2, c2)
}

// opsMaskFor returns the fixed function set of a PE: loads on the left edge,
// stores on the right edge, multiply/add in the interior; constants anywhere.
func (s *Systolic) opsMaskFor(pe int) uint32 {
	_, col := s.Coord(pe)
	switch {
	case col == 0:
		return maskOf(dfg.OpLoad, dfg.OpConst)
	case col == s.Cols-1:
		return maskOf(dfg.OpStore, dfg.OpConst)
	default:
		return maskOf(dfg.OpMul, dfg.OpAdd, dfg.OpConst)
	}
}

// SupportsOp implements Arch.
func (s *Systolic) SupportsOp(pe int, op dfg.OpKind) bool {
	return s.opsMaskFor(pe)&(1<<uint(op)) != 0
}

// MaxII implements Arch: systolic PEs execute a fixed operation every cycle.
func (s *Systolic) MaxII() int { return 1 }

// MinII implements Arch.
func (s *Systolic) MinII(g *dfg.Graph) int { return 1 }

// neighbors returns the 4-neighborhood.
func (s *Systolic) neighbors(pe int) []int {
	r, c := s.Coord(pe)
	var out []int
	if r > 0 {
		out = append(out, s.PEAt(r-1, c))
	}
	if r < s.Rows-1 {
		out = append(out, s.PEAt(r+1, c))
	}
	if c > 0 {
		out = append(out, s.PEAt(r, c-1))
	}
	if c < s.Cols-1 {
		out = append(out, s.PEAt(r, c+1))
	}
	return out
}

// BuildRGraph implements Arch. One time layer: per PE an FU node (capacity 1,
// compute-only — a busy fixed-function unit cannot also forward unrelated
// operands) and a delay-channel node (capacity Channels, route-only, with a
// self-edge so waves can be delay-aligned). Hops between neighbors take one
// cycle.
func (s *Systolic) BuildRGraph(ii int) *rgraph.Graph {
	if ii != 1 {
		panic("arch: systolic array supports II=1 only")
	}
	g := rgraph.NewGraph(1)
	n := s.NumPEs()
	fuID := make([]int, n)
	chID := make([]int, n)
	for pe := 0; pe < n; pe++ {
		fuID[pe] = g.AddNode(rgraph.Node{
			Kind: rgraph.KindFU, PE: pe, Cycle: 0, Cap: 1,
			ComputeOK: true, RouteOK: false, OpsMask: s.opsMaskFor(pe),
		})
		chID[pe] = g.AddNode(rgraph.Node{
			Kind: rgraph.KindReg, PE: pe, Cycle: 0, Cap: s.Channels,
			RouteOK: true,
		})
	}
	for pe := 0; pe < n; pe++ {
		g.AddEdge(fuID[pe], chID[pe]) // park the value in a delay register
		g.AddEdge(chID[pe], chID[pe]) // hold it there across cycles
		for _, nb := range s.neighbors(pe) {
			g.AddEdge(fuID[pe], fuID[nb])
			g.AddEdge(fuID[pe], chID[nb])
			g.AddEdge(chID[pe], fuID[nb])
			g.AddEdge(chID[pe], chID[nb])
		}
	}
	return g
}
