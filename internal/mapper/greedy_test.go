package mapper

import (
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
)

func TestGreedyMapsEasyKernels(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for _, name := range []string{"gemm", "syrk", "doitgen"} {
		g := kernels.MustByName(name)
		res := MapGreedy(ar, g, Options{})
		if !res.OK {
			t.Errorf("%s: greedy failed on the roomy 4x4", name)
			continue
		}
		if err := Verify(ar, g, &res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestGreedyIsDeterministic(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("atax")
	a := MapGreedy(ar, g, Options{})
	b := MapGreedy(ar, g, Options{})
	if a.OK != b.OK || a.II != b.II {
		t.Fatal("greedy must be deterministic")
	}
	if a.OK {
		for v := range a.PE {
			if a.PE[v] != b.PE[v] || a.Time[v] != b.Time[v] {
				t.Fatal("greedy placement differs between runs")
			}
		}
	}
}

func TestGreedyIsFasterThanSA(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	gr := MapGreedy(ar, g, Options{})
	sa := mustMap(t, ar, g, AlgSA, nil, Options{Seed: 1})
	if !gr.OK {
		t.Skip("greedy failed; speed comparison moot")
	}
	if sa.OK && gr.Duration > sa.Duration {
		t.Logf("note: greedy %v vs SA %v (not fatal, timing noise)", gr.Duration, sa.Duration)
	}
}

func TestGreedyWorseOrEqualToLISAOnHardKernels(t *testing.T) {
	// The motivation for label guidance: one-pass local choices get stuck
	// on dense DFGs / constrained arrays where LISA still maps.
	ar := arch.NewLessRouting4x4()
	better, worse := 0, 0
	for _, name := range []string{"bicg", "syr2k", "gesummv", "symm", "mvt"} {
		g := kernels.MustByName(name)
		gr := MapGreedy(ar, g, Options{})
		li := mustMap(t, ar, g, AlgLISA, nil, quickOpts(4))
		switch {
		case li.OK && !gr.OK:
			better++
		case gr.OK && !li.OK:
			worse++
		case li.OK && gr.OK && li.II < gr.II:
			better++
		case li.OK && gr.OK && li.II > gr.II:
			worse++
		}
	}
	if worse > better {
		t.Errorf("greedy beat LISA %d vs %d on constrained kernels", worse, better)
	}
}

func TestGreedyRespectsMaxII(t *testing.T) {
	ar := arch.NewBaseline3x3()
	g := kernels.MustByName("syr2k")
	res := MapGreedy(ar, g, Options{MaxII: 2})
	for _, ii := range res.TriedIIs {
		if ii > 2 {
			t.Fatalf("greedy tried II %d beyond cap", ii)
		}
	}
}
