package mapper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
)

// Two Map runs with equal inputs and equal seeds must produce identical
// Result JSON (modulo Duration, which is wall-clock and zeroed by services
// that need byte-stable bodies). The lisa-serve result cache and the
// training-label pipeline both depend on this byte-identity.
func TestMapEqualSeedsProduceIdenticalResultJSON(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for _, alg := range []Algorithm{AlgSA, AlgLISA} {
		for gseed := int64(1); gseed <= 3; gseed++ {
			t.Run(fmt.Sprintf("%s/graph%d", alg, gseed), func(t *testing.T) {
				g := dfg.Random(rand.New(rand.NewSource(gseed)), dfg.DefaultRandomConfig(), "prop")
				opts := Options{Seed: 42, MaxMoves: 400}

				r1 := mustMap(t, ar, g, alg, nil, opts)
				r2 := mustMap(t, ar, g, alg, nil, opts)
				r1.Duration, r2.Duration = 0, 0

				b1, err := json.Marshal(r1)
				if err != nil {
					t.Fatal(err)
				}
				b2, err := json.Marshal(r2)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b1, b2) {
					t.Fatalf("equal seeds diverged:\n%s\n%s", b1, b2)
				}
			})
		}
	}
}
