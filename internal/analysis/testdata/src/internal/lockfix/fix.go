// Package lockfix seeds the lockorder violation classes: an interprocedural
// lock-order cycle (each half acquires in a consistent order locally; only
// the cross-function view exposes the deadlock), double-acquire both direct
// and through a call chain, an early return holding a lock without a
// deferred unlock, and a lock held across a blocking call. The ok* functions
// are decoys for the blessed shapes: deferred unlocks covering every return,
// consistent ordering, and lock/unlock pairs released before blocking work.
package lockfix

import (
	"sync"
	"time"
)

type server struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

// lockAB holds muA while calling a function that acquires muB: the A→B
// half of the cycle.
func (s *server) lockAB() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.bumpB()
}

func (s *server) bumpB() {
	s.muB.Lock()
	defer s.muB.Unlock()
	s.n++
}

// lockBA holds muB while calling a function that acquires muA: the B→A
// half. Neither function is wrong in isolation — the cycle is only visible
// interprocedurally.
func (s *server) lockBA() {
	s.muB.Lock()
	defer s.muB.Unlock()
	s.bumpA()
}

func (s *server) bumpA() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.n++
}

// doubleDirect re-locks a mutex the same function already holds.
func (s *server) doubleDirect() {
	s.muA.Lock()
	s.muA.Lock()
	s.n++
	s.muA.Unlock()
	s.muA.Unlock()
}

// doubleViaCall holds muA and calls a function that acquires it again.
func (s *server) doubleViaCall() {
	s.muA.Lock()
	defer s.muA.Unlock()
	s.bumpA()
}

// leakyReturn takes muB and returns early without releasing it.
func (s *server) leakyReturn(skip bool) {
	s.muB.Lock()
	if skip {
		return
	}
	s.n++
	s.muB.Unlock()
}

// sleepUnderLock holds muA across a blocking call.
func (s *server) sleepUnderLock() {
	s.muA.Lock()
	time.Sleep(10 * time.Millisecond)
	s.muA.Unlock()
}

// okDeferred is clean: the deferred unlock covers the early return.
func (s *server) okDeferred(skip bool) int {
	s.muA.Lock()
	defer s.muA.Unlock()
	if skip {
		return 0
	}
	s.n++
	return s.n
}

// okRelock is clean: the first hold is released before the second acquire.
func (s *server) okRelock() {
	s.muA.Lock()
	s.n++
	s.muA.Unlock()
	s.muA.Lock()
	s.n++
	s.muA.Unlock()
}

// okSleepAfterUnlock is clean: the blocking call runs with no lock held.
func (s *server) okSleepAfterUnlock() {
	s.muA.Lock()
	s.n++
	s.muA.Unlock()
	time.Sleep(10 * time.Millisecond)
}
