package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randMat fills a rows×cols matrix with a mix of signed values and exact
// zeros (the taped MatMul skips zero entries of a; the fused path must skip
// the same ones to preserve the accumulation sequence).
func randMat(rng *rand.Rand, rows, cols int) *Tensor {
	t := New(rows, cols)
	for i := range t.Data {
		switch rng.Intn(5) {
		case 0:
			t.Data[i] = 0
		default:
			t.Data[i] = rng.NormFloat64()
		}
	}
	return t
}

// assertBitIdentical compares two tensors via Float64bits: the fused path
// promises the same arithmetic sequence as the tape, so even the last ulp
// must agree.
func assertBitIdentical(t *testing.T, op string, taped, fused *Tensor) {
	t.Helper()
	if taped.Rows != fused.Rows || taped.Cols != fused.Cols {
		t.Fatalf("%s: shape (%dx%d) vs (%dx%d)", op, taped.Rows, taped.Cols, fused.Rows, fused.Cols)
	}
	for i := range taped.Data {
		if math.Float64bits(taped.Data[i]) != math.Float64bits(fused.Data[i]) {
			t.Fatalf("%s: element %d differs: %v (taped) vs %v (fused)",
				op, i, taped.Data[i], fused.Data[i])
		}
	}
}

func TestInferMatMulBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	in := NewInfer()
	// Sweep shapes past the mmBlock boundary so column blocking is exercised.
	for _, shape := range [][3]int{{1, 1, 1}, {3, 5, 2}, {7, 4, 9}, {5, 3, mmBlock}, {4, 6, mmBlock + 17}, {2, 8, 2*mmBlock + 5}} {
		a := randMat(rng, shape[0], shape[1])
		b := randMat(rng, shape[1], shape[2])
		assertBitIdentical(t, "matmul", MatMul(a, b), in.MatMul(a, b))
		in.Reset()
	}
}

func TestInferElementwiseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	in := NewInfer()
	a := randMat(rng, 4, 7)
	b := randMat(rng, 4, 7)
	assertBitIdentical(t, "add", Add(a, b), in.Add(a, b))
	assertBitIdentical(t, "mul", Mul(a, b), in.Mul(a, b))
	assertBitIdentical(t, "relu", ReLU(a), in.ReLU(a))
	assertBitIdentical(t, "reciprocal", Reciprocal(a, 1e-9), in.Reciprocal(a, 1e-9))
	// Entries inside the eps guard must map to exactly 1 on both paths.
	g := FromRows([][]float64{{0, 1e-12, -1e-12, 2}})
	assertBitIdentical(t, "reciprocal-guard", Reciprocal(g, 1e-9), in.Reciprocal(g, 1e-9))
}

func TestInferConcatColsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	in := NewInfer()
	a := randMat(rng, 3, 2)
	b := randMat(rng, 3, 5)
	c := randMat(rng, 3, 1)
	assertBitIdentical(t, "concat", ConcatCols(a, b, c), in.ConcatCols(a, b, c))
}

func TestInferAggregateBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	in := NewInfer()
	x := randMat(rng, 6, 3)
	sets := [][]int{{0, 1, 2}, {5}, {}, {3, 1, 4, 0}, {2, 2}}
	for _, kind := range []AggKind{AggMean, AggSum, AggMax, AggMin} {
		assertBitIdentical(t, "aggregate", Aggregate(x, sets, kind), in.Aggregate(x, sets, kind))
	}
}

// TestInferResetReuse proves the arena hands out the same memory after Reset
// and that reuse cannot leak stale values: a second pass over different data
// must produce results untainted by the first.
func TestInferResetReuse(t *testing.T) {
	in := NewInfer()
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	first := in.MatMul(a, b)
	got := append([]float64(nil), first.Data...)
	in.Reset()
	zero := New(2, 2)
	second := in.MatMul(zero, b)
	for i, v := range second.Data {
		if v != 0 {
			t.Fatalf("stale arena value leaked: element %d = %v", i, v)
		}
	}
	in.Reset()
	third := in.MatMul(a, b)
	for i := range got {
		if third.Data[i] != got[i] {
			t.Fatalf("post-Reset recompute diverged at %d: %v vs %v", i, third.Data[i], got[i])
		}
	}
}

// TestInferLargeAllocSpansSlabs forces a single matrix bigger than one slab
// and checks it still round-trips.
func TestInferLargeAllocSpansSlabs(t *testing.T) {
	in := NewInfer()
	rows, cols := 200, 100 // 20000 floats > inferSlabFloats
	m := in.NewMat(rows, cols)
	if len(m.Data) != rows*cols {
		t.Fatalf("oversized alloc: got %d floats", len(m.Data))
	}
	m.Data[0], m.Data[rows*cols-1] = 1, 2
	if m.At(0, 0) != 1 || m.At(rows-1, cols-1) != 2 {
		t.Fatal("oversized matrix not addressable")
	}
}

// TestInferSteadyStateAllocs is the tentpole's contract: after warmup, a
// Reset+forward cycle runs entirely out of retained slabs.
func TestInferSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	in := NewInfer()
	a := randMat(rng, 16, 12)
	b := randMat(rng, 12, 20)
	sets := [][]int{{0, 1}, {2}, {3, 4, 5}}
	cycle := func() {
		in.Reset()
		h := in.ReLU(in.MatMul(a, b))
		in.Aggregate(h, sets, AggMean)
	}
	cycle() // warm the slabs
	allocs := testing.AllocsPerRun(50, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state inference allocates %v times per cycle, want 0", allocs)
	}
}
