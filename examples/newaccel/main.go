// New accelerator: the end-to-end portability flow of the paper's Fig. 2 for
// an accelerator LISA has never seen — a 6×2 "stripe" CGRA with two registers
// per PE. The framework generates random DFGs, labels them by iterative
// mapping, trains the four GNNs, and then uses the learned labels to map the
// real kernels.
//
//	go run ./examples/newaccel
package main

import (
	"fmt"

	lisa "github.com/lisa-go/lisa"
)

func main() {
	// Define the brand-new target. 0 = memory on every PE; 24 config
	// entries bound the II as usual.
	stripe := lisa.NewCGRA("stripe-6x2", 6, 2, 2, 0, 24)
	fw := lisa.New(stripe)
	fw.MapOpts.Seed = 3

	fmt.Println("training LISA for", stripe.Name(), "(quick profile) ...")
	opt := lisa.QuickTraining()
	opt.NumDFGs = 30
	report := fw.Train(opt)
	fmt.Printf("  %d DFGs generated, %d mapped, %d admitted to the training set\n",
		report.Generated, report.Mapped, report.Admitted)
	fmt.Printf("  label accuracies on the training set: "+
		"order=%.2f same-level=%.2f spatial=%.2f temporal=%.2f\n",
		report.Accuracy[0], report.Accuracy[1], report.Accuracy[2], report.Accuracy[3])

	fmt.Println("\nmapping PolyBench kernels on the new accelerator:")
	fmt.Printf("%-10s %6s %6s\n", "kernel", "LISA", "SA")
	for _, name := range []string{"gemm", "atax", "syrk", "doitgen", "gesummv"} {
		g, err := lisa.Kernel(name)
		if err != nil {
			panic(err)
		}
		trained, err := fw.Map(g)
		if err != nil {
			panic(err)
		}
		baseline, err := fw.MapBaseline(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %6d %6d\n", name, trained.II, baseline.II)
		if trained.OK {
			if err := fw.Verify(g, &trained); err != nil {
				panic(err)
			}
		}
	}
	fmt.Println("\n(II = initiation interval; lower is better, 0 = cannot map)")
}
