// Command lisa-sim maps a kernel and executes the mapping cycle-accurately,
// printing the pipelined store-output stream. It is the quickest way to see
// a modulo schedule actually run.
//
// Usage:
//
//	lisa-sim -kernel gemm -arch cgra-4x4 -iters 8
//	lisa-sim -kernel doitgen -arch systolic-5x5 -iters 5 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/sim"
)

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	archName := flag.String("arch", "cgra-4x4", "target: "+strings.Join(arch.Names(), ", "))
	iters := flag.Int("iters", 6, "pipelined loop iterations to execute")
	seed := flag.Int64("seed", 1, "mapper seed")
	moves := flag.Int("moves", 2400, "mapper movement budget")
	trace := flag.Bool("trace", false, "print every store event")
	flag.Parse()

	ar, ok := arch.ByName(*archName)
	if !ok {
		fatal(fmt.Errorf("unknown arch %q (have %v)", *archName, arch.Names()))
	}
	g, err := kernels.ByName(*kernel)
	if err != nil {
		fatal(err)
	}
	res, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: *seed, MaxMoves: *moves})
	if err != nil {
		fatal(err)
	}
	if !res.OK {
		fatal(fmt.Errorf("cannot map %s on %s", g.Name, ar.Name()))
	}
	tr, err := sim.Run(ar, g, &res, *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: II=%d, %d iterations in %d cycles, peak resource use %d\n",
		g.Name, ar.Name(), tr.II, tr.Iterations, tr.TotalCycles, tr.PeakResourceUse)
	fmt.Printf("%d store events, values verified against direct DFG evaluation\n", len(tr.Stores))
	if *trace {
		for _, e := range tr.Stores {
			fmt.Printf("  cycle %3d  iter %d  %-10s mem[%d] <- %d\n",
				e.Cycle, e.Iteration, g.Nodes[e.Node].Name, e.Addr, e.Value)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lisa-sim:", err)
	os.Exit(1)
}
