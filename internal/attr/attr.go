// Package attr implements the paper's Attributes Generator (§IV-A): the DFG
// itself only carries operation types and dependencies, so traditional graph
// algorithms are used to enrich nodes, edges and same-level (dummy) edges
// with the structural attributes the GNN models consume.
package attr

import (
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/labels"
)

// Attribute-vector widths; the GNN layer shapes derive from these.
const (
	NodeAttrDim  = 6
	EdgeAttrDim  = 5
	DummyAttrDim = 7
)

// Set is the full attribute set of one DFG.
type Set struct {
	An *dfg.Analysis

	// Node is NodeAttrDim attributes per node:
	// (1) ASAP, (2) in-degree, (3) out-degree, (4) ancestor count,
	// (5) descendant count, (6) operation type.
	Node [][]float64

	// Edge is EdgeAttrDim attributes per DFG edge:
	// (1) ASAP difference between child and parent,
	// (2) number of nodes between the two (by ASAP),
	// (3) number of nodes sharing the parent's or child's ASAP value,
	// (4) ancestor count of the parent, (5) descendant count of the child.
	Edge [][]float64

	// DummyPairs lists the same-level pairs; Dummy holds DummyAttrDim
	// attributes per pair:
	// (1) distance to the closest common ancestor,
	// (2) distance to the closest common descendant,
	// (3) nodes with ASAP between the ancestor and the pair,
	// (4) nodes with ASAP between the pair and the descendant,
	// (5) nodes whose ASAP equals the ancestor's, descendant's or pair's,
	// (6) nodes on the path from the pair to the ancestor,
	// (7) nodes on the path from the pair to the descendant.
	DummyPairs []labels.Pair
	Dummy      [][]float64
}

// Generate computes all attributes for g.
func Generate(g *dfg.Graph) *Set {
	an := dfg.Analyze(g)
	s := &Set{An: an}

	s.Node = make([][]float64, g.NumNodes())
	for v := range g.Nodes {
		s.Node[v] = []float64{
			float64(an.ASAP[v]),
			float64(g.InDegree(v)),
			float64(g.OutDegree(v)),
			float64(an.NumAncestors(v)),
			float64(an.NumDescendants(v)),
			float64(g.Nodes[v].Op),
		}
	}

	s.Edge = make([][]float64, g.NumEdges())
	for i, e := range g.Edges {
		sameLevel := an.NodesAtLevel(an.ASAP[e.From]) + an.NodesAtLevel(an.ASAP[e.To])
		s.Edge[i] = []float64{
			float64(an.ASAP[e.To] - an.ASAP[e.From]),
			float64(an.NodesBetween(e.From, e.To)),
			float64(sameLevel),
			float64(an.NumAncestors(e.From)),
			float64(an.NumDescendants(e.To)),
		}
	}

	for _, p := range an.SameLevelPairs() {
		pair := labels.MakePair(p.A, p.B)
		lvl := an.ASAP[p.A]
		var distAnc, distDesc float64
		var betweenAnc, betweenDesc, equalCount float64
		var pathAnc, pathDesc float64

		equalCount = float64(an.NodesAtLevel(lvl))
		if anc, d, ok := an.ClosestCommonAncestor(p.A, p.B); ok {
			distAnc = float64(d)
			betweenAnc = float64(an.NodesWithASAPBetween(an.ASAP[anc], lvl))
			if an.ASAP[anc] != lvl {
				equalCount += float64(an.NodesAtLevel(an.ASAP[anc]))
			}
			pa := an.PathNodeCount(anc, p.A)
			pb := an.PathNodeCount(anc, p.B)
			pathAnc = float64(pa + pb)
		}
		if desc, d, ok := an.ClosestCommonDescendant(p.A, p.B); ok {
			distDesc = float64(d)
			betweenDesc = float64(an.NodesWithASAPBetween(lvl, an.ASAP[desc]))
			if an.ASAP[desc] != lvl {
				equalCount += float64(an.NodesAtLevel(an.ASAP[desc]))
			}
			pa := an.PathNodeCount(p.A, desc)
			pb := an.PathNodeCount(p.B, desc)
			pathDesc = float64(pa + pb)
		}
		s.DummyPairs = append(s.DummyPairs, pair)
		s.Dummy = append(s.Dummy, []float64{
			distAnc, distDesc, betweenAnc, betweenDesc, equalCount, pathAnc, pathDesc,
		})
	}
	return s
}
