// Package hotfix seeds the hotalloc violation classes inside an annotated
// root and the functions it reaches: map literals and map makes, slice
// literals off the failure path, un-preallocated append growth in a loop,
// an escaping capturing closure, and fmt calls — including one in a callee,
// to pin the call-chain label in the diagnostic. The ok* functions are
// called from the root too and cover the blessed idioms: capacity-hinted
// appends, truncate-reuse scratch buffers, array literals, failure-path
// fmt.Errorf, and non-capturing escaping closures.
package hotfix

import "fmt"

var callback func()

// register retains f beyond the caller's frame.
func register(f func()) { callback = f }

type pool struct {
	scratch []int
}

// hot is the annotated root; it and everything it reaches must stay
// allocation-disciplined.
//
//lisa:hotpath fixture root: the golden transcript pins every hotalloc rule
func hot(p *pool, xs []int) int {
	counts := map[int]int{}
	seen := make(map[int]bool)
	var grown []int
	for _, x := range xs {
		grown = append(grown, x)
		counts[x]++
		seen[x] = true
	}
	weights := []float64{0.25, 0.75}
	local := len(grown)
	register(func() { sinkInt = local })
	total := tally(xs)
	total += p.okScratch(xs)
	total += len(okPrealloc(xs))
	total += okArray(local, total)
	if err := okFailure(total); err != nil {
		return -1
	}
	return total + len(weights) + len(counts) + len(seen)
}

var sinkInt int

// tally is reached from hot: its fmt call is a violation attributed to the
// chain hot → tally.
func tally(xs []int) int {
	fmt.Println("tallying", len(xs))
	return len(xs)
}

// okScratch reuses a truncate-reset field buffer: growth amortizes to the
// high-water mark and stops allocating.
func (p *pool) okScratch(xs []int) int {
	buf := p.scratch[:0]
	for _, x := range xs {
		if x > 0 {
			buf = append(buf, x)
		}
	}
	p.scratch = buf
	return len(buf)
}

// okPrealloc sizes its output up front.
func okPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

// okArray uses a fixed-size array: stack-allocated, no per-call heap cost.
func okArray(a, b int) int {
	pair := [2]int{a, b}
	return pair[0] + pair[1]
}

// okFailure formats only on the failure path.
func okFailure(n int) error {
	if n < 0 {
		return fmt.Errorf("negative total %d", n)
	}
	return nil
}
