package kernels

import (
	"testing"

	"github.com/lisa-go/lisa/internal/dfg"
)

func TestAllKernelsValid(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumNodes() < 10 || g.NumNodes() > 30 {
			t.Errorf("%s: %d nodes, want 10..30 (CGRA-ME PolyBench range)", name, g.NumNodes())
		}
		// Every kernel reads and writes memory.
		loads, stores := 0, 0
		for _, n := range g.Nodes {
			switch n.Op {
			case dfg.OpLoad:
				loads++
			case dfg.OpStore:
				stores++
			}
		}
		if loads == 0 || stores == 0 {
			t.Errorf("%s: loads=%d stores=%d", name, loads, stores)
		}
		if loads > 5 {
			t.Errorf("%s: %d loads exceed the systolic left-edge capacity", name, loads)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestKernelsAreFreshCopies(t *testing.T) {
	g1 := MustByName("gemm")
	g2 := MustByName("gemm")
	g1.Nodes[0].Op = dfg.OpNop
	if g2.Nodes[0].Op == dfg.OpNop {
		t.Fatal("kernels must not share state")
	}
}

func TestTrmmHasGuardOps(t *testing.T) {
	g := MustByName("trmm")
	hasCmp, hasSel := false, false
	for _, n := range g.Nodes {
		if n.Op == dfg.OpCmp {
			hasCmp = true
		}
		if n.Op == dfg.OpSelect {
			hasSel = true
		}
	}
	if !hasCmp || !hasSel {
		t.Fatal("trmm must carry its triangular guard (cmp + select)")
	}
	// All other kernels must be systolic-compatible op mixes.
	for _, name := range Names() {
		if name == "trmm" {
			continue
		}
		g := MustByName(name)
		for _, n := range g.Nodes {
			switch n.Op {
			case dfg.OpLoad, dfg.OpStore, dfg.OpMul, dfg.OpAdd, dfg.OpConst:
			default:
				t.Errorf("%s: op %s not executable on the systolic array", name, n.Op)
			}
		}
	}
}

func TestUnrolledSets(t *testing.T) {
	for _, name := range UnrolledNames4x4() {
		g, err := Unrolled(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s unrolled: %v", name, err)
		}
		base := MustByName(name)
		if g.NumNodes() <= base.NumNodes() {
			t.Errorf("%s unrolled should be larger: %d vs %d", name, g.NumNodes(), base.NumNodes())
		}
	}
	if len(UnrolledNames8x8()) != 8 {
		t.Fatalf("Fig 9f needs 8 unrolled DFGs, have %d", len(UnrolledNames8x8()))
	}
	for _, name := range UnrolledNames8x8() {
		if _, err := Unrolled(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAllSortedAndComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("All() = %d kernels, want 12", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatal("All() must be sorted by name")
		}
	}
}

func TestSyr2kIsDensest(t *testing.T) {
	// The paper leans on syr2k being hard for vanilla SA; sanity-check that
	// it has the widest const fanout of the suite.
	g := MustByName("syr2k")
	k, ok := g.NodeByName("k")
	if !ok {
		t.Fatal("syr2k must have offset node k")
	}
	if g.OutDegree(k) < 4 {
		t.Errorf("syr2k offset fanout = %d, want >= 4", g.OutDegree(k))
	}
}

func TestExtendedKernelsValid(t *testing.T) {
	for _, name := range ExtendedNames() {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		loads := 0
		for _, n := range g.Nodes {
			if n.Op == dfg.OpLoad {
				loads++
			}
		}
		if loads == 0 || loads > 6 {
			t.Errorf("%s: %d loads out of expected range", name, loads)
		}
		// Extended kernels must not collide with the paper's twelve.
		for _, core := range Names() {
			if core == name {
				t.Errorf("%s duplicates a core kernel", name)
			}
		}
	}
}

func TestCholeskyUsesDivision(t *testing.T) {
	g := MustByName("cholesky")
	h := dfg.OpHistogram(g)
	if h[dfg.OpDiv] != 1 || h[dfg.OpSub] != 1 {
		t.Fatalf("cholesky op mix wrong: %v", h)
	}
}
