#!/usr/bin/env bash
# bench-mapper.sh — run the mapper hot-path benchmark and emit BENCH_mapper.json.
#
# Usage:
#   scripts/bench-mapper.sh            # measure, write BENCH_mapper.json
#   scripts/bench-mapper.sh --check    # additionally fail if allocs/op exceeds
#                                      # ALLOC_CEILING (the CI perf-smoke gate)
#
# BenchmarkMapperCore maps the gemm kernel on the 4x4 CGRA with the LISA
# engine at a fixed movement budget; its ns/op and allocs/op are the canonical
# mapper hot-path numbers. The "seed" block below is the pre-incremental
# implementation (deep-clone rollback, full-recompute cost, container/heap
# Dijkstra) measured at the same -benchtime on the same workload; it is kept
# in the JSON so the before/after ratio travels with the artifact.
#
# The alloc ceiling is deliberately loose (~3x the current steady state, still
# ~10x below the seed) so the gate catches a regression of the incremental
# machinery — an accidental per-movement clone or per-route heap boxing blows
# through it instantly — without flaking on noise.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-100x}"
ALLOC_CEILING="${ALLOC_CEILING:-12000}"
# The portfolio path races 4 chains, so its steady state is ~4x one chain
# (currently ~48k on the unrolled-atax workload); the ceiling is ~3x that.
PORTFOLIO_ALLOC_CEILING="${PORTFOLIO_ALLOC_CEILING:-150000}"
OUT="${OUT:-BENCH_mapper.json}"

# Seed-implementation numbers (commit f63b491, -benchtime 100x, same machine
# class as CI): recorded once so the artifact documents the before/after.
SEED_NS=16109082
SEED_ALLOCS=115206
SEED_BYTES=5511960

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
fi

echo "running BenchmarkMapperCore (-benchtime $BENCHTIME)..." >&2
raw=$(go test -run '^$' -bench '^BenchmarkMapperCore$' -benchtime "$BENCHTIME" -benchmem .)
echo "$raw" >&2

line=$(echo "$raw" | grep '^BenchmarkMapperCore')
ns=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="ns/op") printf "%d", $i}')
bytes=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="B/op") printf "%d", $i}')
allocs=$(echo "$line" | awk '{for (i=1;i<=NF;i++) if ($(i+1)=="allocs/op") printf "%d", $i}')

if [[ -z "$ns" || -z "$allocs" ]]; then
  echo "bench-mapper: could not parse benchmark output" >&2
  exit 1
fi

speedup=$(awk -v a="$SEED_NS" -v b="$ns" 'BEGIN {printf "%.2f", a/b}')
allocratio=$(awk -v a="$SEED_ALLOCS" -v b="$allocs" 'BEGIN {printf "%.2f", a/b}')

# Portfolio quality-vs-wallclock: K=1 vs K=4 restart chains on the unrolled
# atax workload over the same seed set. cost/op (II*1000 + hops, 1e6 per
# failed map) is deterministic — chain 0 of every portfolio IS the K=1 run,
# so cost(K4) <= cost(K1) must hold on any machine, and --check enforces it.
# ns/op is informational: chains run concurrently, so on a multi-core box
# K4 wall-clock approaches K1's while its cost is never worse.
echo "running BenchmarkMapperPortfolio{K1,K4} (-benchtime $BENCHTIME)..." >&2
praw=$(go test -run '^$' -bench '^BenchmarkMapperPortfolioK[14]$' -benchtime "$BENCHTIME" -benchmem .)
echo "$praw" >&2

pfield() { # pfield <benchmark-name> <unit>
  echo "$praw" | grep "^$1 " | awk -v unit="$2" \
    '{for (i=1;i<=NF;i++) if ($(i+1)==unit) printf "%s", $i}'
}
k1_ns=$(pfield BenchmarkMapperPortfolioK1 "ns/op")
k1_cost=$(pfield BenchmarkMapperPortfolioK1 "cost/op")
k1_ii=$(pfield BenchmarkMapperPortfolioK1 "II/op")
k1_hops=$(pfield BenchmarkMapperPortfolioK1 "hops/op")
k1_allocs=$(pfield BenchmarkMapperPortfolioK1 "allocs/op")
k4_ns=$(pfield BenchmarkMapperPortfolioK4 "ns/op")
k4_cost=$(pfield BenchmarkMapperPortfolioK4 "cost/op")
k4_ii=$(pfield BenchmarkMapperPortfolioK4 "II/op")
k4_hops=$(pfield BenchmarkMapperPortfolioK4 "hops/op")
k4_allocs=$(pfield BenchmarkMapperPortfolioK4 "allocs/op")

if [[ -z "$k1_cost" || -z "$k4_cost" || -z "$k4_allocs" ]]; then
  echo "bench-mapper: could not parse portfolio benchmark output" >&2
  exit 1
fi

cat > "$OUT" <<EOF
{
  "benchmark": "BenchmarkMapperCore",
  "benchtime": "$BENCHTIME",
  "seed": {
    "commit": "f63b491",
    "ns_per_op": $SEED_NS,
    "bytes_per_op": $SEED_BYTES,
    "allocs_per_op": $SEED_ALLOCS
  },
  "current": {
    "ns_per_op": $ns,
    "bytes_per_op": $bytes,
    "allocs_per_op": $allocs
  },
  "speedup": $speedup,
  "alloc_reduction": $allocratio,
  "alloc_ceiling": $ALLOC_CEILING,
  "portfolio": {
    "benchmark": "BenchmarkMapperPortfolio",
    "workload": "atax unrolled x2, cgra-4x4, lisa engine, 1200 moves/II",
    "cost_metric": "II*1000 + hops per seed (1e6 per failed map), averaged",
    "k1": {
      "ns_per_op": $k1_ns,
      "cost_per_op": $k1_cost,
      "mean_ii": $k1_ii,
      "mean_hops": $k1_hops,
      "allocs_per_op": $k1_allocs
    },
    "k4": {
      "ns_per_op": $k4_ns,
      "cost_per_op": $k4_cost,
      "mean_ii": $k4_ii,
      "mean_hops": $k4_hops,
      "allocs_per_op": $k4_allocs
    },
    "alloc_ceiling": $PORTFOLIO_ALLOC_CEILING
  }
}
EOF
echo "wrote $OUT (ns/op=$ns allocs/op=$allocs speedup=${speedup}x allocs ÷${allocratio}; portfolio cost K1=$k1_cost K4=$k4_cost)" >&2

if [[ "$check" == 1 ]]; then
  if (( allocs > ALLOC_CEILING )); then
    echo "bench-mapper: FAIL — allocs/op $allocs exceeds ceiling $ALLOC_CEILING" >&2
    exit 1
  fi
  echo "bench-mapper: allocs/op $allocs within ceiling $ALLOC_CEILING" >&2
  k4a=${k4_allocs%%.*}
  if (( k4a > PORTFOLIO_ALLOC_CEILING )); then
    echo "bench-mapper: FAIL — portfolio allocs/op $k4_allocs exceeds ceiling $PORTFOLIO_ALLOC_CEILING" >&2
    exit 1
  fi
  echo "bench-mapper: portfolio allocs/op $k4_allocs within ceiling $PORTFOLIO_ALLOC_CEILING" >&2
  if awk -v a="$k4_cost" -v b="$k1_cost" 'BEGIN {exit !(a+0 <= b+0)}'; then
    echo "bench-mapper: portfolio cost/op K4=$k4_cost <= K1=$k1_cost" >&2
  else
    echo "bench-mapper: FAIL — K=4 portfolio cost/op $k4_cost worse than K=1 $k1_cost" >&2
    exit 1
  fi
fi
