package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
)

func mapOK(t *testing.T, ar arch.Arch, g *dfg.Graph, seed int64) mapper.Result {
	t.Helper()
	res, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: seed, MaxMoves: 1600})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("mapping failed for %s on %s", g.Name, ar.Name())
	}
	return res
}

func TestSimulateGemm(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mapOK(t, ar, g, 1)
	tr, err := Run(ar, g, &res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stores) != 5 { // gemm has one store per iteration
		t.Fatalf("store events = %d, want 5", len(tr.Stores))
	}
	// Pipelining: total cycles must be well below serial execution
	// (5 iterations x schedule length) and consistent with II spacing.
	lastFire := tr.Stores[len(tr.Stores)-1].Cycle
	firstFire := tr.Stores[0].Cycle
	if lastFire-firstFire != 4*res.II {
		t.Errorf("store spacing %d cycles, want 4*II=%d", lastFire-firstFire, 4*res.II)
	}
	if tr.PeakResourceUse < 1 {
		t.Error("peak resource use not recorded")
	}
}

func TestSimulateAllKernelsOn4x4(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for _, name := range kernels.Names() {
		g := kernels.MustByName(name)
		res, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: 3, MaxMoves: 1600})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Errorf("%s: mapping failed", name)
			continue
		}
		if _, err := Run(ar, g, &res, 3); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSimulateSystolic(t *testing.T) {
	ar := arch.NewSystolic5x5()
	g := kernels.MustByName("doitgen")
	res := mapOK(t, ar, g, 2)
	tr, err := Run(ar, g, &res, 4)
	if err != nil {
		t.Fatal(err)
	}
	// II = 1: a new iteration every cycle.
	if tr.II != 1 {
		t.Fatalf("systolic II = %d", tr.II)
	}
	if tr.Stores[len(tr.Stores)-1].Cycle-tr.Stores[0].Cycle != 3 {
		t.Error("systolic stores must fire on consecutive cycles")
	}
}

func TestSimulateCatchesCorruptedRoute(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	res := mapOK(t, ar, g, 4)
	// Truncate one route: arrival time breaks (and Verify's EdgeHops check
	// is bypassed by fixing EdgeHops to match).
	bad := res
	bad.Routes = append([][]int(nil), res.Routes...)
	longest, li := 0, -1
	for i, p := range bad.Routes {
		if len(p) > longest {
			longest, li = len(p), i
		}
	}
	if longest < 3 {
		t.Skip("no multi-hop route to corrupt")
	}
	bad.Routes[li] = bad.Routes[li][:len(bad.Routes[li])-1]
	_, err := Run(ar, g, &bad, 2)
	if err == nil {
		t.Fatal("sim accepted a truncated route")
	}
	if !strings.Contains(err.Error(), "route") && !strings.Contains(err.Error(), "arrives") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSimulateCatchesOverlapViolation(t *testing.T) {
	// Hand-build an illegal result: two nodes on the same FU modulo slot is
	// caught by Verify; instead corrupt a route to pass through an
	// op-occupied FU, which only the cycle-accurate occupancy sees.
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mapOK(t, ar, g, 5)
	rg := ar.BuildRGraph(res.II)
	bad := res
	bad.Routes = append([][]int(nil), res.Routes...)
	// Find a 2+-hop route and redirect its mid node onto some op-occupied
	// FU at the right cycle, if adjacency allows; otherwise skip.
	for i, p := range bad.Routes {
		if len(p) != 3 {
			continue
		}
		mid := p[1]
		for v := range g.Nodes {
			fu := rg.FUAt(res.PE[v], res.Time[v]%res.II)
			if fu == mid || fu == p[0] || fu == p[2] {
				continue
			}
			if rg.Nodes[fu].Cycle != rg.Nodes[mid].Cycle {
				continue
			}
			if !hasRGEdge(rg, p[0], fu) || !hasRGEdge(rg, fu, p[2]) {
				continue
			}
			bad.Routes[i] = []int{p[0], fu, p[2]}
			if _, err := Run(ar, g, &bad, 2); err == nil {
				t.Fatal("sim accepted a route through a computing FU")
			}
			return
		}
	}
	t.Skip("no corruptible route found for this seed")
}

func TestReferenceDeterministicAndIterationDependent(t *testing.T) {
	g := kernels.MustByName("atax")
	a, err := Reference(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Reference(g, 3)
	if len(a) != len(b) {
		t.Fatal("reference not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reference not deterministic")
		}
	}
	// Loads stream new data each iteration, so values should change.
	same := true
	for i := 1; i < len(a); i++ {
		if a[i].Iteration != a[0].Iteration && a[i].Node == a[0].Node &&
			a[i].Value != a[0].Value {
			same = false
		}
	}
	if same && len(a) > 2 {
		t.Error("store values identical across iterations; loads not streaming")
	}
}

func TestSimulateRandomDFGs(t *testing.T) {
	ar := arch.NewBaseline4x4()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "fuzz")
		res, err := mapper.Map(ar, g, mapper.AlgLISA, nil, mapper.Options{Seed: seed, MaxMoves: 1200})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			continue
		}
		if _, err := Run(ar, g, &res, 3); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mapper.Result{OK: false}
	if _, err := Run(ar, g, &res, 1); err == nil {
		t.Fatal("failed result must be rejected")
	}
	ok := mapOK(t, ar, g, 1)
	if _, err := Run(ar, g, &ok, 0); err == nil {
		t.Fatal("zero iterations must be rejected")
	}
}

func TestTraceCSVExports(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("gemm")
	res := mapOK(t, ar, g, 7)
	tr, err := Run(ar, g, &res, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteStoresCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(tr.Stores)+1 {
		t.Fatalf("CSV lines = %d, want %d", lines, len(tr.Stores)+1)
	}
	if !strings.HasPrefix(buf.String(), "cycle,iteration,node,addr,value") {
		t.Fatal("CSV header missing")
	}
}

func TestActivityTable(t *testing.T) {
	ar := arch.NewBaseline4x4()
	g := kernels.MustByName("syrk")
	res := mapOK(t, ar, g, 8)
	rows, err := Activity(ar, g, &res)
	if err != nil {
		t.Fatal(err)
	}
	compute := 0
	for _, r := range rows {
		if r.Cycle < 0 || r.Cycle >= res.II {
			t.Fatalf("activity cycle %d out of II window", r.Cycle)
		}
		if r.Kind == "compute" {
			compute++
		}
	}
	if compute != g.NumNodes() {
		t.Fatalf("compute rows = %d, want %d", compute, g.NumNodes())
	}
	var buf bytes.Buffer
	if err := WriteActivityCSV(&buf, ar, g, &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compute") {
		t.Fatal("activity CSV missing compute rows")
	}
	if _, err := Activity(ar, g, &mapper.Result{}); err == nil {
		t.Fatal("failed result must be rejected")
	}
}
