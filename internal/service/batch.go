package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"github.com/lisa-go/lisa/internal/cluster"
	"github.com/lisa-go/lisa/internal/dfg"
)

// BatchRequest is the POST /v1/map/batch body: up to MaxBatchItems
// independent mapping requests (any mix of kernels, inline DFGs, archs and
// engines) answered in one round trip.
type BatchRequest struct {
	Items []MapRequest `json:"items"`
}

// BatchItemResult is one item's outcome, in request order. Status mirrors
// what POST /v1/map would have answered for the same request; on 200 the
// Response field holds the exact /v1/map document (compact, without the
// trailing newline), so batch and single-request bodies stay mutually
// byte-comparable. Items fail independently: one bad item never spoils the
// batch.
type BatchItemResult struct {
	Status   int             `json:"status"`
	Error    string          `json:"error,omitempty"`
	Defect   string          `json:"defect,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// BatchResponse is the POST /v1/map/batch body on success (the batch
// itself succeeds whenever it parses; per-item failures live in Items).
type BatchResponse struct {
	Items  []BatchItemResult `json:"items"`
	OK     int               `json:"ok"`
	Failed int               `json:"failed"`
}

// handleMapBatch fans a batch of mapping requests out over the dedicated
// batch pool. Each item goes through the exact /v1/map serving stack —
// per-item cache lookup, store, cluster routing, singleflight, per-item
// deadline — so a batch is semantically N single requests minus N-1 round
// trips. Volatile dispositions (cache/cluster state) are deliberately
// absent from the body: identical batches answer byte-identically.
func (s *Server) handleMapBatch(w http.ResponseWriter, r *http.Request) {
	const route = "/v1/map/batch"
	if r.Method != http.MethodPost {
		s.fail(w, route, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.isDraining() {
		s.fail(w, route, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.metrics.InflightAdd(1)
	defer s.metrics.InflightAdd(-1)

	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, route, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, route, http.StatusBadRequest, "\"items\" must be non-empty")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.fail(w, route, http.StatusBadRequest, "batch of %d items exceeds the limit of %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}

	results := make([]BatchItemResult, len(req.Items))
	cancel := r.Context().Done()
	forwarded := r.Header.Get(cluster.ForwardedHeader) != ""
	var wg sync.WaitGroup
	for i := range req.Items {
		// Re-marshal the item: prepare and any proxy hop work from exact
		// request bytes, and for an item those are its own sub-document.
		raw, err := json.Marshal(&req.Items[i])
		if err != nil {
			results[i] = BatchItemResult{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		job, err := s.prepare(raw)
		if err != nil {
			results[i] = BatchItemResult{Status: http.StatusBadRequest, Error: err.Error()}
			if de, ok := dfg.AsDefect(err); ok {
				results[i].Defect = string(de.Kind)
			}
			continue
		}
		i := i
		run := func() {
			results[i] = s.batchItem(job, cancel, forwarded)
		}
		wg.Add(1)
		if !s.batchPool.TrySubmit(func() { defer wg.Done(); run() }) {
			// Fan-out pressure is not admission pressure: run the item on
			// this goroutine instead. Real backpressure still applies where
			// it belongs — the mapping pool answers 429 per item.
			run()
			wg.Done()
		}
	}
	wg.Wait()

	resp := BatchResponse{Items: results}
	for _, res := range results {
		if res.Status == http.StatusOK {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	s.metrics.Batch(len(results), resp.Failed)
	s.metrics.Request(route, http.StatusOK)
	writeJSON(w, http.StatusOK, resp)
}

// batchItem executes one prepared batch item and folds its outcome into
// the per-item result shape.
func (s *Server) batchItem(job *mapJob, cancel <-chan struct{}, forwarded bool) BatchItemResult {
	out := s.execute(job, cancel, forwarded)
	switch {
	case errors.Is(out.err, errCanceled):
		return BatchItemResult{Status: http.StatusRequestTimeout, Error: "canceled while waiting"}
	case errors.Is(out.err, errBusy):
		s.metrics.Rejected()
		return BatchItemResult{Status: http.StatusTooManyRequests, Error: "mapping queue full, retry later"}
	case out.err != nil:
		return BatchItemResult{Status: out.status, Error: out.err.Error()}
	case out.status == http.StatusOK:
		// Trim the newline /v1/map appends: inside a JSON array the item is
		// the compact document itself.
		return BatchItemResult{Status: http.StatusOK, Response: json.RawMessage(bytes.TrimSuffix(out.body, []byte("\n")))}
	default:
		// A relayed non-200 from the owning peer: its body is an errorBody.
		var eb errorBody
		if json.Unmarshal(out.body, &eb) == nil && eb.Error != "" {
			return BatchItemResult{Status: out.status, Error: eb.Error, Defect: eb.Defect}
		}
		return BatchItemResult{Status: out.status, Error: string(bytes.TrimSpace(out.body))}
	}
}
