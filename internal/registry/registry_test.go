package registry

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/traingen"
)

// quickCfg keeps on-demand training inside a test run.
func quickCfg() Config {
	return Config{
		TrainGen: traingen.Config{
			NumDFGs:    12,
			Iterations: 2,
			DFG:        dfg.DefaultRandomConfig(),
			MapOpts:    mapper.Options{MaxMoves: 500},
			Filter:     labels.DefaultFilterConfig(),
		},
		TrainCfg:      gnn.TrainConfig{Epochs: 2, LR: 0.003, WeightDecay: 0.0005},
		Seed:          1,
		TrainOnDemand: true,
	}
}

func TestConcurrentModelForTrainsOnce(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	const callers = 8
	models := make([]*gnn.Model, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			m, err := r.ModelFor(ar)
			if err != nil {
				t.Errorf("ModelFor: %v", err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatal("concurrent ModelFor calls resolved different model instances")
		}
	}
	if got := r.Ready(); len(got) != 1 || got[0] != ar.Name() {
		t.Fatalf("Ready() = %v, want [%s]", got, ar.Name())
	}
	stats, err := r.StatsFor(ar)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generated == 0 {
		t.Fatal("StatsFor reports zero generated DFGs after training")
	}
}

func TestPreloadedModelWinsOverTraining(t *testing.T) {
	r := New(quickCfg())
	ar := arch.NewBaseline4x4()
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	if !r.Put(pre) {
		t.Fatal("Put of a fresh architecture returned false")
	}
	if r.Put(pre) {
		t.Fatal("second Put for the same architecture claimed to win")
	}
	m, err := r.ModelFor(ar)
	if err != nil {
		t.Fatal(err)
	}
	if m != pre {
		t.Fatal("ModelFor trained a new model despite a pre-loaded one")
	}
}

func TestTrainOnDemandDisabled(t *testing.T) {
	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r := New(cfg)
	ar := arch.NewBaseline4x4()
	if _, err := r.ModelFor(ar); err == nil {
		t.Fatal("ModelFor trained with TrainOnDemand disabled")
	}
	// The failed lookup must not poison the slot for a later Put.
	pre := gnn.NewModel(rand.New(rand.NewSource(9)), ar.Name())
	if !r.Put(pre) {
		t.Fatal("Put after a denied ModelFor returned false")
	}
	if m, err := r.ModelFor(ar); err != nil || m != pre {
		t.Fatalf("ModelFor after Put = (%v, %v), want the pre-loaded model", m, err)
	}
}

func TestLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"cgra-4x4", "cgra-8x8"} {
		m := gnn.NewModel(rand.New(rand.NewSource(3)), name)
		f, err := os.Create(filepath.Join(dir, name+".model.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	cfg := quickCfg()
	cfg.TrainOnDemand = false
	r := New(cfg)
	names, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "cgra-4x4" || names[1] != "cgra-8x8" {
		t.Fatalf("LoadDir = %v", names)
	}
	ar, _ := arch.ByName("cgra-4x4")
	if _, err := r.ModelFor(ar); err != nil {
		t.Fatalf("ModelFor after LoadDir: %v", err)
	}
	if !r.Has("cgra-8x8") || r.Has("systolic-5x5") {
		t.Fatal("Has reports the wrong set of loaded models")
	}
}

func TestLoadDirRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(quickCfg())
	if _, err := r.LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a corrupt model file")
	}
}
