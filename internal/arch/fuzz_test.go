package arch

import (
	"strings"
	"testing"
)

func FuzzParseSpec(f *testing.F) {
	f.Add(sampleSpec)
	f.Add(`{"name":"x","rows":2,"cols":2}`)
	f.Add(`{"name":"x","rows":1,"cols":1,"links":{"torus":true}}`)
	f.Add(`{"name":"x","rows":2,"cols":2,"memory":{"policy":"custom","pes":[[0,0]]}}`)
	f.Add(`{"rows":-1}`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := LoadArch(strings.NewReader(src))
		if err != nil {
			return
		}
		// Anything accepted must pass the generic validation and build a
		// non-empty resource graph at II=1.
		if err := Validate(c); err != nil {
			t.Fatalf("accepted invalid arch: %v", err)
		}
		// MinII on a trivial graph must be sane.
		if c.MaxII() < 1 || c.NumPEs() < 1 {
			t.Fatal("degenerate accepted arch")
		}
	})
}
