package service

import (
	"sort"
	"sync"
	"time"

	"github.com/lisa-go/lisa/internal/fault"
)

// latencyBuckets are the upper bounds (inclusive, milliseconds) of the
// per-engine latency histogram; the final +Inf bucket is implicit.
var latencyBuckets = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

// Metrics aggregates request-level counters for /metrics. All methods are
// safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	start     time.Time
	requests  map[string]int64 // per route
	status    map[int]int64    // per HTTP status
	inflight  int64            // /v1/map requests currently admitted
	rejected  int64            // 429s from admission control
	hits      int64            // cache hits
	misses    int64            // cache misses (mapper actually ran)
	coalesced int64            // followers served by a singleflight leader
	panics    int64            // recovered panics (handlers and pool tasks)
	engines   map[string]*engineStats

	// Persistent store (L2) counters; all zero when no store is configured.
	storeHits      int64 // L1 miss answered from disk
	storeMisses    int64 // key absent from both tiers (mapper ran)
	storeReadErrs  int64 // read failures treated as misses (incl. corrupt entries)
	storeWriteErrs int64 // write failures (result still served, just not persisted)

	// Cluster counters; all zero when single-node.
	proxied   int64 // requests answered by forwarding to the owning peer
	fallbacks int64 // owner unreachable/overloaded → computed locally anyway

	// Batch endpoint counters.
	batchRequests int64
	batchItems    int64
	batchFailed   int64 // items that did not produce a 200 result
}

type engineStats struct {
	count    int64
	failures int64 // mapper returned OK=false
	degraded int64 // responses produced by a fallback rung, not the engine itself
	totalNS  int64
	buckets  []int64 // len(latencyBuckets)+1, last = +Inf
}

// NewMetrics creates an empty metrics set anchored at now.
func NewMetrics(now time.Time) *Metrics {
	return &Metrics{
		start:    now,
		requests: make(map[string]int64),
		status:   make(map[int]int64),
		engines:  make(map[string]*engineStats),
	}
}

// Request counts one request to a route with its response status.
func (m *Metrics) Request(route string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[route]++
	m.status[status]++
}

// InflightAdd moves the in-flight gauge by delta.
func (m *Metrics) InflightAdd(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight += delta
}

// Rejected counts one admission-control refusal.
func (m *Metrics) Rejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

// CacheHit / CacheMiss / Coalesced classify how a /v1/map request was
// answered: from the cache, by running the mapper, or by joining another
// request's run.
func (m *Metrics) CacheHit() { m.mu.Lock(); m.hits++; m.mu.Unlock() }

func (m *Metrics) CacheMiss() { m.mu.Lock(); m.misses++; m.mu.Unlock() }

func (m *Metrics) Coalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

// StoreHit / StoreMiss / StoreReadError / StoreWriteError classify how the
// persistent store (L2) participated in a request that missed L1.
func (m *Metrics) StoreHit() { m.mu.Lock(); m.storeHits++; m.mu.Unlock() }

func (m *Metrics) StoreMiss() { m.mu.Lock(); m.storeMisses++; m.mu.Unlock() }

func (m *Metrics) StoreReadError() { m.mu.Lock(); m.storeReadErrs++; m.mu.Unlock() }

func (m *Metrics) StoreWriteError() { m.mu.Lock(); m.storeWriteErrs++; m.mu.Unlock() }

// Proxied counts one request answered by the key's owning peer; Fallback
// counts one request computed locally because the owner could not serve it.
func (m *Metrics) Proxied() { m.mu.Lock(); m.proxied++; m.mu.Unlock() }

func (m *Metrics) Fallback() { m.mu.Lock(); m.fallbacks++; m.mu.Unlock() }

// Batch records one /v1/map/batch request with its item and failure counts.
func (m *Metrics) Batch(items, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchRequests++
	m.batchItems += int64(items)
	m.batchFailed += int64(failed)
}

// Panic counts one recovered panic (a handler or a pool task).
func (m *Metrics) Panic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// DegradedRun counts one response for the *requested* engine that was
// produced by a degradation-ladder fallback rather than the engine itself.
func (m *Metrics) DegradedRun(eng string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.engine(eng).degraded++
}

// engine returns the stats slot for eng, creating it. m.mu must be held.
func (m *Metrics) engine(eng string) *engineStats {
	e := m.engines[eng]
	if e == nil {
		e = &engineStats{buckets: make([]int64, len(latencyBuckets)+1)}
		m.engines[eng] = e
	}
	return e
}

// Mapped records one completed mapper invocation for an engine.
func (m *Metrics) Mapped(eng string, ok bool, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.engine(eng)
	e.count++
	if !ok {
		e.failures++
	}
	e.totalNS += int64(elapsed)
	ms := elapsed.Milliseconds()
	slot := len(latencyBuckets)
	for i, ub := range latencyBuckets {
		if ms <= ub {
			slot = i
			break
		}
	}
	e.buckets[slot]++
}

// Snapshot types mirror the /metrics JSON document.
type (
	// MetricsSnapshot is the full /metrics payload.
	MetricsSnapshot struct {
		UptimeSeconds float64                   `json:"uptimeSeconds"`
		Requests      map[string]int64          `json:"requests"`
		Status        map[string]int64          `json:"status"`
		Inflight      int64                     `json:"inflight"`
		Rejected      int64                     `json:"rejected"`
		Panics        int64                     `json:"panics"`
		Cache         CacheSnapshot             `json:"cache"`
		Engines       map[string]EngineSnapshot `json:"engines"`
		// Store and Cluster are present only when the daemon runs with a
		// persistent store / a peer list (the /metrics handler fills them in:
		// counters from Metrics, census gauges from the subsystems).
		Store   *StoreSnapshot   `json:"store,omitempty"`
		Cluster *ClusterSnapshot `json:"cluster,omitempty"`
		// Batch is present once /v1/map/batch has been used.
		Batch *BatchSnapshot `json:"batch,omitempty"`
		// Models reports model acquisition (the /metrics handler fills it in
		// from the registry): resolved models by provenance, plus the
		// degradation-ladder counters.
		Models *ModelsSnapshot `json:"models,omitempty"`
		// Faults reports per-site injection counts; present only while a
		// fault plan is armed (the /metrics handler fills it in).
		Faults map[fault.Site]int64 `json:"faults,omitempty"`
	}
	// CacheSnapshot reports hit/miss/coalesced counts, the hit ratio, and
	// the L1 gauges (entry count and total body bytes).
	CacheSnapshot struct {
		Hits      int64   `json:"hits"`
		Misses    int64   `json:"misses"`
		Coalesced int64   `json:"coalesced"`
		HitRatio  float64 `json:"hitRatio"`
		Entries   int     `json:"entries"`
		Bytes     int64   `json:"bytes"`
	}
	// StoreSnapshot reports the persistent (L2) result store: request
	// counters plus the on-disk census.
	StoreSnapshot struct {
		Hits        int64  `json:"hits"`
		Misses      int64  `json:"misses"`
		ReadErrors  int64  `json:"readErrors"`
		WriteErrors int64  `json:"writeErrors"`
		Entries     int    `json:"entries"`
		Bytes       int64  `json:"bytes"`
		Dropped     int    `json:"dropped"`
		Generation  uint64 `json:"generation"`
	}
	// ClusterSnapshot reports multi-node routing: how many requests were
	// proxied to their owning peer, how many fell back to local compute, and
	// per-peer health.
	ClusterSnapshot struct {
		Self      string         `json:"self"`
		Proxied   int64          `json:"proxied"`
		Fallbacks int64          `json:"fallbacks"`
		Peers     []PeerSnapshot `json:"peers"`
	}
	// PeerSnapshot is one peer's health row.
	PeerSnapshot struct {
		URL      string `json:"url"`
		Self     bool   `json:"self,omitempty"`
		Healthy  bool   `json:"healthy"`
		Failures int    `json:"failures,omitempty"`
	}
	// ModelsSnapshot reports model acquisition: how many resolved models
	// came from disk, local training, or a ring peer, and the raw ladder
	// counters (training runs and fetch attempts, successful or not).
	ModelsSnapshot struct {
		Loaded      int   `json:"loaded"`
		Trained     int   `json:"trained"`
		Shipped     int   `json:"shipped"`
		TrainRuns   int64 `json:"trainRuns"`
		Fetches     int64 `json:"fetches"`
		FetchErrors int64 `json:"fetchErrors"`
	}
	// BatchSnapshot reports /v1/map/batch usage.
	BatchSnapshot struct {
		Requests    int64 `json:"requests"`
		Items       int64 `json:"items"`
		FailedItems int64 `json:"failedItems"`
	}
	// EngineSnapshot reports one engine's invocation stats and latency
	// histogram.
	EngineSnapshot struct {
		Count     int64            `json:"count"`
		Failures  int64            `json:"failures"`
		Degraded  int64            `json:"degraded"`
		AvgMillis float64          `json:"avgMillis"`
		Histogram []HistogramEntry `json:"histogram"`
	}
	// HistogramEntry is one latency bucket; Le is the inclusive upper
	// bound in milliseconds, -1 for the +Inf bucket.
	HistogramEntry struct {
		Le    int64 `json:"leMillis"`
		Count int64 `json:"count"`
	}
)

// Snapshot captures the current counters. cacheEntries and cacheBytes are
// supplied by the caller (the cache owns its gauges); now supplies the
// uptime reference. Store and Cluster blocks are left nil — the /metrics
// handler attaches them when those subsystems are configured (see
// storeSnapshot / clusterCounters).
func (m *Metrics) Snapshot(now time.Time, cacheEntries int, cacheBytes int64) MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		UptimeSeconds: now.Sub(m.start).Seconds(),
		Requests:      make(map[string]int64, len(m.requests)),
		Status:        make(map[string]int64, len(m.status)),
		Inflight:      m.inflight,
		Rejected:      m.rejected,
		Panics:        m.panics,
		Cache: CacheSnapshot{
			Hits:      m.hits,
			Misses:    m.misses,
			Coalesced: m.coalesced,
			Entries:   cacheEntries,
			Bytes:     cacheBytes,
		},
		Engines: make(map[string]EngineSnapshot, len(m.engines)),
	}
	if m.batchRequests > 0 {
		s.Batch = &BatchSnapshot{Requests: m.batchRequests, Items: m.batchItems, FailedItems: m.batchFailed}
	}
	if total := m.hits + m.misses + m.coalesced; total > 0 {
		// Coalesced followers count as hits: the mapper did not run for them.
		s.Cache.HitRatio = float64(m.hits+m.coalesced) / float64(total)
	}
	//lisa:vet-ok maprange map-to-map snapshot copies; encoding/json sorts map keys when the snapshot is served
	for route, n := range m.requests {
		s.Requests[route] = n
	}
	//lisa:vet-ok maprange same: per-key copy into a map that json marshals with sorted keys
	for code, n := range m.status {
		s.Status[statusKey(code)] = n
	}
	names := make([]string, 0, len(m.engines))
	for name := range m.engines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := m.engines[name]
		es := EngineSnapshot{Count: e.count, Failures: e.failures, Degraded: e.degraded}
		if e.count > 0 {
			es.AvgMillis = float64(e.totalNS) / float64(e.count) / 1e6
		}
		for i, n := range e.buckets {
			le := int64(-1)
			if i < len(latencyBuckets) {
				le = latencyBuckets[i]
			}
			es.Histogram = append(es.Histogram, HistogramEntry{Le: le, Count: n})
		}
		s.Engines[name] = es
	}
	return s
}

// storeSnapshot returns the L2 counter half of a StoreSnapshot; the
// /metrics handler adds the on-disk census gauges.
func (m *Metrics) storeSnapshot() StoreSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return StoreSnapshot{
		Hits:        m.storeHits,
		Misses:      m.storeMisses,
		ReadErrors:  m.storeReadErrs,
		WriteErrors: m.storeWriteErrs,
	}
}

// clusterCounters returns the routing counters for a ClusterSnapshot.
func (m *Metrics) clusterCounters() (proxied, fallbacks int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.proxied, m.fallbacks
}

// statusKey renders an HTTP status as a JSON map key.
func statusKey(code int) string {
	const digits = "0123456789"
	if code < 100 || code > 999 {
		return "unknown"
	}
	return string([]byte{digits[code/100], digits[code/10%10], digits[code%10]})
}
