package dfg

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic and anything they accept must
// be a valid graph. `go test` runs the seed corpus; `go test -fuzz=FuzzX`
// explores further.

func FuzzParseDOT(f *testing.F) {
	f.Add("digraph d { a -> b; }")
	f.Add(`digraph "g" { n0 [label="x\nmul"]; n1 [opcode=load]; n1 -> n0; }`)
	f.Add("digraph{a->b;b->c;a->c}")
	f.Add("not a graph at all")
	f.Add("digraph d { a [opcode=\"; -> ]\"]; a -> b; }")
	g := New("seed")
	x := g.AddNode("x", OpMul)
	y := g.AddNode("y", OpStore)
	g.AddEdge(x, y)
	var buf bytes.Buffer
	_ = g.WriteDOT(&buf)
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseDOT(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"x","nodes":[{"name":"a","op":"load"},{"name":"b","op":"store"}],"edges":[[0,1]]}`)
	f.Add(`{"name":"x","nodes":[],"edges":[]}`)
	f.Add(`{`)
	f.Add(`{"name":"x","nodes":[{"name":"a","op":"add"}],"edges":[[0,0]]}`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}
