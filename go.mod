module github.com/lisa-go/lisa

go 1.22
