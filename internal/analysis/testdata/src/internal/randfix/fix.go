// Package randfix is the globalrand fixture.
package randfix

import "math/rand"

// Global draws from the process-global stream: flagged.
func Global() int {
	return rand.Intn(10)
}

// GlobalPair flags each call site.
func GlobalPair(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	return rand.Float64()
}

// Injected uses a per-task generator: not flagged.
func Injected(r *rand.Rand) int {
	return r.Intn(10)
}

// Construct builds a private generator: constructors are not flagged.
func Construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Suppressed carries an annotation: not flagged.
func Suppressed() int {
	//lisa:nondet-ok retry jitter on an error path; never reaches a result
	return rand.Intn(3)
}
