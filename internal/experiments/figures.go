package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/mapper"
	"github.com/lisa-go/lisa/internal/parallel"
	"github.com/lisa-go/lisa/internal/power"
	"github.com/lisa-go/lisa/internal/traingen"
)

// CompareRow holds the results of every method for one kernel on one
// architecture; Figs. 9, 10 and 11 all derive from these rows.
type CompareRow struct {
	Kernel  string
	Graph   *dfg.Graph
	Results map[Method]mapper.Result
}

// Comparison is one figure panel: an architecture, a kernel set and the
// methods' results.
type Comparison struct {
	Arch    arch.Arch
	Label   string // e.g. "Fig9a"
	Methods []Method
	Rows    []CompareRow
}

// Fig9Spec identifies one panel of Fig. 9.
type Fig9Spec struct {
	ID       string
	Arch     arch.Arch
	Kernels  []string
	Unrolled bool
}

// Fig9Specs returns the seven panels of Fig. 9 in paper order.
func Fig9Specs() []Fig9Spec {
	return []Fig9Spec{
		{ID: "Fig9a", Arch: arch.NewBaseline3x3(), Kernels: kernels.Names()},
		{ID: "Fig9b", Arch: arch.NewBaseline4x4(), Kernels: kernels.Names()},
		{ID: "Fig9c", Arch: arch.NewLessRouting4x4(), Kernels: kernels.Names()},
		{ID: "Fig9d", Arch: arch.NewBaseline4x4(), Kernels: kernels.UnrolledNames4x4(), Unrolled: true},
		{ID: "Fig9e", Arch: arch.NewLessMem4x4(), Kernels: kernels.Names()},
		{ID: "Fig9f", Arch: arch.NewBaseline8x8(), Kernels: kernels.UnrolledNames8x8(), Unrolled: true},
		{ID: "Fig9g", Arch: arch.NewSystolic5x5(), Kernels: kernels.Names()},
	}
}

// Fig9SpecByID resolves one panel.
func Fig9SpecByID(id string) (Fig9Spec, bool) {
	for _, s := range Fig9Specs() {
		if s.ID == id {
			return s, true
		}
	}
	return Fig9Spec{}, false
}

// Compare runs the given methods over a kernel set on one architecture.
// The kernel × method cells fan out over Profile.Workers goroutines; every
// cell is seeded independently of scheduling, so the rows are identical at
// any worker count.
func (c *Context) Compare(label string, ar arch.Arch, kernelNames []string,
	unrolled bool, methods []Method) *Comparison {

	cmp := &Comparison{Arch: ar, Label: label, Methods: methods}
	graphs := make([]*dfg.Graph, len(kernelNames))
	for i, name := range kernelNames {
		var err error
		if unrolled {
			graphs[i], err = kernels.Unrolled(name)
		} else {
			graphs[i], err = kernels.ByName(name)
		}
		if err != nil {
			panic(err)
		}
	}

	results := parallel.MapOrdered(c.Profile.Workers, len(graphs)*len(methods),
		func(i int) mapper.Result {
			return c.Run(ar, graphs[i/len(methods)], methods[i%len(methods)])
		})
	for gi, g := range graphs {
		row := CompareRow{Kernel: g.Name, Graph: g, Results: map[Method]mapper.Result{}}
		for mi, m := range methods {
			row.Results[m] = results[gi*len(methods)+mi]
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	return cmp
}

// Fig9 runs one panel of Fig. 9 (ILP vs SA vs LISA mapping quality).
func (c *Context) Fig9(spec Fig9Spec) *Comparison {
	return c.Compare(spec.ID, spec.Arch, spec.Kernels, spec.Unrolled,
		[]Method{MethodILP, MethodSA, MethodLISA})
}

// Fig12 runs one panel of the routing-priority ablation (SA vs SA-RP vs
// LISA; paper Fig. 12 on the 4×4 baseline and less-routing CGRAs).
func (c *Context) Fig12(ar arch.Arch) *Comparison {
	return c.Compare("Fig12:"+ar.Name(), ar, kernels.Names(), false,
		[]Method{MethodSA, MethodSARP, MethodLISA})
}

// Fig13 runs the SA-M ablation on the 4×4 baseline over the original and
// unrolled DFG sets (paper Fig. 13).
func (c *Context) Fig13() (orig, unrolled *Comparison) {
	methods := []Method{MethodSA, MethodSAM, MethodLISA}
	ar := arch.NewBaseline4x4()
	orig = c.Compare("Fig13", ar, kernels.UnrolledNames4x4(), false, methods)
	unrolled = c.Compare("Fig13u", ar, kernels.UnrolledNames4x4(), true, methods)
	return orig, unrolled
}

// PowerRow is one bar group of Fig. 10: MOPS/W per method, normalized to
// LISA.
type PowerRow struct {
	Kernel     string
	MOPSPerW   map[Method]float64
	Normalized map[Method]float64 // relative to LISA (1.0 when equal)
}

// Fig10 derives the power-efficiency figure from a Fig. 9 comparison.
func Fig10(cmp *Comparison, params power.ModelParams) []PowerRow {
	var rows []PowerRow
	for _, r := range cmp.Rows {
		pr := PowerRow{
			Kernel:     r.Kernel,
			MOPSPerW:   map[Method]float64{},
			Normalized: map[Method]float64{},
		}
		// Iterate the canonical method list, not the map: float division
		// is per-key here, but keeping one ordered walk everywhere means
		// the analyzer (and a reader) need no per-site proof.
		for _, m := range cmp.Methods {
			if res, ok := r.Results[m]; ok && res.OK {
				rep := power.Evaluate(cmp.Arch, r.Graph, res.II, res.RoutingCost, params)
				pr.MOPSPerW[m] = rep.MOPSPerWatt
			}
		}
		base := pr.MOPSPerW[MethodLISA]
		for _, m := range cmp.Methods {
			if v, ok := pr.MOPSPerW[m]; ok && base > 0 {
				pr.Normalized[m] = v / base
			}
		}
		rows = append(rows, pr)
	}
	return rows
}

// TimeRow is one bar group of Fig. 11: compilation time per method.
type TimeRow struct {
	Kernel string
	Times  map[Method]time.Duration
	Mapped map[Method]bool
}

// Fig11 derives the compilation-time figure from a Fig. 9 comparison; for
// methods that cannot map, the termination time counts as compilation time,
// as in the paper.
func Fig11(cmp *Comparison) []TimeRow {
	var rows []TimeRow
	for _, r := range cmp.Rows {
		tr := TimeRow{Kernel: r.Kernel, Times: map[Method]time.Duration{}, Mapped: map[Method]bool{}}
		for _, m := range cmp.Methods {
			if res, ok := r.Results[m]; ok {
				tr.Times[m] = res.Duration
				tr.Mapped[m] = res.OK
			}
		}
		rows = append(rows, tr)
	}
	return rows
}

// GeomeanSpeedup summarizes Fig. 11 the way the paper's prose does:
// the average factor by which LISA's compilation is faster than the other
// method (arithmetic mean of ratios over kernels, as "594x/17x" style
// aggregates are reported).
func GeomeanSpeedup(rows []TimeRow, other Method) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		lisa := r.Times[MethodLISA]
		o := r.Times[other]
		if lisa > 0 && o > 0 {
			sum += float64(o) / float64(lisa)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table2Row is one line of Table II: per-label GNN prediction accuracy on a
// held-out split of the generated dataset.
type Table2Row struct {
	ArchName string
	Accuracy [4]float64
	Samples  int
}

// Table2 trains (via the context cache) and evaluates the GNN for each
// architecture. Accuracy is measured on a fresh dataset generated with a
// different seed — the equivalent of the paper's held-out evaluation. The
// per-architecture train+evaluate pipelines fan out over Profile.Workers.
func (c *Context) Table2(targets []arch.Arch) []Table2Row {
	return parallel.MapOrdered(c.Profile.Workers, len(targets), func(i int) Table2Row {
		ar := targets[i]
		model := c.ModelFor(ar)
		cfg := c.Profile.TrainGen
		cfg.Seed = c.Profile.Seed + 99991
		cfg.NumDFGs = maxInt(12, cfg.NumDFGs/2)
		if cfg.Workers == 0 {
			cfg.Workers = c.Profile.Workers
		}
		ds := traingen.Generate(ar, cfg)
		row := Table2Row{ArchName: ar.Name(), Samples: len(ds.Samples)}
		if len(ds.Samples) > 0 {
			row.Accuracy = model.Accuracy(ds.Samples)
		}
		return row
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render writes a Comparison as a paper-style text table: II per method for
// CGRAs (0 = cannot map), ✓/✗ for the systolic array. The table is built in
// memory and written once, so the only possible error is the writer's.
func (cmp *Comparison) Render(w io.Writer) error {
	var b strings.Builder
	systolic := cmp.Arch.MaxII() == 1
	fmt.Fprintf(&b, "%s — %s (", cmp.Label, cmp.Arch.Name())
	if systolic {
		fmt.Fprintf(&b, "mapped ✓ / not mapped ✗")
	} else {
		fmt.Fprintf(&b, "II; 0 = cannot map")
	}
	fmt.Fprintf(&b, ")\n")

	fmt.Fprintf(&b, "%-12s", "kernel")
	for _, m := range cmp.Methods {
		fmt.Fprintf(&b, "%8s", m)
	}
	fmt.Fprintln(&b)
	for _, r := range cmp.Rows {
		fmt.Fprintf(&b, "%-12s", r.Kernel)
		for _, m := range cmp.Methods {
			res := r.Results[m]
			if systolic {
				mark := "✗" // ✗
				if res.OK {
					mark = "✓" // ✓
				}
				fmt.Fprintf(&b, "%8s", mark)
			} else {
				fmt.Fprintf(&b, "%8d", res.II)
			}
		}
		fmt.Fprintln(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderPower writes Fig. 10 rows (normalized MOPS/W).
func RenderPower(w io.Writer, label string, methods []Method, rows []PowerRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — power efficiency normalized to LISA\n", label)
	fmt.Fprintf(&b, "%-12s", "kernel")
	for _, m := range methods {
		fmt.Fprintf(&b, "%8s", m)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Kernel)
		for _, m := range methods {
			if v, ok := r.Normalized[m]; ok {
				fmt.Fprintf(&b, "%8.2f", v)
			} else {
				fmt.Fprintf(&b, "%8s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderTimes writes Fig. 11 rows; unmapped methods show the termination
// time with a trailing ✗.
func RenderTimes(w io.Writer, label string, methods []Method, rows []TimeRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — compilation time\n", label)
	fmt.Fprintf(&b, "%-12s", "kernel")
	for _, m := range methods {
		fmt.Fprintf(&b, "%14s", m)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Kernel)
		for _, m := range methods {
			mark := ""
			if !r.Mapped[m] {
				mark = "✗"
			}
			fmt.Fprintf(&b, "%13s%s", r.Times[m].Round(time.Millisecond), orSpace(mark))
		}
		fmt.Fprintln(&b)
	}
	for _, m := range methods {
		if m == MethodLISA {
			continue
		}
		if sp := GeomeanSpeedup(rows, m); sp > 0 {
			fmt.Fprintf(&b, "LISA compile-time reduction vs %s: %.1fx\n", m, sp)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func orSpace(s string) string {
	if s == "" {
		return " "
	}
	return s
}

// RenderTable2 writes Table II.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	var b strings.Builder
	fmt.Fprintln(&b, "Table II — GNN label prediction accuracy")
	fmt.Fprintf(&b, "%-24s%8s%8s%8s%8s%10s\n",
		"architecture", "label1", "label2", "label3", "label4", "samples")
	for _, r := range rows {
		if r.Samples == 0 {
			fmt.Fprintf(&b, "%-24s%8s%8s%8s%8s%10d\n", r.ArchName, "-", "-", "-", "-", 0)
			continue
		}
		fmt.Fprintf(&b, "%-24s%8.3f%8.3f%8.3f%8.3f%10d\n",
			r.ArchName, r.Accuracy[0], r.Accuracy[1], r.Accuracy[2], r.Accuracy[3], r.Samples)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary counts paper-style aggregates over a set of comparisons: how many
// combinations each method mapped, and on how many LISA achieved strictly
// better / worse II than SA.
type Summary struct {
	Combinations int
	MappedBy     map[Method]int
	LISABetter   int
	LISAWorse    int
}

// Summarize aggregates comparisons.
func Summarize(cmps []*Comparison) Summary {
	s := Summary{MappedBy: map[Method]int{}}
	for _, cmp := range cmps {
		for _, r := range cmp.Rows {
			s.Combinations++
			for _, m := range cmp.Methods {
				if res, ok := r.Results[m]; ok && res.OK {
					s.MappedBy[m]++
				}
			}
			sa, lisa := r.Results[MethodSA], r.Results[MethodLISA]
			switch {
			case lisa.OK && !sa.OK:
				s.LISABetter++
			case !lisa.OK && sa.OK:
				s.LISAWorse++
			case lisa.OK && sa.OK && lisa.II < sa.II:
				s.LISABetter++
			case lisa.OK && sa.OK && lisa.II > sa.II:
				s.LISAWorse++
			}
		}
	}
	return s
}

// String renders the summary one-liner.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d combinations:", s.Combinations)
	for _, m := range []Method{MethodILP, MethodSA, MethodLISA} {
		if n, ok := s.MappedBy[m]; ok {
			fmt.Fprintf(&b, " %s maps %d;", m, n)
		}
	}
	fmt.Fprintf(&b, " LISA better/worse than SA: %d/%d", s.LISABetter, s.LISAWorse)
	return b.String()
}

// Portability runs the LISA-vs-baselines sweep over the extended target set
// (the paper's six plus the torus and heterogeneous CGRA variants): the
// scenario a portable compiler exists for. Methods: Greedy (one-pass list
// scheduling), SA, LISA. Targets fan out over Profile.Workers, each
// training its own GNN concurrently with the others' grids.
func (c *Context) Portability(kernelNames []string) []*Comparison {
	targets := arch.ExtendedTargets()
	return parallel.MapOrdered(c.Profile.Workers, len(targets), func(i int) *Comparison {
		ar := targets[i]
		return c.Compare("Portability:"+ar.Name(), ar, kernelNames, false,
			[]Method{MethodGreedy, MethodSA, MethodLISA})
	})
}
