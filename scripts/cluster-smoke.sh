#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end smoke test for distributed lisa-serve.
#
# Starts a 3-node cluster (static peer list, per-node persistent store),
# sends the same mapping request to every node, and asserts the distributed
# serving contract:
#
#   1. every node answers byte-identically;
#   2. the fleet ran the mapper exactly once for the one distinct request
#      (consistent-hash routing + cross-hop singleflight);
#   3. after restarting a node, it serves the request from its persistent
#      store byte-identically with zero fresh mapper invocations.
#
# Usage: scripts/cluster-smoke.sh [port-base]   (default 8741)

set -euo pipefail
cd "$(dirname "$0")/.."

PORT_BASE="${1:-8741}"
BIN=bin/lisa-serve
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/lisa-serve

URLS=()
for i in 0 1 2; do
  URLS+=("http://127.0.0.1:$((PORT_BASE + i))")
done
PEERS="$(IFS=,; echo "${URLS[*]}")"

start_node() { # start_node <index>
  local i="$1"
  "$BIN" -addr "127.0.0.1:$((PORT_BASE + i))" -train=false \
    -store-dir "$WORK/store$i" -peers "$PEERS" -self "${URLS[$i]}" \
    >"$WORK/node$i.log" 2>&1 &
  PIDS[$i]=$!
}

wait_ready() { # wait_ready <url>
  for _ in $(seq 1 50); do
    curl -sf "$1/readyz" >/dev/null && return 0
    sleep 0.2
  done
  echo "node $1 never became ready" >&2
  return 1
}

# engine_runs <url>: total mapper invocations on one node. In the /metrics
# document only engine blocks pair "count" with a following "failures" key
# (histogram entries pair it with "leMillis"), so the match is unambiguous.
engine_runs() {
  local doc
  doc="$(curl -sf "$1/metrics")" || return 1
  # grep exits 1 on a node that never ran the mapper; that is a valid 0.
  printf '%s' "$doc" |
    { grep -o '"count":[0-9]*,"failures"' || true; } |
    { grep -o '[0-9]*' || true; } |
    awk '{sum += $1} END {print sum + 0}'
}

for i in 0 1 2; do start_node "$i"; done
for u in "${URLS[@]}"; do wait_ready "$u"; done
echo "3-node cluster up: $PEERS"

req='{"kernel":"gemm","arch":"cgra-4x4","engine":"sa","seed":7}'
for i in 0 1 2; do
  curl -sf -X POST -d "$req" -o "$WORK/resp$i.json" "${URLS[$i]}/v1/map"
done
cmp "$WORK/resp0.json" "$WORK/resp1.json"
cmp "$WORK/resp0.json" "$WORK/resp2.json"
echo "bodies byte-identical across all 3 nodes"

total=0
for u in "${URLS[@]}"; do
  runs="$(engine_runs "$u")"
  total=$((total + runs))
done
echo "fleet-wide mapper runs: $total"
test "$total" -eq 1

# Restart node 0: its store must answer the request with no fresh compute.
kill "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true
start_node 0
wait_ready "${URLS[0]}"
curl -sf -X POST -d "$req" -o "$WORK/restart.json" "${URLS[0]}/v1/map"
cmp "$WORK/resp0.json" "$WORK/restart.json"
runs="$(engine_runs "${URLS[0]}")"
echo "restarted node mapper runs: $runs"
test "$runs" -eq 0
curl -sf "${URLS[0]}/metrics" | grep -q '"store":{' || {
  echo "restarted node /metrics has no store block" >&2
  exit 1
}

echo "cluster smoke: OK"
