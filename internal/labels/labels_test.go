package labels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/lisa-go/lisa/internal/dfg"
)

func chainGraph(n int) *dfg.Graph {
	g := dfg.New("chain")
	prev := g.AddNode("", dfg.OpLoad)
	for i := 1; i < n; i++ {
		cur := g.AddNode("", dfg.OpAdd)
		g.AddEdge(prev, cur)
		prev = cur
	}
	return g
}

func diamondGraph() *dfg.Graph {
	g := dfg.New("diamond")
	a := g.AddNode("a", dfg.OpLoad)
	b := g.AddNode("b", dfg.OpAdd)
	c := g.AddNode("c", dfg.OpMul)
	d := g.AddNode("d", dfg.OpStore)
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	g.AddEdge(b, d)
	g.AddEdge(c, d)
	return g
}

func TestMakePairCanonical(t *testing.T) {
	if MakePair(5, 2) != (Pair{A: 2, B: 5}) {
		t.Fatal("pair not canonical")
	}
	if MakePair(2, 5) != MakePair(5, 2) {
		t.Fatal("pair order-dependent")
	}
}

func TestInitialLabels(t *testing.T) {
	g := diamondGraph()
	an := dfg.Analyze(g)
	l := Initial(an)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Order == ASAP, temporal == 1, spatial == 0 (§V-B).
	for v := range g.Nodes {
		if l.Order[v] != float64(an.ASAP[v]) {
			t.Errorf("order[%d] = %v, want ASAP %d", v, l.Order[v], an.ASAP[v])
		}
	}
	for e := range l.Temporal {
		if l.Temporal[e] != 1 || l.Spatial[e] != 0 {
			t.Errorf("edge %d init = (%v,%v), want (0,1)", e, l.Spatial[e], l.Temporal[e])
		}
	}
	// b and c are same-level with common ancestor a and descendant d at
	// distance 1 each -> label 2 = 1.
	p := MakePair(1, 2)
	if got := l.SameLevel[p]; got != 1 {
		t.Errorf("same-level init = %v, want 1", got)
	}
}

func TestExtract(t *testing.T) {
	g := diamondGraph()
	an := dfg.Analyze(g)
	m := &MappingStats{
		II:       2,
		NodePE:   []int{0, 1, 2, 3},
		NodeTime: []int{0, 1, 1, 2},
		EdgeHops: []int{1, 1, 1, 1},
		SpatialDist: func(a, b int) int {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d
		},
	}
	l := Extract(an, m)
	if err := l.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Schedule order normalized to critical path (2): node d at time 2,
	// max time 2 -> order 2.
	if l.Order[3] != 2 {
		t.Errorf("order[d] = %v, want 2", l.Order[3])
	}
	if l.Order[0] != 0 {
		t.Errorf("order[a] = %v, want 0", l.Order[0])
	}
	// Edge a->c spans PEs 0 and 2 -> spatial 2.
	if l.Spatial[1] != 2 {
		t.Errorf("spatial[a->c] = %v, want 2", l.Spatial[1])
	}
	if l.SameLevel[MakePair(1, 2)] != 1 {
		t.Errorf("same-level(b,c) = %v, want 1", l.SameLevel[MakePair(1, 2)])
	}
}

func TestSelectAndCombine(t *testing.T) {
	g := chainGraph(4)
	an := dfg.Analyze(g)
	mk := func(ii, cost int, orderBase float64) Candidate {
		l := Initial(an)
		for v := range l.Order {
			l.Order[v] = orderBase + float64(v)
		}
		return Candidate{Labels: l, II: ii, RoutingCost: cost}
	}
	// Candidates: II 3 (ignored), II 2 cost 10 (standard), II 2 cost 11
	// (within 1.15x), II 2 cost 20 (excluded).
	combined, n := SelectAndCombine([]Candidate{
		mk(3, 1, 100), mk(2, 10, 0), mk(2, 11, 2), mk(2, 20, 50),
	})
	if n != 2 {
		t.Fatalf("survivors = %d, want 2", n)
	}
	// Averaged order of the two survivors: (0+2)/2 = 1 at node 0.
	if combined.Order[0] != 1 {
		t.Fatalf("combined order[0] = %v, want 1", combined.Order[0])
	}
	if l, n := SelectAndCombine(nil); l != nil || n != 0 {
		t.Fatal("empty candidates must return nil")
	}
}

func TestFilterAdmit(t *testing.T) {
	f := DefaultFilterConfig()
	// Hitting the minimum II admits with a single candidate (paper §V-C).
	if _, ok := f.Admit(2, 2, 1); !ok {
		t.Error("min-II label must be admitted")
	}
	// Far from optimal with few candidates: rejected.
	if _, ok := f.Admit(10, 2, 1); ok {
		t.Error("poor label with one candidate must be rejected")
	}
	// Far from optimal but many candidates push the score up.
	if _, ok := f.Admit(10, 2, 5); !ok {
		t.Error("many consistent candidates should be admitted")
	}
	if _, ok := f.Admit(3, 2, 0); ok {
		t.Error("zero candidates is never admissible")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamondGraph()
	l := Initial(dfg.Analyze(g))
	c := l.Clone()
	c.Order[0] = 99
	c.SameLevel[MakePair(1, 2)] = 77
	if l.Order[0] == 99 || l.SameLevel[MakePair(1, 2)] == 77 {
		t.Fatal("clone aliases original")
	}
}

func TestInitialAlwaysValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "r")
		l := Initial(dfg.Analyze(g))
		return l.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	g := diamondGraph()
	l := Initial(dfg.Analyze(g))
	l.Order = l.Order[:1]
	if l.Validate(g) == nil {
		t.Fatal("short Order must fail validation")
	}
}
