package dfg_test

// External test package: cross-checks the DFG optimization passes against
// the simulator's reference evaluator (importing sim from an in-package test
// would be an import cycle).

import (
	"math/rand"
	"testing"

	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/kernels"
	"github.com/lisa-go/lisa/internal/sim"
)

// storeByName collects reference store events keyed by node name so results
// can be compared across graphs with different node IDs.
func storeByName(t *testing.T, g *dfg.Graph, iters int) map[string][]sim.Value {
	t.Helper()
	events, err := sim.Reference(g, iters)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]sim.Value{}
	for _, e := range events {
		name := g.Nodes[e.Node].Name
		out[name] = append(out[name], e.Value)
	}
	return out
}

func TestCSEPreservesSemantics(t *testing.T) {
	// Build a graph with duplicated subexpressions.
	b := dfg.NewBuilder("dup")
	p, k := b.Const("p"), b.Const("k")
	a1 := b.Addr("a1", p, k)
	a2 := b.Addr("a2", p, k) // identical to a1
	l1 := b.Load("l1", a1)
	l2 := b.Load("l2", a2) // loads do not merge
	s := b.Add("s", l1, l2)
	b.Store("st", a1, s)
	g := b.Graph()

	opt, remap := dfg.CSE(g)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	// a1 and a2 merged; loads kept.
	i1, _ := g.NodeByName("a1")
	i2, _ := g.NodeByName("a2")
	if remap[i1] != remap[i2] {
		t.Error("identical address adds should merge")
	}
	j1, _ := g.NodeByName("l1")
	j2, _ := g.NodeByName("l2")
	if remap[j1] == remap[j2] {
		t.Error("loads must never merge")
	}
	if opt.NumNodes() != g.NumNodes()-1 {
		t.Errorf("CSE removed %d nodes, want 1", g.NumNodes()-opt.NumNodes())
	}
}

func TestCSEOnKernelsIsIdentityAndSafe(t *testing.T) {
	for _, name := range kernels.Names() {
		g := kernels.MustByName(name)
		opt, _ := dfg.CSE(g)
		if err := opt.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt.NumNodes() > g.NumNodes() {
			t.Fatalf("%s: CSE grew the graph", name)
		}
	}
}

func TestDCERemovesDeadChains(t *testing.T) {
	b := dfg.NewBuilder("dead")
	p := b.Const("p")
	l := b.Load("l", p)
	live := b.Add("live", l, p)
	b.Store("st", p, live)
	dead := b.Mul("dead", l, l)
	_ = b.Add("deader", dead, l) // chain with no path to any store
	g := b.Graph()

	opt, remap := dfg.DCE(g)
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
	if opt.NumNodes() != g.NumNodes()-2 {
		t.Fatalf("DCE kept %d nodes, want %d", opt.NumNodes(), g.NumNodes()-2)
	}
	dn, _ := g.NodeByName("dead")
	if remap[dn] != -1 {
		t.Error("dead node survived")
	}
	// Store output unchanged.
	want := storeByName(t, g, 3)
	got := storeByName(t, opt, 3)
	if len(got["st"]) != len(want["st"]) {
		t.Fatal("store stream length changed")
	}
	for i := range want["st"] {
		if got["st"][i] != want["st"][i] {
			t.Fatal("DCE changed stored values")
		}
	}
}

func TestDCEWithoutStoresIsIdentity(t *testing.T) {
	g := dfg.New("nostores")
	a := g.AddNode("a", dfg.OpAdd)
	b := g.AddNode("b", dfg.OpMul)
	g.AddEdge(a, b)
	opt, remap := dfg.DCE(g)
	if opt.NumNodes() != 2 || remap[0] != 0 || remap[1] != 1 {
		t.Fatal("store-free graph must pass through unchanged")
	}
}

func TestOptimizeRandomGraphsStaysValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := dfg.Random(rng, dfg.DefaultRandomConfig(), "r")
		opt, remap := dfg.Optimize(g)
		if opt.NumNodes() == 0 {
			continue // everything dead is legal for store-free graphs? (guarded by DCE identity)
		}
		if err := opt.Validate(); err != nil {
			// Optimize can disconnect a graph when pruning; only structural
			// invariants other than connectivity must hold.
			if opt.NumNodes() > 1 && opt.WeaklyConnected() {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for v := range remap {
			if remap[v] >= opt.NumNodes() {
				t.Fatalf("seed %d: remap out of range", seed)
			}
		}
	}
}

func TestOpHistogram(t *testing.T) {
	g := kernels.MustByName("gemm")
	h := dfg.OpHistogram(g)
	if h[dfg.OpLoad] != 3 || h[dfg.OpStore] != 1 {
		t.Fatalf("gemm histogram wrong: %v", h)
	}
	ops := dfg.SortedOps(h)
	for i := 1; i < len(ops); i++ {
		if ops[i-1] >= ops[i] {
			t.Fatal("ops not sorted")
		}
	}
}
