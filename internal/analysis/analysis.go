// Package analysis is lisa-vet's static-analysis driver: a pure-stdlib
// (go/parser, go/ast, go/types, go/token — no x/tools) framework with
// repo-specific analyzers that machine-check the determinism and
// concurrency invariants the LISA pipeline depends on.
//
// Reproducible GNN-guided mapping means the same DFG + arch + seed must
// yield byte-identical results: the traingen→gnn→mapper pipeline corrupts
// its own training labels if any hot path drifts, and the lisa-serve result
// cache serves stale bytes as ground truth. The determinism analyzers
// (maprange, globalrand, wallclock, errdrop) check the drift classes fixed
// by hand in past PRs. The concurrency/perf analyzers added for the
// distributed daemon check what code review historically missed:
//
//   - lockorder: interprocedural mutex tracking — lock-order cycles,
//     double-acquire (direct or through a call chain), early returns while
//     holding a lock without a deferred unlock, and locks held across
//     blocking calls (fsync, HTTP, sleeps).
//   - goleak: goroutines with no termination path, time.After inside
//     loops, and unbuffered-channel sends from spawned goroutines.
//   - hotalloc: functions annotated //lisa:hotpath must be transitively
//     free of map/slice literals, un-preallocated append growth, escaping
//     closure captures, and fmt calls — the source-level form of the
//     BENCH_*.json alloc ceilings.
//   - faultsite: every fault-injection site registered in internal/fault
//     has exactly one matching fault.Inject call site and vice versa.
//
// Diagnostics are suppressed per line with
//
//	//lisa:vet-ok <analyzer> <reason>
//
// on the flagged line or the line directly above it. Both the analyzer
// name and the reason are mandatory: a suppression that names no analyzer,
// names an unknown analyzer, or gives no reason is itself reported, as is
// the legacy //lisa:nondet-ok form it replaces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Per-package analyzers set Run; whole-
// program analyzers (faultsite) set RunGlobal and are invoked once with
// every loaded package.
type Analyzer struct {
	Name      string // short lowercase identifier, shown in diagnostics
	Doc       string // one-line description for -list
	Run       func(*Pass)
	RunGlobal func(*GlobalPass)
}

// All is the full analyzer set run by `lisa-vet` with no -run flag.
var All = []*Analyzer{MapRange, GlobalRand, WallClock, ErrDrop, LockOrder, GoLeak, HotAlloc, FaultSite}

// knownAnalyzer reports whether name identifies a registered analyzer —
// the set a //lisa:vet-ok comment may name.
func knownAnalyzer(name string) bool {
	for _, a := range All {
		if a.Name == name {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Position token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Stats summarizes one Run for `lisa-vet -stats`: per-analyzer counts of
// reported findings and of //lisa:vet-ok suppressions present in the
// analyzed source (whether or not a finding hit them), plus the number of
// //lisa:hotpath roots seen — CI asserts the latter stays non-zero so the
// hotalloc gate cannot be deleted silently.
type Stats struct {
	Findings     map[string]int `json:"findings"`
	Suppressions map[string]int `json:"suppressions"`
	HotpathFuncs int            `json:"hotpathFunctions"`
}

// A Pass couples one analyzer with one package; analyzers report through it.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, diagAt(p.Pkg.Fset, pos, p.Analyzer.Name, format, args...))
}

// TypeOf returns the type of e, or nil if the type checker has no record.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to the object it uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// A GlobalPass couples a whole-program analyzer with every loaded package.
type GlobalPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos, resolved through pkg's FileSet.
func (p *GlobalPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, diagAt(pkg.Fset, pos, p.Analyzer.Name, format, args...))
}

func diagAt(fset *token.FileSet, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	position := fset.Position(pos)
	return Diagnostic{
		Position: position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Suppression comment markers. vet-ok is the current form; nondet-ok is
// the pre-v2 form that named no analyzer and is now itself a finding.
const (
	suppressPrefix = "lisa:vet-ok"
	legacyPrefix   = "lisa:nondet-ok"
)

// suppression is one //lisa:vet-ok (or legacy //lisa:nondet-ok) comment,
// located by file and line and scoped to one analyzer.
type suppression struct {
	file     string
	line     int
	analyzer string // analyzer the suppression names; "" if missing
	reason   string
	legacy   bool // old //lisa:nondet-ok form
	pos      token.Pos
}

// collectSuppressions scans a parsed file's comments for suppression
// markers. Malformed entries (no analyzer, no reason, legacy form) are kept
// so Run can report them.
func collectSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSuffix(text, "*/")
			text = strings.TrimSpace(text)
			pos := fset.Position(c.Pos())
			if rest, ok := markerRest(text, legacyPrefix); ok {
				out = append(out, suppression{
					file: pos.Filename, line: pos.Line,
					reason: rest, legacy: true, pos: c.Pos(),
				})
				continue
			}
			rest, ok := markerRest(text, suppressPrefix)
			if !ok {
				continue
			}
			s := suppression{file: pos.Filename, line: pos.Line, pos: c.Pos()}
			if fields := strings.Fields(rest); len(fields) > 0 {
				s.analyzer = fields[0]
				s.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			}
			out = append(out, s)
		}
	}
	return out
}

// markerRest returns the text after prefix when text begins with prefix on
// a word boundary (so lisa:vet-okay is not ours).
func markerRest(text, prefix string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := text[len(prefix):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// wellFormed reports whether s is a usable suppression: current form,
// known analyzer, non-empty reason.
func (s suppression) wellFormed() bool {
	return !s.legacy && s.analyzer != "" && s.reason != "" && knownAnalyzer(s.analyzer)
}

// suppressed reports whether d is covered by a well-formed suppression
// naming d's analyzer on its line or the line directly above.
func (pkg *Package) suppressed(d Diagnostic) bool {
	for _, s := range pkg.suppressions {
		if !s.wellFormed() || s.analyzer != d.Analyzer {
			continue
		}
		if s.file == d.File && (s.line == d.Line || s.line == d.Line-1) {
			return true
		}
	}
	return false
}

// suppressionDiags reports every malformed suppression in pkg: these are
// findings in their own right (analyzer name "suppression") and cannot
// themselves be suppressed.
func (pkg *Package) suppressionDiags() []Diagnostic {
	var diags []Diagnostic
	for _, s := range pkg.suppressions {
		var msg string
		switch {
		case s.legacy:
			msg = "legacy //" + legacyPrefix + " comment: migrate to //" + suppressPrefix + " <analyzer> <reason>"
		case s.analyzer == "":
			msg = "//" + suppressPrefix + " needs an analyzer and a reason: //" + suppressPrefix + " <analyzer> <reason>"
		case !knownAnalyzer(s.analyzer):
			msg = fmt.Sprintf("//%s names unknown analyzer %q (known: %s)", suppressPrefix, s.analyzer, analyzerNames())
		case s.reason == "":
			msg = fmt.Sprintf("//%s %s needs a reason: //%s %s <why this finding is acceptable>",
				suppressPrefix, s.analyzer, suppressPrefix, s.analyzer)
		default:
			continue
		}
		diags = append(diags, Diagnostic{
			File:     s.file,
			Line:     s.line,
			Col:      pkg.Fset.Position(s.pos).Column,
			Analyzer: "suppression",
			Message:  msg,
		})
	}
	return diags
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Run applies every analyzer to every package and returns the unsuppressed
// diagnostics sorted by file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunWithStats(pkgs, analyzers)
	return diags
}

// RunWithStats is Run plus the per-analyzer counters behind
// `lisa-vet -stats`.
func RunWithStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, Stats) {
	stats := Stats{Findings: map[string]int{}, Suppressions: map[string]int{}}
	var diags []Diagnostic
	keep := func(pkg *Package, found []Diagnostic) {
		for _, d := range found {
			if pkg != nil && pkg.suppressed(d) {
				continue
			}
			if pkg == nil && suppressedAny(pkgs, d) {
				continue
			}
			stats.Findings[d.Analyzer]++
			diags = append(diags, d)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			keep(pkg, pass.diags)
		}
		keep(pkg, pkg.suppressionDiags())
		for _, s := range pkg.suppressions {
			if s.wellFormed() {
				stats.Suppressions[s.analyzer]++
			}
		}
		stats.HotpathFuncs += len(hotpathRoots(pkg))
	}
	for _, a := range analyzers {
		if a.RunGlobal == nil {
			continue
		}
		gp := &GlobalPass{Analyzer: a, Pkgs: pkgs}
		a.RunGlobal(gp)
		keep(nil, gp.diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, stats
}

// suppressedAny reports whether any loaded package's suppressions cover d
// (global analyzers report across package boundaries).
func suppressedAny(pkgs []*Package, d Diagnostic) bool {
	for _, pkg := range pkgs {
		if pkg.suppressed(d) {
			return true
		}
	}
	return false
}

// resultPackages are the packages whose output feeds training labels,
// figures, or the service result cache: any nondeterminism here either
// poisons datasets or breaks cache byte-identity. Matched as path suffixes
// so the fixture packages under testdata/src/ resolve the same way.
var resultPackages = []string{
	"internal/mapper",
	"internal/gnn",
	"internal/labels",
	"internal/traingen",
	"internal/dfg",
	"internal/ilp",
	"internal/experiments",
	"internal/registry",
	"internal/service",
	"internal/engine",
	"internal/fault",
	"internal/store",
	"internal/cluster",
}

// inResultPackage reports whether pkgPath is one of the result-affecting
// packages (by path-segment-aligned suffix match).
func inResultPackage(pkgPath string) bool {
	for _, s := range resultPackages {
		if pathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// pathHasSuffix reports whether path ends in suffix on a "/" boundary.
func pathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	return strings.HasSuffix(path, "/"+suffix)
}
