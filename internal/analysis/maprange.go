package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `for range` over map-typed values in result-affecting
// packages. Go randomizes map iteration order per run, so any map range on
// a path that feeds training labels, figures, or the service cache makes
// the output a function of the scheduler, not the seed. PR 1 fixed exactly
// this class of bug by hand (mapper partner lists, dataset pair order);
// this analyzer keeps it fixed.
//
// The blessed fix is self-certifying: a range whose body only collects
// keys/values into slices that are all passed to a sort call later in the
// same function (sort.Slice, sort.Ints, slices.Sort, …) is recognized as
// the collect-then-sort idiom and not flagged. Ranges whose body is
// genuinely order-independent (copying into another map, per-key
// arithmetic, feeding a JSON encoder that sorts keys) carry a
// //lisa:vet-ok maprange <reason> annotation instead.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "range over a map in a result-affecting package (nondeterministic iteration order)",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	if !inResultPackage(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

// checkMapRanges inspects one function body (recursing into literals, which
// get their own body scope for the collect-then-sort check).
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkMapRanges(pass, n.Body)
			return false
		case *ast.RangeStmt:
			t := pass.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsThenSorts(pass, body, n) {
				return true
			}
			pass.Reportf(n.Pos(),
				"range over map %s: iteration order is nondeterministic; collect and sort the keys first, or annotate //lisa:vet-ok maprange <reason> if order cannot affect results",
				types.ExprString(n.X))
		}
		return true
	})
}

// collectsThenSorts reports whether rs is the collect-then-sort idiom: its
// body does nothing but append to slices, and every such slice is the
// argument of a sort call later in the enclosing function body.
func collectsThenSorts(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	targets := collectTargets(pass, rs.Body)
	if len(targets) == 0 {
		return false
	}
	for _, target := range targets {
		if !sortedAfter(pass, body, rs.End(), target) {
			return false
		}
	}
	return true
}

// collectTargets returns the rendered append targets if every statement in
// the block is `x = append(x, ...)`, possibly nested under if/blocks, and
// nil otherwise.
func collectTargets(pass *Pass, block *ast.BlockStmt) []string {
	var targets []string
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				t, ok := appendTarget(pass, s)
				if !ok {
					return false
				}
				targets = append(targets, t)
			case *ast.IfStmt:
				if s.Init != nil || s.Else != nil || !walk(s.Body.List) {
					return false
				}
			case *ast.BlockStmt:
				if !walk(s.List) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !walk(block.List) {
		return nil
	}
	return targets
}

// appendTarget matches `x = append(x, ...)` and returns x's rendering.
func appendTarget(pass *Pass, as *ast.AssignStmt) (string, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	lhs := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return "", false
	}
	return lhs, true
}

// sortFuncs are the stdlib entry points that order a slice in place.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true,
		"Ints": true, "Strings": true, "Float64s": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether body contains, after pos, a sort call whose
// first argument renders identically to target.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return true
		}
		arg := types.ExprString(ast.Unparen(call.Args[0]))
		// sort.Sort(byX(target)) wraps the slice in a named type.
		if wrap, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && len(wrap.Args) == 1 {
			arg = types.ExprString(wrap.Args[0])
		}
		if arg == target {
			found = true
			return false
		}
		return true
	})
	return found
}
