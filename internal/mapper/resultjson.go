package mapper

import (
	"encoding/json"
	"fmt"
	"time"
)

// resultJSON is the wire schema of a Result — the cache value format of
// lisa-serve and the payload of its /v1/map responses. Every field is a
// pure function of (DFG, architecture, engine, options, seed) except
// DurationNS, which is wall-clock; serialization keeps it (so a round trip
// is lossless) and services that need byte-stable bodies zero it first.
type resultJSON struct {
	OK          bool    `json:"ok"`
	II          int     `json:"ii"`
	PE          []int   `json:"pe,omitempty"`
	Time        []int   `json:"time,omitempty"`
	EdgeHops    []int   `json:"edgeHops,omitempty"`
	Routes      [][]int `json:"routes,omitempty"`
	RoutingCost int     `json:"routingCost"`
	Moves       int     `json:"moves"`
	DurationNS  int64   `json:"durationNs"`
	TriedIIs    []int   `json:"triedIIs,omitempty"`
	// Robustness fields: both are zero on the healthy path, and omitted
	// from the wire so pre-existing payloads decode and healthy responses
	// stay byte-identical to the pre-fault-layer format.
	DeadlineExceeded bool     `json:"deadlineExceeded,omitempty"`
	Degraded         []string `json:"degraded,omitempty"`
	// Portfolio is present only for portfolio runs (Restarts > 1), so
	// single-chain payloads remain byte-identical to the pre-portfolio
	// format.
	Portfolio *PortfolioInfo `json:"portfolio,omitempty"`
}

// MarshalJSON encodes the result in the stable wire schema. Field order is
// fixed by the schema struct, so equal results always produce equal bytes.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		OK:               r.OK,
		II:               r.II,
		PE:               r.PE,
		Time:             r.Time,
		EdgeHops:         r.EdgeHops,
		Routes:           r.Routes,
		RoutingCost:      r.RoutingCost,
		Moves:            r.Moves,
		DurationNS:       int64(r.Duration),
		TriedIIs:         r.TriedIIs,
		DeadlineExceeded: r.DeadlineExceeded,
		Degraded:         r.Degraded,
		Portfolio:        r.Portfolio,
	})
}

// UnmarshalJSON decodes a result written by MarshalJSON and sanity-checks
// the cross-field invariants a legal payload must satisfy.
func (r *Result) UnmarshalJSON(b []byte) error {
	var f resultJSON
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("mapper: decode result: %w", err)
	}
	if f.OK {
		if f.II <= 0 {
			return fmt.Errorf("mapper: decode result: ok with II=%d", f.II)
		}
		if f.Portfolio != nil && (f.Portfolio.Winner < 0 || f.Portfolio.Winner >= f.Portfolio.Restarts) {
			return fmt.Errorf("mapper: decode result: portfolio winner %d outside %d chains",
				f.Portfolio.Winner, f.Portfolio.Restarts)
		}
		if len(f.PE) != len(f.Time) {
			return fmt.Errorf("mapper: decode result: %d PEs for %d times", len(f.PE), len(f.Time))
		}
		if len(f.EdgeHops) != len(f.Routes) {
			return fmt.Errorf("mapper: decode result: %d edge hops for %d routes", len(f.EdgeHops), len(f.Routes))
		}
	}
	*r = Result{
		OK:               f.OK,
		II:               f.II,
		PE:               f.PE,
		Time:             f.Time,
		EdgeHops:         f.EdgeHops,
		Routes:           f.Routes,
		RoutingCost:      f.RoutingCost,
		Moves:            f.Moves,
		Duration:         time.Duration(f.DurationNS),
		TriedIIs:         f.TriedIIs,
		DeadlineExceeded: f.DeadlineExceeded,
		Degraded:         f.Degraded,
		Portfolio:        f.Portfolio,
	}
	return nil
}

// Normalized returns the options with every zero knob replaced by its
// default — the values the annealer actually runs with. Content-addressed
// caching hashes normalized options so that "MaxMoves: 0" and
// "MaxMoves: 2400" (the default) share a cache entry, as they share a
// result.
func (o Options) Normalized() Options {
	return o.withDefaults()
}
