package dfg

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the interchange schema for DFGs.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int   `json:"edges"`
}

type jsonNode struct {
	Name string `json:"name"`
	Op   string `json:"op"`
}

// WriteJSON serializes g as JSON.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.Name}
	for _, n := range g.Nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Op: n.Op.String()})
	}
	for _, e := range g.Edges {
		jg.Edges = append(jg.Edges, [2]int{e.From, e.To})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&jg)
}

// ReadJSON deserializes a DFG written by WriteJSON and validates it. Every
// rejection — malformed JSON, unknown ops, duplicate names, dangling edges,
// structural defects — is a *DefectError, never a panic: this is the parse
// path for untrusted request bodies.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, &DefectError{Kind: DefectBadJSON,
			Msg: fmt.Sprintf("dfg: decode JSON: %v", err)}
	}
	g := New(jg.Name)
	for i, n := range jg.Nodes {
		op, err := ParseOpKind(n.Op)
		if err != nil {
			return nil, &DefectError{Kind: DefectUnknownOp,
				Msg: fmt.Sprintf("dfg: node %d: %v", i, err)}
		}
		// AddNode panics on a duplicate name (a programming error when
		// building graphs in code); here it is merely bad input.
		name := n.Name
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		if j, dup := g.NodeByName(name); dup {
			return nil, &DefectError{Kind: DefectDuplicateName,
				Msg: fmt.Sprintf("dfg: nodes %d and %d share the name %q", j, i, name)}
		}
		g.AddNode(n.Name, op)
	}
	for i, e := range jg.Edges {
		if e[0] < 0 || e[0] >= len(g.Nodes) || e[1] < 0 || e[1] >= len(g.Nodes) {
			return nil, &DefectError{Kind: DefectDanglingEdge,
				Msg: fmt.Sprintf("dfg: edge %d out of range", i)}
		}
		g.AddEdge(e[0], e[1])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
