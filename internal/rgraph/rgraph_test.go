package rgraph

import (
	"testing"
	"testing/quick"
)

// lineGraph builds a 1×n CGRA-like resource graph at II=2 by hand: per
// (pe, cycle) one FU (cap 1, compute+route) and one register bank (cap 2).
func lineGraph(n, ii int) *Graph {
	g := NewGraph(ii)
	fu := make([][]int, n)
	reg := make([][]int, n)
	for pe := 0; pe < n; pe++ {
		fu[pe] = make([]int, ii)
		reg[pe] = make([]int, ii)
		for t := 0; t < ii; t++ {
			fu[pe][t] = g.AddNode(Node{
				Kind: KindFU, PE: pe, Cycle: t, Cap: 1,
				ComputeOK: true, RouteOK: true, OpsMask: ^uint32(0),
			})
			reg[pe][t] = g.AddNode(Node{
				Kind: KindReg, PE: pe, Cycle: t, Cap: 2, RouteOK: true,
			})
		}
	}
	for pe := 0; pe < n; pe++ {
		for t := 0; t < ii; t++ {
			nt := (t + 1) % ii
			g.AddEdge(fu[pe][t], fu[pe][nt])
			g.AddEdge(fu[pe][t], reg[pe][nt])
			g.AddEdge(reg[pe][t], reg[pe][nt])
			g.AddEdge(reg[pe][t], fu[pe][nt])
			if pe > 0 {
				g.AddEdge(fu[pe][t], fu[pe-1][nt])
			}
			if pe < n-1 {
				g.AddEdge(fu[pe][t], fu[pe+1][nt])
			}
		}
	}
	return g
}

func TestGraphIndexing(t *testing.T) {
	g := lineGraph(3, 2)
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d, want 12", g.NumNodes())
	}
	fu := g.FUAt(1, 1)
	n := g.Nodes[fu]
	if n.Kind != KindFU || n.PE != 1 || n.Cycle != 1 {
		t.Fatalf("FUAt returned %+v", n)
	}
	if !g.HasFUAt(2, 0) || g.HasFUAt(3, 0) {
		t.Fatal("HasFUAt wrong")
	}
	if len(g.FUs()) != 6 {
		t.Fatalf("FU count = %d, want 6", len(g.FUs()))
	}
	// In/Out adjacency must be symmetric views of the same edges.
	for id := 0; id < g.NumNodes(); id++ {
		for _, ob := range g.Out(id) {
			found := false
			for _, ib := range g.In(int(ob)) {
				if int(ib) == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from In()", id, ob)
			}
		}
	}
}

func TestNodeAllowsOp(t *testing.T) {
	n := Node{ComputeOK: true, OpsMask: 1 << 3}
	if !n.AllowsOp(3) || n.AllowsOp(4) {
		t.Fatal("AllowsOp mask broken")
	}
	n.ComputeOK = false
	if n.AllowsOp(3) {
		t.Fatal("non-compute node must not allow ops")
	}
}

func TestRouteSharesFanoutRefcounts(t *testing.T) {
	g := lineGraph(4, 2)
	occ := NewOccupancy(g)
	r := NewRouter(g, 10)
	sig := Signal(7)
	src := g.FUAt(0, 0)
	// Two consumers both 2 hops away through the same first intermediate.
	d1 := g.FUAt(2, 0)
	d2 := g.FUAt(2, 0)
	p1, _, ok := r.Route(occ, sig, src, d1, 2)
	if !ok {
		t.Fatal("route 1 failed")
	}
	Commit(occ, sig, p1)
	p2, c2, ok := r.Route(occ, sig, src, d2, 2)
	if !ok {
		t.Fatal("route 2 failed")
	}
	if c2 != 0 {
		t.Fatalf("identical fanout route should be free, cost %d", c2)
	}
	Commit(occ, sig, p2)
	Uncommit(occ, sig, p1)
	// p2's resources must survive p1's release (refcounting).
	for i := 1; i < len(p2)-1; i++ {
		if !occ.Carries(p2[i], sig) {
			t.Fatal("shared resource lost after partial uncommit")
		}
	}
	Uncommit(occ, sig, p2)
	for n := 0; n < g.NumNodes(); n++ {
		if occ.UseCount(n) != 0 {
			t.Fatalf("leak at node %d", n)
		}
	}
}

func TestRouteWaitsInRegisters(t *testing.T) {
	g := lineGraph(2, 2)
	occ := NewOccupancy(g)
	r := NewRouter(g, 10)
	// 1 spatial hop but 5 cycles: must wait 4 cycles in registers/FUs.
	src := g.FUAt(0, 0)
	dst := g.FUAt(1, 1) // (0+5)%2 = 1
	path, _, ok := r.Route(occ, Signal(1), src, dst, 5)
	if !ok {
		t.Fatal("waiting route failed")
	}
	if len(path) != 6 {
		t.Fatalf("path len = %d, want 6", len(path))
	}
}

func TestRouterHopBound(t *testing.T) {
	g := lineGraph(2, 1)
	r := NewRouter(g, 3)
	occ := NewOccupancy(g)
	if _, _, ok := r.Route(occ, 1, g.FUAt(0, 0), g.FUAt(1, 0), 4); ok {
		t.Fatal("route beyond MaxHops must fail")
	}
	if _, _, ok := r.Route(occ, 1, g.FUAt(0, 0), g.FUAt(1, 0), 0); ok {
		t.Fatal("zero-hop route must fail")
	}
}

func TestShortestHops(t *testing.T) {
	g := lineGraph(5, 1)
	occ := NewOccupancy(g)
	r := NewRouter(g, 16)
	got := r.ShortestHops(occ, 1, g.FUAt(0, 0), g.FUAt(4, 0))
	if got != 4 {
		t.Fatalf("shortest hops = %d, want 4", got)
	}
	// Block the only spatial corridor at PE 2 (both FU and regs at cap).
	occ.Use(g.FUAt(2, 0), 99)
	occ.Use(g.FUAt(2, 0)+1, 98) // reg node follows its FU in creation order
	occ.Use(g.FUAt(2, 0)+1, 97)
	if got := r.ShortestHops(occ, 1, g.FUAt(0, 0), g.FUAt(4, 0)); got != -1 {
		t.Fatalf("blocked corridor should be unreachable, got %d", got)
	}
}

func TestOccupancyProperties(t *testing.T) {
	g := lineGraph(3, 2)
	f := func(ops []uint8) bool {
		occ := NewOccupancy(g)
		// Any sequence of Use/Release pairs must leave the table empty.
		var used [][2]int // (node, sig)
		for _, op := range ops {
			node := int(op) % g.NumNodes()
			sig := Signal(int(op)%3 + 1)
			if occ.CanEnter(node, sig) {
				occ.Use(node, sig)
				used = append(used, [2]int{node, int(sig)})
			}
		}
		for i := len(used) - 1; i >= 0; i-- {
			occ.Release(used[i][0], Signal(used[i][1]))
		}
		for n := 0; n < g.NumNodes(); n++ {
			if occ.UseCount(n) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceOpConflicts(t *testing.T) {
	g := lineGraph(2, 1)
	occ := NewOccupancy(g)
	fu := g.FUAt(0, 0)
	if !occ.PlaceOp(fu, 1) {
		t.Fatal("first op must place")
	}
	if occ.PlaceOp(fu, 2) {
		t.Fatal("second op on cap-1 FU must fail")
	}
	if !occ.OpOccupied(fu) {
		t.Fatal("OpOccupied must report the op")
	}
	occ.RemoveOp(fu, 1)
	if occ.OpOccupied(fu) {
		t.Fatal("op not removed")
	}
	if !occ.PlaceOp(fu, 2) {
		t.Fatal("slot must be reusable after removal")
	}
}
