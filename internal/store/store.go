// Package store is the disk-backed, content-addressed result store behind
// lisa-serve — the L2 behind the in-memory LRU. Mapping results are pure
// functions of their canonical cache key (dfg.Fingerprint + arch + engine +
// normalized options + seed + deadline, see service.cacheKey), so the bytes
// stored under a key are valid forever, across restarts, and across every
// process that shares the directory: a restarted daemon serves yesterday's
// results byte-identically with zero mapper invocations, and a fleet of
// daemons can treat one another's stores as interchangeable.
//
// Durability model:
//
//   - One file per entry (<key>.entry), self-verifying: a header line
//     carrying the SHA-256 and length of the body, then the body bytes.
//     Readers verify both on every Get; a mismatch is a miss, never a
//     served lie.
//   - Writes are write-to-temp + fsync + atomic rename. A crash mid-write
//     leaves a tmp-* orphan (swept on Open), never a half-visible entry;
//     a torn final file (emulated by the store.write fault site, or real
//     filesystem corruption) is detected by its checksum, dropped, and
//     rewritten by the next compute.
//   - A generation-stamped index (INDEX.json) records how many times the
//     directory has been opened and what the scan found. The index is
//     advisory — authoritative state is always the entries themselves —
//     so index loss or corruption costs a rescan, not data.
//
// Every failure mode short of "the directory is gone" is non-fatal:
// corrupt and truncated entries are skipped and deleted, read errors are
// misses, and write errors leave the previous state intact. The serving
// layer counts these in /metrics and keeps computing.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/lisa-go/lisa/internal/fault"
)

// ErrNotFound reports a Get for a key with no (valid) entry on disk.
var ErrNotFound = errors.New("store: entry not found")

// CorruptError reports an entry that failed its self-verification — a torn
// write, bit rot, or a foreign file posing as an entry. The entry has been
// removed; the caller should treat the Get as a miss and recompute.
type CorruptError struct {
	Key    string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: entry %s corrupt (%s); dropped", e.Key, e.Reason)
}

const (
	// format tags both the entry header and the index so a directory
	// written by an incompatible future layout is rejected, not misread.
	format = "lisa-store/v1"

	entrySuffix = ".entry"
	tmpPrefix   = "tmp-"
	indexName   = "INDEX.json"
)

// index is the generation stamp written at every Open. Advisory: entries
// are individually self-verifying, so a stale or missing index only means
// the next Open rescans from scratch at generation 1.
type index struct {
	Format     string `json:"format"`
	Generation uint64 `json:"generation"`
	Entries    int    `json:"entries"`
	Dropped    int    `json:"dropped"` // invalid entries removed by the last scan
}

// Store is a content-addressed body store rooted at one directory. All
// methods are safe for concurrent use; separate processes may share the
// directory (atomic renames make cross-process writes safe, and identical
// keys always carry identical bytes, so write races are benign).
type Store struct {
	dir string
	gen uint64

	mu       sync.Mutex
	entries  int
	bytes    int64
	dropped  int                      // torn/corrupt entries removed since Open (incl. the Open scan)
	inflight map[string]chan struct{} // key -> closed when its in-flight Put finishes
}

// Open prepares dir (creating it if needed), sweeps crash debris, verifies
// every entry, and stamps a new index generation. Corrupt or truncated
// entries are deleted — recovery is rewriting them on the next compute —
// and never abort the open.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, inflight: map[string]chan struct{}{}}

	prev := s.readIndex()
	s.gen = prev.Generation + 1

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			// A crash between temp-write and rename; the entry was never
			// visible, so removal is the whole recovery.
			_ = os.Remove(filepath.Join(dir, name)) // best effort: an orphan that survives is re-swept next Open
		case strings.HasSuffix(name, entrySuffix):
			key := strings.TrimSuffix(name, entrySuffix)
			body, err := s.readEntry(key)
			if err != nil {
				continue // readEntry already deleted and counted the drop
			}
			s.entries++
			s.bytes += int64(len(body))
		}
	}
	if err := s.writeIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// readIndex loads the previous index, tolerating absence and corruption
// (both mean "start the generation count over").
func (s *Store) readIndex() index {
	var idx index
	raw, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return index{}
	}
	if json.Unmarshal(raw, &idx) != nil || idx.Format != format {
		return index{}
	}
	return idx
}

// writeIndex stamps the current census atomically. s.mu must not be held.
func (s *Store) writeIndex() error {
	s.mu.Lock()
	idx := index{Format: format, Generation: s.gen, Entries: s.entries, Dropped: s.dropped}
	s.mu.Unlock()
	raw, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.atomicWrite(filepath.Join(s.dir, indexName), raw)
}

// atomicWrite lands data at path via temp file + fsync + rename, so a
// reader (this process or another sharing the directory) never observes a
// partial file under the final name.
func (s *Store) atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp) // best effort; Open sweeps tmp orphans anyway
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// validKey guards the filesystem mapping: keys are the lowercase-hex
// SHA-256 content addresses the service computes, never client-controlled
// paths.
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Get returns the body stored under key. ErrNotFound is the ordinary miss;
// a *CorruptError means a damaged entry was found, deleted, and should be
// recomputed; other errors are I/O failures (also safe to treat as misses).
//
//lisa:hotpath the L2 read behind every in-memory cache miss; only the I/O itself may allocate
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: invalid key %q", key)
	}
	if err := fault.Inject(fault.StoreRead, fault.Token(key)); err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	return s.readEntry(key)
}

// readEntry reads and verifies one entry, deleting it on any mismatch.
func (s *Store) readEntry(key string) ([]byte, error) {
	raw, err := os.ReadFile(s.entryPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	body, reason := decodeEntry(raw)
	if reason != "" {
		s.drop(key)
		return nil, &CorruptError{Key: key, Reason: reason}
	}
	return body, nil
}

// decodeEntry parses and verifies the self-checking entry format. It
// returns the body and an empty reason on success.
func decodeEntry(raw []byte) (body []byte, reason string) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, "no header"
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != format {
		return nil, "bad header"
	}
	wantSum := fields[1]
	// strconv.Atoi, not Sscanf: Sscanf("%d") accepts trailing junk
	// ("12abc" parses as 12), which would let a corrupted length field
	// masquerade as valid.
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, "bad length field"
	}
	body = raw[nl+1:]
	if len(body) != wantLen {
		return nil, fmt.Sprintf("truncated: %d of %d body bytes", len(body), wantLen)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, "checksum mismatch"
	}
	return body, ""
}

// drop removes a damaged entry and adjusts the census. The byte census may
// briefly over-count after a post-Open corruption (the original body length
// is unrecoverable from a torn file); the next Open's scan rebuilds it.
func (s *Store) drop(key string) {
	_ = os.Remove(s.entryPath(key)) // best effort: a lingering corrupt file is re-detected and re-dropped
	s.mu.Lock()
	if s.entries > 0 {
		s.entries--
	}
	s.dropped++
	s.mu.Unlock()
}

// encodeEntry renders the on-disk form of body.
func encodeEntry(body []byte) []byte {
	sum := sha256.Sum256(body)
	header := fmt.Sprintf("%s %s %d\n", format, hex.EncodeToString(sum[:]), len(body))
	out := make([]byte, 0, len(header)+len(body))
	out = append(out, header...)
	return append(out, body...)
}

// Put stores body under key. Content addressing makes the first write
// authoritative: a key that already has a valid entry is left untouched
// (the bytes are identical by construction), so concurrent writers and
// re-puts after restarts are harmless. A write failure leaves the previous
// state intact and is safe to ignore beyond counting it.
func (s *Store) Put(key string, body []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	// Claim the key under the lock, write outside it: atomicWrite ends in
	// an fsync, and holding s.mu across that would stall every Get/Len/
	// metrics read for a disk flush (lockorder flags exactly this shape).
	// Writers that lose the claim wait for the winner and then retry, so
	// a Put that returns nil always means the entry is on disk — either
	// this call wrote it or an identical-bytes writer did.
	claim := func() (chan struct{}, bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ch := s.inflight[key]; ch != nil {
			return ch, false
		}
		ch := make(chan struct{})
		s.inflight[key] = ch
		return ch, true
	}
	var done chan struct{}
	for {
		ch, won := claim()
		if won {
			done = ch
			break
		}
		<-ch // winner finished (or failed); re-check the disk and re-claim
	}
	defer func() {
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		close(done)
	}()

	if _, err := os.Stat(s.entryPath(key)); err == nil {
		return nil
	}
	data := encodeEntry(body)
	if err := fault.Inject(fault.StoreWrite, fault.Token(key)); err != nil {
		// Emulate the crash this site models: a torn entry under the final
		// name — header intact, body cut short — exactly what a non-atomic
		// writer dying mid-write (or sector corruption) leaves behind. The
		// recovery scan and per-read verification must drop it.
		_ = os.WriteFile(s.entryPath(key), data[:len(data)-len(body)/2-1], 0o644) // best effort: the fault is the outcome either way
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	if err := s.atomicWrite(s.entryPath(key), data); err != nil {
		return err
	}
	s.mu.Lock()
	s.entries++
	s.bytes += int64(len(body))
	s.mu.Unlock()
	return nil
}

// CheckWritable probes the directory with a create+remove round trip; the
// readiness endpoint uses it to report a full or read-only disk before a
// load balancer routes traffic here.
func (s *Store) CheckWritable() error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"probe-*")
	if err != nil {
		return fmt.Errorf("store: not writable: %w", err)
	}
	name := f.Name()
	if err := f.Close(); err != nil {
		_ = os.Remove(name) // best effort; Open sweeps tmp orphans
		return fmt.Errorf("store: not writable: %w", err)
	}
	if err := os.Remove(name); err != nil {
		return fmt.Errorf("store: not writable: %w", err)
	}
	return nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the index generation stamped at Open: how many times
// this directory has been opened (and therefore scanned) over its life.
func (s *Store) Generation() uint64 { return s.gen }

// Len reports the live entry count (entries found valid at Open plus Puts
// since, minus drops).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries
}

// Bytes reports the total body bytes behind Len.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dropped reports how many invalid entries have been removed since Open,
// including the Open scan itself.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Keys lists the keys of every entry file currently present, sorted. It
// reads the directory (not the census), so entries written by other
// processes appear too; bodies are not verified.
func (s *Store) Keys() ([]string, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, de := range names {
		if name := de.Name(); strings.HasSuffix(name, entrySuffix) {
			keys = append(keys, strings.TrimSuffix(name, entrySuffix))
		}
	}
	sort.Strings(keys)
	return keys, nil
}
