// Package registry caches one trained GNN model per architecture. It
// generalizes the experiment grid's Context.ModelFor pattern so the
// long-lived serving daemon and the experiment runners share one
// implementation: models can be pre-loaded from disk at startup (offline
// training, the paper's intended deployment) or trained lazily on first
// use, and concurrent callers for one target always observe exactly one
// training run.
//
// Each architecture slot is a small state machine (idle → busy → ready |
// failed) rather than a sync.Once: a training run that errors or panics
// parks the slot in failed with the cause cached, where it answers every
// subsequent request instantly instead of wedging callers or silently
// retraining on each hit. Failed slots heal through Put (a later offline
// model wins) or an explicit Retry (the daemon's reload path).
package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/lisa-go/lisa/internal/arch"
	"github.com/lisa-go/lisa/internal/attr"
	"github.com/lisa-go/lisa/internal/dfg"
	"github.com/lisa-go/lisa/internal/fault"
	"github.com/lisa-go/lisa/internal/gnn"
	"github.com/lisa-go/lisa/internal/labels"
	"github.com/lisa-go/lisa/internal/traingen"
)

// ErrAlreadyLoaded marks a LoadFile that lost to an existing model for the
// same architecture — expected (and skippable) on a reload rescan.
var ErrAlreadyLoaded = errors.New("model already registered")

// Config sets the budgets used when a model must be trained on demand.
type Config struct {
	TrainGen traingen.Config // dataset generation (§V)
	TrainCfg gnn.TrainConfig // four-network training (§IV)
	Seed     int64
	// Workers fans dataset generation out; 0 defers to TrainGen.Workers.
	Workers int
	// TrainOnDemand permits lazy training when no model was pre-loaded for
	// a requested architecture. When false, ModelFor returns an error for
	// such targets instead of spending minutes training inside a request.
	TrainOnDemand bool
}

// Registry holds at most one model per architecture name.
type Registry struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
}

// trainState is the lifecycle of one architecture slot.
type trainState int

const (
	stateIdle   trainState = iota // nothing resolved, no training in flight
	stateBusy                     // one training run in flight; wait on done
	stateReady                    // model resolved
	stateFailed                   // last training attempt failed; err cached
)

// entry is the per-architecture slot.
type entry struct {
	state trainState
	done  chan struct{} // closed when the in-flight training settles (busy only)
	model *gnn.Model
	stats traingen.Stats
	err   error
}

// New creates an empty registry.
func New(cfg Config) *Registry {
	return &Registry{cfg: cfg, entries: make(map[string]*entry)}
}

// ensure returns the slot for name, creating an idle one. r.mu must be held.
func (r *Registry) ensure(name string) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{}
		r.entries[name] = e
	}
	return e
}

// Put registers a pre-trained model under its architecture name. It wins
// over idle and failed slots (healing a cached training failure) and loses
// to a ready model or an in-flight training run, returning false.
func (r *Registry) Put(m *gnn.Model) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.ensure(m.ArchName)
	switch e.state {
	case stateReady, stateBusy:
		return false
	}
	e.state = stateReady
	e.model = m
	e.stats = traingen.Stats{}
	e.err = nil
	return true
}

// LoadFile reads one model file saved by lisa-train / gnn.Save and registers
// it, returning the architecture name it serves.
func (r *Registry) LoadFile(path string) (string, error) {
	if err := fault.Inject(fault.RegistryLoad, fault.Token(path)); err != nil {
		return "", fmt.Errorf("registry: %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer func() { _ = f.Close() }() // read-only open: nothing to recover from a close error
	m, err := gnn.Load(f, gnn.NewModel(rand.New(rand.NewSource(1)), ""))
	if err != nil {
		return "", fmt.Errorf("registry: %s: %w", path, err)
	}
	if m.ArchName == "" {
		return "", fmt.Errorf("registry: %s: model file names no architecture", path)
	}
	if !r.Put(m) {
		return m.ArchName, fmt.Errorf("registry: %s: model for %q: %w", path, m.ArchName, ErrAlreadyLoaded)
	}
	return m.ArchName, nil
}

// LoadDir registers every *.json model file in dir (the lisa-train output
// convention) and returns the architecture names loaded, sorted. Files that
// fail to parse or collide with an already-registered architecture abort the
// load: a serving daemon must not come up half-configured.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var names []string
	for _, path := range files {
		name, err := r.LoadFile(path)
		if err != nil {
			return names, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Ready lists the architecture names whose model is already resolved,
// sorted. Targets that would still need on-demand training are absent.
func (r *Registry) Ready() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for name, e := range r.entries {
		if e.state == stateReady {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Has reports whether a resolved model exists for the architecture name.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return ok && e.state == stateReady
}

// Err returns the cached error of a failed slot, nil otherwise. It lets the
// daemon's /v1/archs report *why* a target has no model without re-running
// the failed training.
func (r *Registry) Err(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.state != stateFailed {
		return nil
	}
	return e.err
}

// Retry clears a failed slot back to idle so the next ModelFor may train
// again, reporting whether there was a cached failure to clear. This is the
// one deliberate way to spend a second training attempt on a poisoned
// target (the daemon's reload path); ordinary requests only ever pay once.
func (r *Registry) Retry(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.state != stateFailed {
		return false
	}
	e.state = stateIdle
	e.err = nil
	return true
}

// ModelFor returns the model for ar, training it on first use when the
// config allows (training-data generation + four-network training, §V and
// §IV). Safe for concurrent use; each architecture trains at most once. A
// failed training run is cached: later calls return the same error until
// Put or Retry heals the slot, so one bad target cannot wedge its waiters
// or retrain per request.
func (r *Registry) ModelFor(ar arch.Arch) (*gnn.Model, error) {
	name := ar.Name()
	for {
		r.mu.Lock()
		e := r.ensure(name)
		switch e.state {
		case stateReady:
			m := e.model
			r.mu.Unlock()
			return m, nil
		case stateFailed:
			err := e.err
			r.mu.Unlock()
			return nil, err
		case stateBusy:
			done := e.done
			r.mu.Unlock()
			<-done
			continue // re-read the settled state
		}
		// Idle: either train here or report that we may not.
		if !r.cfg.TrainOnDemand {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: no model loaded for %q and on-demand training is disabled", name)
		}
		e.state = stateBusy
		e.done = make(chan struct{})
		r.mu.Unlock()

		m, stats, err := r.train(ar)

		r.mu.Lock()
		if err != nil {
			e.state = stateFailed
			e.err = err
		} else {
			e.state = stateReady
			e.model, e.stats, e.err = m, stats, nil
		}
		close(e.done)
		e.done = nil
		r.mu.Unlock()
	}
}

// train runs one on-demand training pass outside the registry lock. A panic
// anywhere in generation or training (an injected fault or an organic bug)
// becomes the slot's cached error instead of a crashed caller.
func (r *Registry) train(ar arch.Arch) (m *gnn.Model, stats traingen.Stats, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, stats = nil, traingen.Stats{}
			err = fmt.Errorf("registry: training for %q panicked: %v", ar.Name(), rec)
		}
	}()
	if err := fault.Inject(fault.GNNTrain, fault.Token(ar.Name())); err != nil {
		return nil, traingen.Stats{}, fmt.Errorf("registry: training for %q: %w", ar.Name(), err)
	}
	cfg := r.cfg.TrainGen
	cfg.Seed = r.cfg.Seed
	if cfg.Workers == 0 {
		cfg.Workers = r.cfg.Workers
	}
	// An empty sample set leaves the model at its random init — the
	// label engines degrade gracefully, matching the experiment grid's
	// historical behavior under tiny smoke-test budgets.
	ds := traingen.Generate(ar, cfg)
	model := gnn.NewModel(rand.New(rand.NewSource(r.cfg.Seed)), ar.Name())
	model.Train(ds.Samples, r.cfg.TrainCfg)
	return model, ds.Stats, nil
}

// StatsFor reports the dataset-generation stats behind ar's model, training
// it on first use like ModelFor. Pre-loaded models carry no stats.
func (r *Registry) StatsFor(ar arch.Arch) (traingen.Stats, error) {
	if _, err := r.ModelFor(ar); err != nil {
		return traingen.Stats{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ensure(ar.Name()).stats, nil
}

// LabelsFor predicts the four mapper labels for g using ar's model; it is
// the engine.LabelSource the daemon and CLIs hand to engine.Run, so a
// training failure surfaces there as the ladder's labels-unavailable rung
// rather than an aborted request.
func (r *Registry) LabelsFor(ar arch.Arch, g *dfg.Graph) (*labels.Labels, error) {
	m, err := r.ModelFor(ar)
	if err != nil {
		return nil, err
	}
	return m.Predict(attr.Generate(g))
}

// LabelsForBatch predicts the four mapper labels for many DFGs on one
// architecture in a single fused inference pass: all nodes/edges of the
// batch share one set of dense matmuls (gnn.Model.PredictBatch), so the
// per-DFG cost amortizes the model walk. Output is byte-identical to
// calling LabelsFor per graph.
func (r *Registry) LabelsForBatch(ar arch.Arch, gs []*dfg.Graph) ([]*labels.Labels, error) {
	m, err := r.ModelFor(ar)
	if err != nil {
		return nil, err
	}
	sets := make([]*attr.Set, len(gs))
	for i, g := range gs {
		sets[i] = attr.Generate(g)
	}
	return m.PredictBatch(sets)
}

// String summarizes the registry for logs.
func (r *Registry) String() string {
	names := r.Ready()
	if len(names) == 0 {
		return "registry: no models resolved"
	}
	return "registry: models for " + strings.Join(names, ", ")
}
