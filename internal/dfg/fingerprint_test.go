package dfg

import (
	"strings"
	"testing"
)

func fpGraph(name string, nodeNames [2]string) *Graph {
	g := New(name)
	a := g.AddNode(nodeNames[0], OpLoad)
	b := g.AddNode(nodeNames[1], OpAdd)
	g.AddEdge(a, b)
	return g
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := fpGraph("one", [2]string{"x", "y"})
	b := fpGraph("two", [2]string{"p", "q"})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on node/graph names")
	}
}

func TestFingerprintSeesStructure(t *testing.T) {
	a := fpGraph("g", [2]string{"x", "y"})

	// Different op kind.
	b := New("g")
	n0 := b.AddNode("x", OpLoad)
	n1 := b.AddNode("y", OpMul)
	b.AddEdge(n0, n1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to op kinds")
	}

	// Extra edge.
	c := New("g")
	n0 = c.AddNode("x", OpLoad)
	n1 = c.AddNode("y", OpAdd)
	c.AddEdge(n0, n1)
	c.AddEdge(n0, n1)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint blind to edge multiplicity")
	}

	// Node order matters: result arrays are index-addressed.
	d := New("g")
	n1 = d.AddNode("y", OpAdd)
	n0 = d.AddNode("x", OpLoad)
	d.AddEdge(n0, n1)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint blind to node order")
	}
}

func TestCanonicalStringShape(t *testing.T) {
	g := fpGraph("g", [2]string{"x", "y"})
	s := g.CanonicalString()
	if !strings.HasPrefix(s, "dfg/v1 n=2 e=1\n") {
		t.Fatalf("canonical header wrong: %q", s)
	}
	if strings.Contains(s, "x") || strings.Contains(s, "g") && strings.Contains(s, "\ng\n") {
		t.Fatalf("canonical form leaks names: %q", s)
	}
	if g.CanonicalString() != s {
		t.Fatal("canonical encoding not stable across calls")
	}
}
